// Voice-assistant scenario (paper Sec. II-B): an audio-input AI pendant.
// Real synthetic speech is ADPCM-compressed (measured ratio), MFCCs are
// extracted, and the keyword-spotting DS-CNN runs — with the ISA chooser
// deciding between shipping raw PCM, ADPCM, MFCC features, or running the
// KWS locally, for both Wi-R and BLE. The winning configuration is then
// simulated end to end.
//
//   $ ./voice_assistant

#include <iostream>

#include "comm/ble_link.hpp"
#include "comm/wir_link.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/report.hpp"
#include "energy/lifetime.hpp"
#include "isa/adpcm.hpp"
#include "isa/features.hpp"
#include "net/network_sim.hpp"
#include "nn/model_zoo.hpp"
#include "partition/isa_chooser.hpp"
#include "sim/rng.hpp"
#include "workload/audio.hpp"

int main() {
  using namespace iob;
  using namespace iob::units;

  // --- Stage 1: the audio pipeline on real synthetic speech -------------------
  sim::Rng rng(5);
  workload::AudioGenerator mic;
  const auto pcm = mic.generate_pcm(2.0, rng);
  const double adpcm_snr = isa::AdpcmCodec::reconstruction_snr_db(pcm);
  const auto enc = isa::AdpcmCodec::encode(pcm);
  const double adpcm_bps = mic.data_rate_bps(16) * enc.size_bytes() / (pcm.size() * 2.0);

  const auto audio_f = mic.generate(1.1, rng);
  isa::MelConfig mel;
  const nn::Tensor spectrogram = isa::mfcc_spectrogram(audio_f, mel, 49);
  const nn::Model kws = nn::make_kws_dscnn();
  const nn::Tensor probs = kws.forward(spectrogram);
  int best_word = 0;
  for (int i = 1; i < 12; ++i) {
    if (probs[i] > probs[best_word]) best_word = i;
  }
  const double mfcc_bps = 49.0 * mel.n_mfcc * 8.0;  // int8 coefficients per 1 s window

  std::cout << "audio pipeline probe: ADPCM " << common::fixed(adpcm_snr, 1)
            << " dB SNR at " << common::si_format(adpcm_bps, "b/s") << "; MFCC window "
            << common::si_format(mfcc_bps, "b/s") << "; KWS top class " << best_word
            << " (p=" << common::fixed(probs[best_word], 3) << ")\n\n";

  // --- Stage 2: ISA operating-mode choice, per link ----------------------------
  const std::vector<partition::IsaMode> modes = {
      {"raw 16-bit PCM", 256.0 * kbps, 0.0},
      {"ADPCM 4:1", adpcm_bps, 0.5e6},
      {"MFCC features", mfcc_bps, 1.2e6},
      {"local KWS (results only)", 100.0, 1.2e6 + kws.total_macs()},
  };
  const double mic_power = 150.0 * uW;
  const energy::Battery coin = energy::Battery::coin_cell_1000mah();

  for (const bool use_wir : {true, false}) {
    comm::WiRLink wir;
    comm::BleLink ble;
    const comm::Link& link = use_wir ? static_cast<const comm::Link&>(wir)
                                     : static_cast<const comm::Link&>(ble);
    partition::IsaChooser chooser(link, 20e-12, mic_power);
    const auto evals = chooser.evaluate_all(modes);
    const std::size_t best = chooser.best_index(modes);
    std::cout << "[" << link.spec().name << "]\n";
    common::Table t({"mode", "traffic", "node total", "battery life", "chosen"});
    for (std::size_t i = 0; i < evals.size(); ++i) {
      t.add_row({evals[i].mode.name, common::si_format(evals[i].mode.output_rate_bps, "b/s"),
                 common::si_format(evals[i].total_power_w(), "W"),
                 common::fixed(energy::battery_life_days(coin, evals[i].total_power_w()), 1) +
                     " d",
                 i == best ? "<== best" : ""});
    }
    t.print();
    std::cout << "\n";
  }
  std::cout << "paper takeaway: on Wi-R the pendant ships (compressed) audio and lets the\n"
               "wearable brain listen; on BLE it is forced to compute locally.\n\n";

  // --- Stage 3: simulate the Wi-R pendant for 2 minutes -----------------------
  comm::WiRLink wir;
  net::NetworkSim network(wir, net::NetworkConfig{/*seed=*/6});
  net::NodeConfig pendant;
  pendant.name = "ai-pendant";
  pendant.location = net::BodyLocation::kNeck;
  pendant.stream = "audio";
  pendant.sense_power_w = mic_power;
  pendant.isa_power_w = 0.5e6 * 20e-12;  // ADPCM MACs at 20 pJ
  pendant.output_rate_bps = adpcm_bps;
  pendant.frame_bytes = 240;
  network.add_node(pendant);

  net::SessionConfig session;
  session.stream = "audio";
  session.macs_per_inference = kws.total_macs();
  session.bytes_per_inference = static_cast<std::uint64_t>(adpcm_bps / 8.0);  // 1 s windows
  network.add_session(session);

  const net::NetworkReport report = network.run(120.0);
  std::cout << "=== 120 s simulation: AI pendant -> wearable brain over Wi-R ===\n\n"
            << core::render_network_report(report);
  std::cout << "\nhub ran " << network.hub().session("audio").inferences
            << " KWS inferences (1 per second of audio)\n";
  return 0;
}
