// Health-monitoring scenario (paper Sec. II-A/II-D): a full-body suite of
// perpetually-operable biopotential nodes — ECG chest patch, EMG wrist
// band, ankle IMU, PPG ring — with real synthetic signals pushed through
// the real ISA codec, streamed over Wi-R to the hub, which runs the 1-D
// CNN arrhythmia classifier and forwards alerts to the cloud. Includes an
// energy-harvesting variant showing charging-free operation.
//
//   $ ./health_monitor

#include <iostream>

#include "comm/wir_link.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/report.hpp"
#include "isa/bio_codec.hpp"
#include "net/network_sim.hpp"
#include "nn/model_zoo.hpp"
#include "sim/rng.hpp"
#include "workload/ecg.hpp"

int main() {
  using namespace iob;
  using namespace iob::units;

  // --- Stage 1: measure the actual ISA compression on actual ECG ------------
  sim::Rng rng(2024);
  workload::EcgGenerator ecg_gen;
  const auto adc = ecg_gen.generate_adc(30.0, rng);
  isa::BioCodec codec(/*use_huffman=*/true);
  const double ratio = codec.compression_ratio(adc);
  const double raw_bps = 2.0 * ecg_gen.data_rate_bps(16);  // 2-lead patch
  const double coded_bps = raw_bps / ratio;
  std::cout << "ECG ISA codec: " << common::fixed(ratio, 2) << ":1 lossless ("
            << common::si_format(raw_bps, "b/s") << " -> "
            << common::si_format(coded_bps, "b/s") << ")\n";

  // --- Stage 2: the body-area network ---------------------------------------
  comm::WiRLink wir;
  net::NetworkSim network(wir, net::NetworkConfig{/*seed=*/7});

  auto leaf = [](const char* name, net::BodyLocation loc, double rate_bps, double sense_w,
                 double isa_w) {
    net::NodeConfig n;
    n.name = name;
    n.location = loc;
    n.stream = name;
    n.sense_power_w = sense_w;
    n.isa_power_w = isa_w;
    n.output_rate_bps = rate_bps;
    return n;
  };
  network.add_node(leaf("ecg", net::BodyLocation::kChest, coded_bps, 8.0 * uW, 1.5 * uW));
  network.add_node(leaf("emg", net::BodyLocation::kWristLeft, 8.0 * kbps, 9.0 * uW, 1.5 * uW));
  network.add_node(leaf("imu", net::BodyLocation::kAnkleLeft, 4.8 * kbps, 5.0 * uW, 0.5 * uW));
  network.add_node(leaf("ppg", net::BodyLocation::kFingerLeft, 1.6 * kbps, 40.0 * uW, 0.5 * uW));

  // Hub: arrhythmia CNN on every second of ECG, alerts uplinked.
  const nn::Model ecg_model = nn::make_ecg_cnn1d();
  net::SessionConfig session;
  session.stream = "ecg";
  session.macs_per_inference = ecg_model.total_macs();
  session.bytes_per_inference = static_cast<std::uint64_t>(coded_bps / 8.0);  // ~1 s windows
  session.forward_to_cloud = true;
  network.add_session(session);

  const net::NetworkReport report = network.run(120.0);

  std::cout << "\n=== 2-minute simulation: human-inspired health-monitoring BAN ===\n\n"
            << core::render_network_report(report);
  std::cout << "\nhub: " << network.hub().session("ecg").inferences << " arrhythmia inferences, "
            << common::si_format(network.hub().session("ecg").compute_energy_j, "J")
            << " compute, "
            << common::si_format(network.hub().session("ecg").uplink_energy_j, "J")
            << " cloud uplink\n";

  // --- Stage 3: the harvesting variant (paper Sec. V) ------------------------
  comm::WiRLink wir2;
  net::NetworkSim harvested(wir2, net::NetworkConfig{/*seed=*/8});
  energy::HarvesterParams pv;
  pv.source = energy::HarvestSource::kIndoorPhotovoltaic;
  pv.mean_power_w = 50.0 * uW;
  pv.availability = 0.7;
  for (const char* name : {"ecg", "emg", "imu", "ppg"}) {
    net::NodeConfig n = leaf(name, net::BodyLocation::kChest, 5.0 * kbps, 8.0 * uW, 1.0 * uW);
    n.harvester = pv;
    harvested.add_node(n);
  }
  const net::NetworkReport hreport = harvested.run(120.0);

  std::cout << "\n=== with 50 uW indoor-PV harvesting (10-200 uW window, Sec. V) ===\n\n";
  common::Table t({"node", "avg power", "harvest avg", "projected life"});
  for (std::size_t i = 0; i < hreport.nodes.size(); ++i) {
    const auto& n = hreport.nodes[i];
    t.add_row({n.name, common::si_format(n.average_power_w, "W"),
               common::si_format(50.0 * uW * 0.7, "W"),
               std::isinf(n.projected_life_days) ? "charging-free (perpetual)"
                                                 : common::fixed(n.projected_life_days, 0) + " d"});
  }
  t.print();
  return 0;
}
