// Health-monitoring scenario (paper Sec. II-A/II-D): a full-body suite of
// perpetually-operable biopotential nodes — ECG chest patch, EMG wrist
// band, ankle IMU, PPG ring — with real synthetic signals pushed through
// the real ISA codec, streamed over Wi-R to the hub, which runs the 1-D
// CNN arrhythmia classifier and forwards alerts to the cloud. Includes an
// energy-harvesting variant showing charging-free operation.
//
//   $ ./health_monitor

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <numeric>
#include <tuple>

#include "comm/wir_link.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/fleet.hpp"
#include "core/report.hpp"
#include "core/sweep_runner.hpp"
#include "isa/bio_codec.hpp"
#include "net/device_library.hpp"
#include "net/network_sim.hpp"
#include "nn/model_zoo.hpp"
#include "phy/interference.hpp"
#include "sim/rng.hpp"
#include "workload/ecg.hpp"

int main() {
  using namespace iob;
  using namespace iob::units;

  // --- Stage 1: measure the actual ISA compression on actual ECG ------------
  sim::Rng rng(2024);
  workload::EcgGenerator ecg_gen;
  const auto adc = ecg_gen.generate_adc(30.0, rng);
  isa::BioCodec codec(/*use_huffman=*/true);
  const double ratio = codec.compression_ratio(adc);
  const double raw_bps = 2.0 * ecg_gen.data_rate_bps(16);  // 2-lead patch
  const double coded_bps = raw_bps / ratio;
  std::cout << "ECG ISA codec: " << common::fixed(ratio, 2) << ":1 lossless ("
            << common::si_format(raw_bps, "b/s") << " -> "
            << common::si_format(coded_bps, "b/s") << ")\n";

  // --- Stage 2: the body-area network ---------------------------------------
  comm::WiRLink wir;
  net::NetworkSim network(wir, net::NetworkConfig{/*seed=*/7});

  auto leaf = [](const char* name, net::BodyLocation loc, double rate_bps, double sense_w,
                 double isa_w) {
    net::NodeConfig n;
    n.name = name;
    n.location = loc;
    n.stream = name;
    n.sense_power_w = sense_w;
    n.isa_power_w = isa_w;
    n.output_rate_bps = rate_bps;
    return n;
  };
  network.add_node(leaf("ecg", net::BodyLocation::kChest, coded_bps, 8.0 * uW, 1.5 * uW));
  network.add_node(leaf("emg", net::BodyLocation::kWristLeft, 8.0 * kbps, 9.0 * uW, 1.5 * uW));
  network.add_node(leaf("imu", net::BodyLocation::kAnkleLeft, 4.8 * kbps, 5.0 * uW, 0.5 * uW));
  network.add_node(leaf("ppg", net::BodyLocation::kFingerLeft, 1.6 * kbps, 40.0 * uW, 0.5 * uW));

  // Hub: arrhythmia CNN on every second of ECG, alerts uplinked.
  const nn::Model ecg_model = nn::make_ecg_cnn1d();
  net::SessionConfig session;
  session.stream = "ecg";
  session.macs_per_inference = ecg_model.total_macs();
  session.bytes_per_inference = static_cast<std::uint64_t>(coded_bps / 8.0);  // ~1 s windows
  session.forward_to_cloud = true;
  network.add_session(session);

  const net::NetworkReport report = network.run(120.0);

  std::cout << "\n=== 2-minute simulation: human-inspired health-monitoring BAN ===\n\n"
            << core::render_network_report(report);
  std::cout << "\nhub: " << network.hub().session("ecg").inferences << " arrhythmia inferences, "
            << common::si_format(network.hub().session("ecg").compute_energy_j, "J")
            << " compute, "
            << common::si_format(network.hub().session("ecg").uplink_energy_j, "J")
            << " cloud uplink\n";

  // --- Stage 3: the harvesting variant (paper Sec. V) ------------------------
  comm::WiRLink wir2;
  net::NetworkSim harvested(wir2, net::NetworkConfig{/*seed=*/8});
  energy::HarvesterParams pv;
  pv.source = energy::HarvestSource::kIndoorPhotovoltaic;
  pv.mean_power_w = 50.0 * uW;
  pv.availability = 0.7;
  for (const char* name : {"ecg", "emg", "imu", "ppg"}) {
    net::NodeConfig n = leaf(name, net::BodyLocation::kChest, 5.0 * kbps, 8.0 * uW, 1.0 * uW);
    n.harvester = pv;
    harvested.add_node(n);
  }
  const net::NetworkReport hreport = harvested.run(120.0);

  std::cout << "\n=== with 50 uW indoor-PV harvesting (10-200 uW window, Sec. V) ===\n\n";
  common::Table t({"node", "avg power", "harvest avg", "projected life"});
  for (std::size_t i = 0; i < hreport.nodes.size(); ++i) {
    const auto& n = hreport.nodes[i];
    t.add_row({n.name, common::si_format(n.average_power_w, "W"),
               common::si_format(50.0 * uW * 0.7, "W"),
               std::isinf(n.projected_life_days) ? "charging-free (perpetual)"
                                                 : common::fixed(n.projected_life_days, 0) + " d"});
  }
  t.print();

  // --- Stage 4: the population view (docs/scaling.md) ------------------------
  // One wearer is an anecdote; a deployment decision wants the lifetime
  // *distribution* across a population. core::Fleet sweeps the same BAN
  // across 500 seed replicates x {no harvest, indoor PV} and streams the
  // grid through run_streaming: points decode lazily, batches overlap with
  // the online percentile fold, and memory stays O(batch) no matter how
  // large the population grows.
  auto ban_class = [&leaf](const char* name, double rate_bps, double sense_w, double isa_w) {
    core::NodeClassSpec cls;
    cls.base = leaf(name, net::BodyLocation::kChest, rate_bps, sense_w, isa_w);
    return cls;
  };
  core::FleetAxes axes;
  axes.node_counts = {4};
  axes.mixes = {{"ban", {ban_class("ecg", 5.0 * kbps, 8.0 * uW, 1.5 * uW),
                         ban_class("emg", 8.0 * kbps, 9.0 * uW, 1.5 * uW),
                         ban_class("imu", 4.8 * kbps, 5.0 * uW, 0.5 * uW),
                         ban_class("ppg", 1.6 * kbps, 40.0 * uW, 0.5 * uW)}}};
  axes.harvests = {{"none", std::nullopt}, {"indoor-pv-50uW", pv}};
  axes.seeds.resize(500);
  std::iota(axes.seeds.begin(), axes.seeds.end(), std::uint64_t{1});
  axes.duration_s = 0.25;

  const core::Fleet fleet(axes);
  const core::SweepRunner runner;
  const core::FleetStreamResult stream = fleet.run_streaming(runner);
  std::cout << "\n=== population of " << stream.points
            << " simulated BANs (streamed, docs/scaling.md) ===\n\n"
            << stream.summary.to_string()
            << "\nthe harvest marginal is the deployment question answered at population\n"
               "scale: 50 uW indoor PV pushes the median wearer's lifetime to perpetual.\n";

  // --- Stage 5: the wearer goes for a run (docs/robustness.md) --------------
  // The motion-heavy suite preset puts a smartwatch, ECG chest patch and
  // earbud on a running wearer: short vigorous gait sojourns and frequent
  // arm-swing occlusions knock 9-18 dB off the body channel, and a cafe-
  // grade interferer (one continuously-streaming co-located body bus, the
  // bench's "cafe" level) sits underneath. The combination parks full-size
  // frames below the OOK waterfall while quarter-size frames still make it
  // — exactly the regime the degradation ladder exists for. Same 30 s
  // episode twice, ladder disarmed vs armed.
  auto stress = [](bool armed) {
    comm::WiRLink link;
    net::SuitePreset suite = net::motion_heavy_suite();
    net::NetworkConfig cfg{/*seed=*/11};
    cfg.dynamics.motion = suite.motion;
    cfg.dynamics.interference = phy::SirLevel{/*aggressors=*/1, /*duty_cycle=*/1.0,
                                              /*aggressor_sir_db=*/-7.9};
    net::NetworkSim sim(link, cfg);
    for (net::NodeConfig n : suite.nodes) {
      if (!armed) n.degradation.reset();
      sim.add_node(std::move(n));
    }
    return sim.run(30.0);
  };
  const net::NetworkReport off_run = stress(false);
  const net::NetworkReport on_run = stress(true);

  std::cout << "\n=== stage 5: motion-heavy suite, 30 s run/occlusion episode ===\n\n";
  auto totals = [](const net::NetworkReport& r) {
    std::uint64_t del = 0, shed = 0;
    double radio_w = 0.0, tdeg = 0.0;
    for (const auto& n : r.nodes) {
      del += n.frames_delivered;
      shed += n.dropped_shed;
      radio_w += n.comm_power_w;
      tdeg = std::max(tdeg, n.time_degraded_s);
    }
    return std::tuple{del, shed, radio_w, tdeg};
  };
  const auto [odel, oshed, oradio, otdeg] = totals(off_run);
  const auto [adel, ashed, aradio, atdeg] = totals(on_run);
  (void)otdeg;
  common::Table st({"ladder", "delivered", "goodput", "shed", "radio power", "time degraded"});
  st.add_row({"disarmed", std::to_string(odel),
              common::si_format(off_run.aggregate_goodput_bps, "b/s"), std::to_string(oshed),
              common::si_format(oradio, "W"), "-"});
  st.add_row({"armed", std::to_string(adel),
              common::si_format(on_run.aggregate_goodput_bps, "b/s"), std::to_string(ashed),
              common::si_format(aradio, "W"), common::fixed(atdeg, 1) + " s"});
  st.print();
  const double life_gain =
      on_run.nodes[2].projected_life_days / off_run.nodes[2].projected_life_days;
  std::cout << "\nthe disarmed suite delivers " << odel << " frames in 30 s — the session is\n"
            << "dead, yet the radio keeps burning " << common::si_format(oradio, "W")
            << " on full-frame ARQ that cannot succeed. the armed ladder retreats to\n"
               "int8-quarter frames with shedding within the first second and holds a "
            << common::si_format(on_run.aggregate_goodput_bps, "b/s")
            << "\ntrickle of vitals and audio for the whole episode at a fraction of the\n"
               "radio power (earbud projected battery life x"
            << common::fixed(life_gain, 2) << "); " << ashed
            << " frames were shed on purpose\ninstead of dropped by a blind MAC.\n";
  return 0;
}
