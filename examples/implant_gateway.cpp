// Implant-gateway scenario (paper Sec. IV-B, future work): "exploring
// body-assisted communication for implantable devices in EQS regime and
// beyond using Magneto-Quasistatic Human Body Communication leveraging the
// human body's transparency to magnetic fields."
//
// A deep implant (neural recorder) uses an NFMI/MQS link to a skin-surface
// relay patch; the patch joins the Wi-R body bus like any other ULP leaf
// and forwards the neural stream to the wearable brain. Also demonstrates
// the sub-uW Wi-R profile [21] for an authentication token and the TDMA
// downlink window for stimulation commands travelling back to the implant.
//
//   $ ./implant_gateway

#include <iostream>

#include "comm/nfmi_link.hpp"
#include "comm/tdma.hpp"
#include "comm/wir_link.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/report.hpp"
#include "net/network_sim.hpp"
#include "phy/nfmi_channel.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace iob;
  using namespace iob::units;

  // --- Stage 1: the through-tissue MQS hop (implant -> skin relay) ------------
  phy::NfmiChannelParams tissue;
  tissue.freq_hz = 2.0 * MHz;       // low-MHz MQS, body-transparent
  tissue.ref_distance_m = 0.05;     // 5 cm implant depth reference
  tissue.ref_gain_db = -35.0;       // mm-scale implant coil
  comm::NfmiLinkParams hop;
  hop.channel = tissue;
  hop.channel_distance_m = 0.06;    // cortical implant -> scalp patch
  hop.phy_rate_bps = 100.0 * kbps;  // neural feature stream
  hop.tx_power_w = 20.0 * uW;       // biphasic quasistatic class [22]
  hop.rx_power_w = 30.0 * uW;
  comm::NfmiLink implant_hop(hop);

  std::cout << "implant MQS hop: " << common::fixed(hop.channel_distance_m * 100, 0)
            << " cm through tissue, SNR " << common::fixed(implant_hop.spec().link_snr_db, 1)
            << " dB, FER(64 B) "
            << (implant_hop.frame_error_rate(64) < 1e-9
                    ? "<1e-9"
                    : common::si_format(implant_hop.frame_error_rate(64), ""))
            << ", TX energy " << common::si_format(implant_hop.spec().tx_energy_per_bit_j, "J/b")
            << "\n";
  const double implant_stream_bps = 20.0 * kbps;  // compressed spike features
  const double implant_tx_w = implant_hop.stream_tx_power_w(implant_stream_bps, 64);
  std::cout << "implant radio power at " << common::si_format(implant_stream_bps, "b/s") << ": "
            << common::si_format(implant_tx_w, "W") << "\n\n";

  // --- Stage 2: the body-bus network with the relay patch ---------------------
  comm::WiRLink wir;
  net::NetworkConfig cfg;
  cfg.seed = 13;
  cfg.mac.downlink_slot_s = 0.5e-3;  // stimulation-command window
  net::NetworkSim network(wir, cfg);

  net::NodeConfig relay;
  relay.name = "scalp-relay";
  relay.location = net::BodyLocation::kHead;
  relay.stream = "neural";
  relay.sense_power_w = implant_tx_w + 30.0 * uW;  // MQS RX side lives on the relay
  relay.isa_power_w = 2.0 * uW;                    // spike-feature packing
  relay.output_rate_bps = implant_stream_bps;
  network.add_node(relay);

  net::NodeConfig token;
  token.name = "auth-token";  // sub-uW wearable authentication node [21]
  token.location = net::BodyLocation::kWristRight;
  token.stream = "auth";
  token.sense_power_w = 0.1 * uW;
  token.output_rate_bps = 1.0 * kbps;
  token.frame_bytes = 32;
  network.add_node(token);

  net::SessionConfig neural;
  neural.stream = "neural";
  neural.macs_per_inference = 500'000;  // decoder running on the hub
  neural.bytes_per_inference = 2500;    // 1 s of features
  network.add_session(neural);

  const net::NetworkReport report = network.run(60.0);
  std::cout << "=== 60 s simulation: implant -> scalp relay -> wearable brain ===\n\n"
            << core::render_network_report(report);
  std::cout << "\nhub decoded " << network.hub().session("neural").inferences
            << " neural windows\n";

  // --- Stage 3: downlink stimulation commands over the same bus ----------------
  sim::Simulator sim(14);
  comm::TdmaConfig mac;
  mac.downlink_slot_s = 0.5e-3;
  comm::TdmaBus bus(sim, wir, mac);
  const comm::NodeId relay_id = bus.add_node("scalp-relay");
  int commands = 0;
  bus.set_downlink_handler([&](const comm::Frame&, sim::Time) { ++commands; });
  for (int i = 0; i < 30; ++i) {
    comm::Frame cmd;
    cmd.payload_bytes = 16;  // stimulation parameter update
    cmd.stream = "stim";
    bus.enqueue_downlink(relay_id, cmd);
  }
  bus.start();
  sim.run_until(0.25);
  bus.stop();
  std::cout << "\ndownlink: " << commands << "/30 stimulation commands delivered in "
            << common::si_format(sim.now(), "s") << " of bus time, relay RX cost "
            << common::si_format(bus.stats().nodes[0].rx_energy_j, "J") << "\n";

  std::cout << "\npaper takeaway (Sec. IV-B): the body's transparency to magnetic fields\n"
               "extends the artificial nervous system to implants — same hub, same bus.\n";
  return 0;
}
