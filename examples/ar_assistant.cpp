// AR / visual-assistant scenario (paper Sec. II-C): camera smart glasses as
// a leaf node. Real synthetic frames are MJPEG-compressed by the ISA block
// (measuring the true ratio), the partition optimizer decides where the
// visual-wake-words CNN should run (leaf vs wearable brain vs cloud) under
// a real-time latency budget, and the chosen configuration is simulated on
// the Wi-R body bus — then contrasted with BLE.
//
//   $ ./ar_assistant

#include <iostream>

#include "comm/ble_link.hpp"
#include "comm/wir_link.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/report.hpp"
#include "isa/metrics.hpp"
#include "isa/mjpeg.hpp"
#include "net/network_sim.hpp"
#include "nn/model_zoo.hpp"
#include "partition/partitioner.hpp"
#include "sim/rng.hpp"
#include "workload/video.hpp"

int main() {
  using namespace iob;
  using namespace iob::units;

  // --- Stage 1: what does the ISA video codec really achieve? ----------------
  sim::Rng rng(99);
  workload::VideoGenerator camera;  // QVGA @ 15 fps
  isa::MjpegCodec mjpeg(50);
  double ratio = 0.0, psnr = 0.0;
  const int probe_frames = 4;
  for (int i = 0; i < probe_frames; ++i) {
    const isa::GrayFrame f = camera.next_frame(rng);
    const isa::MjpegEncoded enc = mjpeg.encode(f);
    ratio += static_cast<double>(f.size_bytes()) / static_cast<double>(enc.size_bytes());
    psnr += isa::psnr_db(f, mjpeg.decode(enc));
  }
  ratio /= probe_frames;
  psnr /= probe_frames;
  const double raw_bps = camera.raw_data_rate_bps();
  const double coded_bps = raw_bps / ratio;
  std::cout << "MJPEG ISA: " << common::fixed(ratio, 1) << ":1 at "
            << common::fixed(psnr, 1) << " dB PSNR ("
            << common::si_format(raw_bps, "b/s") << " -> "
            << common::si_format(coded_bps, "b/s") << ")\n\n";

  // --- Stage 2: where should the vision model run? ---------------------------
  const nn::Model vww = nn::make_vww_micronet();
  std::cout << vww.summary() << "\n";

  const double frame_deadline_s = 1.0 / camera.params().fps;  // real-time budget
  common::Table t({"link", "optimal split", "leaf energy/frame", "latency/frame",
                   "meets 15 fps?"});
  for (const bool use_wir : {true, false}) {
    comm::WiRLink wir;
    comm::BleLink ble;
    const comm::Link& link = use_wir ? static_cast<const comm::Link&>(wir)
                                     : static_cast<const comm::Link&>(ble);
    partition::CostModel cm;
    cm.leaf_hub = partition::CostModel::leg_from_link(link, coded_bps);
    cm.hub_cloud = partition::CostModel::default_uplink();
    const partition::Partitioner part(vww, cm);
    const auto plan = part.optimize(partition::Objective::kLeafEnergy, frame_deadline_s);
    t.add_row({link.spec().name, plan.describe(vww),
               common::si_format(plan.leaf_energy_j(), "J"),
               common::si_format(plan.latency_s, "s"),
               plan.feasible ? "yes" : "NO (deadline violated)"});
  }
  t.print();
  std::cout << "\n";

  // --- Stage 3: simulate the chosen (Wi-R, full-offload) configuration -------
  comm::WiRLink wir;
  net::NetworkSim network(wir, net::NetworkConfig{/*seed=*/3});
  net::NodeConfig glasses;
  glasses.name = "smart-glasses-cam";
  glasses.location = net::BodyLocation::kHead;
  glasses.stream = "video";
  glasses.sense_power_w = 2.0 * mW;   // ULP image sensor (HM01B0 class)
  glasses.isa_power_w = 60.0 * uW;    // MJPEG blocks
  glasses.output_rate_bps = coded_bps;
  glasses.frame_bytes = 400;          // sized to the 1 ms TDMA slot
  glasses.slot_weight = 2;            // rate-proportional slot allocation
  glasses.battery_mah = 154.0;        // Ray-Ban-class frame battery
  glasses.battery_v = 3.7;
  network.add_node(glasses);

  net::SessionConfig session;
  session.stream = "video";
  session.macs_per_inference = vww.total_macs();
  session.bytes_per_inference =
      static_cast<std::uint64_t>(coded_bps / 8.0 / camera.params().fps);  // per frame
  network.add_session(session);

  const net::NetworkReport report = network.run(60.0);
  std::cout << "=== 60 s simulation: camera glasses -> wearable brain over Wi-R ===\n\n"
            << core::render_network_report(report);
  std::cout << "\nhub ran " << network.hub().session("video").inferences
            << " visual-wake-words inferences ("
            << common::fixed(static_cast<double>(network.hub().session("video").inferences) /
                                 60.0,
                             1)
            << " fps effective)\n";
  std::cout << "\npaper takeaway: offloading vision turns a 3-5 hr glasses battery into a\n"
               "multi-day one, while the hub absorbs the compute at 4x better efficiency.\n";
  return 0;
}
