// Quickstart: build a three-device human-inspired IoB network — an ECG
// patch and a smart-ring PPG node streaming over the Wi-R body bus to an
// on-body hub — simulate a minute of operation, and print the power /
// battery-life report. This is the 30-line tour of the public API.
//
//   $ ./quickstart

#include <iostream>

#include "comm/wir_link.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/report.hpp"
#include "net/network_sim.hpp"

int main() {
  using namespace iob;
  using namespace iob::units;

  // 1. The artificial nervous system: one Wi-R (EQS-HBC) body bus.
  comm::WiRLink wir;  // 4 Mb/s, ~100 pJ/bit, biophysical channel inside

  // 2. The network: hub ("wearable brain") + ULP leaf nodes.
  net::NetworkSim network(wir, net::NetworkConfig{/*seed=*/1});

  net::NodeConfig ecg;
  ecg.name = "ecg-patch";
  ecg.location = net::BodyLocation::kChest;
  ecg.stream = "ecg";
  ecg.sense_power_w = 8.0 * uW;    // biopotential AFE
  ecg.isa_power_w = 1.0 * uW;      // delta+varint codec
  ecg.output_rate_bps = 4.0 * kbps;
  network.add_node(ecg);

  net::NodeConfig ring;
  ring.name = "smart-ring";
  ring.location = net::BodyLocation::kFingerLeft;
  ring.stream = "ppg";
  ring.sense_power_w = 40.0 * uW;  // PPG LEDs + IMU
  ring.output_rate_bps = 20.0 * kbps;
  network.add_node(ring);

  // 3. Edge intelligence at the hub: one arrhythmia inference per second
  //    of delivered ECG.
  net::SessionConfig session;
  session.stream = "ecg";
  session.macs_per_inference = 190'000;  // 1-D CNN beat classifier
  session.bytes_per_inference = 500;
  network.add_session(session);

  // 4. Run one simulated minute and report.
  const net::NetworkReport report = network.run(60.0);
  std::cout << core::render_network_report(report);

  std::cout << "\nhub ran " << network.hub().session("ecg").inferences
            << " ECG inferences for "
            << common::si_format(network.hub().session("ecg").compute_energy_j, "J") << "\n";
  return 0;
}
