// Design-space exploration walkthrough: everything a platform architect
// would ask the library — the Fig. 3 landscape, the perpetual boundary,
// harvesting requirements, the BLE counterfactual, the offload crossover
// for each model, and a whole-network fleet grid — in one runnable tour of
// `core::`.
//
//   $ ./design_space

#include <iostream>

#include "comm/wir_link.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/explorer.hpp"
#include "core/fleet.hpp"
#include "core/report.hpp"
#include "core/sweep_runner.hpp"
#include "energy/sensing_power.hpp"
#include "nn/model_zoo.hpp"
#include "partition/partitioner.hpp"

int main() {
  using namespace iob;
  using namespace iob::units;

  const energy::Battery coin = energy::Battery::coin_cell_1000mah();
  core::DesignSpaceExplorer wir_space(coin);

  std::cout << "=== 1. The Fig. 3 landscape (1000 mAh, Wi-R 100 pJ/b) ===\n\n"
            << core::render_fig3(wir_space.sweep(1.0 * kbps, 10.0 * Mbps, 2));

  const double boundary = wir_space.perpetual_boundary_bps();
  std::cout << "\n=== 2. Perpetual-operability boundary ===\n\n"
            << "  any node producing <= " << common::si_format(boundary, "b/s")
            << " runs > 1 year on the coin cell\n"
            << "  power budget at 1 year: "
            << common::si_format(energy::power_budget_w(coin, year), "W") << "\n";

  std::cout << "\n=== 3. Harvest power for charging-free operation ===\n\n";
  common::Table h({"node class", "data rate", "required harvest", "in 10-200 uW window?"});
  for (const auto& cls : {energy::kBiopotentialPatch, energy::kSmartRing, energy::kAudioNode}) {
    const double req = wir_space.required_harvest_w(cls.data_rate_bps);
    h.add_row({cls.name, common::si_format(cls.data_rate_bps, "b/s"),
               common::si_format(req, "W"), req <= 200.0 * uW ? "yes" : "no"});
  }
  h.print();

  std::cout << "\n=== 4. The BLE counterfactual ===\n\n";
  core::DesignSpaceExplorer ble_space(coin, {}, 10e-9);
  std::cout << "  perpetual boundary with BLE-class 10 nJ/b: "
            << common::si_format(ble_space.perpetual_boundary_bps(), "b/s") << " vs Wi-R "
            << common::si_format(boundary, "b/s") << "\n";

  std::cout << "\n=== 5. Offload crossover per wearable-AI model ===\n\n";
  comm::WiRLink wir;
  partition::CostModel base;
  base.leaf_hub = partition::CostModel::leg_from_link(wir, 100.0 * kbps);
  base.hub_cloud = partition::CostModel::default_uplink();
  common::Table x({"model", "MACs", "crossover link energy", "Wi-R verdict", "BLE verdict"});
  for (const auto& m : {nn::make_ecg_cnn1d(), nn::make_kws_dscnn(), nn::make_vww_micronet()}) {
    const double cross = core::offload_crossover_energy_per_bit_j(m, base);
    x.add_row({m.name(), std::to_string(m.total_macs()), common::si_format(cross, "J/b"),
               100e-12 < cross ? "offload" : "local", 15e-9 < cross ? "offload" : "local"});
  }
  x.print();

  std::cout << "\nthe human-inspired architecture is exactly the region where the link\n"
               "energy sits below every model's crossover — Wi-R is in it, BLE is not.\n";

  std::cout << "\n=== 6. Fleet grid: whole-network sweeps on core::Fleet ===\n\n";
  // Declare the operating regimes as axes; the harness decodes each grid
  // point lazily, runs one owned-link NetworkSim per point across the
  // SweepRunner, and folds the reports into per-axis marginal summaries
  // while the next batch executes (docs/scaling.md). The streaming call
  // is the same API a 1M-point population grid uses — this 12-point grid
  // just fits in one batch.
  core::NodeClassSpec audio;
  audio.base.name = "audio";
  audio.base.sense_power_w = 150.0 * uW;
  audio.base.output_rate_bps = 64.0 * kbps;
  audio.base.slot_weight = 2;
  core::NodeClassSpec bio;
  bio.base.name = "bio";
  bio.base.sense_power_w = 8.0 * uW;
  bio.base.output_rate_bps = 5.0 * kbps;
  bio.share = 7;

  energy::HarvesterParams pv;
  pv.mean_power_w = 50.0 * uW;
  pv.hourly_profile = energy::office_diurnal_profile();

  core::FleetAxes axes;
  axes.node_counts = {4, 8, 16};
  axes.mixes = {{"mixed", {audio, bio}}};
  axes.harvests = {{"none", std::nullopt}, {"indoor-pv-50uW", pv}};
  axes.seeds = {42, 43};
  axes.duration_s = 2.0;

  const core::Fleet fleet(axes);
  const core::SweepRunner runner;
  const core::FleetStreamResult stream = fleet.run_streaming(runner);
  std::cout << stream.summary.to_string() << "\nstreamed " << stream.points
            << " points in bounded memory — every marginal row aggregates full\n"
               "discrete-event simulations, and the fleet_grid bench runs the same\n"
               "harness at a million points (docs/scaling.md).\n";
  return 0;
}
