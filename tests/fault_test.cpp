// Fault-injection subsystem tests (docs/robustness.md): hand-computed
// brownout/reboot timelines, the Gilbert–Elliott overlay against its
// analytic stationary loss rate, hub crash/restart session recovery, the
// drop-taxonomy invariant, ARQ backoff arithmetic, and the fleet grid's
// fault axis under the byte-identical parallel-vs-serial contract.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "comm/arq.hpp"
#include "comm/gilbert_elliott.hpp"
#include "comm/tdma.hpp"
#include "comm/wir_link.hpp"
#include "core/fleet.hpp"
#include "core/sweep_runner.hpp"
#include "net/network_sim.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"

namespace iob {
namespace {

// ---- brownout/reboot lifecycle ---------------------------------------------

// Hand-computed energy walk. The node burns 2 mW while powered against a
// deterministic 1 mW harvester (availability 1, sigma 0 -> exactly
// mean * dt per settle) off a 10.8 mJ cell (1e-3 mAh at 3 V), settling
// every 1 s. Off below 30% SoC, reboot at 50% for 1 mJ, zero sleep floor.
// Each settle discharges 2 mJ then credits 1 mJ, and the cell never holds
// less than the per-settle spend, so no discharge clamping muddies the
// walk:
//
//   t (s) | remaining (mJ)          | state
//   ------+-------------------------+---------------------------
//    1..7 | 10.8 - k*(2 - 1)        | on (9.8 ... 3.8)
//     8   | 2.8  (25.9% < 30%)      | off
//  9..10  | 3.8, 4.8                | off (< 50%)
//    11   | 5.8 - 1 (reboot) = 4.8  | on, reboot #1, downtime 3 s
//    12   | 3.8                     | on
//    13   | 2.8  (25.9% < 30%)      | off
//
// At t = 13.5: downtime 3 + 0.5 s, availability 1 - 3.5/13.5, MTTR 3.5/2.
TEST(Brownout, HandComputedTimeline) {
  sim::Simulator sim(1);
  comm::WiRLink wir;
  comm::TdmaBus bus(sim, wir);  // never started: the node burns no comm energy

  net::NodeConfig cfg;
  cfg.name = "bt";
  cfg.sense_power_w = 2e-3;
  cfg.isa_power_w = 0.0;
  cfg.output_rate_bps = 100.0;  // frame period 19.2 s: no traffic in-window
  cfg.battery_mah = 1e-3;       // 10.8 mJ at 3 V
  cfg.settle_period_s = 1.0;
  energy::HarvesterParams h;
  h.mean_power_w = 1e-3;
  h.availability = 1.0;
  h.relative_sigma = 0.0;
  cfg.harvester = h;

  net::Node node(sim, bus, cfg);
  node.enable_brownout(sim::BrownoutPlan{0.3, 0.5, 1e-3, 0.0});
  sim.run_until(13.5);

  EXPECT_FALSE(node.powered());
  EXPECT_EQ(node.reboots(), 1u);
  EXPECT_NEAR(node.downtime_s(13.5), 3.5, 1e-9);
  EXPECT_NEAR(node.availability(13.5), 1.0 - 3.5 / 13.5, 1e-12);
  EXPECT_NEAR(node.mttr_s(13.5), 1.75, 1e-9);
  EXPECT_NEAR(node.battery().remaining_j(), 2.8e-3, 1e-9);
}

TEST(Brownout, PlanValidatesHysteresis) {
  sim::Simulator sim(1);
  comm::WiRLink wir;
  comm::TdmaBus bus(sim, wir);
  net::NodeConfig cfg;
  cfg.name = "bad";
  net::Node node(sim, bus, cfg);
  // on_soc must sit strictly above off_soc.
  EXPECT_THROW(node.enable_brownout(sim::BrownoutPlan{0.5, 0.5, 0.0, 0.0}),
               std::invalid_argument);
}

// The PR's revival fix: a brownout-enabled node comes back once the
// harvester refills the hysteresis band, while the legacy configuration
// (no plan, no harvester) still dies forever — bit-identical default.
TEST(Brownout, NodeRevivesUnderPlanAndLegacyStaysDead) {
  auto stress = [](bool harvested) {
    net::NodeConfig c;
    c.name = "stress";
    c.stream = "stress";
    c.sense_power_w = 8e-6;
    c.isa_power_w = 3e-3;
    c.output_rate_bps = 5e3;
    c.battery_mah = 5e-4;  // 5.4 mJ: drains in seconds at mW load
    c.settle_period_s = 0.1;
    if (harvested) {
      energy::HarvesterParams teg;
      teg.mean_power_w = 1.5e-3;
      teg.availability = 1.0;
      teg.relative_sigma = 0.0;
      c.harvester = teg;
    }
    return c;
  };

  // Recovery-enabled run: the canonical brownout regime duty-cycles.
  net::NetworkConfig nc;
  nc.seed = 11;
  nc.faults = core::make_fault_plan(core::FaultVariant::kBrownout);
  comm::WiRLink wir;
  net::NetworkSim net(wir, nc);
  net.add_node(stress(true));
  const net::NetworkReport report = net.run(8.0);
  const net::NodeReport& r = report.nodes[0];
  EXPECT_GE(r.reboots, 1u);
  EXPECT_GT(r.downtime_s, 0.0);
  EXPECT_GT(r.mttr_s, 0.0);
  EXPECT_LT(r.availability, 1.0);
  EXPECT_GT(r.availability, 0.0);
  EXPECT_GT(r.frames_delivered, 0u);

  // Legacy run: same load, no plan, no harvest -> depleted stays dead and
  // the lifecycle metrics keep their clean-path defaults.
  net::NetworkConfig legacy_cfg;
  legacy_cfg.seed = 11;
  comm::WiRLink wir2;
  net::NetworkSim legacy(wir2, legacy_cfg);
  legacy.add_node(stress(false));
  const net::NetworkReport legacy_report = legacy.run(8.0);
  EXPECT_TRUE(legacy.node(0).battery().depleted());
  EXPECT_FALSE(legacy.node(0).alive());
  EXPECT_EQ(legacy_report.nodes[0].reboots, 0u);
  EXPECT_EQ(legacy_report.nodes[0].availability, 1.0);
  EXPECT_EQ(legacy_report.nodes[0].downtime_s, 0.0);
}

// ---- Gilbert–Elliott channel overlay ---------------------------------------

TEST(GilbertElliott, MatchesAnalyticStationaryRates) {
  const comm::GilbertElliottParams p{0.5, 0.125, 0.5};
  comm::GilbertElliott ge(p, sim::Rng(123));
  EXPECT_NEAR(ge.stationary_bad_fraction(), 0.2, 1e-12);

  const double base_fer = 0.01;
  const int n = 400'000;
  const double dt = 0.01;  // 4000 s: ~6400 sojourn alternations
  double loss_sum = 0.0;
  std::int64_t bad_samples = 0;
  for (int i = 1; i <= n; ++i) {
    loss_sum += ge.loss_probability(i * dt, base_fer);
    if (ge.bad()) ++bad_samples;
  }
  EXPECT_NEAR(static_cast<double>(bad_samples) / n, 0.2, 0.02);
  EXPECT_NEAR(loss_sum / n, ge.expected_loss(base_fer), 0.012);
  // Bad-state loss compounds with (not replaces) the base FER.
  EXPECT_GT(ge.expected_loss(base_fer), base_fer);
}

TEST(GilbertElliott, GoodStateKeepsBaseFer) {
  comm::GilbertElliott ge({1e9, 0.1, 0.9}, sim::Rng(7));  // first sojourn ~forever
  EXPECT_DOUBLE_EQ(ge.loss_probability(1.0, 0.02), 0.02);
  EXPECT_FALSE(ge.bad());
}

// ---- ARQ exponential backoff -----------------------------------------------

TEST(ArqBackoff, DoublesAndSaturates) {
  comm::WiRLink wir;
  const comm::Arq arq(wir, comm::ArqPolicy{8, 1e-3, 1e-3, 4e-3, 0.0});
  EXPECT_DOUBLE_EQ(arq.backoff_delay_s(1), 1e-3);
  EXPECT_DOUBLE_EQ(arq.backoff_delay_s(2), 2e-3);
  EXPECT_DOUBLE_EQ(arq.backoff_delay_s(3), 4e-3);
  EXPECT_DOUBLE_EQ(arq.backoff_delay_s(4), 4e-3);  // capped at backoff_max_s

  // Legacy default: base 0 disables the whole mechanism.
  const comm::Arq legacy(wir, comm::ArqPolicy{8, 1e-3});
  EXPECT_DOUBLE_EQ(legacy.backoff_delay_s(3), 0.0);
  EXPECT_DOUBLE_EQ(legacy.expected_backoff_s(240), 0.0);
  // Backoff only adds latency on top of the legacy expectation.
  EXPECT_GT(arq.expected_latency_s(240), 0.0);
  EXPECT_GE(arq.expected_latency_s(240), legacy.expected_latency_s(240));
}

TEST(ArqBackoff, JitterStaysInsideRelativeBand) {
  comm::WiRLink wir;
  const comm::Arq arq(wir, comm::ArqPolicy{8, 1e-3, 1e-3, 0.0, 0.25});
  sim::Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double d = arq.sample_backoff_s(rng, 2);
    EXPECT_GE(d, 2e-3 * 0.75);
    EXPECT_LE(d, 2e-3 * 1.25);
  }
  // Zero jitter consumes no draw and returns the deterministic delay.
  const comm::Arq flat(wir, comm::ArqPolicy{8, 1e-3, 1e-3, 0.0, 0.0});
  sim::Rng a(5), b(5);
  EXPECT_DOUBLE_EQ(flat.sample_backoff_s(a, 3), flat.backoff_delay_s(3));
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

// ---- hub crash / restart ----------------------------------------------------

// Periodic flap (up 0.5 s / down 0.2 s) against a staging hub: crashes at
// t = 0.5, 1.2, 1.9 and restarts at 0.7, 1.4, 2.1 inside a 2.5 s run.
// Sessions survive the crash (restored, not re-registered), staged batches
// are attributed as lost, leaves overflow their bounded store-and-retry
// queues while the hub is down, and the drop taxonomy stays a partition.
TEST(HubCrash, SessionsRestoreAndLossIsAttributed) {
  net::NetworkConfig nc;
  nc.seed = 5;
  nc.mac.max_queue_frames = 4;  // tiny store-and-retry buffer
  nc.hub.batch_window = 64;     // rare flushes: crashes catch staged work
  nc.faults.hub_flap = sim::HubFlapPlan{0.5, 0.2, true};
  comm::WiRLink wir;
  net::NetworkSim net(wir, nc);

  net::NodeConfig audio;
  audio.name = "audio";
  audio.stream = "audio";
  audio.sense_power_w = 150e-6;
  audio.output_rate_bps = 64e3;
  audio.frame_bytes = 240;
  audio.slot_weight = 2;
  net.add_node(audio);
  net::SessionConfig kws;
  kws.stream = "audio";
  kws.macs_per_inference = 1'000'000;
  kws.bytes_per_inference = 4'000;
  net.add_session(kws);

  const net::NetworkReport report = net.run(2.5);

  EXPECT_EQ(report.hub_crashes, 3u);
  EXPECT_NEAR(report.hub_downtime_s, 0.6, 1e-9);
  EXPECT_NEAR(report.hub_availability, 1.0 - 0.6 / 2.5, 1e-9);

  const net::SessionStats& st = net.hub().session("audio");
  EXPECT_EQ(st.fault_resyncs, 3u);      // one re-sync per restart
  EXPECT_GE(st.staged_frames_lost, 1u); // crashes drop staged batches
  EXPECT_GT(st.staged_bytes_lost, 0u);
  EXPECT_GE(st.inferences, 1u);         // the pipeline keeps working after

  const net::NodeReport& r = report.nodes[0];
  EXPECT_GT(r.dropped_overflow, 0u);    // store-and-retry buffer overflowed
  // Five-way partition (docs/robustness.md): overflows with the hub *up*
  // are attributed to the clean bucket, not the outage one.
  EXPECT_EQ(r.frames_dropped, r.dropped_arq + r.dropped_fault + r.dropped_overflow +
                                  r.dropped_overflow_clean + r.dropped_shed);
  EXPECT_GT(net.bus().stats().superframes_skipped, 0u);
  EXPECT_GT(r.frames_delivered, 0u);
}

// The taxonomy invariant under every stressor at once.
TEST(Faults, DropTaxonomyPartitionsTotalDrops) {
  net::NetworkConfig nc;
  nc.seed = 17;
  nc.mac.max_queue_frames = 6;
  nc.hub.batch_window = 8;
  nc.faults = core::make_fault_plan(core::FaultVariant::kCombined, 2.0);
  comm::WiRLink wir;
  net::NetworkSim net(wir, nc);
  for (int i = 0; i < 4; ++i) {
    net::NodeConfig c;
    c.name = "leaf-" + std::to_string(i);
    c.stream = c.name;
    c.sense_power_w = 100e-6;
    c.isa_power_w = (i == 0) ? 0.0 : 3e-3;  // three brownout-prone leaves
    c.output_rate_bps = (i == 0) ? 64e3 : 5e3;
    c.battery_mah = (i == 0) ? 1000.0 : 5e-4;
    c.settle_period_s = (i == 0) ? 1.0 : 0.1;
    c.phase_s = 1e-3 * i;
    if (i != 0) {
      energy::HarvesterParams teg;
      teg.mean_power_w = 1.5e-3;
      teg.availability = 1.0;
      c.harvester = teg;
    }
    net.add_node(c);
  }
  const net::NetworkReport report = net.run(8.0);
  std::uint64_t reboots = 0;
  for (const net::NodeReport& r : report.nodes) {
    EXPECT_EQ(r.frames_dropped, r.dropped_arq + r.dropped_fault + r.dropped_overflow +
                                    r.dropped_overflow_clean + r.dropped_shed)
        << r.name;
    reboots += r.reboots;
  }
  EXPECT_GE(reboots, 1u);  // the stress leaves actually duty-cycled
  EXPECT_LT(report.hub_availability, 1.0);
}

// ---- fleet grid fault axis --------------------------------------------------

core::FleetAxes fault_axes() {
  core::FleetAxes axes;
  axes.node_counts = {2};
  core::NodeClassSpec audio;
  audio.base.name = "audio";
  audio.base.sense_power_w = 150e-6;
  audio.base.output_rate_bps = 64e3;
  audio.base.slot_weight = 2;
  audio.share = 1;
  core::NodeClassSpec stress;
  stress.base.name = "stress";
  stress.base.sense_power_w = 8e-6;
  stress.base.isa_power_w = 3e-3;
  stress.base.output_rate_bps = 5e3;
  stress.base.battery_mah = 5e-4;
  stress.base.settle_period_s = 0.1;
  energy::HarvesterParams teg;
  teg.mean_power_w = 1.5e-3;
  teg.availability = 1.0;
  teg.relative_sigma = 0.0;
  stress.base.harvester = teg;
  stress.share = 1;
  axes.mixes = {core::NodeMix{"audio+stress", {audio, stress}}};
  axes.faults = {core::FaultVariant::kNone, core::FaultVariant::kBrownout,
                 core::FaultVariant::kHubFlap, core::FaultVariant::kBurstLoss,
                 core::FaultVariant::kCombined};
  axes.seeds = {7};
  axes.duration_s = 4.0;
  return axes;
}

TEST(FleetFaults, ParallelRunsAreByteIdenticalAcrossThreadCounts) {
  const core::Fleet fleet(fault_axes());
  EXPECT_EQ(fleet.size(), 5u);
  const std::string serial = core::fleet_results_csv(fleet.run(core::SweepRunner(1)));
  // The brownout regime produced real fault activity to serialize.
  EXPECT_NE(serial.find(":flt:"), std::string::npos);
  for (std::size_t threads : {2u, 8u}) {
    const core::SweepRunner runner(threads);
    EXPECT_EQ(serial, core::fleet_results_csv(fleet.run(runner))) << threads << " threads";
  }
}

TEST(FleetFaults, ExpansionNestsFaultsOutsideSeeds) {
  core::FleetAxes axes = fault_axes();
  axes.faults = {core::FaultVariant::kNone, core::FaultVariant::kCombined};
  axes.seeds = {7, 9};
  const std::vector<core::FleetPoint> points = core::Fleet(axes).expand();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].coord[core::kAxisFault], 0u);
  EXPECT_EQ(points[0].coord[core::kAxisSeed], 0u);
  EXPECT_EQ(points[1].coord[core::kAxisFault], 0u);
  EXPECT_EQ(points[1].coord[core::kAxisSeed], 1u);
  EXPECT_EQ(points[2].coord[core::kAxisFault], 1u);
  EXPECT_EQ(points[2].fault, core::FaultVariant::kCombined);
  EXPECT_EQ(points[3].coord[core::kAxisFault], 1u);
  EXPECT_EQ(points[3].coord[core::kAxisSeed], 1u);
}

// Default (fault-free) grids must serialize without any fault markup: the
// CSV stays byte-compatible with pre-fault output.
TEST(FleetFaults, DefaultAxisLeavesCsvUnmarked) {
  core::FleetAxes axes = fault_axes();
  axes.faults = {core::FaultVariant::kNone};
  axes.duration_s = 0.5;
  const core::Fleet fleet(axes);
  const std::string csv = core::fleet_results_csv(fleet.run(core::SweepRunner(1)));
  EXPECT_EQ(csv.find("flt"), std::string::npos);  // covers :flt: and hubflt:
  EXPECT_EQ(csv.find(":f1"), std::string::npos);  // no fault coordinate suffix
}

TEST(FleetFaults, MakeFaultPlanVariants) {
  EXPECT_FALSE(core::make_fault_plan(core::FaultVariant::kNone).any());
  EXPECT_FALSE(core::make_fault_plan(core::FaultVariant::kNone, 4.0).any());
  const sim::FaultPlan combined = core::make_fault_plan(core::FaultVariant::kCombined);
  EXPECT_TRUE(combined.brownout.has_value());
  EXPECT_TRUE(combined.hub_flap.has_value());
  EXPECT_TRUE(combined.burst_loss.has_value());
  // Intensity shortens the inter-fault gaps, never the outage durations.
  const sim::FaultPlan harsh = core::make_fault_plan(core::FaultVariant::kHubFlap, 4.0);
  const sim::FaultPlan mild = core::make_fault_plan(core::FaultVariant::kHubFlap, 1.0);
  EXPECT_LT(harsh.hub_flap->mean_up_s, mild.hub_flap->mean_up_s);
  EXPECT_DOUBLE_EQ(harsh.hub_flap->mean_down_s, mild.hub_flap->mean_down_s);
}

}  // namespace
}  // namespace iob
