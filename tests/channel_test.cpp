// Hostile-channel and graceful-degradation tests (docs/robustness.md):
// hand-computed body-motion traces, interference-field analytics against
// the phy primitives, the degradation ladder's hysteresis/dwell discipline,
// the clean-path queue-overflow taxonomy bucket, MAC slot auto-sizing, the
// armed-but-idle bit-identity contract, and the fleet grid's SIR/motion
// axes under the byte-identical parallel-vs-serial contract.

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/ble_link.hpp"
#include "comm/channel_dynamics.hpp"
#include "comm/tdma.hpp"
#include "comm/wir_link.hpp"
#include "common/units.hpp"
#include "core/fleet.hpp"
#include "core/sweep_runner.hpp"
#include "net/degradation.hpp"
#include "net/device_library.hpp"
#include "net/network_sim.hpp"
#include "phy/body_motion.hpp"
#include "phy/interference.hpp"
#include "phy/modulation.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace iob {
namespace {

// ---- body-motion process ----------------------------------------------------

/// A two-state still<->occlusion chain with fixed sojourns: still dwells
/// 2 s, occlusion 0.5 s, each state's only successor is the other.
phy::BodyMotionParams two_state_chain() {
  phy::BodyMotionParams p;
  p.deterministic_sojourns = true;
  p.initial = phy::MotionState::kStill;
  auto& still = p.states[static_cast<std::size_t>(phy::MotionState::kStill)];
  still.mean_sojourn_s = 2.0;
  still.gain_delta_db = 0.0;
  still.next = {0.0, 0.0, 0.0, 1.0};
  auto& occl = p.states[static_cast<std::size_t>(phy::MotionState::kOcclusion)];
  occl.mean_sojourn_s = 0.5;
  occl.gain_delta_db = -18.0;
  occl.next = {1.0, 0.0, 0.0, 0.0};
  for (phy::MotionState s : {phy::MotionState::kWalk, phy::MotionState::kRun}) {
    auto& gait = p.states[static_cast<std::size_t>(s)];
    gait.mean_sojourn_s = 1.0;
    gait.next = {1.0, 0.0, 0.0, 0.0};
  }
  return p;
}

// Hand-computed trace: sojourns alternate 2.0 / 0.5, so the timeline is
// still [0,2), occl [2,2.5), still [2.5,4.5), occl [4.5,5), still [5,7),
// occl [7,7.5). At t = 7.25 five transitions have completed and the
// completed-sojourn occupancy is still 6.0 s / occlusion 1.0 s (the open
// occlusion sojourn is excluded by contract).
TEST(BodyMotion, TwoStateDeterministicTraceIsExact) {
  phy::BodyMotionProcess proc(two_state_chain(), sim::Rng(7));
  EXPECT_EQ(proc.state_at(0.0), phy::MotionState::kStill);
  EXPECT_EQ(proc.state_at(1.999), phy::MotionState::kStill);
  EXPECT_EQ(proc.state_at(2.0), phy::MotionState::kStill);  // end-exclusive dwell
  EXPECT_EQ(proc.state_at(2.25), phy::MotionState::kOcclusion);
  EXPECT_DOUBLE_EQ(proc.gain_delta_db(2.25), -18.0);
  EXPECT_EQ(proc.state_at(3.0), phy::MotionState::kStill);
  EXPECT_EQ(proc.state_at(7.25), phy::MotionState::kOcclusion);
  EXPECT_EQ(proc.transitions(), 5u);
  const auto& occ = proc.occupancy_s();
  EXPECT_DOUBLE_EQ(occ[static_cast<std::size_t>(phy::MotionState::kStill)], 6.0);
  EXPECT_DOUBLE_EQ(occ[static_cast<std::size_t>(phy::MotionState::kOcclusion)], 1.0);
  EXPECT_DOUBLE_EQ(occ[static_cast<std::size_t>(phy::MotionState::kWalk)], 0.0);
}

TEST(BodyMotion, ProfilesProduceActivityOverALongHorizon) {
  for (phy::BodyMotionParams params : {phy::BodyMotionParams{}, phy::walking_profile(),
                                       phy::running_profile()}) {
    phy::BodyMotionProcess proc(params, sim::Rng(11));
    (void)proc.state_at(600.0);
    EXPECT_GT(proc.transitions(), 10u);
    double total = 0.0;
    for (double s : proc.occupancy_s()) {
      EXPECT_GE(s, 0.0);
      total += s;
    }
    EXPECT_LE(total, 600.0);  // open sojourn excluded
    EXPECT_GT(total, 500.0);
  }
}

TEST(BodyMotion, RejectsNonPositiveSojournsAndDeadEnds) {
  phy::BodyMotionParams bad = two_state_chain();
  bad.states[0].mean_sojourn_s = 0.0;
  EXPECT_THROW(phy::BodyMotionProcess(bad, sim::Rng(1)), std::invalid_argument);
  phy::BodyMotionParams dead = two_state_chain();
  dead.states[static_cast<std::size_t>(phy::MotionState::kOcclusion)].next = {};
  EXPECT_THROW(phy::BodyMotionProcess(dead, sim::Rng(1)), std::invalid_argument);
}

// ---- interference field -----------------------------------------------------

TEST(Interference, CleanLevelIsInactiveAndChangesNothing) {
  const phy::InterferenceField field;  // default: no aggressors
  EXPECT_FALSE(field.active());
  EXPECT_DOUBLE_EQ(field.active_probability(), 0.0);
  const double quiet =
      1.0 - phy::packet_success_probability(
                phy::bit_error_rate(phy::Modulation::kOok, units::from_db(14.0)), 2016);
  EXPECT_DOUBLE_EQ(field.frame_error_rate(phy::Modulation::kOok, 14.0, 2016), quiet);
}

// p_active = 1 - (1-d)^n and the collided-state SIR folds the mean number
// of simultaneously active aggressors (conditioned on >= 1 active) into the
// single-aggressor SIR.
TEST(Interference, ActivationAndAggregateSirAnalytics) {
  phy::SirLevel level;
  level.aggressors = 2;
  level.duty_cycle = 0.5;
  level.aggressor_sir_db = 0.0;
  level.rejection_db = 20.0;
  const phy::InterferenceField field(level);
  EXPECT_TRUE(field.active());
  EXPECT_DOUBLE_EQ(field.active_probability(), 0.75);
  EXPECT_NEAR(field.aggregate_sir_db(), 0.0 - units::to_db(1.0 / 0.75), 1e-12);
  EXPECT_DOUBLE_EQ(
      field.effective_snir_db(14.0),
      phy::effective_snir_db(14.0, field.aggregate_sir_db(), level.rejection_db));
}

TEST(Interference, FerIsTheDutyWeightedMixture) {
  phy::SirLevel level;
  level.aggressors = 2;
  level.duty_cycle = 0.5;
  level.aggressor_sir_db = 0.0;
  level.rejection_db = 20.0;
  const phy::InterferenceField field(level);
  const auto fer = [](double snr_db, unsigned bits) {
    return 1.0 - phy::packet_success_probability(
                     phy::bit_error_rate(phy::Modulation::kOok, units::from_db(snr_db)), bits);
  };
  const double quiet = fer(14.0, 2016);
  const double hit = fer(field.effective_snir_db(14.0), 2016);
  EXPECT_GT(hit, quiet);
  EXPECT_DOUBLE_EQ(field.frame_error_rate(phy::Modulation::kOok, 14.0, 2016),
                   0.25 * quiet + 0.75 * hit);
  EXPECT_GT(field.fer_multiplier(phy::Modulation::kOok, 14.0, 2016), 1.0);
}

// ---- channel dynamics composition ------------------------------------------

// The bit-identity anchor: while the motion chain sits in a 0 dB state and
// interference is absent, the overlay must return the base FER verbatim.
TEST(ChannelDynamics, StillMotionReturnsBaseFerVerbatim) {
  const comm::WiRLink link;
  comm::ChannelDynamicsConfig cfg;
  cfg.motion = two_state_chain();  // still (0 dB) until t = 2
  comm::ChannelDynamics dyn(link, cfg, sim::Rng(3));
  const double base = 0.1234;  // arbitrary: must pass through untouched
  EXPECT_DOUBLE_EQ(dyn.loss_probability(0.5, 240, base), base);
  EXPECT_DOUBLE_EQ(dyn.loss_probability(1.9, 240, base), base);
  // Inside the occlusion the FER is recomputed at the displaced SNR and
  // must dominate the clean value.
  EXPECT_GT(dyn.loss_probability(2.2, 240, link.frame_error_rate(240)), 0.5);
}

// ---- degradation controller -------------------------------------------------

TEST(Degradation, LadderValidatesRungZeroIdentity) {
  const std::vector<net::DegradationStep> ladder = net::default_degradation_ladder();
  ASSERT_GE(ladder.size(), 2u);
  EXPECT_DOUBLE_EQ(ladder[0].bitrate_scale, 1.0);
  EXPECT_EQ(ladder[0].shed_modulus, 1u);
  EXPECT_FALSE(ladder[0].int8_wire);
  EXPECT_FALSE(ladder[0].hub_only_split);

  net::DegradationConfig bad;
  bad.ladder = ladder;
  bad.ladder[0].bitrate_scale = 0.5;  // rung 0 must be the identity
  EXPECT_THROW(net::DegradationController{bad}, std::invalid_argument);
}

// A channel riding the threshold band — alternating just under the limit
// and just under it divided by nothing — must never re-arm an up-step:
// stepping up demands every metric below limit/hysteresis.
TEST(Degradation, HysteresisBandNeverOscillates) {
  net::DegradationConfig cfg;
  cfg.max_loss = 0.10;
  cfg.hysteresis = 1.15;
  cfg.min_dwell_s = 0.0;  // isolate the hysteresis discipline from dwell
  net::DegradationController ctrl(cfg);

  double t = 0.0;
  EXPECT_EQ(ctrl.update({/*loss=*/0.12, 0.0, 0}, t), 1u);  // stressed: step down
  // Ride the band: 0.095 is under the 0.10 limit but over 0.10/1.15.
  for (int i = 0; i < 100; ++i) {
    t += 0.1;
    const double loss = (i % 2 == 0) ? 0.095 : 0.0999;
    EXPECT_EQ(ctrl.update({loss, 0.0, 0}, t), 1u) << "oscillated at i=" << i;
  }
  EXPECT_EQ(ctrl.transitions(), 1u);
  // Dropping clearly below the band recovers.
  t += 0.1;
  EXPECT_EQ(ctrl.update({0.05, 0.0, 0}, t), 0u);
  EXPECT_EQ(ctrl.transitions(), 2u);
  EXPECT_DOUBLE_EQ(ctrl.last_recovery_s(), t);
}

TEST(Degradation, MinDwellGatesBackToBackTransitions) {
  net::DegradationConfig cfg;
  cfg.min_dwell_s = 0.5;
  net::DegradationController ctrl(cfg);
  EXPECT_EQ(ctrl.update({0.5, 0.0, 0}, 0.0), 1u);   // first transition is free
  EXPECT_EQ(ctrl.update({0.5, 0.0, 0}, 0.1), 1u);   // inside the dwell window
  EXPECT_EQ(ctrl.update({0.5, 0.0, 0}, 0.49), 1u);
  EXPECT_EQ(ctrl.update({0.5, 0.0, 0}, 0.6), 2u);   // dwell expired
  EXPECT_EQ(ctrl.transitions(), 2u);
}

TEST(Degradation, FullDescentThenRecoveryTelemetry) {
  net::DegradationConfig cfg;
  cfg.min_dwell_s = 0.1;
  net::DegradationController ctrl(cfg);
  const std::size_t bottom = net::default_degradation_ladder().size() - 1;
  double t = 0.0;
  for (std::size_t i = 0; i < bottom + 3; ++i) {  // +3: saturates at the bottom
    t += 0.2;
    ctrl.update({0.9, 0.9, 1000}, t);
  }
  EXPECT_EQ(ctrl.current_index(), bottom);
  EXPECT_EQ(ctrl.max_step(), bottom);
  EXPECT_EQ(ctrl.transitions(), static_cast<std::uint64_t>(bottom));
  const double degraded_so_far = ctrl.time_degraded_s(t);
  EXPECT_GT(degraded_so_far, 0.0);
  double recovered_at = 0.0;
  while (ctrl.current_index() > 0) {
    t += 0.2;
    ctrl.update({0.0, 0.0, 0}, t);
    recovered_at = t;
  }
  EXPECT_EQ(ctrl.transitions(), static_cast<std::uint64_t>(2 * bottom));
  EXPECT_EQ(ctrl.max_step(), bottom);  // max is sticky
  EXPECT_DOUBLE_EQ(ctrl.last_recovery_s(), recovered_at);
  // Degraded time stops accruing on rung 0.
  EXPECT_DOUBLE_EQ(ctrl.time_degraded_s(t + 100.0), ctrl.time_degraded_s(t));
}

// ---- clean-path overflow taxonomy ------------------------------------------

// A hub-up node offered far more than its slots can drain against a tiny
// queue: every drop must land in the new `dropped_overflow_clean` bucket
// (not the hub-down store-and-retry bucket) and the five-way taxonomy must
// partition `frames_dropped` exactly.
TEST(Taxonomy, CleanQueueOverflowPartitionsExactly) {
  net::NetworkConfig nc;
  nc.seed = 5;
  nc.mac.max_queue_frames = 4;
  net::NetworkSim sim(core::make_bus_link(core::BusKind::kWiR), nc);
  net::NodeConfig leaf;
  leaf.name = "firehose";
  leaf.stream = leaf.name;
  leaf.output_rate_bps = 4e6;  // ~2x what one slot per superframe drains
  leaf.frame_bytes = 240;
  sim.add_node(leaf);
  const net::NetworkReport report = sim.run(1.0);
  ASSERT_EQ(report.nodes.size(), 1u);
  const net::NodeReport& n = report.nodes[0];
  EXPECT_GT(n.frames_dropped, 0u);
  EXPECT_GT(n.dropped_overflow_clean, 0u);
  EXPECT_EQ(n.dropped_overflow, 0u);  // the hub never went down
  EXPECT_EQ(n.dropped_shed, 0u);      // no controller armed
  EXPECT_EQ(n.frames_dropped, n.dropped_arq + n.dropped_fault + n.dropped_overflow +
                                  n.dropped_overflow_clean + n.dropped_shed);
}

// ---- armed-but-idle bit-identity -------------------------------------------

TEST(Degradation, ArmedIdleControllerIsBitIdenticalOnCleanChannel) {
  const auto run = [](bool controller) {
    net::NetworkConfig nc;
    nc.seed = 9;
    net::NetworkSim sim(core::make_bus_link(core::BusKind::kWiR), nc);
    for (int i = 0; i < 3; ++i) {
      net::NodeConfig leaf;
      leaf.name = "audio-" + std::to_string(i);
      leaf.stream = leaf.name;
      leaf.output_rate_bps = 64e3;
      leaf.phase_s = 1e-3 * i;
      if (controller) leaf.degradation = net::DegradationConfig{};
      sim.add_node(leaf);
    }
    return sim.run(3.0);
  };
  const net::NetworkReport off = run(false);
  const net::NetworkReport on = run(true);
  ASSERT_EQ(on.nodes.size(), off.nodes.size());
  EXPECT_EQ(on.aggregate_goodput_bps, off.aggregate_goodput_bps);
  for (std::size_t i = 0; i < on.nodes.size(); ++i) {
    EXPECT_EQ(on.nodes[i].frames_delivered, off.nodes[i].frames_delivered);
    EXPECT_EQ(on.nodes[i].frames_dropped, off.nodes[i].frames_dropped);
    EXPECT_EQ(on.nodes[i].mean_latency_s, off.nodes[i].mean_latency_s);
    EXPECT_EQ(on.nodes[i].average_power_w, off.nodes[i].average_power_w);
    EXPECT_EQ(on.nodes[i].degradation_transitions, 0u);
    EXPECT_EQ(on.nodes[i].time_degraded_s, 0.0);
  }
}

// Under interference the controller must actually engage, and its
// telemetry must credit through to the hub session stats.
TEST(Degradation, StressedControllerCreditsSessionTelemetry) {
  net::NetworkConfig nc;
  nc.seed = 13;
  nc.dynamics.interference = phy::SirLevel{2, 1.0, -5.3, 20.0};
  net::NetworkSim sim(core::make_bus_link(core::BusKind::kWiR), nc);
  net::NodeConfig leaf;
  leaf.name = "audio";
  leaf.stream = leaf.name;
  leaf.output_rate_bps = 150e3;
  leaf.settle_period_s = 0.1;
  leaf.degradation = net::DegradationConfig{};
  sim.add_node(leaf);
  net::SessionConfig session;
  session.stream = "audio";
  session.macs_per_inference = 1'000'000;
  session.bytes_per_inference = 16'000;
  sim.add_session(session);
  const net::NetworkReport report = sim.run(5.0);
  const net::NodeReport& n = report.nodes[0];
  EXPECT_GT(n.degradation_max_step, 0u);
  EXPECT_GT(n.degradation_transitions, 0u);
  EXPECT_GT(n.time_degraded_s, 0.0);
  const net::SessionStats& stats = sim.hub().session("audio");
  EXPECT_EQ(stats.degradation_transitions, n.degradation_transitions);
  EXPECT_DOUBLE_EQ(stats.degradation_time_s, n.time_degraded_s);
  EXPECT_EQ(stats.frames_saved_by_shedding, n.dropped_shed);
  EXPECT_GT(stats.frames_saved_by_shedding, 0u);
}

// ---- MAC slot auto-sizing ---------------------------------------------------

TEST(AutoSlot, DerivedSlotMatchesLinkRateAndDefaultIsUntouched) {
  sim::Simulator s1(1), s2(1), s3(1);
  const comm::WiRLink wir;
  comm::TdmaConfig auto_cfg;
  auto_cfg.slot_s = 0.0;  // request auto-sizing
  comm::TdmaBus auto_bus(s1, wir, auto_cfg);
  comm::TdmaConfig explicit_cfg;
  explicit_cfg.slot_s = wir.frame_time_s(240) * 1.25;
  comm::TdmaBus explicit_bus(s2, wir, explicit_cfg);
  auto_bus.add_node("a");
  explicit_bus.add_node("a");
  EXPECT_DOUBLE_EQ(auto_bus.superframe_duration_s(), explicit_bus.superframe_duration_s());

  comm::TdmaBus default_bus(s3, wir, comm::TdmaConfig{});
  default_bus.add_node("a");
  EXPECT_NE(default_bus.superframe_duration_s(), auto_bus.superframe_duration_s());
}

// BLE's PHY is ~4x slower than Wi-R's: the hand-set 1 ms default slot
// cannot carry a 240 B frame there, but an auto-sized bus can.
TEST(AutoSlot, BleNetworkRunsWithAutoSizedSlots) {
  net::NetworkConfig nc;
  nc.seed = 21;
  nc.mac.slot_s = 0.0;
  net::NetworkSim sim(core::make_bus_link(core::BusKind::kBle), nc);
  net::NodeConfig leaf;
  leaf.name = "imu";
  leaf.stream = leaf.name;
  leaf.output_rate_bps = 20e3;
  sim.add_node(leaf);
  const net::NetworkReport report = sim.run(1.0);
  EXPECT_GT(report.nodes[0].frames_delivered, 0u);
}

// ---- fleet SIR/motion axes --------------------------------------------------

core::FleetAxes stressed_axes() {
  core::FleetAxes axes;
  axes.node_counts = {2};
  net::NodeConfig audio;
  audio.name = "audio";
  audio.sense_power_w = 150e-6;
  audio.output_rate_bps = 64e3;
  audio.settle_period_s = 0.1;
  audio.degradation = net::DegradationConfig{};
  axes.mixes = {{"audio", {{audio, 1, std::nullopt}}}};
  axes.sir_levels = {{}, {"gym", {2, 1.0, -5.3, 20.0}}};
  axes.motion = {{}, {"two-state", true, two_state_chain()}};
  axes.seeds = {1};
  // Long enough that the two-state chain's first occlusion (t = 2..2.5)
  // falls inside the run and the ladder reacts to it.
  axes.duration_s = 3.0;
  return axes;
}

TEST(FleetChannel, StressedAxesAreByteIdenticalAcrossThreadCounts) {
  const core::Fleet fleet(stressed_axes());
  ASSERT_EQ(fleet.size(), 4u);  // 2 SIR x 2 motion
  const std::string serial = core::fleet_results_csv(fleet.run(core::SweepRunner(1)));
  EXPECT_EQ(serial, core::fleet_results_csv(fleet.run(core::SweepRunner(2))));
  EXPECT_EQ(serial, core::fleet_results_csv(fleet.run(core::SweepRunner(8))));
  // Stressed coordinates serialize as :i / :m suffixes; the clean point
  // keeps the bare coord prefix.
  EXPECT_NE(serial.find(":i1"), std::string::npos);
  EXPECT_NE(serial.find(":m1"), std::string::npos);
}

TEST(FleetChannel, StressedPointsEngageTheLadderAndCleanOnesDoNot) {
  const core::Fleet fleet(stressed_axes());
  const std::vector<core::FleetPointResult> results = fleet.run(core::SweepRunner(0));
  for (const core::FleetPointResult& r : results) {
    const bool stressed = r.coord[core::kAxisSir] != 0 || r.coord[core::kAxisMotion] != 0;
    std::uint64_t transitions = 0;
    for (const net::NodeReport& n : r.report.nodes) transitions += n.degradation_transitions;
    if (stressed) {
      EXPECT_GT(transitions, 0u) << "stressed point " << r.index << " never degraded";
    } else {
      EXPECT_EQ(transitions, 0u) << "clean point " << r.index << " degraded";
    }
  }
}

TEST(FleetChannel, DefaultAxesEmitNoSirOrMotionSuffixes) {
  core::FleetAxes axes = stressed_axes();
  axes.sir_levels = {{}};
  axes.motion = {{}};
  const core::Fleet fleet(axes);
  const std::string csv = core::fleet_results_csv(fleet.run(core::SweepRunner(1)));
  for (const char* tag : {":i1", ":i2", ":m1", ":m2"}) {
    EXPECT_EQ(csv.find(tag), std::string::npos) << tag;
  }
}

// ---- device-library motion-heavy suite --------------------------------------

// The preset's contract: three leaves (watch/patch/earbud), every one with
// the ladder armed, settle cadence well inside a gait sojourn, and the
// running-wearer motion profile ready to install via NetworkConfig.
TEST(DeviceLibrary, MotionHeavySuiteShipsArmedOnARunningWearer) {
  const net::SuitePreset suite = net::motion_heavy_suite();
  ASSERT_EQ(suite.nodes.size(), 3u);
  EXPECT_EQ(suite.nodes[0].name, "watch");
  EXPECT_EQ(suite.nodes[1].name, "patch");
  EXPECT_EQ(suite.nodes[2].name, "earbud");
  for (const auto& n : suite.nodes) {
    EXPECT_TRUE(n.degradation.has_value()) << n.name;
    EXPECT_LE(n.settle_period_s, 0.5) << n.name;
  }
  EXPECT_EQ(suite.motion.initial, phy::MotionState::kRun);
  // The suite must actually run under its own motion profile: the chain
  // validates (no dead ends) and an armed network survives a short episode.
  comm::WiRLink link;
  net::NetworkConfig cfg{/*seed=*/3};
  cfg.dynamics.motion = suite.motion;
  net::NetworkSim sim(link, cfg);
  for (net::NodeConfig n : suite.nodes) sim.add_node(std::move(n));
  const net::NetworkReport r = sim.run(2.0);
  ASSERT_EQ(r.nodes.size(), 3u);
  std::uint64_t delivered = 0;
  for (const auto& n : r.nodes) delivered += n.frames_delivered;
  EXPECT_GT(delivered, 0u);
}

}  // namespace
}  // namespace iob
