// Tests for the int8 quantized execution path (ISSUE 5): quantization
// round-trip error against `quant_error_bound`, the int8 GEMM against a
// naive int32 reference on edge shapes (every dispatch tier shares exact
// integer arithmetic), the fused quantize/dequantize epilogue against the
// standalone helpers, zoo-model accuracy bounds and top-1 agreement with
// the f32 oracle, batch invariance, the interposer-verified zero-allocation
// steady state, precision-aware hub sessions (analytic + execute-and-meter),
// and 1/2/8-thread fleet-CSV determinism with the precision axis enabled.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "comm/wir_link.hpp"
#include "common/alloc_interposer.hpp"  // defines global operator new/delete
#include "core/fleet.hpp"
#include "core/sweep_runner.hpp"
#include "net/network_sim.hpp"
#include "nn/gemm.hpp"
#include "nn/model_zoo.hpp"
#include "nn/precision.hpp"
#include "nn/qmodel.hpp"
#include "nn/quantize.hpp"
#include "nn/tensor.hpp"
#include "nn/workspace.hpp"
#include "partition/partitioner.hpp"

namespace iob {
namespace {

std::atomic<std::uint64_t>& g_alloc_count = iob::alloc_interposer::new_calls;

using namespace iob::nn;

Model zoo_model(int idx) {
  return idx == 0 ? make_kws_dscnn() : idx == 1 ? make_ecg_cnn1d() : make_vww_micronet();
}

int argmax(const float* d, std::int64_t n) {
  int best = 0;
  for (std::int64_t i = 1; i < n; ++i) {
    if (d[i] > d[best]) best = static_cast<int>(i);
  }
  return best;
}

// ---- quantize.hpp round-trip property ---------------------------------------

TEST(QuantizeProperty, RoundTripErrorWithinBoundAcrossRandomTensors) {
  for (int salt = 0; salt < 24; ++salt) {
    Tensor t = patterned_tensor(Shape{7, 11}, salt);
    // Vary the dynamic range across salts (asymmetric, tiny, large).
    const float stretch = 0.01f + 37.5f * static_cast<float>(salt) / 24.0f;
    const float offset = (salt % 3 == 0 ? 2.0f : salt % 3 == 1 ? -0.5f : 0.0f);
    for (std::int64_t i = 0; i < t.size(); ++i) t[i] = t[i] * stretch + offset;

    const QuantizedTensor q = quantize(t);
    const Tensor back = dequantize(q);
    const double bound = quant_error_bound(q.params);
    EXPECT_GT(bound, 0.0);
    for (std::int64_t i = 0; i < t.size(); ++i) {
      EXPECT_LE(std::abs(static_cast<double>(t[i]) - back[i]), bound + 1e-7)
          << "salt " << salt << " elem " << i;
    }
  }
}

TEST(QuantizeProperty, StagingQuantizerMatchesQuantize) {
  // Same round-half-away rule; the staging kernel multiplies by the
  // reciprocal where quantize() divides, which may legitimately differ by
  // one step exactly at half-way ties — never more.
  const Tensor t = patterned_tensor(Shape{333}, 5);
  const QuantizedTensor q = quantize(t);
  std::vector<std::int8_t> staged(static_cast<std::size_t>(t.size()));
  quantize_f32_to_s8(t.data(), t.size(), q.params.scale, q.params.zero_point, staged.data());
  for (std::int64_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::abs(static_cast<int>(staged[static_cast<std::size_t>(i)]) -
                       static_cast<int>(q.data[static_cast<std::size_t>(i)])),
              1)
        << "elem " << i;
  }
}

// ---- int8 GEMM vs naive int32 reference -------------------------------------

/// Naive reference over the raw quantized operands (row-major A with zero
/// point za, K-major B with per-column zero points).
void naive_gemm_s8(std::int64_t M, std::int64_t N, std::int64_t K, const std::int8_t* A,
                   std::int32_t za, const std::int8_t* Bkm, const std::int32_t* zw,
                   std::int32_t* C) {
  for (std::int64_t m = 0; m < M; ++m) {
    for (std::int64_t n = 0; n < N; ++n) {
      std::int32_t acc = 0;
      for (std::int64_t k = 0; k < K; ++k) {
        acc += (A[m * K + k] - za) * (Bkm[k * N + n] - zw[n]);
      }
      C[m * N + n] = acc;
    }
  }
}

TEST(GemmS8, MatchesNaiveInt32AcrossEdgeShapes) {
  // Shapes straddle every dispatch tier and remainder: scalar-only (N < 8),
  // SSE2 tiles, AVX2 (N = 16+), AVX-512 (N = 32+), odd K (pair padding),
  // M remainders, K spanning multiple 256-element blocks.
  const struct {
    std::int64_t M, N, K;
  } cases[] = {{5, 3, 7},    {8, 8, 16},   {9, 16, 27},  {4, 32, 31},  {13, 40, 64},
               {7, 64, 129}, {3, 48, 300}, {1, 33, 513}, {6, 17, 255}, {2, 128, 600}};
  for (const auto& c : cases) {
    std::vector<std::int8_t> A(static_cast<std::size_t>(c.M * c.K));
    std::vector<std::int8_t> B(static_cast<std::size_t>(c.K * c.N));
    std::vector<std::int32_t> zw(static_cast<std::size_t>(c.N));
    for (std::size_t i = 0; i < A.size(); ++i) {
      A[i] = static_cast<std::int8_t>((static_cast<int>(i) * 37 + 11) % 251 - 125);
    }
    for (std::size_t i = 0; i < B.size(); ++i) {
      B[i] = static_cast<std::int8_t>((static_cast<int>(i) * 53 + 7) % 249 - 124);
    }
    for (std::size_t i = 0; i < zw.size(); ++i) zw[i] = static_cast<std::int32_t>(i % 11) - 5;
    const std::int32_t za = -3;

    std::vector<std::int16_t> bop(static_cast<std::size_t>(((c.K + 1) / 2) * c.N * 2));
    pack_b_s8(B.data(), c.K, c.N, zw.data(), bop.data());
    std::vector<std::int32_t> got(static_cast<std::size_t>(c.M * c.N));
    std::vector<std::int32_t> ref(static_cast<std::size_t>(c.M * c.N));
    gemm_s8(c.M, c.N, c.K, A.data(), za, bop.data(), got.data());
    naive_gemm_s8(c.M, c.N, c.K, A.data(), za, B.data(), zw.data(), ref.data());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i], got[i]) << "M=" << c.M << " N=" << c.N << " K=" << c.K << " i=" << i;
    }
  }
}

TEST(GemmS8, DispatchTiersBitIdenticalUnderForcedCaps) {
  // On a wide-ISA host (CI containers have AVX-512BW) this exercises every
  // dispatch tier against the scalar/SSE2 baseline via the test hook; on
  // narrower hosts the higher caps clamp to the hardware and the test
  // degenerates gracefully.
  const std::int64_t M = 11, N = 72, K = 129;
  std::vector<std::int8_t> A(static_cast<std::size_t>(M * K));
  std::vector<std::int8_t> B(static_cast<std::size_t>(K * N));
  std::vector<std::int32_t> zw(static_cast<std::size_t>(N));
  std::vector<float> bias(static_cast<std::size_t>(N), 0.05f);
  for (std::size_t i = 0; i < A.size(); ++i) {
    A[i] = static_cast<std::int8_t>((static_cast<int>(i) * 29 + 3) % 255 - 127);
  }
  for (std::size_t i = 0; i < B.size(); ++i) {
    B[i] = static_cast<std::int8_t>((static_cast<int>(i) * 43 + 17) % 253 - 126);
  }
  for (std::size_t i = 0; i < zw.size(); ++i) zw[i] = static_cast<std::int32_t>(i % 7) - 3;
  std::vector<std::int16_t> bop(static_cast<std::size_t>(((K + 1) / 2) * N * 2));
  pack_b_s8(B.data(), K, N, zw.data(), bop.data());

  std::vector<std::vector<std::int32_t>> raw;
  std::vector<std::vector<std::int8_t>> quant;
  for (const int cap : {0, 1, 2, -1}) {
    set_int8_dispatch_cap(cap);
    raw.emplace_back(static_cast<std::size_t>(M * N));
    gemm_s8(M, N, K, A.data(), 2, bop.data(), raw.back().data());
    quant.emplace_back(static_cast<std::size_t>(M * N));
    std::vector<std::int32_t> scratch(static_cast<std::size_t>(M * N));
    QuantEpilogue epi;
    epi.bias = bias.data();
    epi.scale = 0.002f;
    epi.relu_cap = 0.0f;
    epi.inv_out_scale = 25.0f;
    epi.out_zero = -5;
    epi.dst = quant.back().data();
    gemm_s8(M, N, K, A.data(), 2, bop.data(), scratch.data(), &epi);
  }
  set_int8_dispatch_cap(-1);
  for (std::size_t t = 1; t < raw.size(); ++t) {
    EXPECT_EQ(raw[0], raw[t]) << "tier cap index " << t;
    EXPECT_EQ(quant[0], quant[t]) << "tier cap index " << t;
  }
}

TEST(GemmS8, FusedEpilogueMatchesStandaloneRequantize) {
  const std::int64_t M = 9, N = 40, K = 55;
  std::vector<std::int8_t> A(static_cast<std::size_t>(M * K));
  std::vector<std::int8_t> B(static_cast<std::size_t>(K * N));
  std::vector<std::int32_t> zw(static_cast<std::size_t>(N), 2);
  std::vector<float> bias(static_cast<std::size_t>(N));
  for (std::size_t i = 0; i < A.size(); ++i) A[i] = static_cast<std::int8_t>(i % 200 - 100);
  for (std::size_t i = 0; i < B.size(); ++i) B[i] = static_cast<std::int8_t>(i % 190 - 95);
  for (std::size_t i = 0; i < bias.size(); ++i) bias[i] = 0.02f * static_cast<float>(i) - 0.3f;
  std::vector<std::int16_t> bop(static_cast<std::size_t>(((K + 1) / 2) * N * 2));
  pack_b_s8(B.data(), K, N, zw.data(), bop.data());

  std::vector<std::int32_t> acc(static_cast<std::size_t>(M * N));
  gemm_s8(M, N, K, A.data(), -1, bop.data(), acc.data());

  for (const float relu_cap : {-1.0f, 0.0f, 6.0f}) {
    // Requant mode.
    std::vector<std::int8_t> want8(static_cast<std::size_t>(M * N));
    requantize_s8(acc.data(), M, N, bias.data(), 0.003f, relu_cap, 0.05f, -7, want8.data());
    std::vector<std::int8_t> got8(static_cast<std::size_t>(M * N));
    std::vector<std::int32_t> scratch(static_cast<std::size_t>(M * N));
    QuantEpilogue epi;
    epi.bias = bias.data();
    epi.scale = 0.003f;
    epi.relu_cap = relu_cap;
    epi.inv_out_scale = 1.0f / 0.05f;
    epi.out_zero = -7;
    epi.dst = got8.data();
    gemm_s8(M, N, K, A.data(), -1, bop.data(), scratch.data(), &epi);
    for (std::size_t i = 0; i < want8.size(); ++i) {
      ASSERT_EQ(want8[i], got8[i]) << "relu_cap " << relu_cap << " i " << i;
    }

    // Dequant mode.
    std::vector<float> wantf(static_cast<std::size_t>(M * N));
    dequantize_f32(acc.data(), M, N, bias.data(), 0.003f, relu_cap, wantf.data());
    std::vector<float> gotf(static_cast<std::size_t>(M * N));
    QuantEpilogue epif = epi;
    epif.dst = nullptr;
    epif.dstf = gotf.data();
    gemm_s8(M, N, K, A.data(), -1, bop.data(), scratch.data(), &epif);
    for (std::size_t i = 0; i < wantf.size(); ++i) {
      ASSERT_EQ(wantf[i], gotf[i]) << "relu_cap " << relu_cap << " i " << i;
    }
  }
}

TEST(GemmS8, Im2colFillsPadTapsWithZeroPoint) {
  // 3x3 input, 3x3 same-padded kernel: the corner patch has 5 pad taps.
  const std::int8_t in[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<std::int8_t> col(9 * 9);
  im2col_s8_nhwc(1, 3, 3, 1, 3, 3, 1, 1, 1, 1, 3, 3, /*zero_point=*/-9, in, col.data());
  // First output position (0,0): taps (ky,kx) over rows -1..1, cols -1..1.
  const std::int8_t want[] = {-9, -9, -9, -9, 1, 2, -9, 4, 5};
  for (int i = 0; i < 9; ++i) EXPECT_EQ(col[static_cast<std::size_t>(i)], want[i]) << i;
}

// ---- zoo accuracy vs the f32 oracle -----------------------------------------

TEST(QuantizedZoo, BoundedLogitErrorAndTop1AgreementOnDecisiveInputs) {
  // Quantization error bounds are empirical for these fixed deterministic
  // models/inputs (integer kernels are bit-stable across platforms). Top-1
  // agreement is then asserted wherever the f32 decision margin exceeds
  // TWICE the measured per-logit error — at that margin a flip is
  // mathematically impossible, so the assertion follows from the bound
  // instead of being a fourth independent empirical claim. A coin-flip
  // input (margin ~1e-3 on a 2-class random-weight model) is not decidable
  // at int8 resolution by construction.
  const double kMaxLogitErr = 0.05;
  constexpr int kInputs = 32;
  for (int idx = 0; idx < 3; ++idx) {
    const Model m = zoo_model(idx);
    const QuantizedModel qm(m);
    // Pass 1: per-input outputs and the model's measured error bound.
    std::vector<Tensor> f32_out, int8_out;
    double max_err = 0.0;
    for (int s = 0; s < kInputs; ++s) {
      const Tensor x = patterned_tensor(m.input_shape(), 100 + s);
      f32_out.push_back(m.forward(x));
      int8_out.push_back(qm.forward(x));
      ASSERT_EQ(f32_out.back().size(), int8_out.back().size()) << m.name();
      max_err = std::max(max_err, f32_out.back().max_abs_diff(int8_out.back()));
    }
    EXPECT_LE(max_err, kMaxLogitErr) << m.name();
    // Pass 2: agreement on every decisive input (margin > 2 * max_err).
    int decisive = 0;
    for (int s = 0; s < kInputs; ++s) {
      const Tensor& f = f32_out[static_cast<std::size_t>(s)];
      const Tensor& q = int8_out[static_cast<std::size_t>(s)];
      const int af = argmax(f.data(), f.size());
      double runner_up = -1e30;
      for (std::int64_t i = 0; i < f.size(); ++i) {
        if (static_cast<int>(i) != af) runner_up = std::max(runner_up, double{f[i]});
      }
      if (f[af] - runner_up > 2.0 * max_err) {
        ++decisive;
        EXPECT_EQ(argmax(q.data(), q.size()), af) << m.name() << " sample " << s;
      }
    }
    // The input set must actually exercise the agreement property.
    EXPECT_GE(decisive, kInputs * 3 / 4) << m.name();
  }
}

TEST(QuantizedZoo, WeightBytesMatchParameterFootprint) {
  for (int idx = 0; idx < 3; ++idx) {
    const Model m = zoo_model(idx);
    const QuantizedModel qm(m);
    // One int8 byte per weight; biases stay f32 (not streamed per pass).
    std::uint64_t weights = 0;
    for (std::size_t i = 0; i < m.layer_count(); ++i) weights += m.layer(i).param_count();
    EXPECT_GT(qm.weight_bytes(), 0);
    EXPECT_LE(qm.weight_bytes(), static_cast<std::int64_t>(weights)) << m.name();
  }
}

// ---- batch invariance -------------------------------------------------------

TEST(QuantizedEngine, BatchedResultsBitIdenticalToSingleSample) {
  // Integer accumulation is batch-invariant, and the epilogue is
  // elementwise — so unlike a float engine, the int8 path is bit-identical
  // across batch sizes by construction. Assert it.
  for (int idx = 0; idx < 3; ++idx) {
    const Model m = zoo_model(idx);
    const QuantizedModel qm(m);
    constexpr int kBatch = 4;
    std::vector<Tensor> inputs;
    for (int s = 0; s < kBatch; ++s) inputs.push_back(patterned_tensor(m.input_shape(), 40 + s));
    const Tensor stacked = stack_batch(inputs);
    const Tensor batched = qm.run_batched(stacked);
    for (int s = 0; s < kBatch; ++s) {
      const Tensor single = qm.forward(inputs[static_cast<std::size_t>(s)]);
      EXPECT_EQ(batched.batch_item(s).max_abs_diff(single), 0.0)
          << m.name() << " sample " << s;
    }
  }
}

// ---- zero-allocation steady state -------------------------------------------

TEST(QuantizedEngine, SteadyStateInferenceLoopNeverTouchesTheHeap) {
  const Model models[] = {zoo_model(0), zoo_model(1), zoo_model(2)};
  std::vector<std::unique_ptr<QuantizedModel>> qms;
  for (const Model& m : models) qms.push_back(std::make_unique<QuantizedModel>(m));
  Workspace ws;
  std::vector<Tensor> inputs, batched;
  for (std::size_t i = 0; i < 3; ++i) {
    inputs.push_back(patterned_tensor(models[i].input_shape(), 5));
    Shape bshape{4};
    const Shape& in = models[i].input_shape();
    bshape.insert(bshape.end(), in.begin(), in.end());
    batched.push_back(patterned_tensor(bshape, 6));
    ws.configure(*qms[i], 4);
  }
  // Warm-up: first passes may still grow the arenas to the high-water mark.
  for (std::size_t i = 0; i < 3; ++i) {
    qms[i]->run_into(ws, inputs[i].data(), 1);
    qms[i]->run_into(ws, batched[i].data(), 4);
  }
  const std::uint64_t before = g_alloc_count.load();
  float sink = 0.0f;
  for (int rep = 0; rep < 20; ++rep) {
    for (std::size_t i = 0; i < 3; ++i) {
      sink += qms[i]->run_into(ws, inputs[i].data(), 1)[0];
      sink += qms[i]->run_into(ws, batched[i].data(), 4)[0];
    }
  }
  const std::uint64_t allocs = g_alloc_count.load() - before;
  EXPECT_TRUE(std::isfinite(sink));
  EXPECT_EQ(allocs, 0u) << "steady-state int8 inference loop performed heap allocations";
}

// ---- shared Precision enum reaches the partitioner --------------------------

TEST(Precision, TransportPrecisionScalesPartitionerBoundaryBytes) {
  const Model m = zoo_model(1);  // ecg
  partition::CostModel cm;
  cm.leaf_hub = {"bus", 1e6, 100e-12, 40e-12, 1e-4};
  cm.hub_cloud = {"uplink", 20e6, 30e-9, 30e-9, 20e-3};
  cm.transport = nn::Precision::kInt8;
  const partition::PartitionPlan int8_plan =
      partition::Partitioner(m, cm).full_offload();
  cm.transport = nn::Precision::kF32;
  const partition::PartitionPlan f32_plan = partition::Partitioner(m, cm).full_offload();
  // f32 transport ships exactly 4x the int8 payload; the int8 wire adds its
  // quant-params header on top (see nn::activation_wire_bytes).
  EXPECT_EQ(f32_plan.bytes_leaf_to_hub,
            4 * (int8_plan.bytes_leaf_to_hub - nn::kActivationHeaderBytes));
  EXPECT_EQ(bytes_per_element(nn::Precision::kF32), 4);
  EXPECT_EQ(bytes_per_element(nn::Precision::kInt8), 1);
}

// ---- precision-aware hub sessions -------------------------------------------

net::SessionStats run_precision_session(nn::Precision precision, bool execute,
                                        const Model* net_model, unsigned batch_window = 0) {
  net::NetworkConfig cfg;
  cfg.seed = 11;
  cfg.hub.batch_window = batch_window;
  cfg.hub.execute_and_meter = execute;
  net::NetworkSim sim(std::make_unique<comm::WiRLink>(), cfg);
  net::NodeConfig n;
  n.name = "ecg-patch";
  n.stream = "ecg";
  n.output_rate_bps = 64e3;
  n.frame_bytes = 240;
  sim.add_node(n);
  net::SessionConfig s;
  s.stream = "ecg";
  s.macs_per_inference = 185'000;
  s.bytes_per_inference = 240;
  s.model = "ecg-cnn1d";
  s.weight_bytes = 9'000;
  s.net = net_model;
  s.precision = precision;
  sim.add_session(s);
  sim.run(1.0);
  return sim.hub().session("ecg");
}

TEST(PrecisionSessions, Int8AnalyticEnergyAppliesMacScale) {
  const net::SessionStats f32 = run_precision_session(nn::Precision::kF32, false, nullptr);
  const net::SessionStats int8 = run_precision_session(nn::Precision::kInt8, false, nullptr);
  ASSERT_GT(f32.inferences, 10u);
  ASSERT_EQ(f32.inferences, int8.inferences);
  const net::HubConfig defaults;
  // Hand-computed per-inference charges.
  const double mac_j = 185'000.0 * defaults.energy_per_mac_j;
  const double weight_j = 9'000.0 * defaults.energy_per_weight_byte_j;
  const double n = static_cast<double>(f32.inferences);
  EXPECT_NEAR(f32.compute_energy_j, n * (mac_j + weight_j), n * 1e-18);
  EXPECT_NEAR(int8.compute_energy_j,
              n * (mac_j * defaults.int8_mac_energy_scale + weight_j), n * 1e-18);
  EXPECT_LT(int8.compute_energy_j, f32.compute_energy_j);
  // The split buckets track the session's precision on the analytic path.
  EXPECT_EQ(f32.compute_energy_f32_j, f32.compute_energy_j);
  EXPECT_EQ(f32.compute_energy_int8_j, 0.0);
  EXPECT_EQ(int8.compute_energy_int8_j, int8.compute_energy_j);
  EXPECT_EQ(int8.compute_energy_f32_j, 0.0);
}

TEST(PrecisionSessions, F32LedgerBitIdenticalToPrePrecisionDefaults) {
  // SessionConfig::precision defaults to f32: the analytic ledger must be
  // exactly `macs * e_mac + weights * e_w` per inference — the same doubles
  // the pre-precision hub charged (x1.0 is exact).
  const net::SessionStats st = run_precision_session(nn::Precision::kF32, false, nullptr);
  const net::HubConfig defaults;
  const double per_inference = 185'000.0 * defaults.energy_per_mac_j +
                               9'000.0 * defaults.energy_per_weight_byte_j;
  double expect = 0.0;
  for (std::uint64_t i = 0; i < st.inferences; ++i) expect += per_inference;
  EXPECT_EQ(st.compute_energy_j, expect);
  EXPECT_EQ(st.compute_energy_j, st.analytic_compute_energy_j);
}

TEST(PrecisionSessions, ExecuteAndMeterInt8SplitsKernelTimeByPrecision) {
  const Model ecg = make_ecg_cnn1d();
  for (const unsigned window : {0u, 4u}) {
    const net::SessionStats st =
        run_precision_session(nn::Precision::kInt8, true, &ecg, window);
    ASSERT_GT(st.inferences, 10u) << "window " << window;
    EXPECT_EQ(st.executed_inferences, st.inferences) << "window " << window;
    EXPECT_GT(st.kernel_time_int8_s, 0.0) << "window " << window;
    EXPECT_EQ(st.kernel_time_f32_s, 0.0) << "window " << window;
    EXPECT_DOUBLE_EQ(st.kernel_time_s, st.kernel_time_int8_s) << "window " << window;
    const net::HubConfig defaults;
    EXPECT_DOUBLE_EQ(st.compute_energy_j, st.kernel_time_s * defaults.compute_power_w)
        << "window " << window;
    EXPECT_DOUBLE_EQ(st.compute_energy_int8_j, st.compute_energy_j) << "window " << window;
    EXPECT_EQ(st.compute_energy_f32_j, 0.0) << "window " << window;
    // The analytic ledger is independent of metering (it never clocks).
    const net::SessionStats analytic =
        run_precision_session(nn::Precision::kInt8, false, nullptr, window);
    EXPECT_EQ(st.analytic_compute_energy_j, analytic.analytic_compute_energy_j)
        << "window " << window;
  }
}

// ---- fleet determinism with the precision axis ------------------------------

core::FleetAxes precision_axes() {
  core::NodeClassSpec audio;
  audio.base.name = "audio";
  audio.base.sense_power_w = 150e-6;
  audio.base.output_rate_bps = 64e3;
  audio.base.slot_weight = 2;
  net::SessionConfig kws;
  kws.macs_per_inference = 2'500'000;
  kws.bytes_per_inference = 2'000;  // one pass per quarter second of audio
  kws.model = "kws-dscnn";
  kws.weight_bytes = 22'604;
  audio.session = kws;
  core::NodeClassSpec bio;
  bio.base.name = "bio";
  bio.base.sense_power_w = 8e-6;
  bio.base.output_rate_bps = 5e3;

  core::FleetAxes axes;
  axes.node_counts = {3};
  axes.mixes = {{"audio+bio", {audio, bio}}};
  axes.batch_windows = {0, 4};
  axes.precisions = {nn::Precision::kF32, nn::Precision::kInt8};
  axes.seeds = {7};
  axes.duration_s = 1.0;
  return axes;
}

TEST(PrecisionFleet, CsvByteIdenticalAt1_2_8Threads) {
  const core::Fleet fleet(precision_axes());
  const core::SweepRunner serial(1);
  const std::string reference = core::fleet_results_csv(fleet.run(serial));
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const core::SweepRunner runner(threads);
    EXPECT_EQ(reference, core::fleet_results_csv(fleet.run(runner)))
        << "thread count " << threads;
  }
}

TEST(PrecisionFleet, Int8HubsDrawLessPowerThanF32Hubs) {
  // The precision axis must actually move the ledger: averaged over the
  // grid, int8 hubs (MAC energy discounted by int8_mac_energy_scale) draw
  // less power than f32 hubs. Means absorb the per-point seed jitter
  // (sibling points intentionally never share an RNG stream).
  const core::Fleet fleet(precision_axes());
  const core::SweepRunner runner(1);
  const std::vector<core::FleetPointResult> results = fleet.run(runner);
  double f32_power = 0.0, int8_power = 0.0;
  std::size_t f32_points = 0, int8_points = 0;
  for (const auto& r : results) {
    if (r.coord[core::kAxisPrecision] == 0) {
      f32_power += r.report.hub_power_w;
      ++f32_points;
    } else {
      int8_power += r.report.hub_power_w;
      ++int8_points;
    }
  }
  ASSERT_GT(f32_points, 0u);
  ASSERT_EQ(f32_points, int8_points);
  EXPECT_LT(int8_power / static_cast<double>(int8_points),
            f32_power / static_cast<double>(f32_points));
}

}  // namespace
}  // namespace iob
