// Unit tests for the parallel sweep engine: sim::TaskPool (chunked static
// scheduling, exception propagation) and core::SweepRunner (bit-exact
// determinism at every thread count — the contract every parallel sweep in
// the repo relies on).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "comm/wir_link.hpp"
#include "core/explorer.hpp"
#include "core/sweep_runner.hpp"
#include "energy/battery.hpp"
#include "nn/model_zoo.hpp"
#include "partition/cost_model.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/task_pool.hpp"

namespace iob {
namespace {

// ---- TaskPool ---------------------------------------------------------------

TEST(TaskPool, ChunksPartitionTheRangeExactly) {
  for (const std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    for (const std::size_t workers : {1u, 2u, 3u, 8u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (std::size_t w = 0; w < workers; ++w) {
        const auto [begin, end] = sim::TaskPool::chunk(n, w, workers);
        EXPECT_EQ(begin, prev_end);  // contiguous, in order
        EXPECT_LE(begin, end);
        covered += end - begin;
        prev_end = end;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(TaskPool, ParallelForVisitsEveryIndexOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    sim::TaskPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(TaskPool, HandlesFewerItemsThanThreads) {
  sim::TaskPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  pool.parallel_for(0, [&](std::size_t, std::size_t) { FAIL() << "empty range ran"; });
}

TEST(TaskPool, PropagatesExceptionsToCaller) {
  sim::TaskPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t begin, std::size_t) {
                          if (begin == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool stays usable after a failed job.
  std::atomic<int> ok{0};
  pool.parallel_for(10, [&](std::size_t begin, std::size_t end) {
    ok += static_cast<int>(end - begin);
  });
  EXPECT_EQ(ok.load(), 10);
}

TEST(TaskPool, ReusableAcrossManyJobs) {
  sim::TaskPool pool(3);
  std::atomic<long> total{0};
  for (int job = 0; job < 50; ++job) {
    pool.parallel_for(64, [&](std::size_t begin, std::size_t end) {
      total += static_cast<long>(end - begin);
    });
  }
  EXPECT_EQ(total.load(), 50 * 64);
}

// ---- SweepRunner determinism ------------------------------------------------

/// A sweep point with real simulation content: its own Simulator, forked
/// RNG streams, periodic events. Any nondeterminism in the fan-out would
/// show up as bit drift in the result.
double sim_point(std::uint64_t seed) {
  sim::Simulator s(seed);
  sim::Rng r = s.rng().fork(3);
  double acc = 0.0;
  for (int src = 0; src < 4; ++src) {
    s.every(0.01 * (src + 1), 0.05, [&](sim::Time t) { acc += r.uniform() * t; });
  }
  s.run_until(2.0);
  return acc;
}

TEST(SweepRunner, ParallelResultsBitExactAcrossThreadCounts) {
  constexpr std::size_t kPoints = 64;
  const auto run = [&](std::size_t threads) {
    const core::SweepRunner runner(threads);
    return runner.map<double>(kPoints, [](std::size_t i) {
      return sim_point(core::SweepRunner::point_seed(42, i));
    });
  };
  const std::vector<double> serial = run(1);
  ASSERT_EQ(serial.size(), kPoints);
  for (const std::size_t threads : {2u, 8u}) {
    const std::vector<double> parallel = run(threads);
    ASSERT_EQ(parallel.size(), kPoints);
    // Bit-exact, not approximately equal.
    EXPECT_EQ(std::memcmp(serial.data(), parallel.data(), kPoints * sizeof(double)), 0)
        << "thread count " << threads;
  }
}

TEST(SweepRunner, MapAsyncIsByteIdenticalToMapAndOverlapsCaller) {
  // map_async must yield exactly map()'s bytes (same pool, same chunking,
  // same index-order merge), and the caller thread must be free to work
  // while the batch runs — the overlap Fleet::run_streaming relies on.
  constexpr std::size_t kPoints = 64;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const core::SweepRunner runner(threads);
    const std::function<double(std::size_t)> fn = [](std::size_t i) {
      return sim_point(core::SweepRunner::point_seed(42, i));
    };
    const std::vector<double> sync = runner.map<double>(kPoints, fn);

    core::BatchFuture<double> batch = runner.map_async<double>(kPoints, fn);
    EXPECT_TRUE(batch.valid());
    // Caller-side work while the batch executes on the helper thread.
    double folded = 0.0;
    for (std::size_t i = 0; i < 1000; ++i) folded += static_cast<double>(i);
    const std::vector<double> async = batch.get();
    EXPECT_FALSE(batch.valid());

    ASSERT_EQ(async.size(), sync.size());
    EXPECT_EQ(std::memcmp(sync.data(), async.data(), kPoints * sizeof(double)), 0)
        << "thread count " << threads;
    EXPECT_GT(folded, 0.0);
  }
}

TEST(SweepRunner, PointSeedsAreDeterministicAndDistinct) {
  EXPECT_EQ(core::SweepRunner::point_seed(7, 3), core::SweepRunner::point_seed(7, 3));
  EXPECT_NE(core::SweepRunner::point_seed(7, 3), core::SweepRunner::point_seed(7, 4));
  EXPECT_NE(core::SweepRunner::point_seed(7, 3), core::SweepRunner::point_seed(8, 3));
}

TEST(SweepRunner, MapOverForwardsInputsAndIndices) {
  const core::SweepRunner runner(2);
  const std::vector<int> inputs{10, 20, 30, 40, 50};
  const std::vector<double> out = runner.map_over<double, int>(
      inputs, [](const int& v, std::size_t i) { return v + static_cast<double>(i); });
  ASSERT_EQ(out.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], inputs[i] + static_cast<double>(i));
  }
}

// ---- Explorer through the runner --------------------------------------------

TEST(SweepRunner, ExplorerSweepMatchesSerialBitExact) {
  const core::DesignSpaceExplorer ex(energy::Battery::coin_cell_1000mah());
  const std::vector<core::Fig3Point> serial = ex.sweep(100.0, 1e7, 4);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const core::SweepRunner runner(threads);
    const std::vector<core::Fig3Point> parallel = ex.sweep(runner, 100.0, 1e7, 4);
    ASSERT_EQ(parallel.size(), serial.size()) << "thread count " << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      // Every field bit-exact (doubles compared by equality on purpose).
      EXPECT_EQ(serial[i].rate_bps, parallel[i].rate_bps);
      EXPECT_EQ(serial[i].sense_power_w, parallel[i].sense_power_w);
      EXPECT_EQ(serial[i].comm_power_w, parallel[i].comm_power_w);
      EXPECT_EQ(serial[i].total_power_w, parallel[i].total_power_w);
      EXPECT_EQ(serial[i].life_days, parallel[i].life_days);
      EXPECT_EQ(serial[i].life_class, parallel[i].life_class);
    }
  }
}

TEST(SweepRunner, LogGridMatchesHistoricalSerialLoop) {
  const std::vector<double> grid = core::log_grid(100.0, 1e6, 3);
  // Exactly the seed's accumulation: repeated multiplication by 10^(1/3).
  const double step = std::pow(10.0, 1.0 / 3.0);
  std::vector<double> expected;
  for (double r = 100.0; r <= 1e6 * 1.0000001; r *= step) expected.push_back(r);
  ASSERT_EQ(grid.size(), expected.size());
  for (std::size_t i = 0; i < grid.size(); ++i) EXPECT_EQ(grid[i], expected[i]);
}

TEST(SweepRunner, CrossoverParallelBitExactAcrossThreadCountsAndInBracket) {
  const nn::Model m = nn::make_kws_dscnn();
  comm::WiRLink wir;
  partition::CostModel base;
  base.leaf_hub = partition::CostModel::leg_from_link(wir, 100e3);
  base.hub_cloud = partition::CostModel::default_uplink();

  const core::SweepRunner serial(1);
  const double c1 = core::offload_crossover_energy_per_bit_j(m, base, serial);
  for (const std::size_t threads : {2u, 8u}) {
    const core::SweepRunner runner(threads);
    const double cn = core::offload_crossover_energy_per_bit_j(m, base, runner);
    EXPECT_EQ(c1, cn) << "thread count " << threads;  // bit-exact
  }
  // The runner-less overload delegates to the same grid refinement on a
  // 1-thread pool, so it is exactly equal — and the crossover sits in the
  // physically meaningful bracket (above Wi-R, below BLE).
  const double bisect = core::offload_crossover_energy_per_bit_j(m, base);
  EXPECT_EQ(c1, bisect);
  EXPECT_GT(c1, 100e-12);
  EXPECT_LT(c1, 15e-9);
}

}  // namespace
}  // namespace iob
