// Unit tests for src/sim: RNG determinism & distributions, event queue
// ordering, simulator scheduling, statistics, tracing.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace iob::sim {
namespace {

// ---- Rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBoundedRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW(r.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.uniform_int(0, 9);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
    saw_lo |= (v == 0);
    saw_hi |= (v == 9);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(r.normal(2.0, 3.0));
  EXPECT_NEAR(acc.mean(), 2.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 3.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng r(13);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(r.exponential(0.5));
  EXPECT_NEAR(acc.mean(), 0.5, 0.02);
  for (int i = 0; i < 100; ++i) EXPECT_GE(r.exponential(1.0), 0.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
  EXPECT_THROW(r.bernoulli(1.5), std::invalid_argument);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng r(19);
  Accumulator small, large;
  for (int i = 0; i < 20000; ++i) small.add(r.poisson(3.0));
  for (int i = 0; i < 20000; ++i) large.add(r.poisson(100.0));
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 100.0, 1.0);
  EXPECT_EQ(r.poisson(0.0), 0u);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(23);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
  // Forking is deterministic too.
  Rng c = Rng(23).fork(1);
  Rng d = Rng(23).fork(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c.next_u64(), d.next_u64());
}

// ---- EventQueue -------------------------------------------------------------

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAtEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double-cancel is a no-op
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, RejectsInvalidSchedules) {
  EventQueue q;
  EXPECT_THROW(q.schedule(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule(1.0, EventQueue::Action{}), std::invalid_argument);
}

// ---- Simulator --------------------------------------------------------------

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  double seen = -1.0;
  sim.at(5.0, [&] { seen = sim.now(); });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);  // clock parked at end time
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator sim;
  std::vector<double> times;
  sim.at(2.0, [&] {
    sim.after(3.0, [&] { times.push_back(sim.now()); });
  });
  sim.run_until(100.0);
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 5.0);
}

TEST(Simulator, PeriodicTaskFiresRepeatedly) {
  Simulator sim;
  int fires = 0;
  sim.every(0.0, 1.0, [&](Time) { ++fires; });
  sim.run_until(10.5);
  EXPECT_EQ(fires, 11);  // t = 0..10
}

TEST(Simulator, PeriodicTaskSeesCorrectTimes) {
  Simulator sim;
  std::vector<double> times;
  sim.every(0.5, 2.0, [&](Time t) { times.push_back(t); });
  sim.run_until(7.0);
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times[0], 0.5);
  EXPECT_DOUBLE_EQ(times[3], 6.5);
}

TEST(Simulator, StopRequestHaltsRun) {
  Simulator sim;
  int fires = 0;
  sim.every(0.0, 1.0, [&](Time t) {
    ++fires;
    if (t >= 3.0) sim.request_stop();
  });
  sim.run_until(100.0);
  EXPECT_EQ(fires, 4);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.at(5.0, [] {});
  sim.run_until(5.0);
  EXPECT_THROW(sim.at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.after(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RunAllDrainsQueue) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 5; ++i) sim.at(i, [&] { ++count; });
  const auto executed = sim.run_all();
  EXPECT_EQ(executed, 5u);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.pending(), 0u);
}

// ---- Stats ------------------------------------------------------------------

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (const double v : {1.0, 2.0, 3.0, 4.0, 5.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 5u);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
  EXPECT_NEAR(acc.sum(), 15.0, 1e-12);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(TimeWeighted, PiecewiseConstantIntegral) {
  TimeWeighted tw;
  tw.update(0.0, 2.0);   // 2 W from t=0
  tw.update(5.0, 10.0);  // 10 W from t=5
  EXPECT_DOUBLE_EQ(tw.integral_until(10.0), 2.0 * 5 + 10.0 * 5);
  EXPECT_DOUBLE_EQ(tw.average_until(10.0), 6.0);
}

TEST(TimeWeighted, RejectsTimeReversal) {
  TimeWeighted tw;
  tw.update(5.0, 1.0);
  EXPECT_THROW(tw.update(4.0, 2.0), std::invalid_argument);
}

TEST(Histogram, BinsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.bin(0), 10u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
  EXPECT_EQ(h.underflow(), 0u);
}

TEST(Histogram, OutOfRangeCounted) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

// ---- Trace ------------------------------------------------------------------

TEST(Trace, DisabledSinkRecordsNothing) {
  TraceSink t;
  t.emit(1.0, "x", "y");
  EXPECT_EQ(t.size(), 0u);
}

TEST(Trace, RecordsAndCounts) {
  TraceSink t;
  t.enable();
  t.emit(1.0, "node.a", "tx", "bytes=10");
  t.emit(2.0, "node.b", "tx");
  t.emit(3.0, "node.a", "rx");
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.count("tx"), 2u);
  EXPECT_EQ(t.count("tx", "node.a"), 1u);
  EXPECT_NE(t.to_string().find("bytes=10"), std::string::npos);
}

// ---- Determinism across full simulations -------------------------------------

TEST(Determinism, SameSeedSameTrace) {
  auto run = [](std::uint64_t seed) {
    Simulator sim(seed);
    std::vector<double> values;
    Rng r = sim.rng().fork(99);
    sim.every(0.0, 0.1, [&](Time) { values.push_back(r.uniform()); });
    sim.run_until(5.0);
    return values;
  };
  EXPECT_EQ(run(1234), run(1234));
  EXPECT_NE(run(1234), run(1235));
}

}  // namespace
}  // namespace iob::sim
