// Unit tests for src/sim: RNG determinism & distributions, event queue
// ordering (including the calendar-wheel band and its rebuilds), the
// small-buffer callback type, simulator scheduling, statistics, tracing.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/alloc_interposer.hpp"  // defines global operator new/delete
#include "sim/callback.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace iob::sim {
namespace {

// ---- Rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBoundedRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW(r.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.uniform_int(0, 9);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
    saw_lo |= (v == 0);
    saw_hi |= (v == 9);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(r.normal(2.0, 3.0));
  EXPECT_NEAR(acc.mean(), 2.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 3.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng r(13);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(r.exponential(0.5));
  EXPECT_NEAR(acc.mean(), 0.5, 0.02);
  for (int i = 0; i < 100; ++i) EXPECT_GE(r.exponential(1.0), 0.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
  EXPECT_THROW(r.bernoulli(1.5), std::invalid_argument);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng r(19);
  Accumulator small, large;
  for (int i = 0; i < 20000; ++i) small.add(r.poisson(3.0));
  for (int i = 0; i < 20000; ++i) large.add(r.poisson(100.0));
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 100.0, 1.0);
  EXPECT_EQ(r.poisson(0.0), 0u);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(23);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
  // Forking is deterministic too.
  Rng c = Rng(23).fork(1);
  Rng d = Rng(23).fork(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c.next_u64(), d.next_u64());
}

// ---- EventQueue -------------------------------------------------------------

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAtEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double-cancel is a no-op
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, RejectsInvalidSchedules) {
  EventQueue q;
  EXPECT_THROW(q.schedule(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule(1.0, EventQueue::Action{}), std::invalid_argument);
}

TEST(EventQueue, StaleHandleAfterSlotReuseIsRejected) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  ASSERT_TRUE(q.cancel(a));
  // The slot is recycled for the next event; the stale handle must not be
  // able to cancel it.
  const EventId b = q.schedule(2.0, [] {});
  EXPECT_FALSE(q.cancel(a));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(b));
}

// The satellite stress test: interleaved schedule/cancel churn, asserting
// FIFO tie-break order and size() accounting against a reference model
// (a std::multimap ordered by the same (when, seq) key). The population is
// driven well past the wheel-activation threshold and across several
// geometry regimes (clustered, uniform, far-future bursts) so both bands,
// lap turnover, and the adaptive rebuilds are all exercised.
TEST(EventQueue, StressChurnMatchesReferenceModel) {
  EventQueue q;
  Rng rng(2024);
  // Reference: key -> payload; ordered exactly like the queue pops.
  std::map<std::pair<Time, std::uint64_t>, int> model;
  std::vector<std::pair<EventId, std::pair<Time, std::uint64_t>>> live_handles;
  std::vector<int> fired;
  int next_payload = 0;
  std::uint64_t seq = 0;
  Time now = 0.0;

  const auto schedule_one = [&](Time when) {
    const int payload = next_payload++;
    const EventId id = q.schedule(when, [&fired, payload] { fired.push_back(payload); });
    model.emplace(std::make_pair(when, seq), payload);
    live_handles.emplace_back(id, std::make_pair(when, seq));
    ++seq;
  };

  for (int round = 0; round < 2000; ++round) {
    // Mixed time profile: clustered equal times (FIFO ties), near-future
    // uniform, and occasional far-future bursts.
    const double u = rng.uniform();
    Time when;
    if (u < 0.3) {
      when = now + 1.0;  // equal-time cluster -> FIFO ordering must hold
    } else if (u < 0.9) {
      when = now + rng.uniform(0.0, 5.0);
    } else {
      when = now + rng.uniform(100.0, 1000.0);  // far band
    }
    const int burst = static_cast<int>(rng.uniform_int(1, 120));
    for (int i = 0; i < burst; ++i) schedule_one(when + 0.001 * i);

    // Cancel a random subset of outstanding events.
    const int cancels = static_cast<int>(rng.uniform_int(0, burst / 2));
    for (int i = 0; i < cancels && !live_handles.empty(); ++i) {
      const auto idx =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(live_handles.size()) - 1));
      const auto [id, key] = live_handles[idx];
      const bool was_live = model.erase(key) > 0;
      EXPECT_EQ(q.cancel(id), was_live);
      live_handles[idx] = live_handles.back();
      live_handles.pop_back();
    }
    ASSERT_EQ(q.size(), model.size());

    // Pop a few events and check they fire in exactly the model's order.
    const int pops = static_cast<int>(rng.uniform_int(0, 80));
    for (int i = 0; i < pops && !model.empty(); ++i) {
      const auto expected = model.begin();
      ASSERT_EQ(q.next_time(), expected->first.first);
      fired.clear();
      const Time t = q.run_next();
      now = std::max(now, t);
      ASSERT_EQ(fired.size(), 1u);
      ASSERT_EQ(fired[0], expected->second);
      ASSERT_EQ(t, expected->first.first);
      model.erase(expected);
      ASSERT_EQ(q.size(), model.size());
    }
  }
  EXPECT_TRUE(q.wheel_active());  // the stress must have exercised the wheel

  // Drain: remaining pops must follow the model order exactly.
  while (!model.empty()) {
    const auto expected = model.begin();
    fired.clear();
    ASSERT_EQ(q.run_next(), expected->first.first);
    ASSERT_EQ(fired.size(), 1u);
    ASSERT_EQ(fired[0], expected->second);
    model.erase(expected);
  }
  EXPECT_TRUE(q.empty());

  // Physical census must agree: no entries lost or duplicated across bands.
  const auto c = q.debug_counts();
  EXPECT_EQ(c.live_count, 0u);
  EXPECT_EQ(c.wheel_ahead, 0u);
  EXPECT_EQ(c.wheel_behind, 0u);
  EXPECT_EQ(c.heap_live, 0u);
}

TEST(EventQueue, FifoPreservedAcrossWheelActivation) {
  // Schedule far more equal-time events than the activation threshold; the
  // pop order must stay the exact insertion order through activation and
  // rebuilds.
  EventQueue q;
  std::vector<int> order;
  constexpr int kEvents = 3000;
  for (int i = 0; i < kEvents; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  EXPECT_TRUE(q.wheel_active());
  while (!q.empty()) q.run_next();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, MillionPendingDifferentialStress) {
  // Population-scale pressure on the flat-ring wheel (docs/scaling.md): one
  // million pending events across ~1k distinct timestamps (so each bucket
  // holds hundreds of FIFO ties), a cancelled subset, then a full drain.
  // The reference order is a stable sort by time — stability IS the FIFO
  // tie contract, so any tie broken by the ring's chain harvesting,
  // compaction or cursor sort shows up as a payload mismatch.
  constexpr std::size_t kEvents = 1'000'000;
  constexpr std::size_t kDistinctTimes = 1024;

  EventQueue q;
  q.reserve(kEvents);

  struct Ref {
    double when;
    int payload;
  };
  std::vector<Ref> ref;
  ref.reserve(kEvents);
  std::vector<EventId> ids;
  ids.reserve(kEvents);
  std::vector<int> fired;
  fired.reserve(kEvents);

  Rng rng(991);
  for (std::size_t i = 0; i < kEvents; ++i) {
    const double when =
        1.0 + 0.001 * static_cast<double>(rng.uniform_int(0, static_cast<std::int64_t>(kDistinctTimes) - 1));
    const int payload = static_cast<int>(i);
    ids.push_back(q.schedule(when, [&fired, payload] { fired.push_back(payload); }));
    ref.push_back({when, payload});
  }
  ASSERT_EQ(q.size(), kEvents);
  EXPECT_TRUE(q.wheel_active());

  // Cancel every 7th event (lazy deletion: the ring compacts them away
  // during cursor harvesting).
  std::vector<Ref> live;
  live.reserve(kEvents);
  for (std::size_t i = 0; i < kEvents; ++i) {
    if (i % 7 == 0) {
      EXPECT_TRUE(q.cancel(ids[i]));
    } else {
      live.push_back(ref[i]);
    }
  }
  ASSERT_EQ(q.size(), live.size());

  // std::stable_sort keeps insertion order inside equal-time runs — the
  // exact pop order the queue must reproduce.
  std::stable_sort(live.begin(), live.end(),
                   [](const Ref& a, const Ref& b) { return a.when < b.when; });

  Time prev = 0.0;
  while (!q.empty()) {
    const Time t = q.run_next();
    ASSERT_GE(t, prev);
    prev = t;
  }
  ASSERT_EQ(fired.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    ASSERT_EQ(fired[i], live[i].payload) << "pop " << i << " broke FIFO order";
  }

  const auto c = q.debug_counts();
  EXPECT_EQ(c.live_count, 0u);
  EXPECT_EQ(c.wheel_ahead, 0u);
  EXPECT_EQ(c.wheel_behind, 0u);
  EXPECT_EQ(c.heap_live, 0u);
  EXPECT_EQ(c.occupancy, 0u);
}

TEST(EventQueue, SteadyStateChurnAllocatesNothing) {
  // The flat ring's zero-allocation contract: once slot slab, node pool,
  // heap and bucket arrays hit their high-water mark, schedule/cancel/pop
  // cycles recycle storage instead of allocating. Global operator new is
  // interposed (alloc_interposer.hpp); the steady-state phase must add
  // exactly zero calls.
  EventQueue q;
  Rng rng(4242);
  Time now = 0.0;
  std::uint64_t fires = 0;
  std::vector<EventId> cancel_ring(64, 0);
  std::size_t cancel_at = 0;

  constexpr std::size_t kWindow = 4096;
  const auto cycle = [&](std::size_t pops) {
    for (std::size_t i = 0; i < pops; ++i) {
      while (q.size() < kWindow) {
        const EventId id =
            q.schedule(now + rng.uniform(0.0, 2.0), [&fires] { ++fires; });
        cancel_ring[cancel_at] = id;
        cancel_at = (cancel_at + 1) % cancel_ring.size();
      }
      if (i % 16 == 0) q.cancel(cancel_ring[cancel_at]);  // maybe-stale: both paths O(1)
      now = q.run_next();
    }
  };

  cycle(4 * kWindow);  // warm-up: reach every band's high-water mark
  const std::uint64_t before = alloc_interposer::new_calls.load();
  cycle(4 * kWindow);  // steady state
  const std::uint64_t after = alloc_interposer::new_calls.load();
  EXPECT_EQ(after - before, 0u)
      << "steady-state churn allocated " << (after - before) << " times";
  EXPECT_GT(fires, 0u);
}

TEST(EventQueue, ReentrantSchedulingFromActions) {
  // Actions scheduling follow-ups (including at their own timestamp) is the
  // periodic-task pattern; it must survive slab growth and band moves.
  EventQueue q;
  int chained = 0, extras = 0;
  std::function<void(Time)> chain = [&](Time t) {
    ++chained;
    if (t < 500.0) {
      q.schedule(t + 1.0, [&chain, t] { chain(t + 1.0); });
      if (chained % 10 == 0) q.schedule(t, [&extras] { ++extras; });  // same-time follow-up
    }
  };
  q.schedule(0.0, [&chain] { chain(0.0); });
  std::size_t executed = 0;
  while (!q.empty()) {
    q.run_next();
    ++executed;
  }
  EXPECT_EQ(chained, 501);
  EXPECT_EQ(extras, 50);
  EXPECT_EQ(executed, static_cast<std::size_t>(chained + extras));
}

// ---- Callback ---------------------------------------------------------------

TEST(Callback, InlineForSmallCapturesHeapForLarge) {
  int x = 0;
  Callback small([&x] { ++x; });
  EXPECT_TRUE(small.is_inline());
  std::array<double, 16> big_payload{};
  Callback big([&x, big_payload] { x += static_cast<int>(big_payload[0]) + 1; });
  EXPECT_FALSE(big.is_inline());
  small();
  big();
  EXPECT_EQ(x, 2);
}

TEST(Callback, MoveTransfersOwnership) {
  int calls = 0;
  Callback a([&calls] { ++calls; });
  Callback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  Callback c;
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(Callback, DestroysHeldCallableExactlyOnce) {
  auto counter = std::make_shared<int>(0);
  {
    Callback cb([counter] { ++*counter; });
    EXPECT_EQ(counter.use_count(), 2);
    Callback moved(std::move(cb));
    EXPECT_EQ(counter.use_count(), 2);  // move, not copy
  }
  EXPECT_EQ(counter.use_count(), 1);  // destroyed with the callback
  EXPECT_EQ(*counter, 0);
}

// ---- Simulator --------------------------------------------------------------

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  double seen = -1.0;
  sim.at(5.0, [&] { seen = sim.now(); });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);  // clock parked at end time
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator sim;
  std::vector<double> times;
  sim.at(2.0, [&] {
    sim.after(3.0, [&] { times.push_back(sim.now()); });
  });
  sim.run_until(100.0);
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 5.0);
}

TEST(Simulator, PeriodicTaskFiresRepeatedly) {
  Simulator sim;
  int fires = 0;
  sim.every(0.0, 1.0, [&](Time) { ++fires; });
  sim.run_until(10.5);
  EXPECT_EQ(fires, 11);  // t = 0..10
}

TEST(Simulator, PeriodicTaskSeesCorrectTimes) {
  Simulator sim;
  std::vector<double> times;
  sim.every(0.5, 2.0, [&](Time t) { times.push_back(t); });
  sim.run_until(7.0);
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times[0], 0.5);
  EXPECT_DOUBLE_EQ(times[3], 6.5);
}

TEST(Simulator, StopRequestHaltsRun) {
  Simulator sim;
  int fires = 0;
  sim.every(0.0, 1.0, [&](Time t) {
    ++fires;
    if (t >= 3.0) sim.request_stop();
  });
  sim.run_until(100.0);
  EXPECT_EQ(fires, 4);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.at(5.0, [] {});
  sim.run_until(5.0);
  EXPECT_THROW(sim.at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.after(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RunAllDrainsQueue) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 5; ++i) sim.at(i, [&] { ++count; });
  const auto executed = sim.run_all();
  EXPECT_EQ(executed, 5u);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, StopCancelsPeriodicReschedules) {
  // The seed left each periodic task's next occurrence dangling in the
  // queue after request_stop(); now the stop tears the whole chain down.
  Simulator sim;
  int a = 0, b = 0;
  sim.every(0.0, 1.0, [&](Time) { ++a; });
  sim.every(0.5, 2.0, [&](Time t) {
    ++b;
    if (t >= 4.0) sim.request_stop();
  });
  sim.run_until(100.0);
  EXPECT_GT(a, 0);
  EXPECT_GT(b, 0);
  EXPECT_EQ(sim.pending(), 0u);  // no dangling self-reschedules
}

TEST(Simulator, StopBeforeRunCancelsFirstOccurrences) {
  Simulator sim;
  int fires = 0;
  sim.every(1.0, 1.0, [&](Time) { ++fires; });
  sim.every(2.0, 1.0, [&](Time) { ++fires; });
  EXPECT_EQ(sim.pending(), 2u);
  sim.request_stop();
  EXPECT_EQ(sim.pending(), 0u);
  sim.run_until(10.0);
  EXPECT_EQ(fires, 0);
}

TEST(Simulator, PeriodicActionMaySafelyTouchCapturesAfterStop) {
  // request_stop() tears down the periodic registry; the running action's
  // closure must stay alive (it is moved out before the call), so touching
  // captures after the stop is well-defined.
  Simulator sim;
  auto witness = std::make_shared<int>(0);
  sim.every(0.0, 1.0, [&sim, witness](Time t) {
    if (t >= 2.0) sim.request_stop();
    *witness += 1;  // executes after the registry teardown on the last fire
  });
  sim.run_until(10.0);
  EXPECT_EQ(*witness, 3);  // t = 0, 1, 2
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, CancellingPendingOccurrenceRetiresPeriodicTask) {
  Simulator sim;
  int fires = 0;
  const EventId id = sim.every(1.0, 1.0, [&](Time) { ++fires; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_EQ(sim.pending(), 0u);
  sim.run_until(10.0);
  EXPECT_EQ(fires, 0);
  // The registry entry is gone too: a later stop has nothing to tear down
  // and the simulator keeps working.
  sim.request_stop();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, StopLeavesNonPeriodicEventsPending) {
  // request_stop tears down periodic chains only; one-shot events stay (the
  // run loop just refuses to execute them).
  Simulator sim;
  sim.at(5.0, [] {});
  sim.every(1.0, 1.0, [](Time) {});
  sim.request_stop();
  EXPECT_EQ(sim.pending(), 1u);
}

// ---- Stats ------------------------------------------------------------------

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (const double v : {1.0, 2.0, 3.0, 4.0, 5.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 5u);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
  EXPECT_NEAR(acc.sum(), 15.0, 1e-12);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(TimeWeighted, PiecewiseConstantIntegral) {
  TimeWeighted tw;
  tw.update(0.0, 2.0);   // 2 W from t=0
  tw.update(5.0, 10.0);  // 10 W from t=5
  EXPECT_DOUBLE_EQ(tw.integral_until(10.0), 2.0 * 5 + 10.0 * 5);
  EXPECT_DOUBLE_EQ(tw.average_until(10.0), 6.0);
}

TEST(TimeWeighted, RejectsTimeReversal) {
  TimeWeighted tw;
  tw.update(5.0, 1.0);
  EXPECT_THROW(tw.update(4.0, 2.0), std::invalid_argument);
}

TEST(Histogram, BinsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.bin(0), 10u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
  EXPECT_EQ(h.underflow(), 0u);
}

TEST(Histogram, OutOfRangeCounted) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

// ---- Trace ------------------------------------------------------------------

TEST(Trace, DisabledSinkRecordsNothing) {
  TraceSink t;
  t.emit(1.0, "x", "y");
  EXPECT_EQ(t.size(), 0u);
}

TEST(Trace, RecordsAndCounts) {
  TraceSink t;
  t.enable();
  t.emit(1.0, "node.a", "tx", "bytes=10");
  t.emit(2.0, "node.b", "tx");
  t.emit(3.0, "node.a", "rx");
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.count("tx"), 2u);
  EXPECT_EQ(t.count("tx", "node.a"), 1u);
  EXPECT_NE(t.to_string().find("bytes=10"), std::string::npos);
}

// ---- Determinism across full simulations -------------------------------------

TEST(Determinism, SameSeedSameTrace) {
  auto run = [](std::uint64_t seed) {
    Simulator sim(seed);
    std::vector<double> values;
    Rng r = sim.rng().fork(99);
    sim.every(0.0, 0.1, [&](Time) { values.push_back(r.uniform()); });
    sim.run_until(5.0);
    return values;
  };
  EXPECT_EQ(run(1234), run(1234));
  EXPECT_NE(run(1234), run(1235));
}

}  // namespace
}  // namespace iob::sim
