// Tests for the lowered, allocation-free inference engine (ISSUE 4): the
// blocked GEMM microkernel against naive references, bit-exactness of the
// GEMM-lowered layers vs the retained seed loops on all three zoo models
// (single + batched), workspace reuse across varying batch sizes, zero-copy
// batch spans, one-workspace-per-thread determinism under SweepRunner at
// 1/2/8 threads, the interposer-verified zero-allocation steady state, and
// the hub's execute-and-meter sessions.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "comm/tdma.hpp"
#include "comm/wir_link.hpp"
#include "common/alloc_interposer.hpp"  // defines global operator new/delete
#include "core/sweep_runner.hpp"
#include "net/network_sim.hpp"
#include "nn/conv.hpp"
#include "nn/gemm.hpp"
#include "nn/layers.hpp"
#include "nn/model.hpp"
#include "nn/model_zoo.hpp"
#include "nn/tensor.hpp"
#include "nn/workspace.hpp"
#include "sim/simulator.hpp"

namespace iob {
namespace {

std::atomic<std::uint64_t>& g_alloc_count = iob::alloc_interposer::new_calls;

using namespace iob::nn;

Model zoo_model(int idx) {
  return idx == 0 ? make_kws_dscnn() : idx == 1 ? make_ecg_cnn1d() : make_vww_micronet();
}

// ---- gemm_blocked -----------------------------------------------------------

void naive_gemm(std::int64_t M, std::int64_t N, std::int64_t K, const float* A, const float* B,
                const float* bias, float* C) {
  for (std::int64_t m = 0; m < M; ++m) {
    for (std::int64_t n = 0; n < N; ++n) {
      float acc = bias != nullptr ? bias[n] : 0.0f;
      for (std::int64_t k = 0; k < K; ++k) acc += A[m * K + k] * B[k * N + n];
      C[m * N + n] = acc;
    }
  }
}

TEST(GemmBlocked, HandComputed2x2) {
  // C = bias + A * B with A = [[1,2],[3,4]], B = [[5,6],[7,8]], bias = [10, 20].
  const float A[] = {1, 2, 3, 4};
  const float B[] = {5, 6, 7, 8};
  const float bias[] = {10, 20};
  float C[4] = {};
  gemm_blocked(2, 2, 2, A, B, bias, C);
  EXPECT_FLOAT_EQ(C[0], 10 + 1 * 5 + 2 * 7);
  EXPECT_FLOAT_EQ(C[1], 20 + 1 * 6 + 2 * 8);
  EXPECT_FLOAT_EQ(C[2], 10 + 3 * 5 + 4 * 7);
  EXPECT_FLOAT_EQ(C[3], 20 + 3 * 6 + 4 * 8);
}

TEST(GemmBlocked, MatchesNaiveBitExactAcrossShapes) {
  // Shapes straddle every code path: full 4x8 tiles, M/N remainders, K
  // larger than one cache block, N < kNr (all-edge), nullptr bias.
  const struct {
    std::int64_t M, N, K;
    bool with_bias;
  } cases[] = {{8, 16, 32, true},   {5, 9, 7, true},    {4, 8, 300, true},
               {1, 3, 11, false},   {13, 8, 260, true}, {4, 23, 5, true},
               {100, 2, 513, true}, {3, 40, 64, false}};
  for (const auto& c : cases) {
    std::vector<float> A(static_cast<std::size_t>(c.M * c.K)), B(static_cast<std::size_t>(c.K * c.N)),
        bias(static_cast<std::size_t>(c.N)), ref(static_cast<std::size_t>(c.M * c.N)),
        got(static_cast<std::size_t>(c.M * c.N));
    for (std::size_t i = 0; i < A.size(); ++i) A[i] = std::sin(static_cast<double>(i) * 0.37);
    for (std::size_t i = 0; i < B.size(); ++i) B[i] = std::cos(static_cast<double>(i) * 0.23);
    for (std::size_t i = 0; i < bias.size(); ++i) bias[i] = 0.1f * static_cast<float>(i);
    const float* bp = c.with_bias ? bias.data() : nullptr;
    naive_gemm(c.M, c.N, c.K, A.data(), B.data(), bp, ref.data());
    gemm_blocked(c.M, c.N, c.K, A.data(), B.data(), bp, got.data());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i], got[i]) << "M=" << c.M << " N=" << c.N << " K=" << c.K << " i=" << i;
    }
  }
}

// ---- fused elementwise GEMM tails -------------------------------------------

TEST(GemmTailFusion, ReluAndBatchNormTailsBitExactVsSeparatePasses) {
  const std::int64_t M = 7, N = 19, K = 33;
  std::vector<float> A(static_cast<std::size_t>(M * K)), B(static_cast<std::size_t>(K * N)),
      bias(static_cast<std::size_t>(N)), scale(static_cast<std::size_t>(N)),
      shift(static_cast<std::size_t>(N));
  for (std::size_t i = 0; i < A.size(); ++i) A[i] = std::sin(static_cast<double>(i) * 0.31);
  for (std::size_t i = 0; i < B.size(); ++i) B[i] = std::cos(static_cast<double>(i) * 0.17);
  for (std::size_t i = 0; i < bias.size(); ++i) {
    bias[i] = 0.1f * static_cast<float>(i) - 0.9f;
    scale[i] = 0.5f + 0.05f * static_cast<float>(i);
    shift[i] = -0.2f + 0.03f * static_cast<float>(i);
  }
  std::vector<float> plain(static_cast<std::size_t>(M * N)), fused(plain.size());
  gemm_blocked(M, N, K, A.data(), B.data(), bias.data(), plain.data());

  for (const float cap : {0.0f, 6.0f}) {
    GemmTail relu;
    relu.kind = GemmTail::Kind::kRelu;
    relu.cap = cap;
    gemm_blocked(M, N, K, A.data(), B.data(), bias.data(), fused.data(), relu);
    for (std::size_t i = 0; i < plain.size(); ++i) {
      float want = std::max(0.0f, plain[i]);
      if (cap > 0.0f) want = std::min(cap, want);
      ASSERT_EQ(fused[i], want) << "cap " << cap << " i " << i;
    }
  }

  GemmTail bn;
  bn.kind = GemmTail::Kind::kBatchNorm;
  bn.scale = scale.data();
  bn.shift = shift.data();
  gemm_blocked(M, N, K, A.data(), B.data(), bias.data(), fused.data(), bn);
  for (std::int64_t m = 0; m < M; ++m) {
    for (std::int64_t n = 0; n < N; ++n) {
      const std::size_t i = static_cast<std::size_t>(m * N + n);
      ASSERT_EQ(fused[i], scale[static_cast<std::size_t>(n)] * plain[i] +
                              shift[static_cast<std::size_t>(n)])
          << "m " << m << " n " << n;
    }
  }
}

TEST(GemmTailFusion, ModelChainFusesAndStaysBitExactVsReference) {
  // fc -> batchnorm -> relu6 -> fc -> relu: two fusable pairs plus an
  // unfused tail. run_into (which fuses) must equal the seed-loop oracle.
  WeightGen gen(77);
  Model m("fused-chain", Shape{10});
  m.add(std::make_unique<FullyConnected>(10, 24, gen.weights(240, 10), gen.biases(24)));
  std::vector<float> scale(24), shift(24);
  for (int i = 0; i < 24; ++i) {
    scale[static_cast<std::size_t>(i)] = 0.8f + 0.02f * static_cast<float>(i);
    shift[static_cast<std::size_t>(i)] = -0.1f + 0.01f * static_cast<float>(i);
  }
  m.add(std::make_unique<BatchNorm>(scale, shift));
  m.add(std::make_unique<Relu>(6.0f));
  m.add(std::make_unique<FullyConnected>(24, 5, gen.weights(120, 24), gen.biases(5)));
  m.add(std::make_unique<Relu>());

  for (const int batch : {1, 3}) {
    std::vector<Tensor> inputs;
    for (int s = 0; s < batch; ++s) inputs.push_back(patterned_tensor(Shape{10}, 60 + s));
    const Tensor stacked = stack_batch(inputs);
    const Tensor ref = m.run_batched_reference(stacked);
    Workspace ws;
    const ConstSpan out = m.run_into(ws, stacked.data(), batch);
    ASSERT_EQ(out.size, ref.size());
    EXPECT_EQ(max_abs_diff(out, ConstSpan{ref.data(), ref.size()}), 0.0) << "batch " << batch;
  }
}

TEST(GemmTailFusion, RangeSplitInsideAFusedPairStaysExact)  {
  // A layer-range boundary between producer and tail must suppress the
  // fusion (the tail belongs to the other side of the split).
  WeightGen gen(78);
  Model m("split-chain", Shape{8});
  m.add(std::make_unique<FullyConnected>(8, 12, gen.weights(96, 8), gen.biases(12)));
  m.add(std::make_unique<Relu>());
  const Tensor x = patterned_tensor(Shape{8}, 9);
  const Tensor full = m.forward_reference(x);
  Workspace ws;
  const ConstSpan head = m.run_range_into(ws, x.data(), 1, 0, 1);  // fc only
  const std::vector<float> h(head.data, head.data + head.size);
  const ConstSpan tail = m.run_range_into(ws, h.data(), 1, 1, 2);  // relu only
  ASSERT_EQ(tail.size, full.size());
  EXPECT_EQ(max_abs_diff(tail, ConstSpan{full.data(), full.size()}), 0.0);
}

// ---- zero-copy batch spans --------------------------------------------------

TEST(BatchSpan, ViewsAliasTheBatchedStorage) {
  std::vector<Tensor> samples;
  for (int s = 0; s < 3; ++s) samples.push_back(patterned_tensor(Shape{4, 5}, s));
  const Tensor batched = stack_batch(samples);
  for (int s = 0; s < 3; ++s) {
    const ConstSpan v = batched.batch_span(s);
    EXPECT_EQ(v.data, batched.data() + s * 20);  // zero-copy: same storage
    EXPECT_EQ(v.size, 20);
    EXPECT_EQ(max_abs_diff(v, ConstSpan{samples[static_cast<std::size_t>(s)].data(), 20}), 0.0);
  }
  EXPECT_THROW(static_cast<void>(batched.batch_span(3)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(Tensor(Shape{4}).batch_span(0)), std::invalid_argument);
}

TEST(BatchSpan, FromDataRoundTrip) {
  const Tensor src = patterned_tensor(Shape{2, 3}, 7);
  const Tensor copy = Tensor::from_data(src.shape(), src.data());
  EXPECT_EQ(copy.max_abs_diff(src), 0.0);
}

// ---- bit-exactness: lowered engine vs seed loops on the zoo -----------------

TEST(LoweredEngine, ZooModelsBitExactSingleInference) {
  for (int idx = 0; idx < 3; ++idx) {
    const Model m = zoo_model(idx);
    const Tensor x = patterned_tensor(m.input_shape(), idx);
    const Tensor ref = m.forward_reference(x);  // seed nested loops
    EXPECT_EQ(m.forward(x).max_abs_diff(ref), 0.0) << m.name();
    Workspace ws;
    const ConstSpan out = m.run_into(ws, x.data(), 1);
    ASSERT_EQ(out.size, ref.size()) << m.name();
    EXPECT_EQ(max_abs_diff(out, ConstSpan{ref.data(), ref.size()}), 0.0) << m.name();
  }
}

TEST(LoweredEngine, ZooModelsBitExactBatched) {
  for (int idx = 0; idx < 3; ++idx) {
    const Model m = zoo_model(idx);
    constexpr int kBatch = 4;
    std::vector<Tensor> inputs;
    for (int s = 0; s < kBatch; ++s) inputs.push_back(patterned_tensor(m.input_shape(), s));
    const Tensor stacked = stack_batch(inputs);
    const Tensor ref = m.run_batched_reference(stacked);  // seed batched loops
    EXPECT_EQ(m.run_batched(stacked).max_abs_diff(ref), 0.0) << m.name();
    // Vector overload stages samples directly into the workspace.
    const std::vector<Tensor> outs = m.run_batched(inputs);
    ASSERT_EQ(outs.size(), static_cast<std::size_t>(kBatch));
    for (int s = 0; s < kBatch; ++s) {
      const Tensor sample_ref = m.forward_reference(inputs[static_cast<std::size_t>(s)]);
      EXPECT_EQ(outs[static_cast<std::size_t>(s)].max_abs_diff(sample_ref), 0.0)
          << m.name() << " sample " << s;
    }
  }
}

TEST(LoweredEngine, RunRangeIntoComposesAtEverySplit) {
  const Model m = zoo_model(1);  // ecg
  const Tensor x = patterned_tensor(m.input_shape(), 3);
  const Tensor full = m.forward_reference(x);
  Workspace ws;
  for (std::size_t split = 0; split <= m.layer_count(); ++split) {
    const ConstSpan head = m.run_range_into(ws, x.data(), 1, 0, split);
    // Copy the head out: the tail pass reuses the same workspace.
    const std::vector<float> h(head.data, head.data + head.size);
    const ConstSpan tail = m.run_range_into(ws, h.data(), 1, split, m.layer_count());
    ASSERT_EQ(tail.size, full.size()) << "split " << split;
    EXPECT_EQ(max_abs_diff(tail, ConstSpan{full.data(), full.size()}), 0.0) << "split " << split;
  }
}

// ---- workspace reuse --------------------------------------------------------

TEST(WorkspaceReuse, VaryingBatchSizesShareOneWorkspace) {
  const Model m = zoo_model(0);  // kws
  Workspace ws;
  ws.configure(m, 8);
  const std::int64_t act_cap = ws.activation_capacity();
  const std::int64_t col_cap = ws.im2col_capacity();
  EXPECT_GE(act_cap, m.max_activation_elems() * 8);
  for (const int batch : {4, 1, 8, 2, 8}) {
    std::vector<Tensor> inputs;
    for (int s = 0; s < batch; ++s) inputs.push_back(patterned_tensor(m.input_shape(), batch + s));
    const Tensor stacked = stack_batch(inputs);
    const ConstSpan out = m.run_into(ws, stacked.data(), batch);
    const Tensor ref = m.run_batched_reference(stacked);
    EXPECT_EQ(max_abs_diff(out, ConstSpan{ref.data(), ref.size()}), 0.0) << "batch " << batch;
    // Grow-only: shrinking the batch must never resize the arena.
    EXPECT_EQ(ws.activation_capacity(), act_cap) << "batch " << batch;
    EXPECT_EQ(ws.im2col_capacity(), col_cap) << "batch " << batch;
  }
}

TEST(WorkspaceReuse, StagedInputSurvivesArenaGrowth) {
  // The documented aliasing contract: samples staged into ws.ping() must
  // survive run_into's internal configure even when it reallocates the
  // arena (here: staged under the small ECG sizing, then run through the
  // larger KWS model, which grows the buffers).
  const Model small = zoo_model(1);  // ecg
  const Model big = zoo_model(0);    // kws
  ASSERT_GT(big.max_activation_elems(), small.max_activation_elems());
  Workspace ws;
  ws.configure(small, 1);
  const Tensor x = patterned_tensor(big.input_shape(), 21);
  ASSERT_LE(x.size(), ws.activation_capacity());  // staging fits pre-growth
  std::copy(x.data(), x.data() + x.size(), ws.ping());
  const ConstSpan out = big.run_into(ws, ws.ping(), 1);
  const Tensor ref = big.forward_reference(x);
  EXPECT_EQ(max_abs_diff(out, ConstSpan{ref.data(), ref.size()}), 0.0);
}

TEST(WorkspaceReuse, GrowsAcrossModelsAndStaysExact) {
  // One workspace serving all three models (the hub's situation): buffers
  // grow to the high-water mark; results stay bit-exact for each model.
  Workspace ws;
  for (int idx = 0; idx < 3; ++idx) {
    const Model m = zoo_model(idx);
    const Tensor x = patterned_tensor(m.input_shape(), 11 + idx);
    const Tensor ref = m.forward_reference(x);
    const ConstSpan out = m.run_into(ws, x.data(), 1);
    EXPECT_EQ(max_abs_diff(out, ConstSpan{ref.data(), ref.size()}), 0.0) << m.name();
  }
}

// ---- zero-allocation steady state -------------------------------------------

TEST(ZeroAllocation, SteadyStateInferenceLoopNeverTouchesTheHeap) {
  const Model models[] = {zoo_model(0), zoo_model(1), zoo_model(2)};
  Workspace ws;
  std::vector<Tensor> inputs;
  std::vector<Tensor> batched;
  for (const Model& m : models) {
    inputs.push_back(patterned_tensor(m.input_shape(), 5));
    Shape bshape{4};
    bshape.insert(bshape.end(), m.input_shape().begin(), m.input_shape().end());
    batched.push_back(patterned_tensor(bshape, 6));
    ws.configure(m, 4);
  }
  // Warm-up: first passes may still grow the arena to its high-water mark.
  for (std::size_t i = 0; i < 3; ++i) {
    models[i].run_into(ws, inputs[i].data(), 1);
    models[i].run_into(ws, batched[i].data(), 4);
  }
  const std::uint64_t before = g_alloc_count.load();
  float sink = 0.0f;
  for (int rep = 0; rep < 20; ++rep) {
    for (std::size_t i = 0; i < 3; ++i) {
      sink += models[i].run_into(ws, inputs[i].data(), 1)[0];
      sink += models[i].run_into(ws, batched[i].data(), 4)[0];
    }
  }
  const std::uint64_t allocs = g_alloc_count.load() - before;
  EXPECT_TRUE(std::isfinite(sink));
  EXPECT_EQ(allocs, 0u) << "steady-state inference loop performed heap allocations";
}

// ---- one-workspace-per-thread determinism under SweepRunner -----------------

TEST(SweepDeterminism, InferenceResultsByteIdenticalAt1_2_8Threads) {
  // Each sweep point runs a batched pass through the shared const model on
  // its worker thread's thread-local workspace (via run_batched). The
  // merged output must be byte-identical at every thread count.
  const Model m = zoo_model(0);
  constexpr std::size_t kPoints = 12;
  const auto point = [&m](std::size_t i) {
    std::vector<Tensor> inputs;
    for (int s = 0; s < 3; ++s) {
      inputs.push_back(patterned_tensor(m.input_shape(), static_cast<int>(i) * 3 + s));
    }
    const std::vector<Tensor> outs = m.run_batched(inputs);
    std::vector<float> flat;
    for (const Tensor& o : outs) flat.insert(flat.end(), o.data(), o.data() + o.size());
    return flat;
  };
  const core::SweepRunner serial(1);
  const std::vector<std::vector<float>> reference =
      serial.map<std::vector<float>>(kPoints, point);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const core::SweepRunner runner(threads);
    const std::vector<std::vector<float>> got =
        runner.map<std::vector<float>>(kPoints, point);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < kPoints; ++i) {
      ASSERT_EQ(got[i].size(), reference[i].size()) << "point " << i;
      for (std::size_t j = 0; j < got[i].size(); ++j) {
        ASSERT_EQ(got[i][j], reference[i][j])
            << "thread count " << threads << " point " << i << " elem " << j;
      }
    }
  }
}

// ---- hub execute-and-meter --------------------------------------------------

net::SessionStats run_metered(bool execute, unsigned batch_window, const Model* net_model) {
  net::NetworkConfig cfg;
  cfg.seed = 11;
  cfg.hub.batch_window = batch_window;
  cfg.hub.execute_and_meter = execute;
  net::NetworkSim net(std::make_unique<comm::WiRLink>(), cfg);
  net::NodeConfig n;
  n.name = "ecg-patch";
  n.stream = "ecg";
  n.output_rate_bps = 64e3;
  n.frame_bytes = 240;
  net.add_node(n);
  net::SessionConfig s;
  s.stream = "ecg";
  s.macs_per_inference = 185'000;
  s.bytes_per_inference = 240;
  s.model = "ecg-cnn1d";
  s.weight_bytes = 9'000;
  s.net = net_model;
  net.add_session(s);
  net.run(1.0);
  return net.hub().session("ecg");
}

TEST(ExecuteAndMeter, DerivesComputeEnergyFromMeasuredKernelTime) {
  const Model ecg = make_ecg_cnn1d();
  for (const unsigned window : {0u, 4u}) {
    const net::SessionStats st = run_metered(true, window, &ecg);
    ASSERT_GT(st.inferences, 10u) << "window " << window;
    EXPECT_EQ(st.executed_inferences, st.inferences) << "window " << window;
    EXPECT_GT(st.kernel_time_s, 0.0) << "window " << window;
    // Energy is exactly measured time x platform power.
    const net::HubConfig defaults;
    EXPECT_DOUBLE_EQ(st.compute_energy_j, st.kernel_time_s * defaults.compute_power_w)
        << "window " << window;
    // The analytic model keeps accruing alongside and differs from the
    // measured number (it never consults the clock).
    EXPECT_GT(st.analytic_compute_energy_j, 0.0) << "window " << window;
    EXPECT_NE(st.compute_energy_j, st.analytic_compute_energy_j) << "window " << window;
  }
}

TEST(ExecuteAndMeter, AnalyticFieldMatchesUnmeteredRunBitExactly) {
  const Model ecg = make_ecg_cnn1d();
  for (const unsigned window : {0u, 4u}) {
    const net::SessionStats plain = run_metered(false, window, nullptr);
    const net::SessionStats metered = run_metered(true, window, &ecg);
    ASSERT_GT(plain.inferences, 10u);
    EXPECT_EQ(plain.inferences, metered.inferences);
    // The analytic ledger is identical with and without metering, and on
    // the analytic path it equals compute_energy_j bit-for-bit.
    EXPECT_EQ(plain.analytic_compute_energy_j, metered.analytic_compute_energy_j);
    EXPECT_EQ(plain.compute_energy_j, plain.analytic_compute_energy_j);
    EXPECT_EQ(plain.executed_inferences, 0u);
    EXPECT_EQ(plain.kernel_time_s, 0.0);
  }
}

TEST(ExecuteAndMeter, SessionsWithoutModelsStayAnalyticUnderMetering) {
  const net::SessionStats st = run_metered(true, 4, nullptr);
  ASSERT_GT(st.inferences, 10u);
  EXPECT_EQ(st.executed_inferences, 0u);
  EXPECT_EQ(st.kernel_time_s, 0.0);
  EXPECT_EQ(st.compute_energy_j, st.analytic_compute_energy_j);
}

TEST(ExecuteAndMeter, MixedModelGroupMetersOnlySessionsWithNets) {
  // Two sessions share a model tag (one batched group), but only "a"
  // carries an executable net: the group's flush must meter "a" alone and
  // keep "b" on the analytic ledger.
  const Model ecg = make_ecg_cnn1d();
  net::NetworkConfig cfg;
  cfg.seed = 11;
  cfg.hub.batch_window = 4;
  cfg.hub.execute_and_meter = true;
  net::NetworkSim sim(std::make_unique<comm::WiRLink>(), cfg);
  for (const char* name : {"a", "b"}) {
    net::NodeConfig n;
    n.name = name;
    n.stream = name;
    n.output_rate_bps = 64e3;
    n.frame_bytes = 240;
    sim.add_node(n);
    net::SessionConfig s;
    s.stream = name;
    s.macs_per_inference = 185'000;
    s.bytes_per_inference = 240;
    s.model = "ecg-cnn1d";
    s.weight_bytes = 9'000;
    s.net = name[0] == 'a' ? &ecg : nullptr;
    sim.add_session(s);
  }
  sim.run(1.0);
  const net::SessionStats& a = sim.hub().session("a");
  const net::SessionStats& b = sim.hub().session("b");
  ASSERT_GT(a.inferences, 10u);
  ASSERT_GT(b.inferences, 10u);
  EXPECT_EQ(a.executed_inferences, a.inferences);
  EXPECT_GT(a.kernel_time_s, 0.0);
  const net::HubConfig defaults;
  EXPECT_DOUBLE_EQ(a.compute_energy_j, a.kernel_time_s * defaults.compute_power_w);
  EXPECT_EQ(b.executed_inferences, 0u);
  EXPECT_EQ(b.kernel_time_s, 0.0);
  EXPECT_EQ(b.compute_energy_j, b.analytic_compute_energy_j);
}

}  // namespace
}  // namespace iob
