// Unit + property tests for src/isa: bit I/O, Huffman optimality, DCT
// reconstruction, the MJPEG-style codec's rate/distortion behaviour, ADPCM,
// the lossless biopotential codec, FFT identities, and feature extraction.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "isa/adpcm.hpp"
#include "isa/bio_codec.hpp"
#include "isa/bitstream.hpp"
#include "isa/dct.hpp"
#include "isa/features.hpp"
#include "isa/fft.hpp"
#include "isa/huffman.hpp"
#include "isa/metrics.hpp"
#include "isa/mjpeg.hpp"
#include "sim/rng.hpp"

namespace iob::isa {
namespace {

// ---- Bitstream -----------------------------------------------------------------

TEST(Bitstream, RoundTripMixedWidths) {
  BitWriter w;
  w.write(0b101, 3);
  w.write(0xdead, 16);
  w.write(1, 1);
  w.write(0x123456789abcdefULL, 57);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(r.read(3), 0b101u);
  EXPECT_EQ(r.read(16), 0xdeadu);
  EXPECT_EQ(r.read(1), 1u);
  EXPECT_EQ(r.read(57), 0x123456789abcdefULL);
}

TEST(Bitstream, BitCountTracksWrites) {
  BitWriter w;
  w.write(0, 5);
  w.write(0, 9);
  EXPECT_EQ(w.bit_count(), 14u);
}

TEST(Bitstream, ReadPastEndThrows) {
  BitWriter w;
  w.write(0xff, 8);
  const auto bytes = w.finish();
  BitReader r(bytes);
  r.read(8);
  EXPECT_THROW(r.read(1), std::out_of_range);
}

// ---- Huffman -------------------------------------------------------------------

TEST(Huffman, RoundTripSkewedDistribution) {
  std::vector<std::uint64_t> freqs(256, 0);
  freqs[0] = 1000;
  freqs[1] = 500;
  freqs[2] = 100;
  freqs[7] = 10;
  freqs[255] = 1;
  const HuffmanCodec codec = HuffmanCodec::from_frequencies(freqs);

  const std::vector<unsigned> message = {0, 0, 1, 2, 0, 7, 255, 1, 0, 2};
  BitWriter w;
  for (const auto s : message) codec.encode(s, w);
  const auto bytes = w.finish();
  BitReader r(bytes);
  for (const auto s : message) EXPECT_EQ(codec.decode(r), s);
}

TEST(Huffman, WithinOneBitOfEntropy) {
  // Optimality property: E[len] - H < 1 bit for any distribution.
  sim::Rng rng(5);
  std::vector<std::uint64_t> freqs(64, 0);
  for (auto& f : freqs) f = static_cast<std::uint64_t>(rng.uniform_int(1, 1000));
  const HuffmanCodec codec = HuffmanCodec::from_frequencies(freqs);
  const double h = HuffmanCodec::entropy_bits(freqs);
  const double l = codec.expected_length_bits(freqs);
  EXPECT_GE(l, h - 1e-9);
  EXPECT_LT(l, h + 1.0);
}

TEST(Huffman, FrequentSymbolsGetShorterCodes) {
  std::vector<std::uint64_t> freqs(4, 0);
  freqs[0] = 1000;
  freqs[3] = 1;
  freqs[1] = 100;
  freqs[2] = 10;
  const HuffmanCodec codec = HuffmanCodec::from_frequencies(freqs);
  EXPECT_LE(codec.code_lengths()[0], codec.code_lengths()[1]);
  EXPECT_LE(codec.code_lengths()[1], codec.code_lengths()[2]);
  EXPECT_LE(codec.code_lengths()[2], codec.code_lengths()[3]);
}

TEST(Huffman, SingleSymbolAlphabet) {
  std::vector<std::uint64_t> freqs(8, 0);
  freqs[3] = 42;
  const HuffmanCodec codec = HuffmanCodec::from_frequencies(freqs);
  BitWriter w;
  codec.encode(3, w);
  codec.encode(3, w);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(codec.decode(r), 3u);
  EXPECT_EQ(codec.decode(r), 3u);
}

TEST(Huffman, RebuildFromCodeLengths) {
  std::vector<std::uint64_t> freqs = {10, 20, 30, 40};
  const HuffmanCodec original = HuffmanCodec::from_frequencies(freqs);
  const HuffmanCodec rebuilt = HuffmanCodec::from_code_lengths(original.code_lengths());
  BitWriter w;
  original.encode(2, w);
  original.encode(0, w);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(rebuilt.decode(r), 2u);
  EXPECT_EQ(rebuilt.decode(r), 0u);
}

TEST(Huffman, EncodingAbsentSymbolThrows) {
  std::vector<std::uint64_t> freqs = {10, 0, 30};
  const HuffmanCodec codec = HuffmanCodec::from_frequencies(freqs);
  BitWriter w;
  EXPECT_THROW(codec.encode(1, w), std::invalid_argument);
}

// ---- DCT -----------------------------------------------------------------------

TEST(Dct, PerfectReconstruction) {
  sim::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    Block b{};
    for (auto& v : b) v = static_cast<float>(rng.uniform(-128.0, 128.0));
    const Block back = idct8x8(dct8x8(b));
    for (int i = 0; i < 64; ++i) {
      EXPECT_NEAR(back[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 1e-3);
    }
  }
}

TEST(Dct, EnergyPreservation) {
  // Orthonormal transform: Parseval holds.
  sim::Rng rng(8);
  Block b{};
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const Block c = dct8x8(b);
  double e_spatial = 0.0, e_coeff = 0.0;
  for (int i = 0; i < 64; ++i) {
    e_spatial += static_cast<double>(b[static_cast<std::size_t>(i)]) * b[static_cast<std::size_t>(i)];
    e_coeff += static_cast<double>(c[static_cast<std::size_t>(i)]) * c[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(e_spatial, e_coeff, 1e-4);
}

TEST(Dct, ConstantBlockIsPureDc) {
  Block b{};
  b.fill(10.0f);
  const Block c = dct8x8(b);
  EXPECT_NEAR(c[0], 80.0f, 1e-3);  // 10 * 8 (orthonormal DC gain)
  for (int i = 1; i < 64; ++i) EXPECT_NEAR(c[static_cast<std::size_t>(i)], 0.0f, 1e-4);
}

TEST(Dct, ZigzagIsAPermutation) {
  const auto& zz = zigzag_order();
  std::array<bool, 64> seen{};
  for (const int idx : zz) {
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, 64);
    EXPECT_FALSE(seen[static_cast<std::size_t>(idx)]);
    seen[static_cast<std::size_t>(idx)] = true;
  }
  EXPECT_EQ(zz[0], 0);   // starts at DC
  EXPECT_EQ(zz[1], 1);   // then right
  EXPECT_EQ(zz[2], 8);   // then down-left
  EXPECT_EQ(zz[63], 63); // ends at the highest frequency
}

TEST(Dct, Generic1dMatchesDefinition) {
  const std::vector<float> x = {1.0f, 2.0f, 3.0f, 4.0f};
  const auto c = dct2(x);
  // DC term: sqrt(1/4) * sum = 0.5 * 10.
  EXPECT_NEAR(c[0], 5.0f, 1e-5);
  // Energy preserved.
  const double ex = 1 + 4 + 9 + 16;
  const double ec = std::inner_product(c.begin(), c.end(), c.begin(), 0.0);
  EXPECT_NEAR(ex, ec, 1e-4);
}

// ---- MJPEG codec ------------------------------------------------------------------

GrayFrame test_frame(int w, int h, std::uint64_t seed) {
  sim::Rng rng(seed);
  GrayFrame f;
  f.width = w;
  f.height = h;
  f.pixels.resize(static_cast<std::size_t>(w) * h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double v = 128.0 + 60.0 * std::sin(x * 0.2) * std::cos(y * 0.13) +
                       rng.normal(0.0, 3.0);
      f.pixels[static_cast<std::size_t>(y) * w + x] =
          static_cast<std::uint8_t>(std::clamp(static_cast<int>(v), 0, 255));
    }
  }
  return f;
}

TEST(Mjpeg, RoundTripPreservesDimensions) {
  MjpegCodec codec(75);
  const GrayFrame f = test_frame(64, 48, 1);
  const GrayFrame back = codec.decode(codec.encode(f));
  EXPECT_EQ(back.width, f.width);
  EXPECT_EQ(back.height, f.height);
  EXPECT_EQ(back.pixels.size(), f.pixels.size());
}

TEST(Mjpeg, HighQualityHighPsnr) {
  MjpegCodec codec(90);
  const GrayFrame f = test_frame(64, 64, 2);
  EXPECT_GT(psnr_db(f, codec.decode(codec.encode(f))), 32.0);
}

TEST(Mjpeg, CompressesRealisticContent) {
  MjpegCodec codec(50);
  const GrayFrame f = test_frame(128, 128, 3);
  EXPECT_GT(codec.compression_ratio(f), 2.0);
}

TEST(Mjpeg, SmoothContentCompressesHarder) {
  MjpegCodec codec(50);
  GrayFrame smooth;
  smooth.width = smooth.height = 64;
  smooth.pixels.resize(64 * 64);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      smooth.pixels[static_cast<std::size_t>(y) * 64 + x] = static_cast<std::uint8_t>(x + y);
    }
  }
  EXPECT_GT(codec.compression_ratio(smooth), codec.compression_ratio(test_frame(64, 64, 4)));
  EXPECT_GT(codec.compression_ratio(smooth), 8.0);
}

class MjpegQualitySweep : public ::testing::TestWithParam<int> {};

TEST_P(MjpegQualitySweep, DecodesAtEveryQuality) {
  MjpegCodec codec(GetParam());
  const GrayFrame f = test_frame(48, 48, 5);
  const GrayFrame back = codec.decode(codec.encode(f));
  EXPECT_GT(psnr_db(f, back), 18.0);  // even q=5 must stay recognizable
}

INSTANTIATE_TEST_SUITE_P(Qualities, MjpegQualitySweep, ::testing::Values(5, 25, 50, 75, 95));

TEST(Mjpeg, QualityMonotonicallyImprovesPsnr) {
  const GrayFrame f = test_frame(64, 64, 6);
  double prev_psnr = 0.0;
  for (const int q : {10, 30, 50, 70, 90}) {
    MjpegCodec codec(q);
    const double p = psnr_db(f, codec.decode(codec.encode(f)));
    EXPECT_GE(p, prev_psnr - 0.3);  // allow tiny non-monotonic wiggle
    prev_psnr = p;
  }
}

TEST(Mjpeg, QualityTradesRateForDistortion) {
  const GrayFrame f = test_frame(64, 64, 7);
  EXPECT_GT(MjpegCodec(10).compression_ratio(f), MjpegCodec(90).compression_ratio(f));
}

TEST(Mjpeg, RejectsNonBlockAlignedFrames) {
  MjpegCodec codec(50);
  GrayFrame f;
  f.width = 30;  // not a multiple of 8
  f.height = 16;
  f.pixels.resize(480);
  EXPECT_THROW(codec.encode(f), std::invalid_argument);
  EXPECT_THROW(MjpegCodec(0), std::invalid_argument);
  EXPECT_THROW(MjpegCodec(101), std::invalid_argument);
}

// ---- ADPCM ---------------------------------------------------------------------

std::vector<std::int16_t> tone(double freq_hz, double fs, double seconds, double amp) {
  std::vector<std::int16_t> pcm(static_cast<std::size_t>(fs * seconds));
  for (std::size_t i = 0; i < pcm.size(); ++i) {
    pcm[i] = static_cast<std::int16_t>(
        amp * 32767.0 * std::sin(2.0 * M_PI * freq_hz * static_cast<double>(i) / fs));
  }
  return pcm;
}

TEST(Adpcm, FourToOneCompression) {
  const auto pcm = tone(440.0, 16000.0, 0.5, 0.5);
  const AdpcmEncoded enc = AdpcmCodec::encode(pcm);
  // 4 bits/sample vs 16: ratio ~4 (header amortized away).
  const double ratio = static_cast<double>(pcm.size() * 2) / static_cast<double>(enc.size_bytes());
  EXPECT_GT(ratio, 3.8);
  EXPECT_LE(ratio, 4.1);
}

TEST(Adpcm, ReconstructionSnrOnTone) {
  EXPECT_GT(AdpcmCodec::reconstruction_snr_db(tone(440.0, 16000.0, 0.5, 0.5)), 20.0);
}

TEST(Adpcm, SampleCountPreserved) {
  for (const std::size_t n : {1u, 2u, 3u, 100u, 101u}) {
    std::vector<std::int16_t> pcm(n, 1000);
    EXPECT_EQ(AdpcmCodec::decode(AdpcmCodec::encode(pcm)).size(), n);
  }
}

TEST(Adpcm, SilenceIsNearExact) {
  std::vector<std::int16_t> pcm(1000, 0);
  const auto back = AdpcmCodec::decode(AdpcmCodec::encode(pcm));
  for (const auto s : back) EXPECT_LE(std::abs(s), 8);  // minimum step dither
}

TEST(Adpcm, TracksStepChanges) {
  // Loud tone after silence: the adaptive step must catch up.
  auto pcm = tone(200.0, 16000.0, 0.1, 0.02);
  const auto loud = tone(200.0, 16000.0, 0.1, 0.9);
  pcm.insert(pcm.end(), loud.begin(), loud.end());
  EXPECT_GT(AdpcmCodec::reconstruction_snr_db(pcm), 15.0);
}

// ---- Biopotential codec -------------------------------------------------------------

TEST(BioCodec, LosslessRoundTrip) {
  sim::Rng rng(9);
  std::vector<std::int16_t> samples(2000);
  std::int16_t v = 0;
  for (auto& s : samples) {
    v = static_cast<std::int16_t>(v + rng.uniform_int(-50, 50));
    s = v;
  }
  for (const bool huff : {false, true}) {
    BioCodec codec(huff);
    EXPECT_EQ(codec.decode(codec.encode(samples)), samples);
  }
}

TEST(BioCodec, CompressesSmoothSignals) {
  // Slow ramp: deltas fit one varint byte -> ~2x before Huffman.
  std::vector<std::int16_t> samples(4000);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = static_cast<std::int16_t>(1000.0 + 500.0 * std::sin(i * 0.01));
  }
  BioCodec plain(false);
  EXPECT_GT(plain.compression_ratio(samples), 1.8);
  BioCodec huff(true);
  EXPECT_GT(huff.compression_ratio(samples), plain.compression_ratio(samples));
}

TEST(BioCodec, HandlesExtremes) {
  std::vector<std::int16_t> samples = {32767, -32768, 0, 32767, -32768};
  BioCodec codec(false);
  EXPECT_EQ(codec.decode(codec.encode(samples)), samples);
}

TEST(BioCodec, EmptyStream) {
  BioCodec codec(false);
  EXPECT_TRUE(codec.decode(codec.encode({})).empty());
}

// ---- FFT ------------------------------------------------------------------------------

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<Complex> x(8, Complex(0, 0));
  x[0] = Complex(1, 0);
  fft(x);
  for (const auto& v : x) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(Fft, SinePeaksAtItsBin) {
  const std::size_t n = 256;
  std::vector<float> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(std::sin(2.0 * M_PI * 16.0 * static_cast<double>(i) / n));
  }
  const auto mag = magnitude_spectrum(x);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < mag.size(); ++i) {
    if (mag[i] > mag[peak]) peak = i;
  }
  EXPECT_EQ(peak, 16u);
}

TEST(Fft, InverseRoundTrip) {
  sim::Rng rng(10);
  std::vector<Complex> x(64);
  for (auto& v : x) v = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  const auto original = x;
  fft(x);
  ifft(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(x[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  sim::Rng rng(11);
  std::vector<Complex> x(128);
  for (auto& v : x) v = Complex(rng.uniform(-1, 1), 0.0);
  double e_time = 0.0;
  for (const auto& v : x) e_time += std::norm(v);
  fft(x);
  double e_freq = 0.0;
  for (const auto& v : x) e_freq += std::norm(v);
  EXPECT_NEAR(e_freq / static_cast<double>(x.size()), e_time, 1e-9);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> x(12);
  EXPECT_THROW(fft(x), std::invalid_argument);
  EXPECT_EQ(next_pow2(12), 16u);
  EXPECT_EQ(next_pow2(16), 16u);
}

// ---- Features ---------------------------------------------------------------------------

TEST(Features, TimeFeaturesOnKnownSignals) {
  // Constant signal: rms == value, no crossings.
  const std::vector<float> constant(100, 2.0f);
  const auto fc = time_features(constant);
  EXPECT_NEAR(fc.rms, 2.0, 1e-6);
  EXPECT_FLOAT_EQ(fc.zero_cross_rate, 0.0f);
  EXPECT_NEAR(fc.peak, 2.0, 1e-6);

  // Alternating signal: crossing on every sample.
  std::vector<float> alt(100);
  for (std::size_t i = 0; i < alt.size(); ++i) alt[i] = (i % 2 == 0) ? 1.0f : -1.0f;
  EXPECT_NEAR(time_features(alt).zero_cross_rate, 1.0, 0.02);
}

TEST(Features, MelScaleRoundTrip) {
  for (const double hz : {100.0, 1000.0, 4000.0}) {
    EXPECT_NEAR(mel_to_hz(hz_to_mel(hz)), hz, 1e-6);
  }
  // Mel is compressive: octaves above 1 kHz add less than proportional mel.
  EXPECT_LT(hz_to_mel(8000.0) / hz_to_mel(1000.0), 8.0);
}

TEST(Features, LogMelRespondsToToneLocation) {
  MelConfig cfg;
  // A 500 Hz tone must put more energy in low-mel bands than a 4 kHz tone.
  auto make_tone = [&](double f) {
    std::vector<float> frame(cfg.frame_len);
    for (std::size_t i = 0; i < frame.size(); ++i) {
      frame[i] = static_cast<float>(std::sin(2.0 * M_PI * f * static_cast<double>(i) /
                                             cfg.sample_rate_hz));
    }
    return frame;
  };
  const auto low = log_mel_energies(make_tone(500.0), cfg);
  const auto high = log_mel_energies(make_tone(4000.0), cfg);
  std::size_t low_peak = 0, high_peak = 0;
  for (std::size_t i = 0; i < cfg.n_mels; ++i) {
    if (low[i] > low[low_peak]) low_peak = i;
    if (high[i] > high[high_peak]) high_peak = i;
  }
  EXPECT_LT(low_peak, high_peak);
}

TEST(Features, MfccShapes) {
  MelConfig cfg;
  std::vector<float> frame(cfg.frame_len, 0.1f);
  EXPECT_EQ(mfcc_frame(frame, cfg).size(), cfg.n_mfcc);
}

TEST(Features, SpectrogramMatchesKwsInput) {
  MelConfig cfg;
  const std::size_t frames = 49;
  std::vector<float> signal(cfg.frame_len + (frames - 1) * cfg.hop, 0.0f);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    signal[i] = static_cast<float>(std::sin(i * 0.05));
  }
  const nn::Tensor spec = mfcc_spectrogram(signal, cfg, frames);
  EXPECT_EQ(spec.shape(), (nn::Shape{49, 10, 1}));
  EXPECT_THROW(mfcc_spectrogram(std::vector<float>(10, 0.0f), cfg, frames),
               std::invalid_argument);
}

// ---- Metrics ------------------------------------------------------------------------------

TEST(Metrics, PsnrIdenticalIsHuge) {
  const GrayFrame f = test_frame(16, 16, 12);
  EXPECT_GT(psnr_db(f, f), 100.0);
}

TEST(Metrics, CompressionRatioMath) {
  EXPECT_DOUBLE_EQ(compression_ratio(1000, 100), 10.0);
  EXPECT_THROW(compression_ratio(10, 0), std::invalid_argument);
}

}  // namespace
}  // namespace iob::isa
