// Tests for the second extension wave: the delta-frame video codec, the
// CSMA/CA body-bus MAC, folded BatchNorm, and battery self-discharge.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "comm/csma.hpp"
#include "comm/tdma.hpp"
#include "comm/wir_link.hpp"
#include "common/units.hpp"
#include "energy/battery.hpp"
#include "isa/metrics.hpp"
#include "isa/mjpeg.hpp"
#include "isa/mjpeg_delta.hpp"
#include "nn/layers.hpp"
#include "nn/model.hpp"
#include "sim/simulator.hpp"
#include "workload/video.hpp"

namespace iob {
namespace {

using namespace iob::units;

// ---- MJPEG delta codec ---------------------------------------------------------

TEST(MjpegDelta, FirstFrameIsKeyAndRoundTrips) {
  workload::VideoGenerator gen;
  sim::Rng rng(1);
  const isa::GrayFrame f = gen.next_frame(rng);
  isa::MjpegDeltaEncoder enc(75);
  isa::MjpegDeltaDecoder dec(75);
  const isa::DeltaEncodedFrame e = enc.encode_next(f);
  EXPECT_TRUE(e.key);
  const isa::GrayFrame back = dec.decode_next(e);
  EXPECT_GT(isa::psnr_db(f, back), 28.0);
}

TEST(MjpegDelta, DeltaFramesTrackTheStreamWithoutDrift) {
  workload::VideoGenerator gen;
  sim::Rng rng(2);
  isa::MjpegDeltaEncoder enc(60, /*key_interval=*/1000);  // force long delta runs
  isa::MjpegDeltaDecoder dec(60);
  double worst_psnr = 1e9;
  for (int i = 0; i < 20; ++i) {
    const isa::GrayFrame f = gen.next_frame(rng);
    const isa::DeltaEncodedFrame e = enc.encode_next(f);
    EXPECT_EQ(e.key, i == 0);
    const isa::GrayFrame back = dec.decode_next(e);
    worst_psnr = std::min(worst_psnr, isa::psnr_db(f, back));
  }
  // Closed-loop prediction: quality must not degrade over a long delta run.
  EXPECT_GT(worst_psnr, 25.0);
}

TEST(MjpegDelta, DeltaFramesCrushIntraOnStaticTexturedScenes) {
  // The textbook inter-frame win: a detailed *static* background (expensive
  // to re-code intra every frame) with one small moving patch (the only
  // residual). Build frames directly so the texture is frame-static.
  const int w = 160, h = 120;
  sim::Rng tex_rng(42);
  std::vector<std::uint8_t> background(static_cast<std::size_t>(w) * h);
  for (auto& p : background) p = static_cast<std::uint8_t>(tex_rng.uniform_int(60, 200));

  auto make_frame = [&](int t) {
    isa::GrayFrame f;
    f.width = w;
    f.height = h;
    f.pixels = background;
    const int x0 = 10 + 4 * t, y0 = 40;  // 16x16 patch moving right
    for (int y = y0; y < y0 + 16; ++y) {
      for (int x = x0; x < x0 + 16; ++x) {
        f.pixels[static_cast<std::size_t>(y) * w + x] = 255;
      }
    }
    return f;
  };

  isa::MjpegCodec intra(60);
  isa::MjpegDeltaEncoder delta(60, 1000);
  isa::MjpegDeltaDecoder dec(60);
  (void)dec.decode_next(delta.encode_next(make_frame(0)));  // key frame

  std::size_t intra_bytes = 0, delta_bytes = 0;
  for (int t = 1; t <= 8; ++t) {
    const isa::GrayFrame f = make_frame(t);
    intra_bytes += intra.encode(f).size_bytes();
    const auto e = delta.encode_next(f);
    EXPECT_FALSE(e.key);
    delta_bytes += e.size_bytes();
    // And the stream still reconstructs faithfully (white-noise texture at
    // q60 codes at ~24.4 dB intra; delta must not degrade below that).
    EXPECT_GT(isa::psnr_db(f, dec.decode_next(e)), 23.0);
  }
  EXPECT_LT(static_cast<double>(delta_bytes), 0.25 * static_cast<double>(intra_bytes));
}

TEST(MjpegDelta, KeyIntervalForcesPeriodicKeys) {
  workload::VideoGenerator gen;
  sim::Rng rng(4);
  isa::MjpegDeltaEncoder enc(50, /*key_interval=*/4);
  int keys = 0;
  for (int i = 0; i < 12; ++i) {
    keys += enc.encode_next(gen.next_frame(rng)).key ? 1 : 0;
  }
  EXPECT_EQ(keys, 3);  // frames 0, 4, 8
}

TEST(MjpegDelta, DecoderRejectsDeltaBeforeKey) {
  isa::MjpegDeltaDecoder dec(50);
  isa::DeltaEncodedFrame bogus;
  bogus.key = false;
  bogus.width = 16;
  bogus.height = 16;
  EXPECT_THROW(dec.decode_next(bogus), std::invalid_argument);
}

TEST(MjpegDelta, ResetRestartsWithKeyFrame) {
  workload::VideoGenerator gen;
  sim::Rng rng(5);
  isa::MjpegDeltaEncoder enc(50, 1000);
  (void)enc.encode_next(gen.next_frame(rng));
  EXPECT_FALSE(enc.encode_next(gen.next_frame(rng)).key);
  enc.reset();
  EXPECT_TRUE(enc.encode_next(gen.next_frame(rng)).key);
}

// ---- CSMA MAC -------------------------------------------------------------------

TEST(Csma, SingleNodeDeliversWithoutCollisions) {
  sim::Simulator sim(10);
  comm::WiRLink wir;
  comm::CsmaBus bus(sim, wir);
  const comm::NodeId a = bus.add_node("a");
  int delivered = 0;
  bus.set_delivery_handler([&](const comm::Frame&, sim::Time) { ++delivered; });
  bus.start();
  for (int i = 0; i < 40; ++i) {
    comm::Frame f;
    f.payload_bytes = 200;
    bus.enqueue(a, f);
  }
  sim.run_until(1.0);
  bus.stop();
  EXPECT_EQ(delivered, 40);
  EXPECT_EQ(bus.collisions(), 0u);
  EXPECT_EQ(bus.stats().nodes[0].frames_dropped, 0u);
}

TEST(Csma, ContendingNodesAllGetThroughWithSomeCollisions) {
  sim::Simulator sim(11);
  comm::WiRLink wir;
  comm::CsmaBus bus(sim, wir);
  const int n_nodes = 6;
  std::vector<comm::NodeId> ids;
  for (int i = 0; i < n_nodes; ++i) ids.push_back(bus.add_node("n" + std::to_string(i)));
  bus.start();
  for (const auto id : ids) {
    for (int k = 0; k < 25; ++k) {
      comm::Frame f;
      f.payload_bytes = 150;
      bus.enqueue(id, f);
    }
  }
  sim.run_until(2.0);
  bus.stop();
  std::uint64_t delivered = 0;
  for (const auto& ns : bus.stats().nodes) delivered += ns.frames_delivered;
  EXPECT_EQ(delivered, 150u);  // retries absorb the collisions
  EXPECT_GT(bus.collisions(), 0u);  // simultaneous backlog must collide sometimes
}

TEST(Csma, ConservationUnderContention) {
  sim::Simulator sim(12);
  comm::WiRLink wir;
  comm::CsmaBus bus(sim, wir);
  const comm::NodeId a = bus.add_node("a");
  const comm::NodeId b = bus.add_node("b");
  std::uint64_t hub_bytes = 0;
  bus.set_delivery_handler([&](const comm::Frame& f, sim::Time) { hub_bytes += f.payload_bytes; });
  bus.start();
  for (int i = 0; i < 30; ++i) {
    comm::Frame f;
    f.payload_bytes = 100;
    bus.enqueue(a, f);
    bus.enqueue(b, f);
  }
  sim.run_until(2.0);
  EXPECT_EQ(hub_bytes, bus.stats().total_bytes_delivered());
  EXPECT_EQ(hub_bytes, 60u * 100u);
}

TEST(Csma, SensingEnergySitsBetweenTdmaAndAlwaysOn) {
  // The A2 energy ordering: TDMA < CSMA << polling-style always-listening.
  comm::WiRLink wir;

  auto leaf_energy_tdma = [&] {
    sim::Simulator sim(13);
    comm::TdmaBus bus(sim, wir, comm::TdmaConfig{});
    const comm::NodeId a = bus.add_node("a");
    bus.start();
    for (int i = 0; i < 20; ++i) {
      comm::Frame f;
      f.payload_bytes = 200;
      bus.enqueue(a, f);
    }
    sim.run_until(1.0);
    return bus.stats().nodes[0].tx_energy_j + bus.stats().nodes[0].rx_energy_j;
  }();

  auto leaf_energy_csma = [&] {
    sim::Simulator sim(13);
    comm::CsmaBus bus(sim, wir);
    const comm::NodeId a = bus.add_node("a");
    bus.start();
    for (int i = 0; i < 20; ++i) {
      comm::Frame f;
      f.payload_bytes = 200;
      bus.enqueue(a, f);
    }
    sim.run_until(1.0);
    return bus.stats().nodes[0].tx_energy_j + bus.stats().nodes[0].rx_energy_j;
  }();

  const double always_on = wir.spec().rx_power_w * 1.0;  // listen for the full second
  EXPECT_LT(leaf_energy_csma, always_on);
  // CSMA pays sensing only while backlogged; with a single node and short
  // backoffs it is close to TDMA but includes the contention sensing.
  EXPECT_LT(leaf_energy_tdma, always_on);
}

TEST(Csma, LateArrivalsWakeTheBus) {
  sim::Simulator sim(14);
  comm::WiRLink wir;
  comm::CsmaBus bus(sim, wir);
  const comm::NodeId a = bus.add_node("a");
  int delivered = 0;
  bus.set_delivery_handler([&](const comm::Frame&, sim::Time) { ++delivered; });
  bus.start();  // nothing queued yet
  sim.after(0.5, [&] {
    comm::Frame f;
    f.payload_bytes = 80;
    bus.enqueue(a, f);
  });
  sim.run_until(1.0);
  EXPECT_EQ(delivered, 1);
}

// ---- BatchNorm ----------------------------------------------------------------

TEST(BatchNorm, AffinePerChannel) {
  nn::BatchNorm bn({2.0f, 0.5f}, {1.0f, -1.0f});
  nn::Tensor x(nn::Shape{1, 1, 2});
  x.at(0, 0, 0) = 3.0f;
  x.at(0, 0, 1) = 4.0f;
  const nn::Tensor y = bn.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), 7.0f);   // 2*3 + 1
  EXPECT_FLOAT_EQ(y.at(0, 0, 1), 1.0f);   // 0.5*4 - 1
}

TEST(BatchNorm, FoldMatchesDefinition) {
  // y = gamma * (x - mean)/sqrt(var + eps) + beta.
  const auto bn = nn::BatchNorm::fold({1.5f}, {0.25f}, {2.0f}, {4.0f}, 0.0f);
  nn::Tensor x(nn::Shape{1, 1, 1});
  x[0] = 6.0f;
  EXPECT_NEAR(bn.forward(x)[0], 1.5f * (6.0f - 2.0f) / 2.0f + 0.25f, 1e-5);
}

TEST(BatchNorm, NormalizesItsOwnStatistics) {
  // Folding the data's own mean/var with gamma=1, beta=0 whitens it.
  sim::Rng rng(15);
  const int n = 4096;
  nn::Tensor x(nn::Shape{n, 1});
  double mean = 0.0;
  for (int i = 0; i < n; ++i) {
    x.at(i, 0) = static_cast<float>(rng.normal(5.0, 3.0));
    mean += x.at(i, 0);
  }
  mean /= n;
  double var = 0.0;
  for (int i = 0; i < n; ++i) var += (x.at(i, 0) - mean) * (x.at(i, 0) - mean);
  var /= n;
  const auto bn = nn::BatchNorm::fold({1.0f}, {0.0f}, {static_cast<float>(mean)},
                                      {static_cast<float>(var)});
  const nn::Tensor y = bn.forward(x);
  double ymean = 0.0, yvar = 0.0;
  for (int i = 0; i < n; ++i) ymean += y.at(i, 0);
  ymean /= n;
  for (int i = 0; i < n; ++i) yvar += (y.at(i, 0) - ymean) * (y.at(i, 0) - ymean);
  yvar /= n;
  EXPECT_NEAR(ymean, 0.0, 0.01);
  EXPECT_NEAR(yvar, 1.0, 0.01);
}

TEST(BatchNorm, ComposesInsideAModel) {
  nn::Model m("bn-net", nn::Shape{4, 4, 2});
  m.add(std::make_unique<nn::BatchNorm>(std::vector<float>{1.0f, 2.0f},
                                        std::vector<float>{0.0f, 0.0f}));
  m.add(std::make_unique<nn::GlobalAvgPool>());
  const nn::Tensor y = m.forward(nn::Tensor(nn::Shape{4, 4, 2}, 1.0f));
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  EXPECT_EQ(m.profiles()[0].params, 4u);
}

TEST(BatchNorm, RejectsChannelMismatch) {
  nn::BatchNorm bn({1.0f, 1.0f}, {0.0f, 0.0f});
  EXPECT_THROW(bn.forward(nn::Tensor(nn::Shape{2, 2, 3})), std::invalid_argument);
  EXPECT_THROW(nn::BatchNorm({1.0f}, {0.0f, 0.0f}), std::invalid_argument);
}

// ---- Battery self-discharge -------------------------------------------------------

TEST(SelfDischarge, BoundsPerpetualAtShelfLife) {
  // 1%/yr lithium coin cell: even a zero-power node "dies" at the ~100 yr
  // shelf-life scale, and a 1 uW node's life is shortened accordingly.
  energy::Battery b(1000.0, 3.0, 1.0, 0.01);
  EXPECT_NEAR(b.self_discharge_w(), 0.01 * 10800.0 / year, 1e-12);
  const double zero_load_life = b.time_to_empty_s(0.0);
  EXPECT_NEAR(zero_load_life / year, 100.0, 1.0);
  EXPECT_LT(b.time_to_empty_s(1e-6), zero_load_life);
}

TEST(SelfDischarge, DefaultIsIdeal) {
  const energy::Battery b = energy::Battery::coin_cell_1000mah();
  EXPECT_DOUBLE_EQ(b.self_discharge_w(), 0.0);
  EXPECT_TRUE(std::isinf(b.time_to_empty_s(0.0)));
}

TEST(SelfDischarge, RejectsOutOfRange) {
  EXPECT_THROW(energy::Battery(100.0, 3.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(energy::Battery(100.0, 3.0, 1.0, -0.1), std::invalid_argument);
}

}  // namespace
}  // namespace iob
