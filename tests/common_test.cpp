// Unit tests for src/common: units, interpolation, table rendering.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/expect.hpp"
#include "common/interp.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace iob {
namespace {

using common::AnchorTable;
using common::LinearInterpolator;
using common::LogLogInterpolator;

// ---- units ------------------------------------------------------------------

TEST(Units, BatteryEnergy) {
  // 1000 mAh at 3 V = 1 Ah * 3 V * 3600 s = 10.8 kJ (the Fig. 3 battery).
  EXPECT_DOUBLE_EQ(units::battery_energy_j(1000.0, 3.0), 10800.0);
}

TEST(Units, DbRoundTrip) {
  EXPECT_NEAR(units::from_db(units::to_db(123.456)), 123.456, 1e-9);
  EXPECT_NEAR(units::to_db(100.0), 20.0, 1e-12);
  EXPECT_NEAR(units::to_db_voltage(10.0), 20.0, 1e-12);
}

TEST(Units, DbmConversions) {
  EXPECT_NEAR(units::to_dbm(1e-3), 0.0, 1e-12);          // 1 mW = 0 dBm
  EXPECT_NEAR(units::from_dbm(-30.0), 1e-6, 1e-15);      // -30 dBm = 1 uW
  EXPECT_NEAR(units::to_dbm(units::from_dbm(-95.0)), -95.0, 1e-9);
}

TEST(Units, TimeConstants) {
  EXPECT_DOUBLE_EQ(units::week, 7.0 * units::day);
  EXPECT_GT(units::year, 365.0 * units::day);
  EXPECT_LT(units::year, 366.0 * units::day);
}

// ---- IOB_EXPECTS ------------------------------------------------------------

TEST(Expect, ThrowsOnViolation) {
  EXPECT_THROW(
      [] { IOB_EXPECTS(false, "must throw"); }(), std::invalid_argument);
  EXPECT_THROW(
      [] { IOB_ENSURES(false, "must throw"); }(), std::logic_error);
  EXPECT_NO_THROW([] { IOB_EXPECTS(true, ""); }());
}

// ---- LinearInterpolator -----------------------------------------------------

TEST(LinearInterp, ExactAtAnchors) {
  LinearInterpolator f({{0.0, 1.0}, {1.0, 3.0}, {2.0, 2.0}});
  EXPECT_DOUBLE_EQ(f(0.0), 1.0);
  EXPECT_DOUBLE_EQ(f(1.0), 3.0);
  EXPECT_DOUBLE_EQ(f(2.0), 2.0);
}

TEST(LinearInterp, Midpoints) {
  LinearInterpolator f({{0.0, 0.0}, {2.0, 4.0}});
  EXPECT_DOUBLE_EQ(f(1.0), 2.0);
  EXPECT_DOUBLE_EQ(f(0.5), 1.0);
}

TEST(LinearInterp, ExtrapolatesTerminalSlopes) {
  LinearInterpolator f({{0.0, 0.0}, {1.0, 1.0}});
  EXPECT_DOUBLE_EQ(f(2.0), 2.0);    // continues slope 1
  EXPECT_DOUBLE_EQ(f(-1.0), -1.0);  // continues slope 1 below
}

TEST(LinearInterp, RejectsBadTables) {
  EXPECT_THROW(LinearInterpolator({{0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(LinearInterpolator({{1.0, 1.0}, {1.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(LinearInterpolator({{2.0, 1.0}, {1.0, 2.0}}), std::invalid_argument);
}

// ---- LogLogInterpolator -----------------------------------------------------

TEST(LogLogInterp, PowerLawIsExact) {
  // y = x^2 through two anchors: every point between them follows the law.
  LogLogInterpolator f({{1.0, 1.0}, {100.0, 10000.0}});
  EXPECT_NEAR(f(10.0), 100.0, 1e-9);
  EXPECT_NEAR(f(3.0), 9.0, 1e-9);
  EXPECT_NEAR(f.local_exponent(5.0), 2.0, 1e-4);
}

TEST(LogLogInterp, PiecewiseExponentChanges) {
  // Slope 1 then slope 3.
  LogLogInterpolator f({{1.0, 1.0}, {10.0, 10.0}, {100.0, 10000.0}});
  EXPECT_NEAR(f.local_exponent(3.0), 1.0, 1e-4);
  EXPECT_NEAR(f.local_exponent(30.0), 3.0, 1e-4);
}

TEST(LogLogInterp, RejectsNonPositive) {
  EXPECT_THROW(LogLogInterpolator({{0.0, 1.0}, {1.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(LogLogInterpolator({{1.0, -1.0}, {2.0, 2.0}}), std::invalid_argument);
  LogLogInterpolator f({{1.0, 1.0}, {2.0, 2.0}});
  EXPECT_THROW((void)f(0.0), std::invalid_argument);
}

TEST(LogLogInterp, MonotoneTablesInterpolateMonotonically) {
  LogLogInterpolator f({{1.0, 2.0}, {10.0, 20.0}, {100.0, 500.0}});
  double prev = 0.0;
  for (double x = 1.0; x <= 100.0; x *= 1.3) {
    const double y = f(x);
    EXPECT_GT(y, prev);
    prev = y;
  }
}

// ---- si_format --------------------------------------------------------------

TEST(SiFormat, PicksPrefixes) {
  EXPECT_EQ(common::si_format(415e-9, "W"), "415 nW");     // the paper's 415 nW node
  EXPECT_EQ(common::si_format(100e-12, "J/b"), "100 pJ/b"); // Wi-R figure of merit
  EXPECT_EQ(common::si_format(4e6, "b/s"), "4.00 Mb/s");
  EXPECT_EQ(common::si_format(0.0, "W"), "0 W");
}

TEST(SiFormat, SignificantDigits) {
  EXPECT_EQ(common::si_format(1.23456e-3, "W", 3), "1.23 mW");
  EXPECT_EQ(common::si_format(12.3456e-3, "W", 3), "12.3 mW");
  EXPECT_EQ(common::si_format(123.456e-3, "W", 3), "123 mW");
}

TEST(SiFormat, HandlesInfinity) {
  EXPECT_EQ(common::si_format(std::numeric_limits<double>::infinity(), "s"), "inf s");
}

// ---- Table ------------------------------------------------------------------

TEST(Table, RendersAlignedRows) {
  common::Table t({"a", "bbbb"});
  t.add_row({"xx", "y"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a  | bbbb |"), std::string::npos);
  EXPECT_NE(s.find("| xx | y    |"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  common::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CountsRows) {
  common::Table t({"a"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 3u);  // rules count as rows internally
}

}  // namespace
}  // namespace iob
