// Tests for the hub's parallel metered engine and the fused
// im2col+pack-A conv path: packed-A bit-exactness vs the seed-loop oracle
// and the strided path (f32 + int8, all zoo models), byte-identical
// SessionStats across engine thread counts, fleet-grid byte-identity with
// `FleetAxes::hub_engine_threads` swept, TaskPool reentrancy guarding,
// zero steady-state allocations on per-thread workspaces, and a
// hand-computed two-session energy attribution under the parallel engine.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/wir_link.hpp"
#include "common/alloc_interposer.hpp"  // defines global operator new/delete
#include "core/fleet.hpp"
#include "core/sweep_runner.hpp"
#include "net/network_sim.hpp"
#include "nn/gemm.hpp"
#include "nn/model.hpp"
#include "nn/model_zoo.hpp"
#include "nn/qmodel.hpp"
#include "nn/tensor.hpp"
#include "nn/workspace.hpp"
#include "sim/task_pool.hpp"

namespace iob {
namespace {

std::atomic<std::uint64_t>& g_alloc_count = iob::alloc_interposer::new_calls;

using namespace iob::nn;

Model zoo_model(int idx) {
  return idx == 0 ? make_kws_dscnn() : idx == 1 ? make_ecg_cnn1d() : make_vww_micronet();
}

/// Restores the global packed-A toggle on scope exit so a failing assertion
/// cannot leak a disabled fast path into later tests.
struct PackToggleGuard {
  bool saved = pack_a_enabled();
  ~PackToggleGuard() { set_pack_a_enabled(saved); }
};

// ---- packed-A bit-exactness -------------------------------------------------

TEST(PackedA, F32ZooModelsBitExactVsReferenceAndStridedPath) {
  const PackToggleGuard guard;
  for (int idx = 0; idx < 3; ++idx) {
    const Model m = zoo_model(idx);
    for (const int batch : {2, 5}) {
      std::vector<Tensor> inputs;
      for (int s = 0; s < batch; ++s) {
        inputs.push_back(patterned_tensor(m.input_shape(), idx * 10 + s));
      }
      const Tensor stacked = stack_batch(inputs);
      const Tensor ref = m.run_batched_reference(stacked);  // seed-loop oracle

      Workspace ws;
      set_pack_a_enabled(true);
      const ConstSpan packed = m.run_into(ws, stacked.data(), batch);
      ASSERT_EQ(packed.size, ref.size());
      const std::vector<float> packed_copy(packed.data, packed.data + packed.size);

      set_pack_a_enabled(false);
      const ConstSpan strided = m.run_into(ws, stacked.data(), batch);
      ASSERT_EQ(strided.size, ref.size());

      // Bitwise, not approximately: the packed micro-kernel replays the
      // strided kernel's mul/add order exactly.
      EXPECT_EQ(std::memcmp(packed_copy.data(), ref.data(), ref.size() * sizeof(float)), 0)
          << m.name() << " batch " << batch << " (packed vs reference)";
      EXPECT_EQ(std::memcmp(packed_copy.data(), strided.data, ref.size() * sizeof(float)), 0)
          << m.name() << " batch " << batch << " (packed vs strided)";
    }
  }
}

TEST(PackedA, Int8ZooModelsBitwiseIdenticalPackedVsStrided) {
  const PackToggleGuard guard;
  for (int idx = 0; idx < 3; ++idx) {
    const Model m = zoo_model(idx);
    const QuantizedModel qm(m);
    constexpr int kBatch = 3;
    std::vector<Tensor> inputs;
    for (int s = 0; s < kBatch; ++s) {
      inputs.push_back(patterned_tensor(m.input_shape(), 40 + idx * 10 + s));
    }
    const Tensor stacked = stack_batch(inputs);

    set_pack_a_enabled(true);
    const Tensor packed = qm.run_batched(stacked);
    set_pack_a_enabled(false);
    const Tensor strided = qm.run_batched(stacked);

    // Integer accumulation is exact on both paths, so the panel layout
    // cannot perturb a single bit of the dequantized logits.
    ASSERT_EQ(packed.size(), strided.size()) << m.name();
    EXPECT_EQ(std::memcmp(packed.data(), strided.data(), packed.size() * sizeof(float)), 0)
        << m.name();

    // And the packed batched pass stays batch-invariant vs per-sample runs.
    set_pack_a_enabled(true);
    for (int s = 0; s < kBatch; ++s) {
      const Tensor single = qm.forward(inputs[static_cast<std::size_t>(s)]);
      const float* row = packed.data() + static_cast<std::int64_t>(s) * single.size();
      EXPECT_EQ(std::memcmp(row, single.data(), single.size() * sizeof(float)), 0)
          << m.name() << " sample " << s;
    }
  }
}

// ---- engine-thread determinism ----------------------------------------------

/// Three sessions sharing one metered ecg model, with `bytes_per_inference`
/// small enough that each delivered frame stages a multi-sub-batch flush —
/// the parallel engine path actually fans out at threads > 1.
std::vector<net::SessionStats> run_parallel_metered(const Model& ecg, unsigned threads) {
  net::NetworkConfig cfg;
  cfg.seed = 11;
  cfg.hub.batch_window = 4;
  cfg.hub.execute_and_meter = true;
  cfg.hub.engine_threads = threads;
  net::NetworkSim net(std::make_unique<comm::WiRLink>(), cfg);
  const char* streams[] = {"ecg-a", "ecg-b", "ecg-c"};
  for (const char* stream : streams) {
    net::NodeConfig n;
    n.name = stream;
    n.stream = stream;
    n.output_rate_bps = 64e3;
    n.frame_bytes = 240;
    net.add_node(n);
    net::SessionConfig s;
    s.stream = stream;
    s.macs_per_inference = 185'000;
    s.bytes_per_inference = 4;  // 60 staged inferences per frame: nsub >= 2
    s.model = "ecg-cnn1d";
    s.weight_bytes = 9'000;
    s.net = &ecg;
    net.add_session(s);
  }
  net.run(0.3);
  std::vector<net::SessionStats> out;
  for (const char* stream : streams) out.push_back(net.hub().session(stream));
  return out;
}

TEST(HubParallel, MeteredStatsBitIdenticalAcrossEngineThreads) {
  const Model ecg = make_ecg_cnn1d();
  const std::vector<net::SessionStats> serial = run_parallel_metered(ecg, 1);
  ASSERT_EQ(serial.size(), 3u);
  ASSERT_GT(serial[0].executed_inferences, 100u);  // multi-sub-batch flushes ran

  for (const unsigned threads : {2u, 8u}) {
    const std::vector<net::SessionStats> parallel = run_parallel_metered(ecg, threads);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      const net::SessionStats& a = serial[i];
      const net::SessionStats& b = parallel[i];
      // Everything except measured wall time is bit-identical: the
      // parallel engine only changes which thread times a sub-batch.
      EXPECT_EQ(a.bytes_in, b.bytes_in) << threads << " threads, session " << i;
      EXPECT_EQ(a.inferences, b.inferences) << threads << " threads, session " << i;
      EXPECT_EQ(a.executed_inferences, b.executed_inferences)
          << threads << " threads, session " << i;
      EXPECT_EQ(a.batched_inferences, b.batched_inferences)
          << threads << " threads, session " << i;
      EXPECT_EQ(a.batched_passes, b.batched_passes) << threads << " threads, session " << i;
      EXPECT_EQ(a.uplink_energy_j, b.uplink_energy_j) << threads << " threads, session " << i;
      EXPECT_EQ(a.analytic_compute_energy_j, b.analytic_compute_energy_j)
          << threads << " threads, session " << i;
      EXPECT_EQ(a.queued_latency_s.count(), b.queued_latency_s.count())
          << threads << " threads, session " << i;
      EXPECT_EQ(a.queued_latency_s.sum(), b.queued_latency_s.sum())
          << threads << " threads, session " << i;
      // Wall time is host-dependent, but the measured-energy contract
      // (time x power) holds on every path.
      EXPECT_GT(b.kernel_time_s, 0.0) << threads << " threads, session " << i;
    }
  }
}

TEST(HubParallel, FleetGridByteIdenticalAcrossEngineThreads) {
  core::NodeClassSpec audio;
  audio.base.name = "audio";
  audio.base.sense_power_w = 150e-6;
  audio.base.output_rate_bps = 64e3;
  audio.base.slot_weight = 2;
  audio.share = 1;
  core::NodeClassSpec bio;
  bio.base.name = "bio";
  bio.base.sense_power_w = 8e-6;
  bio.base.output_rate_bps = 5e3;
  bio.share = 3;

  core::FleetAxes axes;
  axes.node_counts = {2, 3};
  axes.mixes = {core::NodeMix{"tiny", {audio, bio}}};
  axes.batch_windows = {0, 1};
  axes.precisions = {nn::Precision::kF32, nn::Precision::kInt8};
  axes.seeds = {7};
  axes.duration_s = 0.5;

  const core::SweepRunner serial(1);
  axes.hub_engine_threads = 1;
  const std::string reference = core::fleet_results_csv(core::Fleet(axes).run(serial));
  EXPECT_NE(reference.find('\n'), std::string::npos);

  for (const unsigned threads : {2u, 8u}) {
    axes.hub_engine_threads = threads;
    const core::Fleet fleet(axes);
    // Serial sweep: the engine-thread passthrough must not perturb a byte.
    EXPECT_EQ(reference, core::fleet_results_csv(fleet.run(serial)))
        << "engine_threads " << threads;
    // Parallel sweep: the hub degrades to serial inside the SweepRunner's
    // region (fleet parallelism wins), so the grid is still byte-identical.
    const core::SweepRunner fanned(4);
    EXPECT_EQ(reference, core::fleet_results_csv(fleet.run(fanned)))
        << "engine_threads " << threads << " under a 4-thread sweep";
  }
}

// ---- TaskPool reentrancy guard ----------------------------------------------

TEST(TaskPoolGuard, NestedParallelForThrowsAndPoolStaysUsable) {
  sim::TaskPool pool(2);
  EXPECT_FALSE(pool.in_flight());
  EXPECT_FALSE(sim::TaskPool::in_parallel_region());

  std::atomic<int> nested_throws{0};
  std::atomic<int> region_hits{0};
  pool.parallel_for(4, [&](std::size_t begin, std::size_t end) {
    if (sim::TaskPool::in_parallel_region()) region_hits.fetch_add(1);
    for (std::size_t i = begin; i < end; ++i) {
      if (i == 0) {
        // Re-entering the busy pool must throw instead of deadlocking,
        // and must not poison the outer job.
        try {
          pool.parallel_for(2, [](std::size_t, std::size_t) {});
        } catch (const std::invalid_argument&) {
          nested_throws.fetch_add(1);
        }
      }
    }
  });
  EXPECT_EQ(nested_throws.load(), 1);
  EXPECT_GT(region_hits.load(), 0);
  EXPECT_FALSE(pool.in_flight());
  EXPECT_FALSE(sim::TaskPool::in_parallel_region());

  // The guard cleared: the pool still runs full jobs afterwards.
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(16, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) covered.fetch_add(i);
  });
  EXPECT_EQ(covered.load(), 16u * 15u / 2u);
}

TEST(TaskPoolGuard, InlineSerialPathAlsoMarksTheParallelRegion) {
  // thread_count 1 runs the body inline, but the nesting probe must still
  // fire — the hub's degrade-to-serial rule keys off it.
  sim::TaskPool pool(1);
  bool inside = false;
  pool.parallel_for(1, [&](std::size_t, std::size_t) {
    inside = sim::TaskPool::in_parallel_region();
  });
  EXPECT_TRUE(inside);
  EXPECT_FALSE(sim::TaskPool::in_parallel_region());
}

// ---- zero steady-state allocations ------------------------------------------

TEST(HubParallel, PerThreadWorkspacesAllocateNothingInSteadyState) {
  // The parallel engine's contract: each worker owns a grow-only workspace,
  // so once warmed, repeated batched passes on every thread touch the heap
  // zero times. Reproduce the fan-out shape directly on a TaskPool.
  const Model ecg = make_ecg_cnn1d();
  const Tensor input = stack_batch(
      {patterned_tensor(ecg.input_shape(), 1), patterned_tensor(ecg.input_shape(), 2)});
  sim::TaskPool pool(2);
  Workspace ws[2];

  // Built once so re-running the job costs no std::function heap traffic.
  const sim::TaskPool::RangeBody body = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const ConstSpan logits = ecg.run_into(ws[i], input.data(), 2);
      ASSERT_GT(logits.size, 0);
    }
  };
  pool.parallel_for(2, body);  // warm-up: arenas grow here

  const std::uint64_t before = g_alloc_count.load();
  for (int round = 0; round < 3; ++round) pool.parallel_for(2, body);
  EXPECT_EQ(g_alloc_count.load() - before, 0u);
}

// ---- hand-computed energy attribution ---------------------------------------

TEST(HubParallel, TwoSessionGroupSplitsMeteredTimeByInferenceShare) {
  // batch_window 1000 never flushes mid-run at these rates, so the single
  // end-of-run flush folds both sessions into ONE parallel metered pass —
  // making the time-share attribution exactly checkable. Session "fine"
  // windows 80 B, "coarse" 240 B: every 240 B frame stages 3 vs 1
  // inferences, so fine's batched count and time share are exactly 3x.
  const Model ecg = make_ecg_cnn1d();
  net::NetworkConfig cfg;
  cfg.seed = 11;
  cfg.hub.batch_window = 1000;
  cfg.hub.execute_and_meter = true;
  cfg.hub.engine_threads = 2;
  net::NetworkSim net(std::make_unique<comm::WiRLink>(), cfg);
  const std::uint64_t windows[] = {80, 240};
  const char* streams[] = {"fine", "coarse"};
  for (int i = 0; i < 2; ++i) {
    net::NodeConfig n;
    n.name = streams[i];
    n.stream = streams[i];
    n.output_rate_bps = 64e3;
    n.frame_bytes = 240;
    net.add_node(n);
    net::SessionConfig s;
    s.stream = streams[i];
    s.macs_per_inference = 185'000;
    s.bytes_per_inference = windows[i];
    s.model = "ecg-cnn1d";
    s.weight_bytes = 9'000;
    s.net = &ecg;
    net.add_session(s);
  }
  net.run(0.35);

  const net::SessionStats& fine = net.hub().session("fine");
  const net::SessionStats& coarse = net.hub().session("coarse");
  ASSERT_GT(coarse.batched_inferences, 8u);
  // One fold each (the final flush), staging enough for >= 2 sub-batches.
  EXPECT_EQ(fine.batched_passes, 1u);
  EXPECT_EQ(coarse.batched_passes, 1u);
  ASSERT_GT(fine.batched_inferences + coarse.batched_inferences, 32u);

  // 3 fine windows per coarse window out of identical byte streams.
  EXPECT_EQ(fine.batched_inferences, 3u * coarse.batched_inferences);
  EXPECT_EQ(fine.executed_inferences, fine.batched_inferences);
  EXPECT_EQ(coarse.executed_inferences, coarse.batched_inferences);

  // Single pass: measured energy is exactly time x platform power, and the
  // time split follows the inference share bit-for-bit.
  const double power = net.hub().config().compute_power_w;
  EXPECT_EQ(fine.compute_energy_j, fine.kernel_time_s * power);
  EXPECT_EQ(coarse.compute_energy_j, coarse.kernel_time_s * power);
  EXPECT_GT(fine.kernel_time_s, coarse.kernel_time_s);
}

}  // namespace
}  // namespace iob
