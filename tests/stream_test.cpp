// Unit tests for the population-scale streaming path (docs/scaling.md):
// core::OnlineQuantile (exact-regime bit-identity with core::percentile,
// sketch-regime relative-error bound), core::StreamSink (shard rotation,
// header placement, concat == monolithic identity), Fleet::point_at lazy
// decode, and Fleet::run_streaming end-to-end determinism — shards concat to
// the canonical CSV and the folded summary equals the in-memory one at every
// thread count.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/fleet.hpp"
#include "core/stream_sink.hpp"
#include "core/sweep_runner.hpp"
#include "comm/tdma.hpp"
#include "energy/harvester.hpp"

namespace iob {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---- helpers ----------------------------------------------------------------

/// Fresh per-test scratch directory under the system temp dir.
std::filesystem::path scratch_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / ("iob_stream_test_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Shards concatenated in emission order.
std::string concat_shards(const core::StreamSink& sink) {
  std::string all;
  for (const auto& p : sink.shard_paths()) all += read_file(p);
  return all;
}

/// Deterministic 64-bit mix (splitmix64) for reproducible sample sets.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double unit_double(std::uint64_t x) {
  return static_cast<double>(mix64(x) >> 11) * 0x1.0p-53;
}

/// The same tiny two-class population the fleet tests use: cheap to run,
/// exercises shares, sessions and per-node stream naming.
core::NodeMix tiny_mix() {
  core::NodeClassSpec audio;
  audio.base.name = "audio";
  audio.base.sense_power_w = 150e-6;
  audio.base.output_rate_bps = 64e3;
  audio.base.slot_weight = 2;
  audio.share = 1;
  core::NodeClassSpec bio;
  bio.base.name = "bio";
  bio.base.sense_power_w = 8e-6;
  bio.base.output_rate_bps = 5e3;
  bio.share = 3;
  return core::NodeMix{"tiny", {audio, bio}};
}

/// 64-point grid spanning every axis the CSV serializes (two values on six
/// of them), small enough to run many times per test binary.
core::FleetAxes small_axes() {
  core::FleetAxes axes;
  axes.node_counts = {2, 3};
  comm::TdmaConfig short_slot;
  short_slot.slot_s = 600e-6;
  axes.macs = {{"slot-1ms", {}}, {"slot-600us", short_slot}};
  axes.mixes = {tiny_mix()};
  energy::HarvesterParams pv;
  pv.mean_power_w = 50e-6;
  axes.harvests = {{"none", std::nullopt}, {"pv", pv}};
  axes.buses = {core::BusKind::kWiR};
  axes.batch_windows = {0, 1};
  axes.precisions = {nn::Precision::kF32, nn::Precision::kInt8};
  axes.seeds = {7, 9};
  axes.duration_s = 0.5;
  return axes;
}

void expect_within_documented_epsilon(double estimate, double exact) {
  if (std::isinf(exact)) {
    EXPECT_TRUE(std::isinf(estimate)) << "exact quantile is +inf, estimate is " << estimate;
    return;
  }
  if (exact == 0.0) {
    EXPECT_EQ(estimate, 0.0);
    return;
  }
  EXPECT_NEAR(estimate, exact, core::OnlineQuantile::kRelativeError * exact)
      << "estimate " << estimate << " vs exact " << exact;
}

// ---- OnlineQuantile ---------------------------------------------------------

TEST(OnlineQuantile, ExactRegimeIsBitIdenticalToPercentile) {
  // Assorted small sample sets, including zeros and +inf, at several sizes
  // below the exact limit: quantile() must equal core::percentile exactly.
  for (const std::size_t n : {1u, 2u, 3u, 7u, 60u, 511u, 512u}) {
    core::OnlineQuantile oq;
    std::vector<double> samples;
    for (std::size_t i = 0; i < n; ++i) {
      double x = 1e-4 + 40.0 * unit_double(1000 * n + i);
      if (i % 11 == 3) x = 0.0;
      if (i % 17 == 5) x = kInf;
      oq.add(x);
      samples.push_back(x);
    }
    EXPECT_FALSE(oq.approximate()) << n;
    EXPECT_EQ(oq.count(), n);
    for (const double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 1.0}) {
      const double want = core::percentile(samples, q);
      const double got = oq.quantile(q);
      if (std::isinf(want)) {
        EXPECT_TRUE(std::isinf(got)) << "n=" << n << " q=" << q;
      } else {
        EXPECT_DOUBLE_EQ(got, want) << "n=" << n << " q=" << q;
      }
    }
  }
}

TEST(OnlineQuantile, SwitchesToSketchPastTheExactLimit) {
  core::OnlineQuantile oq;
  for (std::size_t i = 0; i < core::OnlineQuantile::kExactLimit; ++i) {
    oq.add(1.0 + static_cast<double>(i));
  }
  EXPECT_FALSE(oq.approximate());
  EXPECT_EQ(oq.count(), core::OnlineQuantile::kExactLimit);

  oq.add(0.5);  // one past the limit: migrate to the sketch
  EXPECT_TRUE(oq.approximate());
  EXPECT_EQ(oq.count(), core::OnlineQuantile::kExactLimit + 1);

  // Migration must not lose or duplicate samples, and the estimate must
  // still honor the documented bound.
  std::vector<double> samples;
  for (std::size_t i = 0; i < core::OnlineQuantile::kExactLimit; ++i) {
    samples.push_back(1.0 + static_cast<double>(i));
  }
  samples.push_back(0.5);
  for (const double q : {0.1, 0.5, 0.9}) {
    expect_within_documented_epsilon(oq.quantile(q), core::percentile(samples, q));
  }
}

TEST(OnlineQuantile, SketchHonorsTheDocumentedRelativeErrorBound) {
  // 20k log-uniform samples across nine decades, with exact-band zeros and
  // +inf mixed in — the shape of a fleet lifetime distribution (finite node
  // lives plus perpetual +inf nodes).
  core::OnlineQuantile oq;
  std::vector<double> samples;
  const double lo = std::log(1e-3);
  const double hi = std::log(1e6);
  for (std::size_t i = 0; i < 20000; ++i) {
    double x = std::exp(lo + (hi - lo) * unit_double(i));
    if (i % 50 == 7) x = 0.0;
    if (i % 40 == 11) x = kInf;
    oq.add(x);
    samples.push_back(x);
  }
  EXPECT_TRUE(oq.approximate());
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9}) {
    expect_within_documented_epsilon(oq.quantile(q), core::percentile(samples, q));
  }
  // 1/40 of samples are +inf: the 0.99 quantile is perpetual, and the zero /
  // +inf bands are counted exactly, so the sketch must report +inf exactly.
  EXPECT_TRUE(std::isinf(core::percentile(samples, 0.99)));
  EXPECT_TRUE(std::isinf(oq.quantile(0.99)));
  // Symmetrically, enough zeros exist that the 0.005 quantile is exactly 0.
  EXPECT_EQ(core::percentile(samples, 0.005), 0.0);
  EXPECT_EQ(oq.quantile(0.005), 0.0);
}

TEST(OnlineQuantile, RejectsInvalidSamplesAndQueries) {
  core::OnlineQuantile oq;
  EXPECT_THROW(oq.add(-1.0), std::invalid_argument);
  EXPECT_THROW(oq.add(std::numeric_limits<double>::quiet_NaN()), std::invalid_argument);
  EXPECT_THROW((void)oq.quantile(0.5), std::invalid_argument);  // empty
  oq.add(1.0);
  EXPECT_THROW((void)oq.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)oq.quantile(1.1), std::invalid_argument);
}

// ---- StreamSink -------------------------------------------------------------

TEST(StreamSink, RotatesShardsAndConcatenatesByteExact) {
  const auto dir = scratch_dir("rotate");
  core::StreamSinkConfig cfg;
  cfg.directory = dir.string();
  cfg.rows_per_shard = 4;

  std::string monolithic = "a,b\n";
  {
    core::StreamSink sink(cfg);
    sink.write_header("a,b\n");
    for (int i = 0; i < 10; ++i) {
      const std::string row = std::to_string(i) + "," + std::to_string(i * i) + "\n";
      sink.append_row(row);
      monolithic += row;
    }
    sink.finish();
    EXPECT_EQ(sink.rows(), 10u);
    EXPECT_EQ(sink.shards(), 3u);  // 4 + 4 + 2 rows
    EXPECT_EQ(sink.bytes(), monolithic.size());

    // Header lives in shard 0 only; later shards start with a data row.
    EXPECT_EQ(read_file(sink.shard_paths()[0]).substr(0, 4), "a,b\n");
    EXPECT_EQ(read_file(sink.shard_paths()[1]).substr(0, 2), "4,");
    EXPECT_EQ(concat_shards(sink), monolithic);
  }
  std::filesystem::remove_all(dir);
}

TEST(StreamSink, ExactMultipleOfShardSizeLeavesNoEmptyTrailingShard) {
  const auto dir = scratch_dir("multiple");
  core::StreamSinkConfig cfg;
  cfg.directory = dir.string();
  cfg.rows_per_shard = 4;

  core::StreamSink sink(cfg);
  for (int i = 0; i < 8; ++i) sink.append_row("x\n");
  sink.finish();
  EXPECT_EQ(sink.shards(), 2u);
  for (const auto& p : sink.shard_paths()) {
    EXPECT_EQ(std::filesystem::file_size(p), 8u);  // 4 rows x "x\n"
  }
  std::filesystem::remove_all(dir);
}

TEST(StreamSink, BinaryFormatWritesFixedWidthRecords) {
  const auto dir = scratch_dir("binary");
  core::StreamSinkConfig cfg;
  cfg.directory = dir.string();
  cfg.rows_per_shard = 4;
  cfg.format = core::StreamFormat::kBinary;

  core::StreamSink sink(cfg);
  for (std::uint64_t i = 0; i < 5; ++i) {
    core::FleetStreamRecord rec;
    rec.index = i;
    rec.min_life_days = 10.0 * static_cast<double>(i);
    sink.append(&rec, sizeof(rec));
  }
  sink.finish();
  EXPECT_EQ(sink.shards(), 2u);
  EXPECT_EQ(sink.bytes(), 5 * sizeof(core::FleetStreamRecord));
  EXPECT_EQ(sink.shard_paths()[0].substr(sink.shard_paths()[0].size() - 4), ".bin");

  // Round-trip the last record (shard 1, record 0).
  const std::string raw = read_file(sink.shard_paths()[1]);
  ASSERT_EQ(raw.size(), sizeof(core::FleetStreamRecord));
  core::FleetStreamRecord back;
  std::memcpy(&back, raw.data(), sizeof(back));
  EXPECT_EQ(back.index, 4u);
  EXPECT_DOUBLE_EQ(back.min_life_days, 40.0);
  std::filesystem::remove_all(dir);
}

// ---- Fleet::point_at --------------------------------------------------------

TEST(FleetStreaming, PointAtMatchesExpandEverywhere) {
  const core::Fleet fleet(small_axes());
  const auto grid = fleet.expand();
  ASSERT_EQ(grid.size(), fleet.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto p = fleet.point_at(i);
    EXPECT_EQ(p.index, grid[i].index) << i;
    EXPECT_EQ(p.coord, grid[i].coord) << i;
    EXPECT_EQ(p.seed, grid[i].seed) << i;
    EXPECT_EQ(p.node_count, grid[i].node_count) << i;
    EXPECT_EQ(p.mac.label, grid[i].mac.label) << i;
    EXPECT_EQ(p.mix.label, grid[i].mix.label) << i;
    EXPECT_EQ(p.harvest.label, grid[i].harvest.label) << i;
    EXPECT_EQ(p.batch_window, grid[i].batch_window) << i;
    EXPECT_EQ(p.precision, grid[i].precision) << i;
    EXPECT_EQ(p.duration_s, grid[i].duration_s) << i;
  }
}

// ---- Fleet::run_streaming ---------------------------------------------------

TEST(FleetStreaming, ShardsConcatToTheCanonicalCsvWithNonDivisorBatches) {
  const core::Fleet fleet(small_axes());
  const core::SweepRunner serial(1);
  const std::string want = core::fleet_results_csv(fleet.run(serial));

  const auto dir = scratch_dir("concat");
  core::FleetStreamConfig cfg;
  cfg.batch_points = 7;  // 64 points -> batches of 7,7,...,1
  cfg.spill = core::StreamSinkConfig{};
  cfg.spill->directory = dir.string();
  cfg.spill->rows_per_shard = 10;

  const auto res = fleet.run_streaming(serial, cfg);
  EXPECT_EQ(res.points, fleet.size());
  EXPECT_EQ(res.spilled_rows, fleet.size());
  EXPECT_GE(res.spill_shards, 7u);  // 64 rows / 10 per shard

  std::string got;
  for (std::size_t s = 0; s < res.spill_shards; ++s) {
    char name[64];
    std::snprintf(name, sizeof(name), "shard-%05zu.csv", s);
    got += read_file(dir / name);
  }
  EXPECT_EQ(got, want);
  EXPECT_EQ(res.spilled_bytes, want.size());
  std::filesystem::remove_all(dir);
}

TEST(FleetStreaming, ByteIdenticalAcrossThreadCountsAndBatchSizes) {
  const core::Fleet fleet(small_axes());
  std::string reference;
  std::string reference_summary;

  for (const std::size_t threads : {1u, 2u, 8u}) {
    for (const std::size_t batch : {16u, 23u}) {
      const auto dir =
          scratch_dir("threads" + std::to_string(threads) + "_" + std::to_string(batch));
      core::FleetStreamConfig cfg;
      cfg.batch_points = batch;
      cfg.spill = core::StreamSinkConfig{};
      cfg.spill->directory = dir.string();
      cfg.spill->rows_per_shard = 25;

      const core::SweepRunner runner(threads);
      const auto res = fleet.run_streaming(runner, cfg);
      std::string csv;
      for (std::size_t s = 0; s < res.spill_shards; ++s) {
        char name[64];
        std::snprintf(name, sizeof(name), "shard-%05zu.csv", s);
        csv += read_file(dir / name);
      }
      const std::string summary = res.summary.to_string();
      if (reference.empty()) {
        reference = csv;
        reference_summary = summary;
      } else {
        EXPECT_EQ(csv, reference) << "threads=" << threads << " batch=" << batch;
        EXPECT_EQ(summary, reference_summary) << "threads=" << threads << " batch=" << batch;
      }
      std::filesystem::remove_all(dir);
    }
  }
}

TEST(FleetStreaming, StreamedSummaryEqualsInMemorySummary) {
  const core::Fleet fleet(small_axes());
  const core::SweepRunner runner(2);
  const auto in_memory = fleet.summarize(fleet.run(runner));

  core::FleetStreamConfig cfg;
  cfg.batch_points = 5;  // no spill: fold-only streaming
  const auto streamed = fleet.run_streaming(runner, cfg);
  EXPECT_EQ(streamed.spilled_rows, 0u);
  EXPECT_EQ(streamed.spill_shards, 0u);

  // The 64-point grid keeps every cell in the exact quantile regime, so the
  // streamed summary must render to the same bytes as the in-memory one.
  EXPECT_EQ(streamed.summary.total_points, in_memory.total_points);
  EXPECT_FALSE(streamed.summary.overall.life_approx);
  EXPECT_EQ(streamed.summary.to_string(), in_memory.to_string());
}

TEST(FleetStreaming, OnlineGridQuantilesStayWithinEpsilonOfExactOn2160Points) {
  // The canonical bench shape: 2,160 points, built here from cheap axes
  // (90 seeds supply the population spread). Node lifetimes overflow the
  // exact regime (> 512 samples overall), so the overall cell must flip to
  // life_approx and still sit within the documented epsilon of the exact
  // sorted-vector quantiles. 3 node counts x 2 harvests x 2 batch windows
  // x 2 precisions x 90 seeds = 2,160.
  core::FleetAxes axes;
  axes.node_counts = {2, 3, 4};
  axes.macs = {{"slot-1ms", {}}};
  axes.mixes = {tiny_mix()};
  energy::HarvesterParams pv;
  pv.mean_power_w = 50e-6;
  axes.harvests = {{"none", std::nullopt}, {"pv", pv}};
  axes.batch_windows = {0, 1};
  axes.precisions = {nn::Precision::kF32, nn::Precision::kInt8};
  axes.seeds.clear();
  for (std::uint64_t s = 0; s < 90; ++s) axes.seeds.push_back(100 + s);
  axes.duration_s = 0.1;
  const core::Fleet fleet(axes);
  ASSERT_EQ(fleet.size(), 2160u);

  const core::SweepRunner runner(2);
  const auto results = fleet.run(runner);
  const auto summary = fleet.summarize(results);

  std::vector<double> lifetimes;
  for (const auto& r : results) {
    for (const auto& node : r.report.nodes) lifetimes.push_back(node.projected_life_days);
  }
  ASSERT_GT(lifetimes.size(), core::OnlineQuantile::kExactLimit);
  EXPECT_TRUE(summary.overall.life_approx);

  expect_within_documented_epsilon(summary.overall.life_p10_days,
                                   core::percentile(lifetimes, 0.10));
  expect_within_documented_epsilon(summary.overall.life_p50_days,
                                   core::percentile(lifetimes, 0.50));
  expect_within_documented_epsilon(summary.overall.life_p90_days,
                                   core::percentile(lifetimes, 0.90));

  // The rendered table marks sketch-backed cells and explains the marker.
  const std::string table = summary.to_string();
  EXPECT_NE(table.find('~'), std::string::npos);
  EXPECT_NE(table.find("online-quantile estimate"), std::string::npos);
}

}  // namespace
}  // namespace iob
