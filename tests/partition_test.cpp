// Unit tests for src/partition: split-point evaluation against
// hand-computed costs, optimizer-vs-brute-force equivalence, the
// BLE-vs-Wi-R offload crossover, and the ISA mode chooser.

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "comm/ble_link.hpp"
#include "comm/wir_link.hpp"
#include "common/units.hpp"
#include "nn/layers.hpp"
#include "nn/model.hpp"
#include "nn/model_zoo.hpp"
#include "nn/quantize.hpp"
#include "partition/cost_model.hpp"
#include "partition/isa_chooser.hpp"
#include "partition/partitioner.hpp"

namespace iob::partition {
namespace {

using namespace iob::units;

/// A tiny 3-layer model with easily hand-checked MACs and sizes.
nn::Model tiny_model() {
  nn::Model m("tiny", nn::Shape{16});
  m.add(std::make_unique<nn::FullyConnected>(16, 8, std::vector<float>(128, 0.1f),
                                             std::vector<float>(8, 0.0f)));
  m.add(std::make_unique<nn::FullyConnected>(8, 4, std::vector<float>(32, 0.1f),
                                             std::vector<float>(4, 0.0f)));
  m.add(std::make_unique<nn::FullyConnected>(4, 2, std::vector<float>(8, 0.1f),
                                             std::vector<float>(2, 0.0f)));
  return m;
}

CostModel simple_cost() {
  CostModel cm;
  cm.leaf = {"leaf", 20e-12, 50e6};
  cm.hub = {"hub", 5e-12, 2e9};
  cm.cloud = {"cloud", 1e-12, 100e9};
  cm.leaf_hub = {"bus", 1e6, 100e-12, 40e-12, 1e-4};
  cm.hub_cloud = {"uplink", 20e6, 30e-9, 30e-9, 20e-3};
  cm.transport = nn::Precision::kInt8;
  return cm;
}

TEST(Partitioner, AllOnLeafHandComputed) {
  const nn::Model m = tiny_model();
  const Partitioner part(m, simple_cost());
  const PartitionPlan plan = part.all_on_leaf();
  // 128 + 32 + 8 = 168 MACs at 20 pJ.
  EXPECT_NEAR(plan.leaf_compute_j, 168.0 * 20e-12, 1e-18);
  EXPECT_DOUBLE_EQ(plan.leaf_tx_j, 0.0);
  EXPECT_DOUBLE_EQ(plan.hub_compute_j, 0.0);
  EXPECT_EQ(plan.bytes_leaf_to_hub, 0);
}

TEST(Partitioner, FullOffloadHandComputed) {
  const nn::Model m = tiny_model();
  const Partitioner part(m, simple_cost());
  const PartitionPlan plan = part.full_offload();
  EXPECT_DOUBLE_EQ(plan.leaf_compute_j, 0.0);
  // Ships the 16-element int8 input in the wire format (8-byte quant-params
  // header + 1 B/elem): 24 bytes = 192 bits at 100 pJ/b.
  EXPECT_EQ(plan.bytes_leaf_to_hub, 16 + nn::kActivationHeaderBytes);
  EXPECT_NEAR(plan.leaf_tx_j, 192.0 * 100e-12, 1e-18);
  EXPECT_NEAR(plan.hub_compute_j, 168.0 * 5e-12, 1e-18);
  EXPECT_NEAR(plan.hub_rx_j, 192.0 * 40e-12, 1e-18);
}

TEST(Partitioner, MidSplitShipsActivation) {
  const nn::Model m = tiny_model();
  const Partitioner part(m, simple_cost());
  const PartitionPlan plan = part.evaluate(1, 3);
  // Layer 0 on leaf (128 MACs), ships its 8-element output (+ wire header).
  EXPECT_NEAR(plan.leaf_compute_j, 128.0 * 20e-12, 1e-18);
  EXPECT_EQ(plan.bytes_leaf_to_hub, 8 + nn::kActivationHeaderBytes);
  EXPECT_NEAR(plan.hub_compute_j, 40.0 * 5e-12, 1e-18);
  EXPECT_EQ(plan.bytes_hub_to_cloud, 0);
}

TEST(Partitioner, CloudLegAddsUplinkCosts) {
  const nn::Model m = tiny_model();
  const Partitioner part(m, simple_cost());
  const PartitionPlan plan = part.evaluate(1, 2);
  // Layer-1 output, int8 wire format (header + 4 elements).
  EXPECT_EQ(plan.bytes_hub_to_cloud, 4 + nn::kActivationHeaderBytes);
  EXPECT_GT(plan.hub_tx_j, 0.0);
  EXPECT_NEAR(plan.cloud_compute_j, 8.0 * 1e-12, 1e-18);
  EXPECT_GT(plan.latency_s, 20e-3);  // uplink fixed latency dominates
}

TEST(Partitioner, LatencyAccountsComputeAndTransfer) {
  const nn::Model m = tiny_model();
  CostModel cm = simple_cost();
  cm.hub_cloud.fixed_latency_s = 0.0;
  cm.leaf_hub.fixed_latency_s = 0.0;
  const Partitioner part(m, cm);
  const PartitionPlan plan = part.evaluate(3, 3);
  EXPECT_NEAR(plan.latency_s, 168.0 / 50e6, 1e-12);
  const PartitionPlan offload = part.evaluate(0, 3);
  // The shipped input is the int8 wire format (8-byte header + 16 elements):
  // 192 bits over the 1 Mb/s bus, then 168 MACs on the hub.
  EXPECT_NEAR(offload.latency_s, 192.0 / 1e6 + 168.0 / 2e9, 1e-9);
}

TEST(Partitioner, OptimizerMatchesBruteForce) {
  const nn::Model m = nn::make_ecg_cnn1d();
  const Partitioner part(m, simple_cost());
  for (const auto obj : {Objective::kLeafEnergy, Objective::kTotalEnergy, Objective::kLatency}) {
    const PartitionPlan best = part.optimize(obj);
    // Independent brute force.
    double best_score = std::numeric_limits<double>::infinity();
    for (std::size_t s1 = 0; s1 <= m.layer_count(); ++s1) {
      for (std::size_t s2 = s1; s2 <= m.layer_count(); ++s2) {
        const PartitionPlan p = part.evaluate(s1, s2);
        const double score = obj == Objective::kLeafEnergy    ? p.leaf_energy_j()
                             : obj == Objective::kTotalEnergy ? p.total_energy_j()
                                                              : p.latency_s;
        best_score = std::min(best_score, score);
      }
    }
    const double got = obj == Objective::kLeafEnergy    ? best.leaf_energy_j()
                       : obj == Objective::kTotalEnergy ? best.total_energy_j()
                                                        : best.latency_s;
    EXPECT_NEAR(got, best_score, best_score * 1e-12);
  }
}

TEST(Partitioner, DeadlineForcesFasterPlan) {
  const nn::Model m = nn::make_kws_dscnn();
  CostModel cm = simple_cost();
  cm.leaf.macs_per_s = 5e6;  // slow leaf: local-only takes ~0.5 s
  const Partitioner part(m, cm);
  const PartitionPlan lax = part.optimize(Objective::kLeafEnergy, 10.0);
  const PartitionPlan tight = part.optimize(Objective::kLeafEnergy, 50e-3);
  EXPECT_TRUE(lax.feasible);
  EXPECT_TRUE(tight.feasible);
  EXPECT_LE(tight.latency_s, 50e-3);
  // The tight deadline can only cost more (or equal) leaf energy.
  EXPECT_GE(tight.leaf_energy_j(), lax.leaf_energy_j() - 1e-18);
}

TEST(Partitioner, ImpossibleDeadlineReportsInfeasible) {
  const nn::Model m = nn::make_kws_dscnn();
  const Partitioner part(m, simple_cost());
  const PartitionPlan plan = part.optimize(Objective::kLeafEnergy, 1e-9);
  EXPECT_FALSE(plan.feasible);
}

TEST(Partitioner, RejectsInvalidSplits) {
  const nn::Model m = tiny_model();
  const Partitioner part(m, simple_cost());
  EXPECT_THROW((void)part.evaluate(2, 1), std::invalid_argument);
  EXPECT_THROW((void)part.evaluate(0, 4), std::invalid_argument);
}

// ---- The architectural crossover (the paper's core argument) --------------------

TEST(Crossover, WiRPullsComputeToTheHub) {
  // With Wi-R-class transfer energy, full offload must beat local compute
  // on leaf energy for every reference model.
  comm::WiRLink wir;
  for (auto* make :
       {+[] { return nn::make_kws_dscnn(); }, +[] { return nn::make_ecg_cnn1d(); },
        +[] { return nn::make_vww_micronet(); }}) {
    const nn::Model m = make();
    CostModel cm = simple_cost();
    cm.leaf_hub = CostModel::leg_from_link(wir, 100.0 * kbps);
    const Partitioner part(m, cm);
    EXPECT_LT(part.full_offload().leaf_energy_j(), part.all_on_leaf().leaf_energy_j())
        << m.name();
  }
}

TEST(Crossover, BleKeepsComputeLocalForCompactModels) {
  // With BLE-class transfer energy (~15 nJ/b effective at these rates), the
  // KWS model is cheaper to run locally than to stream MFCC inputs out —
  // today's architecture, as the paper observes in Sec. I.
  comm::BleLink ble;
  const nn::Model m = nn::make_kws_dscnn();
  CostModel cm = simple_cost();
  cm.leaf_hub = CostModel::leg_from_link(ble, 10.0 * kbps);
  const Partitioner part(m, cm);
  EXPECT_GT(part.full_offload().leaf_energy_j(), part.all_on_leaf().leaf_energy_j());
}

TEST(Crossover, OptimalSplitMovesEarlierAsLinkCheapens) {
  const nn::Model m = nn::make_kws_dscnn();
  CostModel cheap = simple_cost();
  cheap.leaf_hub.sender_energy_per_bit_j = 100e-12;
  CostModel dear = simple_cost();
  dear.leaf_hub.sender_energy_per_bit_j = 15e-9;
  const auto split_cheap = Partitioner(m, cheap).optimize(Objective::kLeafEnergy).split_leaf_hub;
  const auto split_dear = Partitioner(m, dear).optimize(Objective::kLeafEnergy).split_leaf_hub;
  EXPECT_LE(split_cheap, split_dear);
}

// ---- ISA chooser ------------------------------------------------------------------

TEST(IsaChooser, PowerBreakdownAddsUp) {
  comm::WiRLink wir;
  IsaChooser chooser(wir, 20e-12, 10.0 * uW);
  const IsaMode mode{"adpcm", 64.0 * kbps, 1e6};
  const IsaEvaluation e = chooser.evaluate(mode);
  EXPECT_DOUBLE_EQ(e.sense_power_w, 10.0 * uW);
  EXPECT_NEAR(e.compute_power_w, 1e6 * 20e-12, 1e-12);
  EXPECT_GT(e.comm_power_w, 0.0);
  EXPECT_NEAR(e.total_power_w(), e.sense_power_w + e.compute_power_w + e.comm_power_w, 1e-15);
}

TEST(IsaChooser, PrefersCompressionOverRawOnWiR) {
  // Raw 256 kb/s vs ADPCM 64 kb/s at negligible compute: compression wins
  // whenever the link energy saved exceeds the codec energy.
  comm::WiRLink wir;
  IsaChooser chooser(wir, 20e-12, 300.0 * uW);
  const std::vector<IsaMode> modes = {
      {"raw", 256.0 * kbps, 0.0},
      {"adpcm 4:1", 64.0 * kbps, 0.5e6},
  };
  EXPECT_EQ(chooser.best_index(modes), 1u);
}

TEST(IsaChooser, HeavyLocalInferenceLosesOnUlpLeaf) {
  // Local VWW inference (~112 MMAC/s) at 20 pJ/MAC = 2.24 mW: worse than
  // shipping compressed video over Wi-R.
  comm::WiRLink wir;
  IsaChooser chooser(wir, 20e-12, 1.0 * mW);
  const std::vector<IsaMode> modes = {
      {"local inference", 60.0, 112e6},
      {"mjpeg + stream", 770.0 * kbps, 3e6},
  };
  EXPECT_EQ(chooser.best_index(modes), 1u);
}

TEST(IsaChooser, ZeroRateModeSkipsLink) {
  comm::WiRLink wir;
  IsaChooser chooser(wir, 20e-12, 5.0 * uW);
  const IsaEvaluation e = chooser.evaluate({"store-local", 0.0, 1000.0});
  EXPECT_DOUBLE_EQ(e.comm_power_w, 0.0);
}

}  // namespace
}  // namespace iob::partition
