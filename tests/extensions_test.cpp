// Tests for the extension feature set beyond the core reproduction:
// HBC safety limits (paper ref [19]), interference robustness (BodyWire
// -30 dB SIR, ref [20]), the sub-uW Wi-R profile (SubuWRComm, ref [21]),
// the TDMA downlink/actuation window, diurnal harvesting, and
// rate-proportional slot weights at the network level.

#include <gtest/gtest.h>

#include <cmath>

#include "comm/tdma.hpp"
#include "comm/wir_link.hpp"
#include "common/units.hpp"
#include "energy/harvester.hpp"
#include "net/network_sim.hpp"
#include "phy/modulation.hpp"
#include "phy/safety.hpp"
#include "sim/simulator.hpp"

namespace iob {
namespace {

using namespace iob::units;

// ---- HBC safety (paper ref [19]) ----------------------------------------------

TEST(Safety, OneVoltSwingIsDeeplyCompliant) {
  // Maity et al. [19]: EQS-HBC at ~1 V sits orders of magnitude below the
  // ICNIRP limits across the EQS band.
  phy::HbcSafetyModel safety;
  for (const double f : {100.0 * kHz, 1.0 * MHz, 10.0 * MHz, 30.0 * MHz}) {
    EXPECT_GT(safety.compliance_margin_db(1.0, f), 20.0) << f;
  }
}

TEST(Safety, TissueCurrentIsMicroampClass) {
  phy::HbcSafetyModel safety;
  const double i = safety.tissue_current_a(1.0, 1.0 * MHz);
  EXPECT_LT(i, 100e-6);
  EXPECT_GT(i, 0.1e-6);
}

TEST(Safety, CurrentRisesWithFrequencyFieldLimitRisesToo) {
  // Coupling impedance falls with frequency -> more current; but the ICNIRP
  // field limit also scales with f, keeping HBC compliant across the band.
  phy::HbcSafetyModel safety;
  EXPECT_GT(safety.tissue_current_a(1.0, 10e6), safety.tissue_current_a(1.0, 1e6));
  EXPECT_GT(phy::HbcSafetyModel::icnirp_field_limit_v_per_m(10e6),
            phy::HbcSafetyModel::icnirp_field_limit_v_per_m(1e6));
}

TEST(Safety, ContactCurrentLimitShape) {
  EXPECT_DOUBLE_EQ(phy::HbcSafetyModel::contact_current_limit_a(1.0 * MHz), 20e-3);
  EXPECT_NEAR(phy::HbcSafetyModel::contact_current_limit_a(50.0 * kHz), 10e-3, 1e-9);
}

TEST(Safety, MaxSafeVoltageScalesLinearly) {
  phy::HbcSafetyModel safety;
  const double vmax = safety.max_safe_tx_voltage_v(1.0 * MHz);
  EXPECT_GT(vmax, 100.0);  // huge headroom above the 1 V operating point
  // At vmax the margin is ~0 dB.
  EXPECT_NEAR(safety.compliance_margin_db(vmax, 1.0 * MHz), 0.0, 0.1);
}

TEST(Safety, RejectsBadInputs) {
  phy::HbcSafetyModel safety;
  EXPECT_THROW((void)safety.tissue_current_a(-1.0, 1e6), std::invalid_argument);
  EXPECT_THROW((void)safety.tissue_current_a(1.0, 0.0), std::invalid_argument);
  phy::SafetyParams p;
  p.electrode_area_m2 = 0.0;
  EXPECT_THROW(phy::HbcSafetyModel{p}, std::invalid_argument);
}

// ---- Interference robustness (paper ref [20]) -----------------------------------

TEST(Interference, SnirCombinesHarmonically) {
  // Equal SNR and SIR halve the effective ratio.
  EXPECT_NEAR(phy::effective_snir(100.0, 100.0), 50.0, 1e-9);
  // Strong interference dominates.
  EXPECT_NEAR(phy::effective_snir(1e6, 10.0), 10.0, 0.1);
}

TEST(Interference, RejectionRestoresLink) {
  // BodyWire [20]: OOK at -30 dB SIR is hopeless without rejection but
  // works with time-domain interference rejection (modeled as +45 dB).
  const double snr_db = 23.0;  // Wi-R operating point
  const double sir_db = -30.0;
  const double naked = phy::effective_snir_db(snr_db, sir_db);
  const double rejected = phy::effective_snir_db(snr_db, sir_db, 45.0);
  EXPECT_LT(naked, -25.0);  // interference-limited, unusable
  const double ber_naked = phy::bit_error_rate(phy::Modulation::kOok, units::from_db(naked));
  const double ber_rej = phy::bit_error_rate(phy::Modulation::kOok, units::from_db(rejected));
  EXPECT_GT(ber_naked, 0.2);
  EXPECT_LT(ber_rej, 1e-3);
}

TEST(Interference, RejectionNeverHurts) {
  for (const double rej : {0.0, 10.0, 30.0, 60.0}) {
    EXPECT_GE(phy::effective_snir_db(20.0, 0.0, rej), phy::effective_snir_db(20.0, 0.0, 0.0));
  }
  EXPECT_THROW(phy::effective_snir(10.0, 10.0, -1.0), std::invalid_argument);
}

// ---- Sub-uW Wi-R profile (paper ref [21]) -----------------------------------------

TEST(UlpWiR, SubMicrowattAuthenticationNode) {
  // SubuWRComm [21]: 415 nW at 1-10 kb/s. The ULP profile streaming
  // 10 kb/s must land in the sub-uW class.
  comm::WiRLink ulp(comm::WiRLink::ulp_profile());
  const double p10k = ulp.stream_tx_power_w(10.0 * kbps);
  EXPECT_LT(p10k, 1.0 * uW);
  EXPECT_GT(p10k, 0.1 * uW);
  // And ~equal-or-better energy/bit than the full-rate profile.
  comm::WiRLink full;
  EXPECT_LE(ulp.effective_energy_per_app_bit_j(10.0 * kbps),
            full.effective_energy_per_app_bit_j(10.0 * kbps));
}

TEST(UlpWiR, LinkStillClosesAtLowSwing) {
  comm::WiRLink ulp(comm::WiRLink::ulp_profile());
  EXPECT_GT(ulp.computed_snr_db(), 15.0);
  EXPECT_LT(ulp.frame_error_rate(32), 1e-9);
}

// ---- TDMA downlink (actuation path) -------------------------------------------------

TEST(Downlink, DeliversActuationFrames) {
  sim::Simulator sim(21);
  comm::WiRLink wir;
  comm::TdmaConfig cfg;
  cfg.downlink_slot_s = 1e-3;
  comm::TdmaBus bus(sim, wir, cfg);
  const comm::NodeId ear = bus.add_node("earbud");

  int received = 0;
  bus.set_downlink_handler([&](const comm::Frame& f, sim::Time) {
    EXPECT_EQ(f.dst, ear);
    EXPECT_EQ(f.src, comm::kHubId);
    ++received;
  });
  for (int i = 0; i < 10; ++i) {
    comm::Frame f;
    f.payload_bytes = 200;
    f.created_s = 0.0;
    EXPECT_TRUE(bus.enqueue_downlink(ear, f));
  }
  bus.start();
  sim.run_until(0.1);
  bus.stop();
  EXPECT_EQ(received, 10);
  EXPECT_EQ(bus.stats().nodes[0].downlink_frames, 10u);
  EXPECT_EQ(bus.stats().nodes[0].downlink_bytes, 2000u);
}

TEST(Downlink, EnergyChargedToHubTxAndNodeRx) {
  sim::Simulator sim(22);
  comm::WiRLink wir;
  comm::TdmaConfig cfg;
  cfg.downlink_slot_s = 1e-3;
  comm::TdmaBus bus(sim, wir, cfg);
  const comm::NodeId a = bus.add_node("a");

  const double hub_tx_before = 0.0;
  comm::Frame f;
  f.payload_bytes = 100;
  bus.enqueue_downlink(a, f);
  bus.start();
  sim.run_until(0.01);
  bus.stop();
  const auto& st = bus.stats();
  // Hub TX includes beacons + the downlink frame; node RX includes beacons
  // + the downlink frame. Both strictly exceed the beacon-only baseline of
  // an uplink-only network with identical timing.
  EXPECT_GT(st.hub_tx_energy_j, hub_tx_before);
  EXPECT_GT(st.nodes[0].rx_energy_j, 0.0);
  EXPECT_EQ(st.nodes[0].downlink_frames, 1u);
}

TEST(Downlink, WindowExtendsSuperframe) {
  sim::Simulator sim(23);
  comm::WiRLink wir;
  comm::TdmaConfig plain;
  comm::TdmaConfig with_dl = plain;
  with_dl.downlink_slot_s = 2e-3;
  comm::TdmaBus bus_plain(sim, wir, plain);
  comm::TdmaBus bus_dl(sim, wir, with_dl);
  bus_plain.add_node("a");
  bus_dl.add_node("a");
  EXPECT_NEAR(bus_dl.superframe_duration_s() - bus_plain.superframe_duration_s(), 2e-3, 1e-12);
}

TEST(Downlink, RejectsMisuse) {
  sim::Simulator sim(24);
  comm::WiRLink wir;
  comm::TdmaBus no_dl(sim, wir, comm::TdmaConfig{});
  const comm::NodeId a = no_dl.add_node("a");
  comm::Frame f;
  f.payload_bytes = 10;
  EXPECT_THROW(no_dl.enqueue_downlink(a, f), std::invalid_argument);

  comm::TdmaConfig cfg;
  cfg.downlink_slot_s = 1e-4;
  comm::TdmaBus small(sim, wir, cfg);
  const comm::NodeId b = small.add_node("b");
  comm::Frame big;
  big.payload_bytes = 4000;  // exceeds the 100 us window
  EXPECT_THROW(small.enqueue_downlink(b, big), std::invalid_argument);
}

TEST(Downlink, FullDuplexSessionOverOneBus) {
  // Uplink sensing + downlink actuation share the same superframe.
  sim::Simulator sim(25);
  comm::WiRLink wir;
  comm::TdmaConfig cfg;
  cfg.downlink_slot_s = 1e-3;
  comm::TdmaBus bus(sim, wir, cfg);
  const comm::NodeId node = bus.add_node("earbud");

  int up = 0, down = 0;
  bus.set_delivery_handler([&](const comm::Frame&, sim::Time) { ++up; });
  bus.set_downlink_handler([&](const comm::Frame&, sim::Time) { ++down; });
  for (int i = 0; i < 20; ++i) {
    comm::Frame f;
    f.payload_bytes = 120;
    bus.enqueue(node, f);
    bus.enqueue_downlink(node, f);
  }
  bus.start();
  sim.run_until(0.2);
  bus.stop();
  EXPECT_EQ(up, 20);
  EXPECT_EQ(down, 20);
}

// ---- Diurnal harvesting ----------------------------------------------------------------

TEST(Diurnal, OfficeProfileShape) {
  const auto profile = energy::office_diurnal_profile();
  ASSERT_EQ(profile.size(), 24u);
  EXPECT_DOUBLE_EQ(profile[3], 0.0);   // night
  EXPECT_DOUBLE_EQ(profile[12], 1.0);  // office hours
}

TEST(Diurnal, AverageIncludesProfileMean) {
  energy::HarvesterParams p;
  p.mean_power_w = 100.0 * uW;
  p.availability = 1.0;
  p.hourly_profile = energy::office_diurnal_profile();
  energy::Harvester h(p);
  double mean = 0.0;
  for (const double v : p.hourly_profile) mean += v;
  mean /= 24.0;
  EXPECT_NEAR(h.average_power_w(), 100.0 * uW * mean, 1e-12);
}

TEST(Diurnal, NightYieldsNothing) {
  energy::HarvesterParams p;
  p.mean_power_w = 100.0 * uW;
  p.availability = 1.0;
  p.relative_sigma = 0.0;
  p.hourly_profile = energy::office_diurnal_profile();
  energy::Harvester h(p);
  sim::Rng rng(1);
  // 03:00: zero; 12:00: full.
  EXPECT_DOUBLE_EQ(h.sample_power_w(rng, 3.0 * 3600.0), 0.0);
  EXPECT_NEAR(h.sample_power_w(rng, 12.0 * 3600.0), 100.0 * uW, 1e-12);
  // Wraps modulo 24 h.
  EXPECT_DOUBLE_EQ(h.profile_at(27.0 * 3600.0), h.profile_at(3.0 * 3600.0));
}

TEST(Diurnal, RejectsMalformedProfiles) {
  energy::HarvesterParams p;
  p.hourly_profile = {0.5, 0.5};  // wrong length
  EXPECT_THROW(energy::Harvester{p}, std::invalid_argument);
  p.hourly_profile.assign(24, 1.5);  // out of range
  EXPECT_THROW(energy::Harvester{p}, std::invalid_argument);
}

// ---- Rate-proportional slots at the network level -----------------------------------

TEST(SlotWeights, HeavyStreamGetsProportionalService) {
  comm::WiRLink wir;
  net::NetworkSim net(wir, net::NetworkConfig{26, {}, {}, false});

  net::NodeConfig audio;
  audio.name = "audio";
  audio.stream = "audio";
  audio.sense_power_w = 150.0 * uW;
  audio.output_rate_bps = 128.0 * kbps;
  audio.frame_bytes = 240;
  audio.slot_weight = 3;
  net.add_node(audio);

  net::NodeConfig ecg;
  ecg.name = "ecg";
  ecg.stream = "ecg";
  ecg.sense_power_w = 8.0 * uW;
  ecg.output_rate_bps = 6.0 * kbps;
  net.add_node(ecg);

  const net::NetworkReport rep = net.run(20.0);
  // Both streams fully served, no drops, despite the 20x rate asymmetry.
  for (const auto& n : rep.nodes) {
    EXPECT_EQ(n.frames_dropped, 0u) << n.name;
    EXPECT_LT(n.mean_latency_s, 0.05) << n.name;
  }
  const double offered = 128e3 + 6e3;
  EXPECT_NEAR(rep.aggregate_goodput_bps, offered, offered * 0.1);
}

}  // namespace
}  // namespace iob
