// Unit + DES tests for src/comm: link math, Wi-R vs BLE figures of merit
// (the paper's >10x rate / <100x energy claims live here as assertions),
// ARQ expectations, and the TDMA/polling MACs.

#include <gtest/gtest.h>

#include <cmath>

#include "comm/arq.hpp"
#include "comm/ble_link.hpp"
#include "comm/frame.hpp"
#include "comm/nfmi_link.hpp"
#include "comm/polling.hpp"
#include "comm/tdma.hpp"
#include "comm/wir_link.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace iob::comm {
namespace {

using namespace iob::units;

// ---- Link base math -----------------------------------------------------------

TEST(Link, OnAirBitsIncludeOverhead) {
  WiRLink link;
  EXPECT_EQ(link.on_air_bits(100), 800u + link.spec().frame_overhead_bits);
}

TEST(Link, FrameTimeMatchesRate) {
  WiRLink link;
  const double t = link.frame_time_s(240);
  const double expected = static_cast<double>(link.on_air_bits(240)) / 4e6 +
                          link.spec().per_frame_turnaround_s;
  EXPECT_NEAR(t, expected, 1e-12);
}

TEST(Link, AppThroughputBelowPhyRate) {
  WiRLink wir;
  BleLink ble;
  EXPECT_LT(wir.app_throughput_bps(240), wir.spec().phy_rate_bps);
  EXPECT_LT(ble.app_throughput_bps(240), ble.spec().phy_rate_bps);
}

TEST(Link, LargerPayloadsAreMoreEfficient) {
  WiRLink link;
  EXPECT_GT(link.app_throughput_bps(240), link.app_throughput_bps(20));
}

// ---- The paper's headline link claims -------------------------------------------

TEST(PaperClaims, WiRFasterThan10xBle) {
  // Sec. I: "> 10X faster than BLE" (application throughput).
  WiRLink wir;
  BleLink ble;
  EXPECT_GE(wir.app_throughput_bps(240) / ble.app_throughput_bps(240), 7.0);
  // PHY rate ratio alone is 4x; the app-level gap comes from BLE protocol
  // overheads. Demand at least 7x here and validate the >10x claim at the
  // effective-energy level below.
}

TEST(PaperClaims, WiREnergyPerBit100xBelowBle) {
  // Sec. I: "< 100X lower [energy] than BLE". Raw per-bit energies:
  // 100 pJ/b vs ~15 nJ/b -> 150x.
  WiRLink wir;
  BleLink ble;
  const double wir_ebit = wir.spec().tx_energy_per_bit_j + wir.spec().rx_energy_per_bit_j;
  const double ble_ebit = ble.spec().tx_energy_per_bit_j + ble.spec().rx_energy_per_bit_j;
  EXPECT_GE(ble_ebit / wir_ebit, 100.0);
}

TEST(PaperClaims, EffectiveEnergyGapAtUlpRates) {
  // At ULP offered loads the BLE connection-event machinery makes the gap
  // even larger than the raw per-bit ratio.
  WiRLink wir;
  BleLink ble;
  const double rate = 10.0 * kbps;
  const double gap = ble.effective_energy_per_app_bit_j(rate) /
                     wir.effective_energy_per_app_bit_j(rate);
  EXPECT_GE(gap, 100.0);
}

TEST(PaperClaims, WiRStreamPowerIs100uWClass) {
  // Fig. 1 right: Wi-R ~100 uW. Full-rate streaming at 100 pJ/b * 4 Mb/s
  // = 400 uW; at ~1 Mb/s ISA-reduced streams it is ~100 uW.
  WiRLink wir;
  const double p = wir.stream_tx_power_w(1.0 * Mbps);
  EXPECT_LT(p, 200.0 * uW);
  EXPECT_GT(p, 20.0 * uW);
}

TEST(PaperClaims, BleStreamPowerIsMilliwattClass) {
  // Sec. III-B: RF-based communication costs 1-10 mW.
  BleLink ble;
  const double p = ble.stream_tx_power_w(256.0 * kbps);
  EXPECT_GT(p, 1.0 * mW);
  EXPECT_LT(p, 20.0 * mW);
}

TEST(PaperClaims, WiRLinkBudgetClosesWithMargin) {
  // The biophysical channel must support OOK at 4 Mb/s with real margin.
  WiRLink wir;
  EXPECT_GT(wir.computed_snr_db(), 15.0);
  EXPECT_LT(wir.frame_error_rate(240), 1e-6);
}

TEST(PaperClaims, NfmiSitsBetween) {
  NfmiLink nfmi;
  WiRLink wir;
  BleLink ble;
  const double e_nfmi = nfmi.spec().tx_energy_per_bit_j;
  EXPECT_GT(e_nfmi, wir.spec().tx_energy_per_bit_j);
  EXPECT_LT(nfmi.spec().phy_rate_bps, wir.spec().phy_rate_bps);
  EXPECT_LT(e_nfmi, ble.spec().tx_energy_per_bit_j);
}

// ---- Stream power model ---------------------------------------------------------

TEST(Link, StreamPowerSaturatesAtCapacity) {
  WiRLink link;
  const double cap = link.app_throughput_bps(240);
  EXPECT_NEAR(link.stream_tx_power_w(cap * 2.0, 240), link.stream_tx_power_w(cap, 240),
              1e-6);
}

TEST(Link, StreamPowerMonotoneInOfferedLoad) {
  WiRLink link;
  double prev = 0.0;
  for (double r = 100.0; r < 4e6; r *= 3.0) {
    const double p = link.stream_tx_power_w(r);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Ble, ConnectionEventFloorAtIdleLoads) {
  BleLink ble;
  // Even at 10 b/s the radio pays wake+keep-alive every interval: ~mW.
  EXPECT_GT(ble.stream_tx_power_w(10.0), 0.5 * mW);
}

// ---- ARQ ------------------------------------------------------------------------

class LossyLinkFixture : public ::testing::Test {
 protected:
  // A link with an intentionally bad SNR so FER is visible.
  static LinkSpec lossy_spec(double snr_db) {
    LinkSpec s;
    s.name = "lossy";
    s.phy_rate_bps = 1e6;
    s.tx_energy_per_bit_j = 1e-9;
    s.rx_energy_per_bit_j = 1e-9;
    s.frame_overhead_bits = 80;
    s.modulation = phy::Modulation::kGfsk;
    s.link_snr_db = snr_db;
    return s;
  }
};

TEST_F(LossyLinkFixture, ExpectedAttemptsMatchGeometricSeries) {
  Link link(lossy_spec(13.0));
  const double fer = link.frame_error_rate(100);
  ASSERT_GT(fer, 0.01);
  ASSERT_LT(fer, 0.9);
  Arq arq(link, ArqPolicy{16, 1e-3});
  // sum_{k=0}^{15} fer^k
  double expected = 0.0, p = 1.0;
  for (int k = 0; k < 16; ++k) {
    expected += p;
    p *= fer;
  }
  EXPECT_NEAR(arq.expected_attempts(100), expected, 1e-9);
}

TEST_F(LossyLinkFixture, DeliveryProbabilityImprovesWithAttempts) {
  Link link(lossy_spec(12.0));
  Arq arq1(link, ArqPolicy{1, 0.0});
  Arq arq8(link, ArqPolicy{8, 0.0});
  EXPECT_GT(arq8.delivery_probability(100), arq1.delivery_probability(100));
  EXPECT_GT(arq8.delivery_probability(100), 0.99);
}

TEST_F(LossyLinkFixture, SampledAttemptsMatchExpectation) {
  Link link(lossy_spec(13.0));
  Arq arq(link, ArqPolicy{32, 0.0});
  sim::Rng rng(3);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += arq.sample_attempts(rng, 100);
  EXPECT_NEAR(total / n, arq.expected_attempts(100), 0.05);
}

TEST_F(LossyLinkFixture, EnergyScalesWithAttempts) {
  Link link(lossy_spec(13.0));
  Arq arq(link, ArqPolicy{16, 1e-3});
  EXPECT_NEAR(arq.expected_tx_energy_j(100),
              arq.expected_attempts(100) * link.frame_tx_energy_j(100), 1e-15);
  EXPECT_GT(arq.expected_latency_s(100), link.frame_time_s(100));
}

// ---- TDMA MAC (DES) ----------------------------------------------------------------

TEST(Tdma, DeliversAllTrafficUnderLoad) {
  sim::Simulator sim(1);
  WiRLink link;
  TdmaBus bus(sim, link, TdmaConfig{});
  const NodeId a = bus.add_node("a");
  const NodeId b = bus.add_node("b");

  int delivered = 0;
  bus.set_delivery_handler([&](const Frame&, sim::Time) { ++delivered; });

  for (int i = 0; i < 50; ++i) {
    Frame f;
    f.payload_bytes = 100;
    f.created_s = 0.0;
    bus.enqueue(a, f);
    bus.enqueue(b, f);
  }
  bus.start();
  sim.run_until(1.0);
  bus.stop();
  EXPECT_EQ(delivered, 100);
  EXPECT_EQ(bus.stats().nodes[0].frames_delivered, 50u);
  EXPECT_EQ(bus.stats().nodes[1].frames_delivered, 50u);
}

TEST(Tdma, ConservationDeliveredBytesMatchHubIngest) {
  sim::Simulator sim(2);
  WiRLink link;
  TdmaBus bus(sim, link, TdmaConfig{});
  const NodeId a = bus.add_node("a");

  std::uint64_t hub_bytes = 0;
  bus.set_delivery_handler([&](const Frame& f, sim::Time) { hub_bytes += f.payload_bytes; });
  for (int i = 0; i < 20; ++i) {
    Frame f;
    f.payload_bytes = 240;
    bus.enqueue(a, f);
  }
  bus.start();
  sim.run_until(1.0);
  EXPECT_EQ(hub_bytes, bus.stats().total_bytes_delivered());
  EXPECT_EQ(hub_bytes, 20u * 240u);
}

TEST(Tdma, WeightedSlotsGiveProportionalThroughput) {
  sim::Simulator sim(3);
  WiRLink link;
  TdmaBus bus(sim, link, TdmaConfig{});
  const NodeId heavy = bus.add_node("heavy", 3);
  const NodeId light = bus.add_node("light", 1);

  // Saturate both queues.
  for (int i = 0; i < 4000; ++i) {
    Frame f;
    f.payload_bytes = 240;
    bus.enqueue(heavy, f);
    bus.enqueue(light, f);
  }
  bus.start();
  sim.run_until(0.5);
  bus.stop();
  const auto& st = bus.stats();
  const double ratio = static_cast<double>(st.nodes[heavy - 1].bytes_delivered) /
                       static_cast<double>(st.nodes[light - 1].bytes_delivered);
  EXPECT_NEAR(ratio, 3.0, 0.3);
}

TEST(Tdma, LatencyBoundedByQueueAndSuperframe) {
  sim::Simulator sim(4);
  WiRLink link;
  TdmaBus bus(sim, link, TdmaConfig{});
  const NodeId a = bus.add_node("a");
  Frame f;
  f.payload_bytes = 100;
  f.created_s = 0.0;
  bus.enqueue(a, f);
  bus.start();
  sim.run_until(0.1);
  const auto& st = bus.stats().nodes[0];
  ASSERT_EQ(st.frames_delivered, 1u);
  EXPECT_LE(st.latency_s.max(), bus.superframe_duration_s());
}

TEST(Tdma, EnergyAccountingPositiveBothSides) {
  sim::Simulator sim(5);
  WiRLink link;
  TdmaBus bus(sim, link, TdmaConfig{});
  const NodeId a = bus.add_node("a");
  for (int i = 0; i < 10; ++i) {
    Frame f;
    f.payload_bytes = 240;
    bus.enqueue(a, f);
  }
  bus.start();
  sim.run_until(0.5);
  const auto& st = bus.stats();
  EXPECT_GT(st.nodes[0].tx_energy_j, 0.0);
  EXPECT_GT(st.nodes[0].rx_energy_j, 0.0);  // beacon listening
  EXPECT_GT(st.hub_rx_energy_j, 0.0);
  EXPECT_GT(st.hub_tx_energy_j, 0.0);  // beacons
  // Node TX energy matches per-frame accounting.
  EXPECT_NEAR(st.nodes[0].tx_energy_j, 10.0 * link.frame_tx_energy_j(240), 1e-12);
}

TEST(Tdma, QueueOverflowCounted) {
  sim::Simulator sim(6);
  WiRLink link;
  TdmaConfig cfg;
  cfg.max_queue_frames = 5;
  TdmaBus bus(sim, link, cfg);
  const NodeId a = bus.add_node("a");
  Frame f;
  f.payload_bytes = 100;
  for (int i = 0; i < 10; ++i) bus.enqueue(a, f);
  EXPECT_EQ(bus.stats().nodes[0].queue_overflows, 5u);
  EXPECT_EQ(bus.queue_depth(a), 5u);
}

TEST(Tdma, SlotMustFitFrame) {
  sim::Simulator sim(7);
  WiRLink link;
  TdmaConfig cfg;
  cfg.slot_s = 1e-7;  // smaller than any frame airtime
  EXPECT_THROW(TdmaBus(sim, link, cfg), std::invalid_argument);
}

TEST(Tdma, OversizeFrameRejectedEagerly) {
  // A frame larger than a slot could never transmit; enqueue must fail fast
  // rather than park it forever.
  sim::Simulator sim(8);
  WiRLink link;
  TdmaConfig cfg;
  cfg.slot_s = 1e-3;  // ~4000 bits at 4 Mb/s
  TdmaBus bus(sim, link, cfg);
  const NodeId a = bus.add_node("a");
  Frame big;
  big.payload_bytes = 4000;  // 32 kbit >> slot
  EXPECT_THROW(bus.enqueue(a, big), std::invalid_argument);
  Frame fits;
  fits.payload_bytes = 400;
  EXPECT_TRUE(bus.enqueue(a, fits));
}

// ---- Polling MAC (DES) ---------------------------------------------------------------

TEST(Polling, DeliversQueuedTraffic) {
  sim::Simulator sim(9);
  WiRLink link;
  PollingMac mac(sim, link);
  const NodeId a = mac.add_node("a");
  int delivered = 0;
  mac.set_delivery_handler([&](const Frame&, sim::Time) { ++delivered; });
  for (int i = 0; i < 25; ++i) {
    Frame f;
    f.payload_bytes = 120;
    mac.enqueue(a, f);
  }
  mac.start();
  sim.run_until(0.5);
  mac.stop();
  EXPECT_EQ(delivered, 25);
}

TEST(Polling, IdleListeningCostsMoreThanTdma) {
  // The A2 trade: polling leaves leaf receivers on; for equal delivered
  // traffic the leaf-side energy must exceed TDMA's.
  WiRLink link;

  sim::Simulator sim_t(10);
  TdmaBus tdma(sim_t, link, TdmaConfig{});
  const NodeId ta = tdma.add_node("a");
  for (int i = 0; i < 20; ++i) {
    Frame f;
    f.payload_bytes = 200;
    tdma.enqueue(ta, f);
  }
  tdma.start();
  sim_t.run_until(1.0);

  sim::Simulator sim_p(10);
  PollingMac poll(sim_p, link);
  const NodeId pa = poll.add_node("a");
  for (int i = 0; i < 20; ++i) {
    Frame f;
    f.payload_bytes = 200;
    poll.enqueue(pa, f);
  }
  poll.start();
  sim_p.run_until(1.0);
  poll.settle_idle_energy();

  const double tdma_leaf = tdma.stats().nodes[0].tx_energy_j + tdma.stats().nodes[0].rx_energy_j;
  const double poll_leaf = poll.stats().nodes[0].tx_energy_j + poll.stats().nodes[0].rx_energy_j;
  EXPECT_EQ(tdma.stats().nodes[0].frames_delivered, 20u);
  EXPECT_EQ(poll.stats().nodes[0].frames_delivered, 20u);
  EXPECT_GT(poll_leaf, tdma_leaf);
}

TEST(Polling, RoundRobinFairness) {
  sim::Simulator sim(11);
  WiRLink link;
  PollingMac mac(sim, link);
  const NodeId a = mac.add_node("a");
  const NodeId b = mac.add_node("b");
  for (int i = 0; i < 100; ++i) {
    Frame f;
    f.payload_bytes = 100;
    mac.enqueue(a, f);
    mac.enqueue(b, f);
  }
  mac.start();
  sim.run_until(0.2);
  mac.stop();
  const auto& st = mac.stats();
  EXPECT_NEAR(static_cast<double>(st.nodes[a - 1].frames_delivered),
              static_cast<double>(st.nodes[b - 1].frames_delivered), 1.0);
}

}  // namespace
}  // namespace iob::comm
