// Unit tests for src/core: the platform power model (Fig. 1 numbers), the
// architecture comparison engine, the design-space explorer (Fig. 3 curve,
// perpetual boundary), the offload crossover, and report rendering.

#include <gtest/gtest.h>

#include <cmath>

#include "comm/ble_link.hpp"
#include "comm/wir_link.hpp"
#include "common/units.hpp"
#include "core/architecture.hpp"
#include "core/comparison.hpp"
#include "core/explorer.hpp"
#include "core/platform_power.hpp"
#include "core/report.hpp"
#include "nn/model_zoo.hpp"

namespace iob::core {
namespace {

using namespace iob::units;

class PowerModelTest : public ::testing::Test {
 protected:
  comm::BleLink ble_;
  comm::WiRLink wir_;
  PlatformPowerModel model_{ble_, wir_};
};

// ---- Fig. 1 component magnitudes -------------------------------------------------

TEST_F(PowerModelTest, ConventionalNodeMatchesFig1Left) {
  // Fig. 1 left: sensors ~100s uW, CPU ~mW, radio ~10s mW -> node total in
  // the tens-of-mW class for a heavyweight (camera/audio) node.
  const PowerBreakdown b = model_.evaluate(NodeArchitecture::kConventional,
                                           camera_node_workload());
  EXPECT_GT(b.compute_w, 1.0 * mW);    // "~mW" CPU
  EXPECT_GT(b.comm_w, 0.5 * mW);       // radio keep-alive floor alone is mW-class
  EXPECT_GT(b.node_total_w(), 10.0 * mW);
}

TEST_F(PowerModelTest, HumanInspiredNodeMatchesFig1Right) {
  // Fig. 1 right: sensors 10-50 uW, ISA ~100 uW, Wi-R ~100 uW for the
  // audio-class node.
  const PowerBreakdown b = model_.evaluate(NodeArchitecture::kHumanInspired,
                                           audio_pendant_workload());
  EXPECT_GT(b.sense_w, 10.0 * uW);
  EXPECT_LT(b.sense_w, 200.0 * uW);
  EXPECT_LT(b.compute_w, 150.0 * uW);  // ISA ~100 uW class
  EXPECT_LT(b.comm_w, 150.0 * uW);     // Wi-R ~100 uW class
  EXPECT_LT(b.node_total_w(), 500.0 * uW);
}

TEST_F(PowerModelTest, ReductionFactorIsLarge) {
  // The architectural win (Fig. 1: 10s of mW -> uW class). The factor is
  // workload-dependent: enormous where the radio/CPU dominated (ECG),
  // bounded by the sensor front-end where sensing dominates (camera).
  EXPECT_GE(model_.reduction_factor(ecg_patch_workload()), 100.0);
  EXPECT_GE(model_.reduction_factor(audio_pendant_workload()), 8.0);
  EXPECT_GE(model_.reduction_factor(camera_node_workload()), 2.5);
}

TEST_F(PowerModelTest, HubInducedCostStaysBelowLeafSavings) {
  // Offloading must be a genuine system win, not cost-shifting: the hub-side
  // added power is far below what the leaf saves.
  for (const auto& w :
       {ecg_patch_workload(), audio_pendant_workload(), camera_node_workload()}) {
    const auto conv = model_.evaluate(NodeArchitecture::kConventional, w);
    const auto hi = model_.evaluate(NodeArchitecture::kHumanInspired, w);
    const double leaf_saving = conv.node_total_w() - hi.node_total_w();
    EXPECT_LT(hi.hub_induced_w, leaf_saving) << w.name;
  }
}

TEST_F(PowerModelTest, UlpSenseFactorApplied) {
  const auto w = ecg_patch_workload();
  const auto conv = model_.evaluate(NodeArchitecture::kConventional, w);
  const auto hi = model_.evaluate(NodeArchitecture::kHumanInspired, w);
  EXPECT_NEAR(hi.sense_w, conv.sense_w * model_.silicon().ulp_sense_factor, 1e-12);
}

// ---- Comparison engine --------------------------------------------------------------

TEST_F(PowerModelTest, ComparisonRowsCarryLifeClasses) {
  ArchitectureComparison cmp(model_, energy::Battery::coin_cell_1000mah());
  const auto rows = cmp.compare_reference_suite();
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& r : rows) {
    EXPECT_GT(r.reduction_factor, 1.0);
    EXPECT_GT(r.human_inspired_life_days, r.conventional_life_days);
  }
  // ECG patch on Wi-R: perpetual (the paper's flagship outcome).
  EXPECT_EQ(rows[0].human_inspired_class, energy::LifeClass::kPerpetual);
  // Conventional camera node: day-class at best.
  EXPECT_LE(rows[2].conventional_life_days, 10.0);
}

// ---- Explorer (Fig. 3) -----------------------------------------------------------------

TEST(Explorer, LifeMonotoneDecreasingInRate) {
  DesignSpaceExplorer ex(energy::Battery::coin_cell_1000mah());
  double prev = std::numeric_limits<double>::infinity();
  for (const auto& p : ex.sweep(100.0, 10.0 * Mbps)) {
    EXPECT_LT(p.life_days, prev);
    prev = p.life_days;
  }
}

TEST(Explorer, Fig3HeadlineOperatingPoints) {
  // The three annotations of Fig. 3, as assertions:
  DesignSpaceExplorer ex(energy::Battery::coin_cell_1000mah());
  // biopotential patches (~6 kb/s): perpetual.
  EXPECT_EQ(ex.point(6.0 * kbps).life_class, energy::LifeClass::kPerpetual);
  // smart rings / fitness trackers (~40 kb/s): perpetual.
  EXPECT_EQ(ex.point(40.0 * kbps).life_class, energy::LifeClass::kPerpetual);
  // audio-class nodes at the full 4 Mb/s Wi-R rate: all-week.
  EXPECT_EQ(ex.point(4.0 * Mbps).life_class, energy::LifeClass::kAllWeek);
  // video-class nodes (~10 Mb/s): all-day/multi-day.
  const auto video = ex.point(10.0 * Mbps);
  EXPECT_TRUE(video.life_class == energy::LifeClass::kAllDay ||
              video.life_class == energy::LifeClass::kMultiDay)
      << energy::to_string(video.life_class);
}

TEST(Explorer, PerpetualBoundaryBetweenRingAndAudio) {
  DesignSpaceExplorer ex(energy::Battery::coin_cell_1000mah());
  const double boundary = ex.perpetual_boundary_bps();
  EXPECT_GT(boundary, 40.0 * kbps);   // rings still inside
  EXPECT_LT(boundary, 1.0 * Mbps);    // audio outside
  // Boundary property: just inside is perpetual, just outside is not.
  EXPECT_EQ(ex.point(boundary * 0.95).life_class, energy::LifeClass::kPerpetual);
  EXPECT_NE(ex.point(boundary * 1.05).life_class, energy::LifeClass::kPerpetual);
}

TEST(Explorer, CommPowerIsEbitTimesRate) {
  DesignSpaceExplorer ex(energy::Battery::coin_cell_1000mah());
  const auto p = ex.point(1.0 * Mbps);
  EXPECT_NEAR(p.comm_power_w, 100e-12 * 1e6, 1e-9);  // 100 uW at 1 Mb/s
}

TEST(Explorer, HarvestingCoversPerpetualClassNodes) {
  // Paper Sec. V: 10-200 uW indoor harvesting + Wi-R -> charging-free
  // biopotential/ring nodes.
  DesignSpaceExplorer ex(energy::Battery::coin_cell_1000mah());
  EXPECT_LT(ex.required_harvest_w(6.0 * kbps), 50.0 * uW);
  EXPECT_LT(ex.required_harvest_w(40.0 * kbps), 200.0 * uW);
  // But a video node cannot be harvest-covered indoors.
  EXPECT_GT(ex.required_harvest_w(10.0 * Mbps), 1.0 * mW);
}

TEST(Explorer, BleEnergyPerBitDestroysThePlateau) {
  // Same sweep with BLE-class 10 nJ/b: the perpetual region shrinks by
  // orders of magnitude — the quantitative reason Wi-R is "the missing
  // link".
  DesignSpaceExplorer wir(energy::Battery::coin_cell_1000mah(), {}, 100e-12);
  DesignSpaceExplorer ble(energy::Battery::coin_cell_1000mah(), {}, 10e-9);
  EXPECT_GT(wir.perpetual_boundary_bps() / ble.perpetual_boundary_bps(), 2.0);
  EXPECT_GT(wir.point(1.0 * Mbps).life_days, 3.0 * ble.point(1.0 * Mbps).life_days);
}

// ---- Offload crossover --------------------------------------------------------------------

TEST(Crossover, ThresholdSitsBetweenWiRAndBle) {
  // The link energy/bit at which offload stops paying must separate
  // Wi-R (100 pJ/b) from BLE (~15 nJ/b) for every reference model — i.e.
  // Wi-R enables the human-inspired architecture, BLE does not.
  partition::CostModel base;
  base.leaf_hub = {"sweep", 1e6, 0.0, 40e-12, 1e-4};
  base.hub_cloud = partition::CostModel::default_uplink();
  for (auto* make :
       {+[] { return nn::make_kws_dscnn(); }, +[] { return nn::make_ecg_cnn1d(); },
        +[] { return nn::make_vww_micronet(); }}) {
    const nn::Model m = make();
    const double cross = offload_crossover_energy_per_bit_j(m, base);
    EXPECT_GT(cross, 100e-12) << m.name();
    EXPECT_LT(cross, 15e-9) << m.name();
  }
}

// ---- Reports --------------------------------------------------------------------------------

TEST(Report, ComparisonTableRendersAllWorkloads) {
  comm::BleLink ble;
  comm::WiRLink wir;
  PlatformPowerModel model(ble, wir);
  ArchitectureComparison cmp(model, energy::Battery::coin_cell_1000mah());
  const std::string s = render_comparison(cmp.compare_reference_suite());
  EXPECT_NE(s.find("ECG patch"), std::string::npos);
  EXPECT_NE(s.find("audio pendant"), std::string::npos);
  EXPECT_NE(s.find("camera node"), std::string::npos);
  EXPECT_NE(s.find("human-inspired"), std::string::npos);
  EXPECT_NE(s.find("reduction"), std::string::npos);
}

TEST(Report, Fig3TableRendersClasses) {
  DesignSpaceExplorer ex(energy::Battery::coin_cell_1000mah());
  const std::string s = render_fig3(ex.sweep(1.0 * kbps, 10.0 * Mbps, 2));
  EXPECT_NE(s.find("perpetual"), std::string::npos);
  EXPECT_NE(s.find("data rate"), std::string::npos);
}

TEST(Architecture, WorkloadSpecsAreSane) {
  for (const auto& w :
       {ecg_patch_workload(), audio_pendant_workload(), camera_node_workload()}) {
    EXPECT_GT(w.raw_rate_bps, 0.0);
    EXPECT_GT(w.isa_output_rate_bps, 0.0);
    EXPECT_LT(w.isa_output_rate_bps, w.raw_rate_bps);  // ISA reduces traffic
    EXPECT_LT(w.result_rate_bps, w.isa_output_rate_bps);
    EXPECT_GT(w.inference_macs_per_s, w.isa_macs_per_s);  // model >> codec
  }
}

TEST(Architecture, ToStringLabels) {
  EXPECT_NE(to_string(NodeArchitecture::kConventional).find("conventional"), std::string::npos);
  EXPECT_NE(to_string(NodeArchitecture::kHumanInspired).find("human-inspired"),
            std::string::npos);
}

}  // namespace
}  // namespace iob::core
