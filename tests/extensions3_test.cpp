// Tests for the third extension wave: the cloud uplink + end-to-end query
// sessions, the adaptive ISA controller, and interference-aware Wi-R links.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "comm/tdma.hpp"
#include "comm/wir_link.hpp"
#include "common/units.hpp"
#include "energy/battery.hpp"
#include "net/uplink.hpp"
#include "partition/adaptive_isa.hpp"
#include "partition/isa_chooser.hpp"
#include "sim/simulator.hpp"

namespace iob {
namespace {

using namespace iob::units;

// ---- CloudUplink ---------------------------------------------------------------

TEST(CloudUplink, RoundTripIncludesTransferAndRtt) {
  net::UplinkParams p;
  p.rate_bps = 10e6;
  p.rtt_mean_s = 50e-3;
  p.rtt_sigma_s = 0.0;
  net::CloudUplink up(p);
  sim::Rng rng(1);
  // 10 kB + 10 kB at 10 Mb/s = 16 ms transfer + 50 ms RTT.
  EXPECT_NEAR(up.sample_round_trip_s(rng, 10000, 10000), 0.066, 1e-9);
}

TEST(CloudUplink, EnergyProportionalToBytes) {
  net::CloudUplink up;
  EXPECT_NEAR(up.exchange_energy_j(1000, 0) * 2.0, up.exchange_energy_j(2000, 0), 1e-15);
  EXPECT_DOUBLE_EQ(up.exchange_energy_j(0, 0), 0.0);
}

TEST(CloudUplink, RttNeverCollapsesToZero) {
  net::UplinkParams p;
  p.rtt_mean_s = 5e-3;
  p.rtt_sigma_s = 50e-3;  // wild spread: samples would go negative
  net::CloudUplink up(p);
  sim::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(up.sample_round_trip_s(rng, 100, 100), 1e-3);
  }
}

// ---- QuerySession (end-to-end AI-assistant round trip) ----------------------------

TEST(QuerySession, CompletesRoundTripsWithSaneLatency) {
  sim::Simulator sim(3);
  comm::WiRLink wir;
  comm::TdmaConfig mac;
  mac.downlink_slot_s = 1e-3;
  comm::TdmaBus bus(sim, wir, mac);
  const comm::NodeId pendant = bus.add_node("pendant");

  net::UplinkParams up;
  up.rtt_mean_s = 60e-3;
  up.rtt_sigma_s = 10e-3;
  net::QuerySessionConfig qs;
  qs.leaf = pendant;
  qs.query_rate_per_s = 2.0;
  net::QuerySession session(sim, bus, net::CloudUplink(up), qs);

  bus.start();
  session.start();
  sim.run_until(60.0);
  bus.stop();

  EXPECT_GT(session.queries_issued(), 60u);  // ~120 expected
  // Almost all issued queries complete (the tail may be in flight).
  EXPECT_GE(session.responses_delivered() + 3, session.queries_issued());
  // Round trip ~ cloud RTT + bus latencies: tens of ms, well under 200 ms.
  EXPECT_GT(session.round_trip_s().mean(), 0.05);
  EXPECT_LT(session.round_trip_s().mean(), 0.2);
  EXPECT_GT(session.hub_energy_j(), 0.0);
}

TEST(QuerySession, LatencyDominatedByCloudNotBodyBus) {
  // The body bus contributes ms; the cloud RTT dominates — the reason the
  // hub should host latency-critical inference (paper Sec. V).
  sim::Simulator sim(4);
  comm::WiRLink wir;
  comm::TdmaConfig mac;
  mac.downlink_slot_s = 1e-3;
  comm::TdmaBus bus(sim, wir, mac);
  const comm::NodeId leaf = bus.add_node("leaf");

  net::UplinkParams up;
  up.rtt_mean_s = 100e-3;
  up.rtt_sigma_s = 0.0;
  net::QuerySessionConfig qs;
  qs.leaf = leaf;
  qs.query_rate_per_s = 1.0;
  net::QuerySession session(sim, bus, net::CloudUplink(up), qs);
  bus.start();
  session.start();
  sim.run_until(120.0);

  ASSERT_GT(session.responses_delivered(), 50u);
  EXPECT_GT(session.round_trip_s().mean(), 0.1);   // >= the RTT
  EXPECT_LT(session.round_trip_s().mean(), 0.13);  // bus adds only ~ms
}

// ---- AdaptiveIsaController ----------------------------------------------------------

class AdaptiveIsaTest : public ::testing::Test {
 protected:
  // 100 uW sensor; mode powers ~227 / 142 / 112 / 107 uW, bracketing the
  // 1-year coin-cell glide budget (~342 uW fresh, ~137 uW for 400 mAh).
  comm::WiRLink wir_;
  partition::IsaChooser chooser_{wir_, 20e-12, 100e-6};
  partition::AdaptiveIsaConfig config_ = [] {
    partition::AdaptiveIsaConfig c;
    c.modes = {
        {"raw", 2e6, 0.0},
        {"adpcm", 500e3, 0.5e6},
        {"features", 50e3, 0.4e6},
        {"results-only", 100.0, 0.3e6},
    };
    c.mission_time_s = 365.0 * day;
    return c;
  }();
};

TEST_F(AdaptiveIsaTest, ModesMustBeOrderedByPower) {
  partition::AdaptiveIsaConfig bad = config_;
  std::swap(bad.modes[0], bad.modes[3]);  // results-only first -> increasing power
  EXPECT_THROW(partition::AdaptiveIsaController(chooser_, bad), std::invalid_argument);
}

TEST_F(AdaptiveIsaTest, StaysRichWhenBudgetAllows) {
  // Huge battery, short mission: the controller keeps the richest mode.
  partition::AdaptiveIsaConfig c = config_;
  c.mission_time_s = 1.0 * day;
  partition::AdaptiveIsaController ctrl(chooser_, c);
  energy::Battery big(5000.0, 3.7);
  EXPECT_EQ(ctrl.update(big, 0.0), 0u);
}

TEST_F(AdaptiveIsaTest, StepsDownWhenBatteryFallsBehind) {
  partition::AdaptiveIsaController ctrl(chooser_, config_);
  energy::Battery b(1000.0, 3.0);
  // Fresh battery at t=0: budget = 10800 J / 1 yr = 342 uW -> raw (167 uW
  // at our audio mode set) fits.
  EXPECT_EQ(ctrl.update(b, 0.0), 0u);
  // Drain 97% early: the glide budget collapses below every mode, so the
  // controller must fall to the most aggressive one (the sensor floor is a
  // hard bound no ISA mode can dodge).
  b.discharge(b.remaining_j() * 0.97);
  const std::size_t mode = ctrl.update(b, 30.0 * day);
  EXPECT_EQ(mode, config_.modes.size() - 1);
}

TEST_F(AdaptiveIsaTest, RecoversWithHysteresis) {
  partition::AdaptiveIsaController ctrl(chooser_, config_);
  energy::Battery b(1000.0, 3.0);
  b.discharge(b.remaining_j() * 0.97);
  ctrl.update(b, 30.0 * day);
  const std::size_t degraded = ctrl.current_mode();
  ASSERT_GT(degraded, 0u);
  // Recharge fully: budget recovers -> controller climbs back up.
  b.charge(1e9);
  EXPECT_LT(ctrl.update(b, 30.0 * day), degraded);
}

TEST_F(AdaptiveIsaTest, GlideMathExact) {
  energy::Battery b(1000.0, 3.0);  // 10800 J
  EXPECT_NEAR(partition::AdaptiveIsaController::glide_power_w(b, 0.0, 10800.0), 1.0, 1e-12);
  b.discharge(5400.0);
  EXPECT_NEAR(partition::AdaptiveIsaController::glide_power_w(b, 5400.0, 10800.0), 1.0, 1e-12);
  EXPECT_TRUE(std::isinf(
      partition::AdaptiveIsaController::glide_power_w(b, 20000.0, 10800.0)));
}

TEST_F(AdaptiveIsaTest, ClosedLoopSimulationSurvivesMission) {
  // Simulate a year in day steps: a battery too small for raw streaming
  // survives the mission because the controller sheds rate in time.
  partition::AdaptiveIsaConfig c = config_;
  c.mission_time_s = 365.0 * day;
  partition::AdaptiveIsaController ctrl(chooser_, c);
  energy::Battery b(400.0, 3.0);  // 4320 J: raw (~227 uW) would die in ~220 d
  double t = 0.0;
  std::size_t deepest_mode = 0;
  while (t < c.mission_time_s) {
    deepest_mode = std::max(deepest_mode, ctrl.update(b, t));
    b.discharge(ctrl.current_power_w() * day);
    t += day;
  }
  EXPECT_FALSE(b.depleted());
  EXPECT_GT(deepest_mode, 0u);  // had to degrade at some point
  // (near mission end the glide budget balloons and the controller is free
  // to climb back toward raw — that is correct behaviour, not a bug)
}

// ---- Interference-aware Wi-R link -----------------------------------------------------

TEST(WiRInterference, CleanBandMatchesDefault) {
  comm::WiRLink clean;
  comm::WiRLinkParams p;
  p.interference_sir_db = 300.0;
  comm::WiRLink explicit_clean(p);
  EXPECT_NEAR(clean.computed_snr_db(), explicit_clean.computed_snr_db(), 1e-9);
}

TEST(WiRInterference, BodyWireScenarioSurvivesMinus30dBSir) {
  // With time-domain rejection (45 dB), -30 dB SIR still yields a usable
  // link — the BodyWire demonstration [20] reports BER <= 1e-3 there; the
  // residual frame losses are ARQ-recoverable.
  comm::WiRLinkParams p;
  p.interference_sir_db = -30.0;
  p.interference_rejection_db = 45.0;
  comm::WiRLink link(p);
  EXPECT_GT(link.computed_snr_db(), 10.0);
  EXPECT_LT(link.bit_error_rate(), 1e-3);
  EXPECT_LT(link.frame_error_rate(240), 0.5);  // stop-and-wait still converges
}

TEST(WiRInterference, NoRejectionKillsTheLink) {
  comm::WiRLinkParams p;
  p.interference_sir_db = -30.0;
  p.interference_rejection_db = 0.0;
  comm::WiRLink link(p);
  EXPECT_LT(link.computed_snr_db(), -25.0);
  EXPECT_GT(link.frame_error_rate(240), 0.99);
}

TEST(WiRInterference, SnrDegradesMonotonicallyWithInterference) {
  double prev = 1e9;
  for (const double sir : {40.0, 20.0, 10.0, 0.0, -10.0, -30.0}) {
    comm::WiRLinkParams p;
    p.interference_sir_db = sir;
    p.interference_rejection_db = 20.0;
    comm::WiRLink link(p);
    EXPECT_LT(link.computed_snr_db(), prev);
    prev = link.computed_snr_db();
  }
}

}  // namespace
}  // namespace iob
