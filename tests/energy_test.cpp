// Unit tests for src/energy: battery, harvester, sensing-power survey,
// power rails, duty cycling, battery-life classification.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/units.hpp"
#include "energy/battery.hpp"
#include "energy/duty_cycle.hpp"
#include "energy/harvester.hpp"
#include "energy/lifetime.hpp"
#include "energy/power_rail.hpp"
#include "energy/sensing_power.hpp"
#include "sim/rng.hpp"

namespace iob::energy {
namespace {

using namespace iob::units;

// ---- Battery ----------------------------------------------------------------

TEST(Battery, CoinCellMatchesFig3Assumption) {
  const Battery b = Battery::coin_cell_1000mah();
  EXPECT_DOUBLE_EQ(b.rated_energy_j(), 10800.0);
  EXPECT_DOUBLE_EQ(b.capacity_mah(), 1000.0);
  EXPECT_DOUBLE_EQ(b.soc(), 1.0);
}

TEST(Battery, DischargeTracksSoc) {
  Battery b(100.0, 3.0);  // 1080 J
  EXPECT_DOUBLE_EQ(b.discharge(540.0), 540.0);
  EXPECT_NEAR(b.soc(), 0.5, 1e-12);
  EXPECT_FALSE(b.depleted());
}

TEST(Battery, DischargeClampsAtEmpty) {
  Battery b(1.0, 3.0);  // 10.8 J
  EXPECT_DOUBLE_EQ(b.discharge(100.0), 10.8);
  EXPECT_TRUE(b.depleted());
  EXPECT_DOUBLE_EQ(b.discharge(1.0), 0.0);
}

TEST(Battery, ChargeClampsAtFull) {
  Battery b(1.0, 3.0);
  b.discharge(5.0);
  EXPECT_DOUBLE_EQ(b.charge(100.0), 5.0);
  EXPECT_DOUBLE_EQ(b.soc(), 1.0);
}

TEST(Battery, UsableFractionReducesCapacity) {
  Battery b(100.0, 3.0, 0.8);
  EXPECT_DOUBLE_EQ(b.usable_energy_j(), 1080.0 * 0.8);
  EXPECT_DOUBLE_EQ(b.remaining_j(), 864.0);
}

TEST(Battery, TimeToEmpty) {
  Battery b(1000.0, 3.0);
  EXPECT_DOUBLE_EQ(b.time_to_empty_s(1.0), 10800.0);
  EXPECT_TRUE(std::isinf(b.time_to_empty_s(0.0)));
}

TEST(Battery, RejectsBadConstruction) {
  EXPECT_THROW(Battery(0.0, 3.0), std::invalid_argument);
  EXPECT_THROW(Battery(10.0, -1.0), std::invalid_argument);
  EXPECT_THROW(Battery(10.0, 3.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Battery(10.0, 3.0, 1.5), std::invalid_argument);
}

// ---- Harvester --------------------------------------------------------------

TEST(Harvester, AverageIsMeanTimesAvailability) {
  HarvesterParams p;
  p.mean_power_w = 100.0 * uW;
  p.availability = 0.5;
  Harvester h(p);
  EXPECT_DOUBLE_EQ(h.average_power_w(), 50.0 * uW);
}

TEST(Harvester, SamplesAreNonNegativeAndAverageOut) {
  HarvesterParams p;
  p.mean_power_w = 50.0 * uW;
  p.availability = 0.7;
  p.relative_sigma = 0.3;
  Harvester h(p);
  sim::Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double s = h.sample_power_w(rng);
    EXPECT_GE(s, 0.0);
    sum += s;
  }
  EXPECT_NEAR(sum / n, h.average_power_w(), 2.0 * uW);
}

TEST(Harvester, IndoorWindowMatchesPaper) {
  // Paper Sec. V: 10-200 uW indoors; defaults must sit inside that window.
  Harvester h;
  EXPECT_GE(h.params().mean_power_w, 10.0 * uW);
  EXPECT_LE(h.params().mean_power_w, 200.0 * uW);
}

// ---- SensingPowerModel --------------------------------------------------------

TEST(SensingPower, HitsSurveyAnchors) {
  SensingPowerModel m;
  EXPECT_NEAR(m.power_w(1.0 * kbps), 2.0 * uW, 1e-9);
  EXPECT_NEAR(m.power_w(10.0 * kbps), 10.0 * uW, 1e-8);
  EXPECT_NEAR(m.power_w(10.0 * Mbps), 80.0 * mW, 1e-5);
}

TEST(SensingPower, MonotoneIncreasing) {
  SensingPowerModel m;
  double prev = 0.0;
  for (double r = 100.0; r <= 10e6; r *= 1.5) {
    const double p = m.power_w(r);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(SensingPower, EnergyPerBitReasonable) {
  // AFE energy/bit should sit in the ~nJ class across the survey.
  SensingPowerModel m;
  EXPECT_LT(m.energy_per_bit_j(10.0 * kbps), 10.0 * nJ);
  EXPECT_GT(m.energy_per_bit_j(10.0 * kbps), 0.1 * nJ);
}

TEST(SensingPower, ExponentAboveOneTowardCameras) {
  // Sensing gets super-linear toward high-rate (camera) regimes — the
  // physics behind Fig. 3's steepening curve.
  SensingPowerModel m;
  EXPECT_GT(m.scaling_exponent(2.0 * Mbps), 1.0);
}

TEST(SensingPower, CustomAnchorsRespected) {
  SensingPowerModel m({{1e3, 1e-6}, {1e6, 1e-3}});
  EXPECT_NEAR(m.power_w(1e3), 1e-6, 1e-12);
  EXPECT_NEAR(m.power_w(1e6), 1e-3, 1e-9);
  EXPECT_THROW((void)m.power_w(0.0), std::invalid_argument);
}

// ---- PowerRailMonitor ---------------------------------------------------------

TEST(PowerRail, PerRailEnergyIntegration) {
  PowerRailMonitor mon;
  const auto sense = mon.add_rail("sense");
  const auto comm = mon.add_rail("comm");
  mon.set_power(sense, 0.0, 10e-6);
  mon.set_power(comm, 0.0, 0.0);
  mon.set_power(comm, 5.0, 100e-6);   // burst from t=5
  mon.set_power(comm, 6.0, 0.0);      // ends at t=6
  EXPECT_NEAR(mon.rail_energy_j(sense, 10.0), 100e-6, 1e-12);
  EXPECT_NEAR(mon.rail_energy_j(comm, 10.0), 100e-6, 1e-12);
  EXPECT_NEAR(mon.total_energy_j(10.0), 200e-6, 1e-12);
  EXPECT_NEAR(mon.rail_average_w(comm, 10.0), 10e-6, 1e-12);
  EXPECT_EQ(mon.rail_name(sense), "sense");
}

TEST(PowerRail, RejectsBadUsage) {
  PowerRailMonitor mon;
  const auto r = mon.add_rail("x");
  EXPECT_THROW(mon.set_power(r + 1, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(mon.set_power(r, 0.0, -1.0), std::invalid_argument);
}

// ---- Duty cycle ---------------------------------------------------------------

TEST(DutyCycle, AveragePowerBlend) {
  DutyCycleSpec s{10e-3, 1e-6, 0.0, 0.0};
  EXPECT_NEAR(average_power_w(s, 0.1, 0.0), 1e-3 + 0.9e-6, 1e-9);
  EXPECT_NEAR(average_power_w(s, 1.0, 0.0), 10e-3, 1e-12);
}

TEST(DutyCycle, WakeEnergyAmortized) {
  DutyCycleSpec s{10e-3, 0.0, 30e-6, 0.0};
  // 10 wakes/s adds 300 uW.
  EXPECT_NEAR(average_power_w(s, 0.0, 10.0), 300e-6, 1e-9);
}

TEST(DutyCycle, RequiredDutyClamps) {
  EXPECT_DOUBLE_EQ(required_duty(0.0, 1e6), 0.0);
  EXPECT_DOUBLE_EQ(required_duty(5e5, 1e6), 0.5);
  EXPECT_DOUBLE_EQ(required_duty(2e6, 1e6), 1.0);
}

TEST(DutyCycle, RadioKeepAliveDominatesAtUlpRates) {
  // The BLE pathology: at 100 b/s offered, wake overhead swamps airtime.
  DutyCycleSpec ble{15e-3, 2e-6, 30e-6, 0.0};
  const double p = radio_average_power_w(ble, 100.0, 1e6, 30e-3);
  EXPECT_GT(p, 0.9e-3);  // ~1 mW floor from connection events
}

// ---- Lifetime ----------------------------------------------------------------

TEST(Lifetime, BatteryLifeMath) {
  const Battery b = Battery::coin_cell_1000mah();  // 10.8 kJ
  EXPECT_NEAR(battery_life_days(b, 125.0 * uW), 1000.0, 1.0);
  EXPECT_TRUE(std::isinf(battery_life_s(b, 50.0 * uW, 60.0 * uW)));
}

TEST(Lifetime, ClassifyBuckets) {
  EXPECT_EQ(classify(4.0 * hour), LifeClass::kHours3to5);
  EXPECT_EQ(classify(8.0 * hour), LifeClass::kSubDay);
  EXPECT_EQ(classify(1.5 * day), LifeClass::kAllDay);
  EXPECT_EQ(classify(4.0 * day), LifeClass::kMultiDay);
  EXPECT_EQ(classify(2.0 * week), LifeClass::kAllWeek);
  EXPECT_EQ(classify(90.0 * day), LifeClass::kMultiMonth);
  EXPECT_EQ(classify(2.0 * year), LifeClass::kPerpetual);
}

TEST(Lifetime, PerpetualThresholdIsOneYear) {
  EXPECT_FALSE(is_perpetual(360.0 * day));
  EXPECT_TRUE(is_perpetual(370.0 * day));
}

TEST(Lifetime, PowerBudgetInvertsLife) {
  const Battery b = Battery::coin_cell_1000mah();
  const double budget = power_budget_w(b, year);
  EXPECT_NEAR(battery_life_s(b, budget), year, 1.0);
  // The Fig. 3 perpetual region boundary: ~342 uW for 1000 mAh @ 3 V.
  EXPECT_NEAR(budget, 342.0 * uW, 5.0 * uW);
}

TEST(Lifetime, LabelsMatchFigureVocabulary) {
  EXPECT_EQ(to_string(LifeClass::kAllWeek), "all-week");
  EXPECT_EQ(to_string(LifeClass::kPerpetual), "perpetual (>1 yr)");
  EXPECT_EQ(to_string(LifeClass::kHours3to5), "3-5 hr");
}

}  // namespace
}  // namespace iob::energy
