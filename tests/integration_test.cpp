// Full-stack integration tests: the paper's end-to-end claims exercised
// through the real pipeline — synthetic sensors -> ISA codecs -> body bus
// -> hub inference — plus cross-module consistency checks.

#include <gtest/gtest.h>

#include <cmath>

#include "comm/ble_link.hpp"
#include "comm/wir_link.hpp"
#include "common/units.hpp"
#include "core/comparison.hpp"
#include "core/explorer.hpp"
#include "core/platform_power.hpp"
#include "isa/adpcm.hpp"
#include "isa/bio_codec.hpp"
#include "isa/features.hpp"
#include "isa/metrics.hpp"
#include "isa/mjpeg.hpp"
#include "net/network_sim.hpp"
#include "nn/model_zoo.hpp"
#include "partition/partitioner.hpp"
#include "phy/leakage.hpp"
#include "workload/audio.hpp"
#include "workload/ecg.hpp"
#include "workload/video.hpp"

namespace iob {
namespace {

using namespace iob::units;

constexpr double kVideoRate = 10.0 * Mbps;

// ---- End-to-end sensing -> ISA -> transport pipelines ---------------------------

TEST(Pipeline, EcgThroughBioCodecIsLosslessAndCompressive) {
  workload::EcgGenerator gen;
  sim::Rng rng(1);
  const auto adc = gen.generate_adc(30.0, rng);
  isa::BioCodec codec(true);
  const auto encoded = codec.encode(adc);
  EXPECT_EQ(codec.decode(encoded), adc);  // lossless end to end
  const double ratio =
      static_cast<double>(adc.size() * 2) / static_cast<double>(encoded.size_bytes());
  // Noisy 16-bit ADC scaling leaves ~6-7 significant delta bits: expect a
  // solid but not dramatic lossless ratio.
  EXPECT_GT(ratio, 1.4);
}

TEST(Pipeline, AudioThroughAdpcmKeepsQuality) {
  workload::AudioGenerator gen;
  sim::Rng rng(2);
  const auto pcm = gen.generate_pcm(4.0, rng);
  EXPECT_GT(isa::AdpcmCodec::reconstruction_snr_db(pcm), 12.0);
  const auto enc = isa::AdpcmCodec::encode(pcm);
  EXPECT_NEAR(static_cast<double>(pcm.size() * 2) / static_cast<double>(enc.size_bytes()), 4.0,
              0.2);
}

TEST(Pipeline, VideoThroughMjpegMatchesWorkloadAssumption) {
  // The camera workload assumes ~12:1 MJPEG on first-person scenes; the
  // synthetic scene through the real codec must land in that decade.
  workload::VideoGenerator gen;
  sim::Rng rng(3);
  isa::MjpegCodec codec(50);
  double total_ratio = 0.0;
  const int frames = 5;
  for (int i = 0; i < frames; ++i) {
    const auto frame = gen.next_frame(rng);
    total_ratio += codec.compression_ratio(frame);
  }
  const double mean_ratio = total_ratio / frames;
  EXPECT_GT(mean_ratio, 4.0);
  EXPECT_LT(mean_ratio, 60.0);
}

TEST(Pipeline, AudioToMfccToKwsModel) {
  // Microphone samples -> MFCC spectrogram -> DS-CNN forward pass: the
  // full leaf -> hub inference path, shapes end to end.
  workload::AudioGenerator gen;
  sim::Rng rng(4);
  const auto audio = gen.generate(1.1, rng);
  isa::MelConfig cfg;
  const nn::Tensor spec = isa::mfcc_spectrogram(audio, cfg, 49);
  const nn::Model kws = nn::make_kws_dscnn();
  const nn::Tensor probs = kws.forward(spec);
  EXPECT_EQ(probs.shape(), (nn::Shape{12}));
  double sum = 0.0;
  for (std::int64_t i = 0; i < probs.size(); ++i) sum += probs[i];
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

// ---- The paper's quantitative claims, full stack ----------------------------------

TEST(PaperClaims, PerpetualOperabilityLandscape) {
  // Fig. 3's annotations via the explorer (1000 mAh, 100 pJ/b, survey).
  core::DesignSpaceExplorer ex(energy::Battery::coin_cell_1000mah());
  // Perpetual plateau extends past the ring/tracker class...
  EXPECT_TRUE(energy::is_perpetual(ex.point(energy::kSmartRing.data_rate_bps).life_days * day));
  EXPECT_TRUE(
      energy::is_perpetual(ex.point(energy::kBiopotentialPatch.data_rate_bps).life_days * day));
  // ...audio at full Wi-R rate is week-class, video day-class.
  EXPECT_GE(ex.point(4.0 * Mbps).life_days, 7.0);
  EXPECT_LT(ex.point(4.0 * Mbps).life_days, 30.0);
  EXPECT_GE(ex.point(kVideoRate).life_days, 1.0);
  EXPECT_LT(ex.point(kVideoRate).life_days, 7.0);
}

TEST(PaperClaims, TenfoldMarketChargersArgument) {
  // "removes a key bottleneck of frequent charging of multiple wearables":
  // for the ULP node classes the claim targets (biopotential + audio; a
  // camera's image sensor keeps it power-hungry under any architecture),
  // aggregate charging events drop by an order of magnitude.
  comm::BleLink ble;
  comm::WiRLink wir;
  core::PlatformPowerModel model(ble, wir);
  core::ArchitectureComparison cmp(model, energy::Battery::coin_cell_1000mah());
  double conv_charges_per_year = 0.0, hi_charges_per_year = 0.0;
  for (const auto& row :
       cmp.compare_suite({core::ecg_patch_workload(), core::audio_pendant_workload()})) {
    conv_charges_per_year += 365.25 / row.conventional_life_days;
    hi_charges_per_year += 365.25 / row.human_inspired_life_days;
  }
  EXPECT_GT(conv_charges_per_year / hi_charges_per_year, 10.0);
}

TEST(PaperClaims, SecurityBubbleVsRoomScale) {
  // Sec. I: EQS fields are "contained around a personal bubble"; RF radiates
  // "5-10 meters away". Ratio of interception ranges > 30x.
  phy::EqsLeakage eqs;
  phy::RfLeakage rf;
  EXPECT_GT(rf.interception_range_m() / eqs.interception_range_m(), 30.0);
}

TEST(PaperClaims, CommComputeEnergyGapAndWiRClosure) {
  // Sec. I: radio energy/bit >> compute energy/op; Wi-R closes the gap to
  // ~the compute scale, enabling offload.
  comm::BleLink ble;
  comm::WiRLink wir;
  const double e_op = 20e-12;  // leaf MAC
  const double ble_bit = ble.spec().tx_energy_per_bit_j + ble.spec().rx_energy_per_bit_j;
  const double wir_bit = wir.spec().tx_energy_per_bit_j + wir.spec().rx_energy_per_bit_j;
  EXPECT_GT(ble_bit / e_op, 1000.0);  // orders of magnitude (radio)
  EXPECT_LT(wir_bit / e_op, 10.0);    // Wi-R: same decade as compute
}

TEST(PaperClaims, WearableBrainNetworkSupportsBodyScaleSuite) {
  // Sec. V scenario: a full-body suite of heterogeneous ULP leaves on one
  // Wi-R bus, all streams delivered with low latency, every biopotential
  // leaf perpetual.
  comm::WiRLink wir;
  net::NetworkSim sim(wir, net::NetworkConfig{11, {}, {}, false});

  auto leaf = [&](const char* name, net::BodyLocation loc, double rate, double sense_uw) {
    net::NodeConfig n;
    n.name = name;
    n.location = loc;
    n.stream = name;
    n.sense_power_w = sense_uw * uW;
    n.isa_power_w = 1.0 * uW;
    n.output_rate_bps = rate;
    n.frame_bytes = 240;
    return n;
  };
  sim.add_node(leaf("ecg", net::BodyLocation::kChest, 4.0 * kbps, 8.0));
  sim.add_node(leaf("emg", net::BodyLocation::kWristLeft, 6.0 * kbps, 8.0));
  sim.add_node(leaf("imu", net::BodyLocation::kAnkleLeft, 4.8 * kbps, 5.0));
  sim.add_node(leaf("ppg-ring", net::BodyLocation::kFingerLeft, 1.6 * kbps, 4.0));
  sim.add_node(leaf("audio", net::BodyLocation::kEarLeft, 64.0 * kbps, 150.0));

  const net::NetworkReport report = sim.run(60.0);
  for (const auto& n : report.nodes) {
    EXPECT_EQ(n.frames_dropped, 0u) << n.name;
    EXPECT_LT(n.mean_latency_s, 0.2) << n.name;
  }
  // All sub-audio leaves perpetual; audio node week-class or better.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(report.nodes[static_cast<std::size_t>(i)].perpetual)
        << report.nodes[static_cast<std::size_t>(i)].name;
  }
  EXPECT_GT(report.nodes[4].projected_life_days, 7.0);
}

TEST(PaperClaims, OffloadBeatsLocalUnderWiRForAllModels) {
  // The partition optimizer must independently rediscover the paper's
  // architecture: under Wi-R costs, the optimal leaf/hub split for every
  // reference model is full offload (or nearly: <=1 layer on the leaf).
  comm::WiRLink wir;
  partition::CostModel cm;
  cm.leaf_hub = partition::CostModel::leg_from_link(wir, 100.0 * kbps);
  cm.hub_cloud = partition::CostModel::default_uplink();
  for (auto* make :
       {+[] { return nn::make_kws_dscnn(); }, +[] { return nn::make_ecg_cnn1d(); },
        +[] { return nn::make_vww_micronet(); }}) {
    const nn::Model m = make();
    const partition::Partitioner part(m, cm);
    const auto plan = part.optimize(partition::Objective::kLeafEnergy);
    EXPECT_LE(plan.split_leaf_hub, 1u) << m.name();
  }
}

TEST(PaperClaims, HubDailyChargingLeavesPerpetual) {
  // "While the On-Body Hub requires daily charging ... the IoB nodes
  // achieve perpetual or exceedingly long-lasting operation."
  comm::WiRLink wir;
  net::NetworkSim sim(wir, net::NetworkConfig{12, {}, {}, false});
  net::NodeConfig n;
  n.name = "patch";
  n.stream = "ecg";
  n.sense_power_w = 8.0 * uW;
  n.output_rate_bps = 6.0 * kbps;
  sim.add_node(n);
  net::SessionConfig s;
  s.stream = "ecg";
  s.macs_per_inference = 190'000;
  s.bytes_per_inference = 720;
  sim.add_session(s);
  const auto report = sim.run(60.0);

  EXPECT_TRUE(report.nodes[0].perpetual);
  // Hub with a 300 mAh smartwatch-class battery: day-class life.
  const energy::Battery hub_batt(300.0, 3.85);
  const double hub_life_days = energy::battery_life_days(hub_batt, report.hub_power_w);
  EXPECT_GT(hub_life_days, 0.3);
  EXPECT_LT(hub_life_days, 10.0);
}

// ---- Cross-module consistency -----------------------------------------------------

TEST(Consistency, WorkloadRatesMatchGeneratorRates) {
  // The core::WorkloadSpec constants must agree with the actual generators.
  workload::EcgGenerator ecg;
  EXPECT_NEAR(core::ecg_patch_workload().raw_rate_bps, 2.0 * ecg.data_rate_bps(12),
              0.1 * core::ecg_patch_workload().raw_rate_bps);  // 2-lead patch
  workload::AudioGenerator audio;
  EXPECT_DOUBLE_EQ(core::audio_pendant_workload().raw_rate_bps, audio.data_rate_bps(16));
  workload::VideoGenerator video;
  EXPECT_NEAR(core::camera_node_workload().raw_rate_bps, video.raw_data_rate_bps(),
              0.2 * video.raw_data_rate_bps());
}

TEST(Consistency, KwsWorkloadMacsMatchZooModel) {
  // audio_pendant_workload claims ~2.7 MMAC/s (one window per second); the
  // actual DS-CNN model must be within 25%.
  const nn::Model kws = nn::make_kws_dscnn();
  const double spec = static_cast<double>(core::audio_pendant_workload().inference_macs_per_s);
  EXPECT_NEAR(static_cast<double>(kws.total_macs()), spec, 0.25 * spec);
}

TEST(Consistency, SensorClassesSitOnSurveyCurve) {
  // Device-class anchor rates must be inside the survey's domain so Fig. 3
  // markers interpolate rather than extrapolate.
  energy::SensingPowerModel survey;
  for (const auto& cls : {energy::kBiopotentialPatch, energy::kSmartRing, energy::kAudioNode,
                          energy::kExgArray, energy::kVideoNode}) {
    EXPECT_GE(cls.data_rate_bps, survey.anchors().front().first);
    EXPECT_LE(cls.data_rate_bps, survey.anchors().back().first);
    EXPECT_GT(survey.power_w(cls.data_rate_bps), 0.0);
  }
}

}  // namespace
}  // namespace iob
