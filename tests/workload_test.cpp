// Unit tests for src/workload: physiological plausibility of the synthetic
// generators and correctness of the traffic processes.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulator.hpp"
#include "workload/audio.hpp"
#include "workload/ecg.hpp"
#include "workload/emg.hpp"
#include "workload/imu.hpp"
#include "workload/ppg.hpp"
#include "workload/traffic.hpp"
#include "workload/video.hpp"

namespace iob::workload {
namespace {

// ---- ECG ---------------------------------------------------------------------

TEST(Ecg, SampleCountMatchesDuration) {
  EcgGenerator gen;
  sim::Rng rng(1);
  EXPECT_EQ(gen.generate(10.0, rng).size(), 3600u);
}

TEST(Ecg, BeatCountMatchesHeartRate) {
  EcgParams p;
  p.heart_rate_bpm = 60.0;
  p.noise_mv = 0.001;
  p.baseline_wander_mv = 0.0;
  EcgGenerator gen(p);
  sim::Rng rng(2);
  const auto sig = gen.generate(30.0, rng);
  // Count R peaks: samples above 60% of max with local-max property.
  const float thresh = 0.6f * p.amplitude_mv;
  int peaks = 0;
  for (std::size_t i = 1; i + 1 < sig.size(); ++i) {
    if (sig[i] > thresh && sig[i] >= sig[i - 1] && sig[i] > sig[i + 1]) ++peaks;
  }
  EXPECT_NEAR(peaks, 30, 3);  // ~1 Hz for 30 s
}

TEST(Ecg, AmplitudeInConfiguredRange) {
  EcgGenerator gen;
  sim::Rng rng(3);
  const auto sig = gen.generate(10.0, rng);
  float mx = 0.0f;
  for (const float v : sig) mx = std::max(mx, v);
  EXPECT_NEAR(mx, 1.1f, 0.3f);
}

TEST(Ecg, AdcCodesBounded) {
  EcgGenerator gen;
  sim::Rng rng(4);
  for (const auto c : gen.generate_adc(5.0, rng)) {
    EXPECT_GE(c, -32768);
    EXPECT_LE(c, 32767);
  }
}

TEST(Ecg, DataRateFormula) {
  EcgGenerator gen;
  EXPECT_DOUBLE_EQ(gen.data_rate_bps(12), 360.0 * 12.0);
}

TEST(Ecg, DeterministicGivenRngSeed) {
  EcgGenerator gen;
  sim::Rng a(5), b(5);
  EXPECT_EQ(gen.generate(2.0, a), gen.generate(2.0, b));
}

// ---- EMG ---------------------------------------------------------------------

TEST(Emg, BurstsRaiseRmsAboveBaseline) {
  EmgParams p;
  p.burst_rate_hz = 2.0;  // frequent bursts
  EmgGenerator gen(p);
  sim::Rng rng(6);
  const auto sig = gen.generate(10.0, rng);
  double rms = 0.0;
  for (const float v : sig) rms += static_cast<double>(v) * v;
  rms = std::sqrt(rms / static_cast<double>(sig.size()));
  EXPECT_GT(rms, 3.0 * p.baseline_noise_mv);
}

TEST(Emg, QuietWithoutBursts) {
  EmgParams p;
  p.burst_rate_hz = 0.0;
  EmgGenerator gen(p);
  sim::Rng rng(7);
  const auto sig = gen.generate(5.0, rng);
  float peak = 0.0f;
  for (const float v : sig) peak = std::max(peak, std::fabs(v));
  EXPECT_LT(peak, 10.0f * p.baseline_noise_mv);
}

TEST(Emg, NyquistGuard) {
  EmgParams p;
  p.sample_rate_hz = 500.0;  // < 2 * 450
  EXPECT_THROW(EmgGenerator{p}, std::invalid_argument);
}

// ---- IMU ---------------------------------------------------------------------

TEST(Imu, GravityBaselineOnVerticalAxis) {
  ImuGenerator gen;
  sim::Rng rng(8);
  const auto samples = gen.generate(20.0, rng);
  double mean_z = 0.0;
  for (const auto& s : samples) mean_z += s.az;
  mean_z /= static_cast<double>(samples.size());
  EXPECT_NEAR(mean_z, 1.0, 0.05);
}

TEST(Imu, GaitModulationPresent) {
  ImuGenerator gen;
  sim::Rng rng(9);
  const auto samples = gen.generate(10.0, rng);
  float mn = 10.0f, mx = -10.0f;
  for (const auto& s : samples) {
    mn = std::min(mn, s.az);
    mx = std::max(mx, s.az);
  }
  EXPECT_GT(mx - mn, 0.4f);  // visible vertical bounce
}

TEST(Imu, InterleavedAdcTriplets) {
  ImuGenerator gen;
  sim::Rng rng(10);
  const auto codes = gen.generate_adc(1.0, rng);
  EXPECT_EQ(codes.size() % 3, 0u);
  EXPECT_EQ(codes.size(), 300u);  // 100 Hz * 1 s * 3 axes
}

TEST(Imu, DataRateCountsAllAxes) {
  ImuGenerator gen;
  EXPECT_DOUBLE_EQ(gen.data_rate_bps(16), 100.0 * 3.0 * 16.0);
}

// ---- PPG ---------------------------------------------------------------------

TEST(Ppg, PulsatileAndPositiveEnvelope) {
  PpgGenerator gen;
  sim::Rng rng(11);
  const auto sig = gen.generate(10.0, rng);
  float mx = 0.0f;
  for (const float v : sig) mx = std::max(mx, v);
  EXPECT_GT(mx, 0.5f);
}

TEST(Ppg, BeatPeriodicityVisible) {
  PpgParams p;
  p.heart_rate_bpm = 60.0;
  p.noise = 0.001;
  PpgGenerator gen(p);
  sim::Rng rng(12);
  const auto sig = gen.generate(20.0, rng);
  const float thresh = 0.7f;
  int peaks = 0;
  for (std::size_t i = 1; i + 1 < sig.size(); ++i) {
    if (sig[i] > thresh && sig[i] >= sig[i - 1] && sig[i] > sig[i + 1]) ++peaks;
  }
  EXPECT_NEAR(peaks, 20, 4);
}

// ---- Audio ---------------------------------------------------------------------

TEST(Audio, BoundedAmplitude) {
  AudioGenerator gen;
  sim::Rng rng(13);
  for (const float v : gen.generate(2.0, rng)) {
    EXPECT_GE(v, -1.1f);
    EXPECT_LE(v, 1.1f);
  }
}

TEST(Audio, ContainsSpeechAndSilence) {
  AudioGenerator gen;
  sim::Rng rng(14);
  const auto sig = gen.generate(10.0, rng);
  // Windowed RMS: some windows loud, some quiet.
  const std::size_t win = 1600;  // 100 ms
  int loud = 0, quiet = 0;
  for (std::size_t start = 0; start + win <= sig.size(); start += win) {
    double rms = 0.0;
    for (std::size_t i = start; i < start + win; ++i) rms += static_cast<double>(sig[i]) * sig[i];
    rms = std::sqrt(rms / win);
    if (rms > 0.05) ++loud;
    if (rms < 0.01) ++quiet;
  }
  EXPECT_GT(loud, 5);
  EXPECT_GT(quiet, 2);
}

TEST(Audio, PcmRateIs256kbps) {
  AudioGenerator gen;
  EXPECT_DOUBLE_EQ(gen.data_rate_bps(16), 256000.0);
}

// ---- Video ---------------------------------------------------------------------

TEST(Video, FrameDimensionsAndRate) {
  VideoGenerator gen;
  sim::Rng rng(15);
  const auto f = gen.next_frame(rng);
  EXPECT_EQ(f.width, 320);
  EXPECT_EQ(f.height, 240);
  EXPECT_EQ(f.pixels.size(), 320u * 240u);
  EXPECT_DOUBLE_EQ(gen.raw_data_rate_bps(), 320.0 * 240 * 8 * 15);
}

TEST(Video, ConsecutiveFramesDiffer) {
  VideoGenerator gen;
  sim::Rng rng(16);
  const auto f1 = gen.next_frame(rng);
  const auto f2 = gen.next_frame(rng);
  std::size_t diff = 0;
  for (std::size_t i = 0; i < f1.pixels.size(); ++i) diff += (f1.pixels[i] != f2.pixels[i]);
  EXPECT_GT(diff, 100u);  // moving objects + noise
}

TEST(Video, RejectsNonBlockDims) {
  VideoParams p;
  p.width = 100;  // not multiple of 8
  EXPECT_THROW(VideoGenerator(p, 1), std::invalid_argument);
}

// ---- Traffic ---------------------------------------------------------------------

TEST(Traffic, PeriodicEmitsExpectedCount) {
  sim::Simulator sim(17);
  int count = 0;
  PeriodicSource src(sim, 0.1, 100, [&](sim::Time, std::uint32_t bytes) {
    EXPECT_EQ(bytes, 100u);
    ++count;
  });
  sim.run_until(1.05);
  EXPECT_EQ(count, 11);  // t = 0.0 .. 1.0
  EXPECT_DOUBLE_EQ(src.offered_bps(), 8000.0);
}

TEST(Traffic, PeriodicStops) {
  sim::Simulator sim(18);
  int count = 0;
  PeriodicSource src(sim, 0.1, 10, [&](sim::Time t, std::uint32_t) {
    ++count;
    if (t >= 0.45) src.stop();
  });
  sim.run_until(2.0);
  EXPECT_EQ(count, 6);
}

TEST(Traffic, PoissonMeanRate) {
  sim::Simulator sim(19);
  int count = 0;
  PoissonSource src(sim, 50.0, 10, [&](sim::Time, std::uint32_t) { ++count; });
  sim.run_until(20.0);
  EXPECT_NEAR(count, 1000, 100);  // 50/s * 20 s, ~3 sigma
  EXPECT_DOUBLE_EQ(src.offered_bps(), 50.0 * 80.0);
}

TEST(Traffic, SinkTimesMatchSimClock) {
  sim::Simulator sim(20);
  std::vector<double> times;
  PeriodicSource src(sim, 0.25, 1, [&](sim::Time t, std::uint32_t) { times.push_back(t); },
                     0.5);
  sim.run_until(1.3);
  ASSERT_GE(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 0.5);
  EXPECT_DOUBLE_EQ(times[1], 0.75);
}

}  // namespace
}  // namespace iob::workload
