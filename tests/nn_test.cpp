// Unit tests for src/nn: tensor mechanics, every layer against
// hand-computed references, model chaining/profiling, quantization bounds,
// and the reference model zoo.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "nn/conv.hpp"
#include "nn/layers.hpp"
#include "nn/model.hpp"
#include "nn/model_zoo.hpp"
#include "nn/quantize.hpp"
#include "nn/tensor.hpp"

namespace iob::nn {
namespace {

// ---- Tensor -------------------------------------------------------------------

TEST(Tensor, ShapeAndSize) {
  Tensor t(Shape{2, 3, 4});
  EXPECT_EQ(t.rank(), 3);
  EXPECT_EQ(t.size(), 24);
  EXPECT_EQ(t.bytes(), 96);
}

TEST(Tensor, RowMajorIndexing) {
  Tensor t(Shape{2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(t[5], 7.0f);
  t.at(0, 0) = 1.0f;
  EXPECT_FLOAT_EQ(t[0], 1.0f);
}

TEST(Tensor, BoundsChecked) {
  Tensor t(Shape{2, 3});
  EXPECT_THROW(t.at(2, 0), std::invalid_argument);
  EXPECT_THROW(t.at(0), std::invalid_argument);  // wrong rank
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 3});
  for (int i = 0; i < 6; ++i) t[i] = static_cast<float>(i);
  const Tensor r = t.reshaped(Shape{6});
  for (int i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(r[i], static_cast<float>(i));
  EXPECT_THROW(t.reshaped(Shape{5}), std::invalid_argument);
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a(Shape{3}), b(Shape{3});
  a[0] = 1.0f;
  b[0] = 1.5f;
  EXPECT_NEAR(a.max_abs_diff(b), 0.5, 1e-7);
}

// ---- FullyConnected --------------------------------------------------------------

TEST(FullyConnected, HandComputed) {
  // y = W x + b with W = [[1,2],[3,4]], b = [0.5, -0.5], x = [1, -1].
  FullyConnected fc(2, 2, {1, 2, 3, 4}, {0.5f, -0.5f});
  Tensor x(Shape{2});
  x[0] = 1.0f;
  x[1] = -1.0f;
  const Tensor y = fc.forward(x);
  EXPECT_FLOAT_EQ(y[0], 1.0f - 2.0f + 0.5f);
  EXPECT_FLOAT_EQ(y[1], 3.0f - 4.0f - 0.5f);
}

TEST(FullyConnected, MacsAndParams) {
  FullyConnected fc(64, 12, std::vector<float>(768, 0.0f), std::vector<float>(12, 0.0f));
  EXPECT_EQ(fc.macs(Shape{64}), 768u);
  EXPECT_EQ(fc.param_count(), 768u + 12u);
}

TEST(FullyConnected, AcceptsFlattenedMultiDimInput) {
  FullyConnected fc(6, 1, std::vector<float>(6, 1.0f), {0.0f});
  Tensor x(Shape{2, 3}, 1.0f);
  const Tensor y = fc.forward(x);
  EXPECT_FLOAT_EQ(y[0], 6.0f);
}

TEST(FullyConnected, RejectsSizeMismatch) {
  EXPECT_THROW(FullyConnected(2, 2, {1, 2, 3}, {0, 0}), std::invalid_argument);
  FullyConnected fc(2, 1, {1, 1}, {0});
  EXPECT_THROW(fc.forward(Tensor(Shape{3})), std::invalid_argument);
}

// ---- Activations / pooling --------------------------------------------------------

TEST(Relu, ClampsNegatives) {
  Relu relu;
  Tensor x(Shape{3});
  x[0] = -1.0f;
  x[1] = 0.0f;
  x[2] = 2.0f;
  const Tensor y = relu.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
}

TEST(Relu, SixCap) {
  Relu relu6(6.0f);
  Tensor x(Shape{2});
  x[0] = 10.0f;
  x[1] = 3.0f;
  const Tensor y = relu6.forward(x);
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  EXPECT_FLOAT_EQ(y[1], 3.0f);
}

TEST(Pool2D, MaxPoolHandComputed) {
  Pool2D pool(PoolKind::kMax, 2, 2);
  Tensor x(Shape{2, 2, 1});
  x.at(0, 0, 0) = 1.0f;
  x.at(0, 1, 0) = 5.0f;
  x.at(1, 0, 0) = 3.0f;
  x.at(1, 1, 0) = 2.0f;
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
}

TEST(Pool2D, AvgPoolHandComputed) {
  Pool2D pool(PoolKind::kAvg, 2, 2);
  Tensor x(Shape{2, 2, 1});
  x.at(0, 0, 0) = 1.0f;
  x.at(0, 1, 0) = 2.0f;
  x.at(1, 0, 0) = 3.0f;
  x.at(1, 1, 0) = 6.0f;
  EXPECT_FLOAT_EQ(pool.forward(x)[0], 3.0f);
}

TEST(Pool2D, StridedOutputShape) {
  Pool2D pool(PoolKind::kMax, 2, 2);
  EXPECT_EQ(pool.output_shape(Shape{8, 6, 3}), (Shape{4, 3, 3}));
}

TEST(GlobalAvgPool, AveragesPerChannel) {
  GlobalAvgPool gap;
  Tensor x(Shape{2, 2, 2});
  // channel 0: 1,2,3,4 -> 2.5; channel 1: 10 everywhere -> 10.
  x.at(0, 0, 0) = 1.0f;
  x.at(0, 1, 0) = 2.0f;
  x.at(1, 0, 0) = 3.0f;
  x.at(1, 1, 0) = 4.0f;
  x.at(0, 0, 1) = x.at(0, 1, 1) = x.at(1, 0, 1) = x.at(1, 1, 1) = 10.0f;
  const Tensor y = gap.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_FLOAT_EQ(y[1], 10.0f);
}

TEST(Softmax, SumsToOneAndOrders) {
  Softmax sm;
  Tensor x(Shape{3});
  x[0] = 1.0f;
  x[1] = 3.0f;
  x[2] = 2.0f;
  const Tensor y = sm.forward(x);
  EXPECT_NEAR(y[0] + y[1] + y[2], 1.0, 1e-6);
  EXPECT_GT(y[1], y[2]);
  EXPECT_GT(y[2], y[0]);
}

TEST(Softmax, StableForLargeLogits) {
  Softmax sm;
  Tensor x(Shape{2});
  x[0] = 1000.0f;
  x[1] = 1001.0f;
  const Tensor y = sm.forward(x);
  EXPECT_NEAR(y[0] + y[1], 1.0, 1e-6);
  EXPECT_GT(y[1], y[0]);
}

// ---- Conv2D ------------------------------------------------------------------------

TEST(Conv2D, IdentityKernel) {
  // 1x1 kernel with weight 1: output == input.
  Conv2D conv(1, 1, 1, 1, 1, 1, Padding::kValid, {1.0f}, {0.0f});
  Tensor x(Shape{3, 3, 1});
  for (int i = 0; i < 9; ++i) x[i] = static_cast<float>(i);
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), (Shape{3, 3, 1}));
  for (int i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(y[i], static_cast<float>(i));
}

TEST(Conv2D, BoxFilterHandComputed) {
  // 2x2 all-ones valid conv over a known 3x3 input.
  Conv2D conv(1, 1, 2, 2, 1, 1, Padding::kValid, {1, 1, 1, 1}, {0.0f});
  Tensor x(Shape{3, 3, 1});
  for (int i = 0; i < 9; ++i) x[i] = static_cast<float>(i + 1);  // 1..9
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 2, 1}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), 1 + 2 + 4 + 5);
  EXPECT_FLOAT_EQ(y.at(0, 1, 0), 2 + 3 + 5 + 6);
  EXPECT_FLOAT_EQ(y.at(1, 0, 0), 4 + 5 + 7 + 8);
  EXPECT_FLOAT_EQ(y.at(1, 1, 0), 5 + 6 + 8 + 9);
}

TEST(Conv2D, SamePaddingPreservesShapeAtStride1) {
  Conv2D conv(1, 4, 3, 3, 1, 1, Padding::kSame, std::vector<float>(36, 0.1f),
              std::vector<float>(4, 0.0f));
  EXPECT_EQ(conv.output_shape(Shape{7, 5, 1}), (Shape{7, 5, 4}));
}

TEST(Conv2D, SamePaddingCeilDivAtStride2) {
  Conv2D conv(1, 2, 3, 3, 2, 2, Padding::kSame, std::vector<float>(18, 0.1f),
              std::vector<float>(2, 0.0f));
  EXPECT_EQ(conv.output_shape(Shape{7, 7, 1}), (Shape{4, 4, 2}));
}

TEST(Conv2D, MultiChannelAccumulation) {
  // 1x1 conv over 2 channels with weights (2, 3): y = 2*c0 + 3*c1 + 1.
  Conv2D conv(2, 1, 1, 1, 1, 1, Padding::kValid, {2.0f, 3.0f}, {1.0f});
  Tensor x(Shape{1, 1, 2});
  x.at(0, 0, 0) = 5.0f;
  x.at(0, 0, 1) = 7.0f;
  EXPECT_FLOAT_EQ(conv.forward(x)[0], 2 * 5 + 3 * 7 + 1);
}

TEST(Conv2D, MacFormula) {
  Conv2D conv(3, 8, 3, 3, 1, 1, Padding::kSame, std::vector<float>(8 * 9 * 3, 0.0f),
              std::vector<float>(8, 0.0f));
  // out 4x4x8, kernel 3x3x3.
  EXPECT_EQ(conv.macs(Shape{4, 4, 3}), 4u * 4 * 8 * 3 * 3 * 3);
}

TEST(Conv2D, ZeroPaddingContributesNothing) {
  // All-ones 3x3 kernel, same padding: corner output sums only the 4 valid
  // taps of a constant-1 input.
  Conv2D conv(1, 1, 3, 3, 1, 1, Padding::kSame, std::vector<float>(9, 1.0f), {0.0f});
  Tensor x(Shape{3, 3, 1}, 1.0f);
  const Tensor y = conv.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), 4.0f);  // corner
  EXPECT_FLOAT_EQ(y.at(1, 1, 0), 9.0f);  // center
  EXPECT_FLOAT_EQ(y.at(0, 1, 0), 6.0f);  // edge
}

// ---- DepthwiseConv2D -----------------------------------------------------------------

TEST(DepthwiseConv2D, PerChannelIndependence) {
  // 1x1 depthwise with weights (2, 10): channels scale independently.
  DepthwiseConv2D dw(2, 1, 1, Padding::kValid, {2.0f, 10.0f}, {0.0f, 0.0f});
  Tensor x(Shape{1, 1, 2});
  x.at(0, 0, 0) = 3.0f;
  x.at(0, 0, 1) = 4.0f;
  const Tensor y = dw.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), 6.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1), 40.0f);
}

TEST(DepthwiseConv2D, MacsScaleWithChannelsNotSquared) {
  DepthwiseConv2D dw(64, 3, 1, Padding::kSame, std::vector<float>(64 * 9, 0.0f),
                     std::vector<float>(64, 0.0f));
  EXPECT_EQ(dw.macs(Shape{10, 10, 64}), 10u * 10 * 64 * 9);
}

// ---- Conv1D ---------------------------------------------------------------------------

TEST(Conv1D, MovingSumHandComputed) {
  Conv1D conv(1, 1, 3, 1, Padding::kValid, {1, 1, 1}, {0.0f});
  Tensor x(Shape{5, 1});
  for (int i = 0; i < 5; ++i) x[i] = static_cast<float>(i + 1);
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), (Shape{3, 1}));
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  EXPECT_FLOAT_EQ(y[1], 9.0f);
  EXPECT_FLOAT_EQ(y[2], 12.0f);
}

TEST(Conv1D, StrideAndSamePadding) {
  Conv1D conv(1, 2, 5, 2, Padding::kSame, std::vector<float>(10, 0.0f),
              std::vector<float>(2, 0.0f));
  EXPECT_EQ(conv.output_shape(Shape{360, 1}), (Shape{180, 2}));
}

// ---- Model ---------------------------------------------------------------------------

TEST(Model, ChainsShapesAndProfiles) {
  Model m("test", Shape{4, 4, 1});
  m.add(std::make_unique<Conv2D>(1, 2, 3, 3, 1, 1, Padding::kSame,
                                 std::vector<float>(18, 0.1f), std::vector<float>(2, 0.0f)));
  m.add(std::make_unique<Relu>());
  m.add(std::make_unique<GlobalAvgPool>());
  m.add(std::make_unique<FullyConnected>(2, 3, std::vector<float>(6, 0.1f),
                                         std::vector<float>(3, 0.0f)));
  EXPECT_EQ(m.layer_count(), 4u);
  EXPECT_EQ(m.profiles()[0].output_shape, (Shape{4, 4, 2}));
  EXPECT_EQ(m.profiles()[3].output_shape, (Shape{3}));
  EXPECT_EQ(m.profiles()[0].output_bytes_i8, 32);
  EXPECT_EQ(m.profiles()[0].output_bytes_f32, 128);
  EXPECT_GT(m.total_macs(), 0u);
  EXPECT_GT(m.total_params(), 0u);

  const Tensor y = m.forward(Tensor(Shape{4, 4, 1}, 1.0f));
  EXPECT_EQ(y.shape(), (Shape{3}));
}

TEST(Model, ForwardRangeComposition) {
  Model m = make_ecg_cnn1d();
  Tensor x(m.input_shape());
  for (std::int64_t i = 0; i < x.size(); ++i) x[i] = std::sin(static_cast<float>(i) * 0.1f);
  const Tensor full = m.forward(x);
  // Split execution at every boundary must reproduce the monolithic result.
  for (std::size_t split = 0; split <= m.layer_count(); ++split) {
    const Tensor head = m.forward_range(x, 0, split);
    const Tensor tail = m.forward_range(head, split, m.layer_count());
    EXPECT_LT(tail.max_abs_diff(full), 1e-5) << "split at " << split;
  }
}

TEST(Model, RejectsIncompatibleLayer) {
  Model m("bad", Shape{4});
  EXPECT_THROW(
      m.add(std::make_unique<Conv2D>(1, 1, 3, 3, 1, 1, Padding::kValid,
                                     std::vector<float>(9, 0.0f), std::vector<float>(1, 0.0f))),
      std::invalid_argument);
}

TEST(Model, SummaryMentionsEveryLayer) {
  const Model m = make_kws_dscnn();
  const std::string s = m.summary();
  EXPECT_NE(s.find("conv2d"), std::string::npos);
  EXPECT_NE(s.find("dwconv"), std::string::npos);
  EXPECT_NE(s.find("fc"), std::string::npos);
  EXPECT_NE(s.find("softmax"), std::string::npos);
}

// ---- Model zoo -------------------------------------------------------------------------

class ZooTest : public ::testing::TestWithParam<int> {};

TEST_P(ZooTest, RunsEndToEndWithFiniteProbabilities) {
  Model m = GetParam() == 0   ? make_kws_dscnn()
            : GetParam() == 1 ? make_ecg_cnn1d()
                              : make_vww_micronet();
  Tensor x(m.input_shape());
  for (std::int64_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(static_cast<float>(i) * 0.01f);
  }
  const Tensor y = m.forward(x);
  double sum = 0.0;
  for (std::int64_t i = 0; i < y.size(); ++i) {
    EXPECT_TRUE(std::isfinite(y[i]));
    EXPECT_GE(y[i], 0.0f);
    sum += y[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);  // ends in softmax
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooTest, ::testing::Values(0, 1, 2));

TEST(ModelZoo, DeterministicAcrossConstructions) {
  Model a = make_kws_dscnn(123);
  Model b = make_kws_dscnn(123);
  Tensor x(a.input_shape(), 0.5f);
  EXPECT_LT(a.forward(x).max_abs_diff(b.forward(x)), 1e-9);
}

TEST(ModelZoo, SizesAreTinyMlClass) {
  // These run on wearables: parameter counts must be tinyML scale.
  EXPECT_LT(make_kws_dscnn().total_params(), 100'000u);
  EXPECT_LT(make_ecg_cnn1d().total_params(), 20'000u);
  EXPECT_LT(make_vww_micronet().total_params(), 100'000u);
  // And MAC counts ordered by modality weight: ECG < KWS < VWW.
  EXPECT_LT(make_ecg_cnn1d().total_macs(), make_kws_dscnn().total_macs());
  EXPECT_LT(make_kws_dscnn().total_macs(), make_vww_micronet().total_macs());
}

// ---- Quantization ------------------------------------------------------------------------

TEST(Quantize, RoundTripWithinHalfLsb) {
  Tensor t(Shape{100});
  for (int i = 0; i < 100; ++i) t[i] = std::sin(static_cast<float>(i)) * 3.0f;
  const QuantizedTensor q = quantize(t);
  const Tensor back = dequantize(q);
  EXPECT_LE(t.max_abs_diff(back), quant_error_bound(q.params) * 1.001);
}

TEST(Quantize, ZeroIsExactlyRepresentable) {
  Tensor t(Shape{3});
  t[0] = -1.0f;
  t[1] = 0.0f;
  t[2] = 2.0f;
  const QuantizedTensor q = quantize(t);
  const Tensor back = dequantize(q);
  EXPECT_FLOAT_EQ(back[1], 0.0f);
}

TEST(Quantize, Int8IsQuarterTheBytes) {
  Tensor t(Shape{64}, 1.0f);
  const QuantizedTensor q = quantize(t);
  EXPECT_EQ(q.bytes() * 4, t.bytes());
}

TEST(Quantize, DegenerateConstantTensor) {
  Tensor t(Shape{4}, 5.0f);
  const QuantizedTensor q = quantize(t);
  const Tensor back = dequantize(q);
  EXPECT_LE(t.max_abs_diff(back), quant_error_bound(q.params) * 1.001);
}

TEST(Quantize, ParamsCoverRange) {
  const QuantParams p = choose_quant_params(-2.0f, 6.0f);
  EXPECT_NEAR(p.scale, 8.0f / 255.0f, 1e-6);
  EXPECT_GE(p.zero_point, -128);
  EXPECT_LE(p.zero_point, 127);
}

// ---- Batched inference ------------------------------------------------------

/// Deterministic, sample-dependent fill so batched samples differ.
Tensor patterned_input(const Shape& shape, int sample) {
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    const auto h = static_cast<std::uint32_t>(i * 2654435761u + sample * 97u);
    t[i] = static_cast<float>(h % 1000u) / 500.0f - 1.0f;
  }
  return t;
}

TEST(Batched, StackUnstackRoundTrip) {
  std::vector<Tensor> samples;
  for (int s = 0; s < 3; ++s) samples.push_back(patterned_input(Shape{4, 5}, s));
  const Tensor batched = stack_batch(samples);
  EXPECT_EQ(batched.shape(), (Shape{3, 4, 5}));
  const std::vector<Tensor> back = unstack_batch(batched);
  ASSERT_EQ(back.size(), 3u);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(back[static_cast<std::size_t>(s)].max_abs_diff(samples[static_cast<std::size_t>(s)]),
              0.0);
    EXPECT_EQ(batched.batch_item(s).max_abs_diff(samples[static_cast<std::size_t>(s)]), 0.0);
  }
  EXPECT_THROW(stack_batch({}), std::invalid_argument);
  EXPECT_THROW(stack_batch({Tensor(Shape{2}), Tensor(Shape{3})}), std::invalid_argument);
}

TEST(Batched, ZooModelsBitExactAgainstPerSampleForward) {
  // The determinism contract of the hub's batched pass: batching changes
  // memory traffic, never per-sample arithmetic. Covers conv2d, depthwise,
  // conv1d, fc, pooling, batchnorm, relu, softmax across the zoo.
  const Model models[] = {make_kws_dscnn(), make_ecg_cnn1d(), make_vww_micronet()};
  for (const Model& m : models) {
    constexpr int kBatch = 3;
    std::vector<Tensor> inputs;
    for (int s = 0; s < kBatch; ++s) inputs.push_back(patterned_input(m.input_shape(), s));
    const std::vector<Tensor> batched = m.run_batched(inputs);
    ASSERT_EQ(batched.size(), static_cast<std::size_t>(kBatch)) << m.name();
    for (int s = 0; s < kBatch; ++s) {
      const Tensor reference = m.forward(inputs[static_cast<std::size_t>(s)]);
      EXPECT_EQ(batched[static_cast<std::size_t>(s)].max_abs_diff(reference), 0.0)
          << m.name() << " sample " << s;
    }
  }
}

TEST(Batched, RejectsShapeMismatch) {
  const Model m = make_ecg_cnn1d();
  // Missing batch dim.
  EXPECT_THROW(m.run_batched(Tensor(m.input_shape())), std::invalid_argument);
  // Wrong sample shape.
  EXPECT_THROW(m.run_batched(Tensor(Shape{2, 360, 2})), std::invalid_argument);
}

TEST(Batched, FullyConnectedBatchedMatchesForward) {
  std::vector<float> w(6);
  std::iota(w.begin(), w.end(), 1.0f);  // 2x3: [[1,2,3],[4,5,6]]
  FullyConnected fc(3, 2, w, {0.5f, -0.5f});
  const Tensor a = patterned_input(Shape{3}, 0);
  const Tensor b = patterned_input(Shape{3}, 1);
  const Tensor batched = fc.forward_batched(stack_batch({a, b}), 2);
  EXPECT_EQ(batched.shape(), (Shape{2, 2}));
  EXPECT_EQ(batched.batch_item(0).max_abs_diff(fc.forward(a)), 0.0);
  EXPECT_EQ(batched.batch_item(1).max_abs_diff(fc.forward(b)), 0.0);
}

}  // namespace
}  // namespace iob::nn
