// Unit tests for the fleet harness (core::Fleet): exhaustive, ordered grid
// expansion; byte-identical parallel runs at 1/2/8 threads; and marginal
// aggregates checked against hand-computed values on a tiny 2x2 grid.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/fleet.hpp"
#include "core/sweep_runner.hpp"

namespace iob {
namespace {

core::NodeMix tiny_mix() {
  core::NodeClassSpec audio;
  audio.base.name = "audio";
  audio.base.sense_power_w = 150e-6;
  audio.base.output_rate_bps = 64e3;
  audio.base.slot_weight = 2;
  audio.share = 1;
  core::NodeClassSpec bio;
  bio.base.name = "bio";
  bio.base.sense_power_w = 8e-6;
  bio.base.output_rate_bps = 5e3;
  bio.share = 3;
  return core::NodeMix{"tiny", {audio, bio}};
}

core::FleetAxes small_axes() {
  core::FleetAxes axes;
  axes.node_counts = {2, 3};
  comm::TdmaConfig short_slot;
  short_slot.slot_s = 600e-6;
  axes.macs = {{"slot-1ms", {}}, {"slot-600us", short_slot}};
  axes.mixes = {tiny_mix()};
  energy::HarvesterParams pv;
  pv.mean_power_w = 50e-6;
  axes.harvests = {{"none", std::nullopt}, {"pv", pv}};
  axes.buses = {core::BusKind::kWiR};
  axes.batch_windows = {0, 1};
  axes.precisions = {nn::Precision::kF32, nn::Precision::kInt8};
  axes.seeds = {7, 9};
  axes.duration_s = 0.5;
  return axes;
}

// ---- grid expansion ---------------------------------------------------------

TEST(Fleet, ExpansionIsExhaustiveAndOrdered) {
  const core::FleetAxes axes = small_axes();
  const core::Fleet fleet(axes);
  EXPECT_EQ(fleet.size(), 2u * 2u * 1u * 2u * 1u * 2u * 2u * 2u);

  const std::vector<core::FleetPoint> points = fleet.expand();
  ASSERT_EQ(points.size(), fleet.size());

  // The documented nesting: node_counts outermost, seeds innermost.
  std::size_t idx = 0;
  for (std::size_t ni = 0; ni < axes.node_counts.size(); ++ni) {
    for (std::size_t mi = 0; mi < axes.macs.size(); ++mi) {
      for (std::size_t xi = 0; xi < axes.mixes.size(); ++xi) {
        for (std::size_t hi = 0; hi < axes.harvests.size(); ++hi) {
          for (std::size_t bi = 0; bi < axes.buses.size(); ++bi) {
            for (std::size_t wi = 0; wi < axes.batch_windows.size(); ++wi) {
              for (std::size_t pi = 0; pi < axes.precisions.size(); ++pi) {
                for (std::size_t si = 0; si < axes.seeds.size(); ++si) {
                  const core::FleetPoint& p = points[idx];
                  EXPECT_EQ(p.index, idx);
                  const std::array<std::size_t, core::kAxisCount> want{ni, mi, xi, hi,
                                                                       bi, wi, pi, si};
                  EXPECT_EQ(p.coord, want);
                  // Every field resolves to the axis value it names.
                  EXPECT_EQ(p.node_count, axes.node_counts[ni]);
                  EXPECT_EQ(p.mac.label, axes.macs[mi].label);
                  EXPECT_EQ(p.mac.config.slot_s, axes.macs[mi].config.slot_s);
                  EXPECT_EQ(p.mix.label, axes.mixes[xi].label);
                  EXPECT_EQ(p.harvest.label, axes.harvests[hi].label);
                  EXPECT_EQ(p.harvest.harvester.has_value(),
                            axes.harvests[hi].harvester.has_value());
                  EXPECT_EQ(p.bus, axes.buses[bi]);
                  EXPECT_EQ(p.batch_window, axes.batch_windows[wi]);
                  EXPECT_EQ(p.precision, axes.precisions[pi]);
                  EXPECT_EQ(p.seed, core::SweepRunner::point_seed(axes.seeds[si], idx));
                  EXPECT_EQ(p.duration_s, axes.duration_s);
                  ++idx;
                }
              }
            }
          }
        }
      }
    }
  }
  EXPECT_EQ(idx, points.size());
}

TEST(Fleet, NodeClassAssignmentIsShareWeightedRoundRobin) {
  core::FleetAxes axes = small_axes();
  const core::FleetPoint p = core::Fleet(axes).expand().front();
  // tiny_mix: shares audio=1, bio=3 -> expanded sequence [audio, bio, bio, bio].
  for (int i = 0; i < 8; ++i) {
    const net::NodeConfig cfg = core::fleet_node_config(p, i);
    const bool audio = (i % 4) == 0;
    EXPECT_EQ(cfg.name, (audio ? "audio-" : "bio-") + std::to_string(i));
    EXPECT_EQ(cfg.stream, cfg.name);  // empty base stream -> per-node stream
    EXPECT_EQ(cfg.slot_weight, audio ? 2u : 1u);
  }
}

TEST(Fleet, HarvestAxisOverridesNodeHarvester) {
  const core::FleetAxes axes = small_axes();
  const std::vector<core::FleetPoint> points = core::Fleet(axes).expand();
  // coord[kAxisHarvest] == 0 -> "none" (mix default, unset); == 1 -> pv.
  for (const auto& p : points) {
    const net::NodeConfig cfg = core::fleet_node_config(p, 0);
    if (p.coord[core::kAxisHarvest] == 0) {
      EXPECT_FALSE(cfg.harvester.has_value());
    } else {
      ASSERT_TRUE(cfg.harvester.has_value());
      EXPECT_DOUBLE_EQ(cfg.harvester->mean_power_w, 50e-6);
    }
  }
}

TEST(Fleet, RejectsEmptyAxes) {
  core::FleetAxes axes = small_axes();
  axes.mixes.clear();
  EXPECT_THROW(core::Fleet{axes}, std::invalid_argument);
  axes = small_axes();
  axes.seeds.clear();
  EXPECT_THROW(core::Fleet{axes}, std::invalid_argument);
  axes = small_axes();
  axes.node_counts = {0};
  EXPECT_THROW(core::Fleet{axes}, std::invalid_argument);
  axes = small_axes();
  axes.batch_windows.clear();
  EXPECT_THROW(core::Fleet{axes}, std::invalid_argument);
  axes = small_axes();
  axes.precisions.clear();
  EXPECT_THROW(core::Fleet{axes}, std::invalid_argument);
}

TEST(Fleet, BatchWindowReachesTheHubConfig) {
  core::FleetAxes axes = small_axes();
  axes.batch_windows = {3};
  const core::FleetPoint p = core::Fleet(axes).expand().front();
  EXPECT_EQ(p.batch_window, 3u);
  const std::unique_ptr<net::NetworkSim> sim = core::build_fleet_point(p);
  EXPECT_EQ(sim->hub().config().batch_window, 3u);
}

// ---- determinism ------------------------------------------------------------

TEST(Fleet, ParallelRunByteIdenticalToSerialAt1_2_8Threads) {
  const core::Fleet fleet(small_axes());
  const core::SweepRunner serial(1);
  const std::string reference = core::fleet_results_csv(fleet.run(serial));
  EXPECT_NE(reference.find('\n'), std::string::npos);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const core::SweepRunner runner(threads);
    const std::string parallel = core::fleet_results_csv(fleet.run(runner));
    // Byte-identical canonical serialization (doubles at %.17g round-trip
    // exactly, so equal strings == equal bits).
    EXPECT_EQ(reference, parallel) << "thread count " << threads;
  }
}

TEST(Fleet, RunMatchesPointwiseSerialExecution) {
  const core::Fleet fleet(small_axes());
  const core::SweepRunner runner(4);
  const std::vector<core::FleetPointResult> fanned = fleet.run(runner);
  std::vector<core::FleetPointResult> pointwise;
  for (const core::FleetPoint& p : fleet.expand()) {
    pointwise.push_back(core::run_fleet_point(p));
  }
  EXPECT_EQ(core::fleet_results_csv(fanned), core::fleet_results_csv(pointwise));
}

// ---- aggregation ------------------------------------------------------------

TEST(Fleet, PercentileMatchesHandComputedValues) {
  EXPECT_DOUBLE_EQ(core::percentile({4.0, 1.0, 3.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(core::percentile({4.0, 1.0, 3.0, 2.0}, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(core::percentile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(core::percentile({1.0, 2.0}, 0.25), 1.25);
  EXPECT_DOUBLE_EQ(core::percentile({5.0}, 0.9), 5.0);
  // inf-aware: interpolation toward +inf is +inf, not NaN.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(std::isinf(core::percentile({1.0, inf}, 0.5)));
  EXPECT_DOUBLE_EQ(core::percentile({1.0, inf}, 0.0), 1.0);
  EXPECT_TRUE(std::isinf(core::percentile({inf, inf}, 0.5)));
}

TEST(Fleet, SummaryMatchesHandComputedAggregatesOn2x2Grid) {
  // 2x2 grid: node_counts {1, 2} x seeds {7, 9}; all other axes singleton.
  core::FleetAxes axes;
  axes.node_counts = {1, 2};
  axes.mixes = {tiny_mix()};
  axes.seeds = {7, 9};
  axes.duration_s = 0.5;
  const core::Fleet fleet(axes);

  const core::SweepRunner runner(1);
  const std::vector<core::FleetPointResult> results = fleet.run(runner);
  ASSERT_EQ(results.size(), 4u);
  const core::FleetSummary summary = fleet.summarize(results);
  EXPECT_EQ(summary.total_points, 4u);

  // Hand-compute the node-count marginals from the per-point reports.
  ASSERT_EQ(summary.axes.size(), core::kAxisCount);
  const auto& [axis_name, cells] = summary.axes[core::kAxisNodeCount];
  EXPECT_EQ(axis_name, "node count");
  ASSERT_EQ(cells.size(), 2u);

  for (std::size_t v = 0; v < 2; ++v) {
    // Cell v aggregates the two points with coord[node_count] == v.
    std::vector<const core::FleetPointResult*> pts;
    for (const auto& r : results) {
      if (r.coord[core::kAxisNodeCount] == v) pts.push_back(&r);
    }
    ASSERT_EQ(pts.size(), 2u);
    const core::AxisCell& cell = cells[v];
    EXPECT_EQ(cell.label, "n=" + std::to_string(axes.node_counts[v]));
    EXPECT_EQ(cell.points, 2u);

    double goodput = 0.0, drop = 0.0, latency = 0.0, util = 0.0;
    std::vector<double> lifetimes;
    double perpetual = 0.0, nodes = 0.0;
    for (const auto* r : pts) {
      goodput += r->report.aggregate_goodput_bps;
      drop += r->drop_rate;
      latency += r->mean_latency_s;
      util += r->report.bus_utilization;
      for (const auto& n : r->report.nodes) {
        lifetimes.push_back(n.projected_life_days);
        if (n.perpetual) perpetual += 1.0;
        nodes += 1.0;
      }
    }
    EXPECT_DOUBLE_EQ(cell.mean_goodput_bps, goodput / 2.0);
    EXPECT_DOUBLE_EQ(cell.mean_drop_rate, drop / 2.0);
    EXPECT_DOUBLE_EQ(cell.mean_latency_s, latency / 2.0);
    EXPECT_DOUBLE_EQ(cell.mean_bus_utilization, util / 2.0);
    EXPECT_DOUBLE_EQ(cell.perpetual_fraction, perpetual / nodes);
    EXPECT_DOUBLE_EQ(cell.life_p10_days, core::percentile(lifetimes, 0.10));
    EXPECT_DOUBLE_EQ(cell.life_p50_days, core::percentile(lifetimes, 0.50));
    EXPECT_DOUBLE_EQ(cell.life_p90_days, core::percentile(lifetimes, 0.90));
    // The simulations produced actual traffic.
    EXPECT_GT(cell.mean_goodput_bps, 0.0);
    EXPECT_GT(cell.mean_bus_utilization, 0.0);
  }

  // The overall cell covers every point once.
  EXPECT_EQ(summary.overall.points, 4u);
  double goodput_all = 0.0;
  for (const auto& r : results) goodput_all += r.report.aggregate_goodput_bps;
  EXPECT_DOUBLE_EQ(summary.overall.mean_goodput_bps, goodput_all / 4.0);
}

// ---- owning-link NetworkSim -------------------------------------------------

TEST(Fleet, PointsOwnTheirLinksAndOutliveTheFactoryScope) {
  // Build the sim inside a scope that would have destroyed a shared link;
  // the owning ctor keeps the link alive inside the NetworkSim.
  std::unique_ptr<net::NetworkSim> sim;
  {
    core::FleetAxes axes = small_axes();
    const core::FleetPoint p = core::Fleet(axes).expand().front();
    sim = core::build_fleet_point(p);
  }
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(sim->node_count(), 2u);
  const net::NetworkReport rep = sim->run(0.25);
  EXPECT_EQ(rep.nodes.size(), 2u);
  EXPECT_GT(rep.aggregate_goodput_bps, 0.0);
}

}  // namespace
}  // namespace iob
