// Unit tests for src/phy: EQS-HBC channel physics, RF/NFMI baselines,
// noise, modulation BER, and the security leakage models.

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "phy/eqs_channel.hpp"
#include "phy/leakage.hpp"
#include "phy/modulation.hpp"
#include "phy/nfmi_channel.hpp"
#include "phy/noise.hpp"
#include "phy/rf_channel.hpp"

namespace iob::phy {
namespace {

using namespace iob::units;

// ---- EqsChannel -------------------------------------------------------------

TEST(EqsChannel, FlatBandGainMatchesCapacitanceRatios) {
  EqsChannelParams p;
  EqsChannel ch(p);
  const double forward = p.c_couple_f / (p.c_couple_f + p.c_load_f);
  const double ret = p.c_return_f / (p.c_return_f + p.c_body_f);
  EXPECT_NEAR(ch.flat_band_gain(), forward * ret, 1e-15);
}

TEST(EqsChannel, FlatBandLossIsTensOfDb) {
  // Measured capacitive EQS-HBC flat-band losses sit around -55..-75 dB.
  EqsChannel ch;
  EXPECT_LT(ch.flat_band_gain_db(), -50.0);
  EXPECT_GT(ch.flat_band_gain_db(), -80.0);
}

TEST(EqsChannel, HighZResponseIsFlatAcrossEqsBand) {
  // Key Maity et al. result: with high-Z termination the band
  // 100 kHz..30 MHz is flat to within a dB.
  EqsChannel ch;
  const double g1 = ch.gain_db(100.0 * kHz, 1.0);
  const double g2 = ch.gain_db(1.0 * MHz, 1.0);
  const double g3 = ch.gain_db(30.0 * MHz, 1.0);
  EXPECT_NEAR(g1, g2, 1.0);
  EXPECT_NEAR(g2, g3, 1.0);
}

TEST(EqsChannel, FiftyOhmTerminationRisesWithFrequency) {
  // The classic 50-ohm measurement underestimates the channel: gain climbs
  // ~20 dB/decade instead of being flat.
  EqsChannel ch;
  const double g_100k = ch.gain_db(100.0 * kHz, 1.0, Termination::kFiftyOhm);
  const double g_1m = ch.gain_db(1.0 * MHz, 1.0, Termination::kFiftyOhm);
  const double g_10m = ch.gain_db(10.0 * MHz, 1.0, Termination::kFiftyOhm);
  EXPECT_NEAR(g_1m - g_100k, 20.0, 1.5);
  EXPECT_NEAR(g_10m - g_1m, 20.0, 1.5);
}

TEST(EqsChannel, FiftyOhmMuchWorseThanHighZInBand) {
  EqsChannel ch;
  EXPECT_LT(ch.gain_db(1.0 * MHz, 1.0, Termination::kFiftyOhm),
            ch.gain_db(1.0 * MHz, 1.0, Termination::kHighImpedance) - 20.0);
}

TEST(EqsChannel, DistanceLossIsMild) {
  // "Body as a wire": whole-body path costs only a few dB.
  EqsChannel ch;
  const double near = ch.gain_db(1.0 * MHz, 0.1);
  const double far = ch.gain_db(1.0 * MHz, 1.8);  // head to ankle
  EXPECT_LT(near - far, 4.0);
  EXPECT_GT(near - far, 0.0);  // but monotone
}

TEST(EqsChannel, CornerFrequencyBelowBand) {
  EqsChannel ch;
  EXPECT_LT(ch.corner_frequency_hz(), 100.0 * kHz);
}

TEST(EqsChannel, EqsRegimeBoundary) {
  EqsChannel ch;
  EXPECT_TRUE(ch.in_eqs_regime(10.0 * MHz));
  EXPECT_TRUE(ch.in_eqs_regime(30.0 * MHz));
  EXPECT_FALSE(ch.in_eqs_regime(100.0 * MHz));
}

TEST(EqsChannel, RejectsBadParams) {
  EqsChannelParams p;
  p.c_body_f = 0.0;
  EXPECT_THROW(EqsChannel{p}, std::invalid_argument);
  EqsChannel ch;
  EXPECT_THROW((void)ch.voltage_gain(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)ch.voltage_gain(1e6, -1.0), std::invalid_argument);
}

// ---- RfChannel --------------------------------------------------------------

TEST(RfChannel, FriisAtOneMeter24GHz) {
  // (4*pi*1m/0.125m)^2 ~ 40.2 dB.
  RfChannel ch;
  EXPECT_NEAR(ch.free_space_path_loss_db(1.0), 40.2, 0.5);
}

TEST(RfChannel, FreeSpaceSlopeIs20DbPerDecade) {
  RfChannel ch;
  EXPECT_NEAR(ch.free_space_path_loss_db(10.0) - ch.free_space_path_loss_db(1.0), 20.0, 1e-9);
}

TEST(RfChannel, OnBodyLossExceedsFreeSpace) {
  RfChannel ch;
  for (const double d : {0.5, 1.0, 1.5, 2.0}) {
    EXPECT_GT(ch.on_body_path_loss_db(d), ch.free_space_path_loss_db(d));
  }
}

TEST(RfChannel, ReceivedPowerFollowsLoss) {
  const double rx = RfChannel::received_power_w(1e-3, 40.0);
  EXPECT_NEAR(rx, 1e-7, 1e-12);
}

// ---- NfmiChannel ------------------------------------------------------------

TEST(NfmiChannel, NearFieldRollsOff60DbPerDecade) {
  NfmiChannel ch;
  // Both distances inside the near field at 10.6 MHz (boundary ~4.5 m).
  EXPECT_NEAR(ch.gain_db(0.1) - ch.gain_db(1.0), 60.0, 1e-6);
}

TEST(NfmiChannel, BoundaryMatchesLambdaOver2Pi) {
  NfmiChannel ch;
  EXPECT_NEAR(ch.near_field_boundary_m(), 299792458.0 / 10.6e6 / (2 * M_PI), 1e-6);
}

TEST(NfmiChannel, RadiativeRegimeSlopeBeyondBoundary) {
  NfmiChannel ch;
  const double b = ch.near_field_boundary_m();
  EXPECT_NEAR(ch.gain_db(2.0 * b) - ch.gain_db(20.0 * b), 20.0, 1e-6);
}

// ---- Noise ------------------------------------------------------------------

TEST(Noise, ThermalFloorMinus174DbmPerHz) {
  EXPECT_NEAR(thermal_noise_dbm(1.0), -174.0, 0.2);
  EXPECT_NEAR(thermal_noise_dbm(1e6), -114.0, 0.2);
}

TEST(Noise, VoltageNoiseScalesWithSqrtRB) {
  const double v1 = thermal_noise_voltage_v(50.0, 1e6);
  const double v2 = thermal_noise_voltage_v(200.0, 1e6);
  EXPECT_NEAR(v2 / v1, 2.0, 1e-9);
  const double v3 = thermal_noise_voltage_v(50.0, 4e6);
  EXPECT_NEAR(v3 / v1, 2.0, 1e-9);
}

TEST(Noise, ReceiverSnr) {
  Receiver rx{1e6, 10.0, 290.0};
  const double noise = rx.noise_power_w();
  EXPECT_NEAR(units::to_dbm(noise), -104.0, 0.3);  // -114 dBm + 10 dB NF
  EXPECT_NEAR(rx.snr_db(noise * 100.0), 20.0, 1e-9);
}

// ---- Modulation -------------------------------------------------------------

TEST(Modulation, QFunctionAnchors) {
  EXPECT_NEAR(q_function(0.0), 0.5, 1e-12);
  EXPECT_NEAR(q_function(1.0), 0.1587, 1e-3);
  EXPECT_NEAR(q_function(3.0), 1.35e-3, 1e-4);
}

TEST(Modulation, BerDecreasesWithSnr) {
  for (const auto mod : {Modulation::kOok, Modulation::kBpsk, Modulation::kGfsk}) {
    double prev = 1.0;
    for (double snr = 0.1; snr < 1000.0; snr *= 2.0) {
      const double ber = bit_error_rate(mod, snr);
      EXPECT_LE(ber, prev);
      prev = ber;
    }
  }
}

TEST(Modulation, BpskBeatsOokBeatsNone) {
  // At equal SNR, coherent BPSK outperforms OOK.
  const double snr = 10.0;
  EXPECT_LT(bit_error_rate(Modulation::kBpsk, snr), bit_error_rate(Modulation::kOok, snr));
}

TEST(Modulation, RequiredSnrInvertsBlack) {
  for (const auto mod : {Modulation::kOok, Modulation::kBpsk, Modulation::kGfsk}) {
    for (const double target : {1e-3, 1e-5, 1e-7}) {
      const double snr = required_snr(mod, target);
      EXPECT_NEAR(bit_error_rate(mod, snr), target, target * 0.01);
    }
  }
}

TEST(Modulation, PacketSuccessProbability) {
  EXPECT_NEAR(packet_success_probability(0.0, 1000), 1.0, 1e-12);
  EXPECT_NEAR(packet_success_probability(1e-3, 1000), std::pow(1.0 - 1e-3, 1000), 1e-9);
  EXPECT_DOUBLE_EQ(packet_success_probability(1.0, 10), 0.0);
}

// ---- Leakage / physical security ---------------------------------------------

TEST(Leakage, EqsSignalCollapsesOffBody) {
  EqsLeakage leak;
  const double at_contact = leak.attacker_signal_v(0.0);
  const double at_1m = leak.attacker_signal_v(1.0);
  const double at_5m = leak.attacker_signal_v(5.0);
  EXPECT_GT(at_contact / at_1m, 100.0);  // >40 dB collapse within a meter
  EXPECT_GT(at_1m, at_5m);
}

TEST(Leakage, EqsInterceptionIsPersonalBubble) {
  // Das et al. [15]: EQS-HBC is undetectable beyond ~0.1-0.15 m from the
  // body. Our model must land in cm class, far below 1 m.
  EqsLeakage leak;
  const double range = leak.interception_range_m();
  EXPECT_LT(range, 0.5);
  EXPECT_GT(range, 0.0);  // contact-range attack still "works"
}

TEST(Leakage, BleInterceptionIsRoomScaleOrWorse) {
  // Paper Sec. III-B: RF radiates 5-10 m (and a sensitive sniffer reaches
  // further in free space).
  RfLeakage leak;
  EXPECT_GT(leak.interception_range_m(), 5.0);
}

TEST(Leakage, SecurityOrderingEqsBestNfmiMiddleRfWorst) {
  EqsLeakage eqs;
  NfmiLeakage nfmi;
  RfLeakage rf;
  const double r_eqs = eqs.interception_range_m();
  const double r_nfmi = nfmi.interception_range_m();
  const double r_rf = rf.interception_range_m();
  EXPECT_LT(r_eqs, r_nfmi);
  EXPECT_LT(r_nfmi, r_rf);
}

TEST(Leakage, AttackerSnrMonotoneInDistance) {
  EqsLeakage leak;
  double prev = 1e9;
  for (double d = 0.01; d < 10.0; d *= 2.0) {
    const double snr = leak.attacker_snr_db(d);
    EXPECT_LT(snr, prev);
    prev = snr;
  }
}

}  // namespace
}  // namespace iob::phy
