// Property-based tests: parameterized sweeps (TEST_P) asserting invariants
// across wide input grids rather than single examples — codec round-trips
// over content classes, MAC conservation over traffic shapes, optimizer
// dominance over cost grids, channel monotonicities over parameter ranges.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "comm/tdma.hpp"
#include "comm/wir_link.hpp"
#include "common/units.hpp"
#include "energy/battery.hpp"
#include "energy/lifetime.hpp"
#include "isa/adpcm.hpp"
#include "isa/bio_codec.hpp"
#include "isa/fft.hpp"
#include "isa/huffman.hpp"
#include "isa/metrics.hpp"
#include "isa/mjpeg.hpp"
#include "nn/model_zoo.hpp"
#include "nn/quantize.hpp"
#include "partition/partitioner.hpp"
#include "phy/eqs_channel.hpp"
#include "phy/modulation.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace iob {
namespace {

using namespace iob::units;

// ---- TDMA conservation over (payload, node count) ------------------------------

class TdmaConservation : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(TdmaConservation, DeliveredBytesEqualHubIngestAndNothingIsLost) {
  const auto [payload, n_nodes] = GetParam();
  sim::Simulator sim(1000 + payload + static_cast<unsigned>(n_nodes));
  comm::WiRLink wir;
  comm::TdmaBus bus(sim, wir, comm::TdmaConfig{});

  std::vector<comm::NodeId> ids;
  for (int i = 0; i < n_nodes; ++i) ids.push_back(bus.add_node("n" + std::to_string(i)));

  const int frames_per_node = 30;
  std::uint64_t hub_bytes = 0;
  bus.set_delivery_handler(
      [&](const comm::Frame& f, sim::Time) { hub_bytes += f.payload_bytes; });
  for (const auto id : ids) {
    for (int k = 0; k < frames_per_node; ++k) {
      comm::Frame f;
      f.payload_bytes = payload;
      bus.enqueue(id, f);
    }
  }
  bus.start();
  sim.run_until(5.0);
  bus.stop();

  const std::uint64_t expected =
      static_cast<std::uint64_t>(payload) * frames_per_node * static_cast<unsigned>(n_nodes);
  EXPECT_EQ(hub_bytes, expected);
  EXPECT_EQ(bus.stats().total_bytes_delivered(), expected);
  for (const auto& ns : bus.stats().nodes) {
    EXPECT_EQ(ns.frames_dropped, 0u);
    EXPECT_EQ(ns.queue_overflows, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(PayloadNodeGrid, TdmaConservation,
                         ::testing::Combine(::testing::Values(20u, 100u, 240u, 400u),
                                            ::testing::Values(1, 3, 8)));

// ---- Huffman round-trip over random distributions --------------------------------

class HuffmanProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HuffmanProperty, RoundTripAndNearEntropyForRandomDistributions) {
  sim::Rng rng(GetParam());
  const std::size_t alphabet = 1 + static_cast<std::size_t>(rng.uniform_int(1, 255));
  std::vector<std::uint64_t> freqs(alphabet, 0);
  // Mix of zero, rare and common symbols.
  for (auto& f : freqs) {
    f = rng.bernoulli(0.3) ? 0 : static_cast<std::uint64_t>(rng.uniform_int(1, 10000));
  }
  if (std::none_of(freqs.begin(), freqs.end(), [](auto f) { return f > 0; })) freqs[0] = 1;

  const isa::HuffmanCodec codec = isa::HuffmanCodec::from_frequencies(freqs);
  // Near-optimality.
  EXPECT_LT(codec.expected_length_bits(freqs), isa::HuffmanCodec::entropy_bits(freqs) + 1.0);

  // Round-trip a random message drawn from the distribution.
  std::vector<unsigned> message;
  for (unsigned s = 0; s < freqs.size(); ++s) {
    if (freqs[s] > 0) {
      for (int k = 0; k < 3; ++k) message.push_back(s);
    }
  }
  isa::BitWriter w;
  for (const auto s : message) codec.encode(s, w);
  const auto bytes = w.finish();
  isa::BitReader r(bytes);
  for (const auto s : message) ASSERT_EQ(codec.decode(r), s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HuffmanProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u, 88u));

// ---- MJPEG round-trip across frame sizes and content -------------------------------

class MjpegSizes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MjpegSizes, DecodesToSameDimensionsWithReasonablePsnr) {
  const auto [w, h] = GetParam();
  sim::Rng rng(static_cast<unsigned>(w * 1000 + h));
  isa::GrayFrame f;
  f.width = w;
  f.height = h;
  f.pixels.resize(static_cast<std::size_t>(w) * h);
  for (auto& p : f.pixels) p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));

  // Worst case content (white noise): round-trip must still hold and the
  // codec must not explode the size by more than the entropy bound allows.
  isa::MjpegCodec codec(75);
  const isa::MjpegEncoded enc = codec.encode(f);
  const isa::GrayFrame back = codec.decode(enc);
  EXPECT_EQ(back.width, w);
  EXPECT_EQ(back.height, h);
  EXPECT_GT(isa::psnr_db(f, back), 10.0);  // noise is hard; just sane
  // Worst-case expansion is bounded: fixed 260 B table header plus at most
  // ~3x entropy-coded payload on incompressible content.
  EXPECT_LT(enc.size_bytes(), f.size_bytes() * 3 + 280);
}

INSTANTIATE_TEST_SUITE_P(SizeGrid, MjpegSizes,
                         ::testing::Values(std::make_tuple(8, 8), std::make_tuple(16, 8),
                                           std::make_tuple(64, 48), std::make_tuple(128, 64)));

// ---- ADPCM across tone frequencies and amplitudes -----------------------------------

class AdpcmTones : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(AdpcmTones, ReconstructionSnrStaysUsable) {
  const auto [freq, amp] = GetParam();
  std::vector<std::int16_t> pcm(8000);
  for (std::size_t i = 0; i < pcm.size(); ++i) {
    pcm[i] = static_cast<std::int16_t>(
        amp * 32767.0 * std::sin(2.0 * M_PI * freq * static_cast<double>(i) / 16000.0));
  }
  EXPECT_GT(isa::AdpcmCodec::reconstruction_snr_db(pcm), 10.0)
      << freq << " Hz @ " << amp;
  EXPECT_EQ(isa::AdpcmCodec::decode(isa::AdpcmCodec::encode(pcm)).size(), pcm.size());
}

INSTANTIATE_TEST_SUITE_P(ToneGrid, AdpcmTones,
                         ::testing::Combine(::testing::Values(110.0, 440.0, 1760.0),
                                            ::testing::Values(0.1, 0.5, 0.9)));

// ---- BioCodec lossless across signal classes ------------------------------------------

class BioCodecSignals : public ::testing::TestWithParam<int> {};

TEST_P(BioCodecSignals, AlwaysLossless) {
  sim::Rng rng(500 + static_cast<unsigned>(GetParam()));
  std::vector<std::int16_t> samples(3000);
  switch (GetParam()) {
    case 0:  // random walk
    {
      std::int32_t v = 0;
      for (auto& s : samples) {
        v = std::clamp<std::int32_t>(v + static_cast<std::int32_t>(rng.uniform_int(-90, 90)),
                                     -32768, 32767);
        s = static_cast<std::int16_t>(v);
      }
      break;
    }
    case 1:  // pure sine
      for (std::size_t i = 0; i < samples.size(); ++i) {
        samples[i] = static_cast<std::int16_t>(20000.0 * std::sin(i * 0.02));
      }
      break;
    case 2:  // constant
      std::fill(samples.begin(), samples.end(), static_cast<std::int16_t>(-1234));
      break;
    case 3:  // white noise, full scale
      for (auto& s : samples) s = static_cast<std::int16_t>(rng.uniform_int(-32768, 32767));
      break;
    case 4:  // alternating extremes
      for (std::size_t i = 0; i < samples.size(); ++i) {
        samples[i] = (i % 2) ? std::numeric_limits<std::int16_t>::max()
                             : std::numeric_limits<std::int16_t>::min();
      }
      break;
    default: break;
  }
  for (const bool huffman : {false, true}) {
    isa::BioCodec codec(huffman);
    EXPECT_EQ(codec.decode(codec.encode(samples)), samples) << "class " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(SignalClasses, BioCodecSignals, ::testing::Range(0, 5));

// ---- Partitioner dominance and monotonicity over link-energy grid ---------------------

class PartitionEnergyGrid : public ::testing::TestWithParam<double> {};

TEST_P(PartitionEnergyGrid, OptimizerNeverWorseThanEitherPole) {
  const double e_bit = GetParam();
  for (auto* make : {+[] { return nn::make_kws_dscnn(); }, +[] { return nn::make_ecg_cnn1d(); }}) {
    const nn::Model m = make();
    partition::CostModel cm;
    cm.leaf_hub = {"grid", 1e6, e_bit, 40e-12, 1e-4};
    cm.hub_cloud = partition::CostModel::default_uplink();
    const partition::Partitioner part(m, cm);
    const auto best = part.optimize(partition::Objective::kLeafEnergy);
    EXPECT_LE(best.leaf_energy_j(), part.all_on_leaf().leaf_energy_j() * (1 + 1e-12));
    EXPECT_LE(best.leaf_energy_j(), part.full_offload().leaf_energy_j() * (1 + 1e-12));
  }
}

TEST_P(PartitionEnergyGrid, OffloadEnergyLinearInLinkEnergy) {
  const double e_bit = GetParam();
  const nn::Model m = nn::make_ecg_cnn1d();
  partition::CostModel cm;
  cm.leaf_hub = {"grid", 1e6, e_bit, 40e-12, 1e-4};
  cm.hub_cloud = partition::CostModel::default_uplink();
  const partition::Partitioner part(m, cm);
  const double bits =
      static_cast<double>(m.input_bytes_i8() + nn::kActivationHeaderBytes) * 8.0;
  EXPECT_NEAR(part.full_offload().leaf_tx_j, bits * e_bit, bits * e_bit * 1e-12);
}

INSTANTIATE_TEST_SUITE_P(LinkEnergies, PartitionEnergyGrid,
                         ::testing::Values(10e-12, 100e-12, 1e-9, 10e-9, 100e-9));

// ---- EQS channel monotonicities over parameter grid -------------------------------------

class EqsParamGrid : public ::testing::TestWithParam<double> {};

TEST_P(EqsParamGrid, GainMonotoneInReturnCapacitanceAndBounded) {
  const double c_ret_pf = GetParam();
  phy::EqsChannelParams smaller;
  smaller.c_return_f = c_ret_pf * pF;
  phy::EqsChannelParams larger = smaller;
  larger.c_return_f = 2.0 * c_ret_pf * pF;

  const phy::EqsChannel ch_small(smaller), ch_large(larger);
  EXPECT_LT(ch_small.flat_band_gain(), ch_large.flat_band_gain());
  EXPECT_GT(ch_small.flat_band_gain(), 0.0);
  EXPECT_LT(ch_large.flat_band_gain(), 1.0);  // passive channel never amplifies
  // Frequency response stays monotone below the corner region.
  EXPECT_LE(ch_small.voltage_gain(1.0 * kHz, 1.0), ch_small.voltage_gain(1.0 * MHz, 1.0));
}

INSTANTIATE_TEST_SUITE_P(ReturnCaps, EqsParamGrid, ::testing::Values(0.05, 0.1, 0.3, 1.0, 3.0));

// ---- Battery life and classification monotone in power -----------------------------------

class PowerGrid : public ::testing::TestWithParam<double> {};

TEST_P(PowerGrid, LifeMonotoneAndClassifierConsistent) {
  const double p = GetParam();
  const energy::Battery b = energy::Battery::coin_cell_1000mah();
  const double life = energy::battery_life_s(b, p);
  const double life_double = energy::battery_life_s(b, 2.0 * p);
  EXPECT_NEAR(life, 2.0 * life_double, life * 1e-9);  // exact inverse scaling
  // Classification is monotone: doubling power never improves the bucket.
  EXPECT_GE(static_cast<int>(energy::classify(life)),
            static_cast<int>(energy::classify(life_double)));
}

INSTANTIATE_TEST_SUITE_P(Powers, PowerGrid,
                         ::testing::Values(1e-6, 10e-6, 100e-6, 1e-3, 10e-3, 100e-3, 1.0));

// ---- FFT round-trip across power-of-two sizes ---------------------------------------------

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, InverseRecoversSignal) {
  const std::size_t n = GetParam();
  sim::Rng rng(n);
  std::vector<isa::Complex> x(n);
  for (auto& v : x) v = isa::Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  const auto original = x;
  isa::fft(x);
  isa::ifft(x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(x[i] - original[i]), 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Pow2, FftSizes, ::testing::Values(1u, 2u, 4u, 16u, 64u, 256u, 1024u));

// ---- Quantization round-trip over random tensors ------------------------------------------

class QuantSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantSeeds, ErrorAlwaysWithinHalfLsb) {
  sim::Rng rng(GetParam());
  nn::Tensor t(nn::Shape{257});
  const double scale = std::pow(10.0, rng.uniform(-3.0, 3.0));
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-scale, scale));
  }
  const nn::QuantizedTensor q = nn::quantize(t);
  EXPECT_LE(t.max_abs_diff(nn::dequantize(q)), nn::quant_error_bound(q.params) * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantSeeds, ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// ---- required_snr monotone in target BER ----------------------------------------------------

class BerTargets : public ::testing::TestWithParam<double> {};

TEST_P(BerTargets, TighterTargetsNeedMoreSnr) {
  const double target = GetParam();
  for (const auto mod :
       {phy::Modulation::kOok, phy::Modulation::kBpsk, phy::Modulation::kGfsk}) {
    EXPECT_GT(phy::required_snr(mod, target / 10.0), phy::required_snr(mod, target));
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, BerTargets, ::testing::Values(1e-2, 1e-3, 1e-5, 1e-7));

// ---- Model split-execution equivalence across all models -------------------------------------

class SplitModels : public ::testing::TestWithParam<int> {};

TEST_P(SplitModels, EverySplitReproducesMonolithicOutput) {
  const nn::Model m = GetParam() == 0   ? nn::make_kws_dscnn()
                      : GetParam() == 1 ? nn::make_ecg_cnn1d()
                                        : nn::make_vww_micronet();
  nn::Tensor x(m.input_shape());
  for (std::int64_t i = 0; i < x.size(); ++i) x[i] = std::sin(static_cast<float>(i) * 0.013f);
  const nn::Tensor full = m.forward(x);
  // Check a spread of split points (all of them for small models).
  const std::size_t step = m.layer_count() > 12 ? 4 : 1;
  for (std::size_t s = 0; s <= m.layer_count(); s += step) {
    const nn::Tensor head = m.forward_range(x, 0, s);
    const nn::Tensor out = m.forward_range(head, s, m.layer_count());
    EXPECT_LT(out.max_abs_diff(full), 1e-4) << "split " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Models, SplitModels, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace iob
