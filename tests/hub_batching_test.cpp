// Tests for the hub's superframe-batched inference engine: batch=1
// equivalence with the legacy per-frame path (bit-identical energy), a
// hand-computed weight-energy split for a 2-session batch, the analytic
// amortization curve, energy-per-inference monotonicity vs concurrency,
// and byte-identical fleet grids at 1/2/8 threads with batching enabled.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "comm/tdma.hpp"
#include "comm/wir_link.hpp"
#include "core/explorer.hpp"
#include "core/fleet.hpp"
#include "core/sweep_runner.hpp"
#include "net/network_sim.hpp"
#include "sim/simulator.hpp"

namespace iob {
namespace {

net::NodeConfig ecg_node() {
  net::NodeConfig n;
  n.name = "ecg-patch";
  n.stream = "ecg";
  n.sense_power_w = 10e-6;
  n.isa_power_w = 2e-6;
  n.output_rate_bps = 6000.0;
  n.frame_bytes = 240;
  return n;
}

net::SessionConfig kws_session(std::string stream) {
  net::SessionConfig s;
  s.stream = std::move(stream);
  s.macs_per_inference = 2'500'000;
  s.bytes_per_inference = 240;  // one inference per delivered frame
  s.model = "kws-dscnn";
  s.weight_bytes = 24'000;  // int8 weight footprint streamed per pass
  s.forward_to_cloud = true;
  return s;
}

// ---- batch=1 equivalence ----------------------------------------------------

net::NetworkReport run_single_stream(unsigned batch_window, net::SessionStats& out_stats,
                                     std::uint64_t& out_frames) {
  comm::WiRLink wir;
  net::NetworkConfig cfg;
  cfg.seed = 11;
  cfg.hub.batch_window = batch_window;
  net::NetworkSim net(wir, cfg);
  net.add_node(ecg_node());
  net.add_session(kws_session("ecg"));
  const net::NetworkReport report = net.run(30.0);
  out_stats = net.hub().session("ecg");
  out_frames = net.hub().frames_received();
  return report;
}

TEST(HubBatching, BatchWindow1BitIdenticalToPerFramePath) {
  // One 6 kb/s stream emits a 240 B frame every 0.32 s, far slower than the
  // ~1.5 ms superframe, so every batched flush folds at most one inference:
  // the staged path must reproduce the per-frame path exactly.
  net::SessionStats legacy, batched;
  std::uint64_t legacy_frames = 0, batched_frames = 0;
  const net::NetworkReport r0 = run_single_stream(0, legacy, legacy_frames);
  const net::NetworkReport r1 = run_single_stream(1, batched, batched_frames);

  ASSERT_GT(legacy.inferences, 50u);
  EXPECT_EQ(legacy_frames, batched_frames);
  EXPECT_EQ(legacy.inferences, batched.inferences);
  EXPECT_EQ(legacy.bytes_in, batched.bytes_in);
  // Bit-identical doubles, not just approximately equal.
  EXPECT_EQ(legacy.compute_energy_j, batched.compute_energy_j);
  EXPECT_EQ(legacy.uplink_energy_j, batched.uplink_energy_j);
  EXPECT_EQ(r0.hub_power_w, r1.hub_power_w);
  EXPECT_EQ(r0.nodes[0].frames_delivered, r1.nodes[0].frames_delivered);

  // The batched run attributes everything through the batched engine and
  // records the staging delay; the legacy run never does.
  EXPECT_EQ(batched.batched_inferences, batched.inferences);
  EXPECT_EQ(batched.batched_passes, batched.inferences);  // one inference per flush
  EXPECT_EQ(batched.batched_compute_energy_j, batched.compute_energy_j);
  EXPECT_EQ(legacy.batched_inferences, 0u);
  EXPECT_EQ(legacy.queued_latency_s.count(), 0u);
  EXPECT_EQ(batched.queued_latency_s.count(), batched_frames);
  EXPECT_GE(batched.queued_latency_s.min(), 0.0);
}

TEST(HubBatching, LegacyDefaultsBitIdenticalToSeedEnergyModel) {
  // weight_bytes defaults to 0: the per-frame path must charge exactly the
  // historical macs-only energy (x + 0.0 is exact).
  comm::WiRLink wir;
  net::NetworkConfig cfg;
  cfg.seed = 7;
  net::NetworkSim net(wir, cfg);
  net.add_node(ecg_node());
  net::SessionConfig s;
  s.stream = "ecg";
  s.macs_per_inference = 185'000;
  s.bytes_per_inference = 720;
  net.add_session(s);
  net.run(30.0);
  const net::SessionStats& st = net.hub().session("ecg");
  ASSERT_GT(st.inferences, 20u);
  double expected = 0.0;
  for (std::uint64_t i = 0; i < st.inferences; ++i) {
    expected += static_cast<double>(s.macs_per_inference) * net.hub().config().energy_per_mac_j;
  }
  EXPECT_EQ(st.compute_energy_j, expected);
}

// ---- hand-computed 2-session batch ------------------------------------------

TEST(HubBatching, TwoSessionBatchSplitsWeightEnergyByShare) {
  sim::Simulator sim(1);
  comm::WiRLink wir;
  comm::TdmaBus bus(sim, wir, {});
  net::HubConfig hc;
  hc.batch_window = 1;
  net::Hub hub(sim, bus, hc);

  const comm::NodeId a = bus.add_node("a");
  const comm::NodeId b = bus.add_node("b");
  net::SessionConfig sa;
  sa.stream = "a";
  sa.macs_per_inference = 1'000'000;
  sa.bytes_per_inference = 240;
  sa.model = "m";
  sa.weight_bytes = 20'000;
  net::SessionConfig sb = sa;
  sb.stream = "b";
  sb.macs_per_inference = 3'000'000;
  hub.add_session(sa);
  hub.add_session(sb);

  comm::Frame f;
  f.payload_bytes = 240;
  f.created_s = 0.0;
  f.stream = "a";
  ASSERT_TRUE(bus.enqueue(a, f));
  f.stream = "b";
  ASSERT_TRUE(bus.enqueue(b, f));

  bus.start(0.0);
  sim.run_until(0.01);
  bus.stop();

  // Both frames deliver in the first superframe (one slot each), so the
  // boundary flush folds them into one batch of 2 sharing model "m":
  //   e_i = macs_i * e_mac + (weight_bytes * e_wb) / 2.
  ASSERT_EQ(hub.frames_received(), 2u);
  const net::SessionStats& sta = hub.session("a");
  const net::SessionStats& stb = hub.session("b");
  ASSERT_EQ(sta.inferences, 1u);
  ASSERT_EQ(stb.inferences, 1u);
  EXPECT_EQ(hub.batched_passes(), 1u);
  EXPECT_EQ(sta.batched_passes, 1u);
  EXPECT_EQ(stb.batched_passes, 1u);

  const double e_mac = hc.energy_per_mac_j;
  const double weight_j = 20'000.0 * hc.energy_per_weight_byte_j;
  EXPECT_DOUBLE_EQ(sta.compute_energy_j, 1'000'000.0 * e_mac + weight_j / 2.0);
  EXPECT_DOUBLE_EQ(stb.compute_energy_j, 3'000'000.0 * e_mac + weight_j / 2.0);
  // The pass total carries the weight energy exactly once.
  EXPECT_DOUBLE_EQ(sta.compute_energy_j + stb.compute_energy_j,
                   4'000'000.0 * e_mac + weight_j);
  EXPECT_EQ(sta.queued_latency_s.count(), 1u);
  EXPECT_GT(sta.queued_latency_s.mean(), 0.0);
}

TEST(HubBatching, FinalPartialWindowFlushesAtEndOfRun) {
  // A window far wider than the run means no superframe boundary ever
  // triggers a flush; NetworkSim::run's end-of-run flush_pending must fold
  // the whole run into one final batch so nothing staged goes unmeasured.
  auto run_with_window = [](unsigned window) {
    comm::WiRLink wir;
    net::NetworkConfig cfg;
    cfg.seed = 11;
    cfg.hub.batch_window = window;
    net::NetworkSim net(wir, cfg);
    net::NodeConfig n = ecg_node();
    n.output_rate_bps = 64e3;  // 30 ms frame period: ~33 frames in 1 s
    net.add_node(n);
    net.add_session(kws_session("ecg"));
    net.run(1.0);
    return net.hub().session("ecg");
  };
  const net::SessionStats legacy = run_with_window(0);
  const net::SessionStats wide = run_with_window(1'000'000);
  ASSERT_GT(legacy.inferences, 20u);
  EXPECT_EQ(wide.inferences, legacy.inferences);
  EXPECT_EQ(wide.batched_inferences, wide.inferences);
  EXPECT_EQ(wide.batched_passes, 1u);  // everything folded into one final pass
  EXPECT_EQ(wide.queued_latency_s.count(), legacy.inferences);
  // One pass streams the weights once; the per-frame path paid them per
  // inference, so the batched total must be strictly cheaper here.
  EXPECT_LT(wide.compute_energy_j, legacy.compute_energy_j);
  // The final superframe delivers frames stamped past the run horizon; the
  // end-of-run flush must clamp their wait at zero, never go negative.
  EXPECT_GE(wide.queued_latency_s.min(), 0.0);
}

TEST(HubBatching, EndOfRunFlushNeverRecordsNegativeQueuedLatency) {
  // Repro shape for the clamp: a wide network whose superframe stretches
  // far past the run horizon, so late-stamped deliveries hit the final
  // flush_pending with boundary < delivered_at.
  net::NetworkConfig cfg;
  cfg.seed = 3;
  cfg.hub.batch_window = 1'000'000;
  net::NetworkSim net(std::make_unique<comm::WiRLink>(), cfg);
  for (int i = 0; i < 24; ++i) {
    net::NodeConfig n;
    n.name = "audio-" + std::to_string(i);
    n.stream = n.name;
    n.output_rate_bps = 64e3;
    n.frame_bytes = 240;
    net.add_node(n);
    net.add_session(kws_session(n.stream));
  }
  net.run(1.0);
  for (int i = 0; i < 24; ++i) {
    const net::SessionStats& st = net.hub().session("audio-" + std::to_string(i));
    if (st.queued_latency_s.count() > 0) {
      EXPECT_GE(st.queued_latency_s.min(), 0.0) << "session " << i;
    }
  }
}

TEST(HubBatching, ReRegisteringASessionMovesItBetweenModelGroups) {
  // Re-adding a stream under a new model tag must leave it in exactly one
  // group: "a" and "b" share model "m", so a 2-frame superframe flushes one
  // batch of 2 (weight paid once), not a private pass plus a shared one.
  sim::Simulator sim(1);
  comm::WiRLink wir;
  comm::TdmaBus bus(sim, wir, {});
  net::HubConfig hc;
  hc.batch_window = 1;
  net::Hub hub(sim, bus, hc);

  const comm::NodeId a = bus.add_node("a");
  const comm::NodeId b = bus.add_node("b");
  net::SessionConfig sa;
  sa.stream = "a";
  sa.macs_per_inference = 1'000'000;
  sa.bytes_per_inference = 240;
  sa.weight_bytes = 20'000;
  hub.add_session(sa);  // private group "~stream:a" first...
  sa.model = "m";
  hub.add_session(sa);  // ...then re-registered into shared group "m"
  net::SessionConfig sb = sa;
  sb.stream = "b";
  hub.add_session(sb);

  comm::Frame f;
  f.payload_bytes = 240;
  f.created_s = 0.0;
  f.stream = "a";
  ASSERT_TRUE(bus.enqueue(a, f));
  f.stream = "b";
  ASSERT_TRUE(bus.enqueue(b, f));
  bus.start(0.0);
  sim.run_until(0.01);
  bus.stop();

  ASSERT_EQ(hub.frames_received(), 2u);
  EXPECT_EQ(hub.batched_passes(), 1u);
  const double weight_j = 20'000.0 * hc.energy_per_weight_byte_j;
  EXPECT_DOUBLE_EQ(hub.session("a").compute_energy_j,
                   1'000'000.0 * hc.energy_per_mac_j + weight_j / 2.0);
}

// ---- analytic curve ---------------------------------------------------------

TEST(HubBatching, AnalyticCurveAmortizesWeightCostOnly) {
  const auto curve = core::hub_batching_curve(2'500'000, 24'000, 5e-12, 50e-12, {1, 2, 4, 8});
  ASSERT_EQ(curve.size(), 4u);
  const double per_sample = 2'500'000.0 * 5e-12;
  const double weight = 24'000.0 * 50e-12;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(curve[i].weight_share_j, weight / curve[i].batch);
    EXPECT_DOUBLE_EQ(curve[i].energy_per_inference_j, per_sample + weight / curve[i].batch);
    if (i > 0) {
      EXPECT_LT(curve[i].energy_per_inference_j, curve[i - 1].energy_per_inference_j);
    }
  }
  EXPECT_THROW(core::hub_batching_curve(1, 1, 5e-12, 50e-12, {0}), std::invalid_argument);
}

// ---- energy/inference monotonicity ------------------------------------------

// Deliberately NOT a copy of bench/hub_batching.cpp's workload: this uses
// the HubConfig default weight-byte energy and a rounder weight footprint,
// so the monotonicity property is asserted independently of the bench's
// exact tuning rather than against one shared construction.
double energy_per_inference(int leaves, unsigned batch_window) {
  net::NetworkConfig cfg;
  cfg.seed = 42;
  cfg.hub.batch_window = batch_window;
  net::NetworkSim net(std::make_unique<comm::WiRLink>(), cfg);
  const double frame_period_s = 240.0 * 8.0 / 64e3;  // 30 ms
  for (int i = 0; i < leaves; ++i) {
    net::NodeConfig n;
    n.name = "audio-" + std::to_string(i);
    n.stream = n.name;
    n.sense_power_w = 150e-6;
    n.output_rate_bps = 64e3;
    n.frame_bytes = 240;
    // De-phased sensors: arrivals spread across superframes, so the staged
    // batch size tracks the window, not the population.
    n.phase_s = frame_period_s * static_cast<double>(i) / static_cast<double>(leaves);
    net.add_node(n);
    net.add_session(kws_session(n.stream));
  }
  net.run(3.0);
  double energy = 0.0;
  std::uint64_t inferences = 0;
  for (int i = 0; i < leaves; ++i) {
    const net::SessionStats& st = net.hub().session("audio-" + std::to_string(i));
    energy += st.compute_energy_j;
    inferences += st.inferences;
  }
  EXPECT_GT(inferences, 0u);
  return energy / static_cast<double>(inferences);
}

TEST(HubBatching, EnergyPerInferenceStrictlyDecreasesWithConcurrency) {
  // Fixed 8-superframe staging window: more concurrent KWS streams fold
  // into bigger batches, so the amortized weight share must shrink.
  double prev = energy_per_inference(1, 8);
  for (const int leaves : {2, 4, 8}) {
    const double cur = energy_per_inference(leaves, 8);
    EXPECT_LT(cur, prev) << leaves << " leaves";
    prev = cur;
  }
}

TEST(HubBatching, EnergyPerInferenceStrictlyDecreasesWithBatchWindowAt4Leaves) {
  // The acceptance shape of BENCH_hub_batching.json, asserted in-sim: at
  // >= 4 concurrent sessions, widening the batch window strictly reduces
  // hub compute energy per inference.
  double prev = energy_per_inference(4, 1);
  for (const unsigned window : {2u, 4u, 8u}) {
    const double cur = energy_per_inference(4, window);
    EXPECT_LT(cur, prev) << "window " << window;
    prev = cur;
  }
  // And batching never exceeds the per-frame path's cost.
  EXPECT_LT(energy_per_inference(4, 8), energy_per_inference(4, 0));
}

// ---- fleet determinism with batching ----------------------------------------

core::FleetAxes batched_axes() {
  core::NodeClassSpec audio;
  audio.base.name = "audio";
  audio.base.sense_power_w = 150e-6;
  audio.base.output_rate_bps = 64e3;
  audio.base.frame_bytes = 240;
  audio.share = 1;
  audio.session = kws_session("");  // stream tag overwritten per node
  core::NodeClassSpec bio;
  bio.base.name = "bio";
  bio.base.sense_power_w = 8e-6;
  bio.base.output_rate_bps = 5e3;
  bio.share = 1;

  core::FleetAxes axes;
  axes.node_counts = {2, 5};
  axes.mixes = {{"kws-mix", {audio, bio}}};
  axes.batch_windows = {1, 4};
  axes.seeds = {7};
  axes.duration_s = 0.5;
  return axes;
}

TEST(HubBatching, FleetGridByteIdenticalAt1_2_8ThreadsWithBatchingEnabled) {
  const core::Fleet fleet(batched_axes());
  const core::SweepRunner serial(1);
  const std::string reference = core::fleet_results_csv(fleet.run(serial));
  EXPECT_NE(reference.find('\n'), std::string::npos);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const core::SweepRunner runner(threads);
    EXPECT_EQ(reference, core::fleet_results_csv(fleet.run(runner)))
        << "thread count " << threads;
  }
}

// ---- adaptive batch flush (HubConfig::max_staged_batch) ---------------------

net::NetworkReport run_bursty(unsigned batch_window, std::uint64_t max_staged,
                              net::SessionStats& out_stats, std::uint64_t& out_passes) {
  comm::WiRLink wir;
  net::NetworkConfig cfg;
  cfg.seed = 13;
  cfg.hub.batch_window = batch_window;
  cfg.hub.max_staged_batch = max_staged;
  net::NetworkSim net(wir, cfg);
  // A fast stream: one inference per delivered frame, many frames per
  // batch window, so a fixed window stages deep batches.
  net::NodeConfig n = ecg_node();
  n.output_rate_bps = 120e3;
  net.add_node(n);
  net.add_session(kws_session("ecg"));
  const net::NetworkReport report = net.run(10.0);
  out_stats = net.hub().session("ecg");
  out_passes = net.hub().batched_passes();
  return report;
}

TEST(AdaptiveFlush, UnreachableTargetKeepsFixedWindowBitIdentical) {
  // The adaptive check fires only AT the target, so a target the staged
  // batch can never reach must leave the fixed-window run (target = 0)
  // bit-identical — the feature-off-equivalence claim.
  net::SessionStats fixed, unreachable;
  std::uint64_t fixed_passes = 0, unreachable_passes = 0;
  run_bursty(64, 0, fixed, fixed_passes);
  run_bursty(64, 1'000'000, unreachable, unreachable_passes);
  ASSERT_GT(fixed.inferences, 50u);
  EXPECT_EQ(fixed_passes, unreachable_passes);
  EXPECT_EQ(fixed.compute_energy_j, unreachable.compute_energy_j);
  EXPECT_EQ(fixed.queued_latency_s.mean(), unreachable.queued_latency_s.mean());
  EXPECT_EQ(fixed.queued_latency_s.max(), unreachable.queued_latency_s.max());
}

TEST(AdaptiveFlush, TargetBoundsQueuedLatencyUnderBurstyTraffic) {
  net::SessionStats fixed, adaptive;
  std::uint64_t fixed_passes = 0, adaptive_passes = 0;
  run_bursty(64, 0, fixed, fixed_passes);
  run_bursty(64, 4, adaptive, adaptive_passes);

  ASSERT_GT(fixed.inferences, 50u);
  // Same offered work either way; the adaptive target only re-times it.
  EXPECT_EQ(fixed.bytes_in, adaptive.bytes_in);
  EXPECT_EQ(fixed.inferences, adaptive.inferences);
  // Early flushes mean more, shallower passes and strictly less staging
  // delay than a 64-superframe window.
  EXPECT_GT(adaptive_passes, fixed_passes);
  ASSERT_GT(adaptive.queued_latency_s.count(), 0u);
  EXPECT_LT(adaptive.queued_latency_s.mean(), fixed.queued_latency_s.mean());
  EXPECT_LT(adaptive.queued_latency_s.max(), fixed.queued_latency_s.max());
  // Each adaptive pass still amortizes weights across its (smaller) batch.
  EXPECT_GT(adaptive.compute_energy_j, fixed.compute_energy_j);
  EXPECT_EQ(adaptive.batched_inferences, adaptive.inferences);
}

TEST(AdaptiveFlush, TargetOfOneDegeneratesToPerFrameEnergy) {
  // Flushing after every staged inference pays the full weight stream per
  // pass — exactly the per-frame ledger, with the staging latency ~0.
  net::SessionStats per_frame, adaptive;
  std::uint64_t pf_passes = 0, ad_passes = 0;
  run_bursty(0, 0, per_frame, pf_passes);
  run_bursty(64, 1, adaptive, ad_passes);
  ASSERT_GT(per_frame.inferences, 50u);
  EXPECT_EQ(per_frame.inferences, adaptive.inferences);
  EXPECT_EQ(per_frame.compute_energy_j, adaptive.compute_energy_j);
  ASSERT_GT(adaptive.queued_latency_s.count(), 0u);
  EXPECT_EQ(adaptive.queued_latency_s.max(), 0.0);
}

}  // namespace
}  // namespace iob
