// Unit + integration tests for src/net: body topology, the Fig. 2 device
// survey, and full node/hub/network DES runs with energy-conservation and
// determinism checks.

#include <gtest/gtest.h>

#include <cmath>

#include "comm/wir_link.hpp"
#include "common/units.hpp"
#include "energy/lifetime.hpp"
#include "net/device_library.hpp"
#include "net/network_sim.hpp"
#include "net/topology.hpp"

namespace iob::net {
namespace {

using namespace iob::units;

// ---- Topology -----------------------------------------------------------------

TEST(Topology, SymmetricDistances) {
  for (const auto a : {BodyLocation::kChest, BodyLocation::kWristLeft, BodyLocation::kHead}) {
    for (const auto b : {BodyLocation::kAnkleLeft, BodyLocation::kEarRight}) {
      EXPECT_DOUBLE_EQ(channel_length_m(a, b), channel_length_m(b, a));
    }
  }
}

TEST(Topology, SelfDistanceZero) {
  EXPECT_DOUBLE_EQ(channel_length_m(BodyLocation::kChest, BodyLocation::kChest), 0.0);
}

TEST(Topology, PlausibleBodyScales) {
  // Head to ankle is the longest on-body channel: 1.5-2.5 m surface length.
  const double d = channel_length_m(BodyLocation::kHead, BodyLocation::kAnkleLeft);
  EXPECT_GT(d, 1.5);
  EXPECT_LT(d, 2.5);
  // Ear to ear is short.
  EXPECT_LT(channel_length_m(BodyLocation::kEarLeft, BodyLocation::kEarRight), 0.5);
  // Channel length (surface) exceeds straight-line distance.
  EXPECT_GT(channel_length_m(BodyLocation::kChest, BodyLocation::kWristLeft),
            euclidean_m(BodyLocation::kChest, BodyLocation::kWristLeft));
}

TEST(Topology, PaperChannelLengthRange) {
  // Sec. III-B: "channel lengths for IoB are typically between 1-2 meters".
  // Hub at the chest: limb/head nodes must fall in or near that window.
  const auto hub = BodyLocation::kChest;
  for (const auto loc : {BodyLocation::kWristLeft, BodyLocation::kAnkleLeft, BodyLocation::kHead,
                         BodyLocation::kFingerRight}) {
    const double d = channel_length_m(hub, loc);
    EXPECT_GT(d, 0.3);
    EXPECT_LT(d, 2.0);
  }
}

// ---- Device library (Fig. 2) -----------------------------------------------------

TEST(DeviceLibrary, ElevenDeviceClasses) {
  EXPECT_EQ(device_survey().size(), 11u);
}

TEST(DeviceLibrary, BatteryLifeMatchesPaperBuckets) {
  // Every device's computed battery life must classify into the same bucket
  // Fig. 2 prints for it.
  for (const auto& d : device_survey()) {
    const auto cls = energy::classify(d.battery_life_s());
    const std::string label = energy::to_string(cls);
    EXPECT_EQ(label, d.paper_battery_label) << d.name;
  }
}

TEST(DeviceLibrary, EraSplitMatchesFigure) {
  int pre = 0, boom = 0;
  for (const auto& d : device_survey()) {
    (d.era == DeviceEra::kPre2024 ? pre : boom)++;
  }
  EXPECT_EQ(pre, 6);
  EXPECT_EQ(boom, 5);
}

TEST(DeviceLibrary, RingOutlastsHeadset) {
  // The figure's extremes: smart ring (all-week) vs MR headset (3-5 hr).
  EXPECT_GT(find_device("smart ring").battery_life_hours(), 24.0 * 6);
  EXPECT_LT(find_device("mixed reality headset").battery_life_hours(), 5.0);
  EXPECT_THROW(find_device("tricorder"), std::invalid_argument);
}

TEST(DeviceLibrary, SmartphoneUnder10Hours) {
  const double h = find_device("smartphone").battery_life_hours();
  EXPECT_LT(h, 10.0);
  EXPECT_GT(h, 5.0);
}

// ---- Node + NetworkSim (DES integration) --------------------------------------------

NodeConfig ecg_node() {
  NodeConfig n;
  n.name = "ecg-patch";
  n.location = BodyLocation::kChest;
  n.stream = "ecg";
  n.sense_power_w = 10.0 * uW;
  n.isa_power_w = 2.0 * uW;
  n.output_rate_bps = 6.0 * kbps;
  n.frame_bytes = 120;
  return n;
}

TEST(NetworkSim, SingleNodeStreamsToHub) {
  comm::WiRLink wir;
  NetworkSim net(wir, NetworkConfig{1, {}, {}, false});
  net.add_node(ecg_node());
  const NetworkReport report = net.run(30.0);

  ASSERT_EQ(report.nodes.size(), 1u);
  EXPECT_GT(report.nodes[0].frames_delivered, 100u);
  EXPECT_EQ(report.nodes[0].frames_dropped, 0u);
  // Hub ingest equals node delivery.
  EXPECT_EQ(net.hub().bytes_received(),
            report.nodes[0].frames_delivered * 120u);
}

TEST(NetworkSim, NodePowerIsSumOfComponents) {
  comm::WiRLink wir;
  NetworkSim net(wir, NetworkConfig{2, {}, {}, false});
  const auto idx = net.add_node(ecg_node());
  net.run(60.0);
  const Node& node = net.node(idx);
  // avg >= sense + isa (comm adds on top), and within a sane envelope.
  const double base = 12.0 * uW;
  EXPECT_GE(node.average_power_w(), base * 0.99);
  EXPECT_LT(node.average_power_w(), base + 50.0 * uW);
}

TEST(NetworkSim, EnergyConservation) {
  comm::WiRLink wir;
  NetworkSim net(wir, NetworkConfig{3, {}, {}, false});
  const auto idx = net.add_node(ecg_node());
  net.run(50.0);
  const Node& node = net.node(idx);
  // Battery drop equals consumed energy (no harvester configured).
  const double drop = node.battery().usable_energy_j() - node.battery().remaining_j();
  EXPECT_NEAR(drop, node.energy_consumed_j(), node.energy_consumed_j() * 1e-6 + 1e-12);
  EXPECT_DOUBLE_EQ(node.energy_harvested_j(), 0.0);
}

TEST(NetworkSim, EcgPatchIsPerpetualClass) {
  // The paper's headline: biopotential nodes on Wi-R become perpetual
  // (>1 yr on the 1000 mAh coin cell).
  comm::WiRLink wir;
  NetworkSim net(wir, NetworkConfig{4, {}, {}, false});
  net.add_node(ecg_node());
  const NetworkReport report = net.run(120.0);
  EXPECT_TRUE(report.nodes[0].perpetual) << report.nodes[0].projected_life_days << " days";
}

TEST(NetworkSim, HarvesterExtendsLife) {
  comm::WiRLink wir;
  NetworkConfig cfg;
  cfg.seed = 5;
  NetworkSim net_plain(wir, cfg);
  net_plain.add_node(ecg_node());
  const auto r1 = net_plain.run(60.0);

  comm::WiRLink wir2;
  NetworkSim net_harv(wir2, cfg);
  NodeConfig with_h = ecg_node();
  energy::HarvesterParams hp;
  hp.mean_power_w = 50.0 * uW;
  hp.availability = 1.0;
  with_h.harvester = hp;
  const auto idx = net_harv.add_node(with_h);
  const auto r2 = net_harv.run(60.0);

  // Harvest (50 uW) covers the ~15 uW load: infinite projected life.
  EXPECT_TRUE(std::isinf(r2.nodes[0].projected_life_days));
  EXPECT_GT(net_harv.node(idx).energy_harvested_j(), 0.0);
  EXPECT_FALSE(std::isinf(r1.nodes[0].projected_life_days));
}

TEST(NetworkSim, MultiNodeLatencyAndGoodput) {
  comm::WiRLink wir;
  NetworkSim net(wir, NetworkConfig{6, {}, {}, false});
  NodeConfig ecg = ecg_node();
  NodeConfig imu = ecg_node();
  imu.name = "imu";
  imu.stream = "imu";
  imu.output_rate_bps = 4.8 * kbps;
  NodeConfig audio = ecg_node();
  audio.name = "audio";
  audio.stream = "audio";
  audio.output_rate_bps = 64.0 * kbps;
  audio.frame_bytes = 240;
  net.add_node(ecg);
  net.add_node(imu);
  net.add_node(audio);
  const NetworkReport report = net.run(30.0);

  const double offered = 6000.0 + 4800.0 + 64000.0;
  EXPECT_NEAR(report.aggregate_goodput_bps, offered, offered * 0.1);
  for (const auto& n : report.nodes) {
    EXPECT_GT(n.frames_delivered, 0u);
    EXPECT_LT(n.mean_latency_s, 0.1);
  }
  EXPECT_LT(report.bus_utilization, 0.2);  // Wi-R has ample headroom
}

TEST(NetworkSim, HubSessionsRunInference) {
  comm::WiRLink wir;
  NetworkSim net(wir, NetworkConfig{7, {}, {}, false});
  net.add_node(ecg_node());
  SessionConfig s;
  s.stream = "ecg";
  s.macs_per_inference = 185'000;
  s.bytes_per_inference = 720;  // one second of 12-bit 360 Hz, byte-packed
  net.add_session(s);
  net.run(30.0);
  const SessionStats& st = net.hub().session("ecg");
  EXPECT_GT(st.inferences, 20u);
  EXPECT_GT(st.compute_energy_j, 0.0);
  EXPECT_EQ(st.uplink_energy_j, 0.0);  // no cloud forwarding configured
}

TEST(NetworkSim, DeterministicAcrossRuns) {
  auto run_once = [] {
    comm::WiRLink wir;
    NetworkSim net(wir, NetworkConfig{42, {}, {}, false});
    NodeConfig n = ecg_node();
    net.add_node(n);
    return net.run(20.0);
  };
  const NetworkReport a = run_once();
  const NetworkReport b = run_once();
  EXPECT_EQ(a.nodes[0].frames_delivered, b.nodes[0].frames_delivered);
  EXPECT_DOUBLE_EQ(a.nodes[0].average_power_w, b.nodes[0].average_power_w);
  EXPECT_DOUBLE_EQ(a.nodes[0].mean_latency_s, b.nodes[0].mean_latency_s);
  EXPECT_DOUBLE_EQ(a.hub_power_w, b.hub_power_w);
}

TEST(NetworkSim, DeadBatteryStopsTraffic) {
  comm::WiRLink wir;
  NetworkSim net(wir, NetworkConfig{8, {}, {}, false});
  NodeConfig tiny = ecg_node();
  tiny.battery_mah = 1e-6;  // ~10 uJ: dies almost immediately
  tiny.settle_period_s = 0.1;
  const auto idx = net.add_node(tiny);
  const NetworkReport report = net.run(30.0);
  EXPECT_FALSE(net.node(idx).alive());
  // Traffic stops shortly after depletion; far fewer frames than a healthy
  // node would deliver (healthy: ~6000 b/s * 30 s / 960 b/frame ~ 187).
  EXPECT_LT(report.nodes[0].frames_delivered, 50u);
}

TEST(NetworkSim, TraceCapturesDeliveries) {
  comm::WiRLink wir;
  NetworkConfig cfg;
  cfg.seed = 9;
  cfg.trace = true;
  NetworkSim net(wir, cfg);
  net.add_node(ecg_node());
  net.run(5.0);
  EXPECT_GT(net.trace().count("deliver"), 0u);
  EXPECT_GT(net.trace().count("beacon"), 0u);
}

TEST(NetworkSim, RunTwiceRejected) {
  comm::WiRLink wir;
  NetworkSim net(wir);
  net.add_node(ecg_node());
  net.run(1.0);
  EXPECT_THROW(net.run(1.0), std::invalid_argument);
  EXPECT_THROW(net.add_node(ecg_node()), std::invalid_argument);
}

}  // namespace
}  // namespace iob::net
