// Split-execution test battery (ISSUE 7): the differential/property proofs
// that the analytic partitioning world and the executed one agree.
//
//  * Property: for every split k of all three zoo models,
//    run_range_into(0,k) chained into run_range_into(k,n) reproduces the
//    unsplit run_into bit-for-bit — f32 at every k, int8 at every feasible
//    boundary. The int8 boundary crossing is exactly one documented
//    requantize: the prefix dequantizes its int8 activation with the
//    boundary op's affine params and the suffix requantizes with the SAME
//    params, a value-preserving round-trip (dequantize(q) lands on exact
//    multiples of the scale, so round-half-away re-encodes the identical
//    code point). Split int8 logits also stay inside the measured
//    max-logit-error bound vs f32 with top-1 agreement on decisive inputs.
//  * Differential: `Partitioner::boundary_bytes(k)` vs the byte size of the
//    actually serialized boundary tensor at every boundary, both
//    precisions. The side that was wrong — and is now fixed — was the cost
//    model: it priced int8 transport at 1 B/element, omitting the 8-byte
//    quant-params header (`nn::kActivationHeaderBytes`) the wire format
//    needs to make int8 activations self-describing (the test names record
//    this).
//  * Falsification: a hand-computed 2-layer model whose optimal split is
//    derivable by hand; `Partitioner::optimize` must pick it AND the
//    executed-and-metered energy must rank the same split best.
//  * Determinism: the fleet grid with the split axis enabled is
//    byte-identical at 1/2/8 threads, and the default (split-off) grid
//    serializes without any split markup — byte-compatible with pre-split
//    CSVs (same technique as tests/fault_test.cpp).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/fleet.hpp"
#include "core/sweep_runner.hpp"
#include "energy/battery.hpp"
#include "nn/model.hpp"
#include "nn/model_zoo.hpp"
#include "nn/layers.hpp"
#include "nn/qmodel.hpp"
#include "nn/quantize.hpp"
#include "nn/tensor.hpp"
#include "nn/workspace.hpp"
#include "partition/adaptive_split.hpp"
#include "partition/cost_model.hpp"
#include "partition/partitioner.hpp"

namespace iob {
namespace {

nn::Model zoo_model(int idx) {
  switch (idx) {
    case 0: return nn::make_kws_dscnn();
    case 1: return nn::make_ecg_cnn1d();
    default: return nn::make_vww_micronet();
  }
}

int argmax(const float* d, std::int64_t n) {
  return static_cast<int>(std::max_element(d, d + n) - d);
}

/// Run layers [a, b) of the f32 or int8 engine on `ws`.
nn::ConstSpan run_range(const nn::Model& m, const nn::QuantizedModel* qm, nn::Workspace& ws,
                        const float* in, int batch, std::size_t a, std::size_t b) {
  return qm != nullptr ? qm->run_range_into(ws, in, batch, a, b)
                       : m.run_range_into(ws, in, batch, a, b);
}

/// Chain [0,k) into [k,n) through an out-of-workspace boundary copy (the
/// "shipped activation") and return the final logits.
std::vector<float> chained_output(const nn::Model& m, const nn::QuantizedModel* qm,
                                  nn::Workspace& ws, const nn::Tensor& x, int batch,
                                  std::size_t k) {
  const std::size_t n = m.layer_count();
  std::vector<float> boundary;
  if (k == 0) {
    boundary.assign(x.data(), x.data() + x.size());
  } else {
    const nn::ConstSpan pre = run_range(m, qm, ws, x.data(), batch, 0, k);
    boundary.assign(pre.begin(), pre.end());
  }
  if (k == n) return boundary;
  const nn::ConstSpan suf = run_range(m, qm, ws, boundary.data(), batch, k, n);
  return std::vector<float>(suf.begin(), suf.end());
}

// ---- property: chained ranges are bit-exact vs the unsplit pass -------------

TEST(SplitProperty, F32ChainedRangesBitExactAtEverySplitAllZooModels) {
  for (int idx = 0; idx < 3; ++idx) {
    const nn::Model m = zoo_model(idx);
    const std::size_t n = m.layer_count();
    const nn::Tensor x = nn::patterned_tensor(m.input_shape(), 7);
    nn::Workspace ws;
    const nn::ConstSpan full_span = m.run_into(ws, x.data(), 1);
    const std::vector<float> full(full_span.begin(), full_span.end());
    for (std::size_t k = 0; k <= n; ++k) {
      const std::vector<float> chained = chained_output(m, nullptr, ws, x, 1, k);
      ASSERT_EQ(chained.size(), full.size()) << m.name() << " k=" << k;
      for (std::size_t i = 0; i < full.size(); ++i) {
        // Bit-exact: fused conv+relu pairs split into conv-then-relu hops
        // with identical arithmetic (range fusion suppression).
        ASSERT_EQ(chained[i], full[i]) << m.name() << " k=" << k << " elem " << i;
      }
    }
  }
}

TEST(SplitProperty, F32ChainedRangesBitExactBatched) {
  const nn::Model m = nn::make_kws_dscnn();
  const std::size_t n = m.layer_count();
  nn::Shape batched = m.input_shape();
  batched.insert(batched.begin(), 3);
  const nn::Tensor x = nn::patterned_tensor(batched, 11);
  nn::Workspace ws;
  const nn::ConstSpan full_span = m.run_into(ws, x.data(), 3);
  const std::vector<float> full(full_span.begin(), full_span.end());
  for (std::size_t k = 0; k <= n; ++k) {
    const std::vector<float> chained = chained_output(m, nullptr, ws, x, 3, k);
    ASSERT_EQ(chained.size(), full.size()) << "k=" << k;
    for (std::size_t i = 0; i < full.size(); ++i) {
      ASSERT_EQ(chained[i], full[i]) << "k=" << k << " elem " << i;
    }
  }
}

TEST(SplitProperty, Int8ChainedRangesBitExactAtEveryFeasibleBoundary) {
  for (int idx = 0; idx < 3; ++idx) {
    const nn::Model m = zoo_model(idx);
    const nn::QuantizedModel qm(m);
    const std::size_t n = m.layer_count();
    const nn::Tensor x = nn::patterned_tensor(m.input_shape(), 7);
    nn::Workspace ws;
    const nn::ConstSpan full_span = qm.run_into(ws, x.data(), 1);
    const std::vector<float> full(full_span.begin(), full_span.end());
    std::size_t feasible = 0;
    for (std::size_t k = 0; k <= n; ++k) {
      if (!qm.feasible_boundary(k)) continue;  // inside a fused conv+relu pair
      ++feasible;
      const std::vector<float> chained = chained_output(m, &qm, ws, x, 1, k);
      ASSERT_EQ(chained.size(), full.size()) << m.name() << " k=" << k;
      for (std::size_t i = 0; i < full.size(); ++i) {
        // The ONE boundary requantize is value-preserving: the prefix's
        // dequantize-out emits exact multiples of the boundary scale, which
        // the suffix's requantize-in maps back to the identical int8 code.
        ASSERT_EQ(chained[i], full[i]) << m.name() << " k=" << k << " elem " << i;
      }
    }
    // The boundary set must be rich enough to mean something: at least the
    // two poles plus an interior cut.
    EXPECT_GE(feasible, 3u) << m.name();
  }
}

TEST(SplitProperty, Int8SplitLogitsBoundedVsF32WithTop1AgreementOnDecisiveInputs) {
  // Same bound discipline as the unsplit zoo accuracy test
  // (tests/nn_int8_test.cpp): measure the per-model error vs the f32
  // oracle, assert it under the empirical ceiling, then require top-1
  // agreement wherever the f32 margin exceeds twice the measured error —
  // now for the CHAINED split output at every feasible boundary.
  const double kMaxLogitErr = 0.05;
  for (int idx = 0; idx < 3; ++idx) {
    const nn::Model m = zoo_model(idx);
    const nn::QuantizedModel qm(m);
    const std::size_t n = m.layer_count();
    const nn::Tensor x = nn::patterned_tensor(m.input_shape(), 7);
    nn::Workspace ws;
    const nn::ConstSpan f32_span = m.run_into(ws, x.data(), 1);
    const std::vector<float> f32_out(f32_span.begin(), f32_span.end());
    const int af = argmax(f32_out.data(), static_cast<std::int64_t>(f32_out.size()));
    double runner_up = -1e30;
    for (std::size_t i = 0; i < f32_out.size(); ++i) {
      if (static_cast<int>(i) != af) runner_up = std::max(runner_up, double{f32_out[i]});
    }
    for (std::size_t k = 0; k <= n; ++k) {
      if (!qm.feasible_boundary(k)) continue;
      const std::vector<float> split = chained_output(m, &qm, ws, x, 1, k);
      double err = 0.0;
      for (std::size_t i = 0; i < f32_out.size(); ++i) {
        err = std::max(err, std::abs(double{split[i]} - double{f32_out[i]}));
      }
      EXPECT_LE(err, kMaxLogitErr) << m.name() << " k=" << k;
      if (f32_out[af] - runner_up > 2.0 * err) {
        EXPECT_EQ(argmax(split.data(), static_cast<std::int64_t>(split.size())), af)
            << m.name() << " k=" << k;
      }
    }
  }
}

TEST(SplitProperty, RangeBoundaryValidation) {
  const nn::Model m = nn::make_ecg_cnn1d();
  const nn::QuantizedModel qm(m);
  const std::size_t n = m.layer_count();
  const nn::Tensor x = nn::patterned_tensor(m.input_shape(), 3);
  nn::Workspace ws;
  EXPECT_THROW(qm.run_range_into(ws, x.data(), 1, 2, 1), std::exception);   // first > last
  EXPECT_THROW(qm.run_range_into(ws, x.data(), 1, 0, n + 1), std::exception);  // past end
  EXPECT_THROW(static_cast<void>(qm.feasible_boundary(n + 1)), std::exception);
  // Empty ranges are identity passes on any engine.
  const nn::ConstSpan id = qm.run_range_into(ws, x.data(), 1, 0, 0);
  ASSERT_EQ(id.size, x.size());
  for (std::int64_t i = 0; i < id.size; ++i) EXPECT_EQ(id.data[i], x.data()[i]);
}

// ---- differential: boundary_bytes vs the actually serialized tensor ---------
//
// The discrepancy these tests pinned down (and that is now fixed on the
// cost-model side): `Partitioner::boundary_bytes` used to price int8
// transport at 1 B/element, but the executable wire format carries an
// 8-byte affine-params header (`nn::kActivationHeaderBytes`) — without it
// the receiver cannot requantize into its own op chain. The test names
// record the fix per the issue instruction.

TEST(SplitDifferential, BoundaryBytesMatchSerializedWire_F32EveryBoundaryAllZooModels) {
  for (int idx = 0; idx < 3; ++idx) {
    const nn::Model m = zoo_model(idx);
    partition::CostModel cm;
    cm.transport = nn::Precision::kF32;
    cm.leaf_hub = partition::CostModel::default_uplink();
    const partition::Partitioner part(m, cm);
    const nn::Tensor x = nn::patterned_tensor(m.input_shape(), 7);
    nn::Workspace ws;
    for (std::size_t k = 0; k <= m.layer_count(); ++k) {
      // f32 "serialization" is the raw activation bytes: 4 B/element.
      const std::int64_t elems =
          k == 0 ? x.size()
                 : static_cast<std::int64_t>(
                       run_range(m, nullptr, ws, x.data(), 1, 0, k).size);
      EXPECT_EQ(part.boundary_bytes(k), elems * 4) << m.name() << " k=" << k;
    }
  }
}

TEST(SplitDifferential, BoundaryBytesMatchSerializedWire_Int8HeaderWasUnpriced) {
  for (int idx = 0; idx < 3; ++idx) {
    const nn::Model m = zoo_model(idx);
    const nn::QuantizedModel qm(m);
    partition::CostModel cm;
    cm.transport = nn::Precision::kInt8;
    cm.leaf_hub = partition::CostModel::default_uplink();
    const partition::Partitioner part(m, cm);
    const nn::Tensor x = nn::patterned_tensor(m.input_shape(), 7);
    nn::Workspace ws;
    for (std::size_t k = 0; k <= m.layer_count(); ++k) {
      if (!qm.feasible_boundary(k)) continue;  // no executable boundary exists
      // Materialize the boundary activation and serialize it exactly as the
      // leaf would ship it.
      std::vector<float> boundary;
      nn::Shape shape;
      if (k == 0) {
        boundary.assign(x.data(), x.data() + x.size());
        shape = x.shape();
      } else {
        const nn::ConstSpan pre = run_range(m, &qm, ws, x.data(), 1, 0, k);
        boundary.assign(pre.begin(), pre.end());
        shape = m.profiles()[k - 1].output_shape;
      }
      const nn::Tensor bt = nn::Tensor::from_data(shape, boundary.data());
      const nn::QuantizedTensor q = k < qm.float_tail_start()
                                        ? nn::quantize(bt, qm.boundary_params(k))
                                        : nn::quantize(bt);
      const std::vector<std::uint8_t> wire = nn::serialize_activation(q);
      EXPECT_EQ(part.boundary_bytes(k), static_cast<std::int64_t>(wire.size()))
          << m.name() << " k=" << k;
      // And the round trip restores the exact code points + params.
      const nn::QuantizedTensor back = nn::deserialize_activation(wire, shape);
      EXPECT_EQ(back.data, q.data) << m.name() << " k=" << k;
      EXPECT_EQ(back.params.scale, q.params.scale);
      EXPECT_EQ(back.params.zero_point, q.params.zero_point);
    }
  }
}

TEST(SplitDifferential, WireBytesFormula) {
  // int8: header + 1 B/elem; f32: raw 4 B/elem, header-free.
  EXPECT_EQ(nn::activation_wire_bytes(16, nn::Precision::kInt8),
            nn::kActivationHeaderBytes + 16);
  EXPECT_EQ(nn::activation_wire_bytes(16, nn::Precision::kF32), 64);
  EXPECT_EQ(nn::activation_wire_bytes(0, nn::Precision::kInt8), nn::kActivationHeaderBytes);
}

// ---- falsification: hand-computed optimum, analytic AND metered -------------

/// Two-layer falsification model: FC 64->8 (512 MACs, tiny prefix) then
/// FC 8->4096 (32768 MACs, the heavy suffix). Large input (64 elems),
/// tiny boundary (8 elems) — transport punishes full offload, leaf
/// silicon punishes all-on-leaf, so the optimum is the mid split.
nn::Model falsification_model() {
  nn::Model m("falsify", nn::Shape{64});
  m.add(std::make_unique<nn::FullyConnected>(64, 8, std::vector<float>(512, 0.01f),
                                             std::vector<float>(8, 0.0f)));
  m.add(std::make_unique<nn::FullyConnected>(8, 4096, std::vector<float>(32768, 0.01f),
                                             std::vector<float>(4096, 0.0f)));
  return m;
}

/// Hand-pickable cost ratios: leaf silicon 8x the hub's energy/MAC,
/// transport 150x the hub's per-MAC energy per bit, f32 wire (4 B/elem,
/// no header — keeps the hand arithmetic clean). With h = 5 pJ/MAC:
///   E(0) = 33280 MACs * h (hub)  + 64*32 bits * 150h = 340480h  — offload
///   E(1) =   512*8h + 32768h     +  8*32 bits * 150h =  75264h  — SPLIT
///   E(2) = 33280 MACs * 8h (leaf)+ 0                 = 266240h  — on-leaf
/// so k = 1 wins by 3.5x (vs on-leaf) and 4.5x (vs offload).
partition::CostModel falsification_cost() {
  partition::CostModel cm;
  cm.leaf = {"leaf", 40e-12, 50e6};
  cm.hub = {"hub", 5e-12, 2e9};
  cm.transport = nn::Precision::kF32;
  cm.leaf_hub = {"bus", 1e6, 750e-12, 0.0, 0.0};
  // Prohibitive uplink pins the cloud split at n (not under test here).
  cm.hub_cloud = {"uplink", 20e6, 1.0, 1.0, 10.0};
  return cm;
}

TEST(SplitFalsification, HandComputedPlanEnergies) {
  const nn::Model m = falsification_model();
  const partition::Partitioner part(m, falsification_cost());
  const double h = 5e-12;
  const partition::PartitionPlan e0 = part.evaluate(0, 2);
  const partition::PartitionPlan e1 = part.evaluate(1, 2);
  const partition::PartitionPlan e2 = part.evaluate(2, 2);
  EXPECT_NEAR(e0.total_energy_j(), 340480.0 * h, 1e-18);
  EXPECT_NEAR(e1.total_energy_j(), 75264.0 * h, 1e-18);
  EXPECT_NEAR(e2.total_energy_j(), 266240.0 * h, 1e-18);
}

TEST(SplitFalsification, AnalyticOptimizerPicksTheHandComputedSplit) {
  const nn::Model m = falsification_model();
  const partition::Partitioner part(m, falsification_cost());
  const partition::PartitionPlan best = part.optimize(partition::Objective::kTotalEnergy);
  EXPECT_EQ(best.split_leaf_hub, 1u);
  EXPECT_EQ(best.split_hub_cloud, 2u);  // cloud leg priced out
}

/// Min-of-3 adaptive timing (the bench's technique): grow reps until one
/// pass fills the window, then keep the best of three windows.
template <typename F>
double time_call_s(F&& fn) {
  const auto wall = [] {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
  fn();  // warm-up
  int reps = 1;
  double best = std::numeric_limits<double>::infinity();
  for (;;) {
    const double t0 = wall();
    for (int r = 0; r < reps; ++r) fn();
    const double dt = wall() - t0;
    if (dt >= 2e-3) {
      best = dt / reps;
      break;
    }
    reps *= 2;
  }
  for (int pass = 0; pass < 2; ++pass) {
    const double t0 = wall();
    for (int r = 0; r < reps; ++r) fn();
    best = std::min(best, (wall() - t0) / reps);
  }
  return best;
}

TEST(SplitFalsification, ExecutedAndMeteredEnergyRanksTheSameSplitBest) {
  // Execute all three splits and meter them: energy = measured range time x
  // venue power, with the leaf at 8x the hub's power (the same ratio the
  // analytic model encodes — both venues run the same host engine, so
  // equal-speed silicon is the right twin) plus the analytic transport
  // term re-priced against the HOST's measured per-MAC energy. The ranking
  // margins are wide by construction (>= 3x analytically; the measured
  // argmin tolerates the prefix/suffix kernel-efficiency skew of real
  // GEMM shapes), so this is robust to timer noise.
  const nn::Model m = falsification_model();
  const double kHubPowerW = 0.04;
  const double kLeafPowerW = 8.0 * kHubPowerW;
  const nn::Tensor x = nn::patterned_tensor(m.input_shape(), 5);
  nn::Workspace ws;

  // Keep the timed calls observable: the result pointer sinks into a
  // volatile so the pass cannot be elided.
  static volatile const float* sink;
  const double t_full = time_call_s([&] { sink = m.run_range_into(ws, x.data(), 1, 0, 2).data; });
  const double h_host = kHubPowerW * t_full / static_cast<double>(m.total_macs());
  const double e_bit = 150.0 * h_host;  // the hand-picked transport ratio

  const double bits[3] = {64.0 * 32.0, 8.0 * 32.0, 0.0};
  double measured[3] = {0.0, 0.0, 0.0};
  for (std::size_t k = 0; k <= 2; ++k) {
    double t_pre = 0.0, t_suf = 0.0;
    if (k > 0) {
      t_pre = time_call_s([&] { sink = m.run_range_into(ws, x.data(), 1, 0, k).data; });
    }
    const nn::ConstSpan pre = k > 0 ? m.run_range_into(ws, x.data(), 1, 0, k)
                                    : nn::ConstSpan{x.data(), x.size()};
    const std::vector<float> boundary(pre.begin(), pre.end());
    if (k < 2) {
      t_suf = time_call_s([&] { sink = m.run_range_into(ws, boundary.data(), 1, k, 2).data; });
    }
    measured[k] = t_pre * kLeafPowerW + t_suf * kHubPowerW + bits[k] * e_bit;
  }
  EXPECT_NE(sink, nullptr);  // the metered passes really ran
  EXPECT_LT(measured[1], measured[0]) << "split must beat full offload";
  EXPECT_LT(measured[1], measured[2]) << "split must beat all-on-leaf";
}

// ---- adaptive split controller ----------------------------------------------

TEST(AdaptiveSplit, CandidatesFromPartitionerAreStrictlyDecreasingInLeafPower) {
  const nn::Model m = nn::make_kws_dscnn();
  partition::CostModel cm;
  cm.leaf_hub = {"bus", 1e6, 100e-12, 40e-12, 1e-4};
  cm.hub_cloud = partition::CostModel::default_uplink();
  const partition::Partitioner part(m, cm);
  const std::vector<partition::SplitCandidate> cands =
      partition::AdaptiveSplitController::candidates_from(part, 10.0);
  ASSERT_GE(cands.size(), 2u);
  for (std::size_t i = 1; i < cands.size(); ++i) {
    EXPECT_LT(cands[i].leaf_power_w, cands[i - 1].leaf_power_w);
  }
  // Every candidate's power is the plan's leaf energy x rate, point-checked.
  for (const partition::SplitCandidate& c : cands) {
    const partition::PartitionPlan plan = part.evaluate(c.split_at, m.layer_count());
    EXPECT_DOUBLE_EQ(c.leaf_power_w, plan.leaf_energy_j() * 10.0);
  }
}

TEST(AdaptiveSplit, ControllerStepsDownWhenGlideBudgetShrinksAndBackUpWithHysteresis) {
  partition::AdaptiveSplitConfig cfg;
  cfg.candidates = {{3, 4e-3}, {2, 2e-3}, {1, 1e-3}};
  cfg.mission_time_s = 1000.0;
  cfg.hysteresis = 1.5;
  partition::AdaptiveSplitController ctrl(cfg);
  EXPECT_EQ(ctrl.current_index(), 0u);

  // Full battery sized for ~2.5 mW over the mission: the 4 mW candidate
  // overshoots the glide budget, the 2 mW one fits.
  energy::Battery rich(2.5e-3 * 1000.0 / (3.6 * 3.0), 3.0);  // mAh at 3 V
  EXPECT_EQ(ctrl.update(rich, 0.0), 1u);
  EXPECT_EQ(ctrl.current().split_at, 2u);

  // Drain to a quarter: budget ~0.625 mW — even the 1 mW floor overshoots,
  // so the controller bottoms out at the last candidate.
  energy::Battery poor(2.5e-3 * 1000.0 / (3.6 * 3.0), 3.0);
  poor.discharge(poor.usable_energy_j() * 0.75);
  EXPECT_EQ(ctrl.update(poor, 0.0), 2u);

  // Stepping back up needs the richer candidate to fit WITH the 1.5x
  // hysteresis margin: at the full-battery 2.5 mW budget, candidate 1
  // needs 2 mW * 1.5 = 3 mW — blocked, no flapping. Deep into the mission
  // the remaining-time budget balloons (2.5 J / 100 s = 25 mW) and the
  // controller climbs all the way back.
  EXPECT_EQ(ctrl.update(rich, 0.0), 2u);     // hysteresis holds it down
  EXPECT_EQ(ctrl.update(rich, 900.0), 0u);   // 25 mW budget: back to richest
}

// ---- determinism: the fleet split axis --------------------------------------

/// The shared session model must outlive every fleet point; zoo models are
/// value types, so park one in a function-local static.
const nn::Model& fleet_model() {
  static const nn::Model m = nn::make_kws_dscnn();
  return m;
}

core::FleetAxes split_axes() {
  core::NodeClassSpec audio;
  audio.base.name = "audio";
  audio.base.sense_power_w = 150e-6;
  audio.base.output_rate_bps = 64e3;
  audio.base.slot_weight = 2;
  net::SessionConfig kws;
  kws.macs_per_inference = 2'500'000;
  kws.bytes_per_inference = 2'000;
  kws.model = "kws-dscnn";
  kws.weight_bytes = 22'604;
  kws.net = &fleet_model();
  audio.session = kws;
  core::NodeClassSpec bio;  // session-less: never participates in the split
  bio.base.name = "bio";
  bio.base.sense_power_w = 8e-6;
  bio.base.output_rate_bps = 5e3;

  core::FleetAxes axes;
  axes.node_counts = {2};
  axes.mixes = {{"audio+bio", {audio, bio}}};
  axes.precisions = {nn::Precision::kF32, nn::Precision::kInt8};
  core::SplitVariant off;
  core::SplitVariant half;
  half.label = "half";
  half.enabled = true;
  half.leaf_fraction = 0.5;
  core::SplitVariant adaptive;
  adaptive.label = "adaptive";
  adaptive.enabled = true;
  adaptive.adaptive = true;
  adaptive.mission_time_s = 86400.0;
  axes.splits = {off, half, adaptive};
  axes.seeds = {7};
  axes.duration_s = 2.0;
  return axes;
}

TEST(SplitFleet, CsvByteIdenticalAt1_2_8ThreadsWithSplitAxisEnabled) {
  const core::Fleet fleet(split_axes());
  EXPECT_EQ(fleet.size(), 6u);  // 2 precisions x 3 split variants
  const std::string serial = core::fleet_results_csv(fleet.run(core::SweepRunner(1)));
  // Split points really executed: per-node markup and the coordinate suffix
  // are present for the enabled variants.
  EXPECT_NE(serial.find(":spl:"), std::string::npos);
  EXPECT_NE(serial.find(":s1"), std::string::npos);
  EXPECT_NE(serial.find(":s2"), std::string::npos);
  for (const std::size_t threads : {2u, 8u}) {
    const core::SweepRunner runner(threads);
    EXPECT_EQ(serial, core::fleet_results_csv(fleet.run(runner))) << threads << " threads";
  }
}

TEST(SplitFleet, ExpansionNestsSplitsOutsideSeeds) {
  core::FleetAxes axes = split_axes();
  axes.precisions = {nn::Precision::kF32};
  axes.seeds = {7, 9};
  const std::vector<core::FleetPoint> points = core::Fleet(axes).expand();
  ASSERT_EQ(points.size(), 6u);
  EXPECT_EQ(points[0].coord[core::kAxisSplit], 0u);
  EXPECT_EQ(points[0].coord[core::kAxisSeed], 0u);
  EXPECT_EQ(points[1].coord[core::kAxisSplit], 0u);
  EXPECT_EQ(points[1].coord[core::kAxisSeed], 1u);
  EXPECT_EQ(points[2].coord[core::kAxisSplit], 1u);
  EXPECT_TRUE(points[2].split.enabled);
  EXPECT_EQ(points[4].coord[core::kAxisSplit], 2u);
  EXPECT_TRUE(points[4].split.adaptive);
}

// Default (split-off) grids must serialize without any split markup: the
// CSV stays byte-compatible with pre-split output (the same contract the
// fault axis honors — tests/fault_test.cpp).
TEST(SplitFleet, DefaultAxisLeavesCsvUnmarked) {
  core::FleetAxes axes = split_axes();
  axes.splits = {core::SplitVariant{}};  // the disabled default
  axes.duration_s = 0.5;
  const core::Fleet fleet(axes);
  const std::string csv = core::fleet_results_csv(fleet.run(core::SweepRunner(1)));
  EXPECT_EQ(csv.find(":spl:"), std::string::npos);  // no per-node split markup
  EXPECT_EQ(csv.find(":s1"), std::string::npos);    // no split coordinate suffix
  // And identical bytes to a grid that never mentions the split axis at all
  // (the FleetAxes default value).
  core::FleetAxes defaulted = split_axes();
  defaulted.splits = core::FleetAxes{}.splits;
  defaulted.duration_s = 0.5;
  EXPECT_EQ(csv, core::fleet_results_csv(
                     core::Fleet(defaulted).run(core::SweepRunner(1))));
}

TEST(SplitFleet, SplitSessionsBillTheSerializedWireSize) {
  // One fixed-split point: the session's bytes/inference must equal the
  // boundary activation's wire size and the node must ship exactly that
  // many bytes per inference.
  core::FleetAxes axes = split_axes();
  axes.precisions = {nn::Precision::kInt8};
  core::SplitVariant half;
  half.label = "half";
  half.enabled = true;
  half.leaf_fraction = 0.5;
  axes.splits = {half};
  const core::Fleet fleet(axes);
  const std::vector<core::FleetPoint> points = fleet.expand();
  ASSERT_EQ(points.size(), 1u);
  const std::unique_ptr<net::NetworkSim> sim = core::build_fleet_point(points[0]);
  const net::NetworkReport rep = sim->run(points[0].duration_s);

  const nn::Model& m = fleet_model();
  const std::size_t n = m.layer_count();
  const std::size_t k = static_cast<std::size_t>(std::lround(0.5 * static_cast<double>(n)));
  const std::int64_t elems = k == 0 ? nn::shape_elems(m.input_shape())
                                    : nn::shape_elems(m.profiles()[k - 1].output_shape);
  const std::uint64_t wire =
      static_cast<std::uint64_t>(nn::activation_wire_bytes(elems, nn::Precision::kInt8));
  bool saw_split_node = false;
  for (const net::NodeReport& nr : rep.nodes) {
    if (nr.split_inferences == 0) continue;
    saw_split_node = true;
    EXPECT_EQ(nr.split_at, k);
    EXPECT_EQ(nr.split_activation_bytes, nr.split_inferences * wire);
  }
  EXPECT_TRUE(saw_split_node);
}

}  // namespace
}  // namespace iob
