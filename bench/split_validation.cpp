// Split-execution validation bench (ISSUE 7): execute every feasible
// leaf/hub split of all three zoo models on a host-calibrated pair of
// venues and compare the *measured* per-venue compute energy against the
// analytic `partition::CostModel` point-for-point. For each split k the
// prefix [0, k) is timed as the "leaf" and the suffix [k, n) as the "hub"
// (both venues calibrated from the same host engine, so the comparison
// isolates how well MAC-count proportionality predicts real kernel time),
// the chained output is asserted bit-identical to the unsplit pass, and
// the boundary activation is actually serialized and its byte count held
// equal to `Partitioner::boundary_bytes` — the wire the fleet's split
// sessions bill for. A final section runs the adaptive re-partition
// controller inside a `net::NetworkSim` on a glide-path-starved battery
// and reports the split trajectory. Emits BENCH_split_validation.json;
// `split_costmodel_max_rel_err` is watched (lower is better) by
// scripts/collect_bench.py.
//
// Set IOB_SPLIT_SMOKE=1 (CI) to shrink the timing windows.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "comm/wir_link.hpp"
#include "common/expect.hpp"
#include "common/table.hpp"
#include "net/network_sim.hpp"
#include "nn/model_zoo.hpp"
#include "nn/qmodel.hpp"
#include "nn/quantize.hpp"
#include "nn/tensor.hpp"
#include "nn/workspace.hpp"
#include "partition/adaptive_split.hpp"
#include "partition/cost_model.hpp"
#include "partition/partitioner.hpp"

namespace {

using namespace iob;

// Venue power ratings behind the measured-energy numbers: the calibrated
// host engine stands in for both venues, so energy = measured time x the
// venue's power. The 8:1 ratio mirrors the CostModel's leaf-vs-hub
// efficiency gap closely enough to exercise the same trade-offs.
constexpr double kLeafPowerW = 5e-3;
constexpr double kHubPowerW = 40e-3;

/// Min-of-3 timing of `fn` with reps auto-grown until one pass fills
/// `min_window_s` (adaptive like google-benchmark, but deterministic in
/// structure). Returns seconds per call.
template <typename F>
double time_call_s(double min_window_s, F&& fn) {
  fn();  // warm-up
  int reps = 1;
  double best = std::numeric_limits<double>::infinity();
  for (;;) {
    const double t0 = bench::wall_time_s();
    for (int r = 0; r < reps; ++r) fn();
    const double dt = bench::wall_time_s() - t0;
    if (dt >= min_window_s) {
      best = dt / reps;
      break;
    }
    reps *= 2;
  }
  for (int pass = 0; pass < 2; ++pass) {
    const double t0 = bench::wall_time_s();
    for (int r = 0; r < reps; ++r) fn();
    best = std::min(best, (bench::wall_time_s() - t0) / reps);
  }
  return best;
}

struct SplitScan {
  std::size_t splits_executed = 0;
  double max_rel_err = 0.0;
  double mean_rel_err = 0.0;
  std::size_t wire_checks = 0;
};

/// Execute every feasible split of `m` at one precision: time prefix and
/// suffix, compare measured venue energy against `part`'s analytic plan,
/// assert the chained output is bit-identical to the unsplit pass and the
/// serialized boundary matches `boundary_bytes`.
SplitScan scan_splits(const nn::Model& m, const nn::QuantizedModel* qm,
                      const partition::Partitioner& part, double min_window_s) {
  const std::size_t n = m.layer_count();
  const nn::Tensor x = nn::patterned_tensor(m.input_shape(), 7);
  nn::Workspace ws;

  const auto run_range = [&](std::size_t a, std::size_t b, const float* in) {
    return qm != nullptr ? qm->run_range_into(ws, in, 1, a, b)
                         : m.run_range_into(ws, in, 1, a, b);
  };

  // Unsplit reference pass (also the venue calibration measurement the
  // caller derived `part`'s throughput from).
  const nn::ConstSpan full_span = run_range(0, n, x.data());
  const std::vector<float> full_out(full_span.begin(), full_span.end());

  SplitScan scan;
  double rel_err_sum = 0.0;
  for (std::size_t k = 0; k <= n; ++k) {
    if (qm != nullptr && !qm->feasible_boundary(k)) continue;  // inside a fused pair

    // Leaf venue: layers [0, k). Copy the boundary out of the workspace
    // before the suffix pass reuses the arena.
    double t_pre = 0.0;
    std::vector<float> boundary;
    nn::Shape boundary_shape;
    if (k == 0) {
      boundary.assign(x.data(), x.data() + x.size());
      boundary_shape = x.shape();
    } else {
      t_pre = time_call_s(min_window_s, [&] {
        benchmark::DoNotOptimize(run_range(0, k, x.data()).data);
      });
      const nn::ConstSpan pre = run_range(0, k, x.data());
      boundary.assign(pre.begin(), pre.end());
      boundary_shape = m.profiles()[k - 1].output_shape;
    }

    // Hub venue: layers [k, n) resumed from the shipped boundary.
    double t_suf = 0.0;
    std::vector<float> chained = boundary;
    if (k < n) {
      t_suf = time_call_s(min_window_s, [&] {
        benchmark::DoNotOptimize(run_range(k, n, boundary.data()).data);
      });
      const nn::ConstSpan suf = run_range(k, n, boundary.data());
      chained.assign(suf.begin(), suf.end());
    }

    // Cross-venue correctness: the split pass must reproduce the unsplit
    // logits bit-for-bit (int8 boundary round-trips are value-preserving;
    // f32 fused pairs split into conv + relu with identical arithmetic).
    IOB_ENSURES(chained.size() == full_out.size(), "split output size mismatch");
    for (std::size_t i = 0; i < full_out.size(); ++i) {
      IOB_ENSURES(chained[i] == full_out[i], "split execution diverged from unsplit pass");
    }

    // Wire check: serialize the boundary activation the leaf would ship and
    // hold its byte count to the analytic `boundary_bytes` point-for-point
    // (the plan's `bytes_leaf_to_hub` equals it for k < n and 0 at k == n,
    // where no leg exists).
    const partition::PartitionPlan plan = part.evaluate(k, n);
    const std::int64_t elems = static_cast<std::int64_t>(boundary.size());
    std::int64_t wire_size = 0;
    if (qm != nullptr) {
      const nn::Tensor bt = nn::Tensor::from_data(boundary_shape, boundary.data());
      const nn::QuantizedTensor q =
          k < qm->float_tail_start() ? nn::quantize(bt, qm->boundary_params(k))
                                     : nn::quantize(bt);
      wire_size = static_cast<std::int64_t>(nn::serialize_activation(q).size());
    } else {
      wire_size = elems * 4;
    }
    IOB_ENSURES(wire_size == part.boundary_bytes(k),
                "serialized boundary size diverged from the cost model's bytes");
    IOB_ENSURES(plan.bytes_leaf_to_hub == (k < n ? wire_size : 0),
                "plan's shipped bytes must match the serialized boundary");
    ++scan.wire_checks;

    // Measured venue energy vs the analytic plan.
    const double measured_j = t_pre * kLeafPowerW + t_suf * kHubPowerW;
    const double predicted_j = plan.leaf_compute_j + plan.hub_compute_j;
    const double rel_err = std::abs(predicted_j - measured_j) / measured_j;
    scan.max_rel_err = std::max(scan.max_rel_err, rel_err);
    rel_err_sum += rel_err;
    ++scan.splits_executed;
  }
  scan.mean_rel_err = rel_err_sum / static_cast<double>(scan.splits_executed);
  return scan;
}

/// Host-calibrated cost model: both venues run at the engine's measured
/// throughput for this model/precision, so `macs / macs_per_s * power` is
/// the analytic twin of `measured time * power`.
partition::CostModel calibrated_cost(const nn::Model& m, const nn::QuantizedModel* qm,
                                     double min_window_s) {
  nn::Workspace ws;
  const nn::Tensor x = nn::patterned_tensor(m.input_shape(), 7);
  const std::size_t n = m.layer_count();
  const double t_full = time_call_s(min_window_s, [&] {
    benchmark::DoNotOptimize(qm != nullptr ? qm->run_range_into(ws, x.data(), 1, 0, n).data
                                           : m.run_range_into(ws, x.data(), 1, 0, n).data);
  });
  const double macs_per_s = static_cast<double>(m.total_macs()) / t_full;

  partition::CostModel cost;
  cost.transport = qm != nullptr ? nn::Precision::kInt8 : nn::Precision::kF32;
  cost.leaf = {"leaf (host-calibrated)", kLeafPowerW / macs_per_s, macs_per_s};
  cost.hub = {"hub (host-calibrated)", kHubPowerW / macs_per_s, macs_per_s};
  const comm::WiRLink wir;
  cost.leaf_hub = partition::CostModel::leg_from_link(wir, 100e3, 240);
  cost.hub_cloud = partition::CostModel::default_uplink();
  return cost;
}

/// Adaptive re-partition scenario: a split node on a battery sized so the
/// mission glide path cannot sustain the richest candidate — the
/// controller must shed leaf layers at runtime and re-sync the hub.
/// Returns (repartitions, final split).
std::pair<std::uint64_t, std::uint64_t> adaptive_scenario(const nn::Model& m) {
  constexpr double kHz = 10.0;
  constexpr double kMission = 3600.0;
  partition::CostModel cost;  // stock analytic venues, Wi-R body bus
  const comm::WiRLink wir;
  cost.leaf_hub = partition::CostModel::leg_from_link(wir, 100e3, 240);
  cost.hub_cloud = partition::CostModel::default_uplink();
  const partition::Partitioner part(m, cost);
  partition::AdaptiveSplitConfig acfg;
  acfg.candidates = partition::AdaptiveSplitController::candidates_from(part, kHz);
  acfg.mission_time_s = kMission;
  IOB_EXPECTS(acfg.candidates.size() >= 2, "adaptive scenario needs at least two candidates");

  // Size the battery so the glide budget lands mid-ladder: the controller
  // starts at the richest split and must immediately step down.
  const double p_mid = acfg.candidates[acfg.candidates.size() / 2].leaf_power_w;
  const double battery_v = 3.0;
  const double battery_mah = p_mid * kMission / (3.6 * battery_v);

  net::NetworkConfig nc;
  net::NetworkSim sim(std::make_unique<comm::WiRLink>(), nc);
  net::NodeConfig node;
  node.name = "split-leaf";
  node.stream = "split-leaf";
  node.battery_mah = battery_mah;
  node.battery_v = battery_v;
  net::LeafSplit sp;
  sp.net = &m;
  sp.period_s = 1.0 / kHz;
  sp.adaptive = acfg;
  node.split = sp;
  sim.add_node(std::move(node));

  const std::size_t k0 = acfg.candidates.front().split_at;
  const auto& profiles = m.profiles();
  std::uint64_t suffix_macs = 0;
  for (std::size_t i = k0; i < m.layer_count(); ++i) suffix_macs += profiles[i].macs;
  const std::int64_t elems = k0 == 0 ? nn::shape_elems(m.input_shape())
                                     : nn::shape_elems(profiles[k0 - 1].output_shape);
  net::SessionConfig s;
  s.stream = "split-leaf";
  s.net = &m;
  s.precision = nn::Precision::kInt8;
  s.split_layers = k0;
  s.macs_per_inference = suffix_macs;
  s.bytes_per_inference =
      static_cast<std::uint64_t>(nn::activation_wire_bytes(elems, nn::Precision::kInt8));
  sim.add_session(std::move(s));

  const net::NetworkReport rep = sim.run(10.0);
  const net::SessionStats& st = sim.hub().session("split-leaf");
  IOB_ENSURES(rep.nodes[0].split_repartitions >= 1,
              "glide-starved battery should force at least one re-partition");
  IOB_ENSURES(st.repartitions == rep.nodes[0].split_repartitions,
              "hub re-sync count must match the leaf's re-partitions");
  return {rep.nodes[0].split_repartitions, rep.nodes[0].split_at};
}

void print_headline() {
  const bool smoke = std::getenv("IOB_SPLIT_SMOKE") != nullptr;
  const double min_window_s = smoke ? 2e-3 : 10e-3;

  common::print_banner(
      std::string("Split-execution validation — measured venue energy vs CostModel, "
                  "every feasible split") +
      (smoke ? " [smoke]" : ""));

  struct Entry {
    const char* key;
    nn::Model model;
  };
  Entry entries[] = {{"kws", nn::make_kws_dscnn()},
                     {"ecg", nn::make_ecg_cnn1d()},
                     {"vww", nn::make_vww_micronet()}};

  bench::JsonReporter json("split_validation");
  common::Table t({"model", "precision", "splits", "wire checks", "max rel err",
                   "mean rel err"});

  double overall_max = 0.0;
  for (Entry& e : entries) {
    const nn::Model& m = e.model;
    const nn::QuantizedModel qm(m);
    for (const bool int8 : {false, true}) {
      const nn::QuantizedModel* q = int8 ? &qm : nullptr;
      const partition::CostModel cost = calibrated_cost(m, q, min_window_s);
      const partition::Partitioner part(m, cost);
      const SplitScan scan = scan_splits(m, q, part, min_window_s);
      overall_max = std::max(overall_max, scan.max_rel_err);
      const std::string prec = int8 ? "int8" : "f32";
      t.add_row({e.key, prec, std::to_string(scan.splits_executed),
                 std::to_string(scan.wire_checks), common::fixed(scan.max_rel_err, 3),
                 common::fixed(scan.mean_rel_err, 3)});
      json.add("split_points_executed_" + std::string(e.key) + "_" + prec,
               static_cast<double>(scan.splits_executed));
      json.add("split_costmodel_max_rel_err_" + std::string(e.key) + "_" + prec,
               scan.max_rel_err);
      json.add("split_costmodel_mean_rel_err_" + std::string(e.key) + "_" + prec,
               scan.mean_rel_err);
    }
  }
  json.add("split_costmodel_max_rel_err", overall_max);

  const auto [repartitions, final_split] = adaptive_scenario(entries[0].model);
  json.add("split_adaptive_repartitions_kws", static_cast<double>(repartitions));
  json.add("split_adaptive_final_split_kws", static_cast<double>(final_split));

  std::printf("%s", t.to_string().c_str());
  common::print_note("venues host-calibrated: energy = measured range time x venue power "
                     "(leaf 5 mW prefix, hub 40 mW suffix); rel err |pred - meas| / meas");
  common::print_note("every split's chained output asserted bit-identical to the unsplit "
                     "pass; every boundary serialized and size-matched to boundary_bytes");
  common::print_note("adaptive: glide-starved battery forced " + std::to_string(repartitions) +
                     " re-partition(s) on kws, final split k=" + std::to_string(final_split));
  json.write();
}

// ---- microbenchmarks --------------------------------------------------------

struct SplitZoo {
  nn::Model model = nn::make_kws_dscnn();
  nn::QuantizedModel qm{model};
};

SplitZoo& split_zoo() {
  static SplitZoo zoo;
  return zoo;
}

void BM_SplitPrefixInt8(benchmark::State& state) {
  SplitZoo& zoo = split_zoo();
  const std::size_t n = zoo.model.layer_count();
  std::size_t k = n * static_cast<std::size_t>(state.range(0)) / 4;
  while (k > 0 && !zoo.qm.feasible_boundary(k)) --k;
  const nn::Tensor x = nn::patterned_tensor(zoo.model.input_shape(), 1);
  nn::Workspace ws;
  ws.configure(zoo.qm, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zoo.qm.run_range_into(ws, x.data(), 1, 0, k).data);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SplitPrefixInt8)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMicrosecond);

void BM_SplitSuffixInt8(benchmark::State& state) {
  SplitZoo& zoo = split_zoo();
  const std::size_t n = zoo.model.layer_count();
  std::size_t k = n * static_cast<std::size_t>(state.range(0)) / 4;
  while (k > 0 && !zoo.qm.feasible_boundary(k)) --k;
  const nn::Tensor x = nn::patterned_tensor(zoo.model.input_shape(), 1);
  nn::Workspace ws;
  const nn::ConstSpan pre = zoo.qm.run_range_into(ws, x.data(), 1, 0, k);
  const std::vector<float> boundary(pre.begin(), pre.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(zoo.qm.run_range_into(ws, boundary.data(), 1, k, n).data);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SplitSuffixInt8)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_headline();
  return iob::bench::run_microbenchmarks(argc, argv);
}
