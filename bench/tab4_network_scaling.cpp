// Reproduces **T4** (Sec. V): the distributed IoB Wi-R network — an on-body
// hub coordinating N ULP leaf nodes over the shared TDMA body bus. Sweeps
// the node count with a mixed ECG/IMU/audio population and reports
// aggregate goodput, bus utilization, latency and per-leaf comm power from
// full discrete-event simulations.

#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "comm/wir_link.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/sweep_runner.hpp"
#include "net/network_sim.hpp"

namespace {

using namespace iob;
using namespace iob::units;

net::NodeConfig make_leaf(int i) {
  net::NodeConfig n;
  // Mixed population: 1 audio-class node per 8, the rest biopotential/IMU.
  const bool audio = (i % 8) == 0;
  n.name = (audio ? "audio-" : "bio-") + std::to_string(i);
  n.stream = n.name;
  n.sense_power_w = audio ? 150e-6 : 8e-6;
  n.isa_power_w = 1e-6;
  n.output_rate_bps = audio ? 64e3 : 5e3;
  n.frame_bytes = 240;
  n.slot_weight = audio ? 2 : 1;  // rate-proportional TDMA allocation
  return n;
}

struct Row {
  int n;
  double goodput_bps;
  double utilization;
  double mean_latency_s;
  double max_latency_s;
  double mean_leaf_power_w;
  bool all_perpetual_bio;
};

Row run_network(int n_nodes, double duration_s, std::uint64_t seed) {
  comm::WiRLink wir;
  net::NetworkSim sim(wir, net::NetworkConfig{seed, {}, {}, false});
  for (int i = 0; i < n_nodes; ++i) sim.add_node(make_leaf(i));
  const net::NetworkReport rep = sim.run(duration_s);

  Row row{};
  row.n = n_nodes;
  row.goodput_bps = rep.aggregate_goodput_bps;
  row.utilization = rep.bus_utilization;
  row.all_perpetual_bio = true;
  double lat = 0.0, power = 0.0, max_lat = 0.0;
  for (std::size_t i = 0; i < rep.nodes.size(); ++i) {
    lat += rep.nodes[i].mean_latency_s;
    max_lat = std::max(max_lat, rep.nodes[i].p99ish_latency_s);
    power += rep.nodes[i].average_power_w;
    if (rep.nodes[i].name.rfind("bio-", 0) == 0 && !rep.nodes[i].perpetual) {
      row.all_perpetual_bio = false;
    }
  }
  row.mean_latency_s = lat / static_cast<double>(rep.nodes.size());
  row.mean_leaf_power_w = power / static_cast<double>(rep.nodes.size());
  row.max_latency_s = max_lat;
  return row;
}

void print_table() {
  common::print_banner("T4 — Distributed IoB Wi-R network scaling (hub + N leaves, TDMA)");

  // Each row is an independent full simulation with its own Simulator and a
  // fork-derived seed — fan them across the pool; index-order merging keeps
  // the table identical at any thread count.
  const core::SweepRunner runner;
  const std::vector<int> node_counts{1, 2, 4, 8, 16, 24, 32};
  const double t0 = bench::wall_time_s();
  const std::vector<Row> rows = runner.map<Row>(node_counts.size(), [&](std::size_t i) {
    return run_network(node_counts[i], 20.0, core::SweepRunner::point_seed(42, i));
  });
  const double dt = bench::wall_time_s() - t0;

  common::Table t({"N leaves", "agg goodput", "bus util", "mean latency", "max latency",
                   "mean leaf power", "bio leaves perpetual?"});
  for (const Row& r : rows) {
    t.add_row({std::to_string(r.n), common::si_format(r.goodput_bps, "b/s"),
               common::fixed(r.utilization * 100.0, 1) + "%",
               common::si_format(r.mean_latency_s, "s"),
               common::si_format(r.max_latency_s, "s"),
               common::si_format(r.mean_leaf_power_w, "W"),
               r.all_perpetual_bio ? "yes" : "no"});
  }
  std::cout << t.to_string();
  common::print_note("one Wi-R body bus carries a full-body sensor suite (paper Fig. 1 right):");
  common::print_note("latency grows linearly with the superframe, power stays uW-class");

  bench::JsonReporter json("tab4_network_scaling");
  json.add("sweep_points", static_cast<double>(rows.size()));
  json.add("sweep_points_per_s", static_cast<double>(rows.size()) / dt);
  json.add("sweep_threads", static_cast<double>(runner.threads()));
  json.add("goodput_bps_n32", rows.back().goodput_bps);
  json.add("bus_utilization_n32", rows.back().utilization);
  json.write();
}

void BM_NetworkSimulation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_network(n, 2.0, static_cast<std::uint64_t>(n)));
  }
}
BENCHMARK(BM_NetworkSimulation)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_NetworkSweepParallel(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const core::SweepRunner runner(threads);
  const std::vector<int> node_counts{1, 2, 4, 8, 16, 24, 32};
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.map<Row>(node_counts.size(), [&](std::size_t i) {
      return run_network(node_counts[i], 2.0, core::SweepRunner::point_seed(42, i));
    }));
  }
}
BENCHMARK(BM_NetworkSweepParallel)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return iob::bench::run_microbenchmarks(argc, argv);
}
