// Reproduces **T4** (Sec. V): the distributed IoB Wi-R network — an on-body
// hub coordinating N ULP leaf nodes over the shared TDMA body bus. Sweeps
// the node count with a mixed ECG/IMU/audio population and reports
// aggregate goodput, bus utilization, latency and per-leaf comm power from
// full discrete-event simulations.
//
// The sweep runs on the `core::Fleet` harness: the node-count axis expands
// into independent value-type points, each building and owning its own
// Wi-R link and NetworkSim, fanned across the SweepRunner with fork-derived
// seeds (the table is identical at any thread count).

#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/fleet.hpp"
#include "core/sweep_runner.hpp"

namespace {

using namespace iob;
using namespace iob::units;

// Mixed population: 1 audio-class node per 8, the rest biopotential/IMU
// (share-weighted round robin makes node i audio exactly when i % 8 == 0,
// matching the historical hand-rolled loop).
core::NodeMix make_mix() {
  core::NodeClassSpec audio;
  audio.base.name = "audio";
  audio.base.sense_power_w = 150e-6;
  audio.base.isa_power_w = 1e-6;
  audio.base.output_rate_bps = 64e3;
  audio.base.frame_bytes = 240;
  audio.base.slot_weight = 2;  // rate-proportional TDMA allocation
  audio.share = 1;
  core::NodeClassSpec bio;
  bio.base.name = "bio";
  bio.base.sense_power_w = 8e-6;
  bio.base.isa_power_w = 1e-6;
  bio.base.output_rate_bps = 5e3;
  bio.base.frame_bytes = 240;
  bio.share = 7;
  return core::NodeMix{"t4-mixed", {audio, bio}};
}

core::Fleet make_fleet(std::vector<int> node_counts, double duration_s) {
  core::FleetAxes axes;
  axes.node_counts = std::move(node_counts);
  axes.mixes = {make_mix()};
  axes.seeds = {42};
  axes.duration_s = duration_s;
  return core::Fleet(std::move(axes));
}

struct Row {
  int n;
  double goodput_bps;
  double utilization;
  double mean_latency_s;
  double max_latency_s;
  double mean_leaf_power_w;
  bool all_perpetual_bio;
};

Row make_row(int n_nodes, const core::FleetPointResult& res) {
  const net::NetworkReport& rep = res.report;
  Row row{};
  row.n = n_nodes;
  row.goodput_bps = rep.aggregate_goodput_bps;
  row.utilization = rep.bus_utilization;
  row.all_perpetual_bio = true;
  double lat = 0.0, max_lat = 0.0;
  for (std::size_t i = 0; i < rep.nodes.size(); ++i) {
    lat += rep.nodes[i].mean_latency_s;
    max_lat = std::max(max_lat, rep.nodes[i].p99ish_latency_s);
    if (rep.nodes[i].name.rfind("bio-", 0) == 0 && !rep.nodes[i].perpetual) {
      row.all_perpetual_bio = false;
    }
  }
  row.mean_latency_s = lat / static_cast<double>(rep.nodes.size());
  row.mean_leaf_power_w = res.mean_leaf_power_w;
  row.max_latency_s = max_lat;
  return row;
}

void print_table() {
  common::print_banner("T4 — Distributed IoB Wi-R network scaling (hub + N leaves, TDMA)");

  const std::vector<int> node_counts{1, 2, 4, 8, 16, 24, 32};
  const core::Fleet fleet = make_fleet(node_counts, 20.0);
  const core::SweepRunner runner;
  const double t0 = bench::wall_time_s();
  const std::vector<core::FleetPointResult> results = fleet.run(runner);
  const double dt = bench::wall_time_s() - t0;

  common::Table t({"N leaves", "agg goodput", "bus util", "mean latency", "max latency",
                   "mean leaf power", "bio leaves perpetual?"});
  std::vector<Row> rows;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Row r = make_row(node_counts[i], results[i]);
    rows.push_back(r);
    t.add_row({std::to_string(r.n), common::si_format(r.goodput_bps, "b/s"),
               common::fixed(r.utilization * 100.0, 1) + "%",
               common::si_format(r.mean_latency_s, "s"),
               common::si_format(r.max_latency_s, "s"),
               common::si_format(r.mean_leaf_power_w, "W"),
               r.all_perpetual_bio ? "yes" : "no"});
  }
  std::cout << t.to_string();
  common::print_note("one Wi-R body bus carries a full-body sensor suite (paper Fig. 1 right):");
  common::print_note("latency grows linearly with the superframe, power stays uW-class");

  bench::JsonReporter json("tab4_network_scaling");
  json.add("sweep_points", static_cast<double>(rows.size()));
  json.add("sweep_points_per_s", static_cast<double>(rows.size()) / dt);
  json.add("sweep_threads", static_cast<double>(runner.threads()));
  json.add("goodput_bps_n32", rows.back().goodput_bps);
  json.add("bus_utilization_n32", rows.back().utilization);
  json.write();
}

void BM_NetworkSimulation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::FleetPoint p = make_fleet({n}, 2.0).expand().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_fleet_point(p));
  }
}
BENCHMARK(BM_NetworkSimulation)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_NetworkSweepParallel(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const core::SweepRunner runner(threads);
  const core::Fleet fleet = make_fleet({1, 2, 4, 8, 16, 24, 32}, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet.run(runner));
  }
}
BENCHMARK(BM_NetworkSweepParallel)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return iob::bench::run_microbenchmarks(argc, argv);
}
