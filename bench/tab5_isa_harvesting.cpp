// Reproduces **T5** (Sec. V): (a) ISA/data-compression ablation — "The ULP
// nodes in some cases may use low power in-sensor analytics (ISA) or data
// compression (example MJPEG compression for video) to reduce the data
// volume" — with the *actual* codecs measuring the actual ratios; and
// (b) the energy-harvesting view: which node classes the 10-200 uW indoor
// window makes charging-free.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "comm/wir_link.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "energy/battery.hpp"
#include "energy/lifetime.hpp"
#include "isa/adpcm.hpp"
#include "isa/bio_codec.hpp"
#include "isa/mjpeg.hpp"
#include "isa/mjpeg_delta.hpp"
#include "partition/isa_chooser.hpp"
#include "sim/rng.hpp"
#include "workload/audio.hpp"
#include "workload/ecg.hpp"
#include "workload/video.hpp"

namespace {

using namespace iob;
using namespace iob::units;

/// Measure real compression ratios from the actual codecs on the actual
/// synthetic workloads.
struct MeasuredRatios {
  double ecg;
  double audio;
  double video;
  double video_delta;  ///< inter-frame codec on the same stream
};

MeasuredRatios measure() {
  sim::Rng rng(42);
  workload::EcgGenerator ecg_gen;
  const auto ecg_adc = ecg_gen.generate_adc(20.0, rng);
  const double ecg_ratio = isa::BioCodec(true).compression_ratio(ecg_adc);

  workload::AudioGenerator audio_gen;
  const auto pcm = audio_gen.generate_pcm(2.0, rng);
  const auto enc = isa::AdpcmCodec::encode(pcm);
  const double audio_ratio =
      static_cast<double>(pcm.size() * 2) / static_cast<double>(enc.size_bytes());

  workload::VideoGenerator video_gen;
  isa::MjpegCodec mjpeg(50);
  isa::MjpegDeltaEncoder delta(50, 30);
  double video_ratio = 0.0;
  std::size_t raw_bytes = 0, delta_bytes = 0;
  for (int i = 0; i < 6; ++i) {
    const auto frame = video_gen.next_frame(rng);
    if (i < 3) video_ratio += mjpeg.compression_ratio(frame);
    raw_bytes += frame.size_bytes();
    delta_bytes += delta.encode_next(frame).size_bytes();
  }
  video_ratio /= 3.0;
  const double delta_ratio = static_cast<double>(raw_bytes) / static_cast<double>(delta_bytes);
  return {ecg_ratio, audio_ratio, video_ratio, delta_ratio};
}

void print_isa_ablation(const MeasuredRatios& ratios) {
  comm::WiRLink wir;
  const energy::Battery batt = energy::Battery::coin_cell_1000mah();

  struct Stream {
    const char* name;
    double raw_bps;
    double sense_w;
    std::vector<partition::IsaMode> modes;
  };
  const std::vector<Stream> streams = {
      {"ECG patch (360 Hz x 16 b)", 5760.0, 8e-6,
       {{"raw", 5760.0, 0.0},
        {"delta+varint+huffman (measured)", 5760.0 / ratios.ecg, 0.05e6},
        {"beat features only", 200.0, 0.2e6},
        {"local arrhythmia CNN", 40.0, 0.25e6}}},
      {"audio pendant (16 kHz x 16 b)", 256e3, 150e-6,
       {{"raw PCM", 256e3, 0.0},
        {"ADPCM 4:1 (measured)", 256e3 / ratios.audio, 0.5e6},
        {"MFCC features", 16e3, 1.2e6},
        {"local KWS DS-CNN", 100.0, 2.7e6}}},
      {"camera node (QVGA 15 fps)", 9.216e6, 25e-3,
       {{"raw luma", 9.216e6, 0.0},
        {"MJPEG q50 (measured)", 9.216e6 / ratios.video, 3e6},
        {"MJPEG+delta (measured)", 9.216e6 / ratios.video_delta, 4e6},
        {"local visual-wake-words CNN", 60.0, 60e6}}},
  };

  common::print_banner("T5a — ISA / data-compression ablation (Wi-R leaf, measured codecs)");
  for (const auto& s : streams) {
    std::cout << "[" << s.name << "]\n";
    partition::IsaChooser chooser(wir, 20e-12, s.sense_w);
    const auto evals = chooser.evaluate_all(s.modes);
    const std::size_t best = chooser.best_index(s.modes);
    common::Table t({"ISA mode", "output rate", "sense", "ISA compute", "Wi-R comm",
                     "node total", "battery life", "chosen"});
    for (std::size_t i = 0; i < evals.size(); ++i) {
      const auto& e = evals[i];
      const double life = energy::battery_life_days(batt, e.total_power_w());
      t.add_row({e.mode.name, common::si_format(e.mode.output_rate_bps, "b/s"),
                 common::si_format(e.sense_power_w, "W"),
                 common::si_format(e.compute_power_w, "W"),
                 common::si_format(e.comm_power_w, "W"),
                 common::si_format(e.total_power_w(), "W"), common::fixed(life, 1) + " d",
                 i == best ? "<== best" : ""});
    }
    std::cout << t.to_string() << "\n";
  }
  common::print_note("measured ratios: ECG " + common::fixed(ratios.ecg, 2) + ":1, ADPCM " +
                     common::fixed(ratios.audio, 2) + ":1, MJPEG " +
                     common::fixed(ratios.video, 1) + ":1, MJPEG+delta " +
                     common::fixed(ratios.video_delta, 1) + ":1");
  common::print_note("with Wi-R's ULP comm, raw streaming is already optimal for kb/s nodes;");
  common::print_note("light compression pays from ~100 kb/s up; heavyweight local inference");
  common::print_note("never wins on the leaf — exactly the paper's ISA-as-option stance");
}

void print_harvesting() {
  const energy::Battery batt = energy::Battery::coin_cell_1000mah();
  common::print_banner("T5b — Energy harvesting vs node class (indoor window 10-200 uW)");

  struct NodeClass {
    const char* name;
    double platform_w;
  };
  const NodeClass classes[] = {
      {"biopotential patch (ISA + Wi-R)", 12e-6},
      {"smart ring / tracker", 55e-6},
      {"ExG array node", 180e-6},
      {"audio node (ADPCM + Wi-R)", 160e-6},
      {"video node (MJPEG + Wi-R)", 25e-3},
  };
  common::Table t({"node class", "platform power", "harvest needed", "10 uW PV", "50 uW PV",
                   "200 uW TEG+PV"});
  for (const auto& c : classes) {
    auto verdict = [&](double harvest_w) {
      const double life = energy::battery_life_s(batt, c.platform_w, harvest_w);
      if (std::isinf(life)) return std::string("charging-free");
      return common::fixed(life / day, 0) + " d";
    };
    t.add_row({c.name, common::si_format(c.platform_w, "W"),
               common::si_format(c.platform_w, "W"), verdict(10e-6), verdict(50e-6),
               verdict(200e-6)});
  }
  std::cout << t.to_string();
  common::print_note("paper Sec. V: 10-200 uW indoor harvesting + Wi-R -> perpetual ULP nodes;");
  common::print_note("video nodes remain battery-bound (camera sensor power dominates)");
}

void BM_MjpegEncodeQvga(benchmark::State& state) {
  workload::VideoGenerator gen;
  sim::Rng rng(1);
  const auto frame = gen.next_frame(rng);
  isa::MjpegCodec codec(50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(frame));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frame.size_bytes()));
}
BENCHMARK(BM_MjpegEncodeQvga)->Unit(benchmark::kMillisecond);

void BM_AdpcmEncodeSecond(benchmark::State& state) {
  workload::AudioGenerator gen;
  sim::Rng rng(2);
  const auto pcm = gen.generate_pcm(1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::AdpcmCodec::encode(pcm));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pcm.size() * 2));
}
BENCHMARK(BM_AdpcmEncodeSecond)->Unit(benchmark::kMicrosecond);

void BM_BioCodecEncodeSecond(benchmark::State& state) {
  workload::EcgGenerator gen;
  sim::Rng rng(3);
  const auto adc = gen.generate_adc(1.0, rng);
  isa::BioCodec codec(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(adc));
  }
}
BENCHMARK(BM_BioCodecEncodeSecond)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const MeasuredRatios ratios = measure();
  print_isa_ablation(ratios);
  print_harvesting();
  return iob::bench::run_microbenchmarks(argc, argv);
}
