// Reproduces **Fig. 3** of the paper: "Projected battery life of wearables
// with respect to data rate using Wi-R" — 1000 mAh battery, 100 pJ/bit
// Wi-R, sensing power from the literature survey, negligible computation.
// Prints the full curve, the perpetual-operability boundary, the paper's
// device-class markers, and the harvesting view (10-200 uW indoor window).

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/explorer.hpp"
#include "core/report.hpp"
#include "core/sweep_runner.hpp"
#include "energy/harvester.hpp"
#include "energy/sensing_power.hpp"

namespace {

using namespace iob;
using namespace iob::units;

void print_figure() {
  core::DesignSpaceExplorer ex(energy::Battery::coin_cell_1000mah());
  // Fan the curve across all cores; index-order merging keeps the output
  // byte-identical to the serial sweep.
  const core::SweepRunner runner;

  common::print_banner("Fig. 3 — Projected battery life vs data rate (Wi-R, 1000 mAh)");
  common::print_note("assumptions: 1000 mAh @ 3 V battery; Wi-R at 100 pJ/bit; sensing power");
  common::print_note("from the survey fit (DESIGN.md Sec. 4); computation considered negligible");
  std::cout << "\n" << core::render_fig3(ex.sweep(runner, 100.0, 10.0 * Mbps, 2));

  const double boundary = ex.perpetual_boundary_bps();
  std::cout << "\nPerpetually-operable region (>1 yr): data rate <= "
            << common::si_format(boundary, "b/s") << "\n\n";

  // The figure's device-class annotations.
  common::Table marks({"device class (Fig. 3 annotation)", "data rate", "battery life",
                       "bucket", "harvest needed for charge-free"});
  for (const auto& cls : {energy::kBiopotentialPatch, energy::kSmartRing, energy::kAudioNode,
                          energy::kExgArray, energy::kVideoNode}) {
    const auto p = ex.point(cls.data_rate_bps);
    marks.add_row({cls.name, common::si_format(cls.data_rate_bps, "b/s"),
                   common::fixed(p.life_days, 1) + " d", energy::to_string(p.life_class),
                   common::si_format(ex.required_harvest_w(cls.data_rate_bps), "W")});
  }
  std::cout << marks.to_string();
  common::print_note("paper: biopotential patches + rings/trackers -> perpetually operable;");
  common::print_note("audio-input AI (pins/assistants/ExG) -> all-week; AI video nodes -> all-day");
  common::print_note("indoor harvesting window 10-200 uW covers every perpetual-class node");

  // Contrast: the same curve with BLE-class energy/bit — the reason Wi-R
  // (not radio) is the artificial nervous system.
  core::DesignSpaceExplorer ble(energy::Battery::coin_cell_1000mah(), {}, 10e-9);
  common::Table contrast({"data rate", "life (Wi-R 100 pJ/b)", "life (BLE-class 10 nJ/b)",
                          "Wi-R advantage"});
  for (const double r : {1.0 * kbps, 10.0 * kbps, 100.0 * kbps, 1.0 * Mbps, 4.0 * Mbps}) {
    const double wir_d = ex.point(r).life_days;
    const double ble_d = ble.point(r).life_days;
    contrast.add_row({common::si_format(r, "b/s"), common::fixed(wir_d, 1) + " d",
                      common::fixed(ble_d, 1) + " d", common::fixed(wir_d / ble_d, 1) + "x"});
  }
  std::cout << "\n" << contrast.to_string();

  // Headline metrics for the perf trajectory.
  bench::JsonReporter json("fig3_battery_vs_datarate");
  const double t0 = bench::wall_time_s();
  const auto curve = ex.sweep(runner, 100.0, 10.0 * Mbps, 16);
  const double dt = bench::wall_time_s() - t0;
  json.add("sweep_points", static_cast<double>(curve.size()));
  json.add("sweep_points_per_s", static_cast<double>(curve.size()) / dt);
  json.add("sweep_threads", static_cast<double>(runner.threads()));
  json.add("perpetual_boundary_bps", boundary);
  json.write();
}

void BM_SweepFullCurve(benchmark::State& state) {
  core::DesignSpaceExplorer ex(energy::Battery::coin_cell_1000mah());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.sweep(100.0, 10e6, 8));
  }
}
BENCHMARK(BM_SweepFullCurve);

void BM_PerpetualBoundaryBisection(benchmark::State& state) {
  core::DesignSpaceExplorer ex(energy::Battery::coin_cell_1000mah());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.perpetual_boundary_bps());
  }
}
BENCHMARK(BM_PerpetualBoundaryBisection);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  return iob::bench::run_microbenchmarks(argc, argv);
}
