// Reproduces claim **T3** (Sec. I / IV): EQS fields are "contained around a
// personal bubble outside the human body" (physically secure, Das et al.
// Sci. Rep. 2019 [15]) while RF "radiates the signal in a large room scale
// bubble ... 5-10 meters away". Eavesdropper SNR vs distance and the
// resulting interception range for all three modalities.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "phy/leakage.hpp"

namespace {

using namespace iob;
using namespace iob::units;

void print_table() {
  phy::EqsLeakage eqs;
  phy::RfLeakage rf;
  phy::NfmiLeakage nfmi;

  common::print_banner("T3 — Physical security: eavesdropper SNR vs distance from body");

  common::Table t({"distance", "EQS/Wi-R SNR", "NFMI SNR", "BLE/RF SNR"});
  for (const double d : {0.01, 0.05, 0.1, 0.3, 1.0, 3.0, 5.0, 10.0}) {
    t.add_row({common::si_format(d, "m"), common::fixed(eqs.attacker_snr_db(d), 1) + " dB",
               common::fixed(nfmi.attacker_snr_db(d), 1) + " dB",
               common::fixed(rf.attacker_snr_db(d), 1) + " dB"});
  }
  std::cout << t.to_string();

  common::Table r({"modality", "interception range (BER 1e-3)", "paper expectation"});
  r.add_row({"EQS / Wi-R", common::si_format(eqs.interception_range_m(), "m"),
             "cm-scale personal bubble [15]"});
  r.add_row({"NFMI", common::si_format(nfmi.interception_range_m(), "m"),
             "sub-meter magnetic near field"});
  const double rf_range = rf.interception_range_m();
  r.add_row({"BLE / RF", (rf_range >= 100.0 ? ">100 m (free space; walls reduce to room scale)"
                                            : common::si_format(rf_range, "m")),
             "room scale, 5-10 m+"});
  std::cout << "\n" << r.to_string();

  common::print_note("EQS signal amplitude at the attacker collapses as (r0/(r0+d))^3 plus a");
  common::print_note("20 dB air-coupling penalty; the intended body-contact receiver sees " +
                     common::si_format(eqs.on_body_signal_v(), "V"));
}

void BM_InterceptionRangeSolve(benchmark::State& state) {
  phy::EqsLeakage eqs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eqs.interception_range_m());
  }
}
BENCHMARK(BM_InterceptionRangeSolve);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return iob::bench::run_microbenchmarks(argc, argv);
}
