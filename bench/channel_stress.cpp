// Hostile-channel stress sweep (docs/robustness.md): co-channel
// interference (`phy::InterferenceField`) and wearer body motion
// (`phy::BodyMotionProcess`) against a saturating audio population, with
// the closed-loop degradation ladder (`net::DegradationController`) armed
// and disarmed side by side. The headline claim: at every stressed SIR
// level the controller-on network delivers strictly more goodput than the
// controller-off one — full-size frames fall off the OOK waterfall cliff
// while the ladder's shrunken frames still land — and on the clean channel
// an armed-but-idle controller is bit-identical to no controller at all.
//
// The SIR levels park the collided-state SNIR on the steep part of the
// waterfall (~11-12 dB effective for Wi-R's 30 dB clean budget): full
// 240 B frames see FER ~0.99+ there, while the quarter-size frames of the
// deepest ladder rungs survive often enough to keep audio flowing. Duty
// cycle 1.0 models continuously-streaming aggressors (the worst case —
// any quiet gap is free goodput for the undegraded network).
//
// A separate deterministic recovery scenario (two-state still/occlusion
// motion chain with fixed sojourns) measures how long the ladder takes to
// walk back to normal after the channel heals — the
// `degradation_recovery_s` watched series.
//
// Set IOB_CHANNEL_SMOKE=1 (CI) to restrict the sweep to the clean and one
// stressed level with motion off, so both matrix legs exercise the
// dynamics overlay and the controller on every push without the full cost.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/expect.hpp"
#include "common/table.hpp"
#include "core/fleet.hpp"
#include "core/sweep_runner.hpp"
#include "net/degradation.hpp"
#include "net/network_sim.hpp"
#include "phy/body_motion.hpp"
#include "phy/interference.hpp"

namespace {

using namespace iob;

constexpr int kNodes = 8;
constexpr double kDurationS = 10.0;

/// One sweep point: an interference level x a motion profile x whether the
/// degradation controller is armed.
struct StressSpec {
  std::string sir_label = "clean";
  phy::SirLevel sir{};
  std::string motion_label = "still";
  bool motion = false;
  phy::BodyMotionParams motion_params{};
  bool controller = false;
};

struct StressResult {
  StressSpec spec;
  double goodput_bps = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_arq = 0;
  std::uint64_t dropped_overflow_clean = 0;
  std::uint64_t dropped_shed = 0;
  std::uint64_t frames_dropped = 0;
  double mean_latency_s = 0.0;
  std::uint64_t max_step = 0;       ///< deepest ladder rung over nodes
  std::uint64_t transitions = 0;
  double time_degraded_s = 0.0;     ///< summed over nodes
};

/// One audio leaf: 150 kb/s keeps the 8-node bus at ~2/3 utilization on
/// the clean channel (no saturation — the armed-idle bit-identity point
/// must not brush the queue) while leaving the controller-off stressed
/// points deep in retry saturation.
net::NodeConfig audio_leaf(int i, bool controller) {
  net::NodeConfig c;
  c.name = "audio-" + std::to_string(i);
  c.stream = c.name;
  c.sense_power_w = 150e-6;
  c.output_rate_bps = 150e3;
  c.frame_bytes = 240;
  c.settle_period_s = 0.1;  ///< responsive closed-loop sampling
  c.phase_s = 1e-3 * i;
  if (controller) c.degradation = net::DegradationConfig{};
  return c;
}

StressResult run_point(const StressSpec& spec, std::uint64_t seed) {
  net::NetworkConfig nc;
  nc.seed = seed;
  // A finite store bound: the controller-off stressed points queue far
  // faster than the saturated bus drains, so clean-path overflow (the
  // `dropped_overflow_clean` bucket) is part of what disarming costs.
  nc.mac.max_queue_frames = 128;
  if (spec.sir.aggressors > 0 && spec.sir.duty_cycle > 0.0) nc.dynamics.interference = spec.sir;
  if (spec.motion) nc.dynamics.motion = spec.motion_params;
  net::NetworkSim sim(core::make_bus_link(core::BusKind::kWiR), nc);
  for (int i = 0; i < kNodes; ++i) sim.add_node(audio_leaf(i, spec.controller));
  const net::NetworkReport report = sim.run(kDurationS);

  StressResult res;
  res.spec = spec;
  res.goodput_bps = report.aggregate_goodput_bps;
  double latency = 0.0;
  for (const net::NodeReport& n : report.nodes) {
    res.delivered += n.frames_delivered;
    res.dropped_arq += n.dropped_arq;
    res.dropped_overflow_clean += n.dropped_overflow_clean;
    res.dropped_shed += n.dropped_shed;
    res.frames_dropped += n.frames_dropped;
    latency += n.mean_latency_s;
    res.max_step = std::max(res.max_step, n.degradation_max_step);
    res.transitions += n.degradation_transitions;
    res.time_degraded_s += n.time_degraded_s;
  }
  res.mean_latency_s = latency / static_cast<double>(report.nodes.size());
  return res;
}

/// The interference axis. Per-aggressor SIR drops as the population grows
/// (closer/stronger radios), holding the collided-state SNIR on the 11-12
/// dB waterfall cliff where frame size decides survival.
std::vector<std::pair<std::string, phy::SirLevel>> sir_levels() {
  return {
      {"clean", {}},
      {"cafe", {/*aggressors=*/1, /*duty_cycle=*/1.0, /*aggressor_sir_db=*/-7.9}},
      {"gym", {/*aggressors=*/2, /*duty_cycle=*/1.0, /*aggressor_sir_db=*/-5.3}},
      {"subway", {/*aggressors=*/4, /*duty_cycle=*/1.0, /*aggressor_sir_db=*/-2.9}},
  };
}

std::vector<StressSpec> make_specs(bool smoke) {
  std::vector<std::pair<std::string, phy::SirLevel>> sirs = sir_levels();
  if (smoke) sirs = {sirs[0], sirs[2]};
  std::vector<StressSpec> specs;
  for (const auto& [sir_label, sir] : sirs) {
    for (int m = 0; m < (smoke ? 1 : 2); ++m) {
      for (bool controller : {false, true}) {
        StressSpec s;
        s.sir_label = sir_label;
        s.sir = sir;
        if (m == 1) {
          s.motion_label = "running";
          s.motion = true;
          s.motion_params = phy::running_profile();
        }
        s.controller = controller;
        specs.push_back(std::move(s));
      }
    }
  }
  return specs;
}

/// Deterministic recovery scenario: a fixed-sojourn two-state motion chain
/// occludes the link for exactly the first second of the run (deep enough
/// to drive the ladder down), then holds still for longer than the run;
/// the returned value is how long after the channel heals the controller
/// is back on rung 0. Pure function of the seed.
double measure_recovery_s() {
  constexpr double kOcclusionEndS = 1.0;
  phy::BodyMotionParams chain;
  chain.deterministic_sojourns = true;
  chain.initial = phy::MotionState::kOcclusion;
  auto& still = chain.states[static_cast<std::size_t>(phy::MotionState::kStill)];
  still.mean_sojourn_s = 10.0;  // outlives the run: exactly one occlusion
  still.gain_delta_db = 0.0;
  still.next = {0.0, 0.0, 0.0, 1.0};  // -> occlusion
  auto& occl = chain.states[static_cast<std::size_t>(phy::MotionState::kOcclusion)];
  occl.mean_sojourn_s = kOcclusionEndS;
  occl.gain_delta_db = -18.0;
  occl.next = {1.0, 0.0, 0.0, 0.0};  // -> still
  // Unreachable gait states still need valid rows for the ctor.
  for (phy::MotionState s : {phy::MotionState::kWalk, phy::MotionState::kRun}) {
    auto& p = chain.states[static_cast<std::size_t>(s)];
    p.mean_sojourn_s = 1.0;
    p.next = {1.0, 0.0, 0.0, 0.0};
  }

  net::NetworkConfig nc;
  nc.seed = 42;
  nc.dynamics.motion = chain;
  net::NetworkSim sim(core::make_bus_link(core::BusKind::kWiR), nc);
  for (int i = 0; i < 4; ++i) sim.add_node(audio_leaf(i, /*controller=*/true));
  const net::NetworkReport report = sim.run(8.0);

  double latest = 0.0;
  for (const net::NodeReport& n : report.nodes) {
    IOB_ENSURES(n.degradation_max_step > 0, "occlusion must drive the ladder down");
    IOB_ENSURES(n.degradation_step == 0, "every node must recover to rung 0");
    latest = std::max(latest, n.degradation_recovery_s);
  }
  IOB_ENSURES(latest > kOcclusionEndS, "recovery must postdate the occlusion");
  return latest - kOcclusionEndS;
}

void print_sweep() {
  const bool smoke = std::getenv("IOB_CHANNEL_SMOKE") != nullptr;
  const std::vector<StressSpec> specs = make_specs(smoke);
  common::print_banner("Channel stress — " + std::to_string(specs.size()) +
                       " NetworkSim points (" + std::to_string(kNodes) +
                       " leaves x SIR x motion x controller)" + (smoke ? " [smoke]" : ""));

  const core::SweepRunner runner;
  const double t0 = bench::wall_time_s();
  // Controller on/off pairs share a spec index parity; the whole sweep
  // shares one base seed per pair so each on/off comparison is apples to
  // apples (identical traffic phases and motion draws).
  const std::vector<StressResult> results = runner.map_over<StressResult, StressSpec>(
      specs, [](const StressSpec& s, std::size_t i) {
        return run_point(s, core::SweepRunner::point_seed(42, i / 2));
      });
  const double dt = bench::wall_time_s() - t0;

  // Clean-channel, motion-off baseline (controller off = index 0).
  const double baseline = results.front().goodput_bps;
  common::Table table({"sir", "motion", "ctrl", "goodput", "retained", "delivered",
                       "drops arq/ovfl/shed", "rung", "trans", "degraded"});
  for (const StressResult& r : results) {
    const double retained = baseline > 0.0 ? r.goodput_bps / baseline : 1.0;
    table.add_row({r.spec.sir_label, r.spec.motion_label, r.spec.controller ? "on" : "off",
                   common::fixed(r.goodput_bps / 1e3, 1) + " kb/s",
                   common::fixed(retained * 100.0, 1) + "%", std::to_string(r.delivered),
                   std::to_string(r.dropped_arq) + "/" +
                       std::to_string(r.dropped_overflow_clean) + "/" +
                       std::to_string(r.dropped_shed),
                   std::to_string(r.max_step), std::to_string(r.transitions),
                   common::fixed(r.time_degraded_s, 1) + " s"});
  }
  std::cout << table.to_string();

  // Acceptance: armed-but-idle is bit-identical on the clean channel, and
  // the controller wins goodput outright at every stressed SIR level.
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const StressResult& off = results[i];
    const StressResult& on = results[i + 1];
    if (off.spec.sir.aggressors == 0 && !off.spec.motion) {
      IOB_ENSURES(on.goodput_bps == off.goodput_bps &&
                      on.delivered == off.delivered &&
                      on.frames_dropped == off.frames_dropped &&
                      on.mean_latency_s == off.mean_latency_s,
                  "armed-but-idle controller must be bit-identical on the clean channel");
    }
    if (off.spec.sir.aggressors > 0) {
      IOB_ENSURES(on.goodput_bps > off.goodput_bps,
                  "controller-on must out-deliver controller-off under interference");
    }
  }

  const double recovery_s = measure_recovery_s();
  std::cout << "\n  ladder recovery after a 1 s occlusion: " << common::fixed(recovery_s, 2)
            << " s back to normal\n";
  common::print_note("'retained' is goodput vs the clean controller-off baseline; at every");
  common::print_note("stressed SIR level the armed ladder strictly out-delivers disarmed");
  std::cout << "\n  " << results.size() << " simulations in " << common::fixed(dt, 2)
            << " s (" << common::fixed(static_cast<double>(results.size()) / dt, 1)
            << " points/s on " << runner.threads() << " thread(s))\n";

  bench::JsonReporter json("channel_stress");
  json.add("channel_stress_points", static_cast<double>(results.size()));
  json.add("channel_stress_points_per_s", static_cast<double>(results.size()) / dt);
  json.add("degradation_recovery_s", recovery_s);
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const StressResult& off = results[i];
    const StressResult& on = results[i + 1];
    if (off.spec.motion) continue;  // watched keys come from the still rows
    const std::string k = off.spec.sir_label;
    json.add("channel_stress_goodput_off_" + k, off.goodput_bps);
    json.add("channel_stress_goodput_on_" + k, on.goodput_bps);
    // The headline watched series: controller-on goodput fraction at the
    // gym level (present in both smoke and full sweeps).
    if (k == "gym" && baseline > 0.0) {
      json.add("channel_stress_goodput_retained", on.goodput_bps / baseline);
    }
  }
  json.write();
}

void BM_ChannelPoint(benchmark::State& state) {
  std::vector<StressSpec> specs = make_specs(/*smoke=*/true);
  const StressSpec& spec = specs[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_point(spec, 42));
  }
}
BENCHMARK(BM_ChannelPoint)->Arg(0)->Arg(3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  return iob::bench::run_microbenchmarks(argc, argv);
}
