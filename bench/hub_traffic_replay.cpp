// Hub traffic-replay saturation bench (ROADMAP "server-tier hub" item): ONE
// hub terminates thousands of staged concurrent sessions — a deterministic
// replay of de-phased, jittered arrival traces over mixed models (KWS DS-CNN
// + ECG CNN1D), mixed precisions (f32 + int8), superframe-batched with
// execute-and-meter on — and the grid locates the saturation knee: delivered
// inference items/s and p99 queued latency vs session count vs
// `HubConfig::engine_threads`. The parallel engine fans each flush's
// sub-batches across the hub's persistent TaskPool; items/s is measured
// against host wall time, so the knee shows where the replay becomes
// kernel-bound and threads start paying.
//
// Also reports the fused im2col+pack-A GEMM speedup (f32 and int8) with a
// bitwise output-equality check against the strided path.
//
// Set IOB_REPLAY_SMOKE=1 (CI) to shrink the grid and duration.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <thread>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "comm/wir_link.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "net/network_sim.hpp"
#include "nn/gemm.hpp"
#include "nn/model_zoo.hpp"
#include "nn/qmodel.hpp"
#include "nn/tensor.hpp"

namespace {

using namespace iob;

// Replay shape: short 60 B feature frames keep the auto-sized TDMA slot
// small enough that even a 2000-node superframe stays well under the frame
// cadence (one frame per 0.5 s per session), so staging windows fill
// steadily instead of queues backing up.
constexpr std::uint32_t kFrameBytes = 60;
constexpr std::uint64_t kBytesPerInference = 20;  // 3 inferences per frame
constexpr double kFramePeriodS = 0.5;

std::uint64_t model_macs(const nn::Model& m) {
  std::uint64_t total = 0;
  for (const auto& p : m.profiles()) total += p.macs;
  return total;
}

std::uint64_t model_params(const nn::Model& m) {
  std::uint64_t total = 0;
  for (const auto& p : m.profiles()) total += p.params;
  return total;
}

struct ReplayResult {
  double items_per_s = 0.0;       ///< executed inferences / host wall s
  double p99_queued_s = 0.0;      ///< p99 of per-session mean queued latency
  double wall_s = 0.0;
  std::uint64_t executed = 0;
  std::uint64_t inferences = 0;
  std::uint64_t batched_passes = 0;
};

/// One replay point: `sessions` staged concurrent sessions on one hub with
/// `threads` engine threads. Deterministic trace: node i's model/precision
/// derive from i, its phase from a fixed LCG jitter — every (sessions,
/// threads) point replays the identical arrival schedule.
ReplayResult run_replay(int sessions, unsigned threads, unsigned batch_window, double duration_s,
                        const nn::Model& kws, const nn::Model& ecg) {
  net::NetworkConfig nc;
  nc.seed = 42;
  nc.mac.slot_s = 0;  // auto-size the slot from the link rate and frame MTU
  nc.mac.auto_slot_mtu_bytes = kFrameBytes;
  nc.hub.batch_window = batch_window;
  nc.hub.execute_and_meter = true;
  nc.hub.engine_threads = threads;
  net::NetworkSim net(std::make_unique<comm::WiRLink>(), nc);

  std::uint64_t lcg = 0x2545F4914F6CDD1DULL;
  for (int i = 0; i < sessions; ++i) {
    const bool is_kws = (i % 2) == 0;
    const nn::Model& m = is_kws ? kws : ecg;
    net::NodeConfig n;
    n.name = (is_kws ? "kws-" : "ecg-") + std::to_string(i);
    n.stream = n.name;
    n.sense_power_w = 50e-6;
    n.output_rate_bps = static_cast<double>(kFrameBytes) * 8.0 / kFramePeriodS;
    n.frame_bytes = kFrameBytes;
    // Replayed arrivals: deterministic per-node jitter spreads frame
    // creation across the whole period (no population-wide phase snap).
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    n.phase_s = kFramePeriodS * static_cast<double>(lcg >> 11) /
                static_cast<double>(1ULL << 53);
    net.add_node(n);

    net::SessionConfig s;
    s.stream = n.stream;
    s.model = m.name();
    s.net = &m;
    s.macs_per_inference = model_macs(m);
    s.weight_bytes = model_params(m);
    s.bytes_per_inference = kBytesPerInference;
    s.precision = (i % 4) < 2 ? nn::Precision::kF32 : nn::Precision::kInt8;
    net.add_session(s);
  }

  const double t0 = bench::wall_time_s();
  net.run(duration_s);
  const double wall = bench::wall_time_s() - t0;

  ReplayResult r;
  r.wall_s = wall;
  r.batched_passes = net.hub().batched_passes();
  std::vector<double> queued_means;
  queued_means.reserve(static_cast<std::size_t>(sessions));
  for (int i = 0; i < sessions; ++i) {
    const std::string stream =
        ((i % 2) == 0 ? "kws-" : "ecg-") + std::to_string(i);
    const net::SessionStats& st = net.hub().session(stream);
    r.executed += st.executed_inferences;
    r.inferences += st.inferences;
    if (st.queued_latency_s.count() > 0) queued_means.push_back(st.queued_latency_s.mean());
  }
  r.items_per_s = wall > 0 ? static_cast<double>(r.executed) / wall : 0.0;
  if (!queued_means.empty()) {
    std::sort(queued_means.begin(), queued_means.end());
    // ceil(0.99 * n) >= 1 for n >= 1, so the -1 never underflows.
    const std::size_t rank =
        static_cast<std::size_t>(std::ceil(0.99 * static_cast<double>(queued_means.size())));
    r.p99_queued_s = queued_means[std::min(queued_means.size() - 1, rank - 1)];
  }
  return r;
}

void print_replay_grid() {
  const bool smoke = std::getenv("IOB_REPLAY_SMOKE") != nullptr;
  const std::vector<int> session_counts =
      smoke ? std::vector<int>{64, 128} : std::vector<int>{250, 500, 1000, 2000};
  const std::vector<unsigned> thread_counts =
      smoke ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4, 8};
  const unsigned window = 2;
  const double duration_s = smoke ? 1.0 : 3.0;

  const nn::Model kws = nn::make_kws_dscnn();
  const nn::Model ecg = nn::make_ecg_cnn1d();

  common::print_banner(
      "Hub traffic replay — items/s and p99 queued latency vs sessions x engine threads" +
      std::string(smoke ? " [smoke]" : ""));

  std::vector<std::string> header{"sessions"};
  for (const unsigned t : thread_counts) header.push_back("t=" + std::to_string(t));
  header.emplace_back("p99 queued (t max)");
  header.emplace_back("passes");
  common::Table table(header);

  bench::JsonReporter json("hub_traffic_replay");
  bool deterministic = true;
  double headline_items = 0.0, headline_p99 = 0.0;
  double knee_serial = 0.0, knee_4t = 0.0;
  for (const int n : session_counts) {
    std::vector<std::string> row{std::to_string(n)};
    std::uint64_t ref_inferences = 0, ref_executed = 0;
    ReplayResult last;
    for (const unsigned t : thread_counts) {
      const ReplayResult r = run_replay(n, t, window, duration_s, kws, ecg);
      row.push_back(common::si_format(r.items_per_s, "it/s"));
      json.add("items_per_s_n" + std::to_string(n) + "_t" + std::to_string(t), r.items_per_s);
      // Determinism cross-check: the replay schedule and batched engine are
      // bit-identical across thread counts, so every counted stat must be.
      if (t == thread_counts.front()) {
        ref_inferences = r.inferences;
        ref_executed = r.executed;
      } else if (r.inferences != ref_inferences || r.executed != ref_executed) {
        deterministic = false;
      }
      if (n == session_counts.back()) {
        if (t == 1) knee_serial = r.items_per_s;
        if (t == 4) knee_4t = r.items_per_s;
        if (t == thread_counts.back()) {
          headline_items = r.items_per_s;
          headline_p99 = r.p99_queued_s;
        }
      }
      last = r;
    }
    row.push_back(common::si_format(last.p99_queued_s, "s"));
    row.push_back(std::to_string(last.batched_passes));
    json.add("p99_queued_latency_s_n" + std::to_string(n), last.p99_queued_s);
    table.add_row(row);
  }
  std::cout << table.to_string();
  common::print_note("items/s = executed inferences / host wall time of the replay;");
  common::print_note("the knee is where staged batches get deep enough that the replay turns");
  common::print_note("kernel-bound and engine threads start paying");

  json.add("hub_replay_items_per_s", headline_items);
  json.add("hub_replay_p99_queued_latency_s", headline_p99);
  json.add("hub_replay_deterministic", deterministic ? 1.0 : 0.0);
  // Thread scaling is only meaningful relative to the host's core budget —
  // a single-core CI runner shows a flat (or slightly inverted) knee.
  json.add("hub_replay_host_cpus", static_cast<double>(std::thread::hardware_concurrency()));
  if (!smoke && knee_serial > 0.0) {
    json.add("hub_replay_speedup_4t", knee_4t / knee_serial);
    std::printf("\n  engine_threads=4 vs 1 at %d sessions: %.2fx items/s\n",
                session_counts.back(), knee_4t / knee_serial);
  }
  std::printf("  counted stats bit-identical across thread counts: %s\n",
              deterministic ? "yes" : "NO");

  // Batch-window sensitivity at the knee (full mode): wider windows deepen
  // the staged batch (higher items/s) at the cost of queued latency.
  if (!smoke) {
    common::Table wt({"window", "items/s (1000 sessions, t=4)", "p99 queued"});
    for (const unsigned w : {1u, 2u, 4u}) {
      const ReplayResult r = run_replay(1000, 4, w, duration_s, kws, ecg);
      wt.add_row({std::to_string(w), common::si_format(r.items_per_s, "it/s"),
                  common::si_format(r.p99_queued_s, "s")});
      json.add("items_per_s_n1000_w" + std::to_string(w) + "_t4", r.items_per_s);
    }
    std::cout << wt.to_string();
  }

  // Packed-A im2col: fused im2col+pack vs the strided-K path, same weights,
  // same inputs, bitwise-equal outputs required (the pack only reorders the
  // panel reads; every multiply/add stays in the original order). Timing is
  // paired — each round measures pack-on and pack-off back-to-back and the
  // reported speedup is the median of the per-round ratios, so slow drift
  // on a shared host cancels instead of biasing one side.
  common::print_banner("Fused im2col+pack-A GEMM — speedup over strided-K panels (bit-exact)");
  const int rounds = smoke ? 5 : 15;
  const double round_budget_s = smoke ? 0.02 : 0.05;
  const int batch = 8;
  nn::Shape in_shape{batch};
  in_shape.insert(in_shape.end(), kws.input_shape().begin(), kws.input_shape().end());
  nn::Tensor input(in_shape, 0.0f);
  for (std::int64_t i = 0; i < input.size(); ++i) {
    input.data()[i] = static_cast<float>((i * 37) % 256) / 128.0f - 1.0f;
  }
  const nn::QuantizedModel qkws(kws);

  // Fixed-rep timer: calibrate reps once against the round budget, then
  // every round times the same amount of work on both sides.
  const auto time_reps = [](int reps, const std::function<void()>& fn) {
    const double t0 = bench::wall_time_s();
    for (int i = 0; i < reps; ++i) fn();
    return bench::wall_time_s() - t0;
  };
  const auto calibrate = [&](const std::function<void()>& fn) {
    fn();  // warm up
    const double t0 = bench::wall_time_s();
    fn();
    const double once = std::max(1e-6, bench::wall_time_s() - t0);
    return std::max(1, static_cast<int>(round_budget_s / once));
  };
  const auto paired_speedup = [&](const std::function<void()>& packed_fn,
                                  const std::function<void()>& strided_fn, int reps) {
    std::vector<double> ratios;
    ratios.reserve(static_cast<std::size_t>(rounds));
    for (int i = 0; i < rounds; ++i) {
      const double t_on = time_reps(reps, packed_fn);
      const double t_off = time_reps(reps, strided_fn);
      ratios.push_back(t_off / t_on);
    }
    std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2, ratios.end());
    return ratios[ratios.size() / 2];
  };

  nn::set_pack_a_enabled(true);
  const nn::Tensor f32_packed = kws.run_batched(input);
  const nn::Tensor s8_packed = qkws.run_batched(input);
  nn::set_pack_a_enabled(false);
  const nn::Tensor f32_strided = kws.run_batched(input);
  const nn::Tensor s8_strided = qkws.run_batched(input);
  nn::set_pack_a_enabled(true);

  const std::function<void()> f32_on = [&] {
    nn::set_pack_a_enabled(true);
    benchmark::DoNotOptimize(kws.run_batched(input));
  };
  const std::function<void()> f32_off = [&] {
    nn::set_pack_a_enabled(false);
    benchmark::DoNotOptimize(kws.run_batched(input));
  };
  const std::function<void()> s8_on = [&] {
    nn::set_pack_a_enabled(true);
    benchmark::DoNotOptimize(qkws.run_batched(input));
  };
  const std::function<void()> s8_off = [&] {
    nn::set_pack_a_enabled(false);
    benchmark::DoNotOptimize(qkws.run_batched(input));
  };
  const double f32_speedup = paired_speedup(f32_on, f32_off, calibrate(f32_on));
  const double s8_speedup = paired_speedup(s8_on, s8_off, calibrate(s8_on));
  nn::set_pack_a_enabled(true);

  // Primitive-level pairs on the kws front conv shape (10x4 stride 2 on
  // 49x10x1, oc=64): the packed path's home turf, free of the depthwise and
  // pointwise layers that bypass packing entirely. `conv` times the fused
  // im2col+pack+GEMM chain end-to-end; `gemm` isolates the panel-read win
  // (streaming loads vs four stride-K streams) with both inputs prebuilt.
  double gemm_speedup = 0.0;
  const double conv_speedup = [&] {
    const int cb = 8, cih = 49, ciw = 10, cic = 1, ckh = 10, ckw = 4;
    const int coh = 25, cow = 5, cpt = 4, cpl = 1, coc = 64;
    const std::int64_t cK = static_cast<std::int64_t>(ckh) * ckw * cic;
    const std::int64_t cM = static_cast<std::int64_t>(cb) * coh * cow;
    std::vector<float> cin(static_cast<std::size_t>(cb) * cih * ciw * cic);
    for (std::size_t i = 0; i < cin.size(); ++i) {
      cin[i] = static_cast<float>((i * 37) % 256) / 128.0f - 1.0f;
    }
    std::vector<float> wts(static_cast<std::size_t>(cK) * coc);
    for (std::size_t i = 0; i < wts.size(); ++i) {
      wts[i] = static_cast<float>((i * 53) % 256) / 128.0f - 1.0f;
    }
    std::vector<float> cbias(coc, 0.05f), col(static_cast<std::size_t>(cM) * cK);
    std::vector<float> ap(static_cast<std::size_t>((cM + 3) / 4 * 4) * cK);
    std::vector<float> out(static_cast<std::size_t>(cM) * coc);
    const std::function<void()> fused = [&] {
      nn::im2col_pack_a_nhwc(cb, cih, ciw, cic, ckh, ckw, 2, 2, cpt, cpl, coh, cow, cin.data(),
                             ap.data());
      nn::gemm_blocked_pa(cM, coc, cK, ap.data(), wts.data(), cbias.data(), out.data());
      benchmark::DoNotOptimize(out.data());
    };
    const std::function<void()> classic = [&] {
      nn::im2col_nhwc(cb, cih, ciw, cic, ckh, ckw, 2, 2, cpt, cpl, coh, cow, cin.data(),
                      col.data());
      nn::gemm_blocked(cM, coc, cK, col.data(), wts.data(), cbias.data(), out.data());
      benchmark::DoNotOptimize(out.data());
    };
    nn::im2col_pack_a_nhwc(cb, cih, ciw, cic, ckh, ckw, 2, 2, cpt, cpl, coh, cow, cin.data(),
                           ap.data());
    nn::im2col_nhwc(cb, cih, ciw, cic, ckh, ckw, 2, 2, cpt, cpl, coh, cow, cin.data(), col.data());
    const std::function<void()> gemm_pa_only = [&] {
      nn::gemm_blocked_pa(cM, coc, cK, ap.data(), wts.data(), cbias.data(), out.data());
      benchmark::DoNotOptimize(out.data());
    };
    const std::function<void()> gemm_only = [&] {
      nn::gemm_blocked(cM, coc, cK, col.data(), wts.data(), cbias.data(), out.data());
      benchmark::DoNotOptimize(out.data());
    };
    gemm_speedup = paired_speedup(gemm_pa_only, gemm_only, calibrate(gemm_pa_only));
    return paired_speedup(fused, classic, calibrate(fused));
  }();

  const bool bitexact =
      f32_packed.size() == f32_strided.size() && s8_packed.size() == s8_strided.size() &&
      std::memcmp(f32_packed.data(), f32_strided.data(),
                  static_cast<std::size_t>(f32_packed.size()) * sizeof(float)) == 0 &&
      std::memcmp(s8_packed.data(), s8_strided.data(),
                  static_cast<std::size_t>(s8_packed.size()) * sizeof(float)) == 0;
  std::printf(
      "  f32 model: %.2fx  int8 model: %.2fx  conv primitive: %.2fx  gemm phase: %.2fx  "
      "bitwise equal: %s\n",
      f32_speedup, s8_speedup, conv_speedup, gemm_speedup, bitexact ? "yes" : "NO");
  json.add("pack_a_speedup_f32", f32_speedup);
  json.add("pack_a_speedup_int8", s8_speedup);
  json.add("pack_a_speedup_conv_f32", conv_speedup);
  json.add("pack_a_speedup_gemm_f32", gemm_speedup);
  json.add("pack_a_bitexact", bitexact ? 1.0 : 0.0);
  json.write();
}

// ---- microbenchmarks --------------------------------------------------------

void BM_ReplayPoint(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  static const nn::Model kws = nn::make_kws_dscnn();
  static const nn::Model ecg = nn::make_ecg_cnn1d();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_replay(64, threads, 2, 0.5, kws, ecg));
  }
}
BENCHMARK(BM_ReplayPoint)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_replay_grid();
  return iob::bench::run_microbenchmarks(argc, argv);
}
