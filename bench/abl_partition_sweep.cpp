// Ablation **A1**: DNN split-point sweep across leaf/hub for the three
// reference wearable-AI models under Wi-R vs BLE transfer costs. This is
// the paper's architectural argument made quantitative: the optimizer's
// chosen split flips from "all on leaf" (BLE) to "full offload" (Wi-R),
// and the crossover link-energy sits between the two technologies.

#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "comm/ble_link.hpp"
#include "comm/wir_link.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/explorer.hpp"
#include "core/sweep_runner.hpp"
#include "nn/model_zoo.hpp"
#include "partition/partitioner.hpp"

namespace {

using namespace iob;
using namespace iob::units;

partition::CostModel cost_for(const comm::Link& link, double offered_bps) {
  partition::CostModel cm;
  cm.leaf_hub = partition::CostModel::leg_from_link(link, offered_bps);
  cm.hub_cloud = partition::CostModel::default_uplink();
  return cm;
}

double sweep_model(const nn::Model& m, const core::SweepRunner& runner) {
  comm::WiRLink wir;
  comm::BleLink ble;
  const partition::Partitioner p_wir(m, cost_for(wir, 100e3));
  const partition::Partitioner p_ble(m, cost_for(ble, 100e3));

  std::cout << "[" << m.name() << ": " << m.total_macs() << " MACs, input "
            << m.input_bytes_i8() << " B]\n";
  common::Table t({"split s1 (layers on leaf)", "boundary bytes", "leaf E (Wi-R)",
                   "leaf E (BLE)", "latency (Wi-R)"});
  const std::size_t n = m.layer_count();
  // Evaluate every split point across the pool (each is an independent cost
  // evaluation); rows come back in index order, so the table is unchanged.
  struct SplitRow {
    partition::PartitionPlan wir_plan;
    partition::PartitionPlan ble_plan;
  };
  const std::vector<SplitRow> rows = runner.map<SplitRow>(n + 1, [&](std::size_t s1) {
    return SplitRow{p_wir.evaluate(s1, n), p_ble.evaluate(s1, n)};
  });
  for (std::size_t s1 = 0; s1 <= n; ++s1) {
    const auto& plan_w = rows[s1].wir_plan;
    const auto& plan_b = rows[s1].ble_plan;
    const std::string boundary =
        s1 == n ? "-" : common::si_format(static_cast<double>(plan_w.bytes_leaf_to_hub), "B");
    t.add_row({std::to_string(s1) + (s1 == 0 ? " (full offload)" : s1 == n ? " (all local)" : ""),
               boundary, common::si_format(plan_w.leaf_energy_j(), "J"),
               common::si_format(plan_b.leaf_energy_j(), "J"),
               common::si_format(plan_w.latency_s, "s")});
  }
  std::cout << t.to_string();

  const auto opt_w = p_wir.optimize(partition::Objective::kLeafEnergy);
  const auto opt_b = p_ble.optimize(partition::Objective::kLeafEnergy);
  common::print_note("optimal on Wi-R: " + opt_w.describe(m) + " | leaf " +
                     common::si_format(opt_w.leaf_energy_j(), "J"));
  common::print_note("optimal on BLE:  " + opt_b.describe(m) + " | leaf " +
                     common::si_format(opt_b.leaf_energy_j(), "J"));

  partition::CostModel base = cost_for(wir, 100e3);
  const double cross = core::offload_crossover_energy_per_bit_j(m, base, runner);
  common::print_note("offload-crossover link energy: " + common::si_format(cross, "J/b") +
                     "  (Wi-R 100 pJ/b is below it; BLE ~15 nJ/b is above)");
  std::cout << "\n";
  return cross;
}

void print_sweeps() {
  common::print_banner("A1 — DNN partitioning sweep: leaf/hub split vs link technology");
  const core::SweepRunner runner;
  const double t0 = iob::bench::wall_time_s();
  const double cross_ecg = sweep_model(nn::make_ecg_cnn1d(), runner);
  const double cross_kws = sweep_model(nn::make_kws_dscnn(), runner);
  const double cross_vww = sweep_model(nn::make_vww_micronet(), runner);
  const double dt = iob::bench::wall_time_s() - t0;

  iob::bench::JsonReporter json("abl_partition_sweep");
  json.add("wall_time_s", dt);
  json.add("sweep_threads", static_cast<double>(runner.threads()));
  json.add("crossover_j_per_bit_ecg", cross_ecg);
  json.add("crossover_j_per_bit_kws", cross_kws);
  json.add("crossover_j_per_bit_vww", cross_vww);
  json.write();
}

void BM_OptimizePartition(benchmark::State& state) {
  const nn::Model m = nn::make_kws_dscnn();
  comm::WiRLink wir;
  const partition::Partitioner part(m, cost_for(wir, 100e3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(part.optimize(partition::Objective::kLeafEnergy));
  }
}
BENCHMARK(BM_OptimizePartition)->Unit(benchmark::kMicrosecond);

void BM_CrossoverBisection(benchmark::State& state) {
  const nn::Model m = nn::make_ecg_cnn1d();
  comm::WiRLink wir;
  partition::CostModel base = cost_for(wir, 100e3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::offload_crossover_energy_per_bit_j(m, base));
  }
}
BENCHMARK(BM_CrossoverBisection)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_sweeps();
  return iob::bench::run_microbenchmarks(argc, argv);
}
