// Microbenchmarks for the simulation hot path: event schedule/cancel/pop
// churn on the two-band (calendar wheel + 4-ary heap) slab-backed
// `sim::EventQueue`, compared against the seed design (std::function actions
// in an unordered_map behind a binary std::priority_queue, reproduced below
// as `LegacyEventQueue`), plus sweep-point throughput of the parallel
// deterministic `core::SweepRunner` vs thread count. Emits
// BENCH_perf_sim_core.json with the headline numbers so the perf trajectory
// is tracked across PRs.
//
// Workloads:
//  * schedule/pop churn — a window of W in-flight events; every fire
//    schedules its successor one period ahead (the steady state of every
//    periodic sensor/MAC timer in the repo).
//  * timeout churn — every live event also schedules R timeout events and
//    cancels R older ones (ARQ/MAC guard timers: almost always cancelled
//    before firing). This is where the seed structurally collapses: each
//    dead entry eventually costs it a heap pop plus a hash lookup, while
//    the new queue drops it with a generation compare.
//  * steady-state allocation count — global operator new/delete are
//    interposed and counted across the second half of a churn run.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <queue>
#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "common/alloc_interposer.hpp"  // defines global operator new/delete
#include "common/expect.hpp"
#include "core/sweep_runner.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

// ---- allocation interposition ------------------------------------------------

namespace {
// TaskPool workers allocate too; the counter is process-wide.
std::atomic<std::uint64_t>& g_alloc_count = iob::alloc_interposer::new_calls;
}

namespace {

using namespace iob;

// ---- the seed event queue, verbatim semantics, kept as the perf baseline ----

class LegacyEventQueue {
 public:
  using Action = std::function<void()>;

  std::uint64_t schedule(double when, Action action) {
    const std::uint64_t id = next_id_++;
    heap_.push(Entry{when, next_seq_++, id});
    actions_.emplace(id, std::move(action));
    ++live_count_;
    return id;
  }

  bool cancel(std::uint64_t id) {
    const auto it = actions_.find(id);
    if (it == actions_.end()) return false;
    actions_.erase(it);
    --live_count_;
    return true;
  }

  [[nodiscard]] bool empty() const { return live_count_ == 0; }

  double run_next() {
    skip_dead();
    const Entry top = heap_.top();
    heap_.pop();
    auto it = actions_.find(top.id);
    Action action = std::move(it->second);
    actions_.erase(it);
    --live_count_;
    action();
    return top.when;
  }

 private:
  struct Entry {
    double when;
    std::uint64_t seq;
    std::uint64_t id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void skip_dead() {
    while (!heap_.empty() && actions_.find(heap_.top().id) == actions_.end()) heap_.pop();
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<std::uint64_t, Action> actions_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::size_t live_count_ = 0;
};

// ---- schedule/pop churn ------------------------------------------------------

struct ChurnResult {
  double events_per_s = 0.0;
  double allocs_per_event = 0.0;  ///< steady-state (second half of the run)
};

/// Steady-state schedule/pop cycle: `window` events always in flight at
/// 1/window spacing (denser populations as the node count scales), every
/// fire schedules its successor one period out. The capture (queue, context
/// pointer, timestamp) mirrors a node TX event — too big for libstdc++
/// std::function's inline buffer, comfortably inside Callback's 48 bytes.
template <typename Q>
ChurnResult churn(std::uint64_t total, std::uint64_t window) {
  Q q;
  struct Ctx {
    Q* q;
    std::uint64_t budget;
    std::uint64_t half_mark;  ///< budget level where alloc sampling starts
    std::uint64_t fired = 0;
    std::uint64_t allocs_at_half = 0;
    double sum = 0.0;
  } ctx{&q, total - window, (total - window) / 4, 0, 0, 0.0};
  struct Fire {
    Ctx* c;
    double t;
    double payload;  ///< stand-in for frame metadata a real TX event carries
    void operator()() {
      c->sum += t + payload;
      ++c->fired;
      if (c->budget > 0) {
        if (c->budget-- == c->half_mark) c->allocs_at_half = g_alloc_count;
        const double nt = t + 1.0;
        c->q->schedule(nt, Fire{c, nt, payload});
      }
    }
  };
  const double gap = 1.0 / static_cast<double>(window);
  for (std::uint64_t i = 0; i < window; ++i) {
    const double t = 1.0 + static_cast<double>(i) * gap;
    q.schedule(t, Fire{&ctx, t, 0.5});
  }
  const double start = bench::wall_time_s();
  while (!q.empty()) q.run_next();
  const double elapsed = bench::wall_time_s() - start;
  IOB_ENSURES(ctx.fired == total, "churn must fire every scheduled event");
  ChurnResult r;
  r.events_per_s = static_cast<double>(total) / elapsed;
  // Sample the last quarter of the run: by then the slab, bucket ring and
  // heap have all reached their high-water capacities.
  r.allocs_per_event =
      static_cast<double>(g_alloc_count - ctx.allocs_at_half) / static_cast<double>(ctx.half_mark);
  return r;
}

// ---- timeout churn (ARQ-style cancellation-heavy) ---------------------------

/// Every live fire also schedules `R` timeout events ~1 period out and
/// cancels `R` older outstanding timeouts — the retransmission-timer
/// pattern, where the ACK cancels almost every timer before it fires.
/// Returns live-event throughput (each live event carries 2R timer ops).
template <typename Q, typename Id>
double timeout_churn(std::uint64_t lives, std::uint64_t window, int r, bool burst_prime) {
  Q q;
  struct Ctx {
    Q* q;
    std::vector<Id> ring;
    std::size_t ring_pos = 0;
    std::uint64_t budget;
    std::uint64_t fired = 0;
    double sum = 0.0;
    int r;
  } ctx;
  ctx.q = &q;
  ctx.budget = lives - window;
  ctx.r = r;
  struct Fire {
    Ctx* c;
    double t;
    double payload;
    void operator()() {
      c->sum += t + payload;
      ++c->fired;
      if (c->budget > 0) {
        --c->budget;
        const double nt = t + 1.0;
        c->q->schedule(nt, Fire{c, nt, payload});
        for (int i = 0; i < c->r; ++i) {
          const Id id = c->q->schedule(nt + 1.0, Fire{c, nt + 1.0, payload});
          c->q->cancel(c->ring[c->ring_pos]);
          c->ring[c->ring_pos] = id;
          c->ring_pos = (c->ring_pos + 1) % c->ring.size();
        }
      }
    }
  };
  const double gap = 1.0 / static_cast<double>(window);
  for (std::uint64_t i = 0; i < window; ++i) {
    const double t = 1.0 + static_cast<double>(i) * gap;
    q.schedule(t, Fire{&ctx, t, 0.5});
  }
  // Outstanding timers: either spread over the next window span (a smooth
  // traffic mix) or in one burst at a single deadline (node-join storms,
  // superframe guard timers — where the seed's lazily-deleted heap entries
  // hurt the most).
  ctx.ring.resize(window * static_cast<std::size_t>(r > 0 ? r : 1));
  for (std::size_t i = 0; i < ctx.ring.size(); ++i) {
    const double t =
        burst_prime ? 3.0 : 2.0 + static_cast<double>(i) * gap / static_cast<double>(r > 0 ? r : 1);
    ctx.ring[i] = q.schedule(t, Fire{&ctx, t, 0.5});
  }
  const double start = bench::wall_time_s();
  while (!q.empty()) q.run_next();
  const double elapsed = bench::wall_time_s() - start;
  return static_cast<double>(ctx.fired) / elapsed;
}

// ---- sweep scaling -----------------------------------------------------------

/// One self-contained sweep point: a mini discrete-event run (16 mutually
/// interleaved periodic sources, ~8k events) seeded per index.
double sweep_point_work(std::uint64_t seed) {
  sim::Simulator s(seed);
  sim::Rng r = s.rng().fork(1);
  double acc = 0.0;
  for (int src = 0; src < 16; ++src) {
    s.every(0.001 * (src + 1), 0.002, [&](sim::Time t) { acc += r.uniform() * t; });
  }
  s.run_until(1.0);
  return acc;
}

double sweep_points_per_s(std::size_t threads, std::size_t points) {
  const core::SweepRunner runner(threads);
  const double start = bench::wall_time_s();
  const std::vector<double> out = runner.map<double>(points, [](std::size_t i) {
    return sweep_point_work(core::SweepRunner::point_seed(7, i));
  });
  const double elapsed = bench::wall_time_s() - start;
  IOB_ENSURES(out.size() == points, "sweep dropped points");
  return static_cast<double>(points) / elapsed;
}

// ---- google-benchmark registrations -----------------------------------------

void BM_EventChurn_New(benchmark::State& state) {
  const auto window = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(churn<sim::EventQueue>(window * 4, window).events_per_s);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(window) * 4);
}
BENCHMARK(BM_EventChurn_New)->Arg(4096)->Arg(65536)->Unit(benchmark::kMillisecond);

void BM_EventChurn_Legacy(benchmark::State& state) {
  const auto window = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(churn<LegacyEventQueue>(window * 4, window).events_per_s);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(window) * 4);
}
BENCHMARK(BM_EventChurn_Legacy)->Arg(4096)->Arg(65536)->Unit(benchmark::kMillisecond);

void BM_TimeoutChurn_New(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(timeout_churn<sim::EventQueue, sim::EventId>(65536, 16384, 4, false));
  }
}
BENCHMARK(BM_TimeoutChurn_New)->Unit(benchmark::kMillisecond);

void BM_TimeoutChurn_Legacy(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(timeout_churn<LegacyEventQueue, std::uint64_t>(65536, 16384, 4, false));
  }
}
BENCHMARK(BM_TimeoutChurn_Legacy)->Unit(benchmark::kMillisecond);

void BM_SweepRunner_Threads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sweep_points_per_s(threads, 32));
  }
}
BENCHMARK(BM_SweepRunner_Threads)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// ---- headline summary --------------------------------------------------------

template <typename F>
double best_of(int n, F f) {
  double best = 0.0;
  for (int i = 0; i < n; ++i) best = std::max(best, f());
  return best;
}

void print_headline() {
  std::printf("perf_sim_core — event-core and sweep-engine throughput\n\n");
  bench::JsonReporter json("perf_sim_core");

  // Plain schedule/pop churn at a deep window (fleet-scale population).
  constexpr std::uint64_t kWindow = 65536;
  constexpr std::uint64_t kEvents = 16 * kWindow;
  churn<sim::EventQueue>(kEvents / 4, kWindow);  // warm-up
  churn<LegacyEventQueue>(kEvents / 4, kWindow);
  ChurnResult new_alloc_probe;
  const double new_eps = best_of(3, [&] {
    new_alloc_probe = churn<sim::EventQueue>(kEvents, kWindow);
    return new_alloc_probe.events_per_s;
  });
  ChurnResult legacy_alloc_probe;
  const double legacy_eps = best_of(3, [&] {
    legacy_alloc_probe = churn<LegacyEventQueue>(kEvents, kWindow);
    return legacy_alloc_probe.events_per_s;
  });
  std::printf("schedule/pop churn (W=%llu): %10.3g ev/s (two-band)  vs %10.3g ev/s (seed)  -> %.1fx\n",
              static_cast<unsigned long long>(kWindow), new_eps, legacy_eps,
              new_eps / legacy_eps);
  std::printf("steady-state allocations  : %10.3f per event (two-band) vs %.3f (seed)\n",
              new_alloc_probe.allocs_per_event, legacy_alloc_probe.allocs_per_event);

  // Timeout churn: the ARQ/MAC-guard pattern (80%% of timers cancelled).
  constexpr std::uint64_t kTimeoutWindow = 262144;
  constexpr std::uint64_t kTimeoutLives = 6 * kTimeoutWindow;
  constexpr int kTimeoutsPerFire = 4;
  timeout_churn<sim::EventQueue, sim::EventId>(kTimeoutLives / 4, kTimeoutWindow,
                                               kTimeoutsPerFire, false);  // warm-up
  timeout_churn<LegacyEventQueue, std::uint64_t>(kTimeoutLives / 4, kTimeoutWindow,
                                                 kTimeoutsPerFire, false);
  const double new_tps = best_of(2, [&] {
    return timeout_churn<sim::EventQueue, sim::EventId>(kTimeoutLives, kTimeoutWindow,
                                                        kTimeoutsPerFire, false);
  });
  const double legacy_tps = best_of(2, [&] {
    return timeout_churn<LegacyEventQueue, std::uint64_t>(kTimeoutLives, kTimeoutWindow,
                                                          kTimeoutsPerFire, false);
  });
  std::printf("timeout churn (80%% cancel): %10.3g live-ev/s      vs %10.3g live-ev/s   -> %.1fx\n",
              new_tps, legacy_tps, new_tps / legacy_tps);
  const double new_bps = best_of(2, [&] {
    return timeout_churn<sim::EventQueue, sim::EventId>(kTimeoutLives, kTimeoutWindow,
                                                        kTimeoutsPerFire, true);
  });
  const double legacy_bps = best_of(2, [&] {
    return timeout_churn<LegacyEventQueue, std::uint64_t>(kTimeoutLives, kTimeoutWindow,
                                                          kTimeoutsPerFire, true);
  });
  std::printf("timeout churn (burst)     : %10.3g live-ev/s      vs %10.3g live-ev/s   -> %.1fx\n",
              new_bps, legacy_bps, new_bps / legacy_bps);

  json.add("events_per_s", new_eps);
  json.add("events_per_s_legacy", legacy_eps);
  json.add("event_churn_speedup", new_eps / legacy_eps);
  json.add("steady_allocs_per_event", new_alloc_probe.allocs_per_event);
  json.add("steady_allocs_per_event_legacy", legacy_alloc_probe.allocs_per_event);
  json.add("timeout_events_per_s", new_tps);
  json.add("timeout_events_per_s_legacy", legacy_tps);
  json.add("timeout_churn_speedup", new_tps / legacy_tps);
  json.add("timeout_burst_events_per_s", new_bps);
  json.add("timeout_burst_events_per_s_legacy", legacy_bps);
  json.add("timeout_burst_churn_speedup", new_bps / legacy_bps);

  std::printf("\nsweep scaling (32 points x ~8k events each):\n");
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const double pps = sweep_points_per_s(threads, 32);
    std::printf("  %zu thread(s): %8.2f points/s\n", threads, pps);
    json.add("sweep_points_per_s_t" + std::to_string(threads), pps);
  }
  json.write();
}

}  // namespace

int main(int argc, char** argv) {
  print_headline();
  return iob::bench::run_microbenchmarks(argc, argv);
}
