// Int8 quantized execution path benchmark (ISSUE 5): the quantized engine
// (`nn::QuantizedModel` — int8 im2col + pmaddwd GEMM with a fused
// requantize epilogue, runtime-dispatched SSE2/AVX2/AVX-512) against the
// f32 engine from PR 4 on all three zoo models, single-inference and
// batch-8. Reports throughput, the int8-vs-f32 speedups, accuracy deltas
// vs the f32 oracle (max logit error, top-1 agreement overall and on
// decision-margin-decisive inputs), and int8 weight footprints; verifies
// the zero-steady-state-allocation contract with the interposer. Emits
// BENCH_nn_int8.json; `nn_int8_batched_items_per_s_vww` is watched by
// scripts/collect_bench.py under the strict regression gate.
//
// Set IOB_NN_SMOKE=1 (CI) to shrink the measurement budgets.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/alloc_interposer.hpp"  // defines global operator new/delete
#include "common/expect.hpp"
#include "common/table.hpp"
#include "nn/model_zoo.hpp"
#include "nn/qmodel.hpp"
#include "nn/tensor.hpp"
#include "nn/workspace.hpp"

namespace {

std::atomic<std::uint64_t>& g_alloc_count = iob::alloc_interposer::new_calls;

using namespace iob;

constexpr int kBatch = 8;
constexpr int kAccuracyInputs = 32;

struct ModelEntry {
  const char* key;
  nn::Model model;
};

void print_headline() {
  const bool smoke = std::getenv("IOB_NN_SMOKE") != nullptr;
  // The smoke budget still feeds the strict CI regression gate (the vww
  // int8 series is watched), so it stays large enough to tame
  // shared-runner noise at the 10% threshold.
  const double budget_s = smoke ? 0.5 : 1.0;

  common::print_banner(
      std::string("NN int8 engine — quantized execution path vs the f32 engine") +
      (smoke ? " [smoke]" : ""));

  ModelEntry entries[] = {{"kws", nn::make_kws_dscnn()},
                          {"ecg", nn::make_ecg_cnn1d()},
                          {"vww", nn::make_vww_micronet()}};

  bench::JsonReporter json("nn_int8");
  common::Table t({"model", "int8 single (inf/s)", "f32 single", "speedup",
                   "int8 batched (inf/s)", "f32 batched", "speedup", "top-1 agree",
                   "max |dlogit|", "weights"});

  for (ModelEntry& e : entries) {
    const nn::Model& m = e.model;
    const nn::QuantizedModel qm(m);
    const nn::Tensor x = nn::patterned_tensor(m.input_shape(), 1);
    std::vector<nn::Tensor> samples;
    for (int s = 0; s < kBatch; ++s) samples.push_back(nn::patterned_tensor(m.input_shape(), s));
    const nn::Tensor stacked = nn::stack_batch(samples);

    nn::Workspace wf, wq;
    wf.configure(m, kBatch);
    wq.configure(qm, kBatch);

    // Accuracy gate before timing anything: bounded logit error everywhere,
    // and top-1 agreement wherever the f32 decision margin exceeds TWICE
    // the measured per-logit error — at that margin a flip is
    // mathematically impossible, so the gate follows from the error bound
    // rather than adding an independent flakiness surface (coin-flip
    // inputs on random-weight models are not decidable at int8 resolution).
    int agree = 0, decisive = 0, decisive_agree = 0;
    double max_err = 0.0;
    std::vector<nn::Tensor> f32_out, int8_out;
    for (int s = 0; s < kAccuracyInputs; ++s) {
      const nn::Tensor in = nn::patterned_tensor(m.input_shape(), 100 + s);
      f32_out.push_back(m.forward(in));
      int8_out.push_back(qm.forward(in));
      max_err = std::max(max_err, f32_out.back().max_abs_diff(int8_out.back()));
    }
    for (int s = 0; s < kAccuracyInputs; ++s) {
      const nn::Tensor& f = f32_out[static_cast<std::size_t>(s)];
      const nn::Tensor& q = int8_out[static_cast<std::size_t>(s)];
      const int af = bench::argmax(f.data(), f.size());
      const bool same = bench::argmax(q.data(), q.size()) == af;
      if (same) ++agree;
      double runner_up = -1e30;
      for (std::int64_t i = 0; i < f.size(); ++i) {
        if (static_cast<int>(i) != af) runner_up = std::max(runner_up, double{f[i]});
      }
      if (f[af] - runner_up > 2.0 * max_err) {
        ++decisive;
        if (same) ++decisive_agree;
      }
    }
    IOB_ENSURES(max_err < 0.05, "int8 logit error exceeded the accuracy bound");
    IOB_ENSURES(decisive_agree == decisive,
                "int8 top-1 disagreed with f32 on a decisive input");

    const double q1 = bench::rate_per_s(budget_s, [&] {
      benchmark::DoNotOptimize(qm.run_into(wq, x.data(), 1).data);
    });
    const double f1 = bench::rate_per_s(budget_s, [&] {
      benchmark::DoNotOptimize(m.run_into(wf, x.data(), 1).data);
    });
    const double q8 = kBatch * bench::rate_per_s(budget_s, [&] {
      benchmark::DoNotOptimize(qm.run_into(wq, stacked.data(), kBatch).data);
    });
    const double f8 = kBatch * bench::rate_per_s(budget_s, [&] {
      benchmark::DoNotOptimize(m.run_into(wf, stacked.data(), kBatch).data);
    });

    // Zero-allocation contract: after warm-up, the steady-state int8 loop
    // must never touch the heap. Hard failure, not a report.
    qm.run_into(wq, x.data(), 1);
    qm.run_into(wq, stacked.data(), kBatch);
    const std::uint64_t allocs_before = g_alloc_count;
    constexpr int kAllocReps = 50;
    for (int r = 0; r < kAllocReps; ++r) {
      benchmark::DoNotOptimize(qm.run_into(wq, x.data(), 1).data);
      benchmark::DoNotOptimize(qm.run_into(wq, stacked.data(), kBatch).data);
    }
    const double allocs_per_inf =
        static_cast<double>(g_alloc_count - allocs_before) / (2.0 * kAllocReps);
    IOB_ENSURES(allocs_per_inf == 0.0, "steady-state int8 inference loop allocated");

    const double agree_frac = static_cast<double>(agree) / kAccuracyInputs;
    t.add_row({e.key, common::si_format(q1, ""), common::si_format(f1, ""),
               common::fixed(q1 / f1, 2) + "x", common::si_format(q8, ""),
               common::si_format(f8, ""), common::fixed(q8 / f8, 2) + "x",
               std::to_string(agree) + "/" + std::to_string(kAccuracyInputs),
               common::fixed(max_err, 4), common::si_format(double(qm.weight_bytes()), "B")});

    const std::string key = e.key;
    json.add("nn_int8_single_infer_per_s_" + key, q1);
    json.add("nn_int8_batched_items_per_s_" + key, q8);
    json.add("nn_f32_single_infer_per_s_" + key, f1);
    json.add("nn_f32_batched_items_per_s_" + key, f8);
    json.add("nn_int8_single_speedup_vs_f32_" + key, q1 / f1);
    json.add("nn_int8_batched_speedup_vs_f32_" + key, q8 / f8);
    json.add("nn_int8_top1_agreement_" + key, agree_frac);
    json.add("nn_int8_decisive_top1_agreement_" + key,
             decisive > 0 ? static_cast<double>(decisive_agree) / decisive : 1.0);
    json.add("nn_int8_max_logit_err_" + key, max_err);
    json.add("nn_int8_weight_bytes_" + key, static_cast<double>(qm.weight_bytes()));
    json.add("nn_int8_steady_allocs_per_inference_" + key, allocs_per_inf);
  }

  std::printf("%s", t.to_string().c_str());
  common::print_note("single = run_into at batch 1; batched = batch " + std::to_string(kBatch) +
                     ", per-sample rate; f32 = the PR 4 lowered engine");
  common::print_note("accuracy gated before timing: bounded logit error on all " +
                     std::to_string(kAccuracyInputs) + " inputs, top-1 agreement on every");
  common::print_note("decision-margin-decisive input; allocs interposer-counted after warm-up");
  json.write();
}

// ---- microbenchmarks --------------------------------------------------------

struct QuantZoo {
  nn::Model models[3] = {nn::make_kws_dscnn(), nn::make_ecg_cnn1d(), nn::make_vww_micronet()};
  nn::QuantizedModel qms[3] = {nn::QuantizedModel(models[0]), nn::QuantizedModel(models[1]),
                               nn::QuantizedModel(models[2])};
};

QuantZoo& quant_zoo() {
  static QuantZoo zoo;
  return zoo;
}

void BM_Int8SingleInference(benchmark::State& state) {
  QuantZoo& zoo = quant_zoo();
  const int idx = static_cast<int>(state.range(0));
  const nn::QuantizedModel& qm = zoo.qms[idx];
  const nn::Tensor x = nn::patterned_tensor(qm.input_shape(), 1);
  nn::Workspace ws;
  ws.configure(qm, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qm.run_into(ws, x.data(), 1).data);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Int8SingleInference)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

void BM_Int8BatchedInference(benchmark::State& state) {
  QuantZoo& zoo = quant_zoo();
  const nn::QuantizedModel& qm = zoo.qms[2];  // vww
  const auto batch = static_cast<int>(state.range(0));
  std::vector<nn::Tensor> samples;
  for (int s = 0; s < batch; ++s) samples.push_back(nn::patterned_tensor(qm.input_shape(), s));
  const nn::Tensor stacked = nn::stack_batch(samples);
  nn::Workspace ws;
  ws.configure(qm, batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qm.run_into(ws, stacked.data(), batch).data);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_Int8BatchedInference)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_QuantizeAtLoad(benchmark::State& state) {
  QuantZoo& zoo = quant_zoo();
  const nn::Model& m = zoo.models[static_cast<int>(state.range(0))];
  for (auto _ : state) {
    nn::QuantizedModel qm(m);
    benchmark::DoNotOptimize(qm.weight_bytes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuantizeAtLoad)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_headline();
  return iob::bench::run_microbenchmarks(argc, argv);
}
