// Ablation **A2**: MAC protocol comparison on the Wi-R body bus — hub-
// coordinated TDMA (leaves sleep between slots) vs CSMA/CA (leaves sense
// while backlogged) vs hub polling (leaves idle-listen). Periodic sensor
// traffic and bursty event traffic, from full discrete-event simulations.
// Quantifies why the artificial nervous system should be time-division
// coordinated, like its biological model.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "comm/csma.hpp"
#include "comm/polling.hpp"
#include "comm/tdma.hpp"
#include "comm/wir_link.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"
#include "workload/traffic.hpp"

namespace {

using namespace iob;
using namespace iob::units;

struct MacResult {
  double mean_latency_s = 0.0;
  double leaf_energy_j = 0.0;
  std::uint64_t delivered = 0;
  double utilization = 0.0;
};

constexpr int kNodes = 6;
constexpr double kDuration = 10.0;

template <typename SetupTraffic>
MacResult run_tdma(SetupTraffic&& setup) {
  sim::Simulator sim(7);
  comm::WiRLink wir;
  comm::TdmaBus bus(sim, wir, comm::TdmaConfig{});
  std::vector<comm::NodeId> ids;
  for (int i = 0; i < kNodes; ++i) ids.push_back(bus.add_node("n" + std::to_string(i)));
  std::vector<std::unique_ptr<workload::PeriodicSource>> periodic;
  std::vector<std::unique_ptr<workload::PoissonSource>> poisson;
  setup(sim, ids, [&bus](comm::NodeId id, sim::Time t, std::uint32_t bytes) {
    comm::Frame f;
    f.payload_bytes = bytes;
    f.created_s = t;
    bus.enqueue(id, f);
  }, periodic, poisson);
  bus.start();
  sim.run_until(kDuration);
  bus.stop();

  MacResult r;
  double lat = 0.0;
  for (const auto& ns : bus.stats().nodes) {
    lat += ns.latency_s.mean();
    r.leaf_energy_j += ns.tx_energy_j + ns.rx_energy_j;
    r.delivered += ns.frames_delivered;
  }
  r.mean_latency_s = lat / kNodes;
  r.utilization = bus.stats().utilization();
  return r;
}

template <typename SetupTraffic>
MacResult run_polling(SetupTraffic&& setup) {
  sim::Simulator sim(7);
  comm::WiRLink wir;
  comm::PollingMac mac(sim, wir, comm::PollingConfig{});
  std::vector<comm::NodeId> ids;
  for (int i = 0; i < kNodes; ++i) ids.push_back(mac.add_node("n" + std::to_string(i)));
  std::vector<std::unique_ptr<workload::PeriodicSource>> periodic;
  std::vector<std::unique_ptr<workload::PoissonSource>> poisson;
  setup(sim, ids, [&mac](comm::NodeId id, sim::Time t, std::uint32_t bytes) {
    comm::Frame f;
    f.payload_bytes = bytes;
    f.created_s = t;
    mac.enqueue(id, f);
  }, periodic, poisson);
  mac.start();
  sim.run_until(kDuration);
  mac.stop();
  mac.settle_idle_energy();

  MacResult r;
  double lat = 0.0;
  for (const auto& ns : mac.stats().nodes) {
    lat += ns.latency_s.mean();
    r.leaf_energy_j += ns.tx_energy_j + ns.rx_energy_j;
    r.delivered += ns.frames_delivered;
  }
  r.mean_latency_s = lat / kNodes;
  r.utilization = mac.stats().utilization();
  return r;
}

template <typename SetupTraffic>
MacResult run_csma(SetupTraffic&& setup) {
  sim::Simulator sim(7);
  comm::WiRLink wir;
  comm::CsmaBus bus(sim, wir, comm::CsmaConfig{});
  std::vector<comm::NodeId> ids;
  for (int i = 0; i < kNodes; ++i) ids.push_back(bus.add_node("n" + std::to_string(i)));
  std::vector<std::unique_ptr<workload::PeriodicSource>> periodic;
  std::vector<std::unique_ptr<workload::PoissonSource>> poisson;
  setup(sim, ids, [&bus](comm::NodeId id, sim::Time t, std::uint32_t bytes) {
    comm::Frame f;
    f.payload_bytes = bytes;
    f.created_s = t;
    bus.enqueue(id, f);
  }, periodic, poisson);
  bus.start();
  sim.run_until(kDuration);
  bus.stop();

  MacResult r;
  double lat = 0.0;
  for (const auto& ns : bus.stats().nodes) {
    lat += ns.latency_s.mean();
    r.leaf_energy_j += ns.tx_energy_j + ns.rx_energy_j;
    r.delivered += ns.frames_delivered;
  }
  r.mean_latency_s = lat / kNodes;
  r.utilization = bus.stats().utilization();
  return r;
}

/// Periodic: every node streams 240 B every 100 ms (~19.2 kb/s each).
auto periodic_traffic = [](sim::Simulator& sim, const std::vector<comm::NodeId>& ids,
                           auto enqueue,
                           std::vector<std::unique_ptr<workload::PeriodicSource>>& periodic,
                           std::vector<std::unique_ptr<workload::PoissonSource>>&) {
  for (const auto id : ids) {
    periodic.push_back(std::make_unique<workload::PeriodicSource>(
        sim, 0.1, 240, [enqueue, id](sim::Time t, std::uint32_t b) { enqueue(id, t, b); }));
  }
};

/// Bursty: Poisson events (mean 5/s per node) carrying 400 B bursts
/// (sized to fit a 1 ms TDMA slot at 4 Mb/s).
auto bursty_traffic = [](sim::Simulator& sim, const std::vector<comm::NodeId>& ids, auto enqueue,
                         std::vector<std::unique_ptr<workload::PeriodicSource>>&,
                         std::vector<std::unique_ptr<workload::PoissonSource>>& poisson) {
  for (const auto id : ids) {
    poisson.push_back(std::make_unique<workload::PoissonSource>(
        sim, 5.0, 400, [enqueue, id](sim::Time t, std::uint32_t b) { enqueue(id, t, b); }));
  }
};

void print_comparison() {
  common::print_banner("A2 — MAC ablation on the Wi-R body bus: TDMA vs CSMA vs polling");
  common::Table t({"traffic", "MAC", "delivered", "mean latency", "leaf energy (10 s)",
                   "mean leaf power", "bus util"});
  auto add = [&](const char* traffic, const char* mac, const MacResult& r) {
    t.add_row({traffic, mac, std::to_string(r.delivered),
               common::si_format(r.mean_latency_s, "s"),
               common::si_format(r.leaf_energy_j, "J"),
               common::si_format(r.leaf_energy_j / kDuration / kNodes, "W"),
               common::fixed(r.utilization * 100.0, 2) + "%"});
  };
  add("periodic", "TDMA", run_tdma(periodic_traffic));
  add("periodic", "CSMA/CA", run_csma(periodic_traffic));
  add("periodic", "polling", run_polling(periodic_traffic));
  add("bursty", "TDMA", run_tdma(bursty_traffic));
  add("bursty", "CSMA/CA", run_csma(bursty_traffic));
  add("bursty", "polling", run_polling(bursty_traffic));
  std::cout << t.to_string();
  common::print_note("polling keeps leaf receivers always listening; CSMA senses only while");
  common::print_note("backlogged (middle ground); TDMA leaves sleep outside their slots —");
  common::print_note("beacon-synchronized TDMA is the right ANS coordination discipline");
}

void BM_TdmaSuperframe(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_tdma(periodic_traffic));
  }
}
BENCHMARK(BM_TdmaSuperframe)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  return iob::bench::run_microbenchmarks(argc, argv);
}
