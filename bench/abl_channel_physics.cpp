// Ablation **A3**: the biophysics design choices behind Wi-R (paper Sec.
// IV-A/B). (a) Termination: the same body channel measured with a legacy
// 50-ohm load vs the high-impedance capacitive termination Wi-R uses — the
// historical misconception the EQS-HBC literature corrected. (b) Distance:
// "body as a wire" flatness vs the around-body RF rolloff. (c) Return-path
// sensitivity: how the ground capacitance (wearable size) moves the flat-
// band loss. (d) Safety: ICNIRP compliance margin across the EQS band
// (paper ref [19]).

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "phy/eqs_channel.hpp"
#include "phy/rf_channel.hpp"
#include "phy/safety.hpp"

namespace {

using namespace iob;
using namespace iob::units;

void print_termination() {
  phy::EqsChannel ch;
  common::print_banner("A3a — Termination ablation: high-Z (Wi-R) vs legacy 50-ohm");
  common::Table t({"frequency", "gain, high-Z termination", "gain, 50-ohm termination",
                   "50-ohm penalty"});
  for (const double f : {100.0 * kHz, 316.0 * kHz, 1.0 * MHz, 3.16 * MHz, 10.0 * MHz,
                         30.0 * MHz}) {
    const double hi = ch.gain_db(f, 1.0, phy::Termination::kHighImpedance);
    const double fifty = ch.gain_db(f, 1.0, phy::Termination::kFiftyOhm);
    t.add_row({common::si_format(f, "Hz"), common::fixed(hi, 1) + " dB",
               common::fixed(fifty, 1) + " dB", common::fixed(hi - fifty, 1) + " dB"});
  }
  t.print();
  common::print_note("high-Z: flat channel across the whole EQS band (corner at " +
                     common::si_format(ch.corner_frequency_hz(), "Hz") + ")");
  common::print_note("50-ohm: rises 20 dB/decade — the measurement artifact that long made");
  common::print_note("HBC look unusable at low frequency (Sec. IV-A)");
}

void print_distance() {
  phy::EqsChannel eqs;
  phy::RfChannel rf;
  common::print_banner("A3b — 'Body as a wire': EQS vs around-body RF distance behaviour");
  common::Table t({"on-body distance", "EQS gain @ 1 MHz", "RF on-body loss @ 2.4 GHz"});
  for (const double d : {0.1, 0.3, 0.6, 1.0, 1.5, 1.8}) {
    t.add_row({common::si_format(d, "m"), common::fixed(eqs.gain_db(1.0 * MHz, d), 1) + " dB",
               common::fixed(-rf.on_body_path_loss_db(d), 1) + " dB"});
  }
  t.print();
  common::print_note("EQS varies < 3 dB head-to-ankle; RF loses ~10 dB per distance doubling");
}

void print_return_path() {
  common::print_banner("A3c — Return-path sensitivity: device ground capacitance");
  common::Table t({"device class (ground size)", "C_return", "flat-band gain", "Wi-R link SNR "
                   "margin vs OOK 1e-6"});
  struct Case {
    const char* name;
    double c_ret_pf;
  };
  for (const Case c : {Case{"tiny earbud", 0.1}, Case{"patch node", 0.3},
                       Case{"wrist wearable", 1.0}, Case{"chest hub", 3.0}}) {
    phy::EqsChannelParams p;
    p.c_return_f = c.c_ret_pf * pF;
    phy::EqsChannel ch(p);
    t.add_row({c.name, common::fixed(c.c_ret_pf, 1) + " pF",
               common::fixed(ch.flat_band_gain_db(), 1) + " dB",
               common::fixed(ch.flat_band_gain_db() + 66.0, 1) + " dB"});
  }
  t.print();
  common::print_note("smaller devices couple less return current: the leaf-node form factor");
  common::print_note("costs ~10-20 dB, which the high-Z receiver's margin absorbs");
}

void print_safety() {
  phy::HbcSafetyModel safety;
  common::print_banner("A3d — ICNIRP safety compliance across the EQS band (ref [19])");
  common::Table t({"frequency", "tissue current @ 1 V", "in-situ field", "ICNIRP field limit",
                   "margin", "max safe swing"});
  for (const double f : {100.0 * kHz, 1.0 * MHz, 10.0 * MHz, 30.0 * MHz}) {
    t.add_row({common::si_format(f, "Hz"), common::si_format(safety.tissue_current_a(1.0, f), "A"),
               common::si_format(safety.in_situ_field_v_per_m(1.0, f), "V/m"),
               common::si_format(phy::HbcSafetyModel::icnirp_field_limit_v_per_m(f), "V/m"),
               common::fixed(safety.compliance_margin_db(1.0, f), 1) + " dB",
               common::si_format(safety.max_safe_tx_voltage_v(f), "V")});
  }
  t.print();
  common::print_note("EQS-HBC at a 1 V swing sits >20 dB under every ICNIRP restriction —");
  common::print_note("the safety result of Maity et al. [19] the paper builds on");
}

void BM_EqsChannelGain(benchmark::State& state) {
  phy::EqsChannel ch;
  double f = 1e5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.voltage_gain(f, 1.0));
    f = f < 3e7 ? f * 1.01 : 1e5;
  }
}
BENCHMARK(BM_EqsChannelGain);

void BM_SafetyMargin(benchmark::State& state) {
  phy::HbcSafetyModel safety;
  for (auto _ : state) {
    benchmark::DoNotOptimize(safety.compliance_margin_db(1.0, 1e6));
  }
}
BENCHMARK(BM_SafetyMargin);

}  // namespace

int main(int argc, char** argv) {
  print_termination();
  print_distance();
  print_return_path();
  print_safety();
  return iob::bench::run_microbenchmarks(argc, argv);
}
