// Inference-engine benchmark (ISSUE 4): the lowered, allocation-free nn hot
// path (im2col + blocked GEMM + workspace ping-pong, `Model::run_into`)
// against the seed nested-loop implementations (`Model::forward_reference`,
// retained verbatim as the oracle) on all three zoo models. Reports
// single-inference and batched-pass throughput plus speedups, and verifies
// the zero-steady-state-allocation contract with the same global operator
// new/delete interposer as bench/perf_sim_core.cpp. Emits
// BENCH_nn_infer.json; `nn_single_infer_per_s_vww` and
// `nn_batched_items_per_s_vww` are watched by scripts/collect_bench.py.
//
// Set IOB_NN_SMOKE=1 (CI) to shrink the measurement budgets.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/alloc_interposer.hpp"  // defines global operator new/delete
#include "common/expect.hpp"
#include "common/table.hpp"
#include "nn/model_zoo.hpp"
#include "nn/tensor.hpp"
#include "nn/workspace.hpp"

namespace {

std::atomic<std::uint64_t>& g_alloc_count = iob::alloc_interposer::new_calls;

using namespace iob;

constexpr int kBatch = 8;

struct ModelEntry {
  const char* key;
  nn::Model model;
};

void print_headline() {
  const bool smoke = std::getenv("IOB_NN_SMOKE") != nullptr;
  // The smoke budget still feeds the strict CI regression gate (the vww
  // series are watched), so it stays large enough to tame shared-runner
  // noise at the 10% threshold.
  const double budget_s = smoke ? 0.5 : 1.0;

  common::print_banner(
      std::string("NN inference engine — lowered GEMM pipeline vs seed loops") +
      (smoke ? " [smoke]" : ""));

  ModelEntry entries[] = {{"kws", nn::make_kws_dscnn()},
                          {"ecg", nn::make_ecg_cnn1d()},
                          {"vww", nn::make_vww_micronet()}};

  bench::JsonReporter json("nn_infer");
  common::Table t({"model", "single (inf/s)", "seed (inf/s)", "speedup", "batched (inf/s)",
                   "seed batched", "speedup", "allocs/inf"});

  for (ModelEntry& e : entries) {
    const nn::Model& m = e.model;
    const nn::Tensor x = nn::patterned_tensor(m.input_shape(), 1);
    std::vector<nn::Tensor> samples;
    for (int s = 0; s < kBatch; ++s) samples.push_back(nn::patterned_tensor(m.input_shape(), s));
    const nn::Tensor stacked = nn::stack_batch(samples);

    nn::Workspace ws;
    ws.configure(m, kBatch);

    // Bit-exactness gate before timing anything: lowered vs seed loops.
    {
      const nn::Tensor ref = m.forward_reference(x);
      const nn::Tensor bref = m.run_batched_reference(stacked);
      IOB_ENSURES(m.forward(x).max_abs_diff(ref) == 0.0, "lowered forward diverged from seed");
      IOB_ENSURES(m.run_batched(stacked).max_abs_diff(bref) == 0.0,
                  "lowered batched pass diverged from seed");
    }

    const double single = bench::rate_per_s(budget_s, [&] {
      benchmark::DoNotOptimize(m.run_into(ws, x.data(), 1).data);
    });
    const double single_seed = bench::rate_per_s(budget_s, [&] {
      benchmark::DoNotOptimize(m.forward_reference(x).data());
    });
    const double batched = kBatch * bench::rate_per_s(budget_s, [&] {
      benchmark::DoNotOptimize(m.run_into(ws, stacked.data(), kBatch).data);
    });
    const double batched_seed = kBatch * bench::rate_per_s(budget_s, [&] {
      benchmark::DoNotOptimize(m.run_batched_reference(stacked).data());
    });

    // Zero-allocation contract: after warm-up, the steady-state inference
    // loop must never touch the heap. Hard failure, not a report.
    m.run_into(ws, x.data(), 1);
    m.run_into(ws, stacked.data(), kBatch);
    const std::uint64_t allocs_before = g_alloc_count;
    constexpr int kAllocReps = 50;
    for (int r = 0; r < kAllocReps; ++r) {
      benchmark::DoNotOptimize(m.run_into(ws, x.data(), 1).data);
      benchmark::DoNotOptimize(m.run_into(ws, stacked.data(), kBatch).data);
    }
    const double allocs_per_inf =
        static_cast<double>(g_alloc_count - allocs_before) / (2.0 * kAllocReps);
    IOB_ENSURES(allocs_per_inf == 0.0, "steady-state inference loop allocated");

    t.add_row({e.key, common::si_format(single, ""), common::si_format(single_seed, ""),
               common::fixed(single / single_seed, 1) + "x", common::si_format(batched, ""),
               common::si_format(batched_seed, ""), common::fixed(batched / batched_seed, 1) + "x",
               common::fixed(allocs_per_inf, 3)});

    const std::string key = e.key;
    json.add("nn_single_infer_per_s_" + key, single);
    json.add("nn_single_infer_per_s_seed_" + key, single_seed);
    json.add("nn_single_speedup_" + key, single / single_seed);
    json.add("nn_batched_items_per_s_" + key, batched);
    json.add("nn_batched_items_per_s_seed_" + key, batched_seed);
    json.add("nn_batched_speedup_" + key, batched / batched_seed);
    json.add("nn_steady_allocs_per_inference_" + key, allocs_per_inf);
  }

  std::printf("%s", t.to_string().c_str());
  common::print_note("single = Model::run_into at batch 1; batched = batch " +
                     std::to_string(kBatch) + ", per-sample rate");
  common::print_note("seed = retained naive nested loops (forward_reference); bit-exactness");
  common::print_note("asserted before timing; allocs/inf interposer-counted after warm-up");
  json.write();
}

// ---- microbenchmarks --------------------------------------------------------

const nn::Model& model_by_index(int idx) {
  static const nn::Model models[] = {nn::make_kws_dscnn(), nn::make_ecg_cnn1d(),
                                     nn::make_vww_micronet()};
  return models[idx];
}

void BM_SingleInference(benchmark::State& state) {
  const nn::Model& m = model_by_index(static_cast<int>(state.range(0)));
  const nn::Tensor x = nn::patterned_tensor(m.input_shape(), 1);
  nn::Workspace ws;
  ws.configure(m, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.run_into(ws, x.data(), 1).data);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SingleInference)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

void BM_SingleInference_Seed(benchmark::State& state) {
  const nn::Model& m = model_by_index(static_cast<int>(state.range(0)));
  const nn::Tensor x = nn::patterned_tensor(m.input_shape(), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.forward_reference(x).data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SingleInference_Seed)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

void BM_BatchedInference(benchmark::State& state) {
  const nn::Model& m = model_by_index(2);  // vww
  const auto batch = static_cast<int>(state.range(0));
  std::vector<nn::Tensor> samples;
  for (int s = 0; s < batch; ++s) samples.push_back(nn::patterned_tensor(m.input_shape(), s));
  const nn::Tensor stacked = nn::stack_batch(samples);
  nn::Workspace ws;
  ws.configure(m, batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.run_into(ws, stacked.data(), batch).data);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchedInference)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_headline();
  return iob::bench::run_microbenchmarks(argc, argv);
}
