// Hub superframe batching (ROADMAP "batched hub inference" item): N
// concurrent KWS leaf streams terminate on one hub; the superframe-batched
// engine folds the sessions sharing the DS-CNN model into one pass per
// staging window, so each inference pays `weight_cost / batch` instead of
// re-streaming the int8 weights — server-side batching amortization,
// on-body. The grid sweeps concurrent leaf count x batch window (plus the
// per-frame path as reference) and reports hub compute energy per
// inference; `core::hub_batching_curve` overlays the analytic bound.
//
// Set IOB_HUB_SMOKE=1 (CI) to shrink the grid and duration.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "comm/wir_link.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/explorer.hpp"
#include "net/network_sim.hpp"
#include "nn/model_zoo.hpp"
#include "nn/tensor.hpp"

namespace {

using namespace iob;
using namespace iob::units;

// KWS DS-CNN footprint (the real zoo model: 2.74 MMAC, 22.6 k int8 params).
constexpr std::uint64_t kMacsPerInference = 2'736'792;
constexpr std::uint64_t kWeightBytes = 22'604;
// Weights stream from LPDDR-class memory (~80 pJ/bit); the hub SoC default
// in HubConfig is the conservative on-chip figure.
constexpr double kWeightByteEnergyJ = 640e-12;

net::SessionConfig kws_session(std::string stream) {
  net::SessionConfig s;
  s.stream = std::move(stream);
  s.macs_per_inference = kMacsPerInference;
  s.bytes_per_inference = 240;  // one KWS hop per delivered frame
  s.model = "kws-dscnn";
  s.weight_bytes = kWeightBytes;
  return s;
}

struct PointResult {
  std::uint64_t inferences = 0;
  double energy_per_inference_j = 0.0;
  double mean_queued_latency_s = 0.0;
  double mean_batch = 0.0;  ///< batched inferences per pass
  double kernel_time_s = 0.0;       ///< measured (execute-and-meter only)
  std::uint64_t executed = 0;       ///< inferences run on the nn engine
  double analytic_energy_j = 0.0;   ///< MAC/weight model, tracked alongside
};

PointResult run_point(int leaves, unsigned batch_window, double duration_s,
                      const nn::Model* execute = nullptr) {
  net::NetworkConfig cfg;
  cfg.seed = 42;
  cfg.hub.batch_window = batch_window;
  cfg.hub.energy_per_weight_byte_j = kWeightByteEnergyJ;
  cfg.hub.execute_and_meter = execute != nullptr;
  net::NetworkSim net(std::make_unique<comm::WiRLink>(), cfg);
  const double frame_period_s = 240.0 * 8.0 / 64e3;  // 30 ms
  for (int i = 0; i < leaves; ++i) {
    net::NodeConfig n;
    n.name = "audio-" + std::to_string(i);
    n.stream = n.name;
    n.sense_power_w = 150e-6;
    n.output_rate_bps = 64e3;
    n.frame_bytes = 240;
    // De-phased sensors: the staged batch tracks the window, not the
    // population snapping into one superframe.
    n.phase_s = frame_period_s * static_cast<double>(i) / static_cast<double>(leaves);
    net.add_node(n);
    net::SessionConfig s = kws_session(n.stream);
    s.net = execute;
    net.add_session(s);
  }
  net.run(duration_s);

  PointResult r;
  double energy = 0.0, queued = 0.0;
  std::uint64_t queued_n = 0, batched = 0;
  for (int i = 0; i < leaves; ++i) {
    const net::SessionStats& st = net.hub().session("audio-" + std::to_string(i));
    energy += st.compute_energy_j;
    r.inferences += st.inferences;
    queued += st.queued_latency_s.sum();
    queued_n += st.queued_latency_s.count();
    batched += st.batched_inferences;
    r.kernel_time_s += st.kernel_time_s;
    r.executed += st.executed_inferences;
    r.analytic_energy_j += st.analytic_compute_energy_j;
  }
  r.energy_per_inference_j = r.inferences > 0 ? energy / static_cast<double>(r.inferences) : 0.0;
  r.mean_queued_latency_s = queued_n > 0 ? queued / static_cast<double>(queued_n) : 0.0;
  const std::uint64_t hub_passes = net.hub().batched_passes();
  r.mean_batch = hub_passes > 0 ? static_cast<double>(batched) / static_cast<double>(hub_passes)
                                : (batched > 0 ? 1.0 : 0.0);
  return r;
}

void print_grid() {
  const bool smoke = std::getenv("IOB_HUB_SMOKE") != nullptr;
  const std::vector<int> leaf_counts = smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  const std::vector<unsigned> windows =
      smoke ? std::vector<unsigned>{0, 1, 4} : std::vector<unsigned>{0, 1, 2, 4, 8};
  const double duration_s = smoke ? 1.0 : 4.0;

  common::print_banner(
      "Hub superframe batching — energy/inference vs concurrent KWS leaves x batch window" +
      std::string(smoke ? " [smoke]" : ""));

  std::vector<std::string> header{"leaves"};
  for (const unsigned w : windows) {
    header.push_back(w == 0 ? "per-frame" : "window " + std::to_string(w));
  }
  header.emplace_back("queued lat (w max)");
  header.emplace_back("mean batch (w max)");
  common::Table t(header);

  bench::JsonReporter json("hub_batching");
  json.add("hub_macs_per_inference", static_cast<double>(kMacsPerInference));
  json.add("hub_weight_bytes", static_cast<double>(kWeightBytes));

  bool monotone_at_4plus = true;
  for (const int leaves : leaf_counts) {
    std::vector<std::string> row{std::to_string(leaves)};
    double prev = 0.0;
    PointResult last;
    for (const unsigned w : windows) {
      const PointResult r = run_point(leaves, w, duration_s);
      row.push_back(common::si_format(r.energy_per_inference_j, "J"));
      json.add("energy_per_inference_j_n" + std::to_string(leaves) + "_w" + std::to_string(w),
               r.energy_per_inference_j);
      if (leaves >= 4 && w >= 1 && prev > 0.0 && r.energy_per_inference_j >= prev) {
        monotone_at_4plus = false;
      }
      if (w >= 1) prev = r.energy_per_inference_j;
      last = r;
    }
    row.push_back(common::si_format(last.mean_queued_latency_s, "s"));
    row.push_back(common::fixed(last.mean_batch, 2));
    json.add("mean_batch_n" + std::to_string(leaves) + "_wmax", last.mean_batch);
    json.add("queued_latency_s_n" + std::to_string(leaves) + "_wmax", last.mean_queued_latency_s);
    t.add_row(row);
  }
  std::cout << t.to_string();

  // Analytic bound: pure weight amortization at exact batch sizes.
  const auto curve =
      core::hub_batching_curve(kMacsPerInference, kWeightBytes, net::HubConfig{}.energy_per_mac_j,
                               kWeightByteEnergyJ, {1, 2, 4, 8});
  for (const auto& p : curve) {
    json.add("analytic_energy_per_inference_j_b" + std::to_string(p.batch),
             p.energy_per_inference_j);
  }
  json.add("batch_energy_monotone_at_4plus_leaves", monotone_at_4plus ? 1.0 : 0.0);
  common::print_note("per-frame re-streams the 22.6 kB int8 weights for every inference;");
  common::print_note("wider staging windows fold concurrent sessions into one pass");
  std::printf("\n  energy/inference strictly decreasing with batch window at >= 4 leaves: %s\n",
              monotone_at_4plus ? "yes" : "NO");

  // Execute-and-meter: the same 4-leaf workload, but every staged inference
  // actually runs through the DS-CNN on the hub's allocation-free nn engine
  // (`Model::run_into`), and compute energy derives from measured kernel
  // time x HubConfig::compute_power_w. The analytic MAC/weight number keeps
  // accruing alongside, so both energy models print per point.
  const double meter_duration_s = smoke ? 0.25 : 1.0;
  const nn::Model kws = nn::make_kws_dscnn();
  common::print_banner("Execute-and-meter — measured kernel energy vs analytic model (4 leaves)");
  common::Table mt({"window", "inferences", "kernel time/inf", "measured E/inf",
                    "analytic E/inf"});
  for (const unsigned w : {0u, 4u}) {
    const PointResult r = run_point(4, w, meter_duration_s, &kws);
    const double n = r.inferences > 0 ? static_cast<double>(r.inferences) : 1.0;
    mt.add_row({w == 0 ? "per-frame" : std::to_string(w), std::to_string(r.inferences),
                common::si_format(r.kernel_time_s / n, "s"),
                common::si_format(r.energy_per_inference_j, "J"),
                common::si_format(r.analytic_energy_j / n, "J")});
    json.add("metered_kernel_time_per_inference_s_w" + std::to_string(w), r.kernel_time_s / n);
    json.add("metered_energy_per_inference_j_w" + std::to_string(w), r.energy_per_inference_j);
    json.add("metered_analytic_energy_per_inference_j_w" + std::to_string(w),
             r.analytic_energy_j / n);
    json.add("metered_executed_inferences_w" + std::to_string(w),
             static_cast<double>(r.executed));
  }
  std::cout << mt.to_string();
  common::print_note("measured = wall-clock kernel time x compute_power_w (250 mW NPU class);");
  common::print_note("host-dependent by design — it meters this machine's real kernel, so it");
  common::print_note("is reported for comparison and never fed to the deterministic fleet grids");
  json.write();
}

// ---- microbenchmarks --------------------------------------------------------

const nn::Model& kws_model() {
  static const nn::Model model = nn::make_kws_dscnn();
  return model;
}

/// The executable counterpart of the batched pass: run_batched streams each
/// layer's weights once for the whole batch (items/s counts samples; the
/// win over per-sample forward grows with models whose weights spill the
/// cache — the energy model prices that traffic explicitly).
void BM_ModelRunBatched(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  const nn::Model& m = kws_model();
  nn::Shape shape{batch};
  shape.insert(shape.end(), m.input_shape().begin(), m.input_shape().end());
  nn::Tensor input(shape, 0.25f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.run_batched(input));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ModelRunBatched)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_HubBatchingPoint(benchmark::State& state) {
  const auto leaves = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_point(leaves, 4, 1.0));
  }
}
BENCHMARK(BM_HubBatchingPoint)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_grid();
  return iob::bench::run_microbenchmarks(argc, argv);
}
