// Reproduces **Fig. 2** of the paper: "Typical Battery Life for Wearable
// Technologies" — battery life of pre-2024 wearables and the 2024
// wearable-AI boom devices, recomputed from the encoded capacity/power
// survey and bucketed with the paper's own vocabulary.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "energy/lifetime.hpp"
#include "net/device_library.hpp"

namespace {

using namespace iob;
using namespace iob::units;

void print_figure() {
  common::print_banner("Fig. 2 — Typical battery life of wearable technologies");

  for (const auto era : {net::DeviceEra::kPre2024, net::DeviceEra::kWearableAi2024}) {
    std::cout << "[" << net::to_string(era) << "]\n";
    common::Table t({"device", "battery", "platform power", "battery life", "bucket",
                     "paper label"});
    for (const auto& d : net::device_survey()) {
      if (d.era != era) continue;
      const double life_s = d.battery_life_s();
      t.add_row({d.name, common::fixed(d.battery_mah, 0) + " mAh @ " +
                             common::fixed(d.battery_v, 2) + " V",
                 common::si_format(d.platform_power_w, "W"),
                 common::fixed(d.battery_life_hours(), 1) + " h",
                 energy::to_string(energy::classify(life_s)), d.paper_battery_label});
    }
    std::cout << t.to_string() << "\n";
  }
  common::print_note("bucket == paper label for every device (asserted in tests/net_test.cpp)");
  common::print_note(
      "AI augmentation pushes device power up: smart glasses & MR headsets land at 3-5 hr");
}

void BM_SurveyClassification(benchmark::State& state) {
  for (auto _ : state) {
    for (const auto& d : iob::net::device_survey()) {
      benchmark::DoNotOptimize(iob::energy::classify(d.battery_life_s()));
    }
  }
}
BENCHMARK(BM_SurveyClassification);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  return iob::bench::run_microbenchmarks(argc, argv);
}
