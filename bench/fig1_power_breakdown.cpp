// Reproduces **Fig. 1** of the paper: per-component power of today's IoB
// nodes (sensors ~100s uW + CPU ~mW + radio ~10s mW) versus human-inspired
// IoB nodes (sensors 10-50 uW + ISA ~100 uW + Wi-R ~100 uW), evaluated by
// the platform power model over the three Sec.-II workload classes.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "comm/ble_link.hpp"
#include "comm/wir_link.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/comparison.hpp"
#include "core/platform_power.hpp"
#include "core/report.hpp"
#include "nn/model_zoo.hpp"
#include "nn/tensor.hpp"

namespace {

using namespace iob;
using namespace iob::units;

void print_figure() {
  comm::BleLink ble;
  comm::WiRLink wir;
  core::PlatformPowerModel model(ble, wir);
  core::ArchitectureComparison cmp(model, energy::Battery::coin_cell_1000mah());

  common::print_banner(
      "Fig. 1 — Today's IoB node vs Human-Inspired IoB node: power breakdown");
  std::cout << core::render_comparison(cmp.compare_reference_suite());

  common::print_note("paper Fig. 1 left:  sensors ~100s uW | CPU ~mW | radio ~10s of mW");
  common::print_note("paper Fig. 1 right: sensors 10-50 uW | ISA ~100 uW | Wi-R ~100 uW");
  common::print_note("conventional = local inference on node CPU + BLE reporting;");
  common::print_note("human-inspired = ULP AFE + ISA only + Wi-R streaming to wearable brain");

  // Also show the hub-side cost the offload induces, proving it is a system
  // win rather than cost shifting.
  common::Table hub({"workload", "leaf saving", "hub-induced", "net system win"});
  for (const auto& w : {core::ecg_patch_workload(), core::audio_pendant_workload(),
                        core::camera_node_workload()}) {
    const auto conv = model.evaluate(core::NodeArchitecture::kConventional, w);
    const auto hi = model.evaluate(core::NodeArchitecture::kHumanInspired, w);
    const double saving = conv.node_total_w() - hi.node_total_w();
    hub.add_row({w.name, common::si_format(saving, "W"),
                 common::si_format(hi.hub_induced_w, "W"),
                 common::si_format(saving - hi.hub_induced_w, "W")});
  }
  std::cout << "\n" << hub.to_string();
}

// Microbenchmark: the actual on-node inference cost the conventional
// architecture pays (DS-CNN forward pass).
void BM_KwsForwardPass(benchmark::State& state) {
  const nn::Model kws = nn::make_kws_dscnn();
  nn::Tensor x(kws.input_shape(), 0.25f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kws.forward(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kws.total_macs()));
}
BENCHMARK(BM_KwsForwardPass)->Unit(benchmark::kMillisecond);

void BM_PowerModelEvaluate(benchmark::State& state) {
  comm::BleLink ble;
  comm::WiRLink wir;
  core::PlatformPowerModel model(ble, wir);
  const auto w = core::audio_pendant_workload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.evaluate(core::NodeArchitecture::kHumanInspired, w));
  }
}
BENCHMARK(BM_PowerModelEvaluate);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  return iob::bench::run_microbenchmarks(argc, argv);
}
