// Robustness sweep (docs/robustness.md): the canonical fault regimes of
// `core::make_fault_plan` — node brownout/reboot, hub crash/restart
// flapping, Gilbert-Elliott burst loss, and all three combined — run
// against a fixed stress population at increasing fault pressure
// (`intensity` in {1, 2, 4}), fanned across `core::SweepRunner`. The
// headline outputs are availability (powered fraction of leaves, uptime
// fraction of the hub) and goodput retained vs the clean baseline: how
// gracefully the body network degrades when the clean-channel,
// always-powered assumptions of the paper's Fig. 1 deployment break.
//
// The stress population is deliberately harsher than the fleet grid's:
// three of every four leaves run a mW-class always-on ISA off a
// millijoule-scale storage cell with a body-heat harvester that covers
// sleep but not active load, so the brownout lifecycle actually
// duty-cycles inside a seconds-scale simulation instead of needing the
// days a 1000 mAh coin cell would take to reach the 5% SoC threshold.
//
// Set IOB_FAULT_SMOKE=1 (CI) to restrict the sweep to intensity 1 so both
// matrix legs exercise the injector on every push without the full cost.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/fleet.hpp"
#include "core/sweep_runner.hpp"
#include "energy/harvester.hpp"
#include "net/network_sim.hpp"

namespace {

using namespace iob;
using namespace iob::units;

constexpr int kNodes = 8;
constexpr double kDurationS = 8.0;  ///< long enough for >= 1 brownout cycle

/// One sweep point: a canonical fault regime at a pressure multiplier.
struct SweepSpec {
  core::FaultVariant variant = core::FaultVariant::kNone;
  double intensity = 1.0;
};

/// Derived outcome the table/JSON consume.
struct SweepResult {
  SweepSpec spec;
  double leaf_availability = 1.0;  ///< mean powered fraction over leaves
  double hub_availability = 1.0;
  double goodput_bps = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t retries = 0;  ///< ARQ retransmissions (burst loss shows here)
  std::uint64_t dropped_arq = 0;
  std::uint64_t dropped_fault = 0;
  std::uint64_t dropped_overflow = 0;
  std::uint64_t reboots = 0;
  std::uint64_t hub_crashes = 0;
};

net::NodeConfig audio_leaf(int i) {
  net::NodeConfig c;
  c.name = "audio-" + std::to_string(i);
  c.stream = c.name;
  c.sense_power_w = 150e-6;
  c.isa_power_w = 1e-6;
  c.output_rate_bps = 64e3;
  c.frame_bytes = 240;
  c.slot_weight = 2;
  c.phase_s = 1e-3 * i;
  return c;
}

/// The brownout victim: 3 mW active load off a ~5.4 mJ cell, with a
/// 1.5 mW harvester that wins only while the core sleeps. Drains to the
/// 5% threshold in ~3 s, recharges the 10% hysteresis band in well under
/// a second — several full brownout->reboot cycles per simulated run.
net::NodeConfig stress_leaf(int i) {
  net::NodeConfig c;
  c.name = "stress-" + std::to_string(i);
  c.stream = c.name;
  c.sense_power_w = 8e-6;
  c.isa_power_w = 3e-3;
  c.output_rate_bps = 5e3;
  c.frame_bytes = 240;
  c.battery_mah = 5e-4;
  c.settle_period_s = 0.1;  ///< resolve the lifecycle at 100 ms granularity
  c.phase_s = 1e-3 * i;
  energy::HarvesterParams teg;
  teg.source = energy::HarvestSource::kThermoelectric;
  teg.mean_power_w = 1.5e-3;
  teg.availability = 1.0;
  teg.relative_sigma = 0.1;
  c.harvester = teg;
  return c;
}

SweepResult run_point(const SweepSpec& spec, std::uint64_t seed) {
  net::NetworkConfig nc;
  nc.seed = seed;
  nc.hub.batch_window = 4;  // staged batches: hub crashes have work to lose
  nc.faults = core::make_fault_plan(spec.variant, spec.intensity);
  net::NetworkSim sim(core::make_bus_link(core::BusKind::kWiR), nc);
  for (int i = 0; i < kNodes; ++i) {
    net::NodeConfig leaf = (i % 4 == 0) ? audio_leaf(i) : stress_leaf(i);
    const std::string stream = leaf.stream;
    const bool is_audio = (i % 4 == 0);
    sim.add_node(std::move(leaf));
    if (is_audio) {
      net::SessionConfig kws;
      kws.stream = stream;
      kws.macs_per_inference = 2'500'000;
      kws.bytes_per_inference = 16'000;
      kws.model = "kws-dscnn";
      kws.weight_bytes = 22'604;
      sim.add_session(kws);
    }
  }
  const net::NetworkReport report = sim.run(kDurationS);

  SweepResult res;
  res.spec = spec;
  res.hub_availability = report.hub_availability;
  res.hub_crashes = report.hub_crashes;
  res.goodput_bps = report.aggregate_goodput_bps;
  for (const comm::MacNodeStats& ms : sim.bus().stats().nodes) res.retries += ms.frames_retried;
  double avail = 0.0;
  for (const net::NodeReport& n : report.nodes) {
    avail += n.availability;
    res.delivered += n.frames_delivered;
    res.dropped_arq += n.dropped_arq;
    res.dropped_fault += n.dropped_fault;
    res.dropped_overflow += n.dropped_overflow;
    res.reboots += n.reboots;
  }
  res.leaf_availability = avail / static_cast<double>(report.nodes.size());
  return res;
}

std::vector<SweepSpec> make_specs(bool smoke) {
  const std::vector<double> intensities = smoke ? std::vector<double>{1.0}
                                                : std::vector<double>{1.0, 2.0, 4.0};
  std::vector<SweepSpec> specs;
  specs.push_back({core::FaultVariant::kNone, 1.0});  // the clean baseline
  for (core::FaultVariant v :
       {core::FaultVariant::kBrownout, core::FaultVariant::kHubFlap,
        core::FaultVariant::kBurstLoss, core::FaultVariant::kCombined}) {
    for (double intensity : intensities) specs.push_back({v, intensity});
  }
  return specs;
}

/// JSON metric suffix for a variant ('-' is awkward in downstream tooling).
std::string key_of(core::FaultVariant v) {
  switch (v) {
    case core::FaultVariant::kNone: return "none";
    case core::FaultVariant::kBrownout: return "brownout";
    case core::FaultVariant::kHubFlap: return "hub_flap";
    case core::FaultVariant::kBurstLoss: return "burst_loss";
    case core::FaultVariant::kCombined: return "combined";
  }
  return "unknown";
}

void print_sweep() {
  const bool smoke = std::getenv("IOB_FAULT_SMOKE") != nullptr;
  const std::vector<SweepSpec> specs = make_specs(smoke);
  common::print_banner("Fault sweep — " + std::to_string(specs.size()) +
                       " NetworkSim points (" + std::to_string(kNodes) +
                       " leaves x fault regime x intensity)" + (smoke ? " [smoke]" : ""));

  const core::SweepRunner runner;
  const double t0 = bench::wall_time_s();
  const std::vector<SweepResult> results = runner.map_over<SweepResult, SweepSpec>(
      specs, [](const SweepSpec& s, std::size_t i) {
        return run_point(s, core::SweepRunner::point_seed(42, i));
      });
  const double dt = bench::wall_time_s() - t0;

  const double baseline_goodput = results.front().goodput_bps;
  common::Table table({"fault", "x", "leaf avail", "hub avail", "goodput", "retained",
                       "retries", "drops a/f/o", "reboots", "crashes"});
  for (const SweepResult& r : results) {
    const double retained =
        baseline_goodput > 0.0 ? r.goodput_bps / baseline_goodput : 1.0;
    table.add_row({core::to_string(r.spec.variant), common::fixed(r.spec.intensity, 0),
                   common::fixed(r.leaf_availability * 100.0, 1) + "%",
                   common::fixed(r.hub_availability * 100.0, 1) + "%",
                   common::fixed(r.goodput_bps / 1e3, 1) + " kb/s",
                   common::fixed(retained * 100.0, 1) + "%", std::to_string(r.retries),
                   std::to_string(r.dropped_arq) + "/" + std::to_string(r.dropped_fault) +
                       "/" + std::to_string(r.dropped_overflow),
                   std::to_string(r.reboots), std::to_string(r.hub_crashes)});
  }
  std::cout << table.to_string();
  common::print_note("'retained' is goodput vs the clean baseline; the drop taxonomy");
  common::print_note("separates ARQ exhaustion / fault purges / store-and-retry overflow");
  std::cout << "\n  " << results.size() << " simulations in " << common::fixed(dt, 2)
            << " s (" << common::fixed(static_cast<double>(results.size()) / dt, 1)
            << " points/s on " << runner.threads() << " thread(s))\n";

  bench::JsonReporter json("fault_sweep");
  json.add("fault_sweep_points", static_cast<double>(results.size()));
  json.add("fault_sweep_points_per_s", static_cast<double>(results.size()) / dt);
  for (const SweepResult& r : results) {
    // Intensity-1 rows carry the headline per-regime metrics; the watched
    // gate key is fault_availability_none (must stay exactly 1.0 — any
    // regression means the clean path started browning out).
    if (r.spec.intensity != 1.0) continue;
    const std::string k = key_of(r.spec.variant);
    json.add("fault_availability_" + k, r.leaf_availability);
    json.add("fault_hub_availability_" + k, r.hub_availability);
    json.add("fault_goodput_retained_" + k,
             baseline_goodput > 0.0 ? r.goodput_bps / baseline_goodput : 1.0);
  }
  json.write();
}

void BM_FaultPoint(benchmark::State& state) {
  const SweepSpec spec{static_cast<core::FaultVariant>(state.range(0)), 1.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_point(spec, 42));
  }
}
BENCHMARK(BM_FaultPoint)
    ->Arg(static_cast<int>(core::FaultVariant::kNone))
    ->Arg(static_cast<int>(core::FaultVariant::kCombined))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  return iob::bench::run_microbenchmarks(argc, argv);
}
