// Reproduces claim **T1** (Sec. I / IV-B): Wi-R is ">10x faster than BLE"
// and "<100x lower power than BLE". Side-by-side link comparison of the
// three fundamental around-body modalities the paper names: radiative RF
// (BLE), magnetic (NFMI), and electro-quasistatic (Wi-R).

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "comm/ble_link.hpp"
#include "comm/nfmi_link.hpp"
#include "comm/wir_link.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace {

using namespace iob;
using namespace iob::units;

void print_table() {
  comm::WiRLink wir;
  comm::BleLink ble;
  comm::NfmiLink nfmi;

  common::print_banner("T1 — Wi-R vs BLE vs NFMI link comparison");

  common::Table t({"metric", "Wi-R (EQS-HBC)", "BLE (2.4 GHz)", "NFMI (magnetic)"});
  auto row = [&](const std::string& name, auto fn) {
    t.add_row({name, fn(wir), fn(ble), fn(nfmi)});
  };
  row("PHY rate", [](const comm::Link& l) { return common::si_format(l.spec().phy_rate_bps, "b/s"); });
  row("app throughput (240 B frames)",
      [](const comm::Link& l) { return common::si_format(l.app_throughput_bps(240), "b/s"); });
  row("TX energy / bit",
      [](const comm::Link& l) { return common::si_format(l.spec().tx_energy_per_bit_j, "J/b"); });
  row("TX+RX energy / bit", [](const comm::Link& l) {
    return common::si_format(l.spec().tx_energy_per_bit_j + l.spec().rx_energy_per_bit_j, "J/b");
  });
  row("active TX power",
      [](const comm::Link& l) { return common::si_format(l.spec().tx_power_w, "W"); });
  row("stream power @ 10 kb/s",
      [](const comm::Link& l) { return common::si_format(l.stream_tx_power_w(10e3), "W"); });
  row("stream power @ 256 kb/s",
      [](const comm::Link& l) { return common::si_format(l.stream_tx_power_w(256e3), "W"); });
  row("effective energy/bit @ 10 kb/s", [](const comm::Link& l) {
    return common::si_format(l.effective_energy_per_app_bit_j(10e3), "J/b");
  });
  row("1 kB transfer latency",
      [](const comm::Link& l) { return common::si_format(l.frame_time_s(1000), "s"); });
  row("operating SNR",
      [](const comm::Link& l) { return common::fixed(l.spec().link_snr_db, 1) + " dB"; });
  row("frame error rate (240 B)", [](const comm::Link& l) {
    const double fer = l.frame_error_rate(240);
    return fer < 1e-12 ? std::string("<1e-12") : common::si_format(fer, "");
  });
  std::cout << t.to_string();

  const double rate_x = wir.app_throughput_bps(240) / ble.app_throughput_bps(240);
  const double raw_e_x = (ble.spec().tx_energy_per_bit_j + ble.spec().rx_energy_per_bit_j) /
                         (wir.spec().tx_energy_per_bit_j + wir.spec().rx_energy_per_bit_j);
  const double eff_e_x =
      ble.effective_energy_per_app_bit_j(10e3) / wir.effective_energy_per_app_bit_j(10e3);

  std::cout << "\nclaim check:\n";
  common::print_note("paper: Wi-R > 10x faster than BLE     | measured app-throughput ratio: " +
                     common::fixed(rate_x, 1) + "x (4x PHY + BLE protocol overheads)");
  common::print_note("paper: Wi-R < 100x lower power than BLE| measured raw energy/bit ratio: " +
                     common::fixed(raw_e_x, 0) + "x");
  common::print_note("at ULP rates (10 kb/s) the effective gap grows to " +
                     common::fixed(eff_e_x, 0) + "x (BLE connection-event overheads)");
}

void BM_WiRFrameMath(benchmark::State& state) {
  comm::WiRLink wir;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wir.frame_tx_energy_j(240));
    benchmark::DoNotOptimize(wir.frame_time_s(240));
  }
}
BENCHMARK(BM_WiRFrameMath);

void BM_BleStreamPowerModel(benchmark::State& state) {
  comm::BleLink ble;
  double rate = 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ble.stream_tx_power_w(rate));
    rate = rate < 1e6 ? rate * 1.1 : 100.0;
  }
}
BENCHMARK(BM_BleStreamPowerModel);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return iob::bench::run_microbenchmarks(argc, argv);
}
