#pragma once
/// \file bench_util.hpp
/// Shared scaffolding for the bench binaries: every bench prints its
/// figure/table reproduction first, then runs its google-benchmark
/// microbenchmarks (kernel throughput numbers that back the model's
/// latency assumptions), and can emit a machine-readable summary via
/// `JsonReporter` so the repo's perf trajectory is tracked across PRs.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace iob::bench {

/// Print the reproduction, then hand over to google-benchmark.
/// Call from main() after emitting the figure.
inline int run_microbenchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  std::printf("\n--- microbenchmarks (kernel costs behind the model) ---\n");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

/// Monotonic wall-clock seconds, for headline metrics outside
/// google-benchmark's harness.
inline double wall_time_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

/// Run `fn` repeatedly until `budget_s` elapses (>= 2 calls), returning
/// calls per second. Coarse but stable enough for the trajectory gate; the
/// one timing loop behind the nn engine benches.
template <typename F>
inline double rate_per_s(double budget_s, F&& fn) {
  fn();  // warm-up
  const double start = wall_time_s();
  std::uint64_t calls = 0;
  double elapsed = 0.0;
  do {
    fn();
    ++calls;
    elapsed = wall_time_s() - start;
  } while (elapsed < budget_s || calls < 2);
  return static_cast<double>(calls) / elapsed;
}

/// Index of the largest element (top-1 class of a logit vector).
inline int argmax(const float* d, std::int64_t n) {
  int best = 0;
  for (std::int64_t i = 1; i < n; ++i) {
    if (d[i] > d[best]) best = static_cast<int>(i);
  }
  return best;
}

/// Collects headline metrics (events/s, sweep points/s, wall time, ...) and
/// writes them as `BENCH_<name>.json` next to the binary's working dir:
///
///   {"bench": "perf_sim_core", "metrics": {"events_per_s": 1.6e7, ...}}
///
/// Deliberately dependency-free: a flat string->double map is all the perf
/// trajectory needs, and every bench binary can afford it unconditionally.
class JsonReporter {
 public:
  explicit JsonReporter(std::string name) : name_(std::move(name)) {}

  void add(const std::string& key, double value) { metrics_.emplace_back(key, value); }

  /// Serialize without writing (test hook).
  [[nodiscard]] std::string to_json() const {
    std::string out = "{\"bench\": \"" + name_ + "\", \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      if (i != 0) out += ", ";
      out += "\"" + metrics_[i].first + "\": " + format_number(metrics_[i].second);
    }
    out += "}}\n";
    return out;
  }

  /// Write BENCH_<name>.json into the current working directory.
  /// Returns false (and keeps quiet) if the file cannot be opened.
  bool write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string body = to_json();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("[bench] wrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string format_number(double v) {
    if (std::isnan(v)) return "null";
    if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
  }

  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace iob::bench
