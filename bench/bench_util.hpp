#pragma once
/// \file bench_util.hpp
/// Shared scaffolding for the bench binaries: every bench prints its
/// figure/table reproduction first, then runs its google-benchmark
/// microbenchmarks (kernel throughput numbers that back the model's
/// latency assumptions).

#include <benchmark/benchmark.h>

#include <cstdio>

namespace iob::bench {

/// Print the reproduction, then hand over to google-benchmark.
/// Call from main() after emitting the figure.
inline int run_microbenchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  std::printf("\n--- microbenchmarks (kernel costs behind the model) ---\n");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace iob::bench
