// Reproduces claim **T2** (Sec. I): "the energy consumption for radio
// communication per bit far exceeds that of computing per bit by several
// orders of magnitude" — and shows how Wi-R collapses that gap, which is
// what makes offloading (the human-inspired architecture) rational.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "comm/ble_link.hpp"
#include "comm/wir_link.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "nn/model_zoo.hpp"

namespace {

using namespace iob;
using namespace iob::units;

void print_table() {
  comm::WiRLink wir;
  comm::BleLink ble;

  constexpr double kLeafMac = 20e-12;   // MCU-class J/MAC
  constexpr double kHubMac = 5e-12;     // app-processor J/MAC

  common::print_banner("T2 — Communication energy/bit vs computation energy/op");

  common::Table t({"technology", "energy", "vs leaf MAC (20 pJ)", "break-even ops/bit"});
  auto add = [&](const std::string& name, double e_bit) {
    t.add_row({name, common::si_format(e_bit, "J/b"),
               common::fixed(e_bit / kLeafMac, 1) + "x",
               common::fixed(e_bit / kLeafMac, 0)});
  };
  add("BLE radio (TX+RX)",
      ble.spec().tx_energy_per_bit_j + ble.spec().rx_energy_per_bit_j);
  add("BLE effective @ 10 kb/s", ble.effective_energy_per_app_bit_j(10e3));
  add("NFMI-class (~2 nJ/b)", 2e-9);
  add("Wi-R (TX+RX)", wir.spec().tx_energy_per_bit_j + wir.spec().rx_energy_per_bit_j);
  add("Wi-R effective @ 100 kb/s", wir.effective_energy_per_app_bit_j(100e3));
  std::cout << t.to_string();

  common::print_note("break-even ops/bit: local compute only pays off if it removes more than");
  common::print_note("this many operations' worth of traffic per transmitted bit saved.");

  // Per-model verdicts: compute-vs-ship for each wearable-AI model.
  common::Table v({"model", "MACs/inference", "input (int8)", "local compute E",
                   "ship-over-BLE E", "ship-over-Wi-R E", "verdict on Wi-R"});
  for (const auto& m : {nn::make_kws_dscnn(), nn::make_ecg_cnn1d(), nn::make_vww_micronet()}) {
    const double local = static_cast<double>(m.total_macs()) * kLeafMac;
    const double bits = static_cast<double>(m.input_bytes_i8()) * 8.0;
    const double ship_ble = bits * ble.effective_energy_per_app_bit_j(100e3);
    const double ship_wir = bits * wir.effective_energy_per_app_bit_j(100e3);
    v.add_row({m.name(), std::to_string(m.total_macs()),
               common::si_format(static_cast<double>(m.input_bytes_i8()), "B"),
               common::si_format(local, "J"), common::si_format(ship_ble, "J"),
               common::si_format(ship_wir, "J"),
               ship_wir < local ? "offload to hub" : "compute locally"});
  }
  std::cout << "\n" << v.to_string();
  common::print_note("hub runs the same MACs at " + common::si_format(kHubMac, "J/MAC") +
                     " — offload also wins at the system level");
}

void BM_EffectiveEnergyPerBit(benchmark::State& state) {
  comm::WiRLink wir;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wir.effective_energy_per_app_bit_j(1e5));
  }
}
BENCHMARK(BM_EffectiveEnergyPerBit);

void BM_EcgForwardPass(benchmark::State& state) {
  const nn::Model m = nn::make_ecg_cnn1d();
  nn::Tensor x(m.input_shape(), 0.1f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.forward(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.total_macs()));
}
BENCHMARK(BM_EcgForwardPass)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return iob::bench::run_microbenchmarks(argc, argv);
}
