// Fleet-scale design-space sweep (ROADMAP "fleet harness" item): a
// declarative grid of full `net::NetworkSim` discrete-event simulations —
// node count x MAC variant x leaf population mix x harvesting profile x
// batch window x hub precision x fault regime x replicate seeds — expanded
// and fanned across `core::SweepRunner` by
// `core::Fleet`, then folded into per-axis marginal summaries (lifetime
// percentiles, goodput, drop rate, bus utilization, availability). This is
// the paper's system-level claim probed as a region, not a point: >= 2,000
// independent simulations per run, now including the robustness regimes
// (docs/robustness.md) where the clean-channel assumptions break.
//
// Set IOB_FLEET_SMOKE=1 (CI docs job) to shrink the grid to <= 64 points so
// the harness stays exercised on every push without the full sweep cost.
//
// A second, population-scale section streams a 1,000,000-point grid through
// `Fleet::run_streaming` (docs/scaling.md): bounded batches overlap
// execution with online summary folding, per-point records spill to binary
// shards, and peak RSS stays O(batch), not O(grid). Set
// IOB_FLEET_STREAM_SMOKE=1 to shrink it to 100,228 points; on its own (CI
// matrix legs) that also skips the classic grid + microbenchmarks, while
// combined with IOB_FLEET_SMOKE=1 (CI docs job) both sections run in their
// smoke shapes.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <iostream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_util.hpp"
#include "common/expect.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/fleet.hpp"
#include "core/stream_sink.hpp"
#include "core/sweep_runner.hpp"
#include "nn/precision.hpp"

namespace {

using namespace iob;
using namespace iob::units;

core::NodeClassSpec audio_class() {
  core::NodeClassSpec c;
  c.base.name = "audio";
  c.base.sense_power_w = 150e-6;
  c.base.isa_power_w = 1e-6;
  c.base.output_rate_bps = 64e3;
  c.base.frame_bytes = 240;
  c.base.slot_weight = 2;  // rate-proportional TDMA allocation
  net::SessionConfig kws;
  kws.macs_per_inference = 2'500'000;  // KWS DS-CNN-class pass
  kws.bytes_per_inference = 16'000;    // one 2 s audio window at 64 kb/s
  kws.model = "kws-dscnn";             // concurrent audio sessions share one pass
  kws.weight_bytes = 22'604;           // int8 DS-CNN weights streamed per pass
  c.session = kws;
  return c;
}

core::NodeClassSpec bio_class() {
  core::NodeClassSpec c;
  c.base.name = "bio";
  c.base.sense_power_w = 8e-6;
  c.base.isa_power_w = 1e-6;
  c.base.output_rate_bps = 5e3;
  c.base.frame_bytes = 240;
  return c;
}

core::NodeClassSpec imu_class() {
  core::NodeClassSpec c;
  c.base.name = "imu";
  c.base.sense_power_w = 60e-6;
  c.base.isa_power_w = 2e-6;
  c.base.output_rate_bps = 20e3;
  c.base.frame_bytes = 240;
  return c;
}

core::FleetAxes make_axes(bool smoke) {
  core::FleetAxes axes;

  core::NodeClassSpec audio = audio_class(), bio = bio_class(), imu = imu_class();
  audio.share = 1;
  bio.share = 7;
  axes.mixes.push_back({"bio-heavy", {audio, bio}});
  audio.share = 1;
  bio.share = 1;
  axes.mixes.push_back({"audio-heavy", {audio, bio}});
  imu.share = 3;
  bio.share = 5;
  axes.mixes.push_back({"imu-fusion", {imu, bio}});

  comm::TdmaConfig slot1ms;  // defaults: 1 ms slots, pure uplink
  comm::TdmaConfig slot600us;
  slot600us.slot_s = 600e-6;
  comm::TdmaConfig downlink = slot1ms;
  downlink.downlink_slot_s = 500e-6;
  axes.macs = {{"slot-1ms", slot1ms}, {"slot-600us", slot600us}, {"downlink-500us", downlink}};

  energy::HarvesterParams pv;
  pv.source = energy::HarvestSource::kIndoorPhotovoltaic;
  pv.mean_power_w = 50.0 * uW;
  pv.availability = 0.7;
  pv.hourly_profile = energy::office_diurnal_profile();
  energy::HarvesterParams teg;
  teg.source = energy::HarvestSource::kThermoelectric;
  teg.mean_power_w = 25.0 * uW;
  teg.availability = 0.9;
  teg.relative_sigma = 0.1;
  axes.harvests = {{"none", std::nullopt}, {"indoor-pv-50uW", pv}, {"teg-25uW", teg}};

  axes.buses = {core::BusKind::kWiR};

  // Hub batching axis: per-frame inference vs an 8-superframe staging
  // window (concurrent KWS sessions fold into one batched pass).
  axes.batch_windows = {0, 8};

  // Hub precision axis: f32 hubs vs int8 hubs (the analytic ledger prices
  // int8 MACs at HubConfig::int8_mac_energy_scale; weight streaming is
  // int8-priced on both).
  axes.precisions = {nn::Precision::kF32, nn::Precision::kInt8};

  if (smoke) {
    // <= 64-point CI configuration: 1 x 2 x 2 x 2 x 1 x 2 x 2 x 2 x 1 = 64
    // points (fault axis: clean path + the combined stressor).
    axes.node_counts = {8};
    axes.macs.resize(2);
    axes.mixes.resize(2);
    axes.harvests.resize(2);
    axes.faults = {core::FaultVariant::kNone, core::FaultVariant::kCombined};
    axes.seeds = {42};
    axes.duration_s = 2.0;
  } else {
    // 4 x 3 x 3 x 3 x 1 x 2 x 2 x 5 x 1 = 2,160 points: the seed replicates
    // became the five canonical fault regimes (point_seed still decorrelates
    // every point, so a single seed value loses no statistical independence).
    axes.node_counts = {2, 8, 16, 32};
    axes.faults = {core::FaultVariant::kNone, core::FaultVariant::kBrownout,
                   core::FaultVariant::kHubFlap, core::FaultVariant::kBurstLoss,
                   core::FaultVariant::kCombined};
    axes.seeds = {42};
    axes.duration_s = 4.0;
  }
  return axes;
}

/// Peak resident set of this process so far, in MiB (0 where unsupported).
double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB
#endif
#else
  return 0.0;
#endif
}

/// The documented OnlineQuantile contract, asserted on live data: the
/// summary's online lifetime percentiles must sit within kRelativeError of
/// the exact sorted-vector quantiles recomputed from the full result set
/// (exact bands — zero and +inf — must match outright).
void assert_quantile_epsilon(const core::FleetSummary& summary,
                             const std::vector<core::FleetPointResult>& results) {
  std::vector<double> lifetimes;
  for (const auto& r : results) {
    for (const auto& n : r.report.nodes) lifetimes.push_back(n.projected_life_days);
  }
  const double qs[] = {0.10, 0.50, 0.90};
  const double got[] = {summary.overall.life_p10_days, summary.overall.life_p50_days,
                        summary.overall.life_p90_days};
  for (int i = 0; i < 3; ++i) {
    const double exact = core::percentile(lifetimes, qs[i]);
    if (std::isinf(exact) || exact == 0.0) {
      IOB_ENSURES(got[i] == exact, "online quantile must be exact in the zero/+inf bands");
    } else {
      IOB_ENSURES(std::abs(got[i] - exact) <= core::OnlineQuantile::kRelativeError * exact,
                  "online lifetime quantile outside the documented epsilon");
    }
  }
  common::print_note("online p10/p50/p90 lifetimes verified within " +
                     common::fixed(core::OnlineQuantile::kRelativeError * 100.0, 0) +
                     "% of exact sorted-vector quantiles");
}

void print_grid(bench::JsonReporter& json) {
  const bool smoke = std::getenv("IOB_FLEET_SMOKE") != nullptr;
  const core::Fleet fleet(make_axes(smoke));
  common::print_banner(
      "Fleet grid — " + std::to_string(fleet.size()) +
      " NetworkSim points (node count x MAC x mix x harvesting x batch x precision x faults x "
      "seed)" +
      (smoke ? " [smoke]" : ""));

  const core::SweepRunner runner;
  const double t0 = bench::wall_time_s();
  const std::vector<core::FleetPointResult> results = fleet.run(runner);
  const double dt = bench::wall_time_s() - t0;
  const core::FleetSummary summary = fleet.summarize(results);

  std::cout << summary.to_string();
  common::print_note("lifetime percentiles over every node sample in the cell; the wide");
  common::print_note("regime where bio leaves stay perpetual is the paper's design region");
  assert_quantile_epsilon(summary, results);
  std::cout << "\n  " << results.size() << " simulations in " << common::fixed(dt, 2) << " s ("
            << common::fixed(static_cast<double>(results.size()) / dt, 1) << " points/s on "
            << runner.threads() << " thread(s))\n";

  json.add("fleet_points", static_cast<double>(results.size()));
  json.add("fleet_points_per_s", static_cast<double>(results.size()) / dt);
  json.add("fleet_threads", static_cast<double>(runner.threads()));
  json.add("fleet_duration_s_per_point", fleet.axes().duration_s);
  json.add("overall_perpetual_fraction", summary.overall.perpetual_fraction);
  json.add("overall_mean_goodput_bps", summary.overall.mean_goodput_bps);
  json.add("overall_mean_drop_rate", summary.overall.mean_drop_rate);
  json.add("overall_mean_bus_utilization", summary.overall.mean_bus_utilization);
  json.add("overall_mean_availability", summary.overall.mean_availability);
}

/// Population-scale streaming sweep (docs/scaling.md): a seed-replicate
/// grid far past anything expand() should materialize, run through
/// `Fleet::run_streaming` with binary spill shards. Cheap telemetry-only
/// leaves keep the per-point cost in the tens of microseconds so a million
/// full discrete-event simulations finish in bench time.
core::FleetAxes make_stream_axes(bool smoke) {
  core::FleetAxes axes;
  core::NodeClassSpec bio = bio_class(), imu = imu_class();
  imu.share = 1;
  bio.share = 3;
  axes.mixes.push_back({"telemetry", {imu, bio}});
  axes.node_counts = {2, 3};

  energy::HarvesterParams pv;
  pv.source = energy::HarvestSource::kIndoorPhotovoltaic;
  pv.mean_power_w = 50.0 * uW;
  pv.availability = 0.7;
  axes.harvests = {{"none", std::nullopt}, {"indoor-pv-50uW", pv}};

  // 2 node counts x 2 harvests x N seeds; every point still gets a unique
  // point_seed, so the seed axis IS the population axis.
  const std::size_t seeds = smoke ? 25'056 : 250'000;  // 100,224 / 1,000,000 points
  for (std::uint64_t s = 0; s < seeds; ++s) axes.seeds.push_back(1000 + s);
  axes.duration_s = 0.05;
  return axes;
}

void print_stream_grid(bench::JsonReporter& json) {
  const bool smoke = std::getenv("IOB_FLEET_STREAM_SMOKE") != nullptr;
  const core::Fleet fleet(make_stream_axes(smoke));
  common::print_banner("Population-scale streaming grid — " + std::to_string(fleet.size()) +
                       " NetworkSim points, online percentiles, binary spill shards" +
                       (smoke ? " [smoke]" : ""));

  const auto spill_dir =
      std::filesystem::temp_directory_path() / "iob_fleet_stream_spill";
  std::filesystem::remove_all(spill_dir);

  core::FleetStreamConfig cfg;
  cfg.batch_points = 8192;
  cfg.spill = core::StreamSinkConfig{};
  cfg.spill->directory = spill_dir.string();
  cfg.spill->basename = "fleet";
  cfg.spill->rows_per_shard = 131'072;
  cfg.spill->format = core::StreamFormat::kBinary;

  const core::SweepRunner runner;
  const double rss_before_mb = peak_rss_mb();
  const double t0 = bench::wall_time_s();
  const core::FleetStreamResult res = fleet.run_streaming(runner, cfg);
  const double dt = bench::wall_time_s() - t0;
  const double rss_peak_mb = peak_rss_mb();
  std::filesystem::remove_all(spill_dir);

  std::cout << res.summary.to_string();
  const double points_per_s = static_cast<double>(res.points) / dt;
  std::cout << "\n  " << res.points << " simulations in " << common::fixed(dt, 2) << " s ("
            << common::fixed(points_per_s, 1) << " points/s on " << runner.threads()
            << " thread(s))\n  spilled " << res.spilled_rows << " records / "
            << common::fixed(static_cast<double>(res.spilled_bytes) / (1024.0 * 1024.0), 1)
            << " MiB across " << res.spill_shards << " shards; peak RSS "
            << common::fixed(rss_peak_mb, 1) << " MiB (batch = " << cfg.batch_points
            << " points)\n";
  common::print_note("memory is O(batch), not O(grid): shards hold the per-point rows,");
  common::print_note("per-axis percentiles fold online (docs/scaling.md)");

  IOB_ENSURES(res.points == fleet.size(), "streaming run must cover the whole grid");
  IOB_ENSURES(res.spilled_rows == fleet.size(), "every point must spill exactly one record");

  json.add("fleet_stream_points", static_cast<double>(res.points));
  json.add("fleet_stream_points_per_s", points_per_s);
  json.add("fleet_stream_peak_rss_mb", rss_peak_mb);
  json.add("fleet_stream_rss_before_mb", rss_before_mb);
  json.add("fleet_stream_spilled_mb",
           static_cast<double>(res.spilled_bytes) / (1024.0 * 1024.0));
  json.add("fleet_stream_shards", static_cast<double>(res.spill_shards));
  json.add("fleet_stream_batch_points", static_cast<double>(cfg.batch_points));
  json.add("fleet_stream_perpetual_fraction", res.summary.overall.perpetual_fraction);
}

core::FleetPoint one_point(int n_nodes) {
  core::FleetAxes axes = make_axes(true);
  axes.node_counts = {n_nodes};
  axes.macs.resize(1);
  axes.mixes.resize(1);
  axes.harvests.resize(1);
  axes.faults = {core::FaultVariant::kNone};
  axes.seeds = {42};
  axes.duration_s = 2.0;
  return core::Fleet(axes).expand().front();
}

void BM_FleetPoint(benchmark::State& state) {
  const core::FleetPoint p = one_point(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_fleet_point(p));
  }
}
BENCHMARK(BM_FleetPoint)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_FleetExpand(benchmark::State& state) {
  const core::Fleet fleet(make_axes(false));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet.expand());
  }
}
BENCHMARK(BM_FleetExpand)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  iob::bench::JsonReporter json("fleet_grid");
  // Stream smoke on its own (CI matrix legs) runs only the streaming
  // section: the point there is exercising run_streaming + spill on every
  // sanitizer/compiler leg, not re-timing the classic grid. The docs job
  // sets both smoke vars and gets both sections in their smoke shapes.
  const bool stream_only = std::getenv("IOB_FLEET_STREAM_SMOKE") != nullptr &&
                           std::getenv("IOB_FLEET_SMOKE") == nullptr;
  if (!stream_only) print_grid(json);
  print_stream_grid(json);
  json.write();
  if (stream_only) return 0;
  return iob::bench::run_microbenchmarks(argc, argv);
}
