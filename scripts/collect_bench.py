#!/usr/bin/env python3
"""Merge BENCH_<name>.json metric files across commits and flag regressions.

Every bench binary writes a flat ``BENCH_<name>.json`` (see
docs/benchmarks.md for the schema). This script maintains an append-only
JSONL history of those metrics, one record per (label, bench), and compares
consecutive records to catch performance regressions in the watched
higher-is-better series (the ROADMAP "perf trajectory" item).

Subcommands:
  collect  scan a directory for BENCH_*.json and append labelled records
  check    compare each bench's newest record against its previous one
  report   print the full history as a per-metric table

Examples:
  python3 scripts/collect_bench.py collect --dir build
  python3 scripts/collect_bench.py check --threshold 0.15 --strict
  python3 scripts/collect_bench.py report
"""

import argparse
import glob
import json
import os
import subprocess
import sys

DEFAULT_HISTORY = "bench_history.jsonl"
# Higher-is-better series watched by default (ROADMAP headline numbers).
# The nn_* trio covers the inference engines: the f32 lowered GEMM pair
# (bench_nn_infer) and the int8 quantized path (bench_nn_int8): a
# >threshold drop in any of them fails the strict CI gate just like the
# event-core and fleet series.
DEFAULT_WATCH = [
    "events_per_s",
    "sweep_points_per_s",
    "fleet_points_per_s",
    # Streaming-fleet throughput (bench_fleet_grid's population-scale
    # section, docs/scaling.md): full NetworkSim points per second through
    # Fleet::run_streaming including spill + online folding.
    "fleet_stream_points_per_s",
    "nn_single_infer_per_s_vww",
    "nn_batched_items_per_s_vww",
    "nn_int8_batched_items_per_s_vww",
    # Correctness-as-perf sentinel: clean-path leaf availability must stay
    # exactly 1.0 (a dip means the default config started injecting faults).
    "fault_availability_none",
    # Closed-loop payoff under sustained interference: the fraction of the
    # clean-channel goodput the armed degradation controller retains at the
    # gym SIR level (bench_channel_stress, docs/robustness.md).
    "channel_stress_goodput_retained",
    # Server-tier saturation: staged items per second through the hub's
    # batched engine at the traffic-replay knee (bench_hub_traffic_replay,
    # docs/scaling.md).
    "hub_replay_items_per_s",
]
# Lower-is-better series: a >threshold *increase* is the regression. The
# split-validation error is how far the partitioner's analytic per-venue
# energy drifts from the executed-and-metered measurement; if it creeps up,
# the cost model and the engine have diverged. The streaming peak RSS is the
# O(batch)-memory contract as a number: if it starts tracking grid size
# again, someone broke the spill path. Timing noise makes tiny values
# jittery, so the relative change is computed against max(old, LOWER_FLOOR)
# rather than the raw old value.
DEFAULT_WATCH_LOWER = [
    "split_costmodel_max_rel_err",
    "fleet_stream_peak_rss_mb",
    # Closed-loop recovery time: seconds from the end of the deterministic
    # occlusion episode until every node is back on rung 0; if it creeps up,
    # the ladder's step-up hysteresis or dwell gating regressed.
    "degradation_recovery_s",
    # Staging delay at the replay knee: p99 delivery -> flush latency of the
    # saturation grid's reference point; if it creeps up, the batched
    # engine's flush cadence (or the adaptive trigger) regressed.
    "hub_replay_p99_queued_latency_s",
]
LOWER_FLOOR = 0.05


def git_label():
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unlabelled"


def load_history(path):
    records = []
    if not os.path.exists(path):
        return records
    with open(path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as e:
                print(f"warning: {path}:{line_no}: unparseable record: {e}",
                      file=sys.stderr)
    return records


def cmd_collect(args):
    paths = sorted(glob.glob(os.path.join(args.dir, "BENCH_*.json")))
    if not paths:
        print(f"no BENCH_*.json files under {args.dir!r}", file=sys.stderr)
        return 1
    label = args.label or git_label()
    appended = 0
    with open(args.history, "a", encoding="utf-8") as hist:
        for path in paths:
            with open(path, encoding="utf-8") as f:
                try:
                    data = json.load(f)
                except json.JSONDecodeError as e:
                    print(f"warning: skipping {path}: {e}", file=sys.stderr)
                    continue
            record = {
                "label": label,
                "bench": data.get("bench", os.path.basename(path)),
                "metrics": data.get("metrics", {}),
            }
            hist.write(json.dumps(record, sort_keys=True) + "\n")
            appended += 1
    print(f"appended {appended} record(s) labelled {label!r} to {args.history}")
    return 0


def cmd_check(args):
    records = load_history(args.history)
    if not records:
        print(f"empty or missing history {args.history!r}; run collect first",
              file=sys.stderr)
        return 1
    watch = set(DEFAULT_WATCH) | set(args.watch or [])
    watch_lower = set(DEFAULT_WATCH_LOWER)
    by_bench = {}
    for rec in records:
        by_bench.setdefault(rec["bench"], []).append(rec)

    flagged = []
    for bench, recs in sorted(by_bench.items()):
        if len(recs) < 2:
            print(f"{bench}: only one record ({recs[-1]['label']}), nothing to compare")
            continue
        prev, cur = recs[-2], recs[-1]
        for metric in sorted(watch | watch_lower):
            if metric not in prev["metrics"] or metric not in cur["metrics"]:
                continue
            old, new = prev["metrics"][metric], cur["metrics"][metric]
            if metric in watch_lower:
                change = (new - old) / max(old, LOWER_FLOOR)
                regressed = change > args.threshold
            else:
                if not old:
                    continue
                change = (new - old) / old
                regressed = change < -args.threshold
            status = "ok"
            if regressed:
                status = "REGRESSION"
                flagged.append((bench, metric, old, new, change))
            print(f"{bench}: {metric}: {old:.6g} ({prev['label']}) -> "
                  f"{new:.6g} ({cur['label']}) {change:+.1%} {status}")

    if flagged:
        print(f"\n{len(flagged)} regression(s) beyond {args.threshold:.0%}:")
        for bench, metric, old, new, change in flagged:
            print(f"  {bench}.{metric}: {old:.6g} -> {new:.6g} ({change:+.1%})")
        return 1 if args.strict else 0
    print("\nno regressions in watched metrics")
    return 0


def cmd_report(args):
    records = load_history(args.history)
    if not records:
        print(f"empty or missing history {args.history!r}", file=sys.stderr)
        return 1
    rows = []
    for rec in records:
        for metric, value in sorted(rec["metrics"].items()):
            rows.append((rec["bench"], metric, rec["label"], value))
    widths = [max(len(str(r[i])) for r in rows + [("bench", "metric", "label", "value")])
              for i in range(4)]
    header = ("bench", "metric", "label", "value")
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for bench, metric, label, value in rows:
        print(f"{bench.ljust(widths[0])}  {metric.ljust(widths[1])}  "
              f"{label.ljust(widths[2])}  {value}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_collect = sub.add_parser("collect", help="append BENCH_*.json files to the history")
    p_collect.add_argument("--dir", default=".", help="directory holding BENCH_*.json")
    p_collect.add_argument("--history", default=DEFAULT_HISTORY)
    p_collect.add_argument("--label", help="record label (default: git short hash)")
    p_collect.set_defaults(fn=cmd_collect)

    p_check = sub.add_parser("check", help="flag regressions vs the previous record")
    p_check.add_argument("--history", default=DEFAULT_HISTORY)
    p_check.add_argument("--threshold", type=float, default=0.15,
                         help="relative drop that counts as a regression (default 0.15)")
    p_check.add_argument("--watch", nargs="*",
                         help=f"extra higher-is-better metrics (default: {DEFAULT_WATCH})")
    p_check.add_argument("--strict", action="store_true",
                         help="exit non-zero when a regression is flagged")
    p_check.set_defaults(fn=cmd_check)

    p_report = sub.add_parser("report", help="print the full metric history")
    p_report.add_argument("--history", default=DEFAULT_HISTORY)
    p_report.set_defaults(fn=cmd_report)

    args = parser.parse_args()
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
