#!/usr/bin/env python3
"""Verify that internal markdown links in docs/ and README.md resolve.

Checks every ``[text](target)`` in the given markdown files:
  * relative file targets must exist (anchors checked when the target is
    markdown),
  * bare ``#anchor`` targets must match a heading in the same file,
  * absolute http(s)/mailto links are skipped (no network in CI),
  * every docs/ page must be *reachable*: a checked docs file that no other
    checked file links to is an orphan and fails the check (README.md is
    the root and exempt).

Exit status is non-zero if any link is broken — wired into the CI docs job
so the docs tree can't silently rot.

Usage:
  python3 scripts/check_docs_links.py [files...]   # default: README.md docs/*.md
"""

import glob
import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def slugify(heading):
    """GitHub-style anchor: lowercase, spaces to dashes, drop punctuation."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path):
    with open(path, encoding="utf-8") as f:
        text = CODE_FENCE_RE.sub("", f.read())
    return {slugify(h) for h in HEADING_RE.findall(text)}


def check_file(path, linked_targets=None):
    errors = []
    with open(path, encoding="utf-8") as f:
        text = CODE_FENCE_RE.sub("", f.read())
    base = os.path.dirname(path)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if slugify(target[1:]) not in anchors_of(path):
                errors.append(f"{path}: broken anchor {target!r}")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = os.path.normpath(os.path.join(base, file_part))
        if not os.path.exists(resolved):
            errors.append(f"{path}: broken link {target!r} ({resolved} missing)")
            continue
        if linked_targets is not None:
            linked_targets.add(resolved)
        if anchor and resolved.endswith(".md"):
            if slugify(anchor) not in anchors_of(resolved):
                errors.append(f"{path}: broken anchor {target!r} in {resolved}")
    return errors


def find_orphans(files, linked_targets):
    """Checked docs pages that no other checked file links to (README is
    the navigation root, so it needs no inbound link)."""
    orphans = []
    for path in files:
        normalized = os.path.normpath(path)
        if os.path.basename(normalized) == "README.md":
            continue
        if normalized not in linked_targets:
            orphans.append(f"{path}: orphaned page (no inbound link from any checked file)")
    return orphans


def main(argv):
    files = argv[1:] or ["README.md"] + sorted(glob.glob("docs/*.md"))
    missing = [f for f in files if not os.path.exists(f)]
    if missing:
        print(f"error: file(s) not found: {', '.join(missing)}", file=sys.stderr)
        return 2
    errors = []
    linked_targets = set()
    for path in files:
        errors.extend(check_file(path, linked_targets))
    errors.extend(find_orphans(files, linked_targets))
    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(f"\n{len(errors)} broken link(s) in {len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"all internal links resolve in {len(files)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
