#include "sim/trace.hpp"

#include <sstream>
#include <utility>

namespace iob::sim {

void TraceSink::emit(Time t, std::string source, std::string kind, std::string detail) {
  if (!enabled_) return;
  records_.push_back(TraceRecord{t, std::move(source), std::move(kind), std::move(detail)});
}

std::size_t TraceSink::count(const std::string& kind, const std::string& source) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.kind == kind && (source.empty() || r.source == source)) ++n;
  }
  return n;
}

std::string TraceSink::to_string() const {
  std::ostringstream os;
  for (const auto& r : records_) {
    os << r.time << "s  [" << r.source << "] " << r.kind;
    if (!r.detail.empty()) os << " " << r.detail;
    os << "\n";
  }
  return os.str();
}

}  // namespace iob::sim
