#pragma once
/// \file event_queue.hpp
/// Time-ordered event queue for the discrete-event simulator.
///
/// Events at equal timestamps fire in insertion (FIFO) order — a sequence
/// number breaks ties — which makes every run with the same seed bit-exact
/// reproducible (a property the integration tests assert).

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace iob::sim {

/// Simulation time in seconds. Single-threaded deterministic scheduling makes
/// a double-based clock safe here; ties are broken by sequence number, never
/// by float comparison subtleties.
using Time = double;

/// Opaque handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedule `action` at absolute time `when` (>= 0). Returns a handle that
  /// can be passed to `cancel`.
  EventId schedule(Time when, Action action);

  /// Cancel a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed. Amortized O(1) (lazy deletion).
  bool cancel(EventId id);

  /// True if no live events remain.
  [[nodiscard]] bool empty() const { return live_count_ == 0; }

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] Time next_time();

  /// Pop and run the earliest live event; returns its time.
  /// Requires !empty().
  Time run_next();

  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const { return live_count_; }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Discard heap entries whose actions were cancelled.
  void skip_dead();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<EventId, Action> actions_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace iob::sim
