#pragma once
/// \file event_queue.hpp
/// Time-ordered event queue for the discrete-event simulator.
///
/// Events at equal timestamps fire in insertion (FIFO) order — a sequence
/// number breaks ties — which makes every run with the same seed bit-exact
/// reproducible (a property the integration tests assert).
///
/// Hot-path design (replaces the seed's std::function + unordered_map +
/// std::priority_queue triple, which paid two heap allocations and two hash
/// lookups per event):
///
///  * Callables live in a slab of reusable slots (`Callback` — 48-byte
///    inline storage, heap fallback; see callback.hpp). An `EventId` encodes
///    {slot, generation}, so cancellation is an O(1) generation bump and a
///    stale handle can never touch a reused slot.
///  * The priority structure is two-banded. Small queues (< 64 pending) use
///    a 4-ary min-heap over 24-byte trivially-copyable entries
///    {when, seq, slot, gen} — half the levels of a binary heap, PODs moved
///    instead of callables. Past that, a calendar wheel switches on in
///    front: near-future events append O(1) into time buckets (each bucket
///    sorted once, lazily, when the cursor reaches it) while events beyond
///    the wheel horizon overflow into the same 4-ary heap and are drained
///    bucket-ward lap by lap. Bucket count/width adapt to the live event
///    population (rebuilds are O(n), amortized against the growth that
///    triggered them).
///  * Bucket storage is a flat ring, not a vector-of-vectors: buckets are a
///    contiguous u32 head array whose chains thread through one contiguous
///    node pool (32 B/event), and only the *cursor* bucket is ever
///    materialized — harvested into a single reusable vector, compacted and
///    sorted there. A 1M-pending population costs two flat arrays instead
///    of ~N live vector headers + heap blocks, inserts touch two cache
///    lines, and an empty bucket costs 4 bytes (docs/scaling.md).
///  * Steady-state schedule/pop and schedule/cancel cycles allocate nothing:
///    slots and bucket capacity are recycled, sorting is in-place.
///
/// Every ordering decision — bucket sort, heap sift, wheel drain — compares
/// the same (when, seq) key, so the pop order is exactly the seed's
/// semantics regardless of which band an event sits in.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/callback.hpp"

namespace iob::sim {

/// Simulation time in seconds. Single-threaded deterministic scheduling makes
/// a double-based clock safe here; ties are broken by sequence number, never
/// by float comparison subtleties.
using Time = double;

/// Opaque handle for cancelling a scheduled event. Encodes {slot, generation}
/// so a stale handle (event fired or already cancelled, slot since reused)
/// can never cancel somebody else's event.
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Action = Callback;

  EventQueue();

  /// Schedule `action` at absolute time `when` (>= 0). Returns a handle that
  /// can be passed to `cancel`. Allocation-free once the queue has reached
  /// its high-water mark.
  EventId schedule(Time when, Action action);

  /// Cancel a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed. O(1) (lazy deletion: the dead
  /// entry is dropped when its band is consumed or rebuilt).
  bool cancel(EventId id);

  /// True if no live events remain.
  [[nodiscard]] bool empty() const { return live_count_ == 0; }

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] Time next_time();

  /// Pop and run the earliest live event; returns its time.
  /// Requires !empty().
  Time run_next();

  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Pre-size the slab and heap for `capacity` concurrent events so even the
  /// warm-up phase of a large simulation never reallocates.
  void reserve(std::size_t capacity);

  /// True if the calendar wheel band is currently active (test hook).
  [[nodiscard]] bool wheel_active() const { return !bucket_head_.empty(); }

  struct DebugCounts {
    std::size_t wheel_ahead = 0;   ///< live entries at/after the cursor
    std::size_t wheel_behind = 0;  ///< live entries the cursor already passed (must be 0)
    std::size_t wheel_ahead_dead = 0;  ///< dead entries not yet passed
    std::size_t heap_live = 0;
    std::size_t occupancy = 0;
    std::size_t live_count = 0;
  };
  /// Physical live-entry census across bands (debug/test hook, O(n)).
  [[nodiscard]] DebugCounts debug_counts() const;

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffU;
  /// Live events at which the wheel switches on.
  static constexpr std::size_t kWheelActivation = 64;
  static constexpr std::size_t kMinBuckets = 64;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;

  /// Trivially copyable; every band moves/sorts these 24-byte PODs, never a
  /// callable.
  struct Entry {
    Time when;
    std::uint64_t seq;   ///< global schedule order, breaks equal-time ties FIFO
    std::uint32_t slot;  ///< index into slots_
    std::uint32_t gen;   ///< must match the slot's generation to be live
  };

  struct Slot {
    Callback action;
    std::uint32_t gen = 1;          ///< bumped on fire/cancel; 0 never used
    std::uint32_t next_free = kNoSlot;
    bool live = false;
  };

  static bool earlier(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  [[nodiscard]] bool entry_live(const Entry& e) const {
    return slots_[e.slot].gen == e.gen;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  // -- 4-ary heap band (far-future overflow; sole band for small queues) ----
  void heap_push(Entry e);
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  void heap_pop_top();
  void heap_skip_dead();

  // -- calendar wheel band (flat ring) --------------------------------------
  /// Chain node: one wheel entry + the intrusive link to the next node of
  /// its bucket (kNoSlot terminates). Free nodes reuse `next` as the
  /// free-list link.
  struct WheelNode {
    Entry entry;
    std::uint32_t next = kNoSlot;
  };

  std::uint32_t node_acquire();
  void node_release(std::uint32_t idx);

  void wheel_insert(Entry e);
  /// Advance cursor_/origin until the harvested cursor bucket
  /// (`cur_bucket_[cur_idx_]`) holds the next live entry, or the wheel is
  /// drained (occupancy_ == 0). Harvests each bucket's chain into
  /// cur_bucket_ (compacting cancelled entries) and sorts it exactly once.
  void wheel_advance();
  void complete_lap();
  /// Move live far-band events now inside the horizon into the wheel.
  void drain_heap_into_wheel();
  /// Rebuild wheel geometry (bucket count + width) from the current live
  /// population; also (re)activates the wheel. O(n).
  void rebuild_wheel();
  /// Collect every live entry from all bands into scratch_, clearing bands.
  void collect_live();

  /// The next live entry across bands, removed from its band but with the
  /// slot still intact. Requires !empty().
  Entry take_next();
  /// Same, but leaves the entry in place. Requires !empty().
  Entry peek_next();

  // Slab.
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;

  // 4-ary heap band.
  std::vector<Entry> heap_;

  // Calendar wheel band (inactive while bucket_head_ is empty). Flat ring:
  // bucket b's entries form a chain starting at bucket_head_[b] through
  // pool_[i].next; the cursor bucket alone is harvested into cur_bucket_
  // (one vector reused lap after lap) for its compact-and-sort. Invariant:
  // while cur_sorted_, the cursor's chain is empty — late arrivals for the
  // cursor bucket insert directly into cur_bucket_'s sorted tail.
  std::vector<std::uint32_t> bucket_head_;  ///< per-bucket chain head (kNoSlot = empty)
  std::vector<WheelNode> pool_;             ///< chain nodes, free-listed
  std::uint32_t pool_free_ = kNoSlot;       ///< head of the node free list
  std::vector<Entry> cur_bucket_;  ///< harvested cursor bucket (sorted once)
  Time origin_ = 0.0;        ///< start time of bucket 0 of this lap
  Time width_ = 1.0;         ///< bucket width (seconds)
  Time inv_width_ = 1.0;     ///< 1 / width_ (multiply beats divide per insert)
  Time horizon_ = 0.0;       ///< origin_ + buckets * width; beyond -> heap
  std::size_t cursor_ = 0;   ///< current bucket index within the lap
  std::size_t cur_idx_ = 0;  ///< consume index into the sorted cursor bucket
  bool cur_sorted_ = false;
  std::size_t occupancy_ = 0;  ///< entries (live or dead) physically in buckets
  std::size_t consumed_since_rebuild_ = 0;  ///< rebuild-thrash cooldown

  std::vector<Entry> scratch_;  ///< rebuild workspace (kept to avoid allocs)
};

}  // namespace iob::sim
