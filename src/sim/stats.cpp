#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/expect.hpp"

namespace iob::sim {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const { return n_ ? mean_ : 0.0; }

double Accumulator::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const { return n_ ? min_ : 0.0; }
double Accumulator::max() const { return n_ ? max_ : 0.0; }

void TimeWeighted::update(double t, double value) {
  if (!started_) {
    started_ = true;
    start_time_ = last_time_ = t;
    value_ = value;
    return;
  }
  IOB_EXPECTS(t >= last_time_, "time-weighted updates must be non-decreasing in time");
  integral_ += value_ * (t - last_time_);
  last_time_ = t;
  value_ = value;
}

double TimeWeighted::integral_until(double t) const {
  if (!started_) return 0.0;
  IOB_EXPECTS(t >= last_time_, "query time precedes last update");
  return integral_ + value_ * (t - last_time_);
}

double TimeWeighted::average_until(double t) const {
  if (!started_ || t <= start_time_) return value_;
  return integral_until(t) / (t - start_time_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  IOB_EXPECTS(hi > lo, "histogram range must be non-empty");
  IOB_EXPECTS(bins >= 1, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    const auto idx = static_cast<std::size_t>((x - lo_) / bin_width_);
    ++counts_[std::min(idx, counts_.size() - 1)];
  }
}

double Histogram::quantile(double q) const {
  IOB_EXPECTS(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target && underflow_ > 0) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + frac) * bin_width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double left = lo_ + static_cast<double>(i) * bin_width_;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) * static_cast<double>(width));
    os << "  [" << left << ", " << left + bin_width_ << ") " << std::string(bar, '#') << " "
       << counts_[i] << "\n";
  }
  if (underflow_) os << "  underflow: " << underflow_ << "\n";
  if (overflow_) os << "  overflow:  " << overflow_ << "\n";
  return os.str();
}

}  // namespace iob::sim
