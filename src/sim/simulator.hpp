#pragma once
/// \file simulator.hpp
/// The discrete-event simulator: clock + event queue + convenience
/// scheduling. All network/energy actors (`net::Node`, `net::Hub`,
/// `energy::Harvester`, MAC schedulers) run on one `Simulator`.

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace iob::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  /// Current simulation time (seconds).
  [[nodiscard]] Time now() const { return now_; }

  /// Root RNG; actors should `fork()` per-entity streams from it.
  Rng& rng() { return rng_; }

  /// Schedule at an absolute time (>= now()).
  EventId at(Time when, EventQueue::Action action);

  /// Schedule after a relative delay (>= 0).
  EventId after(Time delay, EventQueue::Action action);

  /// Schedule `action` every `period` seconds starting at `start` until the
  /// simulation stops. Returns the id of the *first* occurrence (subsequent
  /// occurrences reschedule themselves and cannot be cancelled via this id;
  /// use a flag in the action to stop a periodic task).
  EventId every(Time start, Time period, std::function<void(Time)> action);

  /// Cancel a pending event by handle.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until the queue drains or `end_time` is reached, whichever first.
  /// The clock is left at min(end_time, time of last event). Returns the
  /// number of events executed.
  std::size_t run_until(Time end_time);

  /// Run until the queue drains completely.
  std::size_t run_all();

  /// Stop a `run_*` loop from inside an event (e.g. battery died).
  void request_stop() { stop_requested_ = true; }

  [[nodiscard]] bool stop_requested() const { return stop_requested_; }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  EventQueue queue_;
  Rng rng_;
  Time now_ = 0.0;
  bool stop_requested_ = false;
};

}  // namespace iob::sim
