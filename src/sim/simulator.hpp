#pragma once
/// \file simulator.hpp
/// The discrete-event simulator: clock + event queue + convenience
/// scheduling. All network/energy actors (`net::Node`, `net::Hub`,
/// `energy::Harvester`, MAC schedulers) run on one `Simulator`.

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace iob::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  /// Current simulation time (seconds).
  [[nodiscard]] Time now() const { return now_; }

  /// Root RNG; actors should `fork()` per-entity streams from it.
  Rng& rng() { return rng_; }

  /// Schedule at an absolute time (>= now()).
  EventId at(Time when, EventQueue::Action action);

  /// Schedule after a relative delay (>= 0).
  EventId after(Time delay, EventQueue::Action action);

  /// Schedule `action` every `period` seconds starting at `start` until the
  /// simulation stops. Returns the id of the *first* occurrence; passing it
  /// to `cancel` before that occurrence fires retires the whole periodic
  /// task. Once an occurrence has fired the id is stale (use a flag in the
  /// action to stop a running task early). All periodic tasks are torn down
  /// by `request_stop()` — no self-reschedule lingers after a stop.
  EventId every(Time start, Time period, std::function<void(Time)> action);

  /// Cancel a pending event by handle. A handle naming a periodic task's
  /// pending occurrence retires that task entirely.
  bool cancel(EventId id);

  /// Run until the queue drains or `end_time` is reached, whichever first.
  /// The clock is left at min(end_time, time of last event). Returns the
  /// number of events executed.
  std::size_t run_until(Time end_time);

  /// Run until the queue drains completely.
  std::size_t run_all();

  /// Stop a `run_*` loop from inside an event (e.g. battery died). Also
  /// cancels every periodic task's pending occurrence, so `pending()` drops
  /// to exactly the non-periodic events still in the queue.
  void request_stop();

  [[nodiscard]] bool stop_requested() const { return stop_requested_; }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Pre-size the event queue (see EventQueue::reserve).
  void reserve_events(std::size_t capacity) { queue_.reserve(capacity); }

 private:
  struct PeriodicTask {
    Time period = 0.0;
    Time next_fire = 0.0;
    std::function<void(Time)> action;
    EventId pending = 0;  ///< currently scheduled occurrence
  };

  void fire_periodic(std::uint64_t key);

  EventQueue queue_;
  Rng rng_;
  Time now_ = 0.0;
  bool stop_requested_ = false;
  std::unordered_map<std::uint64_t, PeriodicTask> periodic_;
  std::uint64_t next_periodic_key_ = 0;
};

}  // namespace iob::sim
