#include "sim/event_queue.hpp"

#include <utility>

#include "common/expect.hpp"

namespace iob::sim {

EventId EventQueue::schedule(Time when, Action action) {
  IOB_EXPECTS(when >= 0.0, "event time must be non-negative");
  IOB_EXPECTS(static_cast<bool>(action), "event action must be callable");
  const EventId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id});
  actions_.emplace(id, std::move(action));
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = actions_.find(id);
  if (it == actions_.end()) return false;
  actions_.erase(it);  // heap entry becomes dead; skipped lazily
  --live_count_;
  return true;
}

void EventQueue::skip_dead() {
  while (!heap_.empty() && actions_.find(heap_.top().id) == actions_.end()) {
    heap_.pop();
  }
}

Time EventQueue::next_time() {
  IOB_EXPECTS(!empty(), "next_time() on empty queue");
  skip_dead();
  return heap_.top().when;
}

Time EventQueue::run_next() {
  IOB_EXPECTS(!empty(), "run_next() on empty queue");
  skip_dead();
  const Entry top = heap_.top();
  heap_.pop();
  auto it = actions_.find(top.id);
  Action action = std::move(it->second);
  actions_.erase(it);
  --live_count_;
  action();
  return top.when;
}

}  // namespace iob::sim
