#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/expect.hpp"

namespace iob::sim {
namespace {

constexpr std::uint32_t slot_of(EventId id) { return static_cast<std::uint32_t>(id); }
constexpr std::uint32_t gen_of(EventId id) { return static_cast<std::uint32_t>(id >> 32); }
constexpr EventId make_id(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<EventId>(gen) << 32) | slot;
}

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

EventQueue::EventQueue() = default;

void EventQueue::reserve(std::size_t capacity) {
  heap_.reserve(capacity);
  slots_.reserve(capacity);
  scratch_.reserve(capacity);
  pool_.reserve(capacity);
  bucket_head_.reserve(std::min(next_pow2(capacity), kMaxBuckets));
}

// ---- slab -------------------------------------------------------------------

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  IOB_ENSURES(slots_.size() < kNoSlot, "event slab exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.action.reset();
  s.live = false;
  ++s.gen;  // invalidates the band entry and any outstanding EventId
  s.next_free = free_head_;
  free_head_ = slot;
}

// ---- public API -------------------------------------------------------------

EventId EventQueue::schedule(Time when, Action action) {
  IOB_EXPECTS(when >= 0.0 && std::isfinite(when), "event time must be non-negative and finite");
  IOB_EXPECTS(static_cast<bool>(action), "event action must be callable");
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.action = std::move(action);
  s.live = true;
  const Entry e{when, next_seq_++, slot, s.gen};
  const EventId id = make_id(slot, s.gen);
  ++live_count_;
  if (wheel_active()) {
    if (when >= horizon_) {
      heap_push(e);
    } else {
      wheel_insert(e);
    }
    if (live_count_ > 4 * bucket_head_.size() && bucket_head_.size() < kMaxBuckets) {
      rebuild_wheel();  // grow
    }
  } else {
    heap_push(e);
    if (live_count_ >= kWheelActivation) rebuild_wheel();  // activate
  }
  return id;
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.live || s.gen != gen_of(id)) return false;
  release_slot(slot);  // band entry becomes dead; dropped lazily
  --live_count_;
  return true;
}

Time EventQueue::next_time() {
  IOB_EXPECTS(!empty(), "next_time() on empty queue");
  return peek_next().when;
}

Time EventQueue::run_next() {
  IOB_EXPECTS(!empty(), "run_next() on empty queue");
  const Entry e = take_next();
  ++consumed_since_rebuild_;
  // Move the action out and release the slot *before* invoking: the action
  // may re-enter schedule()/cancel() (periodic tasks do), so no reference
  // into slots_ or a band may be held across the call.
  Action action = std::move(slots_[e.slot].action);
  release_slot(e.slot);
  --live_count_;
  action();
  return e.when;
}

// ---- band front -------------------------------------------------------------

EventQueue::Entry EventQueue::peek_next() {
  // wheel_advance can deactivate the wheel (shrink rebuild) — re-check.
  if (wheel_active()) {
    wheel_advance();
    if (wheel_active()) return cur_bucket_[cur_idx_];
  }
  heap_skip_dead();
  return heap_.front();
}

EventQueue::Entry EventQueue::take_next() {
  if (wheel_active()) {
    wheel_advance();
    if (wheel_active()) {
      const Entry e = cur_bucket_[cur_idx_];
      ++cur_idx_;
      --occupancy_;
      return e;
    }
  }
  heap_skip_dead();
  const Entry e = heap_.front();
  heap_pop_top();
  return e;
}

// ---- 4-ary heap band --------------------------------------------------------

void EventQueue::heap_push(Entry e) {
  heap_.push_back(e);
  heap_sift_up(heap_.size() - 1);
}

void EventQueue::heap_sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::heap_sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const Entry e = heap_[i];
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = first_child + 4 < n ? first_child + 4 : n;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void EventQueue::heap_pop_top() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) heap_sift_down(0);
}

void EventQueue::heap_skip_dead() {
  while (!heap_.empty() && !entry_live(heap_.front())) heap_pop_top();
}

// ---- calendar wheel band (flat ring) ----------------------------------------

std::uint32_t EventQueue::node_acquire() {
  if (pool_free_ != kNoSlot) {
    const std::uint32_t idx = pool_free_;
    pool_free_ = pool_[idx].next;
    return idx;
  }
  IOB_ENSURES(pool_.size() < kNoSlot, "wheel node pool exhausted");
  pool_.emplace_back();
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void EventQueue::node_release(std::uint32_t idx) {
  pool_[idx].next = pool_free_;
  pool_free_ = idx;
}

void EventQueue::wheel_insert(Entry e) {
  // Monotone bucket mapping with clamping: late events (before the cursor's
  // band — legal via the raw schedule() API) fire out of the cursor bucket,
  // and FP edge cases at the horizon land in the last bucket. Order within
  // any bucket is fixed by the (when, seq) sort, so clamping is safe as long
  // as the mapping stays monotone in `when` — max/min preserve that.
  const double rel = (e.when - origin_) * inv_width_;
  std::size_t target = rel <= 0.0 ? 0 : static_cast<std::size_t>(rel);
  target = std::min(target, bucket_head_.size() - 1);
  target = std::max(target, cursor_);
  if (target == cursor_ && cur_sorted_) {
    // The cursor bucket is already harvested and sorted (its chain is
    // empty): insert in key order after the consume point so it still fires
    // correctly.
    const auto it = std::upper_bound(
        cur_bucket_.begin() + static_cast<std::ptrdiff_t>(cur_idx_), cur_bucket_.end(), e,
        earlier);
    cur_bucket_.insert(it, e);
  } else {
    // O(1) chain push: the bucket sort at harvest time orders by (when,
    // seq) — a total order, so LIFO chain order is irrelevant.
    const std::uint32_t idx = node_acquire();
    pool_[idx].entry = e;
    pool_[idx].next = bucket_head_[target];
    bucket_head_[target] = idx;
  }
  ++occupancy_;
}

void EventQueue::wheel_advance() {
  for (;;) {
    if (!wheel_active()) return;  // a rebuild inside the loop deactivated it
    if (occupancy_ == 0) {
      // The wheel is drained; the next event (the caller guarantees one
      // exists) is beyond the horizon. If the bulk of the population sits in
      // the far band, the geometry no longer matches the workload (e.g. the
      // schedule-ahead distance outgrew the horizon) — re-fit it, at most
      // once per population turnover so a genuinely far-future-heavy
      // workload cannot thrash on rebuilds. Otherwise jump the lap straight
      // to the next event instead of spinning through empty laps.
      heap_skip_dead();
      IOB_ENSURES(!heap_.empty(), "live events lost between bands");
      if (heap_.size() > live_count_ / 2 && live_count_ >= kWheelActivation &&
          consumed_since_rebuild_ >= live_count_) {
        rebuild_wheel();
        continue;
      }
      // The harvested cursor bucket may still hold already-consumed entries
      // (the lap ended exactly on its last take): clear them before the lap
      // resets, or they would be double-skipped when the cursor comes
      // around again. Every chain is empty here — occupancy_ == 0 counts
      // chain entries (live or dead) too.
      cur_bucket_.clear();
      origin_ = heap_.front().when;
      horizon_ = origin_ + static_cast<Time>(bucket_head_.size()) * width_;
      cursor_ = 0;
      cur_idx_ = 0;
      cur_sorted_ = false;
      drain_heap_into_wheel();
      continue;  // occupancy_ > 0 now (heap front was live and in range)
    }
    if (!cur_sorted_) {
      // Harvest the cursor's chain into the reusable cur_bucket_,
      // compacting cancelled entries away before sorting — in timeout-heavy
      // workloads (ARQ timers, MAC guards) the dead usually outnumber the
      // live, and sorting them would be pure waste. Nodes go back to the
      // free list; steady-state laps allocate nothing.
      cur_bucket_.clear();
      std::uint32_t idx = bucket_head_[cursor_];
      bucket_head_[cursor_] = kNoSlot;
      while (idx != kNoSlot) {
        const std::uint32_t next = pool_[idx].next;
        if (entry_live(pool_[idx].entry)) {
          cur_bucket_.push_back(pool_[idx].entry);
        } else {
          --occupancy_;
        }
        node_release(idx);
        idx = next;
      }
      // Steady-state buckets hold a handful of entries; a branch-light
      // insertion sort beats std::sort's dispatch overhead there.
      if (cur_bucket_.size() > 1) {
        if (cur_bucket_.size() <= 16) {
          for (std::size_t i = 1; i < cur_bucket_.size(); ++i) {
            const Entry e = cur_bucket_[i];
            std::size_t j = i;
            while (j > 0 && earlier(e, cur_bucket_[j - 1])) {
              cur_bucket_[j] = cur_bucket_[j - 1];
              --j;
            }
            cur_bucket_[j] = e;
          }
        } else {
          std::sort(cur_bucket_.begin(), cur_bucket_.end(), earlier);
        }
      }
      cur_sorted_ = true;
      cur_idx_ = 0;
    }
    while (cur_idx_ < cur_bucket_.size() && !entry_live(cur_bucket_[cur_idx_])) {
      ++cur_idx_;  // drop cancelled entries
      --occupancy_;
    }
    if (cur_idx_ < cur_bucket_.size()) return;
    cur_bucket_.clear();  // keeps capacity: steady-state laps allocate nothing
    cur_sorted_ = false;
    cur_idx_ = 0;
    ++cursor_;
    if (cursor_ == bucket_head_.size()) complete_lap();
  }
}

void EventQueue::drain_heap_into_wheel() {
  // Pull every live far-band event the current horizon now covers into the
  // wheel, dropping cancelled entries on the way. The dead-skip must run
  // before the horizon test so a dead front entry can't mask live in-range
  // events behind it.
  while (!heap_.empty()) {
    if (!entry_live(heap_.front())) {
      heap_pop_top();
      continue;
    }
    if (heap_.front().when >= horizon_) break;
    wheel_insert(heap_.front());
    heap_pop_top();
  }
}

void EventQueue::complete_lap() {
  origin_ += static_cast<Time>(bucket_head_.size()) * width_;
  horizon_ = origin_ + static_cast<Time>(bucket_head_.size()) * width_;
  cursor_ = 0;
  cur_idx_ = 0;
  cur_sorted_ = false;
  // A far band several times larger than the live population is mostly
  // cancelled garbage — re-fit (which also collects it). A merely *large*
  // far band (genuinely far-future events) is left alone: the heap handles
  // it fine and the lap drain below pulls events in as the horizon reaches
  // them.
  if (heap_.size() > std::max(4 * live_count_, kWheelActivation)) {
    rebuild_wheel();
    return;
  }
  drain_heap_into_wheel();
  // Wheel population shrank well below the geometry: re-fit (or drop back to
  // the pure heap for small queues).
  if (live_count_ < kWheelActivation / 2 || live_count_ < bucket_head_.size() / 8) {
    rebuild_wheel();
  }
}

void EventQueue::collect_live() {
  scratch_.clear();
  if (wheel_active()) {
    // The harvested cursor bucket first (entries before cur_idx_ are
    // consumed — their slots are dead), then every chain. Chain nodes all
    // return to the free list; bucket heads reset for the rebuild.
    for (std::size_t i = cur_idx_; i < cur_bucket_.size(); ++i) {
      if (entry_live(cur_bucket_[i])) scratch_.push_back(cur_bucket_[i]);
    }
    cur_bucket_.clear();
    for (std::size_t b = 0; b < bucket_head_.size(); ++b) {
      std::uint32_t idx = bucket_head_[b];
      bucket_head_[b] = kNoSlot;
      while (idx != kNoSlot) {
        const std::uint32_t next = pool_[idx].next;
        if (entry_live(pool_[idx].entry)) scratch_.push_back(pool_[idx].entry);
        node_release(idx);
        idx = next;
      }
    }
  }
  for (const Entry& e : heap_) {
    if (entry_live(e)) scratch_.push_back(e);
  }
  heap_.clear();
  occupancy_ = 0;
  cursor_ = 0;
  cur_idx_ = 0;
  cur_sorted_ = false;
}

void EventQueue::rebuild_wheel() {
  collect_live();
  IOB_ENSURES(scratch_.size() == live_count_, "live events lost during rebuild");
  const std::size_t n = scratch_.size();
  consumed_since_rebuild_ = 0;
  if (n < kWheelActivation / 2) {
    // Small queue: pure 4-ary heap, no wheel overhead.
    bucket_head_.clear();
    for (const Entry& e : scratch_) heap_push(e);
    return;
  }
  const std::size_t b = next_pow2(std::min(std::max(n, kMinBuckets), kMaxBuckets));
  // Width heuristic, two constraints:
  //  * fine-grained enough that steady-state buckets hold a handful of
  //    events: ~3x the mean gap of the K earliest (calendar-queue classic);
  //  * coarse enough that the horizon reaches at least twice the median
  //    pending time, so a schedule-ahead workload (every pop reschedules
  //    one period out) does not funnel every event through the far band.
  const std::size_t k = std::min<std::size_t>(n, 256);
  std::nth_element(scratch_.begin(), scratch_.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   scratch_.end(), earlier);
  std::sort(scratch_.begin(), scratch_.begin() + static_cast<std::ptrdiff_t>(k), earlier);
  const Time t_min = scratch_[0].when;
  const Time t_k = scratch_[k - 1].when;  // k-th smallest key's time
  const std::size_t mid = n / 2;
  if (mid >= k) {
    std::nth_element(scratch_.begin() + static_cast<std::ptrdiff_t>(k),
                     scratch_.begin() + static_cast<std::ptrdiff_t>(mid), scratch_.end(),
                     earlier);
  }
  const Time t_med = scratch_[mid].when;
  Time width = 3.0 * (t_k - t_min) / static_cast<Time>(k);
  if (!(width > 0.0)) {
    // Equal-time cluster at the head: fall back to the full span.
    Time t_max = t_min;
    for (const Entry& e : scratch_) t_max = std::max(t_max, e.when);
    width = t_max > t_min ? 3.0 * (t_max - t_min) / static_cast<Time>(n) : 1.0;
  }
  width = std::max(width, 2.0 * (t_med - t_min) / static_cast<Time>(b));
  width = std::max(width, std::max(t_min, 1.0) * 1e-12);  // keep indices finite
  // Chains were drained by collect_live; assign within capacity allocates
  // nothing once the high-water geometry is reached.
  bucket_head_.assign(b, kNoSlot);
  width_ = width;
  inv_width_ = 1.0 / width;
  origin_ = t_min;
  horizon_ = origin_ + static_cast<Time>(b) * width_;
  for (const Entry& e : scratch_) {
    if (e.when >= horizon_) {
      heap_push(e);
    } else {
      wheel_insert(e);
    }
  }
}

EventQueue::DebugCounts EventQueue::debug_counts() const {
  DebugCounts c;
  c.occupancy = occupancy_;
  c.live_count = live_count_;
  // The harvested cursor bucket: entries before cur_idx_ are behind the
  // cursor (consumed or skipped), the rest ahead of it.
  for (std::size_t i = 0; i < cur_bucket_.size(); ++i) {
    const bool behind = cur_sorted_ && i < cur_idx_;
    if (!entry_live(cur_bucket_[i])) {
      if (!behind) ++c.wheel_ahead_dead;
      continue;
    }
    if (behind) {
      ++c.wheel_behind;
    } else {
      ++c.wheel_ahead;
    }
  }
  // Chains: wheel_insert never targets a bucket before the cursor and
  // passed chains are drained at harvest, so every chained entry is ahead.
  for (const std::uint32_t head : bucket_head_) {
    for (std::uint32_t idx = head; idx != kNoSlot; idx = pool_[idx].next) {
      if (entry_live(pool_[idx].entry)) {
        ++c.wheel_ahead;
      } else {
        ++c.wheel_ahead_dead;
      }
    }
  }
  for (const Entry& e : heap_) {
    if (entry_live(e)) ++c.heap_live;
  }
  return c;
}

}  // namespace iob::sim
