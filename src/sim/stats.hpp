#pragma once
/// \file stats.hpp
/// Streaming statistics used throughout the simulator: scalar accumulators
/// (Welford), time-weighted averages (for power rails and queue lengths),
/// and fixed-bin histograms (for latency distributions).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace iob::sim {

/// Streaming mean/variance/min/max over observed samples (Welford's method,
/// numerically stable for long runs).
class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< sample variance (n-1); 0 if n<2
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal, e.g. instantaneous
/// power or queue occupancy. Feed (time, new_value) transitions; query the
/// average over the observed window.
class TimeWeighted {
 public:
  /// Record that the signal changed to `value` at time `t` (non-decreasing).
  void update(double t, double value);

  /// Close the window at time `t` and return the time-weighted mean.
  [[nodiscard]] double average_until(double t) const;

  /// Integral of the signal over [start, t] (e.g. joules if the signal is W).
  [[nodiscard]] double integral_until(double t) const;

  [[nodiscard]] double current() const { return value_; }
  [[nodiscard]] bool started() const { return started_; }

 private:
  bool started_ = false;
  double start_time_ = 0.0;
  double last_time_ = 0.0;
  double value_ = 0.0;
  double integral_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi) with out-of-range under/overflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Approximate quantile (q in [0,1]) by linear interpolation within the
  /// containing bin; returns lo/hi clamps for empty histograms.
  [[nodiscard]] double quantile(double q) const;

  /// Multi-line ASCII rendering (for reports).
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_, hi_, bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace iob::sim
