#include "sim/simulator.hpp"

#include <memory>
#include <utility>

#include "common/expect.hpp"

namespace iob::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

EventId Simulator::at(Time when, EventQueue::Action action) {
  IOB_EXPECTS(when >= now_, "cannot schedule into the past");
  return queue_.schedule(when, std::move(action));
}

EventId Simulator::after(Time delay, EventQueue::Action action) {
  IOB_EXPECTS(delay >= 0.0, "delay must be non-negative");
  return queue_.schedule(now_ + delay, std::move(action));
}

EventId Simulator::every(Time start, Time period, std::function<void(Time)> action) {
  IOB_EXPECTS(period > 0.0, "periodic task needs a positive period");
  IOB_EXPECTS(start >= now_, "cannot schedule into the past");
  // Self-rescheduling closure; shared_ptr keeps the callable alive across
  // its own reschedules.
  auto body = std::make_shared<std::function<void()>>();
  auto fire_time = std::make_shared<Time>(start);
  *body = [this, period, action = std::move(action), body, fire_time]() {
    const Time t = *fire_time;
    action(t);
    if (!stop_requested_) {
      *fire_time = t + period;
      queue_.schedule(*fire_time, *body);
    }
  };
  return queue_.schedule(start, *body);
}

std::size_t Simulator::run_until(Time end_time) {
  IOB_EXPECTS(end_time >= now_, "end_time must not precede now()");
  std::size_t executed = 0;
  while (!queue_.empty() && !stop_requested_) {
    const Time next = queue_.next_time();
    if (next > end_time) break;
    // Advance the clock *before* executing so actions observe now() == their
    // own timestamp (and relative scheduling via after() is anchored right).
    now_ = next;
    queue_.run_next();
    ++executed;
  }
  if (!stop_requested_ && now_ < end_time) now_ = end_time;
  return executed;
}

std::size_t Simulator::run_all() {
  std::size_t executed = 0;
  while (!queue_.empty() && !stop_requested_) {
    now_ = queue_.next_time();
    queue_.run_next();
    ++executed;
  }
  return executed;
}

}  // namespace iob::sim
