#include "sim/simulator.hpp"

#include <utility>

#include "common/expect.hpp"

namespace iob::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

EventId Simulator::at(Time when, EventQueue::Action action) {
  IOB_EXPECTS(when >= now_, "cannot schedule into the past");
  return queue_.schedule(when, std::move(action));
}

EventId Simulator::after(Time delay, EventQueue::Action action) {
  IOB_EXPECTS(delay >= 0.0, "delay must be non-negative");
  return queue_.schedule(now_ + delay, std::move(action));
}

EventId Simulator::every(Time start, Time period, std::function<void(Time)> action) {
  IOB_EXPECTS(period > 0.0, "periodic task needs a positive period");
  IOB_EXPECTS(start >= now_, "cannot schedule into the past");
  const std::uint64_t key = next_periodic_key_++;
  PeriodicTask& task = periodic_[key];
  task.period = period;
  task.next_fire = start;
  task.action = std::move(action);
  // The per-occurrence event is a 16-byte {this, key} capture — inline in
  // Callback, so the reschedule cycle allocates nothing.
  task.pending = queue_.schedule(start, [this, key] { fire_periodic(key); });
  return task.pending;
}

bool Simulator::cancel(EventId id) {
  const bool cancelled = queue_.cancel(id);
  if (cancelled) {
    // If the handle was a periodic task's pending occurrence, retire the
    // whole chain — otherwise its registry entry (and captured state) would
    // linger until request_stop().
    for (auto it = periodic_.begin(); it != periodic_.end(); ++it) {
      if (it->second.pending == id) {
        periodic_.erase(it);
        break;
      }
    }
  }
  return cancelled;
}

void Simulator::fire_periodic(std::uint64_t key) {
  auto it = periodic_.find(key);
  if (it == periodic_.end()) return;  // torn down between schedule and fire
  const Time t = it->second.next_fire;
  // Move the action out before invoking: the action may call request_stop()
  // (or every(), rehashing the map), and running a closure whose storage was
  // just destroyed by periodic_.clear() would be use-after-free.
  std::function<void(Time)> action = std::move(it->second.action);
  action(t);
  it = periodic_.find(key);
  if (it == periodic_.end()) return;  // stop tore the task down mid-fire
  if (stop_requested_) {
    periodic_.erase(it);
    return;
  }
  PeriodicTask& task = it->second;
  task.action = std::move(action);
  task.next_fire = t + task.period;
  task.pending = queue_.schedule(task.next_fire, [this, key] { fire_periodic(key); });
}

void Simulator::request_stop() {
  stop_requested_ = true;
  // Tear down every periodic chain: without this, each periodic task that
  // fired before the stop leaves its next occurrence dangling in the queue
  // (pending() never drains, and a later inspection of the queue sees ghost
  // events that will never run).
  for (auto& [key, task] : periodic_) queue_.cancel(task.pending);
  periodic_.clear();
}

std::size_t Simulator::run_until(Time end_time) {
  IOB_EXPECTS(end_time >= now_, "end_time must not precede now()");
  std::size_t executed = 0;
  while (!queue_.empty() && !stop_requested_) {
    const Time next = queue_.next_time();
    if (next > end_time) break;
    // Advance the clock *before* executing so actions observe now() == their
    // own timestamp (and relative scheduling via after() is anchored right).
    now_ = next;
    queue_.run_next();
    ++executed;
  }
  if (!stop_requested_ && now_ < end_time) now_ = end_time;
  return executed;
}

std::size_t Simulator::run_all() {
  std::size_t executed = 0;
  while (!queue_.empty() && !stop_requested_) {
    now_ = queue_.next_time();
    queue_.run_next();
    ++executed;
  }
  return executed;
}

}  // namespace iob::sim
