#include "sim/rng.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace iob::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is the one forbidden state; splitmix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53-bit mantissa -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  IOB_EXPECTS(lo < hi, "uniform(lo, hi) requires lo < hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  IOB_EXPECTS(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to keep log finite.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) {
  IOB_EXPECTS(sigma >= 0.0, "normal() sigma must be non-negative");
  return mean + sigma * normal();
}

double Rng::exponential(double mean) {
  IOB_EXPECTS(mean > 0.0, "exponential() mean must be positive");
  return -mean * std::log(1.0 - uniform());
}

bool Rng::bernoulli(double p) {
  IOB_EXPECTS(p >= 0.0 && p <= 1.0, "bernoulli() probability must be in [0, 1]");
  return uniform() < p;
}

std::uint32_t Rng::poisson(double mean) {
  IOB_EXPECTS(mean >= 0.0, "poisson() mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double l = std::exp(-mean);
    std::uint32_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation for large means (adequate for traffic modeling).
  const double v = normal(mean, std::sqrt(mean));
  return v <= 0.0 ? 0u : static_cast<std::uint32_t>(v + 0.5);
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Derive a child seed by hashing parent state with the stream id.
  std::uint64_t h = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 47);
  h ^= 0x6a09e667f3bcc909ULL + stream_id;
  return Rng(h);
}

}  // namespace iob::sim
