#pragma once
/// \file callback.hpp
/// Small-buffer-optimized, move-only `void()` callable for the event hot
/// path.
///
/// `std::function` heap-allocates for captures larger than two pointers and
/// drags in copy-ability machinery the event queue never uses. `Callback`
/// stores any callable up to `kInlineBytes` (48 B — enough for an object
/// pointer plus a handful of doubles, i.e. every event the network layer
/// schedules) directly in the object; larger or over-aligned callables fall
/// back to a single heap cell. Moves are cheap (a 3-pointer ops table plus a
/// memcpy-sized relocate), destruction is exact, and the steady-state
/// schedule/pop cycle of `EventQueue` performs zero allocations.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace iob::sim {

class Callback {
 public:
  /// Inline storage size. Callables at most this big (and at most
  /// max_align_t-aligned, nothrow-move-constructible) never touch the heap.
  static constexpr std::size_t kInlineBytes = 48;

  Callback() noexcept = default;

  /// Wrap any `void()`-invocable. Intentionally implicit so lambdas flow
  /// straight into `EventQueue::schedule` / `Simulator::at`.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  /// Destroy the held callable (if any); leaves the callback empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Invoke the held callable. Requires `*this` to be non-empty.
  void operator()() { ops_->invoke(storage_); }

  /// True if the held callable lives in the inline buffer (test hook).
  [[nodiscard]] bool is_inline() const noexcept { return ops_ != nullptr && ops_->inline_stored; }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-construct the callable into `dst` from `src`, destroying `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
    bool inline_stored;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* self) { (*std::launder(reinterpret_cast<Fn*>(self)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* self) noexcept { std::launder(reinterpret_cast<Fn*>(self))->~Fn(); },
      true,
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* self) { (**std::launder(reinterpret_cast<Fn**>(self)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* self) noexcept { delete *std::launder(reinterpret_cast<Fn**>(self)); },
      false,
  };

  void move_from(Callback& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace iob::sim
