#pragma once
/// \file rng.hpp
/// Deterministic random number generation for reproducible simulations.
///
/// xoshiro256++ (Blackman & Vigna) — fast, high-quality, and, unlike
/// std::mt19937 + std::*_distribution, fully specified here so the same seed
/// yields the same trace on every platform/toolchain. All distribution
/// transforms are implemented locally for the same reason.

#include <array>
#include <cstdint>

namespace iob::sim {

class Rng {
 public:
  /// Seeded via SplitMix64 expansion of a single 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo < hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (deterministic pairing).
  double normal();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Exponential with the given mean (> 0); inter-arrival times of a
  /// Poisson process of rate 1/mean.
  double exponential(double mean);

  /// Bernoulli trial with probability p in [0, 1].
  bool bernoulli(double p);

  /// Poisson-distributed count with the given mean (>= 0), inversion method.
  std::uint32_t poisson(double mean);

  /// Fork a statistically independent stream (for per-node RNGs): hashes the
  /// parent state with the stream id so sibling streams do not correlate.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const;

 private:
  std::array<std::uint64_t, 4> s_{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace iob::sim
