#include "sim/task_pool.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace iob::sim {

namespace {

/// Per-thread nesting depth across ALL pools: incremented around every body
/// execution, including the inline serial path, so `in_parallel_region()`
/// answers "is this thread inside some parallel_for body right now?".
thread_local int t_region_depth = 0;

struct RegionScope {
  RegionScope() { ++t_region_depth; }
  ~RegionScope() { --t_region_depth; }
  RegionScope(const RegionScope&) = delete;
  RegionScope& operator=(const RegionScope&) = delete;
};

}  // namespace

bool TaskPool::in_parallel_region() { return t_region_depth > 0; }

TaskPool::TaskPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(thread_count - 1);
  for (std::size_t id = 1; id < thread_count; ++id) {
    workers_.emplace_back([this, id] { worker_loop(id); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::pair<std::size_t, std::size_t> TaskPool::chunk(std::size_t n, std::size_t worker,
                                                    std::size_t workers) {
  IOB_EXPECTS(workers > 0 && worker < workers, "invalid chunk request");
  return {worker * n / workers, (worker + 1) * n / workers};
}

void TaskPool::run_chunk(std::size_t worker_id) {
  const auto [begin, end] = chunk(job_n_, worker_id, size());
  if (begin == end) return;
  try {
    RegionScope region;
    (*job_body_)(begin, end);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void TaskPool::worker_loop(std::size_t worker_id) {
  std::uint64_t seen_gen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return shutdown_ || job_gen_ != seen_gen; });
      if (shutdown_) return;
      seen_gen = job_gen_;
    }
    run_chunk(worker_id);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --outstanding_;
    }
    done_cv_.notify_one();
  }
}

void TaskPool::parallel_for(std::size_t n, const RangeBody& body) {
  IOB_EXPECTS(static_cast<bool>(body), "parallel_for body must be callable");
  if (n == 0) return;
  // Reentrancy guard: exchange so a rejected inner call never clears the
  // flag the outer (still-running) call owns — only the FlightGuard of the
  // call that won the exchange stores false, so the pool survives the throw.
  IOB_EXPECTS(!in_flight_.exchange(true, std::memory_order_acq_rel),
              "TaskPool::parallel_for is not reentrant: a job is already in flight on this pool "
              "(nested component pools must degrade to serial — see in_parallel_region())");
  struct FlightGuard {
    std::atomic<bool>& flag;
    ~FlightGuard() { flag.store(false, std::memory_order_release); }
  } flight{in_flight_};
  if (workers_.empty() || n == 1) {
    RegionScope region;
    body(0, n);  // serial pool (or degenerate range): run inline, no handoff
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_n_ = n;
    job_body_ = &body;
    outstanding_ = workers_.size();
    first_error_ = nullptr;
    ++job_gen_;
  }
  start_cv_.notify_all();
  run_chunk(0);  // the caller is worker 0
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return outstanding_ == 0; });
    job_body_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace iob::sim
