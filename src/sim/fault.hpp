#pragma once
/// \file fault.hpp
/// Declarative fault plans for the discrete-event simulation (the
/// robustness counterpart of the clean-path energy/traffic configs).
///
/// The paper's "perpetually operable" end state (Sec. V) is a *recovery*
/// property, not just an energy balance: a deployment is perpetual only if
/// nodes come back after brownout, the hub comes back after a crash, and
/// the channel's bad episodes end. A `FaultPlan` declares those processes;
/// `net::FaultInjector` executes them against one `net::NetworkSim`, with
/// every stochastic draw taken from an `Rng::fork`-derived stream so fault
/// traces are exactly as deterministic as the clean path (see
/// docs/determinism.md). A default-constructed plan (`any() == false`)
/// injects nothing and leaves every simulation byte-identical to the
/// pre-fault code path.

#include <cstdint>
#include <optional>

namespace iob::sim {

/// Node brownout/reboot lifecycle (threshold + hysteresis on battery SoC).
/// While browned out the node core is powered off: no sensing, no ISA, no
/// MAC activity (its queued frames are purged as fault drops), only an
/// optional sleep floor; the harvester keeps charging the battery. When the
/// SoC recovers past `on_soc` the node reboots, paying `reboot_energy_j`.
/// Configure `on_soc - off_soc` comfortably above the SoC cost of a reboot
/// or the node can oscillate at the threshold.
struct BrownoutPlan {
  double off_soc = 0.05;         ///< power off below this SoC
  double on_soc = 0.15;          ///< reboot at/above this SoC (hysteresis)
  double reboot_energy_j = 0.0;  ///< boot-time energy cost, paid on reboot
  double sleep_power_w = 0.0;    ///< residual draw while browned out
};

/// Hub crash/restart episodes. While the hub is down the TDMA bus emits no
/// beacons (leaves sleep and store frames in their bounded queues), staged
/// hub batches are dropped, and sessions re-sync on restart. Episode
/// durations are exponential with the given means, drawn from the fault
/// stream; `periodic == true` replaces the draws with exactly-periodic
/// episodes (up `mean_up_s`, down `mean_down_s`) for hand-computed tests.
struct HubFlapPlan {
  double mean_up_s = 2.0;    ///< mean time between restart and next crash
  double mean_down_s = 0.5;  ///< mean outage duration
  bool periodic = false;     ///< deterministic episode timing (tests)
};

/// Two-state Gilbert–Elliott burst-loss overlay on the body-bus channel.
/// The chain dwells exponentially in a good state (base frame error rate)
/// and a bad state where an extra loss probability `bad_loss` combines with
/// the base FER, so ARQ faces *correlated* loss episodes instead of the
/// clean i.i.d. channel.
struct BurstLossPlan {
  double mean_good_s = 0.5;    ///< mean dwell in the good state
  double mean_bad_s = 0.125;   ///< mean dwell in the bad (burst) state
  double bad_loss = 0.5;       ///< extra frame-loss probability while bad
};

/// The full fault schedule of one simulation. Each process is optional and
/// independently enabled; all of them draw from streams forked off
/// `stream_id`, so enabling one process never perturbs another's trace.
struct FaultPlan {
  std::optional<BrownoutPlan> brownout{};
  std::optional<HubFlapPlan> hub_flap{};
  std::optional<BurstLossPlan> burst_loss{};
  /// Fork id of the fault processes' RNG streams (distinct from the MAC's
  /// 0x7d0a and the per-node name-hash streams).
  std::uint64_t stream_id = 0xFA017;

  [[nodiscard]] bool any() const {
    return brownout.has_value() || hub_flap.has_value() || burst_loss.has_value();
  }
};

}  // namespace iob::sim
