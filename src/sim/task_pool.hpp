#pragma once
/// \file task_pool.hpp
/// Fixed-size thread pool with chunked static scheduling, built for the
/// sweep engine: every `parallel_for` splits [0, n) into one contiguous
/// chunk per thread (caller included), so the assignment of indices to
/// threads is a pure function of (n, thread count) — no work stealing, no
/// scheduling races, and therefore no run-to-run variation in which thread
/// computes which point. Determinism of the *results* then only requires
/// each index's work to be self-contained (the sweep runner guarantees that
/// by forking a per-index RNG).
///
/// Workers are started once and parked on a condition variable between
/// jobs; a `parallel_for` costs two lock handoffs per worker, which is
/// noise against sweep points that each run a full simulation.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace iob::sim {

class TaskPool {
 public:
  /// Range body: invoked as body(begin, end) with [begin, end) ⊆ [0, n).
  using RangeBody = std::function<void(std::size_t, std::size_t)>;

  /// \param thread_count total threads used per job, caller included.
  ///        0 means std::thread::hardware_concurrency(); 1 runs everything
  ///        inline on the caller with no worker threads at all.
  explicit TaskPool(std::size_t thread_count = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Total threads participating in each parallel_for (workers + caller).
  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  /// Run `body` over [0, n), statically chunked across size() threads.
  /// Blocks until every chunk is done. The first exception thrown by any
  /// chunk is rethrown on the caller (remaining chunks still complete).
  ///
  /// Not reentrant: calling parallel_for on a pool that already has a job
  /// in flight (from inside a body, or from a second thread) throws
  /// std::invalid_argument instead of deadlocking; the outer job is
  /// unaffected and the pool stays usable. Nesting rule for *distinct*
  /// pools: fleet parallelism wins — a component that owns its own pool
  /// (e.g. the hub engine) must check `in_parallel_region()` and degrade to
  /// its serial path when it is already running inside another pool's body
  /// (e.g. a `SweepRunner` sweep), so thread counts never multiply.
  void parallel_for(std::size_t n, const RangeBody& body);

  /// True while a parallel_for on *this pool* has not yet returned. Mainly
  /// for tests; the reentrancy check itself is internal.
  [[nodiscard]] bool in_flight() const { return in_flight_.load(std::memory_order_acquire); }

  /// True when the calling thread is currently executing inside the body of
  /// ANY TaskPool::parallel_for (including the inline serial path). This is
  /// the "am I nested?" probe behind the fleet-parallelism-wins rule.
  [[nodiscard]] static bool in_parallel_region();

  /// The static chunk for `worker` of `workers` over [0, n): contiguous,
  /// balanced to within one element. Exposed so tests can assert coverage.
  static std::pair<std::size_t, std::size_t> chunk(std::size_t n, std::size_t worker,
                                                  std::size_t workers);

 private:
  void worker_loop(std::size_t worker_id);
  void run_chunk(std::size_t worker_id);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t job_gen_ = 0;       ///< bumped per parallel_for; wakes workers
  std::size_t job_n_ = 0;
  const RangeBody* job_body_ = nullptr;
  std::size_t outstanding_ = 0;     ///< workers still running the current job
  std::exception_ptr first_error_;
  bool shutdown_ = false;
  std::atomic<bool> in_flight_{false};  ///< reentrancy / concurrent-use guard
};

}  // namespace iob::sim
