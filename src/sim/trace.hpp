#pragma once
/// \file trace.hpp
/// Structured event tracing. Actors emit (time, source, kind, detail)
/// records; tests assert on traces (determinism, ordering) and examples can
/// dump them for inspection. Recording is in-memory and optional — a
/// disabled sink costs one branch.

#include <cstddef>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"

namespace iob::sim {

struct TraceRecord {
  Time time = 0.0;
  std::string source;  ///< emitting entity, e.g. "node.ecg_patch"
  std::string kind;    ///< event class, e.g. "tx_start", "rx_done", "battery_empty"
  std::string detail;  ///< free-form payload, e.g. "bytes=240 slot=3"
};

class TraceSink {
 public:
  /// Start/stop recording (off by default).
  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void emit(Time t, std::string source, std::string kind, std::string detail = {});

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  /// Count records matching a kind (and optionally a source).
  [[nodiscard]] std::size_t count(const std::string& kind, const std::string& source = {}) const;

  /// Render the full trace as text, one record per line.
  [[nodiscard]] std::string to_string() const;

 private:
  bool enabled_ = false;
  std::vector<TraceRecord> records_;
};

}  // namespace iob::sim
