#pragma once
/// \file ppg.hpp
/// Photoplethysmogram generator (smart rings / fitness trackers, paper
/// Sec. II-A): per-beat systolic peak + dicrotic notch as two Gaussians,
/// respiratory amplitude modulation and noise.

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace iob::workload {

struct PpgParams {
  double sample_rate_hz = 100.0;
  double heart_rate_bpm = 72.0;
  double hrv_rel_sigma = 0.04;
  double amplitude = 1.0;          ///< arbitrary reflectance units
  double resp_mod_depth = 0.10;    ///< respiratory amplitude modulation
  double noise = 0.01;
};

class PpgGenerator {
 public:
  explicit PpgGenerator(PpgParams params = {});

  std::vector<float> generate(double duration_s, sim::Rng& rng) const;
  std::vector<std::int16_t> generate_adc(double duration_s, sim::Rng& rng,
                                         double full_scale = 4.0) const;
  [[nodiscard]] double data_rate_bps(int bits = 16) const;

  [[nodiscard]] const PpgParams& params() const { return params_; }

 private:
  PpgParams params_;
};

}  // namespace iob::workload
