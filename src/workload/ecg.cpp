#include "workload/ecg.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace iob::workload {

namespace {

/// PQRST wave component: (phase offset within beat [0,1), width, amplitude
/// relative to R).
struct WaveComponent {
  double center;
  double width;
  double amp;
};

constexpr WaveComponent kPqrst[] = {
    {0.18, 0.025, 0.15},   // P
    {0.245, 0.010, -0.12}, // Q
    {0.26, 0.011, 1.0},    // R
    {0.275, 0.010, -0.25}, // S
    {0.45, 0.045, 0.30},   // T
};

}  // namespace

EcgGenerator::EcgGenerator(EcgParams params) : params_(params) {
  IOB_EXPECTS(params_.sample_rate_hz > 0, "sample rate must be positive");
  IOB_EXPECTS(params_.heart_rate_bpm > 20 && params_.heart_rate_bpm < 300,
              "heart rate out of physiological range");
}

std::vector<float> EcgGenerator::generate(double duration_s, sim::Rng& rng) const {
  IOB_EXPECTS(duration_s > 0, "duration must be positive");
  const auto n = static_cast<std::size_t>(duration_s * params_.sample_rate_hz);
  std::vector<float> out(n, 0.0f);

  const double mean_rr = 60.0 / params_.heart_rate_bpm;
  // Lay down beats one RR interval at a time.
  double beat_start = 0.0;
  while (beat_start < duration_s) {
    const double rr = std::max(0.3, rng.normal(mean_rr, params_.hrv_rel_sigma * mean_rr));
    for (const auto& w : kPqrst) {
      const double t_center = beat_start + w.center * rr;
      const double sigma = w.width * rr / 0.8;  // scale widths with RR
      // Gaussians are negligible past 4 sigma; only touch nearby samples.
      const auto lo = static_cast<long>((t_center - 4 * sigma) * params_.sample_rate_hz);
      const auto hi = static_cast<long>((t_center + 4 * sigma) * params_.sample_rate_hz) + 1;
      for (long i = std::max(0L, lo); i < std::min(static_cast<long>(n), hi); ++i) {
        const double t = static_cast<double>(i) / params_.sample_rate_hz;
        const double dt = (t - t_center) / sigma;
        out[static_cast<std::size_t>(i)] += static_cast<float>(
            params_.amplitude_mv * w.amp * std::exp(-0.5 * dt * dt));
      }
    }
    beat_start += rr;
  }

  // Baseline wander (respiration-rate sinusoid) + white noise.
  const double resp_hz = 0.25;
  const double wander_phase = rng.uniform(0.0, 2.0 * M_PI);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / params_.sample_rate_hz;
    out[i] += static_cast<float>(
        params_.baseline_wander_mv * std::sin(2.0 * M_PI * resp_hz * t + wander_phase) +
        rng.normal(0.0, params_.noise_mv));
  }
  return out;
}

std::vector<std::int16_t> EcgGenerator::generate_adc(double duration_s, sim::Rng& rng,
                                                     double full_scale_mv) const {
  IOB_EXPECTS(full_scale_mv > 0, "full scale must be positive");
  const auto mv = generate(duration_s, rng);
  std::vector<std::int16_t> codes(mv.size());
  for (std::size_t i = 0; i < mv.size(); ++i) {
    const double v = std::clamp(static_cast<double>(mv[i]) / full_scale_mv, -1.0, 1.0);
    codes[i] = static_cast<std::int16_t>(std::lround(v * 32767.0));
  }
  return codes;
}

double EcgGenerator::data_rate_bps(int bits) const {
  IOB_EXPECTS(bits > 0 && bits <= 32, "resolution out of range");
  return params_.sample_rate_hz * bits;
}

}  // namespace iob::workload
