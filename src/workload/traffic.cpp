#include "workload/traffic.hpp"

#include <utility>

#include "common/expect.hpp"

namespace iob::workload {

PeriodicSource::PeriodicSource(sim::Simulator& sim, double period_s, std::uint32_t payload_bytes,
                               TrafficSink sink, double start_s)
    : period_s_(period_s), payload_bytes_(payload_bytes), sink_(std::move(sink)) {
  IOB_EXPECTS(period_s_ > 0.0, "period must be positive");
  IOB_EXPECTS(payload_bytes_ > 0, "payload must be non-empty");
  IOB_EXPECTS(static_cast<bool>(sink_), "sink must be callable");
  sim.every(start_s, period_s_, [this](sim::Time t) {
    if (stopped_) return;
    ++emitted_;
    sink_(t, payload_bytes_);
  });
}

double PeriodicSource::offered_bps() const {
  return static_cast<double>(payload_bytes_) * 8.0 / period_s_;
}

PoissonSource::PoissonSource(sim::Simulator& sim, double rate_per_s, std::uint32_t payload_bytes,
                             TrafficSink sink, double start_s)
    : rate_per_s_(rate_per_s),
      payload_bytes_(payload_bytes),
      sink_(std::move(sink)),
      rng_(sim.rng().fork(0x9055)),
      sim_(&sim) {
  IOB_EXPECTS(rate_per_s_ > 0.0, "rate must be positive");
  IOB_EXPECTS(payload_bytes_ > 0, "payload must be non-empty");
  IOB_EXPECTS(static_cast<bool>(sink_), "sink must be callable");
  sim.at(start_s + rng_.exponential(1.0 / rate_per_s_), [this] {
    if (stopped_) return;
    ++emitted_;
    sink_(sim_->now(), payload_bytes_);
    schedule_next(*sim_);
  });
}

void PoissonSource::schedule_next(sim::Simulator& sim) {
  sim.after(rng_.exponential(1.0 / rate_per_s_), [this] {
    if (stopped_) return;
    ++emitted_;
    sink_(sim_->now(), payload_bytes_);
    schedule_next(*sim_);
  });
}

double PoissonSource::offered_bps() const {
  return static_cast<double>(payload_bytes_) * 8.0 * rate_per_s_;
}

}  // namespace iob::workload
