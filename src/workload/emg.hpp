#pragma once
/// \file emg.hpp
/// Surface EMG generator: muscle activations appear as amplitude-modulated
/// band-limited noise bursts (contractions) over a quiet baseline — the
/// signal an EMG limb node (paper Sec. I) would stream for gesture input.

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace iob::workload {

struct EmgParams {
  double sample_rate_hz = 1000.0;
  double burst_rate_hz = 0.5;       ///< mean contractions per second
  double burst_duration_s = 0.4;
  double burst_amplitude_mv = 1.5;
  double baseline_noise_mv = 0.02;
  double band_low_hz = 20.0;        ///< EMG energy band
  double band_high_hz = 450.0;
};

class EmgGenerator {
 public:
  explicit EmgGenerator(EmgParams params = {});

  std::vector<float> generate(double duration_s, sim::Rng& rng) const;
  std::vector<std::int16_t> generate_adc(double duration_s, sim::Rng& rng,
                                         double full_scale_mv = 5.0) const;
  [[nodiscard]] double data_rate_bps(int bits = 12) const;

  [[nodiscard]] const EmgParams& params() const { return params_; }

 private:
  EmgParams params_;
};

}  // namespace iob::workload
