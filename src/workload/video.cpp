#include "workload/video.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace iob::workload {

VideoGenerator::VideoGenerator(VideoParams params, std::uint64_t seed) : params_(params) {
  IOB_EXPECTS(params_.width > 0 && params_.height > 0, "frame dims must be positive");
  IOB_EXPECTS(params_.width % 8 == 0 && params_.height % 8 == 0,
              "frame dims must be multiples of 8 for the block codec");
  IOB_EXPECTS(params_.fps > 0, "frame rate must be positive");

  sim::Rng rng(seed);
  for (int i = 0; i < params_.n_objects; ++i) {
    Object o;
    o.x = rng.uniform(0.0, params_.width);
    o.y = rng.uniform(0.0, params_.height);
    o.vx = rng.uniform(-3.0, 3.0);
    o.vy = rng.uniform(-2.0, 2.0);
    o.w = static_cast<int>(rng.uniform_int(16, 64));
    o.h = static_cast<int>(rng.uniform_int(16, 48));
    o.brightness = static_cast<int>(rng.uniform_int(60, 230));
    objects_.push_back(o);
  }
}

isa::GrayFrame VideoGenerator::next_frame(sim::Rng& rng) {
  isa::GrayFrame f;
  f.width = params_.width;
  f.height = params_.height;
  f.pixels.resize(static_cast<std::size_t>(params_.width) * params_.height);

  // Background: diagonal gradient (smooth -> DCT-friendly, like real scenes).
  for (int y = 0; y < params_.height; ++y) {
    for (int x = 0; x < params_.width; ++x) {
      const double g = 40.0 + 120.0 * (static_cast<double>(x) / params_.width +
                                       static_cast<double>(y) / params_.height) / 2.0;
      f.pixels[static_cast<std::size_t>(y) * params_.width + x] = static_cast<std::uint8_t>(g);
    }
  }

  // Moving objects with a mild texture.
  for (auto& o : objects_) {
    o.x += o.vx;
    o.y += o.vy;
    // Bounce off frame edges.
    if (o.x < 0 || o.x >= params_.width) o.vx = -o.vx;
    if (o.y < 0 || o.y >= params_.height) o.vy = -o.vy;
    o.x = std::clamp(o.x, 0.0, static_cast<double>(params_.width - 1));
    o.y = std::clamp(o.y, 0.0, static_cast<double>(params_.height - 1));

    const int x0 = std::max(0, static_cast<int>(o.x) - o.w / 2);
    const int x1 = std::min(params_.width, static_cast<int>(o.x) + o.w / 2);
    const int y0 = std::max(0, static_cast<int>(o.y) - o.h / 2);
    const int y1 = std::min(params_.height, static_cast<int>(o.y) + o.h / 2);
    for (int y = y0; y < y1; ++y) {
      for (int x = x0; x < x1; ++x) {
        const int texture = ((x / 4 + y / 4) % 2) * 20;
        f.pixels[static_cast<std::size_t>(y) * params_.width + x] =
            static_cast<std::uint8_t>(std::clamp(o.brightness + texture, 0, 255));
      }
    }
  }

  // Sensor noise.
  if (params_.noise_sigma > 0) {
    for (auto& p : f.pixels) {
      const double v = p + rng.normal(0.0, params_.noise_sigma);
      p = static_cast<std::uint8_t>(std::clamp(static_cast<int>(std::lround(v)), 0, 255));
    }
  }

  ++frame_index_;
  return f;
}

double VideoGenerator::raw_data_rate_bps() const {
  return static_cast<double>(params_.width) * params_.height * 8.0 * params_.fps;
}

}  // namespace iob::workload
