#include "workload/imu.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace iob::workload {

ImuGenerator::ImuGenerator(ImuParams params) : params_(params) {
  IOB_EXPECTS(params_.sample_rate_hz > 0, "sample rate must be positive");
  IOB_EXPECTS(params_.step_rate_hz > 0, "cadence must be positive");
}

std::vector<ImuSample> ImuGenerator::generate(double duration_s, sim::Rng& rng) const {
  IOB_EXPECTS(duration_s > 0, "duration must be positive");
  const auto n = static_cast<std::size_t>(duration_s * params_.sample_rate_hz);
  std::vector<ImuSample> out(n);

  const double f = params_.step_rate_hz;
  const double phase = rng.uniform(0.0, 2.0 * M_PI);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / params_.sample_rate_hz;
    const double w = 2.0 * M_PI * f * t + phase;
    // Vertical: strong 2nd harmonic (both feet strike), gravity offset.
    const double az = 1.0 + params_.vertical_amp_g * (std::sin(2.0 * w) + 0.3 * std::sin(4.0 * w));
    // Fore-aft: fundamental + 2nd.
    const double ax = params_.foreaft_amp_g * (std::sin(w) + 0.4 * std::sin(2.0 * w + 0.7));
    // Lateral sway at half the step rate (left/right alternation).
    const double ay = params_.lateral_amp_g * std::sin(w / 2.0 + 1.1);
    out[i] = ImuSample{
        static_cast<float>(ax + rng.normal(0.0, params_.noise_g)),
        static_cast<float>(ay + rng.normal(0.0, params_.noise_g)),
        static_cast<float>(az + rng.normal(0.0, params_.noise_g)),
    };
  }
  return out;
}

std::vector<std::int16_t> ImuGenerator::generate_adc(double duration_s, sim::Rng& rng,
                                                     double full_scale_g) const {
  IOB_EXPECTS(full_scale_g > 0, "full scale must be positive");
  const auto samples = generate(duration_s, rng);
  std::vector<std::int16_t> codes;
  codes.reserve(samples.size() * 3);
  const auto quant = [&](float g) {
    const double v = std::clamp(static_cast<double>(g) / full_scale_g, -1.0, 1.0);
    return static_cast<std::int16_t>(std::lround(v * 32767.0));
  };
  for (const auto& s : samples) {
    codes.push_back(quant(s.ax));
    codes.push_back(quant(s.ay));
    codes.push_back(quant(s.az));
  }
  return codes;
}

double ImuGenerator::data_rate_bps(int bits) const {
  IOB_EXPECTS(bits > 0 && bits <= 32, "resolution out of range");
  return params_.sample_rate_hz * 3.0 * bits;
}

}  // namespace iob::workload
