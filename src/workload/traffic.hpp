#pragma once
/// \file traffic.hpp
/// Traffic sources that drive the DES network: periodic (sensor sampling
/// batches) and Poisson (event-driven, e.g. user queries) arrival
/// processes producing fixed-size payloads.

#include <cstdint>
#include <functional>

#include "sim/simulator.hpp"

namespace iob::workload {

/// Callback invoked per generated message: (created_at, payload_bytes).
using TrafficSink = std::function<void(sim::Time, std::uint32_t)>;

/// Emits `payload_bytes` every `period_s`, starting at `start_s`.
/// Equivalent offered load = 8 * payload_bytes / period_s bps.
class PeriodicSource {
 public:
  PeriodicSource(sim::Simulator& sim, double period_s, std::uint32_t payload_bytes,
                 TrafficSink sink, double start_s = 0.0);

  void stop() { stopped_ = true; }
  [[nodiscard]] double offered_bps() const;
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

 private:
  double period_s_;
  std::uint32_t payload_bytes_;
  TrafficSink sink_;
  bool stopped_ = false;
  std::uint64_t emitted_ = 0;
};

/// Emits `payload_bytes` at exponentially-distributed intervals with mean
/// rate `rate_per_s`.
class PoissonSource {
 public:
  PoissonSource(sim::Simulator& sim, double rate_per_s, std::uint32_t payload_bytes,
                TrafficSink sink, double start_s = 0.0);

  void stop() { stopped_ = true; }
  [[nodiscard]] double offered_bps() const;
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

 private:
  void schedule_next(sim::Simulator& sim);

  double rate_per_s_;
  std::uint32_t payload_bytes_;
  TrafficSink sink_;
  bool stopped_ = false;
  std::uint64_t emitted_ = 0;
  sim::Rng rng_;
  sim::Simulator* sim_;
};

}  // namespace iob::workload
