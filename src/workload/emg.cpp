#include "workload/emg.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace iob::workload {

EmgGenerator::EmgGenerator(EmgParams params) : params_(params) {
  IOB_EXPECTS(params_.sample_rate_hz > 2.0 * params_.band_high_hz,
              "sample rate must satisfy Nyquist for the EMG band");
  IOB_EXPECTS(params_.burst_rate_hz >= 0, "burst rate must be non-negative");
}

std::vector<float> EmgGenerator::generate(double duration_s, sim::Rng& rng) const {
  IOB_EXPECTS(duration_s > 0, "duration must be positive");
  const auto n = static_cast<std::size_t>(duration_s * params_.sample_rate_hz);

  // Contraction envelope: raised-cosine bursts at Poisson arrival times.
  std::vector<float> envelope(n, 0.0f);
  if (params_.burst_rate_hz > 0) {
    double t = rng.exponential(1.0 / params_.burst_rate_hz);
    while (t < duration_s) {
      const auto start = static_cast<std::size_t>(t * params_.sample_rate_hz);
      const auto len = static_cast<std::size_t>(params_.burst_duration_s * params_.sample_rate_hz);
      for (std::size_t i = 0; i < len && start + i < n; ++i) {
        const double phase = static_cast<double>(i) / static_cast<double>(len);
        const auto w = static_cast<float>(0.5 - 0.5 * std::cos(2.0 * M_PI * phase));
        envelope[start + i] = std::max(envelope[start + i], w);
      }
      t += rng.exponential(1.0 / params_.burst_rate_hz);
    }
  }

  // Band-limited noise: white noise through a 2nd-order band-pass biquad.
  const double w0 = 2.0 * M_PI *
                    std::sqrt(params_.band_low_hz * params_.band_high_hz) /
                    params_.sample_rate_hz;
  const double bw_oct = std::log2(params_.band_high_hz / params_.band_low_hz);
  const double q = std::sqrt(std::pow(2.0, bw_oct)) / (std::pow(2.0, bw_oct) - 1.0);
  const double alpha = std::sin(w0) / (2.0 * q);
  const double b0 = alpha, b2 = -alpha;
  const double a0 = 1.0 + alpha, a1 = -2.0 * std::cos(w0), a2 = 1.0 - alpha;

  std::vector<float> out(n, 0.0f);
  double x1 = 0, x2 = 0, y1 = 0, y2 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.normal();
    const double y = (b0 * x + b2 * x2 - a1 * y1 - a2 * y2) / a0;
    x2 = x1;
    x1 = x;
    y2 = y1;
    y1 = y;
    out[i] = static_cast<float>(params_.burst_amplitude_mv * envelope[i] * y * 0.5 +
                                rng.normal(0.0, params_.baseline_noise_mv));
  }
  return out;
}

std::vector<std::int16_t> EmgGenerator::generate_adc(double duration_s, sim::Rng& rng,
                                                     double full_scale_mv) const {
  IOB_EXPECTS(full_scale_mv > 0, "full scale must be positive");
  const auto mv = generate(duration_s, rng);
  std::vector<std::int16_t> codes(mv.size());
  for (std::size_t i = 0; i < mv.size(); ++i) {
    const double v = std::clamp(static_cast<double>(mv[i]) / full_scale_mv, -1.0, 1.0);
    codes[i] = static_cast<std::int16_t>(std::lround(v * 32767.0));
  }
  return codes;
}

double EmgGenerator::data_rate_bps(int bits) const {
  IOB_EXPECTS(bits > 0 && bits <= 32, "resolution out of range");
  return params_.sample_rate_hz * bits;
}

}  // namespace iob::workload
