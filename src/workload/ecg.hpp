#pragma once
/// \file ecg.hpp
/// Synthetic single-lead ECG generator: PQRST morphology as a sum of
/// Gaussians per beat (McSharry-style), RR-interval variability, baseline
/// wander and sensor noise. Substitutes for the clinical recordings a
/// biopotential patch would stream (DESIGN.md substitution table).

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace iob::workload {

struct EcgParams {
  double sample_rate_hz = 360.0;   ///< MIT-BIH-class rate
  double heart_rate_bpm = 72.0;
  double hrv_rel_sigma = 0.04;     ///< RR-interval relative jitter
  double amplitude_mv = 1.1;       ///< R-peak amplitude
  double baseline_wander_mv = 0.05;
  double noise_mv = 0.01;
};

class EcgGenerator {
 public:
  explicit EcgGenerator(EcgParams params = {});

  /// Generate `duration_s` seconds of signal (mV).
  std::vector<float> generate(double duration_s, sim::Rng& rng) const;

  /// Same signal scaled to int16 ADC codes (for the codecs / transport).
  /// Full scale (+-32767) corresponds to +-`full_scale_mv`.
  std::vector<std::int16_t> generate_adc(double duration_s, sim::Rng& rng,
                                         double full_scale_mv = 5.0) const;

  /// Raw data rate (bps) of the ADC stream at `bits` resolution.
  [[nodiscard]] double data_rate_bps(int bits = 12) const;

  [[nodiscard]] const EcgParams& params() const { return params_; }

 private:
  EcgParams params_;
};

}  // namespace iob::workload
