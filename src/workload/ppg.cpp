#include "workload/ppg.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace iob::workload {

PpgGenerator::PpgGenerator(PpgParams params) : params_(params) {
  IOB_EXPECTS(params_.sample_rate_hz > 0, "sample rate must be positive");
  IOB_EXPECTS(params_.heart_rate_bpm > 20 && params_.heart_rate_bpm < 300,
              "heart rate out of physiological range");
}

std::vector<float> PpgGenerator::generate(double duration_s, sim::Rng& rng) const {
  IOB_EXPECTS(duration_s > 0, "duration must be positive");
  const auto n = static_cast<std::size_t>(duration_s * params_.sample_rate_hz);
  std::vector<float> out(n, 0.0f);

  const double mean_rr = 60.0 / params_.heart_rate_bpm;
  double beat_start = 0.0;
  while (beat_start < duration_s) {
    const double rr = std::max(0.3, rng.normal(mean_rr, params_.hrv_rel_sigma * mean_rr));
    // Systolic peak and dicrotic (reflected) wave.
    const struct {
      double center, width, amp;
    } waves[] = {{0.18, 0.09, 1.0}, {0.45, 0.12, 0.35}};
    for (const auto& w : waves) {
      const double t_center = beat_start + w.center * rr;
      const double sigma = w.width * rr;
      const auto lo = static_cast<long>((t_center - 4 * sigma) * params_.sample_rate_hz);
      const auto hi = static_cast<long>((t_center + 4 * sigma) * params_.sample_rate_hz) + 1;
      for (long i = std::max(0L, lo); i < std::min(static_cast<long>(n), hi); ++i) {
        const double t = static_cast<double>(i) / params_.sample_rate_hz;
        const double dt = (t - t_center) / sigma;
        out[static_cast<std::size_t>(i)] +=
            static_cast<float>(params_.amplitude * w.amp * std::exp(-0.5 * dt * dt));
      }
    }
    beat_start += rr;
  }

  const double resp_hz = 0.25;
  const double phase = rng.uniform(0.0, 2.0 * M_PI);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / params_.sample_rate_hz;
    const double mod = 1.0 + params_.resp_mod_depth * std::sin(2.0 * M_PI * resp_hz * t + phase);
    out[i] = static_cast<float>(out[i] * mod + rng.normal(0.0, params_.noise));
  }
  return out;
}

std::vector<std::int16_t> PpgGenerator::generate_adc(double duration_s, sim::Rng& rng,
                                                     double full_scale) const {
  IOB_EXPECTS(full_scale > 0, "full scale must be positive");
  const auto sig = generate(duration_s, rng);
  std::vector<std::int16_t> codes(sig.size());
  for (std::size_t i = 0; i < sig.size(); ++i) {
    const double v = std::clamp(static_cast<double>(sig[i]) / full_scale, -1.0, 1.0);
    codes[i] = static_cast<std::int16_t>(std::lround(v * 32767.0));
  }
  return codes;
}

double PpgGenerator::data_rate_bps(int bits) const {
  IOB_EXPECTS(bits > 0 && bits <= 32, "resolution out of range");
  return params_.sample_rate_hz * bits;
}

}  // namespace iob::workload
