#pragma once
/// \file imu.hpp
/// 3-axis accelerometer generator: walking gait as a harmonic series on the
/// step frequency (vertical dominant, fore-aft and lateral weaker), gravity
/// offset, and sensor noise — the limb-worn IMU workload (paper Sec. I).

#include <array>
#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace iob::workload {

struct ImuParams {
  double sample_rate_hz = 100.0;
  double step_rate_hz = 1.8;       ///< steps per second (cadence)
  double vertical_amp_g = 0.35;
  double foreaft_amp_g = 0.20;
  double lateral_amp_g = 0.12;
  double noise_g = 0.01;
};

/// One accelerometer sample (g units).
struct ImuSample {
  float ax, ay, az;
};

class ImuGenerator {
 public:
  explicit ImuGenerator(ImuParams params = {});

  std::vector<ImuSample> generate(double duration_s, sim::Rng& rng) const;

  /// Interleaved xyz int16 codes, +-`full_scale_g` full range.
  std::vector<std::int16_t> generate_adc(double duration_s, sim::Rng& rng,
                                         double full_scale_g = 4.0) const;

  /// Raw rate: 3 axes x bits x sample rate.
  [[nodiscard]] double data_rate_bps(int bits = 16) const;

  [[nodiscard]] const ImuParams& params() const { return params_; }

 private:
  ImuParams params_;
};

}  // namespace iob::workload
