#include "workload/audio.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace iob::workload {

AudioGenerator::AudioGenerator(AudioParams params) : params_(params) {
  IOB_EXPECTS(params_.sample_rate_hz >= 8000.0, "sample rate too low for speech");
  IOB_EXPECTS(params_.f0_hz > 40.0 && params_.f0_hz < 500.0, "pitch out of speech range");
}

std::vector<float> AudioGenerator::generate(double duration_s, sim::Rng& rng) const {
  IOB_EXPECTS(duration_s > 0, "duration must be positive");
  const auto n = static_cast<std::size_t>(duration_s * params_.sample_rate_hz);
  std::vector<float> out(n, 0.0f);

  enum class Seg { kSilence, kVoiced, kUnvoiced };
  std::size_t i = 0;
  double phase = 0.0;
  while (i < n) {
    // Choose next segment type and length.
    Seg seg;
    if (!rng.bernoulli(params_.speech_fraction)) {
      seg = Seg::kSilence;
    } else {
      seg = rng.bernoulli(params_.voiced_fraction) ? Seg::kVoiced : Seg::kUnvoiced;
    }
    const double seg_len_s = std::max(0.05, rng.exponential(params_.segment_s));
    const auto seg_len = std::min(
        n - i, static_cast<std::size_t>(seg_len_s * params_.sample_rate_hz));

    const double f0 = params_.f0_hz * (1.0 + params_.f0_wander * rng.uniform(-1.0, 1.0));
    double lp_state = 0.0;  // one-pole low-pass for unvoiced colouring
    for (std::size_t k = 0; k < seg_len; ++k, ++i) {
      // Raised-cosine fade at segment edges to avoid clicks.
      const double edge = std::min({static_cast<double>(k), static_cast<double>(seg_len - 1 - k),
                                    0.01 * params_.sample_rate_hz});
      const double fade = std::min(1.0, edge / (0.01 * params_.sample_rate_hz));
      double v = 0.0;
      switch (seg) {
        case Seg::kSilence:
          v = 0.0;
          break;
        case Seg::kVoiced: {
          // Harmonic stack with -6 dB/octave tilt (glottal-like).
          phase += 2.0 * M_PI * f0 / params_.sample_rate_hz;
          for (int h = 1; h <= 8; ++h) {
            v += std::sin(phase * h) / static_cast<double>(h);
          }
          v *= 0.35;
          break;
        }
        case Seg::kUnvoiced: {
          // Low-passed white noise (fricative-ish).
          lp_state = 0.7 * lp_state + 0.3 * rng.normal();
          v = 0.8 * lp_state;
          break;
        }
      }
      out[i] = static_cast<float>(std::clamp(params_.amplitude * fade * v, -1.0, 1.0));
    }
    if (seg_len == 0) break;  // defensive: cannot make progress
  }

  // Sensor noise floor.
  for (auto& s : out) s += static_cast<float>(rng.normal(0.0, 1e-3));
  return out;
}

std::vector<std::int16_t> AudioGenerator::generate_pcm(double duration_s, sim::Rng& rng) const {
  const auto sig = generate(duration_s, rng);
  std::vector<std::int16_t> pcm(sig.size());
  for (std::size_t i = 0; i < sig.size(); ++i) {
    pcm[i] = static_cast<std::int16_t>(
        std::lround(std::clamp(static_cast<double>(sig[i]), -1.0, 1.0) * 32767.0));
  }
  return pcm;
}

double AudioGenerator::data_rate_bps(int bits) const {
  IOB_EXPECTS(bits > 0 && bits <= 32, "resolution out of range");
  return params_.sample_rate_hz * bits;
}

}  // namespace iob::workload
