#pragma once
/// \file video.hpp
/// Synthetic first-person video generator for the camera device class
/// (smart glasses / AI pins, paper Sec. II-C): a static gradient scene with
/// moving textured rectangles and sensor noise. Frames are structured
/// enough that the MJPEG ISA codec achieves realistic (not degenerate)
/// compression ratios.

#include <vector>

#include "isa/mjpeg.hpp"
#include "sim/rng.hpp"

namespace iob::workload {

struct VideoParams {
  int width = 320;   ///< QVGA default; must be multiple of 8
  int height = 240;
  double fps = 15.0;
  int n_objects = 3;       ///< moving rectangles
  double noise_sigma = 2.0;  ///< sensor noise (8-bit codes)
};

class VideoGenerator {
 public:
  explicit VideoGenerator(VideoParams params = {}, std::uint64_t seed = 7);

  /// Produce the next frame (object positions advance by 1/fps).
  isa::GrayFrame next_frame(sim::Rng& rng);

  /// Raw (uncompressed 8-bit luma) data rate in bps.
  [[nodiscard]] double raw_data_rate_bps() const;

  [[nodiscard]] const VideoParams& params() const { return params_; }

 private:
  struct Object {
    double x, y;       ///< center, pixels
    double vx, vy;     ///< pixels per frame
    int w, h;
    int brightness;
  };

  VideoParams params_;
  std::vector<Object> objects_;
  std::uint64_t frame_index_ = 0;
};

}  // namespace iob::workload
