#pragma once
/// \file audio.hpp
/// Speech-like audio generator for the voice-based device class (paper
/// Sec. II-B): alternating voiced segments (harmonic stack on a wandering
/// F0 with formant-like spectral tilt) and unvoiced noise bursts, silence
/// gaps between utterances. Exercises the ADPCM codec, MFCC extractor and
/// KWS model with realistic spectral structure.

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace iob::workload {

struct AudioParams {
  double sample_rate_hz = 16000.0;
  double f0_hz = 120.0;             ///< base pitch
  double f0_wander = 0.15;          ///< relative pitch modulation depth
  double voiced_fraction = 0.5;     ///< fraction of speech that is voiced
  double speech_fraction = 0.65;    ///< fraction of time someone speaks
  double segment_s = 0.25;          ///< mean phoneme-ish segment length
  double amplitude = 0.5;           ///< peak amplitude in [-1, 1]
};

class AudioGenerator {
 public:
  explicit AudioGenerator(AudioParams params = {});

  std::vector<float> generate(double duration_s, sim::Rng& rng) const;
  std::vector<std::int16_t> generate_pcm(double duration_s, sim::Rng& rng) const;

  /// Raw PCM rate (bps) at `bits` resolution.
  [[nodiscard]] double data_rate_bps(int bits = 16) const;

  [[nodiscard]] const AudioParams& params() const { return params_; }

 private:
  AudioParams params_;
};

}  // namespace iob::workload
