#pragma once
/// \file safety.hpp
/// Human-exposure safety checks for EQS-HBC transmit levels (paper ref
/// [19], Maity et al., "On the Safety of Human Body Communication", IEEE
/// TBME 2020). EQS-HBC couples currents through tissue, so the transmit
/// swing is bounded by the ICNIRP-2010 basic restrictions:
///
///  * induced in-situ electric field (general public): E_limit = 1.35e-4 * f
///    V/m for f in [3 kHz, 10 MHz] — i.e. proportional to frequency;
///  * contact / limb current (occupational-style limit used by [19]):
///    I_limit = 20 mA above 100 kHz, 0.2 * f[kHz] mA below.
///
/// The module converts a TX swing + electrode geometry into tissue current
/// and in-situ field estimates via the capacitive coupling impedance, and
/// reports the compliance margin. The paper's headline result [19] is that
/// EQS-HBC at ~1 V swing sits orders of magnitude below the limits — which
/// this model reproduces (asserted in tests).

#include "common/units.hpp"

namespace iob::phy {

struct SafetyParams {
  /// Electrode-to-body coupling capacitance (series impedance), ~1 pF for a
  /// small dry electrode.
  double electrode_capacitance_f = 1.0 * units::pF;
  /// Tissue path resistance under the electrode, ~1 kohm.
  double tissue_resistance_ohm = 1.0 * units::kohm;
  /// Effective current-spreading cross-section under the electrode (m^2);
  /// 1 cm^2 electrode class.
  double electrode_area_m2 = 1e-4;
  /// Tissue conductivity (S/m), muscle-class at EQS frequencies.
  double tissue_conductivity_s_per_m = 0.5;
};

class HbcSafetyModel {
 public:
  explicit HbcSafetyModel(SafetyParams params = {});

  /// Tissue current (A rms) injected by a TX swing at a frequency: the
  /// swing across the series electrode capacitance + tissue resistance.
  [[nodiscard]] double tissue_current_a(double tx_voltage_v, double freq_hz) const;

  /// In-situ electric field (V/m rms) in tissue under the electrode:
  /// J / sigma with J = I / A.
  [[nodiscard]] double in_situ_field_v_per_m(double tx_voltage_v, double freq_hz) const;

  /// ICNIRP-2010 general-public in-situ field limit (V/m) at a frequency
  /// in [3 kHz, 10 MHz]; clamped to the 10 MHz value above.
  [[nodiscard]] static double icnirp_field_limit_v_per_m(double freq_hz);

  /// Contact-current limit (A) at a frequency.
  [[nodiscard]] static double contact_current_limit_a(double freq_hz);

  /// Compliance margin in dB (positive = compliant) on the binding
  /// constraint (field or current, whichever is tighter).
  [[nodiscard]] double compliance_margin_db(double tx_voltage_v, double freq_hz) const;

  /// Largest compliant TX swing (V) at a frequency (bisection).
  [[nodiscard]] double max_safe_tx_voltage_v(double freq_hz) const;

  [[nodiscard]] const SafetyParams& params() const { return params_; }

 private:
  SafetyParams params_;
};

}  // namespace iob::phy
