#include "phy/rf_channel.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace iob::phy {

namespace {
constexpr double kSpeedOfLight = 299792458.0;  // m/s
}

RfChannel::RfChannel(RfChannelParams params) : params_(params) {
  IOB_EXPECTS(params_.freq_hz > 0, "carrier frequency must be positive");
  IOB_EXPECTS(params_.ref_distance_m > 0, "reference distance must be positive");
  const double lambda = kSpeedOfLight / params_.freq_hz;
  // Friis at the reference distance: (4*pi*d/lambda)^2 in dB.
  ref_loss_db_ = 20.0 * std::log10(4.0 * M_PI * params_.ref_distance_m / lambda);
}

double RfChannel::free_space_path_loss_db(double distance_m) const {
  IOB_EXPECTS(distance_m > 0, "distance must be positive");
  return ref_loss_db_ +
         10.0 * params_.path_loss_exponent * std::log10(distance_m / params_.ref_distance_m);
}

double RfChannel::on_body_path_loss_db(double distance_m) const {
  IOB_EXPECTS(distance_m > 0, "distance must be positive");
  return ref_loss_db_ +
         10.0 * params_.on_body_exponent * std::log10(distance_m / params_.ref_distance_m) +
         params_.body_shadow_db;
}

double RfChannel::off_body_path_loss_db(double distance_m) const {
  IOB_EXPECTS(distance_m > 0, "distance must be positive");
  // The eavesdropper is in air; beyond ~the reference distance the wave
  // propagates freely. A fraction of the body shadowing still applies
  // (the body blocks roughly half the solid angle on average).
  return free_space_path_loss_db(distance_m) + 0.5 * params_.body_shadow_db;
}

double RfChannel::received_power_w(double tx_power_w, double path_loss_db) {
  IOB_EXPECTS(tx_power_w > 0, "transmit power must be positive");
  return tx_power_w * units::from_db(-path_loss_db);
}

}  // namespace iob::phy
