#include "phy/safety.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace iob::phy {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}

HbcSafetyModel::HbcSafetyModel(SafetyParams params) : params_(params) {
  IOB_EXPECTS(params_.electrode_capacitance_f > 0, "electrode capacitance must be positive");
  IOB_EXPECTS(params_.tissue_resistance_ohm > 0, "tissue resistance must be positive");
  IOB_EXPECTS(params_.electrode_area_m2 > 0, "electrode area must be positive");
  IOB_EXPECTS(params_.tissue_conductivity_s_per_m > 0, "conductivity must be positive");
}

double HbcSafetyModel::tissue_current_a(double tx_voltage_v, double freq_hz) const {
  IOB_EXPECTS(tx_voltage_v >= 0, "TX voltage must be non-negative");
  IOB_EXPECTS(freq_hz > 0, "frequency must be positive");
  // |Z| = sqrt(R^2 + (1/(w C))^2); the capacitance dominates at EQS
  // frequencies, which is what keeps HBC currents tiny.
  const double zc = 1.0 / (kTwoPi * freq_hz * params_.electrode_capacitance_f);
  const double z = std::hypot(params_.tissue_resistance_ohm, zc);
  // rms of a square-ish digital swing ~ V/2 amplitude -> V/(2*sqrt2) rms.
  const double v_rms = tx_voltage_v / (2.0 * std::sqrt(2.0));
  return v_rms / z;
}

double HbcSafetyModel::in_situ_field_v_per_m(double tx_voltage_v, double freq_hz) const {
  const double current_density =
      tissue_current_a(tx_voltage_v, freq_hz) / params_.electrode_area_m2;
  return current_density / params_.tissue_conductivity_s_per_m;
}

double HbcSafetyModel::icnirp_field_limit_v_per_m(double freq_hz) {
  IOB_EXPECTS(freq_hz > 0, "frequency must be positive");
  // ICNIRP 2010 general public: 1.35e-4 * f (V/m), valid 3 kHz - 10 MHz;
  // flat continuation above (conservative).
  const double f = std::clamp(freq_hz, 3e3, 10e6);
  return 1.35e-4 * f;
}

double HbcSafetyModel::contact_current_limit_a(double freq_hz) {
  IOB_EXPECTS(freq_hz > 0, "frequency must be positive");
  if (freq_hz >= 100e3) return 20e-3;
  // 0.2 mA per kHz below 100 kHz.
  return 0.2e-3 * (freq_hz / 1e3);
}

double HbcSafetyModel::compliance_margin_db(double tx_voltage_v, double freq_hz) const {
  const double field_margin =
      icnirp_field_limit_v_per_m(freq_hz) / in_situ_field_v_per_m(tx_voltage_v, freq_hz);
  const double current_margin =
      contact_current_limit_a(freq_hz) / tissue_current_a(tx_voltage_v, freq_hz);
  return units::to_db(std::min(field_margin, current_margin));
}

double HbcSafetyModel::max_safe_tx_voltage_v(double freq_hz) const {
  // Both field and current are linear in voltage, so scale from 1 V.
  const double margin_db = compliance_margin_db(1.0, freq_hz);
  return units::from_db(margin_db);  // power-ratio linearity on linear system
}

}  // namespace iob::phy
