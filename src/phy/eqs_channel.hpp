#pragma once
/// \file eqs_channel.hpp
/// Electro-Quasistatic Human Body Communication (EQS-HBC) channel model —
/// the physical layer of "Body as a Wire" / Wi-R (paper Sec. IV).
///
/// Implements the lumped circuit-theoretic model of capacitive voltage-mode
/// EQS-HBC (Maity et al., IEEE TBME 2018 [17]): the transmitter couples a
/// low/medium-frequency electric field onto the conductive body; the return
/// path closes through the parasitic capacitance between the devices' local
/// grounds and earth ground. With a *high-impedance (capacitive) termination*
/// the channel transfer function is **flat** across the EQS band above a low
/// corner frequency, and its flat-band loss is set by capacitance ratios:
///
///   |H| ~= (C_ret / (C_ret + C_body)) * (C_couple / (C_couple + C_load))
///
/// With a 50-ohm (resistive) termination the same channel becomes high-pass
/// (gain rising ~20 dB/dec), which is why classic 50-ohm measurements
/// under-estimated HBC: the model exposes both terminations so tests and
/// benches can reproduce that contrast.
///
/// Distance dependence across the body is intentionally weak (<~2 dB/m):
/// EQS-HBC behaves like a wire, unlike radiative RF whose loss grows rapidly
/// with around-body distance (see rf_channel.hpp). The EQS regime is valid
/// while the body (~2 m) is electrically small: f <= ~30 MHz (paper Sec. IV).

#include "common/units.hpp"

namespace iob::phy {

/// Lumped elements of the capacitive EQS-HBC channel.
struct EqsChannelParams {
  /// Body-to-earth-ground capacitance (dominant shunt), typical ~150 pF.
  double c_body_f = 150.0 * units::pF;
  /// TX device ground-to-earth return capacitance, wearable-size ~0.3 pF.
  double c_return_f = 0.3 * units::pF;
  /// RX electrode coupling capacitance to the body, ~1 pF.
  double c_couple_f = 1.0 * units::pF;
  /// RX input (load) capacitance for the high-Z termination, ~0.5 pF.
  double c_load_f = 0.5 * units::pF;
  /// RX input resistance of the high-Z termination, ~10 Mohm.
  double r_load_highz_ohm = 10.0 * units::Mohm;
  /// Classic measurement termination for the contrast case, 50 ohm.
  double r_load_50_ohm = 50.0;
  /// Residual on-body attenuation per meter of channel length (dB/m); the
  /// body is a good but not perfect conductor.
  double body_loss_db_per_m = 1.5;
  /// Upper edge of the electro-quasistatic regime (body electrically small).
  double eqs_max_freq_hz = 30.0 * units::MHz;

  static constexpr double wearable_to_wearable_extra_db = 20.0;
};

/// Termination style at the receiver.
enum class Termination {
  kHighImpedance,  ///< capacitive/voltage-mode: flat band, used by Wi-R
  kFiftyOhm,       ///< legacy 50-ohm: high-pass, strongly lossy at EQS
};

class EqsChannel {
 public:
  explicit EqsChannel(EqsChannelParams params = {});

  /// Voltage gain magnitude |V_rx / V_tx| at `freq_hz` across an on-body
  /// channel of `distance_m` meters (0 = co-located electrodes).
  [[nodiscard]] double voltage_gain(double freq_hz, double distance_m,
                                    Termination term = Termination::kHighImpedance) const;

  /// Same, in dB (20 log10 |H|).
  [[nodiscard]] double gain_db(double freq_hz, double distance_m,
                               Termination term = Termination::kHighImpedance) const;

  /// Flat-band (asymptotic high-frequency, zero-distance) gain for the
  /// high-Z termination — the capacitance-ratio product above.
  [[nodiscard]] double flat_band_gain() const;
  [[nodiscard]] double flat_band_gain_db() const;

  /// Low corner frequency of the high-Z response; the channel is flat above.
  [[nodiscard]] double corner_frequency_hz() const;

  /// True while the quasistatic assumption holds (f <= eqs_max_freq_hz).
  [[nodiscard]] bool in_eqs_regime(double freq_hz) const;

  [[nodiscard]] const EqsChannelParams& params() const { return params_; }

 private:
  EqsChannelParams params_;
};

}  // namespace iob::phy
