#include "phy/noise.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace iob::phy {

double thermal_noise_power_w(double bw_hz, double temp_k) {
  IOB_EXPECTS(bw_hz > 0 && temp_k > 0, "bandwidth and temperature must be positive");
  return kBoltzmann * temp_k * bw_hz;
}

double thermal_noise_dbm(double bw_hz, double temp_k) {
  return units::to_dbm(thermal_noise_power_w(bw_hz, temp_k));
}

double thermal_noise_voltage_v(double r_ohm, double bw_hz, double temp_k) {
  IOB_EXPECTS(r_ohm > 0, "resistance must be positive");
  return std::sqrt(4.0 * kBoltzmann * temp_k * r_ohm * bw_hz);
}

double Receiver::noise_power_w() const {
  return thermal_noise_power_w(bandwidth_hz, temp_k) * units::from_db(noise_figure_db);
}

double Receiver::snr(double rx_power_w) const {
  IOB_EXPECTS(rx_power_w >= 0, "received power must be non-negative");
  return rx_power_w / noise_power_w();
}

double Receiver::snr_db(double rx_power_w) const { return units::to_db(snr(rx_power_w)); }

}  // namespace iob::phy
