#include "phy/modulation.hpp"

#include <cmath>

#include "common/expect.hpp"
#include "common/units.hpp"

namespace iob::phy {

double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double bit_error_rate(Modulation mod, double snr_linear) {
  IOB_EXPECTS(snr_linear >= 0.0, "SNR must be non-negative");
  switch (mod) {
    case Modulation::kOok:
      // Coherent OOK with threshold detection: Q(sqrt(SNR/2)).
      return q_function(std::sqrt(snr_linear / 2.0));
    case Modulation::kBpsk:
      // Coherent BPSK: Q(sqrt(2*SNR)).
      return q_function(std::sqrt(2.0 * snr_linear));
    case Modulation::kGfsk:
      // Non-coherent binary FSK: 0.5 * exp(-SNR/2); good GFSK approximation.
      return 0.5 * std::exp(-snr_linear / 2.0);
  }
  return 0.5;  // unreachable
}

double required_snr(Modulation mod, double target_ber) {
  IOB_EXPECTS(target_ber > 0.0 && target_ber < 0.5, "target BER must be in (0, 0.5)");
  double lo = 0.0, hi = 1.0;
  while (bit_error_rate(mod, hi) > target_ber) {
    hi *= 2.0;
    IOB_ENSURES(hi < 1e12, "required SNR out of plausible range");
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (bit_error_rate(mod, mid) > target_ber) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double packet_success_probability(double ber, unsigned n_bits) {
  IOB_EXPECTS(ber >= 0.0 && ber <= 1.0, "BER must be in [0, 1]");
  // log-domain to stay stable for long packets.
  if (ber >= 1.0) return 0.0;
  return std::exp(static_cast<double>(n_bits) * std::log1p(-ber));
}

double effective_snir(double snr_linear, double sir_linear, double rejection_db) {
  IOB_EXPECTS(snr_linear > 0.0 && sir_linear > 0.0, "SNR and SIR must be positive");
  IOB_EXPECTS(rejection_db >= 0.0, "interference rejection cannot be negative");
  const double sir_eff = sir_linear * units::from_db(rejection_db);
  return 1.0 / (1.0 / snr_linear + 1.0 / sir_eff);
}

double effective_snir_db(double snr_db, double sir_db, double rejection_db) {
  return units::to_db(
      effective_snir(units::from_db(snr_db), units::from_db(sir_db), rejection_db));
}

const char* to_string(Modulation mod) {
  switch (mod) {
    case Modulation::kOok: return "OOK";
    case Modulation::kBpsk: return "BPSK";
    case Modulation::kGfsk: return "GFSK";
  }
  return "?";
}

}  // namespace iob::phy
