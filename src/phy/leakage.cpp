#include "phy/leakage.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace iob::phy {

namespace {

/// Generic monotone-SNR interception range solver: largest d in
/// [min_d, max_d] with snr_db(d) >= required; 0 if none, max_d if all.
template <typename SnrFn>
double solve_range(SnrFn&& snr_db, double required_db, double min_d, double max_d) {
  if (snr_db(min_d) < required_db) return 0.0;
  if (snr_db(max_d) >= required_db) return max_d;
  double lo = min_d, hi = max_d;
  for (int i = 0; i < 100; ++i) {
    const double mid = std::sqrt(lo * hi);  // geometric bisection (decades)
    if (snr_db(mid) >= required_db) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

// ---- EQS -------------------------------------------------------------------

EqsLeakage::EqsLeakage(EqsLeakageParams params)
    : params_(params), channel_(params.channel) {
  IOB_EXPECTS(params_.tx_voltage_v > 0, "TX voltage must be positive");
  IOB_EXPECTS(params_.dipole_scale_m > 0, "dipole scale must be positive");
}

double EqsLeakage::on_body_signal_v() const {
  // Intended receiver: body-contact electrode at the flat band, average
  // 1 m on-body channel length.
  return params_.tx_voltage_v * channel_.voltage_gain(1.0 * units::MHz, 1.0);
}

double EqsLeakage::attacker_signal_v(double distance_m) const {
  IOB_EXPECTS(distance_m >= 0, "distance must be non-negative");
  // The field just off the body surface equals the on-body signal level;
  // beyond it the quasistatic fringe collapses as (r0/(r0+d))^3 and the
  // attacker's air-coupled pickup pays the coupling penalty.
  const double r0 = params_.dipole_scale_m;
  const double fringe = std::pow(r0 / (r0 + distance_m), 3.0);
  const double coupling = units::from_db_voltage(-params_.air_coupling_penalty_db);
  return on_body_signal_v() * fringe * coupling;
}

double EqsLeakage::attacker_snr_db(double distance_m) const {
  const double v_sig = attacker_signal_v(distance_m);
  const double v_noise = thermal_noise_voltage_v(params_.attacker_r_ohm, params_.attacker_bw_hz) *
                         units::from_db_voltage(params_.attacker_noise_figure_db / 2.0);
  return units::to_db_voltage(v_sig / v_noise);
}

double EqsLeakage::interception_range_m(Modulation mod, double target_ber,
                                        double max_distance_m) const {
  const double required_db = units::to_db(required_snr(mod, target_ber));
  return solve_range([this](double d) { return attacker_snr_db(d); }, required_db, 1e-3,
                     max_distance_m);
}

// ---- RF --------------------------------------------------------------------

RfLeakage::RfLeakage(RfLeakageParams params) : params_(params), channel_(params.channel) {}

double RfLeakage::attacker_rx_power_w(double distance_m) const {
  return RfChannel::received_power_w(params_.tx_power_w,
                                     channel_.off_body_path_loss_db(distance_m));
}

double RfLeakage::attacker_snr_db(double distance_m) const {
  const Receiver rx{params_.attacker_bw_hz, params_.attacker_noise_figure_db, 290.0};
  return rx.snr_db(attacker_rx_power_w(distance_m));
}

double RfLeakage::interception_range_m(Modulation mod, double target_ber,
                                       double max_distance_m) const {
  const double required_db = units::to_db(required_snr(mod, target_ber));
  return solve_range([this](double d) { return attacker_snr_db(d); }, required_db, 1e-2,
                     max_distance_m);
}

// ---- NFMI ------------------------------------------------------------------

NfmiLeakage::NfmiLeakage(NfmiLeakageParams params) : params_(params), channel_(params.channel) {}

double NfmiLeakage::attacker_rx_power_w(double distance_m) const {
  return params_.tx_power_w * units::from_db(channel_.gain_db(distance_m));
}

double NfmiLeakage::attacker_snr_db(double distance_m) const {
  const Receiver rx{params_.attacker_bw_hz, params_.attacker_noise_figure_db, 290.0};
  return rx.snr_db(attacker_rx_power_w(distance_m));
}

double NfmiLeakage::interception_range_m(Modulation mod, double target_ber,
                                         double max_distance_m) const {
  const double required_db = units::to_db(required_snr(mod, target_ber));
  return solve_range([this](double d) { return attacker_snr_db(d); }, required_db, 1e-2,
                     max_distance_m);
}

}  // namespace iob::phy
