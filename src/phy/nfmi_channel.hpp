#pragma once
/// \file nfmi_channel.hpp
/// Near-Field Magnetic Induction (NFMI) channel — the third communication
/// modality the paper names alongside RF and EQS (Sec. I, IV-B): the body is
/// transparent to magnetic fields, so NFMI works through tissue, but its
/// coupled-coil link budget collapses as 1/d^6 (power) inside the near
/// field. We model the near-field region (d < lambda/2pi) with the 60
/// dB/decade rolloff and hand over to radiative 20 dB/decade beyond it.

#include "common/units.hpp"

namespace iob::phy {

struct NfmiChannelParams {
  double freq_hz = 10.6 * units::MHz;  ///< typical NFMI carrier
  /// Coupled-coil link gain at the reference distance (coil-geometry
  /// dependent); -40 dB at 10 cm is representative of earbud-class coils.
  double ref_distance_m = 0.10;
  double ref_gain_db = -40.0;
};

class NfmiChannel {
 public:
  explicit NfmiChannel(NfmiChannelParams params = {});

  /// Power gain (dB, negative = loss) at `distance_m`.
  [[nodiscard]] double gain_db(double distance_m) const;

  /// Boundary between near-field (1/d^6) and radiative (1/d^2) behaviour.
  [[nodiscard]] double near_field_boundary_m() const;

  [[nodiscard]] const NfmiChannelParams& params() const { return params_; }

 private:
  NfmiChannelParams params_;
};

}  // namespace iob::phy
