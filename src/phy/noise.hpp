#pragma once
/// \file noise.hpp
/// Receiver noise modeling: thermal noise floor, noise figure, SNR.

#include "common/units.hpp"

namespace iob::phy {

/// Boltzmann constant (J/K).
inline constexpr double kBoltzmann = 1.380649e-23;

/// Thermal noise power (W) in bandwidth `bw_hz` at temperature `temp_k`.
double thermal_noise_power_w(double bw_hz, double temp_k = 290.0);

/// Thermal noise floor in dBm for a bandwidth (the familiar -174 dBm/Hz).
double thermal_noise_dbm(double bw_hz, double temp_k = 290.0);

/// RMS thermal noise voltage (V) across resistance `r_ohm` in `bw_hz`
/// (v_n = sqrt(4 k T R B)) — used for voltage-mode EQS receivers.
double thermal_noise_voltage_v(double r_ohm, double bw_hz, double temp_k = 290.0);

/// Receiver front-end description for SNR computations.
struct Receiver {
  double bandwidth_hz = 1.0 * units::MHz;
  double noise_figure_db = 10.0;
  double temp_k = 290.0;

  /// Effective input-referred noise power (W).
  [[nodiscard]] double noise_power_w() const;

  /// SNR (linear) for a received signal power (W).
  [[nodiscard]] double snr(double rx_power_w) const;

  /// SNR (dB).
  [[nodiscard]] double snr_db(double rx_power_w) const;
};

}  // namespace iob::phy
