#pragma once
/// \file modulation.hpp
/// Modulation schemes and their BER-vs-SNR behaviour. EQS-HBC links use
/// simple broadband signalling (OOK/NRZ voltage-mode, as in the BodyWire
/// transceiver [20]); BLE uses GFSK. Packet-level loss in `comm/` derives
/// from these curves.

namespace iob::phy {

enum class Modulation {
  kOok,    ///< on-off keying / NRZ voltage mode (Wi-R class)
  kBpsk,   ///< coherent binary PSK (best-case reference)
  kGfsk,   ///< Gaussian FSK, non-coherent (BLE class)
};

/// Gaussian tail function Q(x) = P(N(0,1) > x).
double q_function(double x);

/// Bit error rate at the given *per-bit* SNR (linear, Eb/N0-style) for the
/// modulation. snr_linear >= 0.
double bit_error_rate(Modulation mod, double snr_linear);

/// Smallest per-bit SNR (linear) achieving `target_ber` (0 < target < 0.5),
/// found by bisection on the monotone BER curve.
double required_snr(Modulation mod, double target_ber);

/// Probability that an `n_bits` packet arrives with zero bit errors under
/// independent bit errors.
double packet_success_probability(double ber, unsigned n_bits);

/// Effective signal-to-(noise+interference) ratio (linear) when a noise SNR
/// combines with an interference SIR: 1/SNIR = 1/SNR + 1/SIR. The BodyWire
/// transceiver [20] demonstrates EQS-HBC at -30 dB SIR via time-domain
/// interference rejection; `rejection_db` models such a canceller by
/// boosting the effective SIR before combining.
double effective_snir(double snr_linear, double sir_linear, double rejection_db = 0.0);

/// Same in dB domain.
double effective_snir_db(double snr_db, double sir_db, double rejection_db = 0.0);

const char* to_string(Modulation mod);

}  // namespace iob::phy
