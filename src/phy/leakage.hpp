#pragma once
/// \file leakage.hpp
/// Physical-security model: how far away can an eavesdropper intercept each
/// communication modality? (Paper Sec. I & IV: EQS fields are "contained
/// around a personal bubble outside the human body", unlike RF which
/// radiates a room-scale bubble; quantified in Das et al., Sci. Reports
/// 2019 [15].)
///
/// EQS: outside the body the signal decays like a quasistatic (electric
/// dipole) field, amplitude ~ 1/r^3, and an air-coupled attacker antenna
/// pays a large coupling penalty relative to a body-contact electrode.
/// RF: far-field 1/r amplitude decay; a -95 dBm-class BLE sniffer decodes
/// from many meters. NFMI sits in between (1/r^3 magnetic near field but no
/// conductive-containment penalty).

#include "common/units.hpp"
#include "phy/eqs_channel.hpp"
#include "phy/modulation.hpp"
#include "phy/nfmi_channel.hpp"
#include "phy/noise.hpp"
#include "phy/rf_channel.hpp"

namespace iob::phy {

struct EqsLeakageParams {
  /// TX swing on the body (V).
  double tx_voltage_v = 1.0;
  /// On-body (intended receiver) channel.
  EqsChannelParams channel{};
  /// Effective dipole scale of the body-field fringe (m): field at distance
  /// d off the body ~ surface field * (r0/(r0+d))^3.
  double dipole_scale_m = 0.15;
  /// Air-coupling penalty for a non-contact attacker electrode vs a
  /// body-contact electrode (dB, amplitude).
  double air_coupling_penalty_db = 20.0;
  /// Attacker front-end: equivalent input noise resistance of a good
  /// low-noise high-Z probe amplifier and its capture bandwidth.
  double attacker_r_ohm = 10.0 * units::kohm;
  double attacker_bw_hz = 1.0 * units::MHz;
  double attacker_noise_figure_db = 6.0;
};

class EqsLeakage {
 public:
  explicit EqsLeakage(EqsLeakageParams params = {});

  /// Signal amplitude (V) available to a body-contact receiver (the intended
  /// on-body device) at the EQS flat band.
  [[nodiscard]] double on_body_signal_v() const;

  /// Signal amplitude (V) available to an air-coupled attacker `distance_m`
  /// away from the body surface.
  [[nodiscard]] double attacker_signal_v(double distance_m) const;

  /// Attacker SNR (dB) at distance.
  [[nodiscard]] double attacker_snr_db(double distance_m) const;

  /// Largest distance (m) at which the attacker still achieves `target_ber`
  /// with the given modulation; 0 if even contact-range fails. Bisection on
  /// the monotone SNR-vs-distance curve, searched up to `max_distance_m`.
  [[nodiscard]] double interception_range_m(Modulation mod = Modulation::kOok,
                                            double target_ber = 1e-3,
                                            double max_distance_m = 100.0) const;

  [[nodiscard]] const EqsLeakageParams& params() const { return params_; }

 private:
  EqsLeakageParams params_;
  EqsChannel channel_;
};

struct RfLeakageParams {
  double tx_power_w = 1.0 * units::mW;  ///< 0 dBm BLE-class TX
  RfChannelParams channel{};
  double attacker_bw_hz = 1.0 * units::MHz;
  double attacker_noise_figure_db = 6.0;
};

class RfLeakage {
 public:
  explicit RfLeakage(RfLeakageParams params = {});

  [[nodiscard]] double attacker_rx_power_w(double distance_m) const;
  [[nodiscard]] double attacker_snr_db(double distance_m) const;
  [[nodiscard]] double interception_range_m(Modulation mod = Modulation::kGfsk,
                                            double target_ber = 1e-3,
                                            double max_distance_m = 1000.0) const;

  [[nodiscard]] const RfLeakageParams& params() const { return params_; }

 private:
  RfLeakageParams params_;
  RfChannel channel_;
};

struct NfmiLeakageParams {
  double tx_power_w = 1.0 * units::mW;
  NfmiChannelParams channel{};
  double attacker_bw_hz = 1.0 * units::MHz;
  double attacker_noise_figure_db = 6.0;
};

class NfmiLeakage {
 public:
  explicit NfmiLeakage(NfmiLeakageParams params = {});

  [[nodiscard]] double attacker_rx_power_w(double distance_m) const;
  [[nodiscard]] double attacker_snr_db(double distance_m) const;
  [[nodiscard]] double interception_range_m(Modulation mod = Modulation::kGfsk,
                                            double target_ber = 1e-3,
                                            double max_distance_m = 1000.0) const;

 private:
  NfmiLeakageParams params_;
  NfmiChannel channel_;
};

}  // namespace iob::phy
