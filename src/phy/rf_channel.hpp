#pragma once
/// \file rf_channel.hpp
/// Radiative RF channel model (the BLE baseline the paper argues against,
/// Sec. III-B). Free-space Friis path loss plus an around-body excess-loss
/// term: at 2.4 GHz the conductive body absorbs and shadows the wave, so
/// on-body links see both a larger path-loss exponent and a body-shadowing
/// penalty. Crucially for the paper's argument, the radiated bubble is
/// *room-sized*: a -95 dBm-class receiver meters away still decodes the
/// signal (see leakage.hpp), while the intended receiver is only 1-2 m away.

#include "common/units.hpp"

namespace iob::phy {

struct RfChannelParams {
  double freq_hz = 2.4 * units::GHz;   ///< BLE band
  double ref_distance_m = 1.0;          ///< Friis reference distance
  double path_loss_exponent = 2.0;      ///< free-space/off-body exponent
  double on_body_exponent = 3.3;        ///< around-body creeping-wave exponent
  double body_shadow_db = 15.0;         ///< mean trunk shadowing for on-body links
  double shadow_sigma_db = 4.0;         ///< log-normal shadowing spread
};

class RfChannel {
 public:
  explicit RfChannel(RfChannelParams params = {});

  /// Free-space path loss (dB) at `distance_m` (Friis).
  [[nodiscard]] double free_space_path_loss_db(double distance_m) const;

  /// Mean on-body path loss (dB) between two wearables `distance_m` apart
  /// around the body (includes the around-body exponent and shadowing mean).
  [[nodiscard]] double on_body_path_loss_db(double distance_m) const;

  /// Off-body path loss (dB) from a wearable to a receiver `distance_m`
  /// away in air (the eavesdropper geometry): free space beyond the body.
  [[nodiscard]] double off_body_path_loss_db(double distance_m) const;

  /// Received power (W) for a transmit power and a path loss in dB.
  [[nodiscard]] static double received_power_w(double tx_power_w, double path_loss_db);

  [[nodiscard]] const RfChannelParams& params() const { return params_; }

 private:
  RfChannelParams params_;
  double ref_loss_db_;  ///< Friis loss at ref_distance_m
};

}  // namespace iob::phy
