#include "phy/eqs_channel.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace iob::phy {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}

EqsChannel::EqsChannel(EqsChannelParams params) : params_(params) {
  IOB_EXPECTS(params_.c_body_f > 0 && params_.c_return_f > 0 && params_.c_couple_f > 0 &&
                  params_.c_load_f > 0,
              "all channel capacitances must be positive");
  IOB_EXPECTS(params_.r_load_highz_ohm > 0 && params_.r_load_50_ohm > 0,
              "termination resistances must be positive");
}

double EqsChannel::flat_band_gain() const {
  const auto& p = params_;
  const double forward = p.c_couple_f / (p.c_couple_f + p.c_load_f);
  const double ret = p.c_return_f / (p.c_return_f + p.c_body_f);
  return forward * ret;
}

double EqsChannel::flat_band_gain_db() const { return units::to_db_voltage(flat_band_gain()); }

double EqsChannel::corner_frequency_hz() const {
  const auto& p = params_;
  // RC corner of the receiver front-end: R_load against the series/shunt
  // capacitance it sees (coupling + load in parallel from the source side).
  const double c_eff = p.c_couple_f + p.c_load_f;
  return 1.0 / (kTwoPi * p.r_load_highz_ohm * c_eff);
}

double EqsChannel::voltage_gain(double freq_hz, double distance_m, Termination term) const {
  IOB_EXPECTS(freq_hz > 0.0, "frequency must be positive");
  IOB_EXPECTS(distance_m >= 0.0, "distance must be non-negative");
  const auto& p = params_;

  // Residual conductive loss along the body path.
  const double body_loss = units::from_db_voltage(-p.body_loss_db_per_m * distance_m);

  if (term == Termination::kHighImpedance) {
    // Single-pole high-pass with corner at corner_frequency_hz(); the corner
    // sits at ~10s of kHz for a 10 Mohm termination, so the band of interest
    // (100 kHz - 30 MHz) is flat, matching measured EQS-HBC responses.
    const double fc = corner_frequency_hz();
    const double ratio = freq_hz / fc;
    const double hp = ratio / std::sqrt(1.0 + ratio * ratio);
    return flat_band_gain() * hp * body_loss;
  }

  // 50-ohm termination: the load impedance (50 ohm) forms a divider against
  // the coupling capacitance's impedance 1/(w*C). Gain rises ~20 dB/dec and
  // only approaches the capacitive flat-band far above the EQS regime,
  // reproducing the classic pessimistic 50-ohm measurements.
  const double w = kTwoPi * freq_hz;
  const double zc = 1.0 / (w * p.c_couple_f);
  const double divider = p.r_load_50_ohm / std::hypot(p.r_load_50_ohm, zc);
  const double ret = p.c_return_f / (p.c_return_f + p.c_body_f);
  return ret * divider * body_loss;
}

double EqsChannel::gain_db(double freq_hz, double distance_m, Termination term) const {
  return units::to_db_voltage(voltage_gain(freq_hz, distance_m, term));
}

bool EqsChannel::in_eqs_regime(double freq_hz) const { return freq_hz <= params_.eqs_max_freq_hz; }

}  // namespace iob::phy
