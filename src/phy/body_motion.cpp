#include "phy/body_motion.hpp"

#include "common/expect.hpp"

namespace iob::phy {

const char* to_string(MotionState state) {
  switch (state) {
    case MotionState::kStill: return "still";
    case MotionState::kWalk: return "walk";
    case MotionState::kRun: return "run";
    case MotionState::kOcclusion: return "occlusion";
  }
  return "?";
}

BodyMotionParams::BodyMotionParams() {
  auto& st = states[static_cast<std::size_t>(MotionState::kStill)];
  st.mean_sojourn_s = 5.0;
  st.gain_delta_db = 0.0;
  st.next = {0.0, 0.85, 0.05, 0.10};
  auto& wk = states[static_cast<std::size_t>(MotionState::kWalk)];
  wk.mean_sojourn_s = 3.0;
  wk.gain_delta_db = -3.0;
  wk.next = {0.55, 0.0, 0.30, 0.15};
  auto& rn = states[static_cast<std::size_t>(MotionState::kRun)];
  rn.mean_sojourn_s = 2.0;
  rn.gain_delta_db = -9.0;
  rn.next = {0.05, 0.60, 0.0, 0.35};
  auto& oc = states[static_cast<std::size_t>(MotionState::kOcclusion)];
  oc.mean_sojourn_s = 0.4;
  oc.gain_delta_db = -18.0;
  oc.next = {0.40, 0.35, 0.25, 0.0};
}

BodyMotionParams walking_profile() {
  BodyMotionParams p;
  p.initial = MotionState::kWalk;
  auto& st = p.states[static_cast<std::size_t>(MotionState::kStill)];
  st.mean_sojourn_s = 6.0;
  st.next = {0.0, 0.90, 0.0, 0.10};
  auto& wk = p.states[static_cast<std::size_t>(MotionState::kWalk)];
  wk.mean_sojourn_s = 4.0;
  wk.next = {0.70, 0.0, 0.15, 0.15};
  auto& rn = p.states[static_cast<std::size_t>(MotionState::kRun)];
  rn.mean_sojourn_s = 1.5;
  auto& oc = p.states[static_cast<std::size_t>(MotionState::kOcclusion)];
  oc.mean_sojourn_s = 0.3;
  return p;
}

BodyMotionParams running_profile() {
  BodyMotionParams p;
  p.initial = MotionState::kRun;
  auto& st = p.states[static_cast<std::size_t>(MotionState::kStill)];
  st.mean_sojourn_s = 2.0;
  st.next = {0.0, 0.50, 0.40, 0.10};
  auto& wk = p.states[static_cast<std::size_t>(MotionState::kWalk)];
  wk.mean_sojourn_s = 1.5;
  wk.next = {0.10, 0.0, 0.60, 0.30};
  auto& rn = p.states[static_cast<std::size_t>(MotionState::kRun)];
  rn.mean_sojourn_s = 4.0;
  // Arm-swing occlusions dominate the run state's exits.
  rn.next = {0.02, 0.28, 0.0, 0.70};
  auto& oc = p.states[static_cast<std::size_t>(MotionState::kOcclusion)];
  oc.mean_sojourn_s = 0.35;
  oc.next = {0.05, 0.15, 0.80, 0.0};
  return p;
}

BodyMotionProcess::BodyMotionProcess(BodyMotionParams params, sim::Rng rng)
    : params_(params), rng_(rng), state_(params.initial) {
  for (const auto& s : params_.states) {
    IOB_EXPECTS(s.mean_sojourn_s > 0.0, "motion sojourn means must be positive");
    double total = 0.0;
    for (double w : s.next) {
      IOB_EXPECTS(w >= 0.0, "motion transition weights cannot be negative");
      total += w;
    }
    IOB_EXPECTS(total > 0.0, "every motion state needs at least one successor");
  }
  sojourn_s_ = draw_sojourn(state_);
  state_end_ = sojourn_s_;
}

double BodyMotionProcess::draw_sojourn(MotionState s) {
  const auto& p = params_.states[static_cast<std::size_t>(s)];
  return params_.deterministic_sojourns ? p.mean_sojourn_s
                                        : rng_.exponential(p.mean_sojourn_s);
}

MotionState BodyMotionProcess::draw_next(MotionState s) {
  const auto& row = params_.states[static_cast<std::size_t>(s)].next;
  double total = 0.0;
  for (std::size_t i = 0; i < kMotionStateCount; ++i) {
    if (i != static_cast<std::size_t>(s)) total += row[i];
  }
  // One draw per transition even when the row is one-hot, so deterministic
  // tests and stochastic runs consume the stream identically.
  double u = rng_.uniform() * total;
  for (std::size_t i = 0; i < kMotionStateCount; ++i) {
    if (i == static_cast<std::size_t>(s)) continue;
    u -= row[i];
    if (u < 0.0) return static_cast<MotionState>(i);
  }
  // Rounding fell off the end: last positive-weight successor.
  for (std::size_t i = kMotionStateCount; i-- > 0;) {
    if (i != static_cast<std::size_t>(s) && row[i] > 0.0) {
      return static_cast<MotionState>(i);
    }
  }
  return s;  // unreachable (ctor requires a successor)
}

void BodyMotionProcess::advance_to(double t) {
  while (state_end_ < t) {
    // Close the expiring sojourn before transitioning.
    occupancy_[static_cast<std::size_t>(state_)] += sojourn_s_;
    state_ = draw_next(state_);
    ++transitions_;
    sojourn_s_ = draw_sojourn(state_);
    state_end_ += sojourn_s_;
  }
}

MotionState BodyMotionProcess::state_at(double t) {
  advance_to(t);
  return state_;
}

double BodyMotionProcess::gain_delta_db(double t) {
  advance_to(t);
  return params_.states[static_cast<std::size_t>(state_)].gain_delta_db;
}

}  // namespace iob::phy
