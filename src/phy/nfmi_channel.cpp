#include "phy/nfmi_channel.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace iob::phy {

namespace {
constexpr double kSpeedOfLight = 299792458.0;  // m/s
}

NfmiChannel::NfmiChannel(NfmiChannelParams params) : params_(params) {
  IOB_EXPECTS(params_.freq_hz > 0, "carrier frequency must be positive");
  IOB_EXPECTS(params_.ref_distance_m > 0, "reference distance must be positive");
}

double NfmiChannel::near_field_boundary_m() const {
  return kSpeedOfLight / params_.freq_hz / (2.0 * M_PI);
}

double NfmiChannel::gain_db(double distance_m) const {
  IOB_EXPECTS(distance_m > 0, "distance must be positive");
  const double boundary = near_field_boundary_m();
  const double d0 = params_.ref_distance_m;
  if (distance_m <= boundary) {
    // Magnetic dipole near field: H ~ 1/d^3, power ~ 1/d^6 -> 60 dB/decade.
    return params_.ref_gain_db - 60.0 * std::log10(distance_m / d0);
  }
  // Continue from the boundary with radiative 20 dB/decade.
  const double gain_at_boundary = params_.ref_gain_db - 60.0 * std::log10(boundary / d0);
  return gain_at_boundary - 20.0 * std::log10(distance_m / boundary);
}

}  // namespace iob::phy
