#pragma once
/// \file interference.hpp
/// Co-channel interference field: maps an SIR stress level — how many
/// aggressor radios share the band and how often each transmits — to the
/// frame-error-rate inflation a victim link sees (docs/robustness.md).
///
/// The model is a duty-cycled collision mixture, not a constant FER
/// multiplier. A constant multiplier cannot stress a clean link (Wi-R at
/// its default budget has FER ~ 0, and k x 0 = 0); what interference really
/// does is displace the operating point on the modulation's BER waterfall.
/// So the field computes the *effective SNIR* of the collided state
/// (`phy::effective_snir`: noise and leaked interferer power add) and
/// re-derives the packet error rate from `bit_error_rate` +
/// `packet_success_probability` at that SNIR. The observed loss is then the
/// mixture of the quiet and collided states weighted by the probability
/// that at least one aggressor is on the air.

#include <cstdint>

#include "phy/modulation.hpp"

namespace iob::phy {

/// One point on an interference-stress axis. `aggressors == 0` (or
/// `duty_cycle == 0`) is the clean channel: no mixture term, no FER change.
struct SirLevel {
  /// Co-located interfering radios sharing the victim's band.
  unsigned aggressors = 0;
  /// Fraction of time each aggressor transmits (independent on/off).
  double duty_cycle = 0.0;
  /// Victim-signal-to-single-aggressor power ratio at the victim receiver,
  /// in dB, *before* the receiver's interference rejection is applied.
  double aggressor_sir_db = 6.0;
  /// Receiver interference rejection (filtering/capture), dB. EQS/Wi-R
  /// front-ends reject far more than generic RF (see `WiRLinkParams`).
  double rejection_db = 20.0;
};

class InterferenceField {
 public:
  explicit InterferenceField(SirLevel level = {});

  [[nodiscard]] const SirLevel& level() const { return level_; }

  /// True when the level can perturb the channel at all.
  [[nodiscard]] bool active() const {
    return level_.aggressors > 0 && level_.duty_cycle > 0.0;
  }

  /// P(at least one aggressor on the air) = 1 - (1 - duty)^aggressors.
  [[nodiscard]] double active_probability() const { return p_active_; }

  /// SIR of the collided state, dB: the single-aggressor SIR degraded by
  /// the mean number of simultaneously-active aggressors (power adds),
  /// conditioned on the state being collided at all.
  [[nodiscard]] double aggregate_sir_db() const { return sir_agg_db_; }

  /// SNIR (dB) the demodulator sees during a collision, given the link's
  /// clean SNR (dB). Delegates to `phy::effective_snir`.
  [[nodiscard]] double effective_snir_db(double snr_db) const;

  /// Frame error rate under this field for a frame of `n_bits` on a link
  /// with modulation `mod` and clean SNR `snr_db`: the duty-weighted
  /// mixture of the quiet-state FER and the collided-state FER.
  [[nodiscard]] double frame_error_rate(Modulation mod, double snr_db,
                                        unsigned n_bits) const;

  /// The collided/quiet FER ratio — the "FER multiplier" view of the same
  /// model, for reporting. Quiet FERs below `floor` are clamped before the
  /// ratio so a near-zero clean FER yields a large finite multiplier
  /// instead of inf.
  [[nodiscard]] double fer_multiplier(Modulation mod, double snr_db, unsigned n_bits,
                                      double floor = 1e-12) const;

 private:
  SirLevel level_{};
  double p_active_ = 0.0;
  double sir_agg_db_ = 0.0;
};

}  // namespace iob::phy
