#include "phy/interference.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"
#include "common/units.hpp"

namespace iob::phy {

InterferenceField::InterferenceField(SirLevel level) : level_(level) {
  IOB_EXPECTS(level_.duty_cycle >= 0.0 && level_.duty_cycle <= 1.0,
              "aggressor duty cycle must be in [0, 1]");
  IOB_EXPECTS(level_.rejection_db >= 0.0, "interference rejection cannot be negative");
  if (!active()) return;
  const double n = static_cast<double>(level_.aggressors);
  const double d = level_.duty_cycle;
  // Independent on/off aggressors: collision whenever any is on.
  p_active_ = 1.0 - std::pow(1.0 - d, n);
  // Mean simultaneously-active count, conditioned on >= 1 active. Power
  // adds across simultaneous aggressors, so the conditional SIR degrades by
  // 10*log10 of that mean.
  const double mean_on_given_any = n * d / p_active_;
  sir_agg_db_ = level_.aggressor_sir_db - units::to_db(mean_on_given_any);
}

double InterferenceField::effective_snir_db(double snr_db) const {
  if (!active()) return snr_db;
  return phy::effective_snir_db(snr_db, sir_agg_db_, level_.rejection_db);
}

double InterferenceField::frame_error_rate(Modulation mod, double snr_db,
                                           unsigned n_bits) const {
  const double snr_lin = units::from_db(snr_db);
  const double fer_quiet =
      1.0 - packet_success_probability(bit_error_rate(mod, snr_lin), n_bits);
  if (!active()) return fer_quiet;
  const double snir_lin = units::from_db(effective_snir_db(snr_db));
  const double fer_hit =
      1.0 - packet_success_probability(bit_error_rate(mod, snir_lin), n_bits);
  return (1.0 - p_active_) * fer_quiet + p_active_ * fer_hit;
}

double InterferenceField::fer_multiplier(Modulation mod, double snr_db, unsigned n_bits,
                                         double floor) const {
  IOB_EXPECTS(floor > 0.0, "FER floor must be positive");
  const double snr_lin = units::from_db(snr_db);
  const double fer_quiet =
      1.0 - packet_success_probability(bit_error_rate(mod, snr_lin), n_bits);
  return frame_error_rate(mod, snr_db, n_bits) / std::max(fer_quiet, floor);
}

}  // namespace iob::phy
