#pragma once
/// \file body_motion.hpp
/// Body-motion channel process: a small continuous-time Markov chain over
/// posture/gait states (still / walk / run / occlusion) whose current state
/// adds a path-gain delta (dB) to the link budget — the wearer moving is
/// what turns a constant FER into a time-varying trace (docs/robustness.md).
///
/// EQS/NFMI body channels are exquisitely posture-dependent: limb swing
/// modulates the return path, and an arm crossing the torso can occlude a
/// wrist-to-chest link by tens of dB for a fraction of a second. The chain
/// models exactly that granularity — seconds-scale sojourns in gait states,
/// sub-second occlusion dips — and advances lazily like
/// `comm::GilbertElliott`: state is evolved only when queried, queries must
/// be non-decreasing in time, and all draws come from the process's own
/// forked `sim::Rng` stream so installing motion never perturbs MAC or
/// traffic randomness.

#include <array>
#include <cstddef>
#include <cstdint>

#include "sim/rng.hpp"

namespace iob::phy {

enum class MotionState : std::uint8_t { kStill = 0, kWalk, kRun, kOcclusion };
inline constexpr std::size_t kMotionStateCount = 4;

[[nodiscard]] const char* to_string(MotionState state);

/// Per-state dynamics: how long the wearer dwells there, what it does to
/// the link, and where they go next.
struct MotionStateParams {
  double mean_sojourn_s = 1.0;
  /// Path-gain delta while in this state, dB (<= 0 degrades the link).
  double gain_delta_db = 0.0;
  /// Transition distribution over successor states (self-weight ignored;
  /// weights are normalized, so rows need not sum to 1).
  std::array<double, kMotionStateCount> next{};
};

struct BodyMotionParams {
  std::array<MotionStateParams, kMotionStateCount> states{};
  MotionState initial = MotionState::kStill;
  /// Tests only: every sojourn equals its state's mean exactly instead of
  /// drawing from the exponential, making traces hand-computable.
  bool deterministic_sojourns = false;

  /// Canonical defaults: a mixed still/walk day with rare occlusions.
  BodyMotionParams();
};

/// A sedentary-leaning profile (office wearer): long still dwells,
/// occasional walks, occlusion rare and brief.
[[nodiscard]] BodyMotionParams walking_profile();

/// A running wearer: short, vigorous gait sojourns and frequent arm-swing
/// occlusions — the hostile end of the motion axis.
[[nodiscard]] BodyMotionParams running_profile();

class BodyMotionProcess {
 public:
  BodyMotionProcess(BodyMotionParams params, sim::Rng rng);

  /// State at simulation time `t`. Times must be non-decreasing across
  /// calls (lazy advance, like `comm::GilbertElliott`).
  [[nodiscard]] MotionState state_at(double t);

  /// Path-gain delta (dB) the link sees at time `t`. Non-decreasing `t`.
  [[nodiscard]] double gain_delta_db(double t);

  /// Completed state transitions so far.
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }

  /// Seconds accumulated per state over *completed* sojourns (the open
  /// sojourn is excluded until it ends — hand-computed tests account for
  /// this).
  [[nodiscard]] const std::array<double, kMotionStateCount>& occupancy_s() const {
    return occupancy_;
  }

 private:
  void advance_to(double t);
  [[nodiscard]] double draw_sojourn(MotionState s);
  [[nodiscard]] MotionState draw_next(MotionState s);

  BodyMotionParams params_{};
  sim::Rng rng_;
  MotionState state_;
  double sojourn_s_ = 0.0;  ///< length of the current (open) sojourn
  double state_end_ = 0.0;  ///< sim time the current sojourn expires
  std::uint64_t transitions_ = 0;
  std::array<double, kMotionStateCount> occupancy_{};
};

}  // namespace iob::phy
