#pragma once
/// \file tensor.hpp
/// Minimal dense tensor for the from-scratch NN inference engine.
///
/// Row-major float storage; rank 1-4. Image tensors are HWC (height, width,
/// channels); 1-D signal tensors are LC (length, channels). The engine
/// exists to execute the paper's wearable-AI workloads (keyword spotting,
/// ECG classification, visual wake words) with *true* per-layer MAC counts
/// and activation sizes — the quantities the partitioning optimizer and the
/// offload-energy story depend on.

#include <cstdint>
#include <string>
#include <vector>

namespace iob::nn {

using Shape = std::vector<int>;

/// Total element count of a shape (product of dims).
std::int64_t shape_elems(const Shape& shape);

/// Human-readable "HxWxC" rendering.
std::string shape_str(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0f);

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] int rank() const { return static_cast<int>(shape_.size()); }
  [[nodiscard]] std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
  [[nodiscard]] std::int64_t bytes() const { return size() * 4; }  ///< float32 footprint

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  /// Rank-specific accessors (bounds-checked preconditions).
  float& at(int i);
  float& at(int i, int j);
  float& at(int i, int j, int k);
  [[nodiscard]] float at(int i) const;
  [[nodiscard]] float at(int i, int j) const;
  [[nodiscard]] float at(int i, int j, int k) const;

  /// Reinterpret with a new shape of identical element count.
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  /// Elementwise maximum |a - b| against another tensor of the same shape.
  [[nodiscard]] double max_abs_diff(const Tensor& other) const;

  /// Copy of sample `i` of a batched tensor (leading dim = batch): shape is
  /// this tensor's shape minus the leading dim.
  [[nodiscard]] Tensor batch_item(int i) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// Stack equal-shaped samples into one batched tensor of shape
/// [N, ...sample]. Sample rank must be <= 3 (the result honors the rank-4
/// cap). The inverse of repeated `batch_item`.
[[nodiscard]] Tensor stack_batch(const std::vector<Tensor>& samples);

/// Split a batched tensor (leading dim = batch) back into its samples.
[[nodiscard]] std::vector<Tensor> unstack_batch(const Tensor& batched);

}  // namespace iob::nn
