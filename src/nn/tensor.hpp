#pragma once
/// \file tensor.hpp
/// Minimal dense tensor for the from-scratch NN inference engine.
///
/// Row-major float storage; rank 1-4. Image tensors are HWC (height, width,
/// channels); 1-D signal tensors are LC (length, channels). The engine
/// exists to execute the paper's wearable-AI workloads (keyword spotting,
/// ECG classification, visual wake words) with *true* per-layer MAC counts
/// and activation sizes — the quantities the partitioning optimizer and the
/// offload-energy story depend on.

#include <cstdint>
#include <string>
#include <vector>

namespace iob::nn {

using Shape = std::vector<int>;

/// Total element count of a shape (product of dims).
std::int64_t shape_elems(const Shape& shape);

/// Human-readable "HxWxC" rendering.
std::string shape_str(const Shape& shape);

/// Non-owning read-only view of `size` contiguous floats — the C++17
/// stand-in for std::span<const float> the allocation-free inference entry
/// points (`Model::run_into`, `Tensor::batch_span`) traffic in.
struct ConstSpan {
  const float* data = nullptr;
  std::int64_t size = 0;

  [[nodiscard]] const float* begin() const { return data; }
  [[nodiscard]] const float* end() const { return data + size; }
  float operator[](std::int64_t i) const { return data[static_cast<std::size_t>(i)]; }
};

/// Elementwise maximum |a - b| of two equal-sized spans.
[[nodiscard]] double max_abs_diff(ConstSpan a, ConstSpan b);

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0f);

  /// Build a tensor by copying `shape_elems(shape)` floats from `data`.
  [[nodiscard]] static Tensor from_data(Shape shape, const float* data);

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] int rank() const { return static_cast<int>(shape_.size()); }
  [[nodiscard]] std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
  [[nodiscard]] std::int64_t bytes() const { return size() * 4; }  ///< float32 footprint

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  /// Rank-specific accessors (bounds-checked preconditions).
  float& at(int i);
  float& at(int i, int j);
  float& at(int i, int j, int k);
  [[nodiscard]] float at(int i) const;
  [[nodiscard]] float at(int i, int j) const;
  [[nodiscard]] float at(int i, int j, int k) const;

  /// Reinterpret with a new shape of identical element count.
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  /// Elementwise maximum |a - b| against another tensor of the same shape.
  [[nodiscard]] double max_abs_diff(const Tensor& other) const;

  /// Copy of sample `i` of a batched tensor (leading dim = batch): shape is
  /// this tensor's shape minus the leading dim.
  [[nodiscard]] Tensor batch_item(int i) const;

  /// Zero-copy view of sample `i` of a batched tensor (leading dim =
  /// batch). Preferred over `batch_item` wherever the sample is only read;
  /// the view is invalidated by any mutation of this tensor.
  [[nodiscard]] ConstSpan batch_span(int i) const;

 private:
  /// Direct copy-construction from raw storage (single write; the public
  /// fill constructor would zero-fill first). Backs `from_data`.
  Tensor(Shape shape, const float* src);

  Shape shape_;
  std::vector<float> data_;
};

/// Deterministic synthetic activations: a hash-pattern fill in [-1, 1),
/// varied by `salt` so batched samples differ. The one input generator
/// behind the engine's bit-exactness tests and benches (a drifted copy
/// would silently decouple what they exercise).
[[nodiscard]] Tensor patterned_tensor(Shape shape, int salt);

/// Stack equal-shaped samples into one batched tensor of shape
/// [N, ...sample]. Sample rank must be <= 3 (the result honors the rank-4
/// cap). The inverse of repeated `batch_item`.
[[nodiscard]] Tensor stack_batch(const std::vector<Tensor>& samples);

/// Split a batched tensor (leading dim = batch) back into its samples.
[[nodiscard]] std::vector<Tensor> unstack_batch(const Tensor& batched);

}  // namespace iob::nn
