#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <limits>
#include <sstream>
#include <utility>

#include "common/expect.hpp"
#include "nn/gemm.hpp"
#include "nn/workspace.hpp"

namespace iob::nn {

// ---- Layer (generic batched fallback) ---------------------------------------

Tensor Layer::forward_batched(const Tensor& input, int batch) const {
  IOB_EXPECTS(input.rank() >= 2 && input.shape()[0] == batch,
              "batched input must carry the batch as its leading dim");
  const Shape sample_shape(input.shape().begin() + 1, input.shape().end());
  const Shape out_sample = output_shape(sample_shape);
  Shape out_shape{batch};
  out_shape.insert(out_shape.end(), out_sample.begin(), out_sample.end());
  Tensor out(out_shape);
  const std::int64_t out_stride = shape_elems(out_sample);
  for (int s = 0; s < batch; ++s) {
    const Tensor y = forward(input.batch_item(s));
    std::copy(y.data(), y.data() + out_stride,
              out.data() + static_cast<std::ptrdiff_t>(s) * out_stride);
  }
  return out;
}

void Layer::forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                         Workspace& ws) const {
  // Allocating fallback for layers without a lowered kernel; every layer
  // shipped in this library overrides it.
  (void)ws;
  Shape batched_shape{batch};
  batched_shape.insert(batched_shape.end(), in_shape.begin(), in_shape.end());
  const Tensor y = forward_batched(Tensor::from_data(std::move(batched_shape), in), batch);
  std::copy(y.data(), y.data() + y.size(), out);
}

void Layer::forward_into_fused(const float* in, const Shape& in_shape, int batch, float* out,
                               Workspace& ws, const GemmTail& tail) const {
  (void)in;
  (void)in_shape;
  (void)batch;
  (void)out;
  (void)ws;
  (void)tail;
  IOB_EXPECTS(false, "layer does not support gemm-tail fusion");
}

// ---- FullyConnected ---------------------------------------------------------

FullyConnected::FullyConnected(int in_features, int out_features, std::vector<float> weights,
                               std::vector<float> bias)
    : in_features_(in_features),
      out_features_(out_features),
      weights_(std::move(weights)),
      bias_(std::move(bias)) {
  IOB_EXPECTS(in_features_ > 0 && out_features_ > 0, "feature counts must be positive");
  IOB_EXPECTS(weights_.size() ==
                  static_cast<std::size_t>(in_features_) * static_cast<std::size_t>(out_features_),
              "weight size mismatch");
  IOB_EXPECTS(bias_.size() == static_cast<std::size_t>(out_features_), "bias size mismatch");
  // Repack [out][in] -> [in][out] once so the GEMM streams B rows
  // contiguously; the k-th term of every output stays the k-th input.
  packed_.resize(weights_.size());
  pack_k_major(weights_.data(), out_features_, in_features_, packed_.data());
}

Tensor FullyConnected::forward(const Tensor& input) const {
  IOB_EXPECTS(input.size() == in_features_, "fc input size mismatch");
  Tensor out(Shape{out_features_});
  forward_into(input.data(), input.shape(), 1, out.data(), detail::thread_workspace());
  return out;
}

Tensor FullyConnected::forward_batched(const Tensor& input, int batch) const {
  IOB_EXPECTS(input.rank() >= 2 && input.shape()[0] == batch,
              "batched input must carry the batch as its leading dim");
  IOB_EXPECTS(input.size() == static_cast<std::int64_t>(batch) * in_features_,
              "fc batched input size mismatch");
  Tensor out(Shape{batch, out_features_});
  const Shape sample_shape(input.shape().begin() + 1, input.shape().end());
  forward_into(input.data(), sample_shape, batch, out.data(), detail::thread_workspace());
  return out;
}

void FullyConnected::forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                                  Workspace& ws) const {
  forward_into_fused(in, in_shape, batch, out, ws, GemmTail{});
}

void FullyConnected::forward_into_fused(const float* in, const Shape& in_shape, int batch,
                                        float* out, Workspace& ws, const GemmTail& tail) const {
  (void)ws;
  IOB_EXPECTS(shape_elems(in_shape) == in_features_, "fc input size mismatch");
  gemm_blocked(batch, out_features_, in_features_, in, packed_.data(), bias_.data(), out, tail);
}

Tensor FullyConnected::forward_reference(const Tensor& input) const {
  IOB_EXPECTS(input.size() == in_features_, "fc input size mismatch");
  Tensor out(Shape{out_features_});
  for (int o = 0; o < out_features_; ++o) {
    float acc = bias_[static_cast<std::size_t>(o)];
    const float* w = &weights_[static_cast<std::size_t>(o) * in_features_];
    for (int i = 0; i < in_features_; ++i) acc += w[i] * input[i];
    out[o] = acc;
  }
  return out;
}

Tensor FullyConnected::forward_batched_reference(const Tensor& input, int batch) const {
  IOB_EXPECTS(input.rank() >= 2 && input.shape()[0] == batch,
              "batched input must carry the batch as its leading dim");
  IOB_EXPECTS(input.size() == static_cast<std::int64_t>(batch) * in_features_,
              "fc batched input size mismatch");
  Tensor out(Shape{batch, out_features_});
  // Weight rows stream once per batch (o outer, sample inner) — the
  // amortization the hub's batched pass models. Per-(sample, output)
  // accumulation order matches forward() exactly.
  for (int o = 0; o < out_features_; ++o) {
    const float* w = &weights_[static_cast<std::size_t>(o) * in_features_];
    for (int s = 0; s < batch; ++s) {
      const float* x = input.data() + static_cast<std::ptrdiff_t>(s) * in_features_;
      float acc = bias_[static_cast<std::size_t>(o)];
      for (int i = 0; i < in_features_; ++i) acc += w[i] * x[i];
      out[static_cast<std::int64_t>(s) * out_features_ + o] = acc;
    }
  }
  return out;
}

Shape FullyConnected::output_shape(const Shape& input) const {
  IOB_EXPECTS(shape_elems(input) == in_features_, "fc input size mismatch");
  return Shape{out_features_};
}

std::uint64_t FullyConnected::macs(const Shape& input) const {
  (void)input;
  return static_cast<std::uint64_t>(in_features_) * static_cast<std::uint64_t>(out_features_);
}

std::uint64_t FullyConnected::param_count() const {
  return static_cast<std::uint64_t>(in_features_) * out_features_ + out_features_;
}

std::string FullyConnected::describe() const {
  std::ostringstream os;
  os << "fc " << in_features_ << "->" << out_features_;
  return os.str();
}

// ---- Relu -------------------------------------------------------------------

Relu::Relu(float cap) : cap_(cap) {}

Tensor Relu::forward(const Tensor& input) const {
  Tensor out = input;
  for (std::int64_t i = 0; i < out.size(); ++i) {
    float v = std::max(0.0f, out[i]);
    if (cap_ > 0.0f) v = std::min(cap_, v);
    out[i] = v;
  }
  return out;
}

Tensor Relu::forward_batched(const Tensor& input, int batch) const {
  IOB_EXPECTS(input.rank() >= 2 && input.shape()[0] == batch,
              "batched input must carry the batch as its leading dim");
  return forward(input);  // elementwise: the batched tensor is just more elements
}

void Relu::forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                        Workspace& ws) const {
  (void)ws;
  const std::int64_t total = shape_elems(in_shape) * batch;
  for (std::int64_t i = 0; i < total; ++i) {
    float v = std::max(0.0f, in[i]);
    if (cap_ > 0.0f) v = std::min(cap_, v);
    out[i] = v;
  }
}

bool Relu::gemm_tail(int channels, GemmTail& tail) const {
  (void)channels;  // relu is channel-agnostic
  tail.kind = GemmTail::Kind::kRelu;
  tail.cap = cap_;
  return true;
}

Shape Relu::output_shape(const Shape& input) const { return input; }

std::uint64_t Relu::macs(const Shape& input) const {
  // Count one op per element (comparison); negligible but non-zero.
  return static_cast<std::uint64_t>(shape_elems(input));
}

std::string Relu::describe() const { return cap_ > 0.0f ? "relu6" : "relu"; }

// ---- Pool2D -----------------------------------------------------------------

Pool2D::Pool2D(PoolKind kind, int kernel, int stride) : kind_(kind), kernel_(kernel), stride_(stride) {
  IOB_EXPECTS(kernel_ >= 1 && stride_ >= 1, "pool kernel/stride must be positive");
}

Shape Pool2D::output_shape(const Shape& input) const {
  IOB_EXPECTS(input.size() == 3, "pool2d expects HWC input");
  IOB_EXPECTS(input[0] >= kernel_ && input[1] >= kernel_, "pool kernel exceeds input");
  const int oh = (input[0] - kernel_) / stride_ + 1;
  const int ow = (input[1] - kernel_) / stride_ + 1;
  return Shape{oh, ow, input[2]};
}

Tensor Pool2D::forward(const Tensor& input) const {
  const Shape os = output_shape(input.shape());
  Tensor out(os);
  const int c = input.shape()[2];
  for (int oy = 0; oy < os[0]; ++oy) {
    for (int ox = 0; ox < os[1]; ++ox) {
      for (int ch = 0; ch < c; ++ch) {
        float acc = kind_ == PoolKind::kMax ? -std::numeric_limits<float>::infinity() : 0.0f;
        for (int ky = 0; ky < kernel_; ++ky) {
          for (int kx = 0; kx < kernel_; ++kx) {
            const float v = input.at(oy * stride_ + ky, ox * stride_ + kx, ch);
            acc = kind_ == PoolKind::kMax ? std::max(acc, v) : acc + v;
          }
        }
        if (kind_ == PoolKind::kAvg) acc /= static_cast<float>(kernel_ * kernel_);
        out.at(oy, ox, ch) = acc;
      }
    }
  }
  return out;
}

void Pool2D::forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                          Workspace& ws) const {
  (void)ws;
  IOB_EXPECTS(in_shape.size() == 3, "pool2d expects HWC input");
  IOB_EXPECTS(in_shape[0] >= kernel_ && in_shape[1] >= kernel_, "pool kernel exceeds input");
  const int ih = in_shape[0], iw = in_shape[1], c = in_shape[2];
  const int oh = (ih - kernel_) / stride_ + 1;
  const int ow = (iw - kernel_) / stride_ + 1;
  const std::int64_t in_sample = static_cast<std::int64_t>(ih) * iw * c;
  for (int s = 0; s < batch; ++s) {
    const float* ib = in + s * in_sample;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        for (int ch = 0; ch < c; ++ch) {
          float acc = kind_ == PoolKind::kMax ? -std::numeric_limits<float>::infinity() : 0.0f;
          for (int ky = 0; ky < kernel_; ++ky) {
            for (int kx = 0; kx < kernel_; ++kx) {
              const float v = ib[(static_cast<std::int64_t>(oy * stride_ + ky) * iw +
                                 (ox * stride_ + kx)) * c + ch];
              acc = kind_ == PoolKind::kMax ? std::max(acc, v) : acc + v;
            }
          }
          if (kind_ == PoolKind::kAvg) acc /= static_cast<float>(kernel_ * kernel_);
          *out++ = acc;
        }
      }
    }
  }
}

std::uint64_t Pool2D::macs(const Shape& input) const {
  const Shape os = output_shape(input);
  return static_cast<std::uint64_t>(shape_elems(os)) * kernel_ * kernel_;
}

std::string Pool2D::describe() const {
  std::ostringstream os;
  os << (kind_ == PoolKind::kMax ? "maxpool " : "avgpool ") << kernel_ << "x" << kernel_ << " s"
     << stride_;
  return os.str();
}

// ---- GlobalAvgPool ----------------------------------------------------------

Shape GlobalAvgPool::output_shape(const Shape& input) const {
  IOB_EXPECTS(input.size() == 2 || input.size() == 3, "global pool expects LC or HWC input");
  return Shape{input.back()};
}

Tensor GlobalAvgPool::forward(const Tensor& input) const {
  const int c = input.shape().back();
  const std::int64_t spatial = shape_elems(input.shape()) / c;
  Tensor out(Shape{c});
  for (std::int64_t i = 0; i < input.size(); ++i) {
    out[i % c] += input[i];
  }
  for (int ch = 0; ch < c; ++ch) out[ch] /= static_cast<float>(spatial);
  return out;
}

void GlobalAvgPool::forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                                 Workspace& ws) const {
  (void)ws;
  IOB_EXPECTS(in_shape.size() == 2 || in_shape.size() == 3, "global pool expects LC or HWC input");
  const int c = in_shape.back();
  const std::int64_t elems = shape_elems(in_shape);
  const std::int64_t spatial = elems / c;
  // Same per-channel accumulation order as the seed loop (channel ch sums
  // positions ch, ch+c, ch+2c, ... in storage order), expressed as nested
  // loops so the hot path skips the seed's per-element modulo.
  for (int s = 0; s < batch; ++s) {
    const float* ib = in + s * elems;
    float* ob = out + static_cast<std::int64_t>(s) * c;
    for (int ch = 0; ch < c; ++ch) ob[ch] = 0.0f;
    for (std::int64_t sp = 0; sp < spatial; ++sp) {
      const float* row = ib + sp * c;
      for (int ch = 0; ch < c; ++ch) ob[ch] += row[ch];
    }
    for (int ch = 0; ch < c; ++ch) ob[ch] /= static_cast<float>(spatial);
  }
}

std::uint64_t GlobalAvgPool::macs(const Shape& input) const {
  return static_cast<std::uint64_t>(shape_elems(input));
}

std::string GlobalAvgPool::describe() const { return "global-avgpool"; }

// ---- Flatten ----------------------------------------------------------------

Tensor Flatten::forward(const Tensor& input) const {
  return input.reshaped(Shape{static_cast<int>(input.size())});
}

Tensor Flatten::forward_batched(const Tensor& input, int batch) const {
  IOB_EXPECTS(input.rank() >= 2 && input.shape()[0] == batch,
              "batched input must carry the batch as its leading dim");
  return input.reshaped(Shape{batch, static_cast<int>(input.size() / batch)});
}

void Flatten::forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                           Workspace& ws) const {
  (void)ws;
  const std::int64_t total = shape_elems(in_shape) * batch;
  std::memcpy(out, in, static_cast<std::size_t>(total) * sizeof(float));
}

Shape Flatten::output_shape(const Shape& input) const {
  return Shape{static_cast<int>(shape_elems(input))};
}

// ---- BatchNorm --------------------------------------------------------------

BatchNorm::BatchNorm(std::vector<float> scale, std::vector<float> shift)
    : scale_(std::move(scale)), shift_(std::move(shift)) {
  IOB_EXPECTS(!scale_.empty() && scale_.size() == shift_.size(),
              "batchnorm scale/shift must be non-empty and equal-sized");
}

BatchNorm BatchNorm::fold(const std::vector<float>& gamma, const std::vector<float>& beta,
                          const std::vector<float>& mean, const std::vector<float>& variance,
                          float eps) {
  IOB_EXPECTS(gamma.size() == beta.size() && beta.size() == mean.size() &&
                  mean.size() == variance.size(),
              "batchnorm statistics must be equal-sized");
  std::vector<float> scale(gamma.size()), shift(gamma.size());
  for (std::size_t c = 0; c < gamma.size(); ++c) {
    IOB_EXPECTS(variance[c] >= 0.0f, "variance must be non-negative");
    scale[c] = gamma[c] / std::sqrt(variance[c] + eps);
    shift[c] = beta[c] - mean[c] * scale[c];
  }
  return BatchNorm(std::move(scale), std::move(shift));
}

Shape BatchNorm::output_shape(const Shape& input) const {
  IOB_EXPECTS(input.back() == static_cast<int>(scale_.size()),
              "batchnorm channel count mismatch");
  return input;
}

Tensor BatchNorm::forward(const Tensor& input) const {
  (void)output_shape(input.shape());  // validates channels
  Tensor out = input;
  const auto c = static_cast<std::int64_t>(scale_.size());
  for (std::int64_t i = 0; i < out.size(); ++i) {
    const auto ch = static_cast<std::size_t>(i % c);
    out[i] = scale_[ch] * out[i] + shift_[ch];
  }
  return out;
}

Tensor BatchNorm::forward_batched(const Tensor& input, int batch) const {
  IOB_EXPECTS(input.rank() >= 2 && input.shape()[0] == batch,
              "batched input must carry the batch as its leading dim");
  // Channels stay the trailing dim under a leading batch dim, so the
  // per-channel affine applies to the batched tensor unchanged.
  return forward(input);
}

void BatchNorm::forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                             Workspace& ws) const {
  (void)ws;
  IOB_EXPECTS(in_shape.back() == static_cast<int>(scale_.size()),
              "batchnorm channel count mismatch");
  const auto c = static_cast<std::int64_t>(scale_.size());
  const std::int64_t rows = shape_elems(in_shape) * batch / c;
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const auto i = r * c + ch;
      out[i] = scale_[static_cast<std::size_t>(ch)] * in[i] +
               shift_[static_cast<std::size_t>(ch)];
    }
  }
}

bool BatchNorm::gemm_tail(int channels, GemmTail& tail) const {
  // Only fusable when the producer's columns are exactly this layer's
  // channels (the per-column epilogue IS the per-channel affine).
  if (channels != static_cast<int>(scale_.size())) return false;
  tail.kind = GemmTail::Kind::kBatchNorm;
  tail.scale = scale_.data();
  tail.shift = shift_.data();
  return true;
}

std::uint64_t BatchNorm::macs(const Shape& input) const {
  return static_cast<std::uint64_t>(shape_elems(input));
}

std::uint64_t BatchNorm::param_count() const { return 2 * scale_.size(); }

std::string BatchNorm::describe() const {
  return "batchnorm c" + std::to_string(scale_.size());
}

// ---- Softmax ----------------------------------------------------------------

namespace {

/// Numerically-stable softmax over one contiguous sample, in place. The
/// single implementation behind forward and forward_batched keeps their
/// bit-exactness contract by construction.
void softmax_inplace(float* x, std::int64_t n) {
  float mx = -std::numeric_limits<float>::infinity();
  for (std::int64_t i = 0; i < n; ++i) mx = std::max(mx, x[i]);
  double sum = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - mx);
    sum += x[i];
  }
  for (std::int64_t i = 0; i < n; ++i) x[i] = static_cast<float>(x[i] / sum);
}

}  // namespace

Tensor Softmax::forward(const Tensor& input) const {
  Tensor out = input;
  softmax_inplace(out.data(), out.size());
  return out;
}

Tensor Softmax::forward_batched(const Tensor& input, int batch) const {
  IOB_EXPECTS(input.rank() >= 2 && input.shape()[0] == batch,
              "batched input must carry the batch as its leading dim");
  Tensor out = input;
  const std::int64_t stride = out.size() / batch;
  for (int s = 0; s < batch; ++s) {
    softmax_inplace(out.data() + static_cast<std::ptrdiff_t>(s) * stride, stride);
  }
  return out;
}

void Softmax::forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                           Workspace& ws) const {
  (void)ws;
  const std::int64_t stride = shape_elems(in_shape);
  std::memcpy(out, in, static_cast<std::size_t>(stride * batch) * sizeof(float));
  for (int s = 0; s < batch; ++s) {
    softmax_inplace(out + static_cast<std::ptrdiff_t>(s) * stride, stride);
  }
}

Shape Softmax::output_shape(const Shape& input) const { return input; }

std::uint64_t Softmax::macs(const Shape& input) const {
  return static_cast<std::uint64_t>(shape_elems(input)) * 2;  // exp + normalize
}

}  // namespace iob::nn
