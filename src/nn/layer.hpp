#pragma once
/// \file layer.hpp
/// Layer interface for the sequential inference engine. Each layer reports
/// its MAC count and output shape for a given input shape — the compute and
/// traffic quantities the `partition/` optimizer splits on.

#include <cstdint>
#include <memory>
#include <string>

#include "nn/tensor.hpp"

namespace iob::nn {

enum class Padding { kValid, kSame };

class Layer {
 public:
  virtual ~Layer() = default;

  /// Execute the layer.
  [[nodiscard]] virtual Tensor forward(const Tensor& input) const = 0;

  /// Execute the layer over a batched input whose leading dim is the batch
  /// (shape [N, ...sample]). Per-sample results are bit-identical to
  /// `forward` on each sample — batching changes memory traffic, never
  /// arithmetic order within a sample. The base implementation loops
  /// samples; layers with weights override it to amortize weight reads
  /// across the batch.
  [[nodiscard]] virtual Tensor forward_batched(const Tensor& input, int batch) const;

  /// Output shape for an input shape (throws on incompatible input).
  [[nodiscard]] virtual Shape output_shape(const Shape& input) const = 0;

  /// Multiply-accumulate operations for an input shape.
  [[nodiscard]] virtual std::uint64_t macs(const Shape& input) const = 0;

  /// Trainable parameter count.
  [[nodiscard]] virtual std::uint64_t param_count() const = 0;

  /// Layer type + config string, e.g. "conv2d 3x3x8 s1 same".
  [[nodiscard]] virtual std::string describe() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace iob::nn
