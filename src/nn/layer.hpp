#pragma once
/// \file layer.hpp
/// Layer interface for the sequential inference engine. Each layer reports
/// its MAC count and output shape for a given input shape — the compute and
/// traffic quantities the `partition/` optimizer splits on.

#include <cstdint>
#include <memory>
#include <string>

#include "nn/tensor.hpp"

namespace iob::nn {

class Workspace;
struct GemmTail;

enum class Padding { kValid, kSame };

class Layer {
 public:
  virtual ~Layer() = default;

  /// Execute the layer.
  [[nodiscard]] virtual Tensor forward(const Tensor& input) const = 0;

  /// Execute the layer over a batched input whose leading dim is the batch
  /// (shape [N, ...sample]). Per-sample results are bit-identical to
  /// `forward` on each sample — batching changes memory traffic, never
  /// arithmetic order within a sample. The base implementation loops
  /// samples; layers with weights override it to amortize weight reads
  /// across the batch.
  [[nodiscard]] virtual Tensor forward_batched(const Tensor& input, int batch) const;

  /// Allocation-free execution: read `batch` contiguous samples of shape
  /// `in_shape` from `in`, write `batch` output samples to `out` (which
  /// must hold batch * elems(output_shape(in_shape)) floats; `out` must not
  /// alias `in`). Results are bit-exact vs `forward_reference` per sample.
  /// Every shipped layer overrides this with a lowered kernel that never
  /// touches the heap beyond grow-only workspace scratch; the base
  /// implementation is an allocating fallback via `forward_batched` for
  /// exotic out-of-tree layers.
  virtual void forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                            Workspace& ws) const;

  /// Seed-loop oracle: the original naive nested-loop implementation, kept
  /// verbatim as the bit-exactness reference for the lowered kernels (and
  /// as the baseline the nn_infer bench measures speedups against). Layers
  /// whose `forward` was never lowered simply forward to it.
  [[nodiscard]] virtual Tensor forward_reference(const Tensor& input) const {
    return forward(input);
  }

  /// Batched seed-loop oracle (see `forward_reference`).
  [[nodiscard]] virtual Tensor forward_batched_reference(const Tensor& input, int batch) const {
    return forward_batched(input, batch);
  }

  /// Per-sample im2col scratch floats `forward_into` needs for `in_shape`
  /// (0 for layers that lower without patch extraction).
  [[nodiscard]] virtual std::int64_t scratch_elems(const Shape& in_shape) const {
    (void)in_shape;
    return 0;
  }

  /// Describe this layer as a fusable elementwise GEMM-epilogue tail over
  /// `channels` output columns (the producer's trailing dim). Relu and
  /// BatchNorm override it; everything else is not a tail. Returning true
  /// fills `tail`; the fused pair is bit-exact vs running the tail as its
  /// own pass, so `Model::run_into` fuses whenever both sides agree.
  [[nodiscard]] virtual bool gemm_tail(int channels, GemmTail& tail) const {
    (void)channels;
    (void)tail;
    return false;
  }

  /// True for layers whose `forward_into` lowers onto `gemm_blocked` and
  /// can absorb a `GemmTail` in the epilogue (Conv2D, Conv1D,
  /// FullyConnected). Such layers must also override `forward_into_fused`.
  [[nodiscard]] virtual bool supports_gemm_tail_fusion() const { return false; }

  /// Fused execution: `forward_into` with `tail` applied inside the GEMM
  /// epilogue — output shape and contents equal running this layer then the
  /// tail layer, with one ping-pong hop saved. Only called when
  /// `supports_gemm_tail_fusion()` is true.
  virtual void forward_into_fused(const float* in, const Shape& in_shape, int batch, float* out,
                                  Workspace& ws, const GemmTail& tail) const;

  /// Output shape for an input shape (throws on incompatible input).
  [[nodiscard]] virtual Shape output_shape(const Shape& input) const = 0;

  /// Multiply-accumulate operations for an input shape.
  [[nodiscard]] virtual std::uint64_t macs(const Shape& input) const = 0;

  /// Trainable parameter count.
  [[nodiscard]] virtual std::uint64_t param_count() const = 0;

  /// Layer type + config string, e.g. "conv2d 3x3x8 s1 same".
  [[nodiscard]] virtual std::string describe() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace iob::nn
