#pragma once
/// \file precision.hpp
/// Numeric precision of an execution or transport path. The one enum every
/// layer that reasons about precision shares: the partitioner's transport
/// format (`partition::CostModel::transport`), the hub session's execution
/// precision (`net::SessionConfig::precision`), and the fleet grid's
/// precision axis (`core::FleetAxes::precisions`) all derive from it, so
/// "int8" means the same thing from the GEMM kernel up to the fleet grid.

namespace iob::nn {

enum class Precision {
  kF32,   ///< 32-bit float: the reference engine and the accuracy oracle
  kInt8,  ///< 8-bit affine-quantized: the on-body deployment precision
};

[[nodiscard]] constexpr const char* to_string(Precision p) {
  return p == Precision::kInt8 ? "int8" : "f32";
}

/// Activation bytes per element at a given precision (the "bytes on the
/// wire" factor behind the partitioner's transfer costs).
[[nodiscard]] constexpr int bytes_per_element(Precision p) {
  return p == Precision::kInt8 ? 1 : 4;
}

}  // namespace iob::nn
