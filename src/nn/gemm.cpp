#include "nn/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>

#if defined(__SSE2__) || defined(_M_X64) || defined(_M_AMD64)
#define IOB_GEMM_SSE2 1
#include <emmintrin.h>
#endif

// Runtime-dispatched AVX2 path for the *integer* kernels only. Integer
// accumulation is exact at any vector width, so the AVX2, SSE2 and scalar
// paths are bit-identical by construction — unlike the f32 kernels, where
// widening (or FMA) would change rounding and break the seed-loop
// bit-exactness contract. The f32 path therefore stays SSE2-only while the
// int8 path picks up 16-MAC vpmaddwd on hardware that has it.
#if IOB_GEMM_SSE2 && (defined(__GNUC__) || defined(__clang__)) && defined(__x86_64__)
#define IOB_GEMM_AVX2_DISPATCH 1
#include <immintrin.h>
#endif

#include "common/expect.hpp"

namespace iob::nn {

namespace {

/// Fused-tail context handed to the tile kernels on the final K block:
/// `scale`/`shift` are pre-offset to the tile's first column. A nullptr
/// context means "no tail on this call" (earlier K blocks, or
/// GemmTail::Kind::kNone).
struct TailCtx {
  GemmTail::Kind kind = GemmTail::Kind::kNone;
  float cap = 0.0f;
  const float* scale = nullptr;
  const float* shift = nullptr;
};

/// The scalar tail op: the exact per-element expressions of
/// `Relu::forward_into` / `BatchNorm::forward_into` (column j of the tile).
inline float apply_tail(const TailCtx& t, float v, std::int64_t j) {
  if (t.kind == GemmTail::Kind::kRelu) {
    v = std::max(0.0f, v);
    if (t.cap > 0.0f) v = std::min(t.cap, v);
    return v;
  }
  return t.scale[j] * v + t.shift[j];
}

/// kMr x kNr microkernel: accumulate `kc` terms of A*B into the C tile.
/// On the first K block the tile starts from the bias row; afterwards the
/// partial sums re-load from C, so the per-element accumulation order over
/// the whole K range is the plain increasing-k order. A non-null `tail`
/// (final K block only) applies the fused elementwise epilogue while the
/// tile is still in registers.
///
/// The SSE2 path issues the exact same per-lane mul/add sequence as the
/// portable loop (no FMA — fusing would skip the intermediate rounding the
/// seed loops perform, breaking bit-exactness), it just pins the 4x8
/// accumulator block into eight xmm registers so the k loop runs ~2 ops
/// per 4 MACs instead of the compiler's spill-prone autovectorization.
#if IOB_GEMM_SSE2
void micro_tile(std::int64_t kc, const float* a, std::int64_t K, const float* b, std::int64_t N,
                float* c, const float* bias, bool first, const TailCtx* tail) {
  static_assert(kMr == 4 && kNr == 8, "micro_tile is written for a 4x8 register tile");
  __m128 acc[kMr][2];
  if (first) {
    const __m128 b0 = bias != nullptr ? _mm_loadu_ps(bias) : _mm_setzero_ps();
    const __m128 b1 = bias != nullptr ? _mm_loadu_ps(bias + 4) : _mm_setzero_ps();
    for (int i = 0; i < kMr; ++i) {
      acc[i][0] = b0;
      acc[i][1] = b1;
    }
  } else {
    for (int i = 0; i < kMr; ++i) {
      acc[i][0] = _mm_loadu_ps(c + i * N);
      acc[i][1] = _mm_loadu_ps(c + i * N + 4);
    }
  }
  for (std::int64_t k = 0; k < kc; ++k) {
    const float* brow = b + k * N;
    const __m128 b0 = _mm_loadu_ps(brow);
    const __m128 b1 = _mm_loadu_ps(brow + 4);
    for (int i = 0; i < kMr; ++i) {
      const __m128 ai = _mm_set1_ps(a[i * K + k]);
      acc[i][0] = _mm_add_ps(acc[i][0], _mm_mul_ps(ai, b0));
      acc[i][1] = _mm_add_ps(acc[i][1], _mm_mul_ps(ai, b1));
    }
  }
  if (tail != nullptr) {
    if (tail->kind == GemmTail::Kind::kRelu) {
      // max/min match std::max(0, v) / std::min(cap, v) lane-for-lane on
      // the finite activations the engine traffics in.
      const __m128 zero = _mm_setzero_ps();
      const __m128 cap = _mm_set1_ps(tail->cap);
      for (int i = 0; i < kMr; ++i) {
        acc[i][0] = _mm_max_ps(zero, acc[i][0]);
        acc[i][1] = _mm_max_ps(zero, acc[i][1]);
        if (tail->cap > 0.0f) {
          acc[i][0] = _mm_min_ps(cap, acc[i][0]);
          acc[i][1] = _mm_min_ps(cap, acc[i][1]);
        }
      }
    } else {
      const __m128 s0 = _mm_loadu_ps(tail->scale);
      const __m128 s1 = _mm_loadu_ps(tail->scale + 4);
      const __m128 h0 = _mm_loadu_ps(tail->shift);
      const __m128 h1 = _mm_loadu_ps(tail->shift + 4);
      for (int i = 0; i < kMr; ++i) {
        acc[i][0] = _mm_add_ps(_mm_mul_ps(s0, acc[i][0]), h0);
        acc[i][1] = _mm_add_ps(_mm_mul_ps(s1, acc[i][1]), h1);
      }
    }
  }
  for (int i = 0; i < kMr; ++i) {
    _mm_storeu_ps(c + i * N, acc[i][0]);
    _mm_storeu_ps(c + i * N + 4, acc[i][1]);
  }
}
#else
void micro_tile(std::int64_t kc, const float* a, std::int64_t K, const float* b, std::int64_t N,
                float* c, const float* bias, bool first, const TailCtx* tail) {
  float acc[kMr][kNr];
  for (int i = 0; i < kMr; ++i) {
    for (int j = 0; j < kNr; ++j) {
      acc[i][j] = first ? (bias != nullptr ? bias[j] : 0.0f) : c[i * N + j];
    }
  }
  for (std::int64_t k = 0; k < kc; ++k) {
    const float* brow = b + k * N;
    for (int i = 0; i < kMr; ++i) {
      const float ai = a[i * K + k];
      for (int j = 0; j < kNr; ++j) acc[i][j] += ai * brow[j];
    }
  }
  if (tail != nullptr) {
    for (int i = 0; i < kMr; ++i) {
      for (int j = 0; j < kNr; ++j) acc[i][j] = apply_tail(*tail, acc[i][j], j);
    }
  }
  for (int i = 0; i < kMr; ++i) {
    for (int j = 0; j < kNr; ++j) c[i * N + j] = acc[i][j];
  }
}
#endif

/// Scalar edge path for the M/N remainders, same accumulation order.
void edge_tile(std::int64_t rows, std::int64_t cols, std::int64_t kc, const float* a,
               std::int64_t K, const float* b, std::int64_t N, float* c, const float* bias,
               bool first, const TailCtx* tail) {
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      float acc = first ? (bias != nullptr ? bias[j] : 0.0f) : c[i * N + j];
      const float* arow = a + i * K;
      for (std::int64_t k = 0; k < kc; ++k) acc += arow[k] * b[k * N + j];
      if (tail != nullptr) acc = apply_tail(*tail, acc, j);
      c[i * N + j] = acc;
    }
  }
}

}  // namespace

void pack_k_major(const float* src, std::int64_t rows, std::int64_t cols, float* dst) {
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) dst[c * rows + r] = src[r * cols + c];
  }
}

void gemm_blocked(std::int64_t M, std::int64_t N, std::int64_t K, const float* A, const float* B,
                  const float* bias, float* C, const GemmTail& tail) {
  IOB_EXPECTS(M >= 0 && N > 0 && K > 0, "gemm dims must be positive");
  IOB_EXPECTS(tail.kind != GemmTail::Kind::kBatchNorm ||
                  (tail.scale != nullptr && tail.shift != nullptr),
              "batchnorm tail needs scale and shift");
  for (std::int64_t k0 = 0; k0 < K; k0 += kKc) {
    const std::int64_t kc = std::min(kKc, K - k0);
    const bool first = k0 == 0;
    const bool tailed = k0 + kc == K && tail.kind != GemmTail::Kind::kNone;
    const float* bk = B + k0 * N;
    std::int64_t m = 0;
    for (; m + kMr <= M; m += kMr) {
      const float* am = A + m * K + k0;
      float* cm = C + m * N;
      std::int64_t n = 0;
      for (; n + kNr <= N; n += kNr) {
        const TailCtx t{tail.kind, tail.cap,
                        tail.scale != nullptr ? tail.scale + n : nullptr,
                        tail.shift != nullptr ? tail.shift + n : nullptr};
        micro_tile(kc, am, K, bk + n, N, cm + n, bias != nullptr ? bias + n : nullptr, first,
                   tailed ? &t : nullptr);
      }
      if (n < N) {
        const TailCtx t{tail.kind, tail.cap,
                        tail.scale != nullptr ? tail.scale + n : nullptr,
                        tail.shift != nullptr ? tail.shift + n : nullptr};
        edge_tile(kMr, N - n, kc, am, K, bk + n, N, cm + n,
                  bias != nullptr ? bias + n : nullptr, first, tailed ? &t : nullptr);
      }
    }
    if (m < M) {
      const TailCtx t{tail.kind, tail.cap, tail.scale, tail.shift};
      edge_tile(M - m, N, kc, A + m * K + k0, K, bk, N, C + m * N, bias, first,
                tailed ? &t : nullptr);
    }
  }
}

namespace {

/// Inline float copy: the per-tap slices are tiny (ic floats, often 3-64),
/// where a libc memcpy call costs more than the copy itself.
inline void copy_floats(float* dst, const float* src, std::int64_t n) {
  if (n >= 64) {
    std::memcpy(dst, src, static_cast<std::size_t>(n) * sizeof(float));
  } else {
    for (std::int64_t i = 0; i < n; ++i) dst[i] = src[i];
  }
}

inline void zero_floats(float* dst, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = 0.0f;
}

}  // namespace

void im2col_nhwc(int batch, int ih, int iw, int ic, int kh, int kw, int sh, int sw, int pad_top,
                 int pad_left, int oh, int ow, const float* in, float* col) {
  const std::int64_t sample_elems = static_cast<std::int64_t>(ih) * iw * ic;
  for (int s = 0; s < batch; ++s) {
    const float* ib = in + static_cast<std::int64_t>(s) * sample_elems;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        const int x0 = ox * sw - pad_left;
        for (int ky = 0; ky < kh; ++ky) {
          const int iy = oy * sh + ky - pad_top;
          if (iy < 0 || iy >= ih) {
            zero_floats(col, static_cast<std::int64_t>(kw) * ic);
            col += static_cast<std::int64_t>(kw) * ic;
            continue;
          }
          const float* irow = ib + static_cast<std::int64_t>(iy) * iw * ic;
          if (x0 >= 0 && x0 + kw <= iw) {
            // Interior: the kw taps of this patch row are consecutive input
            // pixels — one contiguous copy.
            copy_floats(col, irow + static_cast<std::int64_t>(x0) * ic,
                        static_cast<std::int64_t>(kw) * ic);
            col += static_cast<std::int64_t>(kw) * ic;
            continue;
          }
          for (int kx = 0; kx < kw; ++kx) {
            const int ix = x0 + kx;
            if (ix < 0 || ix >= iw) {
              zero_floats(col, ic);
            } else {
              copy_floats(col, irow + static_cast<std::int64_t>(ix) * ic, ic);
            }
            col += ic;
          }
        }
      }
    }
  }
}

namespace {

/// Global packed-A toggle (default on). Read once per conv lowering, never
/// in the microkernels.
std::atomic<bool> g_pack_a_enabled{true};

/// Strided row writes into a kMr-lane panel: element j of a patch row lands
/// at dst[j * kMr]. Used only on panels that touch padding or the M
/// remainder — interior panels go through the 4x4-transpose fast path.
inline void scatter_floats(float* dst, const float* src, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i * kMr] = src[i];
}

inline void scatter_zero_floats(float* dst, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i * kMr] = 0.0f;
}

#if IOB_GEMM_SSE2
/// Pack four full patch rows at once: load 4 floats from each row, 4x4
/// transpose in registers, and store four contiguous 16-byte lanes. This
/// keeps the pack at memcpy-class throughput instead of the 16-byte-stride
/// scalar scatter, which is what makes fused im2col+pack a net win.
inline void pack_rows4_transposed(float* dst, const float* s0, const float* s1, const float* s2,
                                  const float* s3, std::int64_t n) {
  std::int64_t t = 0;
  for (; t + 4 <= n; t += 4) {
    __m128 r0 = _mm_loadu_ps(s0 + t);
    __m128 r1 = _mm_loadu_ps(s1 + t);
    __m128 r2 = _mm_loadu_ps(s2 + t);
    __m128 r3 = _mm_loadu_ps(s3 + t);
    _MM_TRANSPOSE4_PS(r0, r1, r2, r3);
    float* d = dst + t * kMr;
    _mm_storeu_ps(d, r0);
    _mm_storeu_ps(d + 4, r1);
    _mm_storeu_ps(d + 8, r2);
    _mm_storeu_ps(d + 12, r3);
  }
  for (; t < n; ++t) {
    float* d = dst + t * kMr;
    d[0] = s0[t];
    d[1] = s1[t];
    d[2] = s2[t];
    d[3] = s3[t];
  }
}

/// Per-row staging budget (floats) for the transpose fast path: a padded
/// tap run longer than this falls back to the scalar scatter. 256 floats
/// covers kw*ic for every model-zoo conv with a 4 KiB stack footprint.
constexpr std::int64_t kPackStageRun = 256;
#endif

/// Packed-A counterpart of `micro_tile`: identical per-lane mul/add
/// sequence (still no FMA), but the four A broadcasts per k step come from
/// one contiguous panel load instead of four stride-K row reads.
#if IOB_GEMM_SSE2
void micro_tile_pa(std::int64_t kc, const float* ap, const float* b, std::int64_t N, float* c,
                   const float* bias, bool first, const TailCtx* tail) {
  static_assert(kMr == 4 && kNr == 8, "micro_tile_pa is written for a 4x8 register tile");
  __m128 acc[kMr][2];
  if (first) {
    const __m128 b0 = bias != nullptr ? _mm_loadu_ps(bias) : _mm_setzero_ps();
    const __m128 b1 = bias != nullptr ? _mm_loadu_ps(bias + 4) : _mm_setzero_ps();
    for (int i = 0; i < kMr; ++i) {
      acc[i][0] = b0;
      acc[i][1] = b1;
    }
  } else {
    for (int i = 0; i < kMr; ++i) {
      acc[i][0] = _mm_loadu_ps(c + i * N);
      acc[i][1] = _mm_loadu_ps(c + i * N + 4);
    }
  }
  for (std::int64_t k = 0; k < kc; ++k) {
    const float* brow = b + k * N;
    const __m128 b0 = _mm_loadu_ps(brow);
    const __m128 b1 = _mm_loadu_ps(brow + 4);
    const __m128 av = _mm_loadu_ps(ap + k * kMr);
    const __m128 a0 = _mm_shuffle_ps(av, av, 0x00);
    const __m128 a1 = _mm_shuffle_ps(av, av, 0x55);
    const __m128 a2 = _mm_shuffle_ps(av, av, 0xAA);
    const __m128 a3 = _mm_shuffle_ps(av, av, 0xFF);
    acc[0][0] = _mm_add_ps(acc[0][0], _mm_mul_ps(a0, b0));
    acc[0][1] = _mm_add_ps(acc[0][1], _mm_mul_ps(a0, b1));
    acc[1][0] = _mm_add_ps(acc[1][0], _mm_mul_ps(a1, b0));
    acc[1][1] = _mm_add_ps(acc[1][1], _mm_mul_ps(a1, b1));
    acc[2][0] = _mm_add_ps(acc[2][0], _mm_mul_ps(a2, b0));
    acc[2][1] = _mm_add_ps(acc[2][1], _mm_mul_ps(a2, b1));
    acc[3][0] = _mm_add_ps(acc[3][0], _mm_mul_ps(a3, b0));
    acc[3][1] = _mm_add_ps(acc[3][1], _mm_mul_ps(a3, b1));
  }
  if (tail != nullptr) {
    if (tail->kind == GemmTail::Kind::kRelu) {
      const __m128 zero = _mm_setzero_ps();
      const __m128 cap = _mm_set1_ps(tail->cap);
      for (int i = 0; i < kMr; ++i) {
        acc[i][0] = _mm_max_ps(zero, acc[i][0]);
        acc[i][1] = _mm_max_ps(zero, acc[i][1]);
        if (tail->cap > 0.0f) {
          acc[i][0] = _mm_min_ps(cap, acc[i][0]);
          acc[i][1] = _mm_min_ps(cap, acc[i][1]);
        }
      }
    } else {
      const __m128 s0 = _mm_loadu_ps(tail->scale);
      const __m128 s1 = _mm_loadu_ps(tail->scale + 4);
      const __m128 h0 = _mm_loadu_ps(tail->shift);
      const __m128 h1 = _mm_loadu_ps(tail->shift + 4);
      for (int i = 0; i < kMr; ++i) {
        acc[i][0] = _mm_add_ps(_mm_mul_ps(s0, acc[i][0]), h0);
        acc[i][1] = _mm_add_ps(_mm_mul_ps(s1, acc[i][1]), h1);
      }
    }
  }
  for (int i = 0; i < kMr; ++i) {
    _mm_storeu_ps(c + i * N, acc[i][0]);
    _mm_storeu_ps(c + i * N + 4, acc[i][1]);
  }
}
#else
void micro_tile_pa(std::int64_t kc, const float* ap, const float* b, std::int64_t N, float* c,
                   const float* bias, bool first, const TailCtx* tail) {
  float acc[kMr][kNr];
  for (int i = 0; i < kMr; ++i) {
    for (int j = 0; j < kNr; ++j) {
      acc[i][j] = first ? (bias != nullptr ? bias[j] : 0.0f) : c[i * N + j];
    }
  }
  for (std::int64_t k = 0; k < kc; ++k) {
    const float* brow = b + k * N;
    for (int i = 0; i < kMr; ++i) {
      const float ai = ap[k * kMr + i];
      for (int j = 0; j < kNr; ++j) acc[i][j] += ai * brow[j];
    }
  }
  if (tail != nullptr) {
    for (int i = 0; i < kMr; ++i) {
      for (int j = 0; j < kNr; ++j) acc[i][j] = apply_tail(*tail, acc[i][j], j);
    }
  }
  for (int i = 0; i < kMr; ++i) {
    for (int j = 0; j < kNr; ++j) c[i * N + j] = acc[i][j];
  }
}
#endif

/// Scalar edge path over a packed panel (row i element k at ap[k*kMr + i]);
/// same accumulation order as `edge_tile`.
void edge_tile_pa(std::int64_t rows, std::int64_t cols, std::int64_t kc, const float* ap,
                  const float* b, std::int64_t N, float* c, const float* bias, bool first,
                  const TailCtx* tail) {
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      float acc = first ? (bias != nullptr ? bias[j] : 0.0f) : c[i * N + j];
      for (std::int64_t k = 0; k < kc; ++k) acc += ap[k * kMr + i] * b[k * N + j];
      if (tail != nullptr) acc = apply_tail(*tail, acc, j);
      c[i * N + j] = acc;
    }
  }
}

}  // namespace

void set_pack_a_enabled(bool enabled) {
  g_pack_a_enabled.store(enabled, std::memory_order_relaxed);
}

bool pack_a_enabled() { return g_pack_a_enabled.load(std::memory_order_relaxed); }

namespace {

/// Scalar (lane-scatter) fill of one panel row: row i's element j lands at
/// row[j * kMr]. Shared by the non-SSE2 build, short-run shapes, and the
/// final partial panel.
inline void pack_row_scatter(float* row, const float* sample, int y0, int x0, int ih, int iw,
                             int ic, int kh, int kw, std::int64_t irow_stride, std::int64_t run) {
  std::int64_t j = 0;
  for (int ky = 0; ky < kh; ++ky) {
    const int iy = y0 + ky;
    if (iy < 0 || iy >= ih) {
      scatter_zero_floats(row + j * kMr, run);
      j += run;
      continue;
    }
    const float* irow = sample + static_cast<std::int64_t>(iy) * irow_stride;
    if (x0 >= 0 && x0 + kw <= iw) {
      scatter_floats(row + j * kMr, irow + static_cast<std::int64_t>(x0) * ic, run);
      j += run;
      continue;
    }
    for (int kx = 0; kx < kw; ++kx) {
      const int ix = x0 + kx;
      if (ix < 0 || ix >= iw) {
        scatter_zero_floats(row + j * kMr, ic);
      } else {
        scatter_floats(row + j * kMr, irow + static_cast<std::int64_t>(ix) * ic, ic);
      }
      j += ic;
    }
  }
}

}  // namespace

void im2col_pack_a_nhwc(int batch, int ih, int iw, int ic, int kh, int kw, int sh, int sw,
                        int pad_top, int pad_left, int oh, int ow, const float* in, float* pack) {
  const std::int64_t sample_elems = static_cast<std::int64_t>(ih) * iw * ic;
  const std::int64_t K = static_cast<std::int64_t>(kh) * kw * ic;
  const std::int64_t run = static_cast<std::int64_t>(kw) * ic;
  const std::int64_t irow_stride = static_cast<std::int64_t>(iw) * ic;
#if IOB_GEMM_SSE2
  if (run >= 4 && run <= kPackStageRun) {
    // Panel-accumulator walk: gather four rows' geometry (all computed
    // incrementally from the (s, oy, ox) scan — no per-row divides), then
    // emit the full panel with 4x4 transposes so the pack writes stream.
    // All-interior panels take a branch-free per-ky loop; panels touching
    // padding stage each padded tap run (zeros + edge pieces) into a small
    // stack buffer first. Staged values are identical to the scalar
    // path's, so the panel bytes (and the GEMM) stay bit-exact. Panel rows
    // may straddle oy scans or samples.
    const float* samp[kMr];
    int y0v[kMr];
    int x0v[kMr];
    int np = 0;
    float* panel = pack;
    alignas(16) float staged[kMr][kPackStageRun];
    const auto emit_panel = [&]() {
      bool interior = true;
      for (int d = 0; d < kMr; ++d) {
        interior = interior && y0v[d] >= 0 && y0v[d] + kh <= ih && x0v[d] >= 0 && x0v[d] + kw <= iw;
      }
      if (interior) {
        const float* base[kMr];
        for (int d = 0; d < kMr; ++d) {
          base[d] = samp[d] + static_cast<std::int64_t>(y0v[d]) * irow_stride +
                    static_cast<std::int64_t>(x0v[d]) * ic;
        }
        for (int ky = 0; ky < kh; ++ky) {
          const std::int64_t off = static_cast<std::int64_t>(ky) * irow_stride;
          pack_rows4_transposed(panel + static_cast<std::int64_t>(ky) * run * kMr, base[0] + off,
                                base[1] + off, base[2] + off, base[3] + off, run);
        }
      } else {
        for (int ky = 0; ky < kh; ++ky) {
          const float* src[kMr];
          for (int d = 0; d < kMr; ++d) {
            const int iy = y0v[d] + ky;
            if (iy < 0 || iy >= ih) {
              zero_floats(staged[d], run);
              src[d] = staged[d];
              continue;
            }
            const float* irow = samp[d] + static_cast<std::int64_t>(iy) * irow_stride;
            const int x0 = x0v[d];
            if (x0 >= 0 && x0 + kw <= iw) {
              src[d] = irow + static_cast<std::int64_t>(x0) * ic;
              continue;
            }
            float* st = staged[d];
            std::int64_t j = 0;
            for (int kx = 0; kx < kw; ++kx) {
              const int ix = x0 + kx;
              if (ix < 0 || ix >= iw) {
                zero_floats(st + j, ic);
              } else {
                copy_floats(st + j, irow + static_cast<std::int64_t>(ix) * ic, ic);
              }
              j += ic;
            }
            src[d] = st;
          }
          pack_rows4_transposed(panel + static_cast<std::int64_t>(ky) * run * kMr, src[0], src[1],
                                src[2], src[3], run);
        }
      }
      panel += kMr * K;
      np = 0;
    };
    for (int s = 0; s < batch; ++s) {
      const float* ib = in + static_cast<std::int64_t>(s) * sample_elems;
      for (int oy = 0; oy < oh; ++oy) {
        const int y0 = oy * sh - pad_top;
        for (int ox = 0; ox < ow; ++ox) {
          samp[np] = ib;
          y0v[np] = y0;
          x0v[np] = ox * sw - pad_left;
          if (++np == kMr) emit_panel();
        }
      }
    }
    for (int d = 0; d < np; ++d) {
      pack_row_scatter(panel + d, samp[d], y0v[d], x0v[d], ih, iw, ic, kh, kw, irow_stride, run);
    }
    return;
  }
#endif
  std::int64_t r = 0;
  for (int s = 0; s < batch; ++s) {
    const float* ib = in + static_cast<std::int64_t>(s) * sample_elems;
    for (int oy = 0; oy < oh; ++oy) {
      const int y0 = oy * sh - pad_top;
      for (int ox = 0; ox < ow; ++ox) {
        pack_row_scatter(pack + (r / kMr) * (kMr * K) + (r % kMr), ib, y0, ox * sw - pad_left, ih,
                         iw, ic, kh, kw, irow_stride, run);
        ++r;
      }
    }
  }
}

void gemm_blocked_pa(std::int64_t M, std::int64_t N, std::int64_t K, const float* Ap,
                     const float* B, const float* bias, float* C, const GemmTail& tail) {
  IOB_EXPECTS(M >= 0 && N > 0 && K > 0, "gemm dims must be positive");
  IOB_EXPECTS(tail.kind != GemmTail::Kind::kBatchNorm ||
                  (tail.scale != nullptr && tail.shift != nullptr),
              "batchnorm tail needs scale and shift");
  for (std::int64_t k0 = 0; k0 < K; k0 += kKc) {
    const std::int64_t kc = std::min(kKc, K - k0);
    const bool first = k0 == 0;
    const bool tailed = k0 + kc == K && tail.kind != GemmTail::Kind::kNone;
    const float* bk = B + k0 * N;
    std::int64_t m = 0;
    for (; m + kMr <= M; m += kMr) {
      const float* am = Ap + (m / kMr) * (kMr * K) + k0 * kMr;
      float* cm = C + m * N;
      std::int64_t n = 0;
      for (; n + kNr <= N; n += kNr) {
        const TailCtx t{tail.kind, tail.cap,
                        tail.scale != nullptr ? tail.scale + n : nullptr,
                        tail.shift != nullptr ? tail.shift + n : nullptr};
        micro_tile_pa(kc, am, bk + n, N, cm + n, bias != nullptr ? bias + n : nullptr, first,
                      tailed ? &t : nullptr);
      }
      if (n < N) {
        const TailCtx t{tail.kind, tail.cap,
                        tail.scale != nullptr ? tail.scale + n : nullptr,
                        tail.shift != nullptr ? tail.shift + n : nullptr};
        edge_tile_pa(kMr, N - n, kc, am, bk + n, N, cm + n,
                     bias != nullptr ? bias + n : nullptr, first, tailed ? &t : nullptr);
      }
    }
    if (m < M) {
      const TailCtx t{tail.kind, tail.cap, tail.scale, tail.shift};
      edge_tile_pa(M - m, N, kc, Ap + (m / kMr) * (kMr * K) + k0 * kMr, bk, N, C + m * N, bias,
                   first, tailed ? &t : nullptr);
    }
  }
}

void dwconv2d_nhwc(int batch, int ih, int iw, int c, int k, int stride, int pad_top, int pad_left,
                   int oh, int ow, const float* in, const float* wpacked, const float* bias,
                   float* out) {
  const std::int64_t in_sample = static_cast<std::int64_t>(ih) * iw * c;
  const std::int64_t out_sample = static_cast<std::int64_t>(oh) * ow * c;
  for (int s = 0; s < batch; ++s) {
    const float* ib = in + static_cast<std::int64_t>(s) * in_sample;
    float* ob = out + static_cast<std::int64_t>(s) * out_sample;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        float* o = ob + (static_cast<std::int64_t>(oy) * ow + ox) * c;
        for (int ch = 0; ch < c; ++ch) o[ch] = bias[ch];
        for (int ky = 0; ky < k; ++ky) {
          const int iy = oy * stride + ky - pad_top;
          if (iy < 0 || iy >= ih) continue;
          for (int kx = 0; kx < k; ++kx) {
            const int ix = ox * stride + kx - pad_left;
            if (ix < 0 || ix >= iw) continue;
            const float* w = wpacked + (static_cast<std::int64_t>(ky) * k + kx) * c;
            const float* p = ib + (static_cast<std::int64_t>(iy) * iw + ix) * c;
            for (int ch = 0; ch < c; ++ch) o[ch] += w[ch] * p[ch];
          }
        }
      }
    }
  }
}

// ---- int8 execution path ----------------------------------------------------

void pack_b_s8(const std::int8_t* b, std::int64_t K, std::int64_t N, const std::int32_t* zw,
               std::int16_t* dst) {
  const std::int64_t kp_count = (K + 1) / 2;
  for (std::int64_t kp = 0; kp < kp_count; ++kp) {
    for (std::int64_t n = 0; n < N; ++n) {
      const std::int64_t k0 = 2 * kp;
      dst[(kp * N + n) * 2 + 0] = static_cast<std::int16_t>(b[k0 * N + n] - zw[n]);
      dst[(kp * N + n) * 2 + 1] =
          k0 + 1 < K ? static_cast<std::int16_t>(b[(k0 + 1) * N + n] - zw[n])
                     : static_cast<std::int16_t>(0);
    }
  }
}

namespace {

/// K-pair cache block of the int8 GEMM (256 k terms, mirroring the f32
/// kKc). An A tile packs kMr x kKcPairs pair-merged int32s on the stack.
constexpr std::int64_t kKcPairs = 128;

/// Shared scalar epilogue core: affine accumulator -> real value, optional
/// fused relu. Every quantized epilogue (standalone, GEMM-fused, depthwise)
/// runs these exact expressions, scalar or lane-for-lane in SSE2.
inline float epilogue_real(std::int32_t acc, const float* bias, std::int64_t n, float scale,
                           float relu_cap) {
  float v = (bias != nullptr ? bias[n] : 0.0f) + scale * static_cast<float>(acc);
  if (relu_cap >= 0.0f) {
    v = std::max(0.0f, v);
    if (relu_cap > 0.0f) v = std::min(relu_cap, v);
  }
  return v;
}

/// Per-tile view of a QuantEpilogue: bias/dst/dstf pre-offset to the tile
/// origin (dst rows keep the full C row stride N).
struct EpiCtx {
  const float* bias = nullptr;
  const float* col_scales = nullptr;
  std::int8_t* dst = nullptr;
  float* dstf = nullptr;
  float scale = 1.0f, relu_cap = -1.0f, inv = 1.0f;
  std::int32_t zp = 0;
};

inline EpiCtx epi_tile(const QuantEpilogue& e, std::int64_t m, std::int64_t n, std::int64_t N) {
  return EpiCtx{e.bias != nullptr ? e.bias + n : nullptr,
                e.col_scales != nullptr ? e.col_scales + n : nullptr,
                e.dst != nullptr ? e.dst + m * N + n : nullptr,
                e.dstf != nullptr ? e.dstf + m * N + n : nullptr,
                e.scale, e.relu_cap, e.inv_out_scale, e.out_zero};
}

inline void epilogue_scalar(const EpiCtx& e, std::int32_t acc, std::int64_t j, std::int64_t di) {
  const float sc = e.col_scales != nullptr ? e.col_scales[j] : e.scale;
  const float v = epilogue_real(acc, e.bias, j, sc, e.relu_cap);
  if (e.dstf != nullptr) {
    e.dstf[di] = v;
  } else {
    e.dst[di] = requantize_value(v, e.inv, e.zp);
  }
}

/// Pack one kMr-row A tile for K pairs [kp0, kp0 + kpc): zero-point-
/// subtracted int16 (k, k+1) pairs merged into one int32 per pair (odd-K
/// tails pad the high half with 0, contributing nothing). On little-endian
/// x86 the merged-int32 view IS the consecutive int16 stream, so the SSE2
/// fill is a straight sign-extend / subtract / store sweep — 8 elements
/// per step instead of the scalar 2 (this pack is the dominant overhead at
/// small K, where the kp loop is short).
void pack_a_tile_s8(const std::int8_t* a, std::int64_t K, std::int64_t kp0, std::int64_t kpc,
                    std::int32_t za, std::int64_t rows, std::int32_t* apk) {
  const std::int64_t k0 = kp0 * 2;
  const std::int64_t kelems = std::min(2 * kpc, K - k0);
  for (std::int64_t i = 0; i < rows; ++i) {
    const std::int8_t* arow = a + i * K + k0;
    auto* dst = reinterpret_cast<std::int16_t*>(apk + i * kpc);
    std::int64_t e = 0;
#if IOB_GEMM_SSE2
    const __m128i vza = _mm_set1_epi16(static_cast<std::int16_t>(za));
    const __m128i vz = _mm_setzero_si128();
    for (; e + 8 <= kelems; e += 8) {
      const __m128i a8 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(arow + e));
      const __m128i a16 = _mm_sub_epi16(_mm_unpacklo_epi8(a8, _mm_cmpgt_epi8(vz, a8)), vza);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + e), a16);
    }
#endif
    for (; e < kelems; ++e) dst[e] = static_cast<std::int16_t>(arow[e] - za);
    for (std::int64_t p = kelems; p < 2 * kpc; ++p) dst[p] = 0;
  }
}

/// Scalar int8 tile path (M/N remainders and the portable build): exact
/// int32 arithmetic over the same operands, so its results are bit-identical
/// to the SSE2 microkernel by construction. A non-null `epi` (final K
/// block) writes the epilogue result instead of the raw accumulator.
void edge_tile_s8(std::int64_t rows, std::int64_t cols, std::int64_t kpc, const std::int8_t* a,
                  std::int64_t K, std::int64_t kp0, std::int32_t za, const std::int16_t* b,
                  std::int64_t N, std::int32_t* c, bool first, const EpiCtx* epi) {
  for (std::int64_t i = 0; i < rows; ++i) {
    const std::int8_t* arow = a + i * K;
    for (std::int64_t j = 0; j < cols; ++j) {
      std::int32_t acc = first ? 0 : c[i * N + j];
      for (std::int64_t kp = 0; kp < kpc; ++kp) {
        const std::int64_t k = (kp0 + kp) * 2;
        const std::int32_t a0 = arow[k] - za;
        const std::int32_t a1 = k + 1 < K ? arow[k + 1] - za : 0;
        const std::int16_t* bp = b + (kp * N + j) * 2;
        acc += a0 * bp[0] + a1 * bp[1];
      }
      if (epi != nullptr) {
        epilogue_scalar(*epi, acc, j, i * N + j);
      } else {
        c[i * N + j] = acc;
      }
    }
  }
}

/// Scalar edge path over pre-packed A panels: row i's K pairs live at
/// apk[i * apk_stride + kp], two already-zero-point-subtracted int16 per
/// int32 (little-endian: low half = even k). Identical integer arithmetic
/// to `edge_tile_s8`, so results are bit-identical.
void edge_tile_s8_pa(std::int64_t rows, std::int64_t cols, std::int64_t kpc,
                     const std::int32_t* apk, std::int64_t apk_stride, const std::int16_t* b,
                     std::int64_t N, std::int32_t* c, bool first, const EpiCtx* epi) {
  for (std::int64_t i = 0; i < rows; ++i) {
    const auto* arow = reinterpret_cast<const std::int16_t*>(apk + i * apk_stride);
    for (std::int64_t j = 0; j < cols; ++j) {
      std::int32_t acc = first ? 0 : c[i * N + j];
      for (std::int64_t kp = 0; kp < kpc; ++kp) {
        const std::int16_t* bp = b + (kp * N + j) * 2;
        acc += static_cast<std::int32_t>(arow[2 * kp]) * bp[0] +
               static_cast<std::int32_t>(arow[2 * kp + 1]) * bp[1];
      }
      if (epi != nullptr) {
        epilogue_scalar(*epi, acc, j, i * N + j);
      } else {
        c[i * N + j] = acc;
      }
    }
  }
}

#if IOB_GEMM_SSE2
/// Vector epilogue over one 2x4-lane row (8 int32 accumulators): the exact
/// lane-wise counterpart of `epilogue_scalar` — cvtepi32_ps / mul / add are
/// the same IEEE ops, the round is trunc(v + copysign(0.5, v)) in both, and
/// packs saturation equals the scalar int8 clamp.
inline void epi_store_row(const EpiCtx& e, __m128i a0, __m128i a1, std::int64_t row,
                          std::int64_t N) {
  const __m128 s0 = e.col_scales != nullptr ? _mm_loadu_ps(e.col_scales) : _mm_set1_ps(e.scale);
  const __m128 s1 =
      e.col_scales != nullptr ? _mm_loadu_ps(e.col_scales + 4) : _mm_set1_ps(e.scale);
  __m128 r0 = _mm_mul_ps(s0, _mm_cvtepi32_ps(a0));
  __m128 r1 = _mm_mul_ps(s1, _mm_cvtepi32_ps(a1));
  if (e.bias != nullptr) {
    r0 = _mm_add_ps(_mm_loadu_ps(e.bias), r0);
    r1 = _mm_add_ps(_mm_loadu_ps(e.bias + 4), r1);
  }
  if (e.relu_cap >= 0.0f) {
    const __m128 zero = _mm_setzero_ps();
    r0 = _mm_max_ps(zero, r0);
    r1 = _mm_max_ps(zero, r1);
    if (e.relu_cap > 0.0f) {
      const __m128 cap = _mm_set1_ps(e.relu_cap);
      r0 = _mm_min_ps(cap, r0);
      r1 = _mm_min_ps(cap, r1);
    }
  }
  if (e.dstf != nullptr) {
    _mm_storeu_ps(e.dstf + row * N, r0);
    _mm_storeu_ps(e.dstf + row * N + 4, r1);
    return;
  }
  const __m128 vinv = _mm_set1_ps(e.inv);
  const __m128 vhalf = _mm_set1_ps(0.5f);
  const __m128 vsign = _mm_set1_ps(-0.0f);
  r0 = _mm_mul_ps(r0, vinv);
  r1 = _mm_mul_ps(r1, vinv);
  const __m128 h0 = _mm_or_ps(_mm_and_ps(r0, vsign), vhalf);
  const __m128 h1 = _mm_or_ps(_mm_and_ps(r1, vsign), vhalf);
  const __m128i vzp = _mm_set1_epi32(e.zp);
  const __m128i q0 = _mm_add_epi32(_mm_cvttps_epi32(_mm_add_ps(r0, h0)), vzp);
  const __m128i q1 = _mm_add_epi32(_mm_cvttps_epi32(_mm_add_ps(r1, h1)), vzp);
  const __m128i p16 = _mm_packs_epi32(q0, q1);
  const __m128i p8 = _mm_packs_epi16(p16, p16);
  _mm_storel_epi64(reinterpret_cast<__m128i*>(e.dst + row * N), p8);
}

/// kMr x kNr int8 microkernel: eight int32 accumulators, one pmaddwd per
/// (row, 4-column, k-pair) step — each instruction retires 8 MACs, twice
/// the f32 kernel's per-instruction density (the int8 throughput win the
/// requantized path banks). The fused epilogue requantizes the tile
/// straight out of registers on the final K block.
void micro_tile_s8(std::int64_t kpc, const std::int32_t* apk, std::int64_t apk_stride,
                   const std::int16_t* b, std::int64_t N, std::int32_t* c, bool first,
                   const EpiCtx* epi) {
  static_assert(kMr == 4 && kNr == 8, "micro_tile_s8 is written for a 4x8 register tile");
  __m128i acc[kMr][2];
  for (int i = 0; i < kMr; ++i) {
    if (first) {
      acc[i][0] = _mm_setzero_si128();
      acc[i][1] = _mm_setzero_si128();
    } else {
      acc[i][0] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + i * N));
      acc[i][1] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + i * N + 4));
    }
  }
  for (std::int64_t kp = 0; kp < kpc; ++kp) {
    const std::int16_t* brow = b + kp * 2 * N;
    const __m128i b0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(brow));
    const __m128i b1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(brow + 8));
    for (int i = 0; i < kMr; ++i) {
      const __m128i ai = _mm_set1_epi32(apk[i * apk_stride + kp]);
      acc[i][0] = _mm_add_epi32(acc[i][0], _mm_madd_epi16(ai, b0));
      acc[i][1] = _mm_add_epi32(acc[i][1], _mm_madd_epi16(ai, b1));
    }
  }
  if (epi != nullptr) {
    for (int i = 0; i < kMr; ++i) epi_store_row(*epi, acc[i][0], acc[i][1], i, N);
    return;
  }
  for (int i = 0; i < kMr; ++i) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(c + i * N), acc[i][0]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(c + i * N + 4), acc[i][1]);
  }
}
#endif

/// Dispatch-tier cap for the test hook (INT_MAX = full auto).
std::atomic<int> g_int8_dispatch_cap{std::numeric_limits<int>::max()};

#if IOB_GEMM_AVX2_DISPATCH

bool cpu_has_avx2() {
  static const bool v = __builtin_cpu_supports("avx2") != 0;
  return v && g_int8_dispatch_cap.load(std::memory_order_relaxed) >= 1;
}

/// AVX2 column width of the int8 microkernel (two ymm accumulators/row).
constexpr std::int64_t kNr2 = 16;

/// 256-bit epilogue over one row of 16 accumulated columns: the exact
/// lane-wise counterpart of `epilogue_scalar` (same IEEE ops; the double
/// packs + permute saturate exactly like the scalar int8 clamp).
__attribute__((target("avx2"))) inline void epi_store_row2(const EpiCtx& e, __m256i a0,
                                                           __m256i a1, std::int64_t row,
                                                           std::int64_t N) {
  const __m256 s0 =
      e.col_scales != nullptr ? _mm256_loadu_ps(e.col_scales) : _mm256_set1_ps(e.scale);
  const __m256 s1 =
      e.col_scales != nullptr ? _mm256_loadu_ps(e.col_scales + 8) : _mm256_set1_ps(e.scale);
  __m256 r0 = _mm256_mul_ps(s0, _mm256_cvtepi32_ps(a0));
  __m256 r1 = _mm256_mul_ps(s1, _mm256_cvtepi32_ps(a1));
  if (e.bias != nullptr) {
    r0 = _mm256_add_ps(_mm256_loadu_ps(e.bias), r0);
    r1 = _mm256_add_ps(_mm256_loadu_ps(e.bias + 8), r1);
  }
  if (e.relu_cap >= 0.0f) {
    const __m256 zero = _mm256_setzero_ps();
    r0 = _mm256_max_ps(zero, r0);
    r1 = _mm256_max_ps(zero, r1);
    if (e.relu_cap > 0.0f) {
      const __m256 cap = _mm256_set1_ps(e.relu_cap);
      r0 = _mm256_min_ps(cap, r0);
      r1 = _mm256_min_ps(cap, r1);
    }
  }
  if (e.dstf != nullptr) {
    _mm256_storeu_ps(e.dstf + row * N, r0);
    _mm256_storeu_ps(e.dstf + row * N + 8, r1);
    return;
  }
  const __m256 vinv = _mm256_set1_ps(e.inv);
  const __m256 vhalf = _mm256_set1_ps(0.5f);
  const __m256 vsign = _mm256_set1_ps(-0.0f);
  r0 = _mm256_mul_ps(r0, vinv);
  r1 = _mm256_mul_ps(r1, vinv);
  const __m256 h0 = _mm256_or_ps(_mm256_and_ps(r0, vsign), vhalf);
  const __m256 h1 = _mm256_or_ps(_mm256_and_ps(r1, vsign), vhalf);
  const __m256i vzp = _mm256_set1_epi32(e.zp);
  const __m256i q0 = _mm256_add_epi32(_mm256_cvttps_epi32(_mm256_add_ps(r0, h0)), vzp);
  const __m256i q1 = _mm256_add_epi32(_mm256_cvttps_epi32(_mm256_add_ps(r1, h1)), vzp);
  // packs interleave within 128-bit lanes; permute restores column order.
  const __m256i p16 = _mm256_permute4x64_epi64(_mm256_packs_epi32(q0, q1), 0xD8);
  const __m256i p8 =
      _mm256_permute4x64_epi64(_mm256_packs_epi16(p16, _mm256_setzero_si256()), 0x08);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(e.dst + row * N),
                   _mm256_castsi256_si128(p8));
}

/// kMr x kNr2 AVX2 int8 microkernel: one vpmaddwd retires 16 MACs — four
/// times the f32 kernel's per-instruction density. Same operands and exact
/// integer arithmetic as the SSE2/scalar paths, so results are
/// bit-identical; dispatch is purely a throughput choice.
__attribute__((target("avx2"))) void micro_tile_s8_avx2(std::int64_t kpc,
                                                        const std::int32_t* apk,
                                                        std::int64_t apk_stride,
                                                        const std::int16_t* b, std::int64_t N,
                                                        std::int32_t* c, bool first,
                                                        const EpiCtx* epi) {
  static_assert(kMr == 4, "micro_tile_s8_avx2 is written for 4 rows");
  __m256i acc[kMr][2];
  for (int i = 0; i < kMr; ++i) {
    if (first) {
      acc[i][0] = _mm256_setzero_si256();
      acc[i][1] = _mm256_setzero_si256();
    } else {
      acc[i][0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i * N));
      acc[i][1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i * N + 8));
    }
  }
  for (std::int64_t kp = 0; kp < kpc; ++kp) {
    const std::int16_t* brow = b + kp * 2 * N;
    const __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(brow));
    const __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(brow + 16));
    for (int i = 0; i < kMr; ++i) {
      const __m256i ai = _mm256_set1_epi32(apk[i * apk_stride + kp]);
      acc[i][0] = _mm256_add_epi32(acc[i][0], _mm256_madd_epi16(ai, b0));
      acc[i][1] = _mm256_add_epi32(acc[i][1], _mm256_madd_epi16(ai, b1));
    }
  }
  if (epi != nullptr) {
    for (int i = 0; i < kMr; ++i) epi_store_row2(*epi, acc[i][0], acc[i][1], i, N);
    return;
  }
  for (int i = 0; i < kMr; ++i) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + i * N), acc[i][0]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + i * N + 8), acc[i][1]);
  }
}

/// Full AVX2 depthwise kernel (one target function so every helper inlines
/// under VEX encoding): 16 channels per step — sign-extend, subtract the
/// zero point, widening-multiply against the pre-widened weights. The
/// accumulators keep the unpack-interleaved lane order across taps; one
/// permute pair restores channel order before the 16-wide epilogue. The
/// sub-16 channel remainder runs the scalar expressions, which are
/// bit-identical to the vector lanes.
__attribute__((target("avx2"))) void dwconv2d_s8_avx2(int batch, int ih, int iw, int c, int k,
                                                      int stride, int pad_top, int pad_left,
                                                      int oh, int ow, const std::int8_t* in,
                                                      std::int32_t za, const std::int16_t* w16,
                                                      const EpiCtx& epi) {
  const std::int64_t in_sample = static_cast<std::int64_t>(ih) * iw * c;
  const std::int64_t out_sample = static_cast<std::int64_t>(oh) * ow * c;
  const __m256i vza = _mm256_set1_epi16(static_cast<std::int16_t>(za));
  for (int s = 0; s < batch; ++s) {
    const std::int8_t* ib = in + static_cast<std::int64_t>(s) * in_sample;
    const std::int64_t obase = static_cast<std::int64_t>(s) * out_sample;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        const std::int64_t o = obase + (static_cast<std::int64_t>(oy) * ow + ox) * c;
        int ch = 0;
        for (; ch + 16 <= c; ch += 16) {
          __m256i acc0 = _mm256_setzero_si256();
          __m256i acc1 = _mm256_setzero_si256();
          for (int ky = 0; ky < k; ++ky) {
            const int iy = oy * stride + ky - pad_top;
            if (iy < 0 || iy >= ih) continue;
            for (int kx = 0; kx < k; ++kx) {
              const int ix = ox * stride + kx - pad_left;
              if (ix < 0 || ix >= iw) continue;
              const std::int8_t* p = ib + (static_cast<std::int64_t>(iy) * iw + ix) * c + ch;
              const __m256i a16 = _mm256_sub_epi16(
                  _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))),
                  vza);
              const __m256i wv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                  w16 + (static_cast<std::int64_t>(ky) * k + kx) * c + ch));
              const __m256i lo = _mm256_mullo_epi16(a16, wv);
              const __m256i hi = _mm256_mulhi_epi16(a16, wv);
              acc0 = _mm256_add_epi32(acc0, _mm256_unpacklo_epi16(lo, hi));
              acc1 = _mm256_add_epi32(acc1, _mm256_unpackhi_epi16(lo, hi));
            }
          }
          // acc0 = channels [0-3 | 8-11], acc1 = [4-7 | 12-15]: un-interleave.
          const __m256i lo8 = _mm256_permute2x128_si256(acc0, acc1, 0x20);  // ch 0-7
          const __m256i hi8 = _mm256_permute2x128_si256(acc0, acc1, 0x31);  // ch 8-15
          const EpiCtx lane{epi.bias != nullptr ? epi.bias + ch : nullptr,
                            epi.col_scales != nullptr ? epi.col_scales + ch : nullptr,
                            epi.dst != nullptr ? epi.dst + o + ch : nullptr,
                            epi.dstf != nullptr ? epi.dstf + o + ch : nullptr,
                            epi.scale, epi.relu_cap, epi.inv, epi.zp};
          epi_store_row2(lane, lo8, hi8, 0, 0);
        }
        for (; ch < c; ++ch) {
          std::int32_t acc = 0;
          for (int ky = 0; ky < k; ++ky) {
            const int iy = oy * stride + ky - pad_top;
            if (iy < 0 || iy >= ih) continue;
            for (int kx = 0; kx < k; ++kx) {
              const int ix = ox * stride + kx - pad_left;
              if (ix < 0 || ix >= iw) continue;
              const std::int32_t w = w16[(static_cast<std::int64_t>(ky) * k + kx) * c + ch];
              const std::int32_t a = ib[(static_cast<std::int64_t>(iy) * iw + ix) * c + ch] - za;
              acc += a * w;
            }
          }
          epilogue_scalar(epi, acc, ch, o + ch);
        }
      }
    }
  }
}

bool cpu_has_avx512() {
  static const bool v =
      __builtin_cpu_supports("avx512f") != 0 && __builtin_cpu_supports("avx512bw") != 0;
  return v && g_int8_dispatch_cap.load(std::memory_order_relaxed) >= 2;
}

// GCC 12's avx512 extract intrinsics trip -Wmaybe-uninitialized on the
// unused merge operand of the maskless form; the value is never read.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

/// AVX-512 column width of the int8 microkernel (two zmm accumulators/row).
constexpr std::int64_t kNr3 = 32;

/// kMr x kNr3 AVX-512BW int8 microkernel: one vpmaddwd retires 32 MACs.
/// Same operands, same exact integer arithmetic — a pure throughput tier
/// above the AVX2 kernel for layers with >= 32 output channels. The
/// epilogue drops to the 256-bit path per ymm half (identical lane ops).
__attribute__((target("avx2,avx512f,avx512bw"))) void micro_tile_s8_avx512(
    std::int64_t kpc, const std::int32_t* apk, std::int64_t apk_stride, const std::int16_t* b,
    std::int64_t N, std::int32_t* c, bool first, const EpiCtx* epi) {
  static_assert(kMr == 4, "micro_tile_s8_avx512 is written for 4 rows");
  __m512i acc[kMr][2];
  for (int i = 0; i < kMr; ++i) {
    if (first) {
      acc[i][0] = _mm512_setzero_si512();
      acc[i][1] = _mm512_setzero_si512();
    } else {
      acc[i][0] = _mm512_loadu_si512(c + i * N);
      acc[i][1] = _mm512_loadu_si512(c + i * N + 16);
    }
  }
  for (std::int64_t kp = 0; kp < kpc; ++kp) {
    const std::int16_t* brow = b + kp * 2 * N;
    const __m512i b0 = _mm512_loadu_si512(brow);
    const __m512i b1 = _mm512_loadu_si512(brow + 32);
    for (int i = 0; i < kMr; ++i) {
      const __m512i ai = _mm512_set1_epi32(apk[i * apk_stride + kp]);
      acc[i][0] = _mm512_add_epi32(acc[i][0], _mm512_madd_epi16(ai, b0));
      acc[i][1] = _mm512_add_epi32(acc[i][1], _mm512_madd_epi16(ai, b1));
    }
  }
  if (epi != nullptr) {
    for (int i = 0; i < kMr; ++i) {
      for (int half = 0; half < 2; ++half) {
        const EpiCtx lane{epi->bias != nullptr ? epi->bias + half * 16 : nullptr,
                          epi->col_scales != nullptr ? epi->col_scales + half * 16 : nullptr,
                          epi->dst != nullptr ? epi->dst + i * N + half * 16 : nullptr,
                          epi->dstf != nullptr ? epi->dstf + i * N + half * 16 : nullptr,
                          epi->scale, epi->relu_cap, epi->inv, epi->zp};
        epi_store_row2(lane, _mm512_castsi512_si256(acc[i][half]),
                       _mm512_extracti64x4_epi64(acc[i][half], 1), 0, 0);
      }
    }
    return;
  }
  for (int i = 0; i < kMr; ++i) {
    _mm512_storeu_si512(c + i * N, acc[i][0]);
    _mm512_storeu_si512(c + i * N + 16, acc[i][1]);
  }
}

/// 16-column zmm variant for the N remainder (and narrow layers like a
/// 16-channel stem): one vpmaddwd covers the whole column tile, so narrow
/// GEMMs keep the 512-bit MAC density instead of dropping to AVX2.
__attribute__((target("avx2,avx512f,avx512bw"))) void micro_tile_s8_avx512_n16(
    std::int64_t kpc, const std::int32_t* apk, std::int64_t apk_stride, const std::int16_t* b,
    std::int64_t N, std::int32_t* c, bool first, const EpiCtx* epi) {
  static_assert(kMr == 4, "micro_tile_s8_avx512_n16 is written for 4 rows");
  __m512i acc[kMr];
  for (int i = 0; i < kMr; ++i) {
    acc[i] = first ? _mm512_setzero_si512() : _mm512_loadu_si512(c + i * N);
  }
  for (std::int64_t kp = 0; kp < kpc; ++kp) {
    const __m512i b0 = _mm512_loadu_si512(b + kp * 2 * N);
    for (int i = 0; i < kMr; ++i) {
      const __m512i ai = _mm512_set1_epi32(apk[i * apk_stride + kp]);
      acc[i] = _mm512_add_epi32(acc[i], _mm512_madd_epi16(ai, b0));
    }
  }
  if (epi != nullptr) {
    for (int i = 0; i < kMr; ++i) {
      const EpiCtx lane{epi->bias, epi->col_scales,
                        epi->dst != nullptr ? epi->dst + i * N : nullptr,
                        epi->dstf != nullptr ? epi->dstf + i * N : nullptr,
                        epi->scale, epi->relu_cap, epi->inv, epi->zp};
      epi_store_row2(lane, _mm512_castsi512_si256(acc[i]),
                     _mm512_extracti64x4_epi64(acc[i], 1), 0, 0);
    }
    return;
  }
  for (int i = 0; i < kMr; ++i) _mm512_storeu_si512(c + i * N, acc[i]);
}

/// AVX-512 depthwise kernel: 32 channels per step with hoisted (branch-
/// free) valid-tap ranges; products keep the 128-bit-sublane interleave
/// across taps and two permutex2var shuffles restore channel order before
/// the 16-wide epilogues. 16-channel and scalar remainders keep the same
/// exact arithmetic.
__attribute__((target("avx2,avx512f,avx512bw"))) void dwconv2d_s8_avx512(
    int batch, int ih, int iw, int c, int k, int stride, int pad_top, int pad_left, int oh,
    int ow, const std::int8_t* in, std::int32_t za, const std::int16_t* w16, const EpiCtx& epi) {
  const std::int64_t in_sample = static_cast<std::int64_t>(ih) * iw * c;
  const std::int64_t out_sample = static_cast<std::int64_t>(oh) * ow * c;
  const __m512i vza512 = _mm512_set1_epi16(static_cast<std::int16_t>(za));
  const __m256i vza256 = _mm256_set1_epi16(static_cast<std::int16_t>(za));
  // Un-interleave indices: lo = channels 0-15, hi = channels 16-31.
  const __m512i idx_lo = _mm512_set_epi32(23, 22, 21, 20, 7, 6, 5, 4, 19, 18, 17, 16, 3, 2, 1, 0);
  const __m512i idx_hi =
      _mm512_set_epi32(31, 30, 29, 28, 15, 14, 13, 12, 27, 26, 25, 24, 11, 10, 9, 8);
  for (int s = 0; s < batch; ++s) {
    const std::int8_t* ib = in + static_cast<std::int64_t>(s) * in_sample;
    const std::int64_t obase = static_cast<std::int64_t>(s) * out_sample;
    for (int oy = 0; oy < oh; ++oy) {
      const int ky0 = std::max(0, pad_top - oy * stride);
      const int ky1 = std::min(k, ih + pad_top - oy * stride);
      for (int ox = 0; ox < ow; ++ox) {
        const int kx0 = std::max(0, pad_left - ox * stride);
        const int kx1 = std::min(k, iw + pad_left - ox * stride);
        const std::int64_t o = obase + (static_cast<std::int64_t>(oy) * ow + ox) * c;
        int ch = 0;
        for (; ch + 32 <= c; ch += 32) {
          __m512i acc0 = _mm512_setzero_si512();
          __m512i acc1 = _mm512_setzero_si512();
          for (int ky = ky0; ky < ky1; ++ky) {
            const int iy = oy * stride + ky - pad_top;
            for (int kx = kx0; kx < kx1; ++kx) {
              const int ix = ox * stride + kx - pad_left;
              const std::int8_t* p = ib + (static_cast<std::int64_t>(iy) * iw + ix) * c + ch;
              const __m512i a16 = _mm512_sub_epi16(
                  _mm512_cvtepi8_epi16(
                      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))),
                  vza512);
              const __m512i wv = _mm512_loadu_si512(
                  w16 + (static_cast<std::int64_t>(ky) * k + kx) * c + ch);
              const __m512i lo = _mm512_mullo_epi16(a16, wv);
              const __m512i hi = _mm512_mulhi_epi16(a16, wv);
              acc0 = _mm512_add_epi32(acc0, _mm512_unpacklo_epi16(lo, hi));
              acc1 = _mm512_add_epi32(acc1, _mm512_unpackhi_epi16(lo, hi));
            }
          }
          const __m512i l16 = _mm512_permutex2var_epi32(acc0, idx_lo, acc1);
          const __m512i h16 = _mm512_permutex2var_epi32(acc0, idx_hi, acc1);
          for (int half = 0; half < 2; ++half) {
            const __m512i v = half == 0 ? l16 : h16;
            const std::int64_t off = o + ch + half * 16;
            const EpiCtx lane{epi.bias != nullptr ? epi.bias + ch + half * 16 : nullptr,
                              epi.col_scales != nullptr ? epi.col_scales + ch + half * 16
                                                        : nullptr,
                              epi.dst != nullptr ? epi.dst + off : nullptr,
                              epi.dstf != nullptr ? epi.dstf + off : nullptr,
                              epi.scale, epi.relu_cap, epi.inv, epi.zp};
            epi_store_row2(lane, _mm512_castsi512_si256(v), _mm512_extracti64x4_epi64(v, 1), 0,
                           0);
          }
        }
        for (; ch + 16 <= c; ch += 16) {
          __m256i acc0 = _mm256_setzero_si256();
          __m256i acc1 = _mm256_setzero_si256();
          for (int ky = ky0; ky < ky1; ++ky) {
            const int iy = oy * stride + ky - pad_top;
            for (int kx = kx0; kx < kx1; ++kx) {
              const int ix = ox * stride + kx - pad_left;
              const std::int8_t* p = ib + (static_cast<std::int64_t>(iy) * iw + ix) * c + ch;
              const __m256i a16 = _mm256_sub_epi16(
                  _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))),
                  vza256);
              const __m256i wv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                  w16 + (static_cast<std::int64_t>(ky) * k + kx) * c + ch));
              const __m256i lo = _mm256_mullo_epi16(a16, wv);
              const __m256i hi = _mm256_mulhi_epi16(a16, wv);
              acc0 = _mm256_add_epi32(acc0, _mm256_unpacklo_epi16(lo, hi));
              acc1 = _mm256_add_epi32(acc1, _mm256_unpackhi_epi16(lo, hi));
            }
          }
          const __m256i lo8 = _mm256_permute2x128_si256(acc0, acc1, 0x20);
          const __m256i hi8 = _mm256_permute2x128_si256(acc0, acc1, 0x31);
          const EpiCtx lane{epi.bias != nullptr ? epi.bias + ch : nullptr,
                            epi.col_scales != nullptr ? epi.col_scales + ch : nullptr,
                            epi.dst != nullptr ? epi.dst + o + ch : nullptr,
                            epi.dstf != nullptr ? epi.dstf + o + ch : nullptr,
                            epi.scale, epi.relu_cap, epi.inv, epi.zp};
          epi_store_row2(lane, lo8, hi8, 0, 0);
        }
        for (; ch < c; ++ch) {
          std::int32_t acc = 0;
          for (int ky = ky0; ky < ky1; ++ky) {
            const int iy = oy * stride + ky - pad_top;
            for (int kx = kx0; kx < kx1; ++kx) {
              const int ix = ox * stride + kx - pad_left;
              const std::int32_t w = w16[(static_cast<std::int64_t>(ky) * k + kx) * c + ch];
              const std::int32_t a = ib[(static_cast<std::int64_t>(iy) * iw + ix) * c + ch] - za;
              acc += a * w;
            }
          }
          epilogue_scalar(epi, acc, ch, o + ch);
        }
      }
    }
  }
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // IOB_GEMM_AVX2_DISPATCH

}  // namespace

void set_int8_dispatch_cap(int cap) {
  g_int8_dispatch_cap.store(cap < 0 ? std::numeric_limits<int>::max() : cap,
                            std::memory_order_relaxed);
}

void gemm_s8(std::int64_t M, std::int64_t N, std::int64_t K, const std::int8_t* A,
             std::int32_t za, const std::int16_t* bop, std::int32_t* C,
             const QuantEpilogue* epi) {
  IOB_EXPECTS(M >= 0 && N > 0 && K > 0, "gemm dims must be positive");
  // |a - za| and |w - zw| are <= 255, so a K-term dot product is bounded by
  // K * 255^2; K < 2^15 keeps it inside int32 with margin.
  IOB_EXPECTS(K < (std::int64_t{1} << 15), "int8 gemm K out of exact int32 range");
  IOB_EXPECTS(epi == nullptr || ((epi->dst != nullptr) != (epi->dstf != nullptr)),
              "quant epilogue needs exactly one target");
  const std::int64_t kp_count = (K + 1) / 2;
  for (std::int64_t kp0 = 0; kp0 < kp_count; kp0 += kKcPairs) {
    const std::int64_t kpc = std::min(kKcPairs, kp_count - kp0);
    const bool first = kp0 == 0;
    const bool last = kp0 + kpc == kp_count;
    const std::int16_t* bk = bop + kp0 * 2 * N;
    std::int64_t m = 0;
#if IOB_GEMM_SSE2
    std::int32_t apk[kMr * kKcPairs];
#if IOB_GEMM_AVX2_DISPATCH
    const bool avx2 = cpu_has_avx2();
    const bool avx512 = cpu_has_avx512();
#else
    const bool avx2 = false;
#endif
    for (; m + kMr <= M; m += kMr) {
      pack_a_tile_s8(A + m * K, K, kp0, kpc, za, kMr, apk);
      std::int64_t n = 0;
#if IOB_GEMM_AVX2_DISPATCH
      if (avx512) {
        for (; n + kNr3 <= N; n += kNr3) {
          const EpiCtx ctx = epi != nullptr ? epi_tile(*epi, m, n, N) : EpiCtx{};
          micro_tile_s8_avx512(kpc, apk, kpc, bk + 2 * n, N, C + m * N + n, first,
                               last && epi != nullptr ? &ctx : nullptr);
        }
        for (; n + kNr2 <= N; n += kNr2) {
          const EpiCtx ctx = epi != nullptr ? epi_tile(*epi, m, n, N) : EpiCtx{};
          micro_tile_s8_avx512_n16(kpc, apk, kpc, bk + 2 * n, N, C + m * N + n, first,
                                   last && epi != nullptr ? &ctx : nullptr);
        }
      }
      if (avx2) {
        for (; n + kNr2 <= N; n += kNr2) {
          const EpiCtx ctx = epi != nullptr ? epi_tile(*epi, m, n, N) : EpiCtx{};
          micro_tile_s8_avx2(kpc, apk, kpc, bk + 2 * n, N, C + m * N + n, first,
                             last && epi != nullptr ? &ctx : nullptr);
        }
      }
#else
      (void)avx2;
#endif
      for (; n + kNr <= N; n += kNr) {
        const EpiCtx ctx = epi != nullptr ? epi_tile(*epi, m, n, N) : EpiCtx{};
        micro_tile_s8(kpc, apk, kpc, bk + 2 * n, N, C + m * N + n, first,
                      last && epi != nullptr ? &ctx : nullptr);
      }
      if (n < N) {
        const EpiCtx ctx = epi != nullptr ? epi_tile(*epi, m, n, N) : EpiCtx{};
        edge_tile_s8(kMr, N - n, kpc, A + m * K, K, kp0, za, bk + 2 * n, N, C + m * N + n, first,
                     last && epi != nullptr ? &ctx : nullptr);
      }
    }
#endif
    if (m < M) {
      const EpiCtx ctx = epi != nullptr ? epi_tile(*epi, m, 0, N) : EpiCtx{};
      edge_tile_s8(M - m, N, kpc, A + m * K, K, kp0, za, bk, N, C + m * N, first,
                   last && epi != nullptr ? &ctx : nullptr);
    }
  }
}

void gemm_s8_pa(std::int64_t M, std::int64_t N, std::int64_t K, const std::int32_t* Ap,
                const std::int16_t* bop, std::int32_t* C, const QuantEpilogue* epi) {
  IOB_EXPECTS(M >= 0 && N > 0 && K > 0, "gemm dims must be positive");
  IOB_EXPECTS(K < (std::int64_t{1} << 15), "int8 gemm K out of exact int32 range");
  IOB_EXPECTS(epi == nullptr || ((epi->dst != nullptr) != (epi->dstf != nullptr)),
              "quant epilogue needs exactly one target");
  const std::int64_t kp_count = (K + 1) / 2;
  for (std::int64_t kp0 = 0; kp0 < kp_count; kp0 += kKcPairs) {
    const std::int64_t kpc = std::min(kKcPairs, kp_count - kp0);
    const bool first = kp0 == 0;
    const bool last = kp0 + kpc == kp_count;
    const std::int16_t* bk = bop + kp0 * 2 * N;
    std::int64_t m = 0;
#if IOB_GEMM_SSE2
#if IOB_GEMM_AVX2_DISPATCH
    const bool avx2 = cpu_has_avx2();
    const bool avx512 = cpu_has_avx512();
#endif
    for (; m + kMr <= M; m += kMr) {
      // The panel already holds this tile's pairs in the `pack_a_tile_s8`
      // layout; the microkernels just stream it with the panel's own pair
      // stride instead of the stack tile's.
      const std::int32_t* apk = Ap + (m / kMr) * (kMr * kp_count) + kp0;
      std::int64_t n = 0;
#if IOB_GEMM_AVX2_DISPATCH
      if (avx512) {
        for (; n + kNr3 <= N; n += kNr3) {
          const EpiCtx ctx = epi != nullptr ? epi_tile(*epi, m, n, N) : EpiCtx{};
          micro_tile_s8_avx512(kpc, apk, kp_count, bk + 2 * n, N, C + m * N + n, first,
                               last && epi != nullptr ? &ctx : nullptr);
        }
        for (; n + kNr2 <= N; n += kNr2) {
          const EpiCtx ctx = epi != nullptr ? epi_tile(*epi, m, n, N) : EpiCtx{};
          micro_tile_s8_avx512_n16(kpc, apk, kp_count, bk + 2 * n, N, C + m * N + n, first,
                                   last && epi != nullptr ? &ctx : nullptr);
        }
      }
      if (avx2) {
        for (; n + kNr2 <= N; n += kNr2) {
          const EpiCtx ctx = epi != nullptr ? epi_tile(*epi, m, n, N) : EpiCtx{};
          micro_tile_s8_avx2(kpc, apk, kp_count, bk + 2 * n, N, C + m * N + n, first,
                             last && epi != nullptr ? &ctx : nullptr);
        }
      }
#endif
      for (; n + kNr <= N; n += kNr) {
        const EpiCtx ctx = epi != nullptr ? epi_tile(*epi, m, n, N) : EpiCtx{};
        micro_tile_s8(kpc, apk, kp_count, bk + 2 * n, N, C + m * N + n, first,
                      last && epi != nullptr ? &ctx : nullptr);
      }
      if (n < N) {
        const EpiCtx ctx = epi != nullptr ? epi_tile(*epi, m, n, N) : EpiCtx{};
        edge_tile_s8_pa(kMr, N - n, kpc, apk, kp_count, bk + 2 * n, N, C + m * N + n, first,
                        last && epi != nullptr ? &ctx : nullptr);
      }
    }
#endif
    if (m < M) {
      const EpiCtx ctx = epi != nullptr ? epi_tile(*epi, m, 0, N) : EpiCtx{};
      edge_tile_s8_pa(M - m, N, kpc, Ap + (m / kMr) * (kMr * kp_count) + kp0, kp_count, bk, N,
                      C + m * N, first, last && epi != nullptr ? &ctx : nullptr);
    }
  }
}

void requantize_s8(const std::int32_t* acc, std::int64_t M, std::int64_t N, const float* bias,
                   float scale, float relu_cap, float out_scale, std::int32_t out_zero,
                   std::int8_t* dst) {
  IOB_EXPECTS(out_scale > 0.0f, "requantize needs a positive output scale");
  const float inv = 1.0f / out_scale;
  for (std::int64_t m = 0; m < M; ++m) {
    const std::int32_t* arow = acc + m * N;
    std::int8_t* drow = dst + m * N;
    for (std::int64_t n = 0; n < N; ++n) {
      drow[n] = requantize_value(epilogue_real(arow[n], bias, n, scale, relu_cap), inv, out_zero);
    }
  }
}

void dequantize_f32(const std::int32_t* acc, std::int64_t M, std::int64_t N, const float* bias,
                    float scale, float relu_cap, float* dst) {
  for (std::int64_t m = 0; m < M; ++m) {
    const std::int32_t* arow = acc + m * N;
    float* drow = dst + m * N;
    for (std::int64_t n = 0; n < N; ++n) {
      drow[n] = epilogue_real(arow[n], bias, n, scale, relu_cap);
    }
  }
}

void quantize_f32_to_s8(const float* src, std::int64_t n, float scale, std::int32_t zero_point,
                        std::int8_t* dst) {
  IOB_EXPECTS(scale > 0.0f, "quantize needs a positive scale");
  const float inv = 1.0f / scale;
  std::int64_t i = 0;
#if IOB_GEMM_SSE2
  // Same per-lane ops as the scalar loop (mul, round-half-away via the
  // sign-or trick, truncate, add zp); packs saturation == the int8 clamp.
  const __m128 vinv = _mm_set1_ps(inv);
  const __m128 vhalf = _mm_set1_ps(0.5f);
  const __m128 vsign = _mm_set1_ps(-0.0f);
  const __m128i vzp = _mm_set1_epi32(zero_point);
  for (; i + 8 <= n; i += 8) {
    const __m128 v0 = _mm_mul_ps(_mm_loadu_ps(src + i), vinv);
    const __m128 v1 = _mm_mul_ps(_mm_loadu_ps(src + i + 4), vinv);
    const __m128 h0 = _mm_or_ps(_mm_and_ps(v0, vsign), vhalf);
    const __m128 h1 = _mm_or_ps(_mm_and_ps(v1, vsign), vhalf);
    const __m128i q0 = _mm_add_epi32(_mm_cvttps_epi32(_mm_add_ps(v0, h0)), vzp);
    const __m128i q1 = _mm_add_epi32(_mm_cvttps_epi32(_mm_add_ps(v1, h1)), vzp);
    const __m128i p16 = _mm_packs_epi32(q0, q1);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + i), _mm_packs_epi16(p16, p16));
  }
#endif
  for (; i < n; ++i) dst[i] = requantize_value(src[i], inv, zero_point);
}

namespace {

inline void fill_s8(std::int8_t* dst, std::int64_t n, std::int8_t v) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = v;
}

/// Inline byte copy: patch slices are tiny (ic bytes, often 3-64), where a
/// libc memcpy call costs more than the copy itself (same rationale as the
/// f32 `copy_floats`).
inline void copy_s8(std::int8_t* dst, const std::int8_t* src, std::int64_t n) {
  if (n >= 64) {
    std::memcpy(dst, src, static_cast<std::size_t>(n));
  } else {
    for (std::int64_t i = 0; i < n; ++i) dst[i] = src[i];
  }
}

}  // namespace

void im2col_s8_nhwc(int batch, int ih, int iw, int ic, int kh, int kw, int sh, int sw, int pad_top,
                    int pad_left, int oh, int ow, std::int8_t zero_point, const std::int8_t* in,
                    std::int8_t* col) {
  const std::int64_t sample_elems = static_cast<std::int64_t>(ih) * iw * ic;
  for (int s = 0; s < batch; ++s) {
    const std::int8_t* ib = in + static_cast<std::int64_t>(s) * sample_elems;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        const int x0 = ox * sw - pad_left;
        for (int ky = 0; ky < kh; ++ky) {
          const int iy = oy * sh + ky - pad_top;
          if (iy < 0 || iy >= ih) {
            fill_s8(col, static_cast<std::int64_t>(kw) * ic, zero_point);
            col += static_cast<std::int64_t>(kw) * ic;
            continue;
          }
          const std::int8_t* irow = ib + static_cast<std::int64_t>(iy) * iw * ic;
          if (x0 >= 0 && x0 + kw <= iw) {
            copy_s8(col, irow + static_cast<std::int64_t>(x0) * ic,
                    static_cast<std::int64_t>(kw) * ic);
            col += static_cast<std::int64_t>(kw) * ic;
            continue;
          }
          for (int kx = 0; kx < kw; ++kx) {
            const int ix = x0 + kx;
            if (ix < 0 || ix >= iw) {
              fill_s8(col, ic, zero_point);
            } else {
              copy_s8(col, irow + static_cast<std::int64_t>(ix) * ic, ic);
            }
            col += ic;
          }
        }
      }
    }
  }
}

namespace {

/// Widen a tap slice into the panel's int16 stream: dst[i] = src[i] - za.
/// Same SSE2 sign-extend / subtract / store sweep as `pack_a_tile_s8`.
inline void widen_sub_s16(std::int16_t* dst, const std::int8_t* src, std::int64_t n,
                          std::int32_t za) {
  std::int64_t e = 0;
#if IOB_GEMM_SSE2
  const __m128i vza = _mm_set1_epi16(static_cast<std::int16_t>(za));
  const __m128i vz = _mm_setzero_si128();
  for (; e + 8 <= n; e += 8) {
    const __m128i a8 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + e));
    const __m128i a16 = _mm_sub_epi16(_mm_unpacklo_epi8(a8, _mm_cmpgt_epi8(vz, a8)), vza);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + e), a16);
  }
#endif
  for (; e < n; ++e) dst[e] = static_cast<std::int16_t>(src[e] - za);
}

inline void fill_zero_s16(std::int16_t* dst, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = 0;
}

}  // namespace

void im2col_pack_a_s8_nhwc(int batch, int ih, int iw, int ic, int kh, int kw, int sh, int sw,
                           int pad_top, int pad_left, int oh, int ow, std::int8_t zero_point,
                           const std::int8_t* in, std::int32_t* pack) {
  const std::int64_t sample_elems = static_cast<std::int64_t>(ih) * iw * ic;
  const std::int64_t K = static_cast<std::int64_t>(kh) * kw * ic;
  const std::int64_t kp_count = (K + 1) / 2;
  const std::int32_t za = zero_point;
  std::int64_t r = 0;
  for (int s = 0; s < batch; ++s) {
    const std::int8_t* ib = in + static_cast<std::int64_t>(s) * sample_elems;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        // Row r's pairs are contiguous int16 within its panel slot — the
        // writes stream, unlike the f32 pack's lane scatter.
        auto* drow =
            reinterpret_cast<std::int16_t*>(pack + (r / kMr) * (kMr * kp_count) + (r % kMr) * kp_count);
        std::int64_t j = 0;
        const int x0 = ox * sw - pad_left;
        for (int ky = 0; ky < kh; ++ky) {
          const int iy = oy * sh + ky - pad_top;
          if (iy < 0 || iy >= ih) {
            // A pad tap's staged value IS the zero point: widened it is 0.
            fill_zero_s16(drow + j, static_cast<std::int64_t>(kw) * ic);
            j += static_cast<std::int64_t>(kw) * ic;
            continue;
          }
          const std::int8_t* irow = ib + static_cast<std::int64_t>(iy) * iw * ic;
          if (x0 >= 0 && x0 + kw <= iw) {
            widen_sub_s16(drow + j, irow + static_cast<std::int64_t>(x0) * ic,
                          static_cast<std::int64_t>(kw) * ic, za);
            j += static_cast<std::int64_t>(kw) * ic;
            continue;
          }
          // The in-range kx taps are one contiguous source slice; zero the
          // out-of-range head/tail and widen the middle in one sweep.
          const int kx_lo = std::min(kw, std::max(0, -x0));
          const int kx_hi = std::max(kx_lo, std::min(kw, iw - x0));
          fill_zero_s16(drow + j, static_cast<std::int64_t>(kx_lo) * ic);
          widen_sub_s16(drow + j + static_cast<std::int64_t>(kx_lo) * ic,
                        irow + static_cast<std::int64_t>(x0 + kx_lo) * ic,
                        static_cast<std::int64_t>(kx_hi - kx_lo) * ic, za);
          fill_zero_s16(drow + j + static_cast<std::int64_t>(kx_hi) * ic,
                        static_cast<std::int64_t>(kw - kx_hi) * ic);
          j += static_cast<std::int64_t>(kw) * ic;
        }
        if ((K & 1) != 0) drow[K] = 0;  // odd-K tail: pad the last pair's high half
        ++r;
      }
    }
  }
}

void widen_dw_weights_s8(const std::int8_t* w, std::int64_t taps, std::int64_t c,
                         const std::int32_t* zw, std::int16_t* dst) {
  for (std::int64_t t = 0; t < taps; ++t) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      dst[t * c + ch] = static_cast<std::int16_t>(w[t * c + ch] - zw[ch]);
    }
  }
}

void dwconv2d_s8(int batch, int ih, int iw, int c, int k, int stride, int pad_top, int pad_left,
                 int oh, int ow, const std::int8_t* in, std::int32_t za,
                 const std::int16_t* w16, const float* bias, const float* col_scales,
                 float relu_cap, float out_scale, std::int32_t out_zero, std::int8_t* out,
                 float* outf) {
  IOB_EXPECTS((out != nullptr) != (outf != nullptr), "dwconv2d_s8 needs exactly one output");
  const EpiCtx epi{bias, col_scales, out, outf, 1.0f, relu_cap,
                   out != nullptr ? 1.0f / out_scale : 0.0f, out_zero};
  const std::int64_t in_sample = static_cast<std::int64_t>(ih) * iw * c;
  const std::int64_t out_sample = static_cast<std::int64_t>(oh) * ow * c;
#if IOB_GEMM_AVX2_DISPATCH
  if (cpu_has_avx512()) {
    dwconv2d_s8_avx512(batch, ih, iw, c, k, stride, pad_top, pad_left, oh, ow, in, za, w16, epi);
    return;
  }
  if (cpu_has_avx2()) {
    dwconv2d_s8_avx2(batch, ih, iw, c, k, stride, pad_top, pad_left, oh, ow, in, za, w16, epi);
    return;
  }
#endif
  for (int s = 0; s < batch; ++s) {
    const std::int8_t* ib = in + static_cast<std::int64_t>(s) * in_sample;
    const std::int64_t obase = static_cast<std::int64_t>(s) * out_sample;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        const std::int64_t o = obase + (static_cast<std::int64_t>(oy) * ow + ox) * c;
        int ch = 0;
#if IOB_GEMM_SSE2
        // Channels-vectorized: 8 lanes per step — sign-extend the int8
        // activations, subtract the zero point, widening-multiply against
        // the pre-widened weights (mullo/mulhi + unpack), accumulate int32.
        const __m128i vza = _mm_set1_epi16(static_cast<std::int16_t>(za));
        const __m128i vz = _mm_setzero_si128();
        for (; ch + 8 <= c; ch += 8) {
          __m128i acc0 = _mm_setzero_si128();
          __m128i acc1 = _mm_setzero_si128();
          for (int ky = 0; ky < k; ++ky) {
            const int iy = oy * stride + ky - pad_top;
            if (iy < 0 || iy >= ih) continue;
            for (int kx = 0; kx < k; ++kx) {
              const int ix = ox * stride + kx - pad_left;
              if (ix < 0 || ix >= iw) continue;
              const std::int8_t* p = ib + (static_cast<std::int64_t>(iy) * iw + ix) * c + ch;
              const __m128i a8 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
              const __m128i a16 =
                  _mm_sub_epi16(_mm_unpacklo_epi8(a8, _mm_cmpgt_epi8(vz, a8)), vza);
              const __m128i wv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                  w16 + (static_cast<std::int64_t>(ky) * k + kx) * c + ch));
              const __m128i lo = _mm_mullo_epi16(a16, wv);
              const __m128i hi = _mm_mulhi_epi16(a16, wv);
              acc0 = _mm_add_epi32(acc0, _mm_unpacklo_epi16(lo, hi));
              acc1 = _mm_add_epi32(acc1, _mm_unpackhi_epi16(lo, hi));
            }
          }
          const EpiCtx lane{bias != nullptr ? bias + ch : nullptr,
                            col_scales != nullptr ? col_scales + ch : nullptr,
                            out != nullptr ? out + o + ch : nullptr,
                            outf != nullptr ? outf + o + ch : nullptr,
                            epi.scale, epi.relu_cap, epi.inv, epi.zp};
          epi_store_row(lane, acc0, acc1, 0, 0);
        }
#endif
        // Scalar remainder (and the portable build): identical integer and
        // float expressions, so results match the vector lanes bitwise.
        for (; ch < c; ++ch) {
          std::int32_t acc = 0;
          for (int ky = 0; ky < k; ++ky) {
            const int iy = oy * stride + ky - pad_top;
            if (iy < 0 || iy >= ih) continue;
            for (int kx = 0; kx < k; ++kx) {
              const int ix = ox * stride + kx - pad_left;
              if (ix < 0 || ix >= iw) continue;
              const std::int32_t w = w16[(static_cast<std::int64_t>(ky) * k + kx) * c + ch];
              const std::int32_t a = ib[(static_cast<std::int64_t>(iy) * iw + ix) * c + ch] - za;
              acc += a * w;
            }
          }
          epilogue_scalar(epi, acc, ch, o + ch);
        }
      }
    }
  }
}

}  // namespace iob::nn
