#include "nn/gemm.hpp"

#include <algorithm>
#include <cstring>

#if defined(__SSE2__) || defined(_M_X64) || defined(_M_AMD64)
#define IOB_GEMM_SSE2 1
#include <emmintrin.h>
#endif

#include "common/expect.hpp"

namespace iob::nn {

namespace {

/// kMr x kNr microkernel: accumulate `kc` terms of A*B into the C tile.
/// On the first K block the tile starts from the bias row; afterwards the
/// partial sums re-load from C, so the per-element accumulation order over
/// the whole K range is the plain increasing-k order.
///
/// The SSE2 path issues the exact same per-lane mul/add sequence as the
/// portable loop (no FMA — fusing would skip the intermediate rounding the
/// seed loops perform, breaking bit-exactness), it just pins the 4x8
/// accumulator block into eight xmm registers so the k loop runs ~2 ops
/// per 4 MACs instead of the compiler's spill-prone autovectorization.
#if IOB_GEMM_SSE2
void micro_tile(std::int64_t kc, const float* a, std::int64_t K, const float* b, std::int64_t N,
                float* c, const float* bias, bool first) {
  static_assert(kMr == 4 && kNr == 8, "micro_tile is written for a 4x8 register tile");
  __m128 acc[kMr][2];
  if (first) {
    const __m128 b0 = bias != nullptr ? _mm_loadu_ps(bias) : _mm_setzero_ps();
    const __m128 b1 = bias != nullptr ? _mm_loadu_ps(bias + 4) : _mm_setzero_ps();
    for (int i = 0; i < kMr; ++i) {
      acc[i][0] = b0;
      acc[i][1] = b1;
    }
  } else {
    for (int i = 0; i < kMr; ++i) {
      acc[i][0] = _mm_loadu_ps(c + i * N);
      acc[i][1] = _mm_loadu_ps(c + i * N + 4);
    }
  }
  for (std::int64_t k = 0; k < kc; ++k) {
    const float* brow = b + k * N;
    const __m128 b0 = _mm_loadu_ps(brow);
    const __m128 b1 = _mm_loadu_ps(brow + 4);
    for (int i = 0; i < kMr; ++i) {
      const __m128 ai = _mm_set1_ps(a[i * K + k]);
      acc[i][0] = _mm_add_ps(acc[i][0], _mm_mul_ps(ai, b0));
      acc[i][1] = _mm_add_ps(acc[i][1], _mm_mul_ps(ai, b1));
    }
  }
  for (int i = 0; i < kMr; ++i) {
    _mm_storeu_ps(c + i * N, acc[i][0]);
    _mm_storeu_ps(c + i * N + 4, acc[i][1]);
  }
}
#else
void micro_tile(std::int64_t kc, const float* a, std::int64_t K, const float* b, std::int64_t N,
                float* c, const float* bias, bool first) {
  float acc[kMr][kNr];
  for (int i = 0; i < kMr; ++i) {
    for (int j = 0; j < kNr; ++j) {
      acc[i][j] = first ? (bias != nullptr ? bias[j] : 0.0f) : c[i * N + j];
    }
  }
  for (std::int64_t k = 0; k < kc; ++k) {
    const float* brow = b + k * N;
    for (int i = 0; i < kMr; ++i) {
      const float ai = a[i * K + k];
      for (int j = 0; j < kNr; ++j) acc[i][j] += ai * brow[j];
    }
  }
  for (int i = 0; i < kMr; ++i) {
    for (int j = 0; j < kNr; ++j) c[i * N + j] = acc[i][j];
  }
}
#endif

/// Scalar edge path for the M/N remainders, same accumulation order.
void edge_tile(std::int64_t rows, std::int64_t cols, std::int64_t kc, const float* a,
               std::int64_t K, const float* b, std::int64_t N, float* c, const float* bias,
               bool first) {
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      float acc = first ? (bias != nullptr ? bias[j] : 0.0f) : c[i * N + j];
      const float* arow = a + i * K;
      for (std::int64_t k = 0; k < kc; ++k) acc += arow[k] * b[k * N + j];
      c[i * N + j] = acc;
    }
  }
}

}  // namespace

void pack_k_major(const float* src, std::int64_t rows, std::int64_t cols, float* dst) {
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) dst[c * rows + r] = src[r * cols + c];
  }
}

void gemm_blocked(std::int64_t M, std::int64_t N, std::int64_t K, const float* A, const float* B,
                  const float* bias, float* C) {
  IOB_EXPECTS(M >= 0 && N > 0 && K > 0, "gemm dims must be positive");
  for (std::int64_t k0 = 0; k0 < K; k0 += kKc) {
    const std::int64_t kc = std::min(kKc, K - k0);
    const bool first = k0 == 0;
    const float* bk = B + k0 * N;
    std::int64_t m = 0;
    for (; m + kMr <= M; m += kMr) {
      const float* am = A + m * K + k0;
      float* cm = C + m * N;
      std::int64_t n = 0;
      for (; n + kNr <= N; n += kNr) {
        micro_tile(kc, am, K, bk + n, N, cm + n, bias != nullptr ? bias + n : nullptr, first);
      }
      if (n < N) edge_tile(kMr, N - n, kc, am, K, bk + n, N, cm + n,
                           bias != nullptr ? bias + n : nullptr, first);
    }
    if (m < M) {
      edge_tile(M - m, N, kc, A + m * K + k0, K, bk, N, C + m * N, bias, first);
    }
  }
}

namespace {

/// Inline float copy: the per-tap slices are tiny (ic floats, often 3-64),
/// where a libc memcpy call costs more than the copy itself.
inline void copy_floats(float* dst, const float* src, std::int64_t n) {
  if (n >= 64) {
    std::memcpy(dst, src, static_cast<std::size_t>(n) * sizeof(float));
  } else {
    for (std::int64_t i = 0; i < n; ++i) dst[i] = src[i];
  }
}

inline void zero_floats(float* dst, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = 0.0f;
}

}  // namespace

void im2col_nhwc(int batch, int ih, int iw, int ic, int kh, int kw, int sh, int sw, int pad_top,
                 int pad_left, int oh, int ow, const float* in, float* col) {
  const std::int64_t sample_elems = static_cast<std::int64_t>(ih) * iw * ic;
  for (int s = 0; s < batch; ++s) {
    const float* ib = in + static_cast<std::int64_t>(s) * sample_elems;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        const int x0 = ox * sw - pad_left;
        for (int ky = 0; ky < kh; ++ky) {
          const int iy = oy * sh + ky - pad_top;
          if (iy < 0 || iy >= ih) {
            zero_floats(col, static_cast<std::int64_t>(kw) * ic);
            col += static_cast<std::int64_t>(kw) * ic;
            continue;
          }
          const float* irow = ib + static_cast<std::int64_t>(iy) * iw * ic;
          if (x0 >= 0 && x0 + kw <= iw) {
            // Interior: the kw taps of this patch row are consecutive input
            // pixels — one contiguous copy.
            copy_floats(col, irow + static_cast<std::int64_t>(x0) * ic,
                        static_cast<std::int64_t>(kw) * ic);
            col += static_cast<std::int64_t>(kw) * ic;
            continue;
          }
          for (int kx = 0; kx < kw; ++kx) {
            const int ix = x0 + kx;
            if (ix < 0 || ix >= iw) {
              zero_floats(col, ic);
            } else {
              copy_floats(col, irow + static_cast<std::int64_t>(ix) * ic, ic);
            }
            col += ic;
          }
        }
      }
    }
  }
}

void dwconv2d_nhwc(int batch, int ih, int iw, int c, int k, int stride, int pad_top, int pad_left,
                   int oh, int ow, const float* in, const float* wpacked, const float* bias,
                   float* out) {
  const std::int64_t in_sample = static_cast<std::int64_t>(ih) * iw * c;
  const std::int64_t out_sample = static_cast<std::int64_t>(oh) * ow * c;
  for (int s = 0; s < batch; ++s) {
    const float* ib = in + static_cast<std::int64_t>(s) * in_sample;
    float* ob = out + static_cast<std::int64_t>(s) * out_sample;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        float* o = ob + (static_cast<std::int64_t>(oy) * ow + ox) * c;
        for (int ch = 0; ch < c; ++ch) o[ch] = bias[ch];
        for (int ky = 0; ky < k; ++ky) {
          const int iy = oy * stride + ky - pad_top;
          if (iy < 0 || iy >= ih) continue;
          for (int kx = 0; kx < k; ++kx) {
            const int ix = ox * stride + kx - pad_left;
            if (ix < 0 || ix >= iw) continue;
            const float* w = wpacked + (static_cast<std::int64_t>(ky) * k + kx) * c;
            const float* p = ib + (static_cast<std::int64_t>(iy) * iw + ix) * c;
            for (int ch = 0; ch < c; ++ch) o[ch] += w[ch] * p[ch];
          }
        }
      }
    }
  }
}

}  // namespace iob::nn
