#include "nn/workspace.hpp"

#include "common/expect.hpp"
#include "nn/model.hpp"
#include "nn/qmodel.hpp"

namespace iob::nn {

void Workspace::reserve_activations(std::int64_t elems) {
  IOB_EXPECTS(elems >= 0, "activation size must be non-negative");
  if (static_cast<std::int64_t>(ping_.size()) < elems) {
    ping_.resize(static_cast<std::size_t>(elems));
    pong_.resize(static_cast<std::size_t>(elems));
  }
}

void Workspace::reserve_im2col(std::int64_t elems) {
  IOB_EXPECTS(elems >= 0, "im2col size must be non-negative");
  if (static_cast<std::int64_t>(im2col_.size()) < elems) {
    im2col_.resize(static_cast<std::size_t>(elems));
  }
}

void Workspace::reserve_activations_s8(std::int64_t elems) {
  IOB_EXPECTS(elems >= 0, "activation size must be non-negative");
  if (static_cast<std::int64_t>(ping8_.size()) < elems) {
    ping8_.resize(static_cast<std::size_t>(elems));
    pong8_.resize(static_cast<std::size_t>(elems));
  }
}

void Workspace::reserve_im2col_s8(std::int64_t elems) {
  IOB_EXPECTS(elems >= 0, "im2col size must be non-negative");
  if (static_cast<std::int64_t>(im2col8_.size()) < elems) {
    im2col8_.resize(static_cast<std::size_t>(elems));
  }
}

void Workspace::reserve_acc(std::int64_t elems) {
  IOB_EXPECTS(elems >= 0, "accumulator size must be non-negative");
  if (static_cast<std::int64_t>(acc_.size()) < elems) {
    acc_.resize(static_cast<std::size_t>(elems));
  }
}

void Workspace::reserve_pack_a_s8(std::int64_t elems) {
  IOB_EXPECTS(elems >= 0, "pack size must be non-negative");
  if (static_cast<std::int64_t>(pack8_.size()) < elems) {
    pack8_.resize(static_cast<std::size_t>(elems));
  }
}

void Workspace::configure(const Model& model, int max_batch) {
  IOB_EXPECTS(max_batch >= 1, "max_batch must be >= 1");
  reserve_activations(model.max_activation_elems() * max_batch);
  // +3 covers the packed-A panel round-up (ceil(M / kMr) * kMr rows): the
  // worst case adds 3 rows x K <= 3 x scratch_elems over the exact size.
  reserve_im2col(model.max_scratch_elems() * (static_cast<std::int64_t>(max_batch) + 3));
}

void Workspace::configure(const QuantizedModel& model, int max_batch) {
  IOB_EXPECTS(max_batch >= 1, "max_batch must be >= 1");
  reserve_activations_s8(model.max_activation_elems() * max_batch);
  reserve_im2col_s8(model.max_scratch_elems() * max_batch);
  reserve_acc(model.max_acc_elems() * max_batch);
  // Same +3 panel round-up bound as the f32 im2col arena above.
  reserve_pack_a_s8(model.max_pack_a_elems() * (static_cast<std::int64_t>(max_batch) + 3));
  // The float tail (and the dequantized logits) live in the f32 arena.
  reserve_activations(model.max_activation_elems() * max_batch);
}

namespace detail {

Workspace& thread_workspace() {
  static thread_local Workspace ws;
  return ws;
}

}  // namespace detail

}  // namespace iob::nn
