#include "nn/conv.hpp"

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <utility>

#include "common/expect.hpp"
#include "nn/gemm.hpp"
#include "nn/workspace.hpp"

namespace iob::nn {

namespace {

/// Output length and leading pad for one spatial axis.
void conv_axis(int in, int k, int s, Padding p, int& out, int& pad_lead) {
  if (p == Padding::kValid) {
    IOB_EXPECTS(in >= k, "kernel exceeds input (valid padding)");
    out = (in - k) / s + 1;
    pad_lead = 0;
    return;
  }
  out = (in + s - 1) / s;  // ceil(in / s)
  const int pad_total = std::max(0, (out - 1) * s + k - in);
  pad_lead = pad_total / 2;
}

}  // namespace

// ---- Conv2D -----------------------------------------------------------------

Conv2D::Conv2D(int in_channels, int out_channels, int kernel_h, int kernel_w, int stride_h,
               int stride_w, Padding padding, std::vector<float> weights, std::vector<float> bias)
    : in_c_(in_channels),
      out_c_(out_channels),
      kh_(kernel_h),
      kw_(kernel_w),
      sh_(stride_h),
      sw_(stride_w),
      padding_(padding),
      weights_(std::move(weights)),
      bias_(std::move(bias)) {
  IOB_EXPECTS(in_c_ > 0 && out_c_ > 0 && kh_ > 0 && kw_ > 0 && sh_ > 0 && sw_ > 0,
              "conv2d dims must be positive");
  IOB_EXPECTS(weights_.size() == static_cast<std::size_t>(out_c_) * kh_ * kw_ * in_c_,
              "conv2d weight size mismatch");
  IOB_EXPECTS(bias_.size() == static_cast<std::size_t>(out_c_), "conv2d bias size mismatch");
  // Repack [oc][ky][kx][ic] -> [ky*kx*ic][oc] once: GEMM B rows become
  // contiguous while term k of every output stays tap (ky, kx, ic) — the
  // seed accumulation order.
  packed_.resize(weights_.size());
  pack_k_major(weights_.data(), out_c_, static_cast<std::int64_t>(kh_) * kw_ * in_c_,
               packed_.data());
}

void Conv2D::pad_amounts(const Shape& input, int& pad_top, int& pad_left) const {
  int oh, ow;
  geometry(input, oh, ow, pad_top, pad_left);
}

void Conv2D::geometry(const Shape& input, int& oh, int& ow, int& pad_top, int& pad_left) const {
  conv_axis(input[0], kh_, sh_, padding_, oh, pad_top);
  conv_axis(input[1], kw_, sw_, padding_, ow, pad_left);
}

Shape Conv2D::output_shape(const Shape& input) const {
  IOB_EXPECTS(input.size() == 3, "conv2d expects HWC input");
  IOB_EXPECTS(input[2] == in_c_, "conv2d channel mismatch");
  int oh, ow, pt, pl;
  conv_axis(input[0], kh_, sh_, padding_, oh, pt);
  conv_axis(input[1], kw_, sw_, padding_, ow, pl);
  return Shape{oh, ow, out_c_};
}

Tensor Conv2D::forward(const Tensor& input) const {
  Tensor out(output_shape(input.shape()));
  forward_into(input.data(), input.shape(), 1, out.data(), detail::thread_workspace());
  return out;
}

Tensor Conv2D::forward_batched(const Tensor& input, int batch) const {
  IOB_EXPECTS(input.rank() == 4 && input.shape()[0] == batch,
              "conv2d batched input must be [N, H, W, C]");
  const Shape sample_shape{input.shape()[1], input.shape()[2], input.shape()[3]};
  const Shape os = output_shape(sample_shape);
  Tensor out(Shape{batch, os[0], os[1], os[2]});
  forward_into(input.data(), sample_shape, batch, out.data(), detail::thread_workspace());
  return out;
}

void Conv2D::forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                          Workspace& ws) const {
  forward_into_fused(in, in_shape, batch, out, ws, GemmTail{});
}

void Conv2D::forward_into_fused(const float* in, const Shape& in_shape, int batch, float* out,
                                Workspace& ws, const GemmTail& tail) const {
  IOB_EXPECTS(in_shape.size() == 3, "conv2d expects HWC input");
  IOB_EXPECTS(in_shape[2] == in_c_, "conv2d channel mismatch");
  const int ih = in_shape[0], iw = in_shape[1];
  int oh, ow, pad_top, pad_left;
  conv_axis(ih, kh_, sh_, padding_, oh, pad_top);
  conv_axis(iw, kw_, sw_, padding_, ow, pad_left);
  const std::int64_t K = static_cast<std::int64_t>(kh_) * kw_ * in_c_;
  if (kh_ == 1 && kw_ == 1 && sh_ == 1 && sw_ == 1) {
    // Pointwise stride-1: the HWC input already is the patch matrix.
    gemm_blocked(static_cast<std::int64_t>(batch) * ih * iw, out_c_, in_c_, in, packed_.data(),
                 bias_.data(), out, tail);
    return;
  }
  const std::int64_t M = static_cast<std::int64_t>(batch) * oh * ow;
  if (pack_a_enabled()) {
    // Fused im2col + panel pack: the GEMM streams kMr-lane panels instead
    // of strided patch rows (bit-exact — same accumulation order).
    ws.reserve_im2col((M + kMr - 1) / kMr * kMr * K);
    im2col_pack_a_nhwc(batch, ih, iw, in_c_, kh_, kw_, sh_, sw_, pad_top, pad_left, oh, ow, in,
                       ws.im2col());
    gemm_blocked_pa(M, out_c_, K, ws.im2col(), packed_.data(), bias_.data(), out, tail);
    return;
  }
  ws.reserve_im2col(M * K);
  im2col_nhwc(batch, ih, iw, in_c_, kh_, kw_, sh_, sw_, pad_top, pad_left, oh, ow, in,
              ws.im2col());
  gemm_blocked(M, out_c_, K, ws.im2col(), packed_.data(), bias_.data(), out, tail);
}

std::int64_t Conv2D::scratch_elems(const Shape& in_shape) const {
  if (in_shape.size() != 3) return 0;
  if (kh_ == 1 && kw_ == 1 && sh_ == 1 && sw_ == 1) return 0;
  int oh, ow, pt, pl;
  conv_axis(in_shape[0], kh_, sh_, padding_, oh, pt);
  conv_axis(in_shape[1], kw_, sw_, padding_, ow, pl);
  return static_cast<std::int64_t>(oh) * ow * kh_ * kw_ * in_c_;
}

Tensor Conv2D::forward_reference(const Tensor& input) const {
  const Shape os = output_shape(input.shape());
  int pad_top = 0, pad_left = 0;
  pad_amounts(input.shape(), pad_top, pad_left);
  const int ih = input.shape()[0], iw = input.shape()[1];

  Tensor out(os);
  for (int oy = 0; oy < os[0]; ++oy) {
    for (int ox = 0; ox < os[1]; ++ox) {
      for (int oc = 0; oc < out_c_; ++oc) {
        float acc = bias_[static_cast<std::size_t>(oc)];
        const float* wbase = &weights_[static_cast<std::size_t>(oc) * kh_ * kw_ * in_c_];
        for (int ky = 0; ky < kh_; ++ky) {
          const int iy = oy * sh_ + ky - pad_top;
          if (iy < 0 || iy >= ih) continue;
          for (int kx = 0; kx < kw_; ++kx) {
            const int ix = ox * sw_ + kx - pad_left;
            if (ix < 0 || ix >= iw) continue;
            const float* w = wbase + (static_cast<std::size_t>(ky) * kw_ + kx) * in_c_;
            const float* in = input.data() + (static_cast<std::size_t>(iy) * iw + ix) * in_c_;
            for (int ic = 0; ic < in_c_; ++ic) acc += w[ic] * in[ic];
          }
        }
        out.at(oy, ox, oc) = acc;
      }
    }
  }
  return out;
}

Tensor Conv2D::forward_batched_reference(const Tensor& input, int batch) const {
  IOB_EXPECTS(input.rank() == 4 && input.shape()[0] == batch,
              "conv2d batched input must be [N, H, W, C]");
  const Shape sample_shape{input.shape()[1], input.shape()[2], input.shape()[3]};
  const Shape os = output_shape(sample_shape);
  int pad_top = 0, pad_left = 0;
  pad_amounts(sample_shape, pad_top, pad_left);
  const int ih = sample_shape[0], iw = sample_shape[1];
  const std::int64_t in_stride = shape_elems(sample_shape);
  const std::int64_t out_stride = shape_elems(os);

  Tensor out(Shape{batch, os[0], os[1], os[2]});
  // Sample-innermost loop: each kernel slice streams once per output
  // position and serves the whole batch. Per-sample accumulation order is
  // identical to forward_reference(), so results are bit-exact.
  for (int oy = 0; oy < os[0]; ++oy) {
    for (int ox = 0; ox < os[1]; ++ox) {
      for (int oc = 0; oc < out_c_; ++oc) {
        const float* wbase = &weights_[static_cast<std::size_t>(oc) * kh_ * kw_ * in_c_];
        for (int s = 0; s < batch; ++s) {
          const float* ibase = input.data() + static_cast<std::ptrdiff_t>(s) * in_stride;
          float acc = bias_[static_cast<std::size_t>(oc)];
          for (int ky = 0; ky < kh_; ++ky) {
            const int iy = oy * sh_ + ky - pad_top;
            if (iy < 0 || iy >= ih) continue;
            for (int kx = 0; kx < kw_; ++kx) {
              const int ix = ox * sw_ + kx - pad_left;
              if (ix < 0 || ix >= iw) continue;
              const float* w = wbase + (static_cast<std::size_t>(ky) * kw_ + kx) * in_c_;
              const float* in = ibase + (static_cast<std::size_t>(iy) * iw + ix) * in_c_;
              for (int ic = 0; ic < in_c_; ++ic) acc += w[ic] * in[ic];
            }
          }
          out.data()[s * out_stride + (static_cast<std::int64_t>(oy) * os[1] + ox) * out_c_ + oc] =
              acc;
        }
      }
    }
  }
  return out;
}

std::uint64_t Conv2D::macs(const Shape& input) const {
  const Shape os = output_shape(input);
  return static_cast<std::uint64_t>(os[0]) * os[1] * out_c_ * kh_ * kw_ * in_c_;
}

std::uint64_t Conv2D::param_count() const {
  return static_cast<std::uint64_t>(out_c_) * kh_ * kw_ * in_c_ + out_c_;
}

std::string Conv2D::describe() const {
  std::ostringstream os;
  os << "conv2d " << kh_ << "x" << kw_ << "x" << out_c_ << " s" << sh_ << "x" << sw_
     << (padding_ == Padding::kSame ? " same" : " valid");
  return os.str();
}

// ---- DepthwiseConv2D --------------------------------------------------------

DepthwiseConv2D::DepthwiseConv2D(int channels, int kernel, int stride, Padding padding,
                                 std::vector<float> weights, std::vector<float> bias)
    : c_(channels), k_(kernel), s_(stride), padding_(padding), weights_(std::move(weights)),
      bias_(std::move(bias)) {
  IOB_EXPECTS(c_ > 0 && k_ > 0 && s_ > 0, "dwconv dims must be positive");
  IOB_EXPECTS(weights_.size() == static_cast<std::size_t>(c_) * k_ * k_,
              "dwconv weight size mismatch");
  IOB_EXPECTS(bias_.size() == static_cast<std::size_t>(c_), "dwconv bias size mismatch");
  // Repack [c][ky][kx] -> [ky*kx][c]: the channel loop of the direct kernel
  // then reads contiguous weight lanes.
  packed_.resize(weights_.size());
  pack_k_major(weights_.data(), c_, static_cast<std::int64_t>(k_) * k_, packed_.data());
}

void DepthwiseConv2D::geometry(const Shape& input, int& oh, int& ow, int& pad_top,
                               int& pad_left) const {
  conv_axis(input[0], k_, s_, padding_, oh, pad_top);
  conv_axis(input[1], k_, s_, padding_, ow, pad_left);
}

Shape DepthwiseConv2D::output_shape(const Shape& input) const {
  IOB_EXPECTS(input.size() == 3, "dwconv expects HWC input");
  IOB_EXPECTS(input[2] == c_, "dwconv channel mismatch");
  int oh, ow, pt, pl;
  conv_axis(input[0], k_, s_, padding_, oh, pt);
  conv_axis(input[1], k_, s_, padding_, ow, pl);
  return Shape{oh, ow, c_};
}

Tensor DepthwiseConv2D::forward(const Tensor& input) const {
  Tensor out(output_shape(input.shape()));
  forward_into(input.data(), input.shape(), 1, out.data(), detail::thread_workspace());
  return out;
}

Tensor DepthwiseConv2D::forward_batched(const Tensor& input, int batch) const {
  IOB_EXPECTS(input.rank() == 4 && input.shape()[0] == batch,
              "dwconv batched input must be [N, H, W, C]");
  const Shape sample_shape{input.shape()[1], input.shape()[2], input.shape()[3]};
  const Shape os = output_shape(sample_shape);
  Tensor out(Shape{batch, os[0], os[1], os[2]});
  forward_into(input.data(), sample_shape, batch, out.data(), detail::thread_workspace());
  return out;
}

void DepthwiseConv2D::forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                                   Workspace& ws) const {
  (void)ws;
  IOB_EXPECTS(in_shape.size() == 3, "dwconv expects HWC input");
  IOB_EXPECTS(in_shape[2] == c_, "dwconv channel mismatch");
  const int ih = in_shape[0], iw = in_shape[1];
  int oh, ow, pad_top, pad_left;
  conv_axis(ih, k_, s_, padding_, oh, pad_top);
  conv_axis(iw, k_, s_, padding_, ow, pad_left);
  dwconv2d_nhwc(batch, ih, iw, c_, k_, s_, pad_top, pad_left, oh, ow, in, packed_.data(),
                bias_.data(), out);
}

Tensor DepthwiseConv2D::forward_reference(const Tensor& input) const {
  const Shape os = output_shape(input.shape());
  int pad_top = 0, pad_left = 0;
  int dummy;
  conv_axis(input.shape()[0], k_, s_, padding_, dummy, pad_top);
  conv_axis(input.shape()[1], k_, s_, padding_, dummy, pad_left);
  const int ih = input.shape()[0], iw = input.shape()[1];

  Tensor out(os);
  for (int oy = 0; oy < os[0]; ++oy) {
    for (int ox = 0; ox < os[1]; ++ox) {
      for (int ch = 0; ch < c_; ++ch) {
        float acc = bias_[static_cast<std::size_t>(ch)];
        const float* w = &weights_[static_cast<std::size_t>(ch) * k_ * k_];
        for (int ky = 0; ky < k_; ++ky) {
          const int iy = oy * s_ + ky - pad_top;
          if (iy < 0 || iy >= ih) continue;
          for (int kx = 0; kx < k_; ++kx) {
            const int ix = ox * s_ + kx - pad_left;
            if (ix < 0 || ix >= iw) continue;
            acc += w[ky * k_ + kx] * input.at(iy, ix, ch);
          }
        }
        out.at(oy, ox, ch) = acc;
      }
    }
  }
  return out;
}

Tensor DepthwiseConv2D::forward_batched_reference(const Tensor& input, int batch) const {
  IOB_EXPECTS(input.rank() == 4 && input.shape()[0] == batch,
              "dwconv batched input must be [N, H, W, C]");
  const Shape sample_shape{input.shape()[1], input.shape()[2], input.shape()[3]};
  const Shape os = output_shape(sample_shape);
  int pad_top = 0, pad_left = 0, dummy;
  conv_axis(sample_shape[0], k_, s_, padding_, dummy, pad_top);
  conv_axis(sample_shape[1], k_, s_, padding_, dummy, pad_left);
  const int ih = sample_shape[0], iw = sample_shape[1];
  const std::int64_t in_stride = shape_elems(sample_shape);
  const std::int64_t out_stride = shape_elems(os);

  Tensor out(Shape{batch, os[0], os[1], os[2]});
  for (int oy = 0; oy < os[0]; ++oy) {
    for (int ox = 0; ox < os[1]; ++ox) {
      for (int ch = 0; ch < c_; ++ch) {
        const float* w = &weights_[static_cast<std::size_t>(ch) * k_ * k_];
        for (int s = 0; s < batch; ++s) {
          const float* ibase = input.data() + static_cast<std::ptrdiff_t>(s) * in_stride;
          float acc = bias_[static_cast<std::size_t>(ch)];
          for (int ky = 0; ky < k_; ++ky) {
            const int iy = oy * s_ + ky - pad_top;
            if (iy < 0 || iy >= ih) continue;
            for (int kx = 0; kx < k_; ++kx) {
              const int ix = ox * s_ + kx - pad_left;
              if (ix < 0 || ix >= iw) continue;
              acc += w[ky * k_ + kx] * ibase[(static_cast<std::size_t>(iy) * iw + ix) * c_ + ch];
            }
          }
          out.data()[s * out_stride + (static_cast<std::int64_t>(oy) * os[1] + ox) * c_ + ch] = acc;
        }
      }
    }
  }
  return out;
}

std::uint64_t DepthwiseConv2D::macs(const Shape& input) const {
  const Shape os = output_shape(input);
  return static_cast<std::uint64_t>(os[0]) * os[1] * c_ * k_ * k_;
}

std::uint64_t DepthwiseConv2D::param_count() const {
  return static_cast<std::uint64_t>(c_) * k_ * k_ + c_;
}

std::string DepthwiseConv2D::describe() const {
  std::ostringstream os;
  os << "dwconv " << k_ << "x" << k_ << " s" << s_ << (padding_ == Padding::kSame ? " same" : " valid");
  return os.str();
}

// ---- Conv1D -----------------------------------------------------------------

Conv1D::Conv1D(int in_channels, int out_channels, int kernel, int stride, Padding padding,
               std::vector<float> weights, std::vector<float> bias)
    : in_c_(in_channels), out_c_(out_channels), k_(kernel), s_(stride), padding_(padding),
      weights_(std::move(weights)), bias_(std::move(bias)) {
  IOB_EXPECTS(in_c_ > 0 && out_c_ > 0 && k_ > 0 && s_ > 0, "conv1d dims must be positive");
  IOB_EXPECTS(weights_.size() == static_cast<std::size_t>(out_c_) * k_ * in_c_,
              "conv1d weight size mismatch");
  IOB_EXPECTS(bias_.size() == static_cast<std::size_t>(out_c_), "conv1d bias size mismatch");
  // Repack [oc][kk][ic] -> [kk*ic][oc] for the GEMM (see Conv2D).
  packed_.resize(weights_.size());
  pack_k_major(weights_.data(), out_c_, static_cast<std::int64_t>(k_) * in_c_, packed_.data());
}

Shape Conv1D::output_shape(const Shape& input) const {
  IOB_EXPECTS(input.size() == 2, "conv1d expects LC input");
  IOB_EXPECTS(input[1] == in_c_, "conv1d channel mismatch");
  int ol, pl;
  conv_axis(input[0], k_, s_, padding_, ol, pl);
  return Shape{ol, out_c_};
}

Tensor Conv1D::forward(const Tensor& input) const {
  Tensor out(output_shape(input.shape()));
  forward_into(input.data(), input.shape(), 1, out.data(), detail::thread_workspace());
  return out;
}

Tensor Conv1D::forward_batched(const Tensor& input, int batch) const {
  IOB_EXPECTS(input.rank() == 3 && input.shape()[0] == batch,
              "conv1d batched input must be [N, L, C]");
  const Shape sample_shape{input.shape()[1], input.shape()[2]};
  const Shape os = output_shape(sample_shape);
  Tensor out(Shape{batch, os[0], os[1]});
  forward_into(input.data(), sample_shape, batch, out.data(), detail::thread_workspace());
  return out;
}

void Conv1D::forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                          Workspace& ws) const {
  forward_into_fused(in, in_shape, batch, out, ws, GemmTail{});
}

void Conv1D::forward_into_fused(const float* in, const Shape& in_shape, int batch, float* out,
                                Workspace& ws, const GemmTail& tail) const {
  IOB_EXPECTS(in_shape.size() == 2, "conv1d expects LC input");
  IOB_EXPECTS(in_shape[1] == in_c_, "conv1d channel mismatch");
  const int il = in_shape[0];
  int ol, pad_lead;
  conv_axis(il, k_, s_, padding_, ol, pad_lead);
  if (k_ == 1 && s_ == 1) {
    gemm_blocked(static_cast<std::int64_t>(batch) * il, out_c_, in_c_, in, packed_.data(),
                 bias_.data(), out, tail);
    return;
  }
  // An LC signal is an (L x 1 x C) image: reuse the 2-D patch extractor
  // with kw = ow = 1 so taps land in (kk, ic) order.
  const std::int64_t K = static_cast<std::int64_t>(k_) * in_c_;
  const std::int64_t M = static_cast<std::int64_t>(batch) * ol;
  if (pack_a_enabled()) {
    ws.reserve_im2col((M + kMr - 1) / kMr * kMr * K);
    im2col_pack_a_nhwc(batch, il, 1, in_c_, k_, 1, s_, 1, pad_lead, 0, ol, 1, in, ws.im2col());
    gemm_blocked_pa(M, out_c_, K, ws.im2col(), packed_.data(), bias_.data(), out, tail);
    return;
  }
  ws.reserve_im2col(M * K);
  im2col_nhwc(batch, il, 1, in_c_, k_, 1, s_, 1, pad_lead, 0, ol, 1, in, ws.im2col());
  gemm_blocked(M, out_c_, K, ws.im2col(), packed_.data(), bias_.data(), out, tail);
}

void Conv1D::geometry(const Shape& input, int& ol, int& pad_lead) const {
  conv_axis(input[0], k_, s_, padding_, ol, pad_lead);
}

std::int64_t Conv1D::scratch_elems(const Shape& in_shape) const {
  if (in_shape.size() != 2) return 0;
  if (k_ == 1 && s_ == 1) return 0;
  int ol, pl;
  conv_axis(in_shape[0], k_, s_, padding_, ol, pl);
  return static_cast<std::int64_t>(ol) * k_ * in_c_;
}

Tensor Conv1D::forward_reference(const Tensor& input) const {
  const Shape os = output_shape(input.shape());
  int pad_lead = 0, dummy;
  conv_axis(input.shape()[0], k_, s_, padding_, dummy, pad_lead);
  const int il = input.shape()[0];

  Tensor out(os);
  for (int ol = 0; ol < os[0]; ++ol) {
    for (int oc = 0; oc < out_c_; ++oc) {
      float acc = bias_[static_cast<std::size_t>(oc)];
      const float* wbase = &weights_[static_cast<std::size_t>(oc) * k_ * in_c_];
      for (int kk = 0; kk < k_; ++kk) {
        const int ii = ol * s_ + kk - pad_lead;
        if (ii < 0 || ii >= il) continue;
        const float* w = wbase + static_cast<std::size_t>(kk) * in_c_;
        const float* in = input.data() + static_cast<std::size_t>(ii) * in_c_;
        for (int ic = 0; ic < in_c_; ++ic) acc += w[ic] * in[ic];
      }
      out.at(ol, oc) = acc;
    }
  }
  return out;
}

Tensor Conv1D::forward_batched_reference(const Tensor& input, int batch) const {
  IOB_EXPECTS(input.rank() == 3 && input.shape()[0] == batch,
              "conv1d batched input must be [N, L, C]");
  const Shape sample_shape{input.shape()[1], input.shape()[2]};
  const Shape os = output_shape(sample_shape);
  int pad_lead = 0, dummy;
  conv_axis(sample_shape[0], k_, s_, padding_, dummy, pad_lead);
  const int il = sample_shape[0];
  const std::int64_t in_stride = shape_elems(sample_shape);
  const std::int64_t out_stride = shape_elems(os);

  Tensor out(Shape{batch, os[0], os[1]});
  for (int ol = 0; ol < os[0]; ++ol) {
    for (int oc = 0; oc < out_c_; ++oc) {
      const float* wbase = &weights_[static_cast<std::size_t>(oc) * k_ * in_c_];
      for (int s = 0; s < batch; ++s) {
        const float* ibase = input.data() + static_cast<std::ptrdiff_t>(s) * in_stride;
        float acc = bias_[static_cast<std::size_t>(oc)];
        for (int kk = 0; kk < k_; ++kk) {
          const int ii = ol * s_ + kk - pad_lead;
          if (ii < 0 || ii >= il) continue;
          const float* w = wbase + static_cast<std::size_t>(kk) * in_c_;
          const float* in = ibase + static_cast<std::size_t>(ii) * in_c_;
          for (int ic = 0; ic < in_c_; ++ic) acc += w[ic] * in[ic];
        }
        out.data()[s * out_stride + static_cast<std::int64_t>(ol) * out_c_ + oc] = acc;
      }
    }
  }
  return out;
}

std::uint64_t Conv1D::macs(const Shape& input) const {
  const Shape os = output_shape(input);
  return static_cast<std::uint64_t>(os[0]) * out_c_ * k_ * in_c_;
}

std::uint64_t Conv1D::param_count() const {
  return static_cast<std::uint64_t>(out_c_) * k_ * in_c_ + out_c_;
}

std::string Conv1D::describe() const {
  std::ostringstream os;
  os << "conv1d k" << k_ << "x" << out_c_ << " s" << s_
     << (padding_ == Padding::kSame ? " same" : " valid");
  return os.str();
}

}  // namespace iob::nn
