#pragma once
/// \file model.hpp
/// Sequential model: an ordered layer chain plus the per-layer profile
/// (MACs, params, activation bytes) that drives the partitioning optimizer
/// and the compute-energy models.

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace iob::nn {

/// Static per-layer execution profile for a fixed input shape.
struct LayerProfile {
  std::string describe;
  std::uint64_t macs = 0;
  std::uint64_t params = 0;
  Shape output_shape;
  std::int64_t output_bytes_f32 = 0;  ///< activation size leaving this layer
  std::int64_t output_bytes_i8 = 0;   ///< same, int8-quantized transport
};

class Model {
 public:
  Model(std::string name, Shape input_shape);

  /// Append a layer; validates shape compatibility eagerly.
  void add(LayerPtr layer);

  /// Run the full chain.
  [[nodiscard]] Tensor forward(const Tensor& input) const;

  /// Run the full chain over a batched input (shape [N, ...input_shape]).
  /// One pass streams each layer's weights once for the whole batch — the
  /// hub-side amortization move — while per-sample outputs stay bit-exact
  /// equal to `forward` on each sample.
  [[nodiscard]] Tensor run_batched(const Tensor& batched_input) const;

  /// Convenience overload: stack, run, unstack.
  [[nodiscard]] std::vector<Tensor> run_batched(const std::vector<Tensor>& inputs) const;

  /// Run layers [first, last) only — the building block for split execution
  /// across leaf/hub/cloud venues. `input` must have the shape produced by
  /// layer first-1 (or the model input for first == 0).
  [[nodiscard]] Tensor forward_range(const Tensor& input, std::size_t first,
                                     std::size_t last) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Shape& input_shape() const { return input_shape_; }
  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
  [[nodiscard]] const Layer& layer(std::size_t i) const;

  /// Per-layer profiles (computed at construction from shapes alone).
  [[nodiscard]] const std::vector<LayerProfile>& profiles() const { return profiles_; }

  [[nodiscard]] std::uint64_t total_macs() const;
  [[nodiscard]] std::uint64_t total_params() const;

  /// Input tensor size in bytes (f32 / raw sensor int8 transport).
  [[nodiscard]] std::int64_t input_bytes_f32() const;
  [[nodiscard]] std::int64_t input_bytes_i8() const;

  /// Multi-line layer table (for reports and examples).
  [[nodiscard]] std::string summary() const;

 private:
  std::string name_;
  Shape input_shape_;
  std::vector<LayerPtr> layers_;
  std::vector<LayerProfile> profiles_;
  Shape current_output_shape_;
};

}  // namespace iob::nn
