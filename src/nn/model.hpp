#pragma once
/// \file model.hpp
/// Sequential model: an ordered layer chain plus the per-layer profile
/// (MACs, params, activation bytes) that drives the partitioning optimizer
/// and the compute-energy models.

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace iob::nn {

/// Static per-layer execution profile for a fixed input shape.
struct LayerProfile {
  std::string describe;
  std::uint64_t macs = 0;
  std::uint64_t params = 0;
  Shape output_shape;
  std::int64_t output_bytes_f32 = 0;  ///< activation size leaving this layer
  std::int64_t output_bytes_i8 = 0;   ///< same, int8-quantized transport
};

class Workspace;

class Model {
 public:
  Model(std::string name, Shape input_shape);

  /// Append a layer; validates shape compatibility eagerly.
  void add(LayerPtr layer);

  /// Run the full chain.
  [[nodiscard]] Tensor forward(const Tensor& input) const;

  /// Run the full chain over a batched input (shape [N, ...input_shape]).
  /// One pass streams each layer's weights once for the whole batch — the
  /// hub-side amortization move — while per-sample outputs stay bit-exact
  /// equal to `forward` on each sample.
  [[nodiscard]] Tensor run_batched(const Tensor& batched_input) const;

  /// Convenience overload: samples stage directly into the workspace (no
  /// intermediate stacked tensor), run, and unpack per-sample outputs.
  [[nodiscard]] std::vector<Tensor> run_batched(const std::vector<Tensor>& inputs) const;

  /// Allocation-free hot path: run `batch` contiguous samples from `input`
  /// through the lowered layer chain, ping-ponging activations inside `ws`.
  /// Returns a view of the final activations (into `ws`, or `input` itself
  /// for an empty model) valid until the workspace is reused. Zero heap
  /// allocations once `ws` has reached its high-water size (grow-only).
  /// `input` may alias `ws` staging (`Workspace::ping()`/`pong()`): staged
  /// samples survive an internal arena growth (pointers are re-derived and
  /// resize preserves contents).
  ConstSpan run_into(Workspace& ws, const float* input, int batch) const;

  /// Validating overload over a batched tensor (shape [N, ...input_shape]).
  ConstSpan run_into(Workspace& ws, const Tensor& batched_input) const;

  /// Layer-range core of `run_into`: run layers [first, last) only — the
  /// building block for split execution across leaf/hub/cloud venues.
  ConstSpan run_range_into(Workspace& ws, const float* input, int batch, std::size_t first,
                           std::size_t last) const;

  /// Run layers [first, last) only — the building block for split execution
  /// across leaf/hub/cloud venues. `input` must have the shape produced by
  /// layer first-1 (or the model input for first == 0).
  [[nodiscard]] Tensor forward_range(const Tensor& input, std::size_t first,
                                     std::size_t last) const;

  /// Seed-loop oracle chain: executes every layer's `forward_reference`
  /// (the original naive nested loops). The lowered engine is tested — and
  /// benchmarked — bit-exact against this.
  [[nodiscard]] Tensor forward_reference(const Tensor& input) const;

  /// Batched seed-loop oracle (see `forward_reference`).
  [[nodiscard]] Tensor run_batched_reference(const Tensor& batched_input) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Shape& input_shape() const { return input_shape_; }
  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
  [[nodiscard]] const Layer& layer(std::size_t i) const;

  /// Per-layer profiles (computed at construction from shapes alone).
  [[nodiscard]] const std::vector<LayerProfile>& profiles() const { return profiles_; }

  [[nodiscard]] std::uint64_t total_macs() const;
  [[nodiscard]] std::uint64_t total_params() const;

  /// Input tensor size in bytes (f32 / raw sensor int8 transport).
  [[nodiscard]] std::int64_t input_bytes_f32() const;
  [[nodiscard]] std::int64_t input_bytes_i8() const;

  /// Largest per-sample activation (input or any layer output), in floats —
  /// what one ping-pong workspace buffer must hold per batched sample.
  [[nodiscard]] std::int64_t max_activation_elems() const { return max_activation_elems_; }

  /// Largest per-sample im2col scratch any layer requests, in floats.
  [[nodiscard]] std::int64_t max_scratch_elems() const { return max_scratch_elems_; }

  /// Multi-line layer table (for reports and examples).
  [[nodiscard]] std::string summary() const;

 private:
  /// Input shape of layer `i` (the model input for i == 0).
  [[nodiscard]] const Shape& layer_input_shape(std::size_t i) const {
    return i == 0 ? input_shape_ : profiles_[i - 1].output_shape;
  }

  std::string name_;
  Shape input_shape_;
  std::vector<LayerPtr> layers_;
  /// Fusion plan: fuse_with_next_[i] means layer i lowers onto the GEMM and
  /// layer i+1 is an elementwise tail (Relu/BatchNorm) it absorbs into its
  /// epilogue — `run_range_into` then executes the pair as one hop.
  /// Results are bit-exact either way (tests assert it); fusion only skips
  /// a workspace ping-pong.
  std::vector<char> fuse_with_next_;
  std::vector<LayerProfile> profiles_;
  Shape current_output_shape_;
  std::int64_t max_activation_elems_ = 0;
  std::int64_t max_scratch_elems_ = 0;
};

}  // namespace iob::nn
