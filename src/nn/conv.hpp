#pragma once
/// \file conv.hpp
/// Convolution layers: standard 2-D, depthwise 2-D, and 1-D (for
/// biopotential time series). HWC layout; weights stored row-major as
/// [out_c][kh][kw][in_c] (2-D) / [c][kh][kw] (depthwise) / [out_c][k][in_c]
/// (1-D).
///
/// Execution is lowered onto the blocked GEMM in gemm.hpp: im2col patch
/// extraction in (ky, kx, ic) order feeds `gemm_blocked` against weights
/// repacked K-major at construction, so per-element accumulation order —
/// and hence every result bit — matches the seed nested loops (kept as the
/// `*_reference` oracles). Depthwise runs the channels-vectorized direct
/// kernel (`dwconv2d_nhwc`), and 1x1 stride-1 convolutions skip im2col
/// entirely (the input already is the patch matrix).

#include <vector>

#include "nn/layer.hpp"

namespace iob::nn {

class Conv2D final : public Layer {
 public:
  Conv2D(int in_channels, int out_channels, int kernel_h, int kernel_w, int stride_h, int stride_w,
         Padding padding, std::vector<float> weights, std::vector<float> bias);

  [[nodiscard]] Tensor forward(const Tensor& input) const override;
  /// Batched pass over [N, H, W, C]: all batch patches fold into one GEMM,
  /// so the kernel tensor streams once for the whole batch.
  [[nodiscard]] Tensor forward_batched(const Tensor& input, int batch) const override;
  void forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                    Workspace& ws) const override;
  [[nodiscard]] Tensor forward_reference(const Tensor& input) const override;
  [[nodiscard]] Tensor forward_batched_reference(const Tensor& input, int batch) const override;
  [[nodiscard]] bool supports_gemm_tail_fusion() const override { return true; }
  void forward_into_fused(const float* in, const Shape& in_shape, int batch, float* out,
                          Workspace& ws, const GemmTail& tail) const override;
  [[nodiscard]] std::int64_t scratch_elems(const Shape& in_shape) const override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::uint64_t macs(const Shape& input) const override;
  [[nodiscard]] std::uint64_t param_count() const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] int in_channels() const { return in_c_; }
  [[nodiscard]] int out_channels() const { return out_c_; }
  [[nodiscard]] int kernel_h() const { return kh_; }
  [[nodiscard]] int kernel_w() const { return kw_; }
  [[nodiscard]] int stride_h() const { return sh_; }
  [[nodiscard]] int stride_w() const { return sw_; }
  /// Row-major [out_c][kh][kw][in_c] weights (the quantizer's source).
  [[nodiscard]] const std::vector<float>& weights() const { return weights_; }
  [[nodiscard]] const std::vector<float>& bias() const { return bias_; }
  /// Spatial geometry for `input`: output dims and leading pads.
  void geometry(const Shape& input, int& oh, int& ow, int& pad_top, int& pad_left) const;

 private:
  void pad_amounts(const Shape& input, int& pad_top, int& pad_left) const;

  int in_c_, out_c_, kh_, kw_, sh_, sw_;
  Padding padding_;
  std::vector<float> weights_, bias_;
  std::vector<float> packed_;  ///< weights repacked to [kh*kw*in_c][out_c]
};

class DepthwiseConv2D final : public Layer {
 public:
  DepthwiseConv2D(int channels, int kernel, int stride, Padding padding,
                  std::vector<float> weights, std::vector<float> bias);

  [[nodiscard]] Tensor forward(const Tensor& input) const override;
  [[nodiscard]] Tensor forward_batched(const Tensor& input, int batch) const override;
  void forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                    Workspace& ws) const override;
  [[nodiscard]] Tensor forward_reference(const Tensor& input) const override;
  [[nodiscard]] Tensor forward_batched_reference(const Tensor& input, int batch) const override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::uint64_t macs(const Shape& input) const override;
  [[nodiscard]] std::uint64_t param_count() const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] int channels() const { return c_; }
  [[nodiscard]] int kernel() const { return k_; }
  [[nodiscard]] int stride() const { return s_; }
  /// Row-major [c][k][k] weights (the quantizer's source).
  [[nodiscard]] const std::vector<float>& weights() const { return weights_; }
  [[nodiscard]] const std::vector<float>& bias() const { return bias_; }
  /// Spatial geometry for `input`: output dims and leading pads.
  void geometry(const Shape& input, int& oh, int& ow, int& pad_top, int& pad_left) const;

 private:
  int c_, k_, s_;
  Padding padding_;
  std::vector<float> weights_, bias_;
  std::vector<float> packed_;  ///< weights repacked to [k*k][c]
};

class Conv1D final : public Layer {
 public:
  Conv1D(int in_channels, int out_channels, int kernel, int stride, Padding padding,
         std::vector<float> weights, std::vector<float> bias);

  [[nodiscard]] Tensor forward(const Tensor& input) const override;
  [[nodiscard]] Tensor forward_batched(const Tensor& input, int batch) const override;
  void forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                    Workspace& ws) const override;
  [[nodiscard]] Tensor forward_reference(const Tensor& input) const override;
  [[nodiscard]] Tensor forward_batched_reference(const Tensor& input, int batch) const override;
  [[nodiscard]] bool supports_gemm_tail_fusion() const override { return true; }
  void forward_into_fused(const float* in, const Shape& in_shape, int batch, float* out,
                          Workspace& ws, const GemmTail& tail) const override;
  [[nodiscard]] std::int64_t scratch_elems(const Shape& in_shape) const override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::uint64_t macs(const Shape& input) const override;
  [[nodiscard]] std::uint64_t param_count() const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] int in_channels() const { return in_c_; }
  [[nodiscard]] int out_channels() const { return out_c_; }
  [[nodiscard]] int kernel() const { return k_; }
  [[nodiscard]] int stride() const { return s_; }
  /// Row-major [out_c][k][in_c] weights (the quantizer's source).
  [[nodiscard]] const std::vector<float>& weights() const { return weights_; }
  [[nodiscard]] const std::vector<float>& bias() const { return bias_; }
  /// Axis geometry for `input`: output length and leading pad.
  void geometry(const Shape& input, int& ol, int& pad_lead) const;

 private:
  int in_c_, out_c_, k_, s_;
  Padding padding_;
  std::vector<float> weights_, bias_;
  std::vector<float> packed_;  ///< weights repacked to [k*in_c][out_c]
};

}  // namespace iob::nn
