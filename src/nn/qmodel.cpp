#include "nn/qmodel.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/expect.hpp"
#include "nn/conv.hpp"
#include "nn/gemm.hpp"
#include "nn/layers.hpp"
#include "nn/workspace.hpp"

namespace iob::nn {

namespace {

/// Per-output-channel quantized weights, transposed to the K-major [K][N]
/// layout the int8 GEMM's B operand packing expects.
struct QWeights {
  std::vector<std::int8_t> km;   ///< K-major [cols][rows] int8
  std::vector<float> scales;     ///< per-row (= per-column of km) scale
  std::vector<std::int32_t> zps; ///< per-row zero point
};

/// Quantize each output channel (row of the [rows][cols] matrix) with its
/// own affine params via the quantize.hpp machinery, then transpose.
QWeights quantize_weights_k_major(const std::vector<float>& w, std::int64_t rows,
                                  std::int64_t cols) {
  QWeights out;
  out.km.resize(w.size());
  out.scales.resize(static_cast<std::size_t>(rows));
  out.zps.resize(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    const QuantizedTensor q = quantize(
        Tensor::from_data(Shape{static_cast<int>(cols)}, w.data() + r * cols));
    out.scales[static_cast<std::size_t>(r)] = q.params.scale;
    out.zps[static_cast<std::size_t>(r)] = q.params.zero_point;
    for (std::int64_t c = 0; c < cols; ++c) {
      out.km[static_cast<std::size_t>(c * rows + r)] = q.data[static_cast<std::size_t>(c)];
    }
  }
  return out;
}

bool is_weighted(const Layer& layer) {
  return dynamic_cast<const Conv2D*>(&layer) != nullptr ||
         dynamic_cast<const Conv1D*>(&layer) != nullptr ||
         dynamic_cast<const DepthwiseConv2D*>(&layer) != nullptr ||
         dynamic_cast<const FullyConnected*>(&layer) != nullptr;
}

}  // namespace

QuantizedModel::QuantizedModel(const Model& model, int calibration_samples) : model_(&model) {
  IOB_EXPECTS(calibration_samples >= 1, "need at least one calibration sample");
  const std::size_t n = model.layer_count();

  // ---- calibration: per-layer activation ranges over the f32 oracle ----
  std::vector<float> mins(n + 1, std::numeric_limits<float>::infinity());
  std::vector<float> maxs(n + 1, -std::numeric_limits<float>::infinity());
  const auto track = [&](std::size_t idx, const Tensor& t) {
    for (std::int64_t i = 0; i < t.size(); ++i) {
      mins[idx] = std::min(mins[idx], t[i]);
      maxs[idx] = std::max(maxs[idx], t[i]);
    }
  };
  for (int s = 0; s < calibration_samples; ++s) {
    Tensor x = patterned_tensor(model.input_shape(), s);
    track(0, x);
    for (std::size_t i = 0; i < n; ++i) {
      x = model.layer(i).forward(x);
      track(i + 1, x);
    }
  }
  input_q_ = choose_quant_params(mins[0], maxs[0]);

  // ---- find the int8 span: everything up to the last weighted layer ----
  std::ptrdiff_t last_w = -1;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_weighted(model.layer(i))) last_w = static_cast<std::ptrdiff_t>(i);
  }

  const auto& profiles = model.profiles();
  const auto in_shape_of = [&](std::size_t i) -> const Shape& {
    return i == 0 ? model.input_shape() : profiles[i - 1].output_shape;
  };

  QuantParams cur_q = input_q_;
  std::size_t i = 0;
  while (static_cast<std::ptrdiff_t>(i) <= last_w) {
    const Layer& layer = model.layer(i);
    Op op;
    op.src_begin = i;
    op.in_shape = in_shape_of(i);
    op.out_shape = profiles[i].output_shape;
    op.in_q = cur_q;
    std::size_t consumed = 1;

    const bool weighted = is_weighted(layer);
    if (weighted) {
      // Fuse an immediately following ReLU into the requantize epilogue
      // (clamp applied on the real value, before rounding): the fused pair
      // consumes the relu's calibrated output range, which is tighter than
      // the raw accumulator's — finer int8 resolution for free.
      const Relu* relu =
          i + 1 < n ? dynamic_cast<const Relu*>(&model.layer(i + 1)) : nullptr;
      if (relu != nullptr) {
        op.relu_cap = relu->cap() > 0.0f ? relu->cap() : 0.0f;
        op.out_shape = profiles[i + 1].output_shape;
        consumed = 2;
      }
      op.out_q = choose_quant_params(mins[i + consumed], maxs[i + consumed]);
    }

    if (const auto* conv = dynamic_cast<const Conv2D*>(&layer)) {
      op.kind = Op::Kind::kGemm;
      op.is_conv = true;
      op.ih = op.in_shape[0];
      op.iw = op.in_shape[1];
      op.ic = conv->in_channels();
      op.oc = conv->out_channels();
      op.kh = conv->kernel_h();
      op.kw = conv->kernel_w();
      op.sh = conv->stride_h();
      op.sw = conv->stride_w();
      conv->geometry(op.in_shape, op.oh, op.ow, op.pad_top, op.pad_left);
      op.pointwise = op.kh == 1 && op.kw == 1 && op.sh == 1 && op.sw == 1;
      op.k_dim = static_cast<std::int64_t>(op.kh) * op.kw * op.ic;
      op.rows_per_sample = static_cast<std::int64_t>(op.oh) * op.ow;
      QWeights qw = quantize_weights_k_major(conv->weights(), op.oc, op.k_dim);
      op.qweights = std::move(qw.km);
      op.col_scales = std::move(qw.scales);
      op.wzps = std::move(qw.zps);
      op.bias = conv->bias();
    } else if (const auto* conv1 = dynamic_cast<const Conv1D*>(&layer)) {
      // An LC signal is an (L x 1 x C) image — identical mapping to the
      // f32 lowering.
      op.kind = Op::Kind::kGemm;
      op.is_conv = true;
      op.ih = op.in_shape[0];
      op.iw = 1;
      op.ic = conv1->in_channels();
      op.oc = conv1->out_channels();
      op.kh = conv1->kernel();
      op.kw = 1;
      op.sh = conv1->stride();
      op.sw = 1;
      int ol = 0, pad_lead = 0;
      conv1->geometry(op.in_shape, ol, pad_lead);
      op.oh = ol;
      op.ow = 1;
      op.pad_top = pad_lead;
      op.pad_left = 0;
      op.pointwise = op.kh == 1 && op.sh == 1;
      op.k_dim = static_cast<std::int64_t>(op.kh) * op.ic;
      op.rows_per_sample = ol;
      QWeights qw = quantize_weights_k_major(conv1->weights(), op.oc, op.k_dim);
      op.qweights = std::move(qw.km);
      op.col_scales = std::move(qw.scales);
      op.wzps = std::move(qw.zps);
      op.bias = conv1->bias();
    } else if (const auto* fc = dynamic_cast<const FullyConnected*>(&layer)) {
      op.kind = Op::Kind::kGemm;
      op.oc = fc->out_features();
      op.k_dim = fc->in_features();
      op.rows_per_sample = 1;
      QWeights qw = quantize_weights_k_major(fc->weights(), op.oc, op.k_dim);
      op.qweights = std::move(qw.km);
      op.col_scales = std::move(qw.scales);
      op.wzps = std::move(qw.zps);
      op.bias = fc->bias();
    } else if (const auto* dw = dynamic_cast<const DepthwiseConv2D*>(&layer)) {
      op.kind = Op::Kind::kDwConv;
      op.ih = op.in_shape[0];
      op.iw = op.in_shape[1];
      op.ic = dw->channels();
      op.oc = dw->channels();
      op.kh = dw->kernel();
      op.kw = dw->kernel();
      op.sh = dw->stride();
      op.sw = dw->stride();
      dw->geometry(op.in_shape, op.oh, op.ow, op.pad_top, op.pad_left);
      QWeights qw = quantize_weights_k_major(dw->weights(), op.ic,
                                             static_cast<std::int64_t>(op.kh) * op.kw);
      op.qweights = std::move(qw.km);
      op.col_scales = std::move(qw.scales);
      op.wzps = std::move(qw.zps);
      op.bias = dw->bias();
    } else if (const auto* relu = dynamic_cast<const Relu*>(&layer)) {
      op.kind = Op::Kind::kRelu;
      op.elt_cap = relu->cap();
      op.out_q = choose_quant_params(mins[i + 1], maxs[i + 1]);
    } else if (const auto* bn = dynamic_cast<const BatchNorm*>(&layer)) {
      op.kind = Op::Kind::kBatchNorm;
      op.bn_scale = &bn->scale();
      op.bn_shift = &bn->shift();
      op.out_q = choose_quant_params(mins[i + 1], maxs[i + 1]);
    } else if (const auto* pool = dynamic_cast<const Pool2D*>(&layer)) {
      op.kind = pool->kind() == PoolKind::kMax ? Op::Kind::kMaxPool : Op::Kind::kAvgPool;
      op.pool_k = pool->kernel();
      op.pool_s = pool->stride();
      op.out_q = cur_q;  // pooling never widens the range: params propagate
    } else if (dynamic_cast<const GlobalAvgPool*>(&layer) != nullptr) {
      op.kind = Op::Kind::kGlobalAvg;
      op.out_q = cur_q;
    } else if (dynamic_cast<const Flatten*>(&layer) != nullptr) {
      op.kind = Op::Kind::kCopy;
      op.out_q = cur_q;
    } else if (dynamic_cast<const Softmax*>(&layer) != nullptr) {
      op.kind = Op::Kind::kSoftmax;
      op.out_q = choose_quant_params(mins[i + 1], maxs[i + 1]);
    } else {
      IOB_EXPECTS(false, "int8 lowering does not support this layer type: " + layer.describe());
    }

    if (op.kind == Op::Kind::kGemm) {
      const std::int64_t kp = (op.k_dim + 1) / 2;
      op.wop16.resize(static_cast<std::size_t>(kp * op.oc * 2));
      pack_b_s8(op.qweights.data(), op.k_dim, op.oc, op.wzps.data(), op.wop16.data());
      max_acc_elems_ = std::max(max_acc_elems_, op.rows_per_sample * op.oc);
      if (op.is_conv && !op.pointwise) {
        max_scratch_elems_ = std::max(max_scratch_elems_, op.rows_per_sample * op.k_dim);
        max_pack_a_elems_ = std::max(max_pack_a_elems_, op.rows_per_sample * kp);
      }
    } else if (op.kind == Op::Kind::kDwConv) {
      op.wop16.resize(op.qweights.size());
      widen_dw_weights_s8(op.qweights.data(), static_cast<std::int64_t>(op.kh) * op.kw, op.ic,
                          op.wzps.data(), op.wop16.data());
    }
    if (op.kind == Op::Kind::kGemm || op.kind == Op::Kind::kDwConv) {
      // Fold the activation scale into the per-channel weight scales once.
      for (float& sc : op.col_scales) sc *= op.in_q.scale;
      weight_bytes_ += static_cast<std::int64_t>(op.qweights.size());
    }

    cur_q = op.out_q;
    i += consumed;
    ops_.push_back(std::move(op));
  }
  tail_start_ = i;
  if (!ops_.empty()) ops_.back().dequant_out = true;
}

void QuantizedModel::run_op(const Op& op, Workspace& ws, const std::int8_t* in8,
                            std::int8_t* out8, float* outf, int batch) const {
  const std::int64_t in_elems = shape_elems(op.in_shape);
  const std::int64_t out_elems = shape_elems(op.out_shape);
  const float s_in = op.in_q.scale;
  const std::int32_t z_in = op.in_q.zero_point;
  const float inv_out = 1.0f / op.out_q.scale;
  const std::int32_t z_out = op.out_q.zero_point;

  switch (op.kind) {
    case Op::Kind::kGemm: {
      const std::int64_t m = static_cast<std::int64_t>(batch) * op.rows_per_sample;
      ws.reserve_acc(m * op.oc);
      QuantEpilogue epi;
      epi.bias = op.bias.data();
      epi.col_scales = op.col_scales.data();
      epi.relu_cap = op.relu_cap;
      epi.inv_out_scale = 1.0f / op.out_q.scale;
      epi.out_zero = z_out;
      if (op.dequant_out) {
        epi.dstf = outf;
      } else {
        epi.dst = out8;
      }
      // Fused im2col + panel pack pays only when each tap run (kw*ic) is
      // wide enough for the int16 widening sweep to vectorize; narrow runs
      // (e.g. conv1d on a single channel) write the panel tap-by-tap and
      // lose to the two-pass path, whose per-tile pack sweeps contiguous K.
      if (op.is_conv && !op.pointwise && static_cast<std::int64_t>(op.kw) * op.ic >= 4 &&
          pack_a_enabled()) {
        // gemm_s8_pa streams these panels and skips the per-tile A pack
        // (bit-identical exact integer math).
        const std::int64_t kp = (op.k_dim + 1) / 2;
        ws.reserve_pack_a_s8((m + kMr - 1) / kMr * kMr * kp);
        im2col_pack_a_s8_nhwc(batch, op.ih, op.iw, op.ic, op.kh, op.kw, op.sh, op.sw, op.pad_top,
                              op.pad_left, op.oh, op.ow, static_cast<std::int8_t>(z_in), in8,
                              ws.pack_a_s8());
        gemm_s8_pa(m, op.oc, op.k_dim, ws.pack_a_s8(), op.wop16.data(), ws.acc(), &epi);
        break;
      }
      const std::int8_t* a = in8;
      if (op.is_conv && !op.pointwise) {
        ws.reserve_im2col_s8(static_cast<std::int64_t>(batch) * op.rows_per_sample * op.k_dim);
        im2col_s8_nhwc(batch, op.ih, op.iw, op.ic, op.kh, op.kw, op.sh, op.sw, op.pad_top,
                       op.pad_left, op.oh, op.ow, static_cast<std::int8_t>(z_in), in8,
                       ws.im2col8());
        a = ws.im2col8();
      }
      gemm_s8(m, op.oc, op.k_dim, a, z_in, op.wop16.data(), ws.acc(), &epi);
      break;
    }
    case Op::Kind::kDwConv:
      dwconv2d_s8(batch, op.ih, op.iw, op.ic, op.kh, op.sh, op.pad_top, op.pad_left, op.oh,
                  op.ow, in8, z_in, op.wop16.data(), op.bias.data(), op.col_scales.data(),
                  op.relu_cap, op.out_q.scale, z_out, op.dequant_out ? nullptr : out8,
                  op.dequant_out ? outf : nullptr);
      break;
    case Op::Kind::kRelu: {
      const std::int64_t total = in_elems * batch;
      for (std::int64_t j = 0; j < total; ++j) {
        float v = std::max(0.0f, s_in * static_cast<float>(in8[j] - z_in));
        if (op.elt_cap > 0.0f) v = std::min(op.elt_cap, v);
        out8[j] = requantize_value(v, inv_out, z_out);
      }
      break;
    }
    case Op::Kind::kBatchNorm: {
      const auto c = static_cast<std::int64_t>(op.bn_scale->size());
      const std::int64_t rows = in_elems * batch / c;
      const float* bscale = op.bn_scale->data();
      const float* bshift = op.bn_shift->data();
      for (std::int64_t r = 0; r < rows; ++r) {
        for (std::int64_t ch = 0; ch < c; ++ch) {
          const std::int64_t j = r * c + ch;
          const float v = bscale[ch] * (s_in * static_cast<float>(in8[j] - z_in)) + bshift[ch];
          out8[j] = requantize_value(v, inv_out, z_out);
        }
      }
      break;
    }
    case Op::Kind::kMaxPool:
    case Op::Kind::kAvgPool: {
      const int iw = op.in_shape[1], c = op.in_shape[2];
      const int oh = op.out_shape[0], ow = op.out_shape[1];
      const int pk = op.pool_k, ps = op.pool_s;
      for (int s = 0; s < batch; ++s) {
        const std::int8_t* ib = in8 + static_cast<std::int64_t>(s) * in_elems;
        std::int8_t* ob = out8 + static_cast<std::int64_t>(s) * out_elems;
        for (int oy = 0; oy < oh; ++oy) {
          for (int ox = 0; ox < ow; ++ox) {
            for (int ch = 0; ch < c; ++ch) {
              if (op.kind == Op::Kind::kMaxPool) {
                // Quantization is monotone: max over quantized values IS the
                // quantized max — exact, no requant needed (out_q == in_q).
                std::int8_t m = std::numeric_limits<std::int8_t>::min();
                for (int ky = 0; ky < pk; ++ky) {
                  for (int kx = 0; kx < pk; ++kx) {
                    m = std::max(m, ib[(static_cast<std::int64_t>(oy * ps + ky) * iw +
                                        (ox * ps + kx)) * c + ch]);
                  }
                }
                *ob++ = m;
              } else {
                std::int32_t sum = 0;
                for (int ky = 0; ky < pk; ++ky) {
                  for (int kx = 0; kx < pk; ++kx) {
                    sum += ib[(static_cast<std::int64_t>(oy * ps + ky) * iw +
                               (ox * ps + kx)) * c + ch];
                  }
                }
                const float v =
                    s_in * (static_cast<float>(sum) / static_cast<float>(pk * pk) -
                            static_cast<float>(z_in));
                *ob++ = requantize_value(v, inv_out, z_out);
              }
            }
          }
        }
      }
      break;
    }
    case Op::Kind::kGlobalAvg: {
      const int c = op.in_shape.back();
      const std::int64_t spatial = in_elems / c;
      for (int s = 0; s < batch; ++s) {
        const std::int8_t* ib = in8 + static_cast<std::int64_t>(s) * in_elems;
        std::int8_t* ob = out8 + static_cast<std::int64_t>(s) * c;
        for (int ch = 0; ch < c; ++ch) {
          std::int32_t sum = 0;
          for (std::int64_t sp = 0; sp < spatial; ++sp) sum += ib[sp * c + ch];
          const float v = s_in * (static_cast<float>(sum) / static_cast<float>(spatial) -
                                  static_cast<float>(z_in));
          ob[ch] = requantize_value(v, inv_out, z_out);
        }
      }
      break;
    }
    case Op::Kind::kCopy:
      std::memcpy(out8, in8, static_cast<std::size_t>(in_elems * batch));
      break;
    case Op::Kind::kSoftmax: {
      // Mid-chain softmax (not the usual float tail): dequantize the sample
      // into the f32 arena, run the stable softmax, requantize.
      float* scratch = ws.ping();
      for (int s = 0; s < batch; ++s) {
        const std::int8_t* ib = in8 + static_cast<std::int64_t>(s) * in_elems;
        std::int8_t* ob = out8 + static_cast<std::int64_t>(s) * in_elems;
        float mx = -std::numeric_limits<float>::infinity();
        for (std::int64_t j = 0; j < in_elems; ++j) {
          scratch[j] = s_in * static_cast<float>(ib[j] - z_in);
          mx = std::max(mx, scratch[j]);
        }
        double sum = 0.0;
        for (std::int64_t j = 0; j < in_elems; ++j) {
          scratch[j] = std::exp(scratch[j] - mx);
          sum += scratch[j];
        }
        for (std::int64_t j = 0; j < in_elems; ++j) {
          ob[j] = requantize_value(static_cast<float>(scratch[j] / sum), inv_out, z_out);
        }
      }
      break;
    }
  }
}

ConstSpan QuantizedModel::run_into(Workspace& ws, const float* input, int batch) const {
  return run_range_into(ws, input, batch, 0, model_->layer_count());
}

std::size_t QuantizedModel::op_index_of(std::size_t k) const {
  for (std::size_t oi = 0; oi < ops_.size(); ++oi) {
    if (ops_[oi].src_begin == k) return oi;
  }
  IOB_EXPECTS(false, "no lowered int8 op starts at this source layer");
  return 0;
}

bool QuantizedModel::feasible_boundary(std::size_t k) const {
  IOB_EXPECTS(k <= model_->layer_count(), "boundary out of range");
  if (k == 0 || k >= tail_start_) return true;
  for (const Op& op : ops_) {
    if (op.src_begin == k) return true;
    if (op.src_begin > k) return false;  // src_begin is strictly increasing
  }
  return false;
}

const QuantParams& QuantizedModel::boundary_params(std::size_t k) const {
  IOB_EXPECTS(k < tail_start_, "boundary params only exist inside the int8 span");
  return ops_[op_index_of(k)].in_q;
}

ConstSpan QuantizedModel::run_range_into(Workspace& ws, const float* input, int batch,
                                         std::size_t first, std::size_t last) const {
  const std::size_t n = model_->layer_count();
  IOB_EXPECTS(first <= last && last <= n, "invalid layer range");
  IOB_EXPECTS(batch >= 1, "batch must be >= 1");
  // Empty ranges and ranges at/after the float tail are pure f32 work.
  if (ops_.empty() || first == last || first >= tail_start_) {
    return model_->run_range_into(ws, input, batch, first, last);
  }
  IOB_EXPECTS(feasible_boundary(first) && feasible_boundary(last),
              "split boundary falls inside a fused conv+relu pair");
  ws.configure(*this, batch);

  // Requantize-in: quantize the boundary activation with the op chain's
  // calibrated input params (same round-half-away rule as the load-time
  // quantizer; at first == 0 these are exactly `input_params()`). A value
  // produced by this model's own dequantize-out round-trips to the
  // identical int8 code, which is what makes chained ranges bit-exact.
  const std::size_t oi_first = op_index_of(first);
  std::int8_t* cur8 = ws.ping8();
  quantize_f32_to_s8(input, shape_elems(ops_[oi_first].in_shape) * batch,
                     ops_[oi_first].in_q.scale, ops_[oi_first].in_q.zero_point, cur8);

  // int8 chain over the ops lowered from source layers [first, last); the
  // last weighted op (if included) dequantizes into the f32 arena itself.
  const std::size_t oi_last = last >= tail_start_ ? ops_.size() : op_index_of(last);
  bool dequantized = false;
  for (std::size_t oi = oi_first; oi < oi_last; ++oi) {
    const Op& op = ops_[oi];
    if (op.dequant_out) {
      run_op(op, ws, cur8, nullptr, ws.ping(), batch);
      dequantized = true;
    } else {
      std::int8_t* next8 = cur8 == ws.ping8() ? ws.pong8() : ws.ping8();
      run_op(op, ws, cur8, next8, nullptr, batch);
      cur8 = next8;
    }
  }

  // Dequantize-out: a range stopping before the last weighted op leaves an
  // int8 activation; emit its exact f32 decoding — the well-defined boundary
  // tensor the other venue (or the wire format) consumes.
  if (!dequantized) {
    const Op& tail_op = ops_[oi_last - 1];
    const QuantParams& q = tail_op.out_q;
    const std::int64_t elems = shape_elems(tail_op.out_shape) * batch;
    float* outf = ws.ping();
    for (std::int64_t j = 0; j < elems; ++j) {
      outf[j] =
          q.scale * static_cast<float>(static_cast<std::int32_t>(cur8[j]) - q.zero_point);
    }
  }

  // Float tail layers (softmax and friends) inside the range.
  const auto& profiles = model_->profiles();
  const float* curf = ws.ping();
  for (std::size_t i = tail_start_; i < last; ++i) {
    const Shape& in_shape = i == 0 ? model_->input_shape() : profiles[i - 1].output_shape;
    float* nextf = curf == ws.ping() ? ws.pong() : ws.ping();
    model_->layer(i).forward_into(curf, in_shape, batch, nextf, ws);
    curf = nextf;
  }
  const Shape& out_shape = profiles[last - 1].output_shape;
  return ConstSpan{curf, shape_elems(out_shape) * batch};
}

Tensor QuantizedModel::forward(const Tensor& input) const {
  IOB_EXPECTS(input.shape() == model_->input_shape(), "quantized forward input shape mismatch");
  const ConstSpan out = run_into(detail::thread_workspace(), input.data(), 1);
  const Shape& out_shape = model_->layer_count() == 0
                               ? model_->input_shape()
                               : model_->profiles().back().output_shape;
  return Tensor::from_data(out_shape, out.data);
}

Tensor QuantizedModel::run_batched(const Tensor& batched_input) const {
  IOB_EXPECTS(batched_input.rank() == static_cast<int>(model_->input_shape().size()) + 1,
              "batched input must add one leading batch dim to the model input shape");
  const int batch = batched_input.shape()[0];
  IOB_EXPECTS(std::equal(batched_input.shape().begin() + 1, batched_input.shape().end(),
                         model_->input_shape().begin(), model_->input_shape().end()),
              "batched input sample shape mismatch");
  const ConstSpan out = run_into(detail::thread_workspace(), batched_input.data(), batch);
  const Shape& out_sample = model_->layer_count() == 0
                                ? model_->input_shape()
                                : model_->profiles().back().output_shape;
  Shape out_shape{batch};
  out_shape.insert(out_shape.end(), out_sample.begin(), out_sample.end());
  return Tensor::from_data(std::move(out_shape), out.data);
}

}  // namespace iob::nn
