#pragma once
/// \file model_zoo.hpp
/// Reference wearable-AI micro-models, one per device class the paper's
/// Sec. II enumerates. Weights are deterministic pseudo-random (this
/// library studies *where* inference runs and what it costs, not accuracy);
/// architectures and therefore MAC/activation profiles follow the
/// MLPerf-Tiny-class networks actually deployed on such nodes.
///
///  * `make_kws_dscnn()` — keyword spotting DS-CNN (audio pins/pendants,
///    Sec. II-B): 49x10 MFCC input, conv + 4 depthwise-separable blocks.
///  * `make_ecg_cnn1d()` — 1-D CNN arrhythmia classifier (biopotential
///    patches, Sec. II-A/D): 360-sample beat window.
///  * `make_vww_micronet()` — MobileNet-style visual wake words net
///    (camera glasses/pins, Sec. II-C): 96x96x3 input.

#include "nn/model.hpp"

namespace iob::nn {

/// Deterministic weight source so every build reproduces identical models.
class WeightGen {
 public:
  explicit WeightGen(std::uint64_t seed) : state_(seed ? seed : 1) {}

  /// Kaiming-uniform-style weights for a given fan-in.
  std::vector<float> weights(std::size_t count, int fan_in);

  /// Small biases.
  std::vector<float> biases(std::size_t count);

 private:
  float next_unit();  ///< uniform in [-1, 1)
  std::uint64_t state_;
};

Model make_kws_dscnn(std::uint64_t seed = 1);
Model make_ecg_cnn1d(std::uint64_t seed = 2);
Model make_vww_micronet(std::uint64_t seed = 3);

}  // namespace iob::nn
