#pragma once
/// \file gemm.hpp
/// The lowered compute kernels behind the allocation-free inference engine:
/// a cache-blocked, register-tiled float GEMM plus the im2col patch
/// extractor that lowers convolutions onto it, and a channels-vectorized
/// depthwise kernel (depthwise is a diagonal GEMM; running it dense would
/// waste k*k*C MACs per output position).
///
/// Bit-exactness contract: every kernel accumulates each output element in
/// strictly increasing k order, starting from the bias, with one `acc +=
/// a * b` per term — the exact per-element operation sequence of the seed
/// nested loops (`Layer::forward_reference`). Padding taps enter the GEMM
/// as zero patch entries; `x + a*0` leaves the accumulator value unchanged,
/// so lowered results equal the seed results bitwise.

#include <cstdint>

namespace iob::nn {

/// Register-tile dims of the GEMM microkernel: kMr x kNr accumulators live
/// in registers across the k loop (32 floats = 8 SSE registers, leaving
/// room for the A broadcast and B row loads on the x86-64 baseline).
inline constexpr int kMr = 4;
inline constexpr int kNr = 8;
/// K cache block: one A panel row-block (kMr x kKc) plus the streamed B
/// rows stay L1/L2-resident while a C tile accumulates.
inline constexpr std::int64_t kKc = 256;

/// Transpose a [rows][cols] row-major weight matrix into the K-major
/// [cols][rows] layout `gemm_blocked` streams as B (dst[c * rows + r] =
/// src[r * cols + c]). The one packing rule every lowered layer shares:
/// term k of output r stays input k, preserving seed accumulation order.
void pack_k_major(const float* src, std::int64_t rows, std::int64_t cols, float* dst);

/// Elementwise tail fused into the GEMM epilogue: applied to each C element
/// on the final K block, while the accumulator tile is still in registers,
/// so a fused producer+tail pair skips one workspace ping-pong hop. The
/// operations are the exact per-element expressions of `Relu::forward_into`
/// and `BatchNorm::forward_into`, so fused results stay bit-exact vs
/// running the tail as its own layer pass.
struct GemmTail {
  enum class Kind { kNone, kRelu, kBatchNorm };
  Kind kind = Kind::kNone;
  float cap = 0.0f;              ///< relu clamp (<= 0 = uncapped)
  const float* scale = nullptr;  ///< batchnorm per-column scale [N]
  const float* shift = nullptr;  ///< batchnorm per-column shift [N]
};

/// C[M x N] = bias (broadcast per column, nullptr = 0) + A[M x K] * B[K x N],
/// optionally followed by a fused elementwise `tail`.
/// All matrices row-major and contiguous. Accumulation per C element runs
/// in increasing k order (K blocks processed in order, the partial sum
/// parked in C between blocks), so results are bit-exact vs the naive
/// `for k: acc += A[m][k] * B[k][n]` loop (with the tail applied after).
void gemm_blocked(std::int64_t M, std::int64_t N, std::int64_t K, const float* A, const float* B,
                  const float* bias, float* C, const GemmTail& tail = {});

/// Extract NHWC conv patches into `col` ([batch * oh * ow] rows of
/// kh * kw * ic floats, taps in (ky, kx, ic) order), zero-filling
/// out-of-range taps. Conv1D lowers through the same extractor with
/// kw = 1, ow = 1 (an LC signal is an Hx1xC image).
void im2col_nhwc(int batch, int ih, int iw, int ic, int kh, int kw, int sh, int sw, int pad_top,
                 int pad_left, int oh, int ow, const float* in, float* col);

/// Runtime toggle for the packed-A conv path (`im2col_pack_a_nhwc` /
/// `gemm_blocked_pa` and their int8 counterparts). On by default; the
/// traffic-replay bench flips it off to measure the strided-read baseline,
/// and results are bit-exact either way. Thread-safe (relaxed atomic).
void set_pack_a_enabled(bool enabled);
[[nodiscard]] bool pack_a_enabled();

/// Fused im2col + A-panel pack: the exact patch walk of `im2col_nhwc`, but
/// writing each patch row r into the kMr-row panel layout the GEMM
/// microkernel streams — pack[(r / kMr) * kMr * K + k * kMr + (r % kMr)]
/// holds element k of row r (K = kh * kw * ic). One k step of a panel is
/// then one contiguous 16-byte load instead of four stride-K row reads.
/// `pack` must hold ceil(M / kMr) * kMr * K floats (M = batch * oh * ow);
/// tail-panel lanes beyond M are never written (and never read).
void im2col_pack_a_nhwc(int batch, int ih, int iw, int ic, int kh, int kw, int sh, int sw,
                        int pad_top, int pad_left, int oh, int ow, const float* in, float* pack);

/// `gemm_blocked` over a panel-packed A (`im2col_pack_a_nhwc` layout). Same
/// K blocking, bias seeding, and per-element increasing-k accumulation
/// order — results are bit-exact vs `gemm_blocked` on the unpacked matrix;
/// only the A access pattern changes (streaming loads vs strided reads).
void gemm_blocked_pa(std::int64_t M, std::int64_t N, std::int64_t K, const float* Ap,
                     const float* B, const float* bias, float* C, const GemmTail& tail = {});

/// Depthwise 2-D convolution over NHWC input with weights repacked to
/// [ky * k + kx][c] (channel-major per tap, so the channel loop vectorizes
/// over contiguous weight and input lanes). Out-of-range taps are skipped,
/// matching the seed loop tap-for-tap.
void dwconv2d_nhwc(int batch, int ih, int iw, int c, int k, int stride, int pad_top, int pad_left,
                   int oh, int ow, const float* in, const float* wpacked, const float* bias,
                   float* out);

// ---- int8 execution path ----------------------------------------------------
//
// The quantized counterparts of the kernels above. Activations are affine
// int8 (real = s * (q - z)); weights are per-layer affine int8. The GEMM
// accumulates int8 x int8 products in int32 exactly (integer arithmetic:
// the SSE2 and portable paths are bit-identical by construction), and a
// separate epilogue requantizes the int32 accumulator to the next layer's
// int8 scale — or dequantizes to f32 at the network's float tail.

/// Deterministic round-half-away-from-zero float -> int. The one rounding
/// rule every int8 kernel and the load-time quantizer share.
[[nodiscard]] inline std::int32_t round_away(float v) {
  return static_cast<std::int32_t>(v >= 0.0f ? v + 0.5f : v - 0.5f);
}

/// The one requantize scalar every int8 kernel shares: q =
/// clamp(round_away(v * inv_out_scale) + out_zero, -128, 127). The SIMD
/// epilogues implement exactly this per lane (their saturating packs are
/// the clamp), so a change here is a change to the whole int8 path.
[[nodiscard]] inline std::int8_t requantize_value(float v, float inv_out_scale,
                                                  std::int32_t out_zero) {
  const std::int32_t q = round_away(v * inv_out_scale) + out_zero;
  return static_cast<std::int8_t>(q < -128 ? -128 : q > 127 ? 127 : q);
}

/// Pack a K-major int8 weight matrix [K][N] (quantized values `b`,
/// per-column zero points `zw[N]` — per-output-channel affine weights) into
/// the k-pair-interleaved, zero-point-subtracted int16 operand the int8
/// GEMM streams: dst[(kp * N + n) * 2 + r] = b[2 kp + r][n] - zw[n] (0 when
/// 2 kp + r >= K — a zero pad pair contributes nothing to the dot product).
/// ceil(K / 2) pairs; dst holds ceil(K / 2) * N * 2 int16. The layout feeds
/// pmaddwd directly: one 8 x int16 load covers four columns' (k, k+1) pairs.
void pack_b_s8(const std::int8_t* b, std::int64_t K, std::int64_t N, const std::int32_t* zw,
               std::int16_t* dst);

/// Fused quantized epilogue for `gemm_s8`, applied per element on the final
/// K block while the accumulator tile is still in registers (skipping the
/// int32 round-trip through memory): real = bias[n] + scale * acc, optional
/// relu clamp, then either requantize to int8 (`dst`) or store f32
/// (`dstf`) — exactly one target must be set. Bit-identical to running the
/// standalone `requantize_s8` / `dequantize_f32` over the int32 result
/// (tests assert it): the SSE2 lane ops and the scalar expressions are the
/// same IEEE operations, and pack saturation equals the scalar clamp.
struct QuantEpilogue {
  const float* bias = nullptr;  ///< per-column bias [N] (nullptr = 0)
  /// Per-column dequant scales [N] (s_in * s_w[n], the per-output-channel
  /// weight quantization scheme); overrides `scale` when non-null.
  const float* col_scales = nullptr;
  float scale = 1.0f;           ///< per-tensor s_in * s_w fallback
  float relu_cap = -1.0f;       ///< fused relu: < 0 none, 0 uncapped, > 0 clamp
  float inv_out_scale = 1.0f;   ///< 1 / output scale (requant mode)
  std::int32_t out_zero = 0;    ///< output zero point (requant mode)
  std::int8_t* dst = nullptr;   ///< int8 target [M x N]
  float* dstf = nullptr;        ///< f32 target [M x N] (the network's float tail)
};

/// C[M x N] (int32) = sum_k (A[m][k] - za) * Bop[k][n], with A row-major
/// int8 and Bop the `pack_b_s8` operand (already zero-point-subtracted).
/// Exact integer arithmetic: requires K < 2^15 and |a - za|, |w - zw| <=
/// 255, so every partial sum fits int32 with margin. With a non-null `epi`
/// the final K block writes the epilogue result to `epi->dst`/`dstf`
/// instead of C (C is still the inter-block staging for K > one block).
void gemm_s8(std::int64_t M, std::int64_t N, std::int64_t K, const std::int8_t* A,
             std::int32_t za, const std::int16_t* bop, std::int32_t* C,
             const QuantEpilogue* epi = nullptr);

/// Requantize an int32 GEMM/conv accumulator to int8: real = bias[n] +
/// scale * acc (scale = s_in * s_w; bias nullptr = 0), optional fused relu
/// (relu_cap < 0: none, 0: uncapped, > 0: clamp), then q = clamp(
/// round_away(real / out_scale) + out_zero, -128, 127).
void requantize_s8(const std::int32_t* acc, std::int64_t M, std::int64_t N, const float* bias,
                   float scale, float relu_cap, float out_scale, std::int32_t out_zero,
                   std::int8_t* dst);

/// Same affine epilogue, writing dequantized f32 instead (the last weighted
/// op of a quantized network hands float logits to its float tail).
void dequantize_f32(const std::int32_t* acc, std::int64_t M, std::int64_t N, const float* bias,
                    float scale, float relu_cap, float* dst);

/// Test hook: cap the int8 kernel dispatch tier — 0 = scalar/SSE2 only,
/// 1 = + AVX2, 2 = + AVX-512BW; values above the host's capability are
/// still clamped by the runtime CPUID checks. Negative (the default)
/// restores full auto-dispatch. Exists so one wide-ISA machine can assert
/// every tier produces bit-identical results (tests/nn_int8_test.cpp);
/// production code never calls it.
void set_int8_dispatch_cap(int cap);

/// f32 -> int8 activation staging: q = clamp(round_away(v / scale) +
/// zero_point, -128, 127), vectorized (the quantized engine's input hop).
void quantize_f32_to_s8(const float* src, std::int64_t n, float scale, std::int32_t zero_point,
                        std::int8_t* dst);

/// int8 `im2col_nhwc`: identical patch walk, with out-of-range taps filled
/// with the activation zero point (the int8 encoding of real 0).
void im2col_s8_nhwc(int batch, int ih, int iw, int ic, int kh, int kw, int sh, int sw, int pad_top,
                    int pad_left, int oh, int ow, std::int8_t zero_point, const std::int8_t* in,
                    std::int8_t* col);

/// Fused int8 im2col + A-panel pack: the patch walk of `im2col_s8_nhwc`
/// emitting, whole-matrix, the zero-point-subtracted pair-merged operand
/// `gemm_s8` otherwise builds per tile (`pack_a_tile_s8`) — so `gemm_s8_pa`
/// skips the per-tile pack entirely, the dominant overhead at small K.
/// Panel layout in int32 pair units (kp = ceil(K / 2)):
/// pack[(r / kMr) * kMr * kp + (r % kMr) * kp + j] holds patch row r's
/// k-pair j as two int16 (value - zero_point; odd-K tails pad the high
/// int16 with 0, and out-of-range taps become 0 outright since the pad
/// fill IS the zero point). `pack` must hold ceil(M / kMr) * kMr * kp
/// int32s; tail-panel rows beyond M are never written (and never read).
void im2col_pack_a_s8_nhwc(int batch, int ih, int iw, int ic, int kh, int kw, int sh, int sw,
                           int pad_top, int pad_left, int oh, int ow, std::int8_t zero_point,
                           const std::int8_t* in, std::int32_t* pack);

/// `gemm_s8` over a pre-packed A (`im2col_pack_a_s8_nhwc` layout): the
/// microkernels stream the panels directly instead of re-packing an A tile
/// per K block. Identical exact integer arithmetic -> bit-identical output.
void gemm_s8_pa(std::int64_t M, std::int64_t N, std::int64_t K, const std::int32_t* Ap,
                const std::int16_t* bop, std::int32_t* C, const QuantEpilogue* epi = nullptr);

/// Widen a tap-major int8 depthwise weight matrix ([ky * k + kx][c],
/// per-channel zero points `zw[c]`) into the zero-point-subtracted int16
/// operand `dwconv2d_s8` streams (same layout, values w - zw[c]).
void widen_dw_weights_s8(const std::int8_t* w, std::int64_t taps, std::int64_t c,
                         const std::int32_t* zw, std::int16_t* dst);

/// Direct int8 depthwise 2-D convolution: channels-vectorized int32
/// accumulation over in-range taps against the `widen_dw_weights_s8`
/// operand, then the same fused epilogue as the GEMM with per-channel
/// dequant scales `col_scales[c]` — requantize to int8 (`out`) or
/// dequantize to f32 (`outf`); exactly one must be non-null.
void dwconv2d_s8(int batch, int ih, int iw, int c, int k, int stride, int pad_top, int pad_left,
                 int oh, int ow, const std::int8_t* in, std::int32_t za,
                 const std::int16_t* w16, const float* bias, const float* col_scales,
                 float relu_cap, float out_scale, std::int32_t out_zero, std::int8_t* out,
                 float* outf);

}  // namespace iob::nn
