#pragma once
/// \file gemm.hpp
/// The lowered compute kernels behind the allocation-free inference engine:
/// a cache-blocked, register-tiled float GEMM plus the im2col patch
/// extractor that lowers convolutions onto it, and a channels-vectorized
/// depthwise kernel (depthwise is a diagonal GEMM; running it dense would
/// waste k*k*C MACs per output position).
///
/// Bit-exactness contract: every kernel accumulates each output element in
/// strictly increasing k order, starting from the bias, with one `acc +=
/// a * b` per term — the exact per-element operation sequence of the seed
/// nested loops (`Layer::forward_reference`). Padding taps enter the GEMM
/// as zero patch entries; `x + a*0` leaves the accumulator value unchanged,
/// so lowered results equal the seed results bitwise.

#include <cstdint>

namespace iob::nn {

/// Register-tile dims of the GEMM microkernel: kMr x kNr accumulators live
/// in registers across the k loop (32 floats = 8 SSE registers, leaving
/// room for the A broadcast and B row loads on the x86-64 baseline).
inline constexpr int kMr = 4;
inline constexpr int kNr = 8;
/// K cache block: one A panel row-block (kMr x kKc) plus the streamed B
/// rows stay L1/L2-resident while a C tile accumulates.
inline constexpr std::int64_t kKc = 256;

/// Transpose a [rows][cols] row-major weight matrix into the K-major
/// [cols][rows] layout `gemm_blocked` streams as B (dst[c * rows + r] =
/// src[r * cols + c]). The one packing rule every lowered layer shares:
/// term k of output r stays input k, preserving seed accumulation order.
void pack_k_major(const float* src, std::int64_t rows, std::int64_t cols, float* dst);

/// C[M x N] = bias (broadcast per column, nullptr = 0) + A[M x K] * B[K x N].
/// All matrices row-major and contiguous. Accumulation per C element runs
/// in increasing k order (K blocks processed in order, the partial sum
/// parked in C between blocks), so results are bit-exact vs the naive
/// `for k: acc += A[m][k] * B[k][n]` loop.
void gemm_blocked(std::int64_t M, std::int64_t N, std::int64_t K, const float* A, const float* B,
                  const float* bias, float* C);

/// Extract NHWC conv patches into `col` ([batch * oh * ow] rows of
/// kh * kw * ic floats, taps in (ky, kx, ic) order), zero-filling
/// out-of-range taps. Conv1D lowers through the same extractor with
/// kw = 1, ow = 1 (an LC signal is an Hx1xC image).
void im2col_nhwc(int batch, int ih, int iw, int ic, int kh, int kw, int sh, int sw, int pad_top,
                 int pad_left, int oh, int ow, const float* in, float* col);

/// Depthwise 2-D convolution over NHWC input with weights repacked to
/// [ky * k + kx][c] (channel-major per tap, so the channel loop vectorizes
/// over contiguous weight and input lanes). Out-of-range taps are skipped,
/// matching the seed loop tap-for-tap.
void dwconv2d_nhwc(int batch, int ih, int iw, int c, int k, int stride, int pad_top, int pad_left,
                   int oh, int ow, const float* in, const float* wpacked, const float* bias,
                   float* out);

}  // namespace iob::nn
