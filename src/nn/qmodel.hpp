#pragma once
/// \file qmodel.hpp
/// Int8 quantized execution path: a load-time lowering of a float `Model`
/// onto the int8 kernel suite in gemm.hpp. This is the precision the
/// paper's hub actually deploys (and the one the energy ledger prices:
/// `HubConfig::energy_per_weight_byte_j` is an int8 weight-streaming cost,
/// `partition::CostModel::transport` ships 1 B/element activations) — the
/// f32 engine stays as the accuracy oracle.
///
/// Lowering scheme (post-training, per-output-channel affine weights,
/// per-tensor affine activations):
///  * Weights are quantized at load via the `quantize.hpp` machinery, one
///    affine parameter set per output channel (the standard int8 deployment
///    scheme — a single outlier channel no longer wastes every channel's
///    resolution), repacked K-major int8, and pre-packed once more into the
///    pair-interleaved int16 operand `gemm_s8` streams.
///  * Activation ranges are calibrated at load by running the f32 model
///    over deterministic `patterned_tensor` samples and recording per-layer
///    min/max; each layer output gets its own affine params.
///  * Convolutions lower as int8 im2col (pad taps = zero point) + int8
///    GEMM (int8 x int8 -> int32 exact accumulation) + a requantize-to-int8
///    epilogue with the next layer's scale. An immediately following ReLU
///    fuses into that epilogue for free. The *last* weighted layer
///    dequantizes to f32 instead, and any remaining layers (softmax) run on
///    the float engine — logits keep full float resolution.
///  * Pooling/flatten run natively on int8 (max-pool is exact);
///    depthwise convolutions run a direct int8 kernel.
///
/// Same zero-steady-state-allocation discipline as the f32 path: all
/// buffers live in the `Workspace` int8/int32 arenas (grow-only), and
/// `run_into` never touches the heap once the arenas reached their
/// high-water size. Integer accumulation is exact, so results are
/// bit-identical across batch sizes, thread counts, and the SSE2/portable
/// kernel split.

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model.hpp"
#include "nn/quantize.hpp"
#include "nn/tensor.hpp"

namespace iob::nn {

class Workspace;

class QuantizedModel {
 public:
  /// Quantize `model` at load. `model` is borrowed and must outlive this
  /// object (the float tail executes on its layers). Calibration runs
  /// `calibration_samples` deterministic patterned inputs through the f32
  /// engine to pick per-layer activation ranges.
  explicit QuantizedModel(const Model& model, int calibration_samples = 8);

  /// Allocation-free hot path, mirroring `Model::run_into`: quantize
  /// `batch` contiguous f32 samples from `input` into the int8 arena, run
  /// the int8 chain, dequantize at the float tail, and return a view of the
  /// f32 outputs (valid until the workspace is reused). `input` must not
  /// alias the workspace arenas.
  ConstSpan run_into(Workspace& ws, const float* input, int batch) const;

  /// Layer-range core, mirroring `Model::run_range_into`: run source layers
  /// [first, last) only — the int8 building block for split execution across
  /// venues. The boundary contract is f32-in / f32-out: `input` holds the
  /// f32 activation entering layer `first` (the model input for first == 0),
  /// which is requantized with the boundary op's calibrated input params;
  /// the returned span holds the f32 dequantization of the range's final
  /// int8 activation (or the float tail's output when `last` reaches it).
  /// Because dequantize(q) -> requantize with the same affine params is
  /// exactly value-preserving, chaining `[0,k)` into `[k,n)` reproduces the
  /// unsplit `run_into` bit-for-bit (the split property test asserts it).
  /// Both `first` and `last` must be feasible boundaries (see
  /// `feasible_boundary`): a fused conv+relu pair lowers onto one int8 op,
  /// so the seam between them cannot be cut.
  ConstSpan run_range_into(Workspace& ws, const float* input, int batch, std::size_t first,
                           std::size_t last) const;

  /// True when source-layer index `k` is a cut the int8 lowering can honor:
  /// 0, layer_count(), any float-tail index, or the start of a lowered op.
  /// False only strictly inside a fused conv+relu pair.
  [[nodiscard]] bool feasible_boundary(std::size_t k) const;

  /// Calibrated affine params of the activation crossing boundary `k` (the
  /// input params of the op starting at layer k) — what the leaf serializes
  /// with (`serialize_activation`) so the hub requantizes into the same
  /// code points. Must be a feasible boundary inside the int8 span
  /// (k < float_tail_start()).
  [[nodiscard]] const QuantParams& boundary_params(std::size_t k) const;

  /// Convenience single-sample pass on the per-thread workspace.
  [[nodiscard]] Tensor forward(const Tensor& input) const;

  /// Convenience batched pass (shape [N, ...input_shape]) on the
  /// per-thread workspace. Per-sample results are bit-identical to
  /// `forward` on each sample (integer accumulation is batch-invariant).
  [[nodiscard]] Tensor run_batched(const Tensor& batched_input) const;

  [[nodiscard]] const Model& source() const { return *model_; }
  [[nodiscard]] const std::string& name() const { return model_->name(); }
  [[nodiscard]] const Shape& input_shape() const { return model_->input_shape(); }

  /// Affine params of the quantized input staging.
  [[nodiscard]] const QuantParams& input_params() const { return input_q_; }

  /// Total int8 weight footprint (what `SessionConfig::weight_bytes`
  /// prices: one byte per parameter, biases kept f32).
  [[nodiscard]] std::int64_t weight_bytes() const { return weight_bytes_; }

  /// Workspace sizing (per sample): int8 activations, int8 im2col scratch,
  /// int32 GEMM accumulator.
  [[nodiscard]] std::int64_t max_activation_elems() const {
    return model_->max_activation_elems();
  }
  [[nodiscard]] std::int64_t max_scratch_elems() const { return max_scratch_elems_; }
  [[nodiscard]] std::int64_t max_acc_elems() const { return max_acc_elems_; }
  /// Packed-A panel units (int32 k-pairs) per sample of the widest
  /// non-pointwise conv — the `Workspace::reserve_pack_a_s8` sizing quantum.
  [[nodiscard]] std::int64_t max_pack_a_elems() const { return max_pack_a_elems_; }

  /// Number of lowered int8 ops (fused pairs count once).
  [[nodiscard]] std::size_t op_count() const { return ops_.size(); }

  /// Index of the first source layer that runs on the float engine (the
  /// float tail); == layer_count() when the whole chain runs int8.
  [[nodiscard]] std::size_t float_tail_start() const { return tail_start_; }

 private:
  struct Op {
    enum class Kind { kGemm, kDwConv, kRelu, kBatchNorm, kMaxPool, kAvgPool, kGlobalAvg, kCopy,
                      kSoftmax } kind = Kind::kCopy;
    Shape in_shape, out_shape;
    QuantParams in_q, out_q;
    std::size_t src_begin = 0;           ///< first source layer this op lowers
    // gemm / dwconv (per-output-channel weight quantization):
    std::vector<std::int8_t> qweights;   ///< K-major int8 ([K][N] / [k*k][c])
    std::vector<std::int16_t> wop16;     ///< pair-interleaved / widened operand
    std::vector<float> bias;
    std::vector<float> col_scales;       ///< in_q.scale * w_scale[n], per column
    std::vector<std::int32_t> wzps;      ///< per-channel weight zero points
    float relu_cap = -1.0f;              ///< fused relu (<0 none, 0 uncapped, >0 cap)
    bool dequant_out = false;            ///< last weighted op: epilogue writes f32
    // conv geometry (conv1d maps onto ih x 1 images; fc leaves is_conv off):
    bool is_conv = false;
    bool pointwise = false;              ///< 1x1 stride-1: input IS the patch matrix
    int ih = 0, iw = 0, ic = 0, kh = 1, kw = 1, sh = 1, sw = 1;
    int pad_top = 0, pad_left = 0, oh = 0, ow = 0, oc = 0;
    std::int64_t rows_per_sample = 1;    ///< GEMM M rows contributed per sample
    std::int64_t k_dim = 0;              ///< GEMM K
    // elementwise:
    float elt_cap = 0.0f;                ///< standalone relu cap
    const std::vector<float>* bn_scale = nullptr;  // borrowed from the source layer
    const std::vector<float>* bn_shift = nullptr;
    int pool_k = 1, pool_s = 1;
  };

  void run_op(const Op& op, Workspace& ws, const std::int8_t* in8, std::int8_t* out8,
              float* outf, int batch) const;

  /// Index of the op whose `src_begin == k` (k must be a feasible boundary
  /// inside the int8 span).
  [[nodiscard]] std::size_t op_index_of(std::size_t k) const;

  const Model* model_;
  QuantParams input_q_;
  std::vector<Op> ops_;
  std::size_t tail_start_ = 0;
  std::int64_t weight_bytes_ = 0;
  std::int64_t max_scratch_elems_ = 0;
  std::int64_t max_acc_elems_ = 0;
  std::int64_t max_pack_a_elems_ = 0;
};

}  // namespace iob::nn
