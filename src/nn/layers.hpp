#pragma once
/// \file layers.hpp
/// Non-convolution layers: dense, activations, pooling, softmax, flatten.

#include <vector>

#include "nn/layer.hpp"

namespace iob::nn {

/// Fully-connected layer: input flattened to a vector, output [out_features].
class FullyConnected final : public Layer {
 public:
  /// Weights are [out_features][in_features] row-major; bias [out_features].
  FullyConnected(int in_features, int out_features, std::vector<float> weights,
                 std::vector<float> bias);

  [[nodiscard]] Tensor forward(const Tensor& input) const override;
  /// Batched pass streaming each weight row once across the batch.
  [[nodiscard]] Tensor forward_batched(const Tensor& input, int batch) const override;
  void forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                    Workspace& ws) const override;
  [[nodiscard]] Tensor forward_reference(const Tensor& input) const override;
  [[nodiscard]] Tensor forward_batched_reference(const Tensor& input, int batch) const override;
  [[nodiscard]] bool supports_gemm_tail_fusion() const override { return true; }
  void forward_into_fused(const float* in, const Shape& in_shape, int batch, float* out,
                          Workspace& ws, const GemmTail& tail) const override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::uint64_t macs(const Shape& input) const override;
  [[nodiscard]] std::uint64_t param_count() const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] int in_features() const { return in_features_; }
  [[nodiscard]] int out_features() const { return out_features_; }
  [[nodiscard]] const std::vector<float>& weights() const { return weights_; }
  [[nodiscard]] const std::vector<float>& bias() const { return bias_; }

 private:
  int in_features_, out_features_;
  std::vector<float> weights_, bias_;
  std::vector<float> packed_;  ///< weights transposed to [in][out] for the GEMM
};

/// ReLU with optional clamp (ReLU6 when cap = 6).
class Relu final : public Layer {
 public:
  explicit Relu(float cap = 0.0f);  ///< cap <= 0 means uncapped

  [[nodiscard]] Tensor forward(const Tensor& input) const override;
  [[nodiscard]] Tensor forward_batched(const Tensor& input, int batch) const override;
  void forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                    Workspace& ws) const override;
  [[nodiscard]] bool gemm_tail(int channels, GemmTail& tail) const override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::uint64_t macs(const Shape& input) const override;
  [[nodiscard]] std::uint64_t param_count() const override { return 0; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] float cap() const { return cap_; }

 private:
  float cap_;
};

enum class PoolKind { kMax, kAvg };

/// 2-D pooling over HWC input.
class Pool2D final : public Layer {
 public:
  Pool2D(PoolKind kind, int kernel, int stride);

  [[nodiscard]] Tensor forward(const Tensor& input) const override;
  void forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                    Workspace& ws) const override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::uint64_t macs(const Shape& input) const override;
  [[nodiscard]] std::uint64_t param_count() const override { return 0; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] PoolKind kind() const { return kind_; }
  [[nodiscard]] int kernel() const { return kernel_; }
  [[nodiscard]] int stride() const { return stride_; }

 private:
  PoolKind kind_;
  int kernel_, stride_;
};

/// Global average pool: HWC -> C (also accepts LC -> C).
class GlobalAvgPool final : public Layer {
 public:
  [[nodiscard]] Tensor forward(const Tensor& input) const override;
  void forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                    Workspace& ws) const override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::uint64_t macs(const Shape& input) const override;
  [[nodiscard]] std::uint64_t param_count() const override { return 0; }
  [[nodiscard]] std::string describe() const override;
};

/// Flatten to rank-1.
class Flatten final : public Layer {
 public:
  [[nodiscard]] Tensor forward(const Tensor& input) const override;
  [[nodiscard]] Tensor forward_batched(const Tensor& input, int batch) const override;
  void forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                    Workspace& ws) const override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::uint64_t macs(const Shape& input) const override { (void)input; return 0; }
  [[nodiscard]] std::uint64_t param_count() const override { return 0; }
  [[nodiscard]] std::string describe() const override { return "flatten"; }
};

/// Batch normalization in folded inference form: per-channel affine
/// y = scale * x + shift over the last (channel) dimension. Training-time
/// (gamma, beta, mean, var) fold into (scale, shift) for deployment;
/// `fold()` performs that conversion.
class BatchNorm final : public Layer {
 public:
  BatchNorm(std::vector<float> scale, std::vector<float> shift);

  /// Fold training statistics into an inference BatchNorm:
  /// scale = gamma / sqrt(var + eps), shift = beta - mean * scale.
  static BatchNorm fold(const std::vector<float>& gamma, const std::vector<float>& beta,
                        const std::vector<float>& mean, const std::vector<float>& variance,
                        float eps = 1e-5f);

  [[nodiscard]] Tensor forward(const Tensor& input) const override;
  [[nodiscard]] Tensor forward_batched(const Tensor& input, int batch) const override;
  void forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                    Workspace& ws) const override;
  [[nodiscard]] bool gemm_tail(int channels, GemmTail& tail) const override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::uint64_t macs(const Shape& input) const override;
  [[nodiscard]] std::uint64_t param_count() const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] const std::vector<float>& scale() const { return scale_; }
  [[nodiscard]] const std::vector<float>& shift() const { return shift_; }

 private:
  std::vector<float> scale_, shift_;
};

/// Numerically-stable softmax over the last (only) dimension of a vector.
class Softmax final : public Layer {
 public:
  [[nodiscard]] Tensor forward(const Tensor& input) const override;
  [[nodiscard]] Tensor forward_batched(const Tensor& input, int batch) const override;
  void forward_into(const float* in, const Shape& in_shape, int batch, float* out,
                    Workspace& ws) const override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::uint64_t macs(const Shape& input) const override;
  [[nodiscard]] std::uint64_t param_count() const override { return 0; }
  [[nodiscard]] std::string describe() const override { return "softmax"; }
};

}  // namespace iob::nn
