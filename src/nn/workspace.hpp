#pragma once
/// \file workspace.hpp
/// Reusable inference arena: two ping-pong activation buffers plus an
/// im2col scratch pad. Sized once per (model, max batch) — or grown lazily
/// to the high-water mark — and reused across inferences, so the
/// steady-state inference loop (`Model::run_into`) performs zero heap
/// allocations (interposer-verified by bench/nn_infer.cpp and
/// tests/nn_engine_test.cpp).
///
/// Thread model: a Workspace is single-threaded scratch. One workspace per
/// thread (e.g. the `thread_workspace()` used by the Tensor-returning
/// convenience wrappers, or one per `core::SweepRunner` worker) keeps
/// parallel sweeps race-free; results never depend on which workspace ran
/// the pass, since every buffer is fully overwritten before it is read.

#include <cstdint>
#include <vector>

namespace iob::nn {

class Model;

class Workspace {
 public:
  /// Grow the ping-pong activation buffers to hold `elems` floats each.
  /// Grow-only: no allocation when the capacity already suffices.
  void reserve_activations(std::int64_t elems);

  /// Grow the im2col scratch pad to `elems` floats. Grow-only.
  void reserve_im2col(std::int64_t elems);

  /// Size every buffer for `model` at batch sizes up to `max_batch` in one
  /// shot (the "sized once per (model, max_batch)" entry point). Subsequent
  /// `Model::run_into` calls at any batch <= max_batch never allocate.
  void configure(const Model& model, int max_batch);

  [[nodiscard]] float* ping() { return ping_.data(); }
  [[nodiscard]] float* pong() { return pong_.data(); }
  [[nodiscard]] float* im2col() { return im2col_.data(); }

  [[nodiscard]] std::int64_t activation_capacity() const {
    return static_cast<std::int64_t>(ping_.size());
  }
  [[nodiscard]] std::int64_t im2col_capacity() const {
    return static_cast<std::int64_t>(im2col_.size());
  }

 private:
  std::vector<float> ping_, pong_, im2col_;
};

namespace detail {
/// Per-thread scratch workspace backing the Tensor-returning convenience
/// APIs (`Model::forward`, `Layer::forward`, `run_batched`). Grows to each
/// thread's high-water mark and is reused for the life of the thread.
Workspace& thread_workspace();
}  // namespace detail

}  // namespace iob::nn
