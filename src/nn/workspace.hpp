#pragma once
/// \file workspace.hpp
/// Reusable inference arena: two ping-pong activation buffers plus an
/// im2col scratch pad. Sized once per (model, max batch) — or grown lazily
/// to the high-water mark — and reused across inferences, so the
/// steady-state inference loop (`Model::run_into`) performs zero heap
/// allocations (interposer-verified by bench/nn_infer.cpp and
/// tests/nn_engine_test.cpp).
///
/// Thread model: a Workspace is single-threaded scratch. One workspace per
/// thread (e.g. the `thread_workspace()` used by the Tensor-returning
/// convenience wrappers, or one per `core::SweepRunner` worker) keeps
/// parallel sweeps race-free; results never depend on which workspace ran
/// the pass, since every buffer is fully overwritten before it is read.

#include <cstdint>
#include <vector>

namespace iob::nn {

class Model;
class QuantizedModel;

class Workspace {
 public:
  /// Grow the ping-pong activation buffers to hold `elems` floats each.
  /// Grow-only: no allocation when the capacity already suffices.
  void reserve_activations(std::int64_t elems);

  /// Grow the im2col scratch pad to `elems` floats. Grow-only.
  void reserve_im2col(std::int64_t elems);

  /// Grow the int8 ping-pong activation arenas to `elems` bytes each
  /// (the quantized engine's counterpart of `reserve_activations`).
  void reserve_activations_s8(std::int64_t elems);

  /// Grow the int8 im2col scratch pad to `elems` bytes. Grow-only.
  void reserve_im2col_s8(std::int64_t elems);

  /// Grow the int32 GEMM accumulator pad to `elems` int32s — the staging
  /// tile between `gemm_s8` and the requantize/dequantize epilogue.
  void reserve_acc(std::int64_t elems);

  /// Grow the int8 packed-A panel arena to `elems` int32 pair units (the
  /// `im2col_pack_a_s8_nhwc` operand). Grow-only. The f32 packed path needs
  /// no separate arena: its panels round M up to a multiple of kMr inside
  /// the same float footprint class, so it reuses `im2col()` (the caller
  /// reserves the rounded size).
  void reserve_pack_a_s8(std::int64_t elems);

  /// Size every buffer for `model` at batch sizes up to `max_batch` in one
  /// shot (the "sized once per (model, max_batch)" entry point). Subsequent
  /// `Model::run_into` calls at any batch <= max_batch never allocate.
  void configure(const Model& model, int max_batch);

  /// int8-engine counterpart: sizes the int8 arenas, the int32 accumulator,
  /// AND the f32 arenas (the quantized chain dequantizes into the float
  /// arena for its float tail). `QuantizedModel::run_into` at any batch <=
  /// max_batch then never allocates.
  void configure(const QuantizedModel& model, int max_batch);

  [[nodiscard]] float* ping() { return ping_.data(); }
  [[nodiscard]] float* pong() { return pong_.data(); }
  [[nodiscard]] float* im2col() { return im2col_.data(); }
  [[nodiscard]] std::int8_t* ping8() { return ping8_.data(); }
  [[nodiscard]] std::int8_t* pong8() { return pong8_.data(); }
  [[nodiscard]] std::int8_t* im2col8() { return im2col8_.data(); }
  [[nodiscard]] std::int32_t* acc() { return acc_.data(); }
  [[nodiscard]] std::int32_t* pack_a_s8() { return pack8_.data(); }

  [[nodiscard]] std::int64_t activation_capacity() const {
    return static_cast<std::int64_t>(ping_.size());
  }
  [[nodiscard]] std::int64_t im2col_capacity() const {
    return static_cast<std::int64_t>(im2col_.size());
  }
  [[nodiscard]] std::int64_t activation_s8_capacity() const {
    return static_cast<std::int64_t>(ping8_.size());
  }
  [[nodiscard]] std::int64_t im2col_s8_capacity() const {
    return static_cast<std::int64_t>(im2col8_.size());
  }
  [[nodiscard]] std::int64_t acc_capacity() const {
    return static_cast<std::int64_t>(acc_.size());
  }
  [[nodiscard]] std::int64_t pack_a_s8_capacity() const {
    return static_cast<std::int64_t>(pack8_.size());
  }

 private:
  std::vector<float> ping_, pong_, im2col_;
  std::vector<std::int8_t> ping8_, pong8_, im2col8_;
  std::vector<std::int32_t> acc_, pack8_;
};

namespace detail {
/// Per-thread scratch workspace backing the Tensor-returning convenience
/// APIs (`Model::forward`, `Layer::forward`, `run_batched`). Grows to each
/// thread's high-water mark and is reused for the life of the thread.
Workspace& thread_workspace();
}  // namespace detail

}  // namespace iob::nn
