#include "nn/model_zoo.hpp"

#include <cmath>
#include <memory>

#include "nn/conv.hpp"
#include "nn/layers.hpp"

namespace iob::nn {

float WeightGen::next_unit() {
  // xorshift64*; plenty for weight synthesis.
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  const std::uint64_t v = state_ * 0x2545f4914f6cdd1dULL;
  return static_cast<float>(static_cast<double>(v >> 11) * 0x1.0p-53) * 2.0f - 1.0f;
}

std::vector<float> WeightGen::weights(std::size_t count, int fan_in) {
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in > 0 ? fan_in : 1));
  std::vector<float> w(count);
  for (auto& x : w) x = next_unit() * bound;
  return w;
}

std::vector<float> WeightGen::biases(std::size_t count) {
  std::vector<float> b(count);
  for (auto& x : b) x = next_unit() * 0.05f;
  return b;
}

namespace {

/// Depthwise-separable block: dwconv 3x3 + relu + pointwise conv + relu.
void add_ds_block(Model& model, WeightGen& gen, int in_c, int out_c, int stride) {
  model.add(std::make_unique<DepthwiseConv2D>(in_c, 3, stride, Padding::kSame,
                                              gen.weights(static_cast<std::size_t>(in_c) * 9, 9),
                                              gen.biases(static_cast<std::size_t>(in_c))));
  model.add(std::make_unique<Relu>());
  model.add(std::make_unique<Conv2D>(in_c, out_c, 1, 1, 1, 1, Padding::kSame,
                                     gen.weights(static_cast<std::size_t>(out_c) * in_c, in_c),
                                     gen.biases(static_cast<std::size_t>(out_c))));
  model.add(std::make_unique<Relu>());
}

}  // namespace

Model make_kws_dscnn(std::uint64_t seed) {
  WeightGen gen(seed);
  // DS-CNN-S (MLPerf Tiny keyword spotting class): 49 MFCC frames x 10
  // coefficients, 12 output words.
  Model m("kws-dscnn", Shape{49, 10, 1});
  m.add(std::make_unique<Conv2D>(1, 64, 10, 4, 2, 2, Padding::kSame,
                                 gen.weights(64u * 10 * 4, 40), gen.biases(64)));
  m.add(std::make_unique<Relu>());
  for (int i = 0; i < 4; ++i) add_ds_block(m, gen, 64, 64, 1);
  m.add(std::make_unique<GlobalAvgPool>());
  m.add(std::make_unique<FullyConnected>(64, 12, gen.weights(64u * 12, 64), gen.biases(12)));
  m.add(std::make_unique<Softmax>());
  return m;
}

Model make_ecg_cnn1d(std::uint64_t seed) {
  WeightGen gen(seed);
  // Beat-level arrhythmia classifier: 1 s at 360 Hz, single lead, 4 AAMI
  // classes (N, S, V, F).
  Model m("ecg-cnn1d", Shape{360, 1});
  m.add(std::make_unique<Conv1D>(1, 8, 7, 2, Padding::kSame, gen.weights(8u * 7, 7),
                                 gen.biases(8)));
  m.add(std::make_unique<Relu>());
  m.add(std::make_unique<Conv1D>(8, 16, 5, 2, Padding::kSame, gen.weights(16u * 5 * 8, 40),
                                 gen.biases(16)));
  m.add(std::make_unique<Relu>());
  m.add(std::make_unique<Conv1D>(16, 32, 5, 2, Padding::kSame, gen.weights(32u * 5 * 16, 80),
                                 gen.biases(32)));
  m.add(std::make_unique<Relu>());
  m.add(std::make_unique<GlobalAvgPool>());
  m.add(std::make_unique<FullyConnected>(32, 4, gen.weights(32u * 4, 32), gen.biases(4)));
  m.add(std::make_unique<Softmax>());
  return m;
}

Model make_vww_micronet(std::uint64_t seed) {
  WeightGen gen(seed);
  // Visual wake words (person / no-person) on 96x96 RGB, MobileNet-style
  // stem + 5 depthwise-separable stages (~4 MMAC/frame, tinyML class).
  Model m("vww-micronet", Shape{96, 96, 3});
  m.add(std::make_unique<Conv2D>(3, 16, 3, 3, 2, 2, Padding::kSame, gen.weights(16u * 9 * 3, 27),
                                 gen.biases(16)));
  m.add(std::make_unique<Relu>(6.0f));
  add_ds_block(m, gen, 16, 32, 2);
  add_ds_block(m, gen, 32, 64, 2);
  add_ds_block(m, gen, 64, 128, 1);
  add_ds_block(m, gen, 128, 128, 2);
  add_ds_block(m, gen, 128, 256, 2);
  m.add(std::make_unique<GlobalAvgPool>());
  m.add(std::make_unique<FullyConnected>(256, 2, gen.weights(256u * 2, 256), gen.biases(2)));
  m.add(std::make_unique<Softmax>());
  return m;
}

}  // namespace iob::nn
