#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/expect.hpp"

namespace iob::nn {

std::int64_t shape_elems(const Shape& shape) {
  std::int64_t n = 1;
  for (const int d : shape) {
    IOB_EXPECTS(d > 0, "shape dims must be positive");
    n *= d;
  }
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream os;
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << "x";
    os << shape[i];
  }
  return os.str();
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(static_cast<std::size_t>(shape_elems(shape_)), fill) {
  IOB_EXPECTS(!shape_.empty() && shape_.size() <= 4, "tensor rank must be 1-4");
}

float& Tensor::at(int i) {
  IOB_EXPECTS(rank() == 1 && i >= 0 && i < shape_[0], "rank-1 index out of range");
  return data_[static_cast<std::size_t>(i)];
}

float& Tensor::at(int i, int j) {
  IOB_EXPECTS(rank() == 2 && i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1],
              "rank-2 index out of range");
  return data_[static_cast<std::size_t>(i) * shape_[1] + j];
}

float& Tensor::at(int i, int j, int k) {
  IOB_EXPECTS(rank() == 3 && i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 &&
                  k < shape_[2],
              "rank-3 index out of range");
  return data_[(static_cast<std::size_t>(i) * shape_[1] + j) * shape_[2] + k];
}

float Tensor::at(int i) const { return const_cast<Tensor*>(this)->at(i); }
float Tensor::at(int i, int j) const { return const_cast<Tensor*>(this)->at(i, j); }
float Tensor::at(int i, int j, int k) const { return const_cast<Tensor*>(this)->at(i, j, k); }

Tensor Tensor::reshaped(Shape new_shape) const {
  IOB_EXPECTS(shape_elems(new_shape) == size(), "reshape must preserve element count");
  Tensor out(std::move(new_shape));
  std::copy(data_.begin(), data_.end(), out.data_.begin());
  return out;
}

Tensor::Tensor(Shape shape, const float* src)
    : shape_(std::move(shape)),
      data_(src, src + static_cast<std::size_t>(shape_elems(shape_))) {
  IOB_EXPECTS(!shape_.empty() && shape_.size() <= 4, "tensor rank must be 1-4");
}

Tensor Tensor::from_data(Shape shape, const float* data) {
  IOB_EXPECTS(data != nullptr, "from_data needs a source pointer");
  return Tensor(std::move(shape), data);
}

Tensor Tensor::batch_item(int i) const {
  const ConstSpan s = batch_span(i);
  return from_data(Shape(shape_.begin() + 1, shape_.end()), s.data);
}

ConstSpan Tensor::batch_span(int i) const {
  IOB_EXPECTS(rank() >= 2, "batch_span needs a leading batch dim");
  IOB_EXPECTS(i >= 0 && i < shape_[0], "batch index out of range");
  const std::int64_t stride = size() / shape_[0];
  return ConstSpan{data() + static_cast<std::ptrdiff_t>(i) * stride, stride};
}

Tensor patterned_tensor(Shape shape, int salt) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.size(); ++i) {
    const auto h = static_cast<std::uint32_t>(i * 2654435761u + salt * 97u);
    t[i] = static_cast<float>(h % 1000u) / 500.0f - 1.0f;
  }
  return t;
}

Tensor stack_batch(const std::vector<Tensor>& samples) {
  IOB_EXPECTS(!samples.empty(), "stack_batch needs at least one sample");
  const Shape& sample_shape = samples.front().shape();
  IOB_EXPECTS(sample_shape.size() <= 3, "stacked sample rank must be <= 3");
  Shape batched_shape{static_cast<int>(samples.size())};
  batched_shape.insert(batched_shape.end(), sample_shape.begin(), sample_shape.end());
  Tensor out(std::move(batched_shape));
  const std::int64_t stride = samples.front().size();
  for (std::size_t s = 0; s < samples.size(); ++s) {
    IOB_EXPECTS(samples[s].shape() == sample_shape, "stack_batch samples must share a shape");
    std::copy(samples[s].data(), samples[s].data() + stride,
              out.data() + static_cast<std::ptrdiff_t>(s) * stride);
  }
  return out;
}

std::vector<Tensor> unstack_batch(const Tensor& batched) {
  IOB_EXPECTS(batched.rank() >= 2, "unstack_batch needs a leading batch dim");
  const Shape sample_shape(batched.shape().begin() + 1, batched.shape().end());
  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(batched.shape()[0]));
  for (int i = 0; i < batched.shape()[0]; ++i) {
    out.push_back(Tensor::from_data(sample_shape, batched.batch_span(i).data));
  }
  return out;
}

double max_abs_diff(ConstSpan a, ConstSpan b) {
  IOB_EXPECTS(a.size == b.size, "span size mismatch");
  double m = 0.0;
  for (std::int64_t i = 0; i < a.size; ++i) {
    m = std::max(m, static_cast<double>(std::fabs(a[i] - b[i])));
  }
  return m;
}

double Tensor::max_abs_diff(const Tensor& other) const {
  IOB_EXPECTS(shape_ == other.shape_, "shape mismatch");
  return nn::max_abs_diff(ConstSpan{data(), size()}, ConstSpan{other.data(), other.size()});
}

}  // namespace iob::nn
