#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/expect.hpp"

namespace iob::nn {

QuantParams choose_quant_params(float min_v, float max_v) {
  IOB_EXPECTS(min_v <= max_v, "min must not exceed max");
  // Range must include 0 so that zero is exactly representable.
  min_v = std::min(min_v, 0.0f);
  max_v = std::max(max_v, 0.0f);
  if (max_v == min_v) return QuantParams{1.0f, 0};

  const float scale = (max_v - min_v) / 255.0f;
  const float zp_real = -128.0f - min_v / scale;
  const auto zp = static_cast<std::int32_t>(std::lround(zp_real));
  return QuantParams{scale, std::clamp(zp, -128, 127)};
}

QuantizedTensor quantize(const Tensor& t) {
  float mn = 0.0f, mx = 0.0f;
  if (t.size() > 0) {
    mn = mx = t[0];
    for (std::int64_t i = 1; i < t.size(); ++i) {
      mn = std::min(mn, t[i]);
      mx = std::max(mx, t[i]);
    }
  }
  return quantize(t, choose_quant_params(mn, mx));
}

QuantizedTensor quantize(const Tensor& t, QuantParams params) {
  IOB_EXPECTS(params.scale > 0.0f, "quant scale must be positive");
  QuantizedTensor q;
  q.params = params;
  q.shape = t.shape();
  q.data.resize(static_cast<std::size_t>(t.size()));
  for (std::int64_t i = 0; i < t.size(); ++i) {
    const long v = std::lround(t[i] / params.scale) + params.zero_point;
    q.data[static_cast<std::size_t>(i)] =
        static_cast<std::int8_t>(std::clamp<long>(v, -128, 127));
  }
  return q;
}

Tensor dequantize(const QuantizedTensor& q) {
  Tensor t(q.shape);
  for (std::size_t i = 0; i < q.data.size(); ++i) {
    t[static_cast<std::int64_t>(i)] =
        q.params.scale * static_cast<float>(static_cast<std::int32_t>(q.data[i]) - q.params.zero_point);
  }
  return t;
}

double quant_error_bound(QuantParams params) { return 0.5 * static_cast<double>(params.scale); }

std::int64_t activation_wire_bytes(std::int64_t elems, Precision precision) {
  IOB_EXPECTS(elems >= 0, "activation element count must be non-negative");
  return precision == Precision::kInt8 ? kActivationHeaderBytes + elems : elems * 4;
}

std::vector<std::uint8_t> serialize_activation(const QuantizedTensor& q) {
  std::vector<std::uint8_t> wire(static_cast<std::size_t>(kActivationHeaderBytes) +
                                 q.data.size());
  std::memcpy(wire.data(), &q.params.scale, sizeof(float));
  std::memcpy(wire.data() + sizeof(float), &q.params.zero_point, sizeof(std::int32_t));
  std::memcpy(wire.data() + kActivationHeaderBytes, q.data.data(), q.data.size());
  return wire;
}

QuantizedTensor deserialize_activation(const std::vector<std::uint8_t>& wire, Shape shape) {
  const std::int64_t elems = shape_elems(shape);
  IOB_EXPECTS(static_cast<std::int64_t>(wire.size()) == kActivationHeaderBytes + elems,
              "activation wire size does not match the boundary shape");
  QuantizedTensor q;
  std::memcpy(&q.params.scale, wire.data(), sizeof(float));
  std::memcpy(&q.params.zero_point, wire.data() + sizeof(float), sizeof(std::int32_t));
  q.shape = std::move(shape);
  q.data.resize(static_cast<std::size_t>(elems));
  std::memcpy(q.data.data(), wire.data() + kActivationHeaderBytes,
              static_cast<std::size_t>(elems));
  return q;
}

}  // namespace iob::nn
