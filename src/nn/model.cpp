#include "nn/model.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/expect.hpp"

namespace iob::nn {

Model::Model(std::string name, Shape input_shape)
    : name_(std::move(name)), input_shape_(std::move(input_shape)),
      current_output_shape_(input_shape_) {
  IOB_EXPECTS(!input_shape_.empty(), "model input shape must be non-empty");
}

void Model::add(LayerPtr layer) {
  IOB_EXPECTS(layer != nullptr, "layer must not be null");
  const Shape out = layer->output_shape(current_output_shape_);

  LayerProfile p;
  p.describe = layer->describe();
  p.macs = layer->macs(current_output_shape_);
  p.params = layer->param_count();
  p.output_shape = out;
  p.output_bytes_f32 = shape_elems(out) * 4;
  p.output_bytes_i8 = shape_elems(out);
  profiles_.push_back(std::move(p));

  layers_.push_back(std::move(layer));
  current_output_shape_ = out;
}

Tensor Model::forward(const Tensor& input) const {
  return forward_range(input, 0, layers_.size());
}

Tensor Model::run_batched(const Tensor& batched_input) const {
  IOB_EXPECTS(batched_input.rank() == static_cast<int>(input_shape_.size()) + 1,
              "batched input must add one leading batch dim to the model input shape");
  const int batch = batched_input.shape()[0];
  IOB_EXPECTS(std::equal(batched_input.shape().begin() + 1, batched_input.shape().end(),
                         input_shape_.begin(), input_shape_.end()),
              "batched input sample shape mismatch");
  Tensor x = batched_input;
  for (const auto& layer : layers_) x = layer->forward_batched(x, batch);
  return x;
}

std::vector<Tensor> Model::run_batched(const std::vector<Tensor>& inputs) const {
  return unstack_batch(run_batched(stack_batch(inputs)));
}

Tensor Model::forward_range(const Tensor& input, std::size_t first, std::size_t last) const {
  IOB_EXPECTS(first <= last && last <= layers_.size(), "invalid layer range");
  Tensor x = input;
  for (std::size_t i = first; i < last; ++i) x = layers_[i]->forward(x);
  return x;
}

const Layer& Model::layer(std::size_t i) const {
  IOB_EXPECTS(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

std::uint64_t Model::total_macs() const {
  std::uint64_t sum = 0;
  for (const auto& p : profiles_) sum += p.macs;
  return sum;
}

std::uint64_t Model::total_params() const {
  std::uint64_t sum = 0;
  for (const auto& p : profiles_) sum += p.params;
  return sum;
}

std::int64_t Model::input_bytes_f32() const { return shape_elems(input_shape_) * 4; }
std::int64_t Model::input_bytes_i8() const { return shape_elems(input_shape_); }

std::string Model::summary() const {
  std::ostringstream os;
  os << "model " << name_ << " (input " << shape_str(input_shape_) << ")\n";
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    const auto& p = profiles_[i];
    os << "  [" << i << "] " << p.describe << " -> " << shape_str(p.output_shape)
       << "  macs=" << p.macs << " params=" << p.params << "\n";
  }
  os << "  total: " << total_macs() << " MACs, " << total_params() << " params\n";
  return os.str();
}

}  // namespace iob::nn
