#include "nn/model.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/expect.hpp"
#include "nn/gemm.hpp"
#include "nn/workspace.hpp"

namespace iob::nn {

Model::Model(std::string name, Shape input_shape)
    : name_(std::move(name)), input_shape_(std::move(input_shape)),
      current_output_shape_(input_shape_) {
  IOB_EXPECTS(!input_shape_.empty(), "model input shape must be non-empty");
  max_activation_elems_ = shape_elems(input_shape_);
}

void Model::add(LayerPtr layer) {
  IOB_EXPECTS(layer != nullptr, "layer must not be null");
  const Shape out = layer->output_shape(current_output_shape_);

  LayerProfile p;
  p.describe = layer->describe();
  p.macs = layer->macs(current_output_shape_);
  p.params = layer->param_count();
  p.output_shape = out;
  p.output_bytes_f32 = shape_elems(out) * 4;
  p.output_bytes_i8 = shape_elems(out);
  profiles_.push_back(std::move(p));

  max_activation_elems_ = std::max(max_activation_elems_, shape_elems(out));
  max_scratch_elems_ = std::max(max_scratch_elems_, layer->scratch_elems(current_output_shape_));
  layers_.push_back(std::move(layer));
  fuse_with_next_.push_back(false);
  // Fusion plan: a GEMM-lowered producer absorbs an immediately following
  // elementwise tail into its epilogue (one ping-pong hop saved, bit-exact).
  const std::size_t j = layers_.size() - 1;
  if (j > 0 && layers_[j - 1]->supports_gemm_tail_fusion()) {
    GemmTail tail;
    if (layers_[j]->gemm_tail(profiles_[j - 1].output_shape.back(), tail)) {
      fuse_with_next_[j - 1] = true;
    }
  }
  current_output_shape_ = out;
}

Tensor Model::forward(const Tensor& input) const {
  return forward_range(input, 0, layers_.size());
}

Tensor Model::run_batched(const Tensor& batched_input) const {
  const int batch = batched_input.rank() >= 1 ? batched_input.shape()[0] : 0;
  const ConstSpan out = run_into(detail::thread_workspace(), batched_input);
  Shape out_shape{batch};
  const Shape& out_sample =
      layers_.empty() ? input_shape_ : profiles_.back().output_shape;
  out_shape.insert(out_shape.end(), out_sample.begin(), out_sample.end());
  return Tensor::from_data(std::move(out_shape), out.data);
}

std::vector<Tensor> Model::run_batched(const std::vector<Tensor>& inputs) const {
  IOB_EXPECTS(!inputs.empty(), "run_batched needs at least one sample");
  const int batch = static_cast<int>(inputs.size());
  const std::int64_t sample_elems = shape_elems(input_shape_);
  Workspace& ws = detail::thread_workspace();
  ws.configure(*this, batch);
  // Stage samples straight into the workspace — no stacked intermediate.
  float* staging = ws.ping();
  for (int s = 0; s < batch; ++s) {
    const Tensor& x = inputs[static_cast<std::size_t>(s)];
    IOB_EXPECTS(x.shape() == input_shape_, "run_batched sample shape mismatch");
    std::copy(x.data(), x.data() + sample_elems,
              staging + static_cast<std::ptrdiff_t>(s) * sample_elems);
  }
  const ConstSpan out = run_into(ws, staging, batch);
  const Shape& out_sample = layers_.empty() ? input_shape_ : profiles_.back().output_shape;
  const std::int64_t out_stride = out.size / batch;
  std::vector<Tensor> results;
  results.reserve(inputs.size());
  for (int s = 0; s < batch; ++s) {
    results.push_back(
        Tensor::from_data(out_sample, out.data + static_cast<std::ptrdiff_t>(s) * out_stride));
  }
  return results;
}

ConstSpan Model::run_into(Workspace& ws, const float* input, int batch) const {
  return run_range_into(ws, input, batch, 0, layers_.size());
}

ConstSpan Model::run_into(Workspace& ws, const Tensor& batched_input) const {
  IOB_EXPECTS(batched_input.rank() == static_cast<int>(input_shape_.size()) + 1,
              "batched input must add one leading batch dim to the model input shape");
  const int batch = batched_input.shape()[0];
  IOB_EXPECTS(std::equal(batched_input.shape().begin() + 1, batched_input.shape().end(),
                         input_shape_.begin(), input_shape_.end()),
              "batched input sample shape mismatch");
  return run_range_into(ws, batched_input.data(), batch, 0, layers_.size());
}

ConstSpan Model::run_range_into(Workspace& ws, const float* input, int batch, std::size_t first,
                                std::size_t last) const {
  IOB_EXPECTS(first <= last && last <= layers_.size(), "invalid layer range");
  IOB_EXPECTS(batch >= 1, "batch must be >= 1");
  // Keep the "input may alias workspace staging" contract safe across a
  // growth: configure may reallocate the arena, and vector::resize
  // preserves contents, so a pointer into ping()/pong() is re-derived
  // rather than left dangling.
  const bool staged_in_ping = ws.activation_capacity() > 0 && input == ws.ping();
  const bool staged_in_pong = ws.activation_capacity() > 0 && input == ws.pong();
  ws.configure(*this, batch);
  const float* cur = staged_in_ping ? ws.ping() : staged_in_pong ? ws.pong() : input;
  for (std::size_t i = first; i < last;) {
    // Ping-pong: write into whichever arena buffer `cur` does not occupy
    // (the first hop off a caller-supplied pointer lands in ping unless the
    // caller staged there).
    float* next = cur == ws.ping() ? ws.pong() : ws.ping();
    if (fuse_with_next_[i] && i + 1 < last) {
      // Fused producer+tail pair: one hop, tail applied in the GEMM
      // epilogue (`cur` then holds layer i+1's output — same shape, since
      // the tail is elementwise).
      GemmTail tail;
      layers_[i + 1]->gemm_tail(profiles_[i].output_shape.back(), tail);
      layers_[i]->forward_into_fused(cur, layer_input_shape(i), batch, next, ws, tail);
      i += 2;
    } else {
      layers_[i]->forward_into(cur, layer_input_shape(i), batch, next, ws);
      ++i;
    }
    cur = next;
  }
  const Shape& out_sample = last == 0 ? input_shape_ : profiles_[last - 1].output_shape;
  return ConstSpan{cur, shape_elems(out_sample) * batch};
}

Tensor Model::forward_range(const Tensor& input, std::size_t first, std::size_t last) const {
  IOB_EXPECTS(first <= last && last <= layers_.size(), "invalid layer range");
  IOB_EXPECTS(input.shape() == layer_input_shape(first),
              "forward_range input shape mismatch");
  const ConstSpan out = run_range_into(detail::thread_workspace(), input.data(), 1, first, last);
  const Shape& out_sample = last == 0 ? input_shape_ : profiles_[last - 1].output_shape;
  return Tensor::from_data(out_sample, out.data);
}

Tensor Model::forward_reference(const Tensor& input) const {
  Tensor x = input;
  for (const auto& layer : layers_) x = layer->forward_reference(x);
  return x;
}

Tensor Model::run_batched_reference(const Tensor& batched_input) const {
  IOB_EXPECTS(batched_input.rank() == static_cast<int>(input_shape_.size()) + 1,
              "batched input must add one leading batch dim to the model input shape");
  const int batch = batched_input.shape()[0];
  IOB_EXPECTS(std::equal(batched_input.shape().begin() + 1, batched_input.shape().end(),
                         input_shape_.begin(), input_shape_.end()),
              "batched input sample shape mismatch");
  Tensor x = batched_input;
  for (const auto& layer : layers_) x = layer->forward_batched_reference(x, batch);
  return x;
}

const Layer& Model::layer(std::size_t i) const {
  IOB_EXPECTS(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

std::uint64_t Model::total_macs() const {
  std::uint64_t sum = 0;
  for (const auto& p : profiles_) sum += p.macs;
  return sum;
}

std::uint64_t Model::total_params() const {
  std::uint64_t sum = 0;
  for (const auto& p : profiles_) sum += p.params;
  return sum;
}

std::int64_t Model::input_bytes_f32() const { return shape_elems(input_shape_) * 4; }
std::int64_t Model::input_bytes_i8() const { return shape_elems(input_shape_); }

std::string Model::summary() const {
  std::ostringstream os;
  os << "model " << name_ << " (input " << shape_str(input_shape_) << ")\n";
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    const auto& p = profiles_[i];
    os << "  [" << i << "] " << p.describe << " -> " << shape_str(p.output_shape)
       << "  macs=" << p.macs << " params=" << p.params << "\n";
  }
  os << "  total: " << total_macs() << " MACs, " << total_params() << " params\n";
  return os.str();
}

}  // namespace iob::nn
