#pragma once
/// \file quantize.hpp
/// Affine int8 quantization. Leaf nodes ship activations across the body
/// bus int8-quantized (4x smaller than f32) — the transport format the
/// partitioner's "bytes on the wire" numbers assume — and ISA blocks use
/// the same scheme to compress raw sensor frames.

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace iob::nn {

struct QuantParams {
  float scale = 1.0f;        ///< real = scale * (q - zero_point)
  std::int32_t zero_point = 0;
};

struct QuantizedTensor {
  std::vector<std::int8_t> data;
  QuantParams params;
  Shape shape;

  [[nodiscard]] std::int64_t bytes() const { return static_cast<std::int64_t>(data.size()); }
};

/// Choose affine parameters covering [min, max] (handles degenerate ranges).
QuantParams choose_quant_params(float min_v, float max_v);

/// Quantize with parameters derived from the tensor's own min/max.
QuantizedTensor quantize(const Tensor& t);

/// Quantize with explicit parameters.
QuantizedTensor quantize(const Tensor& t, QuantParams params);

/// Reconstruct floats.
Tensor dequantize(const QuantizedTensor& q);

/// Worst-case absolute reconstruction error for the chosen parameters
/// (half an LSB step).
double quant_error_bound(QuantParams params);

}  // namespace iob::nn
