#pragma once
/// \file quantize.hpp
/// Affine int8 quantization. Leaf nodes ship activations across the body
/// bus int8-quantized (4x smaller than f32) — the transport format the
/// partitioner's "bytes on the wire" numbers assume — and ISA blocks use
/// the same scheme to compress raw sensor frames.

#include <cstdint>
#include <vector>

#include "nn/precision.hpp"
#include "nn/tensor.hpp"

namespace iob::nn {

struct QuantParams {
  float scale = 1.0f;        ///< real = scale * (q - zero_point)
  std::int32_t zero_point = 0;
};

struct QuantizedTensor {
  std::vector<std::int8_t> data;
  QuantParams params;
  Shape shape;

  [[nodiscard]] std::int64_t bytes() const { return static_cast<std::int64_t>(data.size()); }
};

/// Choose affine parameters covering [min, max] (handles degenerate ranges).
QuantParams choose_quant_params(float min_v, float max_v);

/// Quantize with parameters derived from the tensor's own min/max.
QuantizedTensor quantize(const Tensor& t);

/// Quantize with explicit parameters.
QuantizedTensor quantize(const Tensor& t, QuantParams params);

/// Reconstruct floats.
Tensor dequantize(const QuantizedTensor& q);

/// Worst-case absolute reconstruction error for the chosen parameters
/// (half an LSB step).
double quant_error_bound(QuantParams params);

// ---- activation wire format (split execution across venues) ----------------
//
// When a model runs split — layers [0,k) on the leaf, [k,n) on the hub — the
// boundary activation crosses the body bus in this format. int8 transport is
// NOT self-describing without its affine parameters, so the serialized form
// carries an 8-byte header (f32 scale, i32 zero point little-endian) ahead of
// the 1 B/element payload; the receiver needs both to requantize into its own
// op chain. f32 transport ships the raw 4 B/element floats, header-free.
// `Partitioner::boundary_bytes` prices exactly these sizes.

/// Header bytes preceding an int8 activation payload on the wire.
inline constexpr std::int64_t kActivationHeaderBytes = 8;

/// Bytes an activation of `elems` elements occupies on the wire at the given
/// transport precision (int8: header + 1 B/elem; f32: 4 B/elem).
[[nodiscard]] std::int64_t activation_wire_bytes(std::int64_t elems, Precision precision);

/// Serialize a quantized activation into the int8 wire format (header +
/// payload). `serialized.size() == activation_wire_bytes(elems, kInt8)`.
[[nodiscard]] std::vector<std::uint8_t> serialize_activation(const QuantizedTensor& q);

/// Parse the int8 wire format back into a quantized tensor; `shape` is
/// carried out-of-band (both venues know the model's boundary shapes).
[[nodiscard]] QuantizedTensor deserialize_activation(const std::vector<std::uint8_t>& wire,
                                                     Shape shape);

}  // namespace iob::nn
