#include "net/device_library.hpp"

#include <stdexcept>

#include "common/units.hpp"

namespace iob::net {

double DeviceSpec::battery_energy_j() const {
  return units::battery_energy_j(battery_mah, battery_v);
}

double DeviceSpec::battery_life_s() const { return battery_energy_j() / platform_power_w; }

double DeviceSpec::battery_life_hours() const { return battery_life_s() / units::hour; }

const std::vector<DeviceSpec>& device_survey() {
  using namespace iob::units;
  using L = BodyLocation;
  static const std::vector<DeviceSpec> table = {
      // ---- Pre-2024 wearables (Fig. 2 left) --------------------------------
      {"smart ring", DeviceEra::kPre2024, L::kFingerLeft, 20.0, 3.7, 0.40 * mW, 40.0 * kbps,
       "all-week"},
      {"fitness tracker", DeviceEra::kPre2024, L::kWristLeft, 125.0, 3.7, 2.6 * mW, 40.0 * kbps,
       "all-week"},
      {"earbuds", DeviceEra::kPre2024, L::kEarLeft, 50.0, 3.7, 14.0 * mW, 256.0 * kbps,
       "all-day"},
      {"smartwatch", DeviceEra::kPre2024, L::kWristLeft, 300.0, 3.85, 60.0 * mW, 300.0 * kbps,
       "all-day"},
      {"headphone", DeviceEra::kPre2024, L::kHead, 600.0, 3.7, 90.0 * mW, 512.0 * kbps,
       "all-day"},
      {"smartphone", DeviceEra::kPre2024, L::kThighLeft, 4000.0, 3.85, 1.8 * W, 10.0 * Mbps,
       "<10 hr"},
      // ---- 2024 wearable-AI boom (Fig. 2 right) ----------------------------
      {"AI pin", DeviceEra::kWearableAi2024, L::kChest, 1000.0, 3.85, 320.0 * mW, 10.0 * Mbps,
       "all-day"},
      {"AI pocket assistant", DeviceEra::kWearableAi2024, L::kThighLeft, 1000.0, 3.7, 300.0 * mW,
       2.0 * Mbps, "all-day"},
      {"AI necklace", DeviceEra::kWearableAi2024, L::kNeck, 100.0, 3.7, 12.0 * mW, 256.0 * kbps,
       "all-day"},
      {"smart glasses", DeviceEra::kWearableAi2024, L::kHead, 154.0, 3.7, 140.0 * mW, 10.0 * Mbps,
       "3-5 hr"},
      {"mixed reality headset", DeviceEra::kWearableAi2024, L::kHead, 5060.0, 3.85, 5.5 * W,
       100.0 * Mbps, "3-5 hr"},
  };
  return table;
}

const DeviceSpec& find_device(const std::string& name) {
  for (const auto& d : device_survey()) {
    if (d.name == name) return d;
  }
  throw std::invalid_argument("unknown device: " + name);
}

SuitePreset motion_heavy_suite() {
  using namespace iob::units;
  SuitePreset suite;
  suite.name = "motion-heavy (running wearer)";
  suite.motion = phy::running_profile();

  auto leaf = [](const char* name, const char* stream, BodyLocation loc, double rate_bps,
                 double sense_w, double isa_w, double mah, double v) {
    NodeConfig n;
    n.name = name;
    n.location = loc;
    n.stream = stream;
    n.output_rate_bps = rate_bps;
    n.sense_power_w = sense_w;
    n.isa_power_w = isa_w;
    n.battery_mah = mah;
    n.battery_v = v;
    // The controller samples channel health at every settle; a run/occlusion
    // sojourn lasts fractions of a second, so settle well inside it.
    n.settle_period_s = 0.1;
    n.degradation = DegradationConfig{};
    return n;
  };

  const DeviceSpec& watch = find_device("smartwatch");
  const DeviceSpec& earbud = find_device("earbuds");
  // Watch streams fused PPG+IMU features; earbud streams coded in-ear audio
  // (the heavy flow the ladder has to protect); the chest patch is the
  // Sec. II-A 2-lead biopotential node on the Fig. 3 coin cell.
  suite.nodes = {
      leaf("watch", "vitals", watch.location, 9.6 * kbps, 30.0 * uW, 1.5 * uW,
           watch.battery_mah, watch.battery_v),
      leaf("patch", "vitals", BodyLocation::kChest, 4.0 * kbps, 8.0 * uW, 1.5 * uW, 1000.0, 3.0),
      leaf("earbud", "audio", earbud.location, 64.0 * kbps, 150.0 * uW, 2.0 * uW,
           earbud.battery_mah, earbud.battery_v),
  };
  return suite;
}

std::string to_string(DeviceEra era) {
  switch (era) {
    case DeviceEra::kPre2024: return "pre-2024";
    case DeviceEra::kWearableAi2024: return "2024 wearable-AI";
  }
  return "?";
}

}  // namespace iob::net
