#include "net/degradation.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace iob::net {

std::vector<DegradationStep> default_degradation_ladder() {
  return {
      {"normal", 1.0, 1, false, false},
      {"codec-half", 0.5, 1, false, false},
      {"shed-2", 0.5, 2, false, false},
      {"int8-quarter", 0.25, 2, true, false},
      {"hub-retreat", 0.25, 4, true, true},
  };
}

DegradationController::DegradationController(DegradationConfig config)
    : config_(std::move(config)) {
  if (config_.ladder.empty()) config_.ladder = default_degradation_ladder();
  const DegradationStep& base = config_.ladder.front();
  IOB_EXPECTS(base.bitrate_scale == 1.0 && base.shed_modulus == 1 && !base.int8_wire &&
                  !base.hub_only_split,
              "ladder rung 0 must be the identity (armed-but-idle == off)");
  for (const auto& step : config_.ladder) {
    IOB_EXPECTS(step.bitrate_scale > 0.0 && step.bitrate_scale <= 1.0,
                "bitrate scale must be in (0, 1]");
    IOB_EXPECTS(step.shed_modulus >= 1, "shed modulus must be at least 1");
  }
  IOB_EXPECTS(config_.max_loss > 0.0 && config_.max_loss < 1.0,
              "loss threshold must be a fraction in (0, 1)");
  IOB_EXPECTS(config_.max_retry_rate > 0.0, "retry-rate threshold must be positive");
  IOB_EXPECTS(config_.hysteresis >= 1.0, "hysteresis must be >= 1");
  IOB_EXPECTS(config_.min_dwell_s >= 0.0, "min dwell must be non-negative");
}

double DegradationController::time_degraded_s(double now) const {
  return degraded_accum_s_ + (current_ > 0 ? std::max(0.0, now - last_update_t_) : 0.0);
}

std::size_t DegradationController::update(const ChannelHealth& health, double now) {
  // Attribute the elapsed interval to the rung we stood on through it.
  if (current_ > 0 && now > last_update_t_) degraded_accum_s_ += now - last_update_t_;
  last_update_t_ = now;

  const bool stressed = health.loss > config_.max_loss ||
                        health.retry_rate > config_.max_retry_rate ||
                        health.queue_depth > config_.max_queue_depth;
  // Recovery needs every metric comfortably inside the limit — the
  // limit/hysteresis band in between is sticky by construction, which is
  // what makes a boundary-riding channel hold its rung instead of
  // oscillating.
  const bool healthy =
      health.loss <= config_.max_loss / config_.hysteresis &&
      health.retry_rate <= config_.max_retry_rate / config_.hysteresis &&
      static_cast<double>(health.queue_depth) <=
          static_cast<double>(config_.max_queue_depth) / config_.hysteresis;

  if (ever_transitioned_ && now - last_transition_t_ < config_.min_dwell_s) return current_;

  if (stressed && current_ + 1 < config_.ladder.size()) {
    ++current_;
    ++transitions_;
    max_step_ = std::max(max_step_, current_);
    last_transition_t_ = now;
    ever_transitioned_ = true;
  } else if (healthy && current_ > 0) {
    --current_;
    ++transitions_;
    last_transition_t_ = now;
    ever_transitioned_ = true;
    if (current_ == 0) last_recovery_t_ = now;
  }
  return current_;
}

}  // namespace iob::net
